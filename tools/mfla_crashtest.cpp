// mfla_crashtest: crash-torture harness for the sweep engine's durability
// layer (docs/ROBUSTNESS.md).
//
// Each cycle runs mfla_experiment with a failpoint armed to `crash`
// (immediate _exit, no flushes — a simulated SIGKILL) at a random
// journal/cache/solve point, then re-runs it with --resume, possibly
// killing the resume too, until a final unarmed run completes. The cycle's
// raw CSV is then byte-compared against an uninterrupted baseline run:
// PR 2's resume guarantee ("byte-identical to an uninterrupted sweep"),
// checked by machine under randomized kill schedules.
//
//   mfla_crashtest --exe ./mfla_experiment [--cycles 20] [--seed 1]
//                  [--workdir out/crashtest] [--count 2]
//                  [--formats f16,p16,t16] [--threads 2] [--keep]
//
// Exit status: 0 if every cycle's CSV matched the baseline, 1 otherwise.
#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Options {
  std::string exe;
  std::string workdir = "out/crashtest";
  std::string formats = "f16,p16,t16";
  int cycles = 20;
  int count = 2;
  int threads = 2;
  std::uint64_t seed = 1;
  bool keep = false;
};

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: mfla_crashtest --exe PATH [--cycles N] [--seed S] [--workdir DIR]\n"
               "       [--count N] [--formats KEYS] [--threads N] [--keep]\n");
  std::exit(2);
}

// The crash points this harness arms, and the hit range that makes sense
// for each (hit counts are 1-based; a hit count past the run's actual hits
// simply never fires, which exercises the "armed but completed" path).
struct CrashPoint {
  const char* name;
  int max_hit;
};
constexpr CrashPoint kCrashPoints[] = {
    {"journal.append", 8},       // mid-checkpoint kill, torn tail likely
    {"journal.flush", 8},        // after write, before durability
    {"refcache.store.write", 4},  // mid cache-entry write (temp file orphan)
    {"refcache.store.rename", 4},  // between temp write and publish
    {"engine.format_run", 6},    // mid-solve kill, journal mid-sequence
    {"engine.reference", 3},     // before any run of a matrix journaled
    {"csv.write", 1},            // after the sweep, before the results CSV
};

// mfla::failpoint::kCrashExitCode; kept literal so this harness only
// depends on the CLI contract, not on library headers.
constexpr int kCrashExit = 86;

std::string shell_quote(const std::string& s) {
  std::string out = "'";
  for (const char c : s) {
    if (c == '\'')
      out += "'\\''";
    else
      out += c;
  }
  out += "'";
  return out;
}

/// Run a command through the shell; returns the child's exit status, or -1
/// if it died on a signal / could not be spawned.
int run(const std::string& cmd) {
  const int status = std::system(cmd.c_str());
  if (status == -1) return -1;
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  return -1;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

std::string experiment_command(const Options& opt, const std::string& out_prefix,
                               const std::string& checkpoint, bool resume,
                               const std::string& cache_dir, const std::string& failpoints,
                               const std::string& log) {
  std::string cmd;
  if (!failpoints.empty()) cmd += "MFLA_FAILPOINTS=" + shell_quote(failpoints) + " ";
  cmd += shell_quote(opt.exe);
  cmd += " --corpus general --count " + std::to_string(opt.count);
  cmd += " --formats " + shell_quote(opt.formats);
  cmd += " --threads " + std::to_string(opt.threads);
  cmd += " --out " + shell_quote(out_prefix);
  if (!checkpoint.empty()) {
    cmd += " --checkpoint " + shell_quote(checkpoint);
    if (resume) cmd += " --resume";
  }
  if (!cache_dir.empty()) cmd += " --ref-cache " + shell_quote(cache_dir);
  cmd += " >> " + shell_quote(log) + " 2>&1";
  return cmd;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--exe")
      opt.exe = next();
    else if (arg == "--cycles")
      opt.cycles = std::atoi(next().c_str());
    else if (arg == "--seed")
      opt.seed = std::strtoull(next().c_str(), nullptr, 10);
    else if (arg == "--workdir")
      opt.workdir = next();
    else if (arg == "--count")
      opt.count = std::atoi(next().c_str());
    else if (arg == "--formats")
      opt.formats = next();
    else if (arg == "--threads")
      opt.threads = std::atoi(next().c_str());
    else if (arg == "--keep")
      opt.keep = true;
    else
      usage();
  }
  if (opt.exe.empty() || opt.cycles < 1) usage();

  namespace fs = std::filesystem;
  std::error_code ec;
  fs::remove_all(opt.workdir, ec);
  fs::create_directories(opt.workdir, ec);
  if (!fs::is_directory(opt.workdir)) {
    std::fprintf(stderr, "crashtest: cannot create workdir '%s'\n", opt.workdir.c_str());
    return 1;
  }
  const std::string w = opt.workdir;

  // Uninterrupted baseline: same numerical config, no checkpoint, no cache.
  std::printf("crashtest: baseline run...\n");
  std::fflush(stdout);
  const std::string base_log = w + "/baseline.log";
  if (run(experiment_command(opt, w + "/base", "", false, "", "", base_log)) != 0) {
    std::fprintf(stderr, "crashtest: baseline run failed (see %s)\n", base_log.c_str());
    return 1;
  }
  std::string baseline_csv;
  if (!read_file(w + "/base_raw.csv", baseline_csv) || baseline_csv.empty()) {
    std::fprintf(stderr, "crashtest: baseline produced no CSV\n");
    return 1;
  }

  std::mt19937_64 rng(opt.seed);
  constexpr int kMaxKillRounds = 3;  // armed rounds per cycle before the clean finish
  int total_kills = 0, total_unfired = 0;

  for (int cycle = 1; cycle <= opt.cycles; ++cycle) {
    const std::string tag = w + "/cycle" + std::to_string(cycle);
    const std::string journal = tag + ".jsonl";
    const std::string cache = tag + ".cache";
    const std::string log = tag + ".log";

    bool completed = false;
    for (int round = 0; round <= kMaxKillRounds && !completed; ++round) {
      std::string failpoints;
      std::string desc = "clean";
      if (round < kMaxKillRounds) {
        const CrashPoint& cp =
            kCrashPoints[rng() % (sizeof kCrashPoints / sizeof kCrashPoints[0])];
        const int hit = 1 + static_cast<int>(rng() % static_cast<std::uint64_t>(cp.max_hit));
        failpoints = std::string(cp.name) + "=crash@" + std::to_string(hit);
        desc = failpoints;
      }
      const bool resume = round > 0;
      const int rc = run(
          experiment_command(opt, tag, journal, resume, cache, failpoints, log));
      if (rc == 0) {
        completed = true;
        if (!failpoints.empty()) ++total_unfired;  // armed point was never reached
      } else if (rc == kCrashExit && !failpoints.empty()) {
        ++total_kills;  // expected: the injected crash fired; resume next round
      } else {
        std::fprintf(stderr,
                     "crashtest: cycle %d round %d (%s) exited %d unexpectedly (see %s)\n",
                     cycle, round, desc.c_str(), rc, log.c_str());
        return 1;
      }
    }
    if (!completed) {
      std::fprintf(stderr, "crashtest: cycle %d never completed (see %s)\n", cycle,
                   log.c_str());
      return 1;
    }

    std::string cycle_csv;
    if (!read_file(tag + "_raw.csv", cycle_csv)) {
      std::fprintf(stderr, "crashtest: cycle %d produced no CSV\n", cycle);
      return 1;
    }
    if (cycle_csv != baseline_csv) {
      std::fprintf(stderr,
                   "crashtest: FAIL — cycle %d resumed CSV differs from the uninterrupted "
                   "baseline (%s_raw.csv vs %s/base_raw.csv)\n",
                   cycle, tag.c_str(), w.c_str());
      return 1;
    }
    std::printf("crashtest: cycle %d/%d ok (kills so far: %d)\n", cycle, opt.cycles,
                total_kills);
    std::fflush(stdout);
    if (!opt.keep) {
      fs::remove_all(cache, ec);
      fs::remove(journal, ec);
    }
  }

  std::printf(
      "crashtest: PASS — %d cycles, %d injected crashes survived (%d armed runs completed "
      "before their crash point), every resumed CSV byte-identical to the baseline\n",
      opt.cycles, total_kills, total_unfired);
  return 0;
}
