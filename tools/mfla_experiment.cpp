// mfla_experiment: command-line driver for the paper's evaluation pipeline.
//
// Run the multi-format eigenvalue experiment on your own matrices or on
// the built-in corpora, and write the raw per-run results + cumulative
// distributions as CSV.
//
// Usage:
//   mfla_experiment --corpus general|biological|infrastructure|social|miscellaneous
//                   [--count N] [--nev K] [--buffer B] [--restarts R]
//                   [--formats f16,bf16,p16,t16,...] [--out prefix]
//   mfla_experiment file1.mtx graph2.edges ...   (same options)
//
// Format keys: e4m3 e5m2 p8 t8 f16 bf16 p16 t16 f32 p32 t32 f64 p64 t64.
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "mfla.hpp"

namespace {

using namespace mfla;

const std::map<std::string, FormatId>& format_keys() {
  static const std::map<std::string, FormatId> keys = {
      {"e4m3", FormatId::ofp8_e4m3}, {"e5m2", FormatId::ofp8_e5m2},
      {"p8", FormatId::posit8},      {"t8", FormatId::takum8},
      {"f16", FormatId::float16},    {"bf16", FormatId::bfloat16},
      {"p16", FormatId::posit16},    {"t16", FormatId::takum16},
      {"f32", FormatId::float32},    {"p32", FormatId::posit32},
      {"t32", FormatId::takum32},    {"f64", FormatId::float64},
      {"p64", FormatId::posit64},    {"t64", FormatId::takum64},
  };
  return keys;
}

std::vector<FormatId> parse_formats(const std::string& spec) {
  std::vector<FormatId> out;
  std::string token;
  for (std::size_t i = 0; i <= spec.size(); ++i) {
    if (i == spec.size() || spec[i] == ',') {
      if (!token.empty()) {
        const auto it = format_keys().find(token);
        if (it == format_keys().end()) {
          std::fprintf(stderr, "unknown format key '%s'\n", token.c_str());
          std::exit(2);
        }
        out.push_back(it->second);
        token.clear();
      }
    } else {
      token += spec[i];
    }
  }
  return out;
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: mfla_experiment (--corpus NAME | files...) [--count N] [--nev K]\n"
               "       [--buffer B] [--restarts R] [--formats keys] [--out prefix]\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string corpus;
  std::string out_prefix = "out/experiment";
  std::string formats_spec = "f16,bf16,p16,t16,f32,p32,t32,f64,p64,t64";
  std::size_t count = 24;
  ExperimentConfig cfg;
  cfg.max_restarts = 80;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--corpus") {
      corpus = next();
    } else if (arg == "--count") {
      count = static_cast<std::size_t>(std::stoul(next()));
    } else if (arg == "--nev") {
      cfg.nev = static_cast<std::size_t>(std::stoul(next()));
    } else if (arg == "--buffer") {
      cfg.buffer = static_cast<std::size_t>(std::stoul(next()));
    } else if (arg == "--restarts") {
      cfg.max_restarts = std::stoi(next());
    } else if (arg == "--formats") {
      formats_spec = next();
    } else if (arg == "--out") {
      out_prefix = next();
    } else if (arg == "--help" || arg == "-h") {
      usage();
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage();
    } else {
      files.push_back(arg);
    }
  }
  if (corpus.empty() && files.empty()) usage();

  // Assemble the dataset.
  std::vector<TestMatrix> dataset;
  try {
    if (!corpus.empty()) {
      if (corpus == "general") {
        GeneralCorpusOptions opts;
        opts.count = count;
        dataset = build_general_corpus(opts);
      } else {
        GraphCorpusOptions opts;
        opts.counts = {count, count, count, count};
        dataset = build_graph_corpus(opts, corpus);
      }
    }
    for (const auto& path : files) {
      CooMatrix coo;
      if (ends_with(path, ".edges")) {
        coo = graph_laplacian_pipeline(read_edge_list_file(path));
      } else {
        coo = read_matrix_market_file(path);
        if (!coo.is_symmetric(1e-12)) coo = symmetrize_average(squarify(coo));
      }
      dataset.push_back(make_test_matrix(path, "user", "user", coo));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  if (dataset.empty()) {
    std::fprintf(stderr, "no matrices to run\n");
    return 1;
  }

  const std::vector<FormatId> formats = parse_formats(formats_spec);
  std::printf("running %zu matrices x %zu formats (nev=%zu buffer=%zu restarts=%d)\n",
              dataset.size(), formats.size(), cfg.nev, cfg.buffer, cfg.max_restarts);

  const auto results = run_experiment(dataset, formats, cfg);

  write_results_csv(out_prefix + "_raw.csv", results);
  for (const int bits : {8, 16, 32, 64}) {
    std::vector<Distribution> eig, vec;
    for (const auto& f : formats) {
      if (format_info(f).bits != bits) continue;
      eig.push_back(build_distribution(results, f, false));
      vec.push_back(build_distribution(results, f, true));
    }
    if (eig.empty()) continue;
    std::printf("%s", summary_table(eig, std::to_string(bits) + "-bit eigenvalues").c_str());
    std::printf("%s", summary_table(vec, std::to_string(bits) + "-bit eigenvectors").c_str());
    write_distribution_csv(out_prefix + "_" + std::to_string(bits) + "bit_eigenvalues.csv", eig);
    write_distribution_csv(out_prefix + "_" + std::to_string(bits) + "bit_eigenvectors.csv", vec);
  }
  std::printf("results written to %s_*.csv\n", out_prefix.c_str());
  return 0;
}
