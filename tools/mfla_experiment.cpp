// mfla_experiment: command-line driver for the paper's evaluation pipeline,
// built entirely on the mfla::api facade (Sweep + ResultSink pipeline).
//
// Run the multi-format eigenvalue experiment on your own matrices or on
// the built-in corpora, and write the raw per-run results + cumulative
// distributions as CSV. Sweeps run on the task-parallel engine; with
// --checkpoint every completed run is journaled so --resume restarts an
// interrupted sweep with only the missing runs, and --ref-cache keeps a
// persistent content-addressed cache of the float128 reference solutions.
//
// Try: mfla_experiment --help, mfla_experiment --list-formats.
#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "api/api.hpp"

namespace {

using namespace mfla;

const char* kDefaultFormats = "f16,bf16,p16,t16,f32,p32,t32,f64,p64,t64";

// Exit codes, so scripts (CI, mfla_crashtest) can tell failure classes
// apart: 0 success, 2 usage error, 3 I/O failure (journal, CSV, dataset
// files, disk full), 4 solve failure (solver aborts recorded by the solve
// guard, or an unexpected engine exception), 5 interrupted (SIGINT/SIGTERM
// drained the sweep; with --checkpoint the journal holds every completed
// run and --resume finishes the rest).
constexpr int kExitOk = 0;
constexpr int kExitUsage = 2;
constexpr int kExitIo = 3;
constexpr int kExitSolve = 4;
constexpr int kExitInterrupted = 5;

// Flipped by the SIGINT/SIGTERM handler and polled by the engine as the
// sweep's cooperative cancel flag: queued runs are skipped, in-flight runs
// finish and reach the journal, then run() returns with canceled_runs set.
std::atomic<bool> g_interrupted{false};

extern "C" void handle_interrupt(int) { g_interrupted.store(true, std::memory_order_relaxed); }

void install_interrupt_handler() {
  struct sigaction sa{};
  sa.sa_handler = handle_interrupt;
  sigemptyset(&sa.sa_mask);
  // No SA_RESTART: a sweep blocked in I/O should see EINTR promptly.
  (void)sigaction(SIGINT, &sa, nullptr);
  (void)sigaction(SIGTERM, &sa, nullptr);
}

void print_usage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: mfla_experiment (--corpus NAME | files...) [--count N] [--nev K]\n"
      "       [--buffer B] [--restarts R] [--formats keys] [--out prefix]\n"
      "       [--threads N] [--checkpoint FILE] [--resume] [--ref-cache DIR]\n"
      "       [--ref-tier TIER] [--list-formats] [--help]\n");
}

[[noreturn]] void usage_error() {
  print_usage(stderr);
  std::exit(kExitUsage);
}

[[noreturn]] void print_help() {
  print_usage(stdout);
  std::printf(
      "\nRun the paper's multi-format IRAM evaluation pipeline: for every\n"
      "(matrix, format) pair, solve the partial eigenproblem in that format,\n"
      "match eigenpairs against a float128 reference and classify the outcome\n"
      "(ok / no convergence / dynamic range exceeded). Results are written as\n"
      "one raw CSV plus per-width cumulative error distribution CSVs.\n"
      "\ninputs:\n"
      "  --corpus NAME      built-in dataset: general (synthetic SuiteSparse\n"
      "                     stand-in) or biological|infrastructure|social|\n"
      "                     miscellaneous (graph corpora)\n"
      "  files...           .mtx Matrix Market files (symmetrized if needed) or\n"
      "                     .edges edge lists (converted to graph Laplacians)\n"
      "\noptions:\n"
      "  --count N          matrices per corpus class (default 24)\n"
      "  --nev K            eigenpairs scored per run (default 10)\n"
      "  --buffer B         extra pairs computed for matching (default 2)\n"
      "  --restarts R       per-format restart budget (default 80)\n"
      "  --formats keys     comma-separated format keys (default\n"
      "                     %s;\n"
      "                     see --list-formats)\n"
      "  --out prefix       CSV output prefix (default out/experiment)\n"
      "  --threads N        worker threads; 0 = all cores (default 0)\n"
      "  --checkpoint FILE  JSONL journal; every completed run is appended\n"
      "                     and flushed\n"
      "  --resume           replay the checkpoint journal and run only the\n"
      "                     missing runs (requires --checkpoint)\n"
      "  --ref-cache DIR    persistent cache of reference solutions; warm\n"
      "                     reruns skip the reference solves entirely\n"
      "  --ref-tier TIER    reference arithmetic tier: f128_only (default;\n"
      "                     every reference solve in float128) or dd_first\n"
      "                     (try double-double, certify the residual bound,\n"
      "                     promote to float128 when uncertifiable)\n"
      "  --list-formats     print the format table (key, name, bits, family)\n"
      "  --help, -h         this help\n",
      kDefaultFormats);
  std::exit(0);
}

[[noreturn]] void print_format_table() {
  std::printf("%-6s %-10s %5s  %s\n", "key", "name", "bits", "family");
  for (const auto& f : all_formats()) {
    std::printf("%-6s %-10s %5d  %s%s\n", f.key.c_str(), f.name.c_str(), f.bits,
                f.family.c_str(),
                f.reference_only ? "  (reference arithmetic; not selectable)" : "");
  }
  std::exit(0);
}

/// Strict non-negative integer parse; anything else (garbage, trailing
/// characters, negative values, overflow) is a usage error, not an
/// uncaught std::invalid_argument from std::stoul.
std::uint64_t parse_uint(const char* option, const std::string& value, std::uint64_t max) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  const bool bad = value.empty() || end != value.c_str() + value.size() ||
                   value.find_first_not_of("0123456789") != std::string::npos ||
                   errno == ERANGE || v > max;
  if (bad) {
    std::fprintf(stderr, "invalid value '%s' for %s (expected a non-negative integer <= %llu)\n",
                 value.c_str(), option, static_cast<unsigned long long>(max));
    usage_error();
  }
  return v;
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string corpus;
  std::string out_prefix = "out/experiment";
  std::string formats_spec = kDefaultFormats;
  std::string ref_cache_dir;
  std::string ref_tier_spec = "f128_only";
  std::string checkpoint_path;
  bool resume = false;
  std::size_t count = 24;
  std::size_t nev = 10, buffer = 2, threads = 0;
  int max_restarts = 80;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        usage_error();
      }
      return argv[++i];
    };
    if (arg == "--corpus") {
      corpus = next();
    } else if (arg == "--count") {
      count = static_cast<std::size_t>(parse_uint("--count", next(), 1000000));
    } else if (arg == "--nev") {
      nev = static_cast<std::size_t>(parse_uint("--nev", next(), 10000));
    } else if (arg == "--buffer") {
      buffer = static_cast<std::size_t>(parse_uint("--buffer", next(), 10000));
    } else if (arg == "--restarts") {
      max_restarts = static_cast<int>(parse_uint("--restarts", next(), 1000000));
    } else if (arg == "--threads") {
      threads = static_cast<std::size_t>(parse_uint("--threads", next(), 4096));
    } else if (arg == "--checkpoint") {
      checkpoint_path = next();
    } else if (arg == "--resume") {
      resume = true;
    } else if (arg == "--ref-cache") {
      ref_cache_dir = next();
    } else if (arg == "--ref-tier") {
      ref_tier_spec = next();
    } else if (arg == "--formats") {
      formats_spec = next();
    } else if (arg == "--out") {
      out_prefix = next();
    } else if (arg == "--list-formats") {
      print_format_table();
    } else if (arg == "--help" || arg == "-h") {
      print_help();
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage_error();
    } else {
      files.push_back(arg);
    }
  }
  if (corpus.empty() && files.empty()) usage_error();
  if (resume && checkpoint_path.empty()) {
    std::fprintf(stderr, "--resume requires --checkpoint FILE\n");
    usage_error();
  }

  // Formats come straight from the registry; unknown or duplicate keys are
  // rejected with the list of valid ones.
  std::vector<FormatId> formats;
  try {
    formats = parse_format_keys(formats_spec);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "--formats: %s\n", e.what());
    return kExitUsage;
  }

  ReferenceTier ref_tier;
  try {
    ref_tier = reference_tier_from_name(ref_tier_spec);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "--ref-tier: %s\n", e.what());
    return kExitUsage;
  }

  // Assemble the dataset.
  std::vector<TestMatrix> dataset;
  try {
    if (!corpus.empty()) {
      if (corpus == "general") {
        GeneralCorpusOptions opts;
        opts.count = count;
        dataset = build_general_corpus(opts);
      } else {
        GraphCorpusOptions opts;
        opts.counts = {count, count, count, count};
        dataset = build_graph_corpus(opts, corpus);
      }
    }
    for (const auto& path : files) {
      CooMatrix coo;
      if (ends_with(path, ".edges")) {
        coo = graph_laplacian_pipeline(read_edge_list_file(path));
      } else {
        coo = read_matrix_market_file(path);
        if (!coo.is_symmetric(1e-12)) coo = symmetrize_average(squarify(coo));
      }
      dataset.push_back(make_test_matrix(path, "user", "user", coo));
    }
  } catch (const std::exception& e) {
    // Dataset assembly failures are input I/O: unreadable or malformed
    // matrix files.
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitIo;
  }
  if (dataset.empty()) {
    std::fprintf(stderr, "no matrices to run\n");
    return kExitUsage;
  }

  const std::string threads_desc = threads == 0 ? "auto" : std::to_string(threads);
  std::printf(
      "running %zu matrices x %zu formats (nev=%zu buffer=%zu restarts=%d threads=%s "
      "ref-tier=%s)\n",
      dataset.size(), formats.size(), nev, buffer, max_restarts, threads_desc.c_str(),
      reference_tier_name(ref_tier));
  if (!checkpoint_path.empty()) {
    std::printf("checkpoint journal: %s%s\n", checkpoint_path.c_str(),
                resume ? " (resuming)" : "");
  }
  if (!ref_cache_dir.empty()) std::printf("reference cache: %s\n", ref_cache_dir.c_str());

  install_interrupt_handler();

  api::SweepResult result;
  try {
    api::Sweep sweep = api::Sweep::over(std::move(dataset));
    sweep.formats(formats)
        .nev(nev)
        .buffer(buffer)
        .restarts(max_restarts)
        .reference_tier(ref_tier)
        .threads(threads)
        .cancel(&g_interrupted)
        .sink(std::make_shared<api::ProgressSink>(stderr))
        .sink(std::make_shared<api::CsvSink>(out_prefix + "_raw.csv"));
    if (!checkpoint_path.empty()) sweep.checkpoint(checkpoint_path).resume(resume);
    if (!ref_cache_dir.empty()) sweep.cache(ref_cache_dir);
    result = sweep.run();
  } catch (const IoError& e) {
    // Durability failures fail fast and loud: a journal that cannot be
    // written means checkpoints are being lost, not "the sweep mostly
    // worked". Same for an unwritable results CSV.
    std::fprintf(stderr, "\nI/O error: %s\n", e.what());
    return kExitIo;
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "\nerror: %s\n", e.what());
    return kExitUsage;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "\nerror: %s\n", e.what());
    return kExitSolve;
  }

  if (result.stats.canceled_runs != 0 || g_interrupted.load(std::memory_order_relaxed)) {
    // No CSVs for a drained sweep (CsvSink already skipped the raw file): a
    // partial CSV is indistinguishable from a complete one. The journal is
    // the artifact that survives an interrupt.
    std::fprintf(stderr, "\ninterrupted: %zu queued runs skipped, in-flight runs journaled\n",
                 result.stats.canceled_runs);
    if (!checkpoint_path.empty()) {
      std::fprintf(stderr, "re-run with --checkpoint %s --resume to finish the sweep\n",
                   checkpoint_path.c_str());
    } else {
      std::fprintf(stderr,
                   "(no --checkpoint journal; a re-run starts from scratch)\n");
    }
    return kExitInterrupted;
  }

  if (result.cache_attached) {
    const RefCacheStats cs = result.cache;
    std::printf(
        "reference cache: %llu hits, %llu misses, %llu stored, %llu rejected "
        "(%.1fs of reference solves%s)\n",
        static_cast<unsigned long long>(cs.hits), static_cast<unsigned long long>(cs.misses),
        static_cast<unsigned long long>(cs.stores), static_cast<unsigned long long>(cs.rejects),
        result.stats.reference_seconds,
        result.stats.reference_solves == 0 ? " — fully warm" : "");
    if (cs.quarantined + cs.store_failures + cs.store_retries > 0 || cs.degraded)
      std::printf(
          "reference cache health: %llu quarantined, %llu store retries, %llu store "
          "failures%s\n",
          static_cast<unsigned long long>(cs.quarantined),
          static_cast<unsigned long long>(cs.store_retries),
          static_cast<unsigned long long>(cs.store_failures),
          cs.degraded ? " — DEGRADED to recompute-only (cache dir unwritable or disk full)"
                      : "");
    // Per-stage times are summed across worker threads; the wall figure is
    // the sweep's elapsed time.
    std::printf(
        "stage wall-clock: reference %.1fs, cache serving %.1fs, format runs %.1fs "
        "summed over workers (sweep wall %.1fs)\n",
        result.stats.reference_seconds, result.stats.reference_cache_seconds,
        result.stats.format_seconds, result.elapsed_seconds);
  }
  if (ref_tier == ReferenceTier::dd_first) {
    std::printf(
        "reference tier: %zu dd solves (%zu certified, %zu promoted to float128), "
        "dd %.1fs, float128 %.1fs\n",
        result.stats.reference_dd_solves, result.stats.reference_dd_certified,
        result.stats.reference_promotions, result.stats.reference_dd_seconds,
        result.stats.reference_f128_seconds);
  }

  for (const int bits : {8, 16, 32, 64}) {
    std::vector<Distribution> eig, vec;
    for (const auto& f : formats) {
      if (format_info(f).bits != bits) continue;
      eig.push_back(build_distribution(result.results, f, false));
      vec.push_back(build_distribution(result.results, f, true));
    }
    if (eig.empty()) continue;
    std::printf("%s", summary_table(eig, std::to_string(bits) + "-bit eigenvalues").c_str());
    std::printf("%s", summary_table(vec, std::to_string(bits) + "-bit eigenvectors").c_str());
    write_distribution_csv(out_prefix + "_" + std::to_string(bits) + "bit_eigenvalues.csv", eig);
    write_distribution_csv(out_prefix + "_" + std::to_string(bits) + "bit_eigenvectors.csv", vec);
  }
  if (resume &&
      result.stats.journal_replayed_runs + result.stats.journal_replayed_failures +
              result.stats.journal_discarded_lines + result.stats.journal_truncated_bytes >
          0) {
    std::printf(
        "journal recovery: %zu runs + %zu reference failures replayed, %zu torn/unknown "
        "lines discarded, %zu trailing bytes truncated\n",
        result.stats.journal_replayed_runs, result.stats.journal_replayed_failures,
        result.stats.journal_discarded_lines, result.stats.journal_truncated_bytes);
  }
  std::printf("results written to %s_*.csv\n", out_prefix.c_str());
  if (result.stats.solve_faults + result.stats.reference_faults > 0) {
    std::fprintf(stderr,
                 "solve faults: %zu format runs and %zu reference solves aborted and were "
                 "recorded as structured failures (outcome 'fault' in the CSV)\n",
                 result.stats.solve_faults, result.stats.reference_faults);
    return kExitSolve;
  }
  return kExitOk;
}
