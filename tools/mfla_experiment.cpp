// mfla_experiment: command-line driver for the paper's evaluation pipeline.
//
// Run the multi-format eigenvalue experiment on your own matrices or on
// the built-in corpora, and write the raw per-run results + cumulative
// distributions as CSV. Sweeps run on the task-parallel engine; with
// --checkpoint every completed run is journaled so --resume restarts an
// interrupted sweep with only the missing runs.
//
// Usage:
//   mfla_experiment --corpus general|biological|infrastructure|social|miscellaneous
//                   [--count N] [--nev K] [--buffer B] [--restarts R]
//                   [--formats f16,bf16,p16,t16,...] [--out prefix]
//                   [--threads N] [--checkpoint FILE] [--resume]
//                   [--ref-cache DIR]
//   mfla_experiment file1.mtx graph2.edges ...   (same options)
//
// --ref-cache DIR keeps a persistent content-addressed cache of the
// float128 reference solutions, so repeated sweeps over the same matrices
// (reruns, format subsets, CI) skip the software-quad solves entirely and
// stay byte-identical to a cold run.
//
// Format keys: e4m3 e5m2 p8 t8 f16 bf16 p16 t16 f32 p32 t32 f64 p64 t64.
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "mfla.hpp"

namespace {

using namespace mfla;

const std::map<std::string, FormatId>& format_keys() {
  static const std::map<std::string, FormatId> keys = {
      {"e4m3", FormatId::ofp8_e4m3}, {"e5m2", FormatId::ofp8_e5m2},
      {"p8", FormatId::posit8},      {"t8", FormatId::takum8},
      {"f16", FormatId::float16},    {"bf16", FormatId::bfloat16},
      {"p16", FormatId::posit16},    {"t16", FormatId::takum16},
      {"f32", FormatId::float32},    {"p32", FormatId::posit32},
      {"t32", FormatId::takum32},    {"f64", FormatId::float64},
      {"p64", FormatId::posit64},    {"t64", FormatId::takum64},
  };
  return keys;
}

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: mfla_experiment (--corpus NAME | files...) [--count N] [--nev K]\n"
      "       [--buffer B] [--restarts R] [--formats keys] [--out prefix]\n"
      "       [--threads N] [--checkpoint FILE] [--resume] [--ref-cache DIR]\n");
  std::exit(2);
}

/// Strict non-negative integer parse; anything else (garbage, trailing
/// characters, negative values, overflow) is a usage error, not an
/// uncaught std::invalid_argument from std::stoul.
std::uint64_t parse_uint(const char* option, const std::string& value, std::uint64_t max) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  const bool bad = value.empty() || end != value.c_str() + value.size() ||
                   value.find_first_not_of("0123456789") != std::string::npos ||
                   errno == ERANGE || v > max;
  if (bad) {
    std::fprintf(stderr, "invalid value '%s' for %s (expected a non-negative integer <= %llu)\n",
                 value.c_str(), option, static_cast<unsigned long long>(max));
    usage();
  }
  return v;
}

std::vector<FormatId> parse_formats(const std::string& spec) {
  std::vector<FormatId> out;
  std::string token;
  for (std::size_t i = 0; i <= spec.size(); ++i) {
    if (i == spec.size() || spec[i] == ',') {
      if (!token.empty()) {
        const auto it = format_keys().find(token);
        if (it == format_keys().end()) {
          std::fprintf(stderr, "unknown format key '%s'\n", token.c_str());
          std::exit(2);
        }
        for (const FormatId seen : out) {
          if (seen == it->second) {
            std::fprintf(stderr, "duplicate format key '%s' in --formats\n", token.c_str());
            std::exit(2);
          }
        }
        out.push_back(it->second);
        token.clear();
      }
    } else {
      token += spec[i];
    }
  }
  if (out.empty()) {
    std::fprintf(stderr, "--formats must name at least one format key\n");
    std::exit(2);
  }
  return out;
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

std::string format_eta(double seconds) {
  if (seconds < 0) seconds = 0;
  const auto total = static_cast<long long>(seconds + 0.5);
  char buf[32];
  if (total >= 3600) {
    std::snprintf(buf, sizeof buf, "%lldh%02lldm", total / 3600, (total % 3600) / 60);
  } else if (total >= 60) {
    std::snprintf(buf, sizeof buf, "%lldm%02llds", total / 60, total % 60);
  } else {
    std::snprintf(buf, sizeof buf, "%llds", total);
  }
  return buf;
}

void print_progress(const ExperimentProgress& p) {
  if (p.total == 0) return;
  const double frac = static_cast<double>(p.done) / static_cast<double>(p.total);
  std::string line = "runs " + std::to_string(p.done) + "/" + std::to_string(p.total);
  char pct[16];
  std::snprintf(pct, sizeof pct, " (%3.0f%%)", 100.0 * frac);
  line += pct;
  line += "  elapsed " + format_eta(p.elapsed_seconds);
  if (p.done > 0 && p.done < p.total) {
    const double eta =
        p.elapsed_seconds * static_cast<double>(p.total - p.done) / static_cast<double>(p.done);
    line += "  eta " + format_eta(eta);
  }
  std::fprintf(stderr, "\r%-60s", line.c_str());
  if (p.done == p.total) std::fprintf(stderr, "\n");
  std::fflush(stderr);
}

}  // namespace

int main(int argc, char** argv) {
  std::string corpus;
  std::string out_prefix = "out/experiment";
  std::string formats_spec = "f16,bf16,p16,t16,f32,p32,t32,f64,p64,t64";
  std::string ref_cache_dir;
  std::size_t count = 24;
  ExperimentConfig cfg;
  cfg.max_restarts = 80;
  ScheduleOptions sched;
  sched.on_progress = print_progress;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        usage();
      }
      return argv[++i];
    };
    if (arg == "--corpus") {
      corpus = next();
    } else if (arg == "--count") {
      count = static_cast<std::size_t>(parse_uint("--count", next(), 1000000));
    } else if (arg == "--nev") {
      cfg.nev = static_cast<std::size_t>(parse_uint("--nev", next(), 10000));
    } else if (arg == "--buffer") {
      cfg.buffer = static_cast<std::size_t>(parse_uint("--buffer", next(), 10000));
    } else if (arg == "--restarts") {
      cfg.max_restarts = static_cast<int>(parse_uint("--restarts", next(), 1000000));
    } else if (arg == "--threads") {
      sched.threads = static_cast<std::size_t>(parse_uint("--threads", next(), 4096));
    } else if (arg == "--checkpoint") {
      sched.checkpoint_path = next();
    } else if (arg == "--resume") {
      sched.resume = true;
    } else if (arg == "--ref-cache") {
      ref_cache_dir = next();
    } else if (arg == "--formats") {
      formats_spec = next();
    } else if (arg == "--out") {
      out_prefix = next();
    } else if (arg == "--help" || arg == "-h") {
      usage();
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage();
    } else {
      files.push_back(arg);
    }
  }
  if (corpus.empty() && files.empty()) usage();
  if (sched.resume && sched.checkpoint_path.empty()) {
    std::fprintf(stderr, "--resume requires --checkpoint FILE\n");
    usage();
  }

  // Assemble the dataset.
  std::vector<TestMatrix> dataset;
  try {
    if (!corpus.empty()) {
      if (corpus == "general") {
        GeneralCorpusOptions opts;
        opts.count = count;
        dataset = build_general_corpus(opts);
      } else {
        GraphCorpusOptions opts;
        opts.counts = {count, count, count, count};
        dataset = build_graph_corpus(opts, corpus);
      }
    }
    for (const auto& path : files) {
      CooMatrix coo;
      if (ends_with(path, ".edges")) {
        coo = graph_laplacian_pipeline(read_edge_list_file(path));
      } else {
        coo = read_matrix_market_file(path);
        if (!coo.is_symmetric(1e-12)) coo = symmetrize_average(squarify(coo));
      }
      dataset.push_back(make_test_matrix(path, "user", "user", coo));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  if (dataset.empty()) {
    std::fprintf(stderr, "no matrices to run\n");
    return 1;
  }

  const std::vector<FormatId> formats = parse_formats(formats_spec);
  const std::string threads_desc =
      sched.threads == 0 ? "auto" : std::to_string(sched.threads);
  std::printf("running %zu matrices x %zu formats (nev=%zu buffer=%zu restarts=%d threads=%s)\n",
              dataset.size(), formats.size(), cfg.nev, cfg.buffer, cfg.max_restarts,
              threads_desc.c_str());
  if (!sched.checkpoint_path.empty()) {
    std::printf("checkpoint journal: %s%s\n", sched.checkpoint_path.c_str(),
                sched.resume ? " (resuming)" : "");
  }

  std::vector<MatrixResult> results;
  SweepStats stats;
  sched.stats = &stats;
  try {
    std::unique_ptr<ReferenceCache> cache;
    if (!ref_cache_dir.empty()) {
      cache = std::make_unique<ReferenceCache>(ref_cache_dir);
      sched.ref_cache = cache.get();
      std::printf("reference cache: %s\n", cache->directory().c_str());
    }
    results = run_experiment(dataset, formats, cfg, sched);
    if (cache) {
      const RefCacheStats cs = cache->stats();
      std::printf(
          "reference cache: %llu hits, %llu misses, %llu stored, %llu rejected "
          "(%.1fs of float128 solves%s)\n",
          static_cast<unsigned long long>(cs.hits), static_cast<unsigned long long>(cs.misses),
          static_cast<unsigned long long>(cs.stores),
          static_cast<unsigned long long>(cs.rejects), stats.reference_seconds,
          stats.reference_solves == 0 ? " — fully warm" : "");
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "\nerror: %s\n", e.what());
    return 1;
  }

  write_results_csv(out_prefix + "_raw.csv", results);
  for (const int bits : {8, 16, 32, 64}) {
    std::vector<Distribution> eig, vec;
    for (const auto& f : formats) {
      if (format_info(f).bits != bits) continue;
      eig.push_back(build_distribution(results, f, false));
      vec.push_back(build_distribution(results, f, true));
    }
    if (eig.empty()) continue;
    std::printf("%s", summary_table(eig, std::to_string(bits) + "-bit eigenvalues").c_str());
    std::printf("%s", summary_table(vec, std::to_string(bits) + "-bit eigenvectors").c_str());
    write_distribution_csv(out_prefix + "_" + std::to_string(bits) + "bit_eigenvalues.csv", eig);
    write_distribution_csv(out_prefix + "_" + std::to_string(bits) + "bit_eigenvectors.csv", vec);
  }
  std::printf("results written to %s_*.csv\n", out_prefix.c_str());
  return 0;
}
