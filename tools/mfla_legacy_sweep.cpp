// mfla_legacy_sweep: verification harness that drives the LEGACY free-
// function pipeline (run_experiment + write_results_csv) directly, without
// the mfla::api facade. CI runs it next to mfla_experiment on the same
// corpus/config/threads and asserts the raw results CSVs are byte-
// identical — the proof that the api layer is a pure facade over the
// engine, not a reimplementation.
//
// Options are a subset of mfla_experiment's:
//   mfla_legacy_sweep --corpus NAME [--count N] [--nev K] [--buffer B]
//                     [--restarts R] [--formats keys] [--threads N]
//                     [--out prefix]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "mfla.hpp"

int main(int argc, char** argv) {
  using namespace mfla;
  std::string corpus;
  std::string out_prefix = "out/legacy";
  std::string formats_spec = "f16,bf16,p16,t16,f32,p32,t32,f64,p64,t64";
  std::size_t count = 24;
  ExperimentConfig cfg;
  cfg.max_restarts = 80;
  ScheduleOptions sched;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--corpus") {
      corpus = next();
    } else if (arg == "--count") {
      count = static_cast<std::size_t>(std::strtoull(next().c_str(), nullptr, 10));
    } else if (arg == "--nev") {
      cfg.nev = static_cast<std::size_t>(std::strtoull(next().c_str(), nullptr, 10));
    } else if (arg == "--buffer") {
      cfg.buffer = static_cast<std::size_t>(std::strtoull(next().c_str(), nullptr, 10));
    } else if (arg == "--restarts") {
      cfg.max_restarts = static_cast<int>(std::strtoull(next().c_str(), nullptr, 10));
    } else if (arg == "--threads") {
      sched.threads = static_cast<std::size_t>(std::strtoull(next().c_str(), nullptr, 10));
    } else if (arg == "--formats") {
      formats_spec = next();
    } else if (arg == "--out") {
      out_prefix = next();
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (corpus.empty()) {
    std::fprintf(stderr, "usage: mfla_legacy_sweep --corpus NAME [options]\n");
    return 2;
  }

  try {
    std::vector<TestMatrix> dataset;
    if (corpus == "general") {
      GeneralCorpusOptions opts;
      opts.count = count;
      dataset = build_general_corpus(opts);
    } else {
      GraphCorpusOptions opts;
      opts.counts = {count, count, count, count};
      dataset = build_graph_corpus(opts, corpus);
    }
    const std::vector<FormatId> formats = parse_format_keys(formats_spec);
    const auto results = run_experiment(dataset, formats, cfg, sched);
    write_results_csv(out_prefix + "_raw.csv", results);
    std::printf("legacy path: %zu matrices x %zu formats -> %s_raw.csv\n", dataset.size(),
                formats.size(), out_prefix.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
