// mfla_client: thin client for the sweep-serving daemon (docs/SERVING.md).
//
// Submits one sweep spec to mfla_served, consumes the JSONL event stream,
// reconstructs the results, and writes the SAME raw CSV mfla_experiment
// would write for that spec — byte-identical, which the serve CI job
// verifies with cmp(1). Also speaks the stats request (--stats).
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/errors.hpp"
#include "core/results_io.hpp"
#include "serve/client.hpp"

namespace {

using namespace mfla;

// Exit codes mirror mfla_experiment where the classes overlap (0/2/3/4)
// and add the client-specific outcomes: 5 rejected by admission control,
// 6 sweep canceled server-side, 7 aborted via --abort-after-events.
constexpr int kExitOk = 0;
constexpr int kExitUsage = 2;
constexpr int kExitIo = 3;
constexpr int kExitServer = 4;
constexpr int kExitRejected = 5;
constexpr int kExitCanceled = 6;
constexpr int kExitAborted = 7;

void print_usage(std::FILE* out) {
  std::fprintf(out,
               "usage: mfla_client --socket PATH [--stats] [--tenant NAME] [--corpus NAME]\n"
               "       [--count N] [--nev K] [--buffer B] [--restarts R] [--formats keys]\n"
               "       [--which W] [--seed S] [--ref-tier TIER] [--no-resume]\n"
               "       [--out prefix] [--timeout-ms N] [--abort-after-events N] [--help]\n");
}

[[noreturn]] void print_help() {
  print_usage(stdout);
  std::printf(
      "\nSubmit one sweep to a running mfla_served and write the raw results\n"
      "CSV — byte-identical to mfla_experiment's for the same spec.\n"
      "\noptions:\n"
      "  --socket PATH       daemon socket (required)\n"
      "  --stats             print the daemon's stats line and exit\n"
      "  --tenant NAME       admission-control tenant (default \"default\")\n"
      "  --corpus NAME       general|biological|infrastructure|social|miscellaneous\n"
      "  --count N           matrices per corpus class (default 24)\n"
      "  --nev K / --buffer B / --restarts R / --formats keys / --seed S\n"
      "                      sweep spec, defaults matching mfla_experiment\n"
      "  --which W           largest_magnitude (default) | smallest_magnitude |\n"
      "                      largest_real | smallest_real\n"
      "  --ref-tier TIER     f128_only (default) | dd_first\n"
      "  --no-resume         ignore the server-side journal of a prior retry\n"
      "  --out prefix        CSV output prefix (default out/served)\n"
      "  --timeout-ms N      socket timeout (default 600000)\n"
      "  --abort-after-events N\n"
      "                      test hook: close the connection after N events\n"
      "  --help, -h          this help\n"
      "\nexit codes: 0 ok, 2 usage, 3 connection/stream failure, 4 sweep failed\n"
      "server-side, 5 rejected (overloaded/quota/draining), 6 canceled, 7\n"
      "aborted via --abort-after-events\n");
  std::exit(0);
}

std::uint64_t parse_uint(const char* option, const std::string& value, std::uint64_t max) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  if (value.empty() || end != value.c_str() + value.size() ||
      value.find_first_not_of("0123456789") != std::string::npos || errno == ERANGE ||
      v > max) {
    std::fprintf(stderr, "invalid value '%s' for %s\n", value.c_str(), option);
    print_usage(stderr);
    std::exit(kExitUsage);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  serve::ClientOptions copts;
  serve::SweepRequest req;
  std::string out_prefix = "out/served";
  bool stats_only = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        print_usage(stderr);
        std::exit(kExitUsage);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      copts.socket_path = next();
    } else if (arg == "--stats") {
      stats_only = true;
    } else if (arg == "--tenant") {
      req.tenant = next();
    } else if (arg == "--corpus") {
      req.corpus = next();
    } else if (arg == "--count") {
      req.count = static_cast<std::size_t>(parse_uint("--count", next(), 1000000));
    } else if (arg == "--nev") {
      req.nev = static_cast<std::size_t>(parse_uint("--nev", next(), 10000));
    } else if (arg == "--buffer") {
      req.buffer = static_cast<std::size_t>(parse_uint("--buffer", next(), 10000));
    } else if (arg == "--restarts") {
      req.restarts = static_cast<int>(parse_uint("--restarts", next(), 1000000));
    } else if (arg == "--formats") {
      req.formats = next();
    } else if (arg == "--which") {
      req.which = next();
    } else if (arg == "--seed") {
      req.seed = parse_uint("--seed", next(), UINT64_MAX);
    } else if (arg == "--ref-tier") {
      req.ref_tier = next();
    } else if (arg == "--no-resume") {
      req.resume = false;
    } else if (arg == "--out") {
      out_prefix = next();
    } else if (arg == "--timeout-ms") {
      copts.io_timeout_ms = static_cast<int>(parse_uint("--timeout-ms", next(), 86400000));
    } else if (arg == "--abort-after-events") {
      copts.abort_after_events =
          static_cast<std::size_t>(parse_uint("--abort-after-events", next(), UINT32_MAX));
    } else if (arg == "--help" || arg == "-h") {
      print_help();
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      print_usage(stderr);
      return kExitUsage;
    }
  }
  if (copts.socket_path.empty()) {
    std::fprintf(stderr, "--socket is required\n");
    print_usage(stderr);
    return kExitUsage;
  }

  try {
    if (stats_only) {
      std::printf("%s\n", serve::fetch_stats(copts).c_str());
      return kExitOk;
    }

    const serve::ClientResult r = serve::run_sweep(copts, req);
    switch (r.status) {
      case serve::ClientResult::Status::ok: {
        const std::string csv = out_prefix + "_raw.csv";
        write_results_csv(csv, r.results);
        std::printf("sweep %s: %zu matrices, %zu runs executed + %zu replayed "
                    "(server wall %.1fs)\n",
                    r.sweep_id.c_str(), r.results.size(), r.executed, r.replayed,
                    r.elapsed_seconds);
        std::printf("results written to %s\n", csv.c_str());
        return kExitOk;
      }
      case serve::ClientResult::Status::rejected:
        std::fprintf(stderr, "rejected (%s): %s\n", r.reject_reason.c_str(), r.error.c_str());
        return kExitRejected;
      case serve::ClientResult::Status::canceled:
        std::fprintf(stderr, "sweep %s canceled server-side (drain or dead stream); "
                             "retry to resume from its journal\n",
                     r.sweep_id.c_str());
        return kExitCanceled;
      case serve::ClientResult::Status::error:
        std::fprintf(stderr, "sweep failed server-side: %s\n", r.error.c_str());
        return kExitServer;
      case serve::ClientResult::Status::aborted:
        std::fprintf(stderr, "%s\n", r.error.c_str());
        return kExitAborted;
      case serve::ClientResult::Status::protocol_error:
        std::fprintf(stderr, "protocol error: %s\n", r.error.c_str());
        return kExitIo;
      case serve::ClientResult::Status::io_error:
        std::fprintf(stderr, "connection failed: %s\n", r.error.c_str());
        return kExitIo;
    }
    return kExitIo;
  } catch (const IoError& e) {
    std::fprintf(stderr, "mfla_client: %s\n", e.what());
    return kExitIo;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mfla_client: %s\n", e.what());
    return kExitServer;
  }
}
