// mfla_served: the sweep-serving daemon (docs/SERVING.md).
//
// Listens on a Unix-domain socket, runs sweep requests from many tenants
// concurrently over one shared thread pool and one shared reference
// cache, and streams each sweep's results back as JSONL. Admission
// control (--max-active/--max-queued/--max-per-tenant) bounds the load;
// anything beyond it is rejected explicitly, never hung.
//
// Shutdown: the first SIGTERM/SIGINT drains — the listener closes, queued
// requests are rejected, in-flight sweeps finish and their journals
// flush, then the process exits 0. A second signal cancels the in-flight
// sweeps too (they stop at the next task boundary; their journals make a
// retried request resume where they stopped).
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "core/errors.hpp"
#include "serve/server.hpp"

namespace {

using namespace mfla;

constexpr int kExitOk = 0;
constexpr int kExitUsage = 2;
constexpr int kExitIo = 3;

// Signal handlers only bump a counter (async-signal-safe); the watcher
// thread translates counts into drain/cancel calls, which take locks.
std::atomic<int> g_signals{0};

extern "C" void handle_signal(int) { g_signals.fetch_add(1, std::memory_order_relaxed); }

void print_usage(std::FILE* out) {
  std::fprintf(out,
               "usage: mfla_served --socket PATH --state-dir DIR [--threads N]\n"
               "       [--max-active N] [--max-queued N] [--max-per-tenant N]\n"
               "       [--io-timeout-ms N] [--help]\n");
}

[[noreturn]] void print_help() {
  print_usage(stdout);
  std::printf(
      "\nServe mfla sweeps over a Unix-domain socket (protocol: one JSONL\n"
      "request line in, a JSONL event stream out; see docs/SERVING.md).\n"
      "\noptions:\n"
      "  --socket PATH       socket to listen on (replaces a stale file)\n"
      "  --state-dir DIR     daemon state root: shared reference cache at\n"
      "                      DIR/refcache, per-sweep checkpoint journals\n"
      "                      under DIR/sweeps/<id>/\n"
      "  --threads N         shared worker pool size; 0 = all cores (default 0)\n"
      "  --max-active N      sweeps executing concurrently (default 2)\n"
      "  --max-queued N      admission queue depth beyond that (default 8)\n"
      "  --max-per-tenant N  one tenant's share of active+queued (default 4)\n"
      "  --io-timeout-ms N   per-connection socket timeout (default 30000)\n"
      "  --help, -h          this help\n"
      "\nSIGTERM/SIGINT drains (in-flight sweeps finish, journals flush,\n"
      "exit 0); a second signal cancels in-flight sweeps at the next task\n"
      "boundary (their journals keep them resumable).\n");
  std::exit(0);
}

std::uint64_t parse_uint(const char* option, const std::string& value, std::uint64_t max) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  if (value.empty() || end != value.c_str() + value.size() ||
      value.find_first_not_of("0123456789") != std::string::npos || errno == ERANGE ||
      v > max) {
    std::fprintf(stderr, "invalid value '%s' for %s\n", value.c_str(), option);
    print_usage(stderr);
    std::exit(kExitUsage);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  serve::ServerOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        print_usage(stderr);
        std::exit(kExitUsage);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      opts.socket_path = next();
    } else if (arg == "--state-dir") {
      opts.state_dir = next();
    } else if (arg == "--threads") {
      opts.threads = static_cast<std::size_t>(parse_uint("--threads", next(), 4096));
    } else if (arg == "--max-active") {
      opts.limits.max_active = static_cast<std::size_t>(parse_uint("--max-active", next(), 4096));
    } else if (arg == "--max-queued") {
      opts.limits.max_queued = static_cast<std::size_t>(parse_uint("--max-queued", next(), 65536));
    } else if (arg == "--max-per-tenant") {
      opts.limits.max_per_tenant =
          static_cast<std::size_t>(parse_uint("--max-per-tenant", next(), 65536));
    } else if (arg == "--io-timeout-ms") {
      opts.io_timeout_ms = static_cast<int>(parse_uint("--io-timeout-ms", next(), 86400000));
    } else if (arg == "--help" || arg == "-h") {
      print_help();
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      print_usage(stderr);
      return kExitUsage;
    }
  }
  if (opts.socket_path.empty() || opts.state_dir.empty()) {
    std::fprintf(stderr, "--socket and --state-dir are required\n");
    print_usage(stderr);
    return kExitUsage;
  }
  if (opts.limits.max_active == 0 || opts.limits.max_per_tenant == 0) {
    std::fprintf(stderr, "--max-active and --max-per-tenant must be positive\n");
    print_usage(stderr);
    return kExitUsage;
  }

  try {
    serve::Server server(opts);

    struct sigaction sa{};
    sa.sa_handler = handle_signal;
    sigemptyset(&sa.sa_mask);
    (void)sigaction(SIGTERM, &sa, nullptr);
    (void)sigaction(SIGINT, &sa, nullptr);

    std::fprintf(stderr, "mfla_served: listening on %s (state %s, %zu active / %zu queued)\n",
                 opts.socket_path.c_str(), opts.state_dir.c_str(), opts.limits.max_active,
                 opts.limits.max_queued);

    std::atomic<bool> done{false};
    std::thread watcher([&] {
      int acted = 0;
      while (!done.load(std::memory_order_acquire)) {
        const int n = g_signals.load(std::memory_order_relaxed);
        if (n >= 2 && acted < 2) {
          std::fprintf(stderr, "mfla_served: second signal — canceling in-flight sweeps\n");
          server.request_cancel();
          acted = 2;
        } else if (n >= 1 && acted < 1) {
          std::fprintf(stderr, "mfla_served: draining (in-flight sweeps finish; signal again "
                               "to cancel them)\n");
          server.request_drain();
          acted = 1;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
    });

    server.serve();
    done.store(true, std::memory_order_release);
    watcher.join();

    const serve::ServerStats s = server.stats_snapshot();
    std::fprintf(stderr,
                 "mfla_served: drained — %llu connections, %llu sweeps ok, %llu canceled, "
                 "%llu failed, %llu rejected\n",
                 static_cast<unsigned long long>(s.connections),
                 static_cast<unsigned long long>(s.sweeps_ok),
                 static_cast<unsigned long long>(s.sweeps_canceled),
                 static_cast<unsigned long long>(s.sweeps_failed),
                 static_cast<unsigned long long>(s.admission.rejected_overloaded +
                                                 s.admission.rejected_tenant +
                                                 s.admission.rejected_shutdown));
    return kExitOk;
  } catch (const IoError& e) {
    std::fprintf(stderr, "mfla_served: %s\n", e.what());
    return kExitIo;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mfla_served: %s\n", e.what());
    return kExitIo;
  }
}
