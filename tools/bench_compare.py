#!/usr/bin/env python3
"""Compare benchmark JSON outputs against committed baselines.

The CI bench job runs every harness (Google Benchmark microbenchmarks and
the plain JSON harnesses alike), then calls this script to diff the fresh
JSONs against ``bench/baselines/*.json``. A wall-clock regression beyond
the threshold (default 25%) fails the job; improvements and informational
counters are reported in the trajectory table but never fail.

Metric extraction is direction-aware:

* Google Benchmark files (a top-level ``benchmarks`` array): one
  lower-is-better metric per benchmark entry, its ``real_time`` converted
  to seconds.
* Plain harness files (``bench_reference_cache``, ``bench_reference_tier``):
  numeric leaves flattened to dotted paths. ``*_seconds``/``*seconds`` are
  lower-is-better, ``*_speedup`` higher-is-better, everything else
  (solve/matrix counts, rates) is informational.

Noise guards: timings where baseline and current are both under
``--min-seconds`` (default 10 ms) are reported but not gated, and speedup
ratios are clamped at 50x before comparison — a cache-hit ratio of 3000x
vs 1500x is measurement noise on a sub-millisecond denominator, not a
regression.

Usage:
    bench_compare.py [--baselines DIR] [--threshold 0.25] [--update] FILE...

``--update`` copies the current files over the baselines (seeding or
intentional re-baselining after a reviewed perf change) instead of
comparing.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import shutil
import sys

SPEEDUP_CLAMP = 50.0

TIME_UNIT_SECONDS = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}


def load_metrics(path: pathlib.Path):
    """Return {metric_name: (value, direction)} for one benchmark JSON.

    direction is "lower" (gated, lower is better), "higher" (gated, higher
    is better) or "info" (reported only).
    """
    with open(path) as f:
        data = json.load(f)
    metrics = {}
    if isinstance(data, dict) and isinstance(data.get("benchmarks"), list):
        for entry in data["benchmarks"]:
            name = entry.get("name")
            if not name or entry.get("run_type") == "aggregate":
                continue
            unit = TIME_UNIT_SECONDS.get(entry.get("time_unit", "ns"), 1e-9)
            if isinstance(entry.get("real_time"), (int, float)):
                metrics[name] = (entry["real_time"] * unit, "lower")
        return metrics

    def walk(prefix, node):
        if isinstance(node, dict):
            for key, value in node.items():
                walk(f"{prefix}.{key}" if prefix else key, value)
        elif isinstance(node, (int, float)) and not isinstance(node, bool):
            leaf = prefix.rsplit(".", 1)[-1]
            if leaf.endswith("seconds"):
                metrics[prefix] = (float(node), "lower")
            elif leaf.endswith("speedup"):
                metrics[prefix] = (float(node), "higher")
            else:
                metrics[prefix] = (float(node), "info")

    walk("", data)
    return metrics


def compare_file(current_path, baseline_path, threshold, min_seconds, rows):
    """Append trajectory rows for one file pair; return the regression count."""
    current = load_metrics(current_path)
    baseline = load_metrics(baseline_path)
    regressions = 0
    for name in sorted(set(current) | set(baseline)):
        if name not in baseline:
            rows.append((current_path.name, name, None, current[name][0], "new"))
            continue
        if name not in current:
            rows.append((current_path.name, name, baseline[name][0], None, "removed"))
            continue
        base_value, direction = baseline[name]
        cur_value = current[name][0]
        status = "info"
        if direction == "lower":
            if base_value < min_seconds and cur_value < min_seconds:
                status = "noise"
            elif cur_value > base_value * (1.0 + threshold):
                status = "REGRESSED"
                regressions += 1
            elif cur_value < base_value * (1.0 - threshold):
                status = "improved"
            else:
                status = "ok"
        elif direction == "higher":
            base_clamped = min(base_value, SPEEDUP_CLAMP)
            cur_clamped = min(cur_value, SPEEDUP_CLAMP)
            if cur_clamped < base_clamped * (1.0 - threshold):
                status = "REGRESSED"
                regressions += 1
            elif cur_clamped > base_clamped * (1.0 + threshold):
                status = "improved"
            else:
                status = "ok"
        rows.append((current_path.name, name, base_value, cur_value, status))
    return regressions


def format_value(value):
    if value is None:
        return "-"
    if value == int(value) and abs(value) < 1e6:
        return str(int(value))
    return f"{value:.6g}"


def print_table(rows):
    header = ("file", "metric", "baseline", "current", "delta", "status")
    table = [header]
    for file_name, metric, base, cur, status in rows:
        if base not in (None, 0) and cur is not None:
            delta = f"{(cur - base) / base * 100.0:+.1f}%"
        else:
            delta = "-"
        table.append((file_name, metric, format_value(base), format_value(cur), delta, status))
    widths = [max(len(row[i]) for row in table) for i in range(len(header))]
    for i, row in enumerate(table):
        print("  ".join(cell.ljust(widths[j]) for j, cell in enumerate(row)).rstrip())
        if i == 0:
            print("  ".join("-" * w for w in widths))


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="+", type=pathlib.Path,
                        help="freshly produced benchmark JSON files")
    parser.add_argument("--baselines", type=pathlib.Path,
                        default=pathlib.Path("bench/baselines"),
                        help="directory of committed baseline JSONs (default: bench/baselines)")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="relative regression threshold (default: 0.25 = 25%%)")
    parser.add_argument("--min-seconds", type=float, default=0.01,
                        help="noise floor: timings under this are not gated (default: 0.01)")
    parser.add_argument("--update", action="store_true",
                        help="copy the current files over the baselines instead of comparing")
    args = parser.parse_args()

    if args.update:
        args.baselines.mkdir(parents=True, exist_ok=True)
        for path in args.files:
            shutil.copy(path, args.baselines / path.name)
            print(f"baseline updated: {args.baselines / path.name}")
        return 0

    rows = []
    regressions = 0
    missing = []
    for path in args.files:
        baseline_path = args.baselines / path.name
        if not baseline_path.exists():
            missing.append(baseline_path)
            continue
        regressions += compare_file(path, baseline_path, args.threshold, args.min_seconds, rows)

    if rows:
        print_table(rows)
    for baseline_path in missing:
        print(f"error: no baseline {baseline_path} (seed it with --update)", file=sys.stderr)
    if regressions:
        print(f"\nFAIL: {regressions} metric(s) regressed beyond "
              f"{args.threshold * 100:.0f}% of baseline", file=sys.stderr)
    if regressions or missing:
        return 1
    print(f"\nOK: no metric regressed beyond {args.threshold * 100:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
