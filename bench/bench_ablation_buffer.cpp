// Ablation A5: the paper's eigenvalue_buffer_count (§2.2, "novel method").
//
// With tightly clustered eigenvalues, low-precision runs permute pairs near
// the nev cut-off. Without buffer pairs, a vector that slid from position
// 10 to 11 scores as a catastrophic error even though it is accurate.
// buffer = 2 (the paper's choice) absorbs this. This harness measures
// median eigenvector errors with buffer = 0 vs 2 on a cluster-heavy corpus.
#include <cstdio>

#include "figure_common.hpp"

namespace {

using namespace mfla;

std::vector<TestMatrix> clustered_corpus(std::size_t count) {
  // Complete graphs, repeated components and low-rank matrices: spectra
  // with exact multiplicities and tight clusters around the nev boundary.
  std::vector<TestMatrix> out;
  for (std::size_t i = 0; i < count; ++i) {
    Rng rng("buffer_ablation", i);
    CooMatrix adj;
    switch (i % 3) {
      case 0:
        adj = complete(18 + static_cast<std::uint32_t>(rng.uniform_index(10)));
        break;
      case 1: {
        const CooMatrix unit = complete(7);
        CooMatrix u = unit;
        for (int c = 0; c < 3; ++c) u = disjoint_union(u, unit);
        adj = disjoint_union(u, path(20));
        break;
      }
      default:
        adj = stochastic_block(90, 3, 0.35, 0.01, rng);
        break;
    }
    out.push_back(make_test_matrix("cluster_" + std::to_string(i), "misc", "cluster",
                                   graph_laplacian_pipeline(adj)));
  }
  return out;
}

template <typename T>
void run_buffer(const char* label, const std::vector<TestMatrix>& corpus, std::size_t buffer) {
  ExperimentConfig cfg;
  cfg.buffer = buffer;
  cfg.max_restarts = 80;
  std::vector<double> vec_errs;
  std::size_t omega = 0;
  for (const auto& tm : corpus) {
    Rng rng(tm.name, cfg.seed);
    const auto start = rng.unit_vector(tm.n());
    const auto ref = compute_reference(tm, cfg, start);
    if (!ref.ok) continue;
    const auto run = run_format<T>(tm, ref, cfg, start, FormatId::float64);
    if (run.outcome == RunOutcome::ok) {
      vec_errs.push_back(std::log10(std::max(run.eigenvector_error.relative, 1e-40)));
    } else {
      ++omega;
    }
  }
  std::sort(vec_errs.begin(), vec_errs.end());
  auto pct = [&vec_errs](double p) {
    if (vec_errs.empty()) return std::nan("");
    return vec_errs[static_cast<std::size_t>(p * (static_cast<double>(vec_errs.size()) - 1) +
                                             0.5)];
  };
  std::printf("%-22s buffer=%zu %8.2f %8.2f %8.2f %6zu\n", label, buffer, pct(0.25), pct(0.5),
              pct(0.75), omega);
}

}  // namespace

int main() {
  using benchtool::scaled;
  const auto corpus = clustered_corpus(scaled(15));
  std::printf("=== Ablation A5: eigenvalue buffer count (paper §2.2) ===\n");
  std::printf("clustered-spectrum corpus: %zu matrices\n\n", corpus.size());
  std::printf("%-22s %-9s %8s %8s %8s %6s\n", "format", "", "p25", "median", "p75", "omega");
  run_buffer<Float16>("float16", corpus, 0);
  run_buffer<Float16>("float16", corpus, 2);
  run_buffer<Posit16>("posit16", corpus, 0);
  run_buffer<Posit16>("posit16", corpus, 2);
  run_buffer<float>("float32", corpus, 0);
  run_buffer<float>("float32", corpus, 2);
  std::printf(
      "\nReading: log10 eigenvector relative errors. Without the buffer, cluster\n"
      "permutations at the nev boundary inflate apparent errors; buffer = 2\n"
      "recovers the fair comparison (the paper's rationale for the method).\n");
  return 0;
}
