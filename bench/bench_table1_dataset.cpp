// Table 1 reproduction: composition of the graph corpus — the 4 aggregated
// classes built from per-category generators, with per-category counts
// (paper Table 1 shape at reduced scale; see docs/DESIGN.md §3), plus the
// general-matrix corpus statistics that define the Figure 1 workload.
#include <cstdio>
#include <map>

#include "figure_common.hpp"

int main() {
  using namespace mfla;
  using benchtool::scaled;

  GraphCorpusOptions gopts;
  gopts.counts.biological = scaled(40);
  gopts.counts.infrastructure = scaled(29);
  gopts.counts.social = scaled(30);
  gopts.counts.miscellaneous = scaled(45);

  std::printf("=== Table 1: classification of graphs into four classes ===\n\n");
  const auto comp = graph_corpus_composition(gopts);
  std::map<std::string, std::size_t> class_totals;
  for (const auto& c : comp) class_totals[c.klass] += c.count;

  std::printf("%-16s %10s   %-16s %14s\n", "class", "class size", "graph category",
              "category size");
  std::string last_class;
  for (const auto& c : comp) {
    if (c.klass != last_class) {
      std::printf("%-16s %10zu   %-16s %14zu\n", c.klass.c_str(), class_totals[c.klass],
                  c.category.c_str(), c.count);
      last_class = c.klass;
    } else {
      std::printf("%-16s %10s   %-16s %14zu\n", "", "", c.category.c_str(), c.count);
    }
  }
  std::size_t total = 0;
  for (const auto& [k, v] : class_totals) total += v;
  std::printf("\ntotal graphs: %zu (paper: 3,302 at full Network Repository scale)\n\n", total);

  // General corpus statistics (the Figure 1 workload).
  GeneralCorpusOptions gen;
  gen.count = scaled(64);
  const auto corpus = build_general_corpus(gen);
  std::map<std::string, std::size_t> fam;
  std::size_t max_nnz = 0, min_n = SIZE_MAX, max_n = 0;
  for (const auto& t : corpus) {
    fam[t.category]++;
    max_nnz = std::max(max_nnz, t.nnz());
    min_n = std::min(min_n, t.n());
    max_n = std::max(max_n, t.n());
  }
  std::printf("=== General matrix corpus (SuiteSparse substitute) ===\n\n");
  std::printf("%zu symmetric matrices, n in [%zu, %zu], nnz <= %zu (paper filter: 20,000)\n",
              corpus.size(), min_n, max_n, max_nnz);
  for (const auto& [family, count] : fam) {
    std::printf("  %-12s %4zu\n", family.c_str(), count);
  }
  return 0;
}
