// Microbenchmark: scheduling granularity of the experiment engine.
//
// Compares the former design (parallel across matrices only: one task per
// matrix runs its reference solve plus every format sequentially) against
// the task-parallel engine (one task per (matrix, format) with the
// reference as a per-matrix prerequisite) on a deliberately skewed corpus —
// one large matrix plus several small ones. With matrix granularity the
// worker that draws the large matrix serializes its whole format sweep
// while the other workers idle; with task granularity its format runs fan
// out as soon as the reference lands.
//
// The matrix-granularity baseline is the deprecated legacy path, exercised
// here on purpose.
#define MFLA_ALLOW_DEPRECATED
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "core/experiment.hpp"
#include "graph/generators.hpp"
#include "graph/laplacian.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace mfla;

std::vector<TestMatrix> skewed_corpus() {
  std::vector<TestMatrix> ds;
  Rng big_rng(7001);
  ds.push_back(make_test_matrix("sched_big", "social", "soc",
                                graph_laplacian_pipeline(erdos_renyi(150, 0.08, big_rng))));
  for (std::uint64_t k = 0; k < 6; ++k) {
    Rng rng(7100 + k);
    ds.push_back(make_test_matrix("sched_small_" + std::to_string(k), "social", "soc",
                                  graph_laplacian_pipeline(erdos_renyi(36, 0.2, rng))));
  }
  return ds;
}

std::vector<FormatId> bench_formats() {
  return {FormatId::float16, FormatId::bfloat16, FormatId::posit16, FormatId::takum16};
}

ExperimentConfig bench_config() {
  ExperimentConfig cfg;
  cfg.nev = 6;
  cfg.buffer = 2;
  cfg.max_restarts = 60;
  cfg.reference_max_restarts = 150;
  return cfg;
}

/// The old engine, reconstructed: parallelism across matrices only.
void BM_MatrixGranularity(benchmark::State& state) {
  const auto ds = skewed_corpus();
  const auto formats = bench_formats();
  const auto cfg = bench_config();
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    std::vector<MatrixResult> results(ds.size());
    {
      ThreadPool pool(threads);
      for (std::size_t i = 0; i < ds.size(); ++i) {
        pool.submit([&results, &ds, &formats, &cfg, i] {
          results[i] = run_matrix(ds[i], formats, cfg);
        });
      }
      pool.wait_idle();
    }
    benchmark::DoNotOptimize(results.data());
  }
}

/// The task-parallel engine: (matrix, format) granularity with cached
/// per-matrix references.
void BM_TaskGranularity(benchmark::State& state) {
  const auto ds = skewed_corpus();
  const auto formats = bench_formats();
  const auto cfg = bench_config();
  ScheduleOptions sched;
  sched.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto results = run_experiment(ds, formats, cfg, sched);
    benchmark::DoNotOptimize(results.data());
  }
}

BENCHMARK(BM_MatrixGranularity)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

BENCHMARK(BM_TaskGranularity)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

}  // namespace
