// Microbenchmark A1: per-operation cost of every emulated format.
//
// The paper deliberately excludes execution time from its evaluation (all
// formats are software-emulated there too); this harness documents the
// emulation costs of *this* library so users can size experiments.
#include <benchmark/benchmark.h>

#include <vector>

#include "arith/format_registry.hpp"
#include "support/rng.hpp"

namespace {

using namespace mfla;

template <typename T>
std::vector<T> random_values(std::size_t n, double lo_exp, double hi_exp, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<T> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(NumTraits<T>::from_double(rng.normal() * rng.log_uniform(lo_exp, hi_exp)));
  }
  return out;
}

template <typename T>
void BM_Add(benchmark::State& state) {
  const auto a = random_values<T>(1024, -2, 2, 1);
  const auto b = random_values<T>(1024, -2, 2, 2);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(a[i & 1023] + b[i & 1023]);
    ++i;
  }
}

template <typename T>
void BM_Mul(benchmark::State& state) {
  const auto a = random_values<T>(1024, -2, 2, 3);
  const auto b = random_values<T>(1024, -2, 2, 4);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(a[i & 1023] * b[i & 1023]);
    ++i;
  }
}

template <typename T>
void BM_Div(benchmark::State& state) {
  const auto a = random_values<T>(1024, -2, 2, 5);
  auto b = random_values<T>(1024, 0, 2, 6);
  for (auto& v : b) {
    if (NumTraits<T>::to_double(v) == 0.0) v = NumTraits<T>::from_double(1.0);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(a[i & 1023] / b[i & 1023]);
    ++i;
  }
}

template <typename T>
T generic_sqrt(T x) {
  // The using-declaration shadows ::sqrt; ADL finds the hidden friends.
  using mfla::sqrt;
  return sqrt(x);
}

template <typename T>
void BM_Sqrt(benchmark::State& state) {
  auto a = random_values<T>(1024, -2, 2, 7);
  for (auto& v : a) v = NumTraits<T>::from_double(std::abs(NumTraits<T>::to_double(v)));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(generic_sqrt(a[i & 1023]));
    ++i;
  }
}

template <typename T>
void BM_FromDouble(benchmark::State& state) {
  Rng rng(8);
  std::vector<double> xs(1024);
  for (auto& x : xs) x = rng.normal() * rng.log_uniform(-2, 2);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(NumTraits<T>::from_double(xs[i & 1023]));
    ++i;
  }
}

#define MFLA_BENCH_FORMAT(T)                      \
  BENCHMARK_TEMPLATE(BM_Add, T);                  \
  BENCHMARK_TEMPLATE(BM_Mul, T);                  \
  BENCHMARK_TEMPLATE(BM_Div, T);                  \
  BENCHMARK_TEMPLATE(BM_Sqrt, T);                 \
  BENCHMARK_TEMPLATE(BM_FromDouble, T)

MFLA_BENCH_FORMAT(OFP8E4M3);
MFLA_BENCH_FORMAT(Float16);
MFLA_BENCH_FORMAT(BFloat16);
MFLA_BENCH_FORMAT(Posit16);
MFLA_BENCH_FORMAT(Takum16);
MFLA_BENCH_FORMAT(Posit32);
MFLA_BENCH_FORMAT(Takum32);
MFLA_BENCH_FORMAT(Posit64);
MFLA_BENCH_FORMAT(Takum64);
MFLA_BENCH_FORMAT(float);
MFLA_BENCH_FORMAT(double);
MFLA_BENCH_FORMAT(Quad);

}  // namespace
