// Figure 3 reproduction: infrastructure graph Laplacians (roads, power
// grids, geometric networks), cumulative error distributions.
//
// Honors MFLA_BENCH_SCALE (dataset size multiplier); see docs/EXPERIMENTS.md.
#include "figure_common.hpp"

int main() {
  using namespace mfla;
  GraphCorpusOptions opts;
  opts.counts.infrastructure = benchtool::scaled(29);  // paper class size 1:1
  const auto dataset = build_graph_corpus(opts, "infrastructure");
  benchtool::run_figure("fig3_infrastructure", "infrastructure graph Laplacians", dataset);
  return 0;
}
