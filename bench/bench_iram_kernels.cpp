// Microbenchmark A2: throughput of the IRAM's inner kernels (dot, norm,
// axpy, sparse matvec, full Arnoldi step) per format and problem size.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/arnoldi.hpp"
#include "kernels/vector_ops.hpp"
#include "graph/generators.hpp"
#include "graph/laplacian.hpp"
#include "sparse/csr.hpp"
#include "support/rng.hpp"

namespace {

using namespace mfla;

template <typename T>
std::vector<T> random_vec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<T> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) v.push_back(NumTraits<T>::from_double(rng.normal()));
  return v;
}

template <typename T>
void BM_Dot(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = random_vec<T>(n, 1);
  const auto y = random_vec<T>(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::dot(n, x.data(), y.data()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

template <typename T>
void BM_Axpy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = random_vec<T>(n, 3);
  auto y = random_vec<T>(n, 4);
  const T alpha = NumTraits<T>::from_double(0.37);
  for (auto _ : state) {
    kernels::axpy(n, alpha, x.data(), y.data());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

template <typename T>
CsrMatrix<T> bench_matrix(std::size_t n) {
  Rng rng("bench_matrix", n);
  const CooMatrix lap = graph_laplacian_pipeline(erdos_renyi(static_cast<std::uint32_t>(n),
                                                             8.0 / static_cast<double>(n), rng));
  return CsrMatrix<double>::from_coo(lap).convert<T>();
}

template <typename T>
void BM_SpMV(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = bench_matrix<T>(n);
  const auto x = random_vec<T>(a.rows(), 5);
  std::vector<T> y(a.rows());
  for (auto _ : state) {
    a.matvec(x.data(), y.data());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(a.nnz()));
}

template <typename T>
void BM_ArnoldiStep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = bench_matrix<T>(n);
  const std::size_t m = 20;
  DenseMatrix<T> v(a.rows(), m + 1), s(m + 1, m);
  Rng rng(7);
  const auto v0 = rng.unit_vector(a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) v(i, 0) = NumTraits<T>::from_double(v0[i]);
  // Pre-fill the first m-1 steps; benchmark the last (most expensive) one.
  Rng step_rng(8);
  for (std::size_t j = 0; j + 1 < m; ++j) arnoldi_step(a, v, s, j, step_rng);
  for (auto _ : state) {
    arnoldi_step(a, v, s, m - 1, step_rng);
    benchmark::DoNotOptimize(s(m - 1, m - 1));
  }
}

#define MFLA_KERNEL_BENCH(T)                                    \
  BENCHMARK_TEMPLATE(BM_Dot, T)->Arg(256)->Arg(4096);           \
  BENCHMARK_TEMPLATE(BM_Axpy, T)->Arg(256)->Arg(4096);          \
  BENCHMARK_TEMPLATE(BM_SpMV, T)->Arg(512);                     \
  BENCHMARK_TEMPLATE(BM_ArnoldiStep, T)->Arg(512)

MFLA_KERNEL_BENCH(float);
MFLA_KERNEL_BENCH(double);
MFLA_KERNEL_BENCH(Float16);
MFLA_KERNEL_BENCH(BFloat16);
MFLA_KERNEL_BENCH(Posit16);
MFLA_KERNEL_BENCH(Takum16);
MFLA_KERNEL_BENCH(Posit32);
MFLA_KERNEL_BENCH(Takum32);
MFLA_KERNEL_BENCH(Quad);

}  // namespace
