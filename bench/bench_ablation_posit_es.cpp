// Ablation A3: posit exponent-size (es) sweep.
//
// The Posit Standard (2022) fixed es = 2 for every width; earlier drafts
// used es = 0 (posit8), 1 (posit16), 2 (posit32), 3 (posit64). This
// ablation quantifies how es trades dynamic range against near-one
// precision in the eigenvalue pipeline.
#include <cstdio>

#include "figure_common.hpp"

namespace {

using namespace mfla;

template <typename T>
void run_es(const char* label, const std::vector<TestMatrix>& corpus) {
  ExperimentConfig cfg;
  cfg.max_restarts = 60;
  std::vector<double> errs;
  std::size_t omega = 0, sigma = 0;
  for (const auto& tm : corpus) {
    Rng rng(tm.name, cfg.seed);
    const auto start = rng.unit_vector(tm.n());
    const auto ref = compute_reference(tm, cfg, start);
    if (!ref.ok) continue;
    const auto run = run_format<T>(tm, ref, cfg, start, FormatId::posit16);
    switch (run.outcome) {
      case RunOutcome::ok:
        errs.push_back(std::log10(std::max(run.eigenvalue_error.relative, 1e-40)));
        break;
      case RunOutcome::no_convergence:
        ++omega;
        break;
      case RunOutcome::range_exceeded:
        ++sigma;
        break;
    }
  }
  std::sort(errs.begin(), errs.end());
  auto pct = [&errs](double p) {
    if (errs.empty()) return std::nan("");
    return errs[static_cast<std::size_t>(p * (static_cast<double>(errs.size()) - 1) + 0.5)];
  };
  std::printf("%-14s %8.2f %8.2f %8.2f %6zu %6zu\n", label, pct(0.25), pct(0.5), pct(0.75), omega,
              sigma);
}

}  // namespace

int main() {
  using benchtool::scaled;
  GeneralCorpusOptions gopts;
  gopts.count = scaled(24);
  const auto general = build_general_corpus(gopts);
  GraphCorpusOptions gr;
  gr.counts = {scaled(8), scaled(6), scaled(6), 0};
  gr.max_n = 200;
  const auto graphs = build_graph_corpus(gr);

  std::printf("=== Ablation A3: posit es sweep (log10 eigenvalue rel. error) ===\n\n");
  std::printf("-- general matrices (%zu) --\n", general.size());
  std::printf("%-14s %8s %8s %8s %6s %6s\n", "format", "p25", "median", "p75", "omega", "sigma");
  run_es<Posit<16, 0>>("posit16 es=0", general);
  run_es<Posit<16, 1>>("posit16 es=1", general);
  run_es<Posit<16, 2>>("posit16 es=2", general);
  run_es<Posit<16, 3>>("posit16 es=3", general);
  run_es<Posit<32, 0>>("posit32 es=0", general);
  run_es<Posit<32, 1>>("posit32 es=1", general);
  run_es<Posit<32, 2>>("posit32 es=2", general);
  run_es<Posit<32, 3>>("posit32 es=3", general);

  std::printf("\n-- graph Laplacians (%zu) --\n", graphs.size());
  std::printf("%-14s %8s %8s %8s %6s %6s\n", "format", "p25", "median", "p75", "omega", "sigma");
  run_es<Posit<16, 0>>("posit16 es=0", graphs);
  run_es<Posit<16, 1>>("posit16 es=1", graphs);
  run_es<Posit<16, 2>>("posit16 es=2", graphs);
  run_es<Posit<16, 3>>("posit16 es=3", graphs);

  std::printf(
      "\nReading: small es buys fraction bits near one (good for Laplacians,\n"
      "entries in [-1,1]) but shrinks dynamic range (bad for general matrices,\n"
      "where es=0/1 runs lose matrices to omega/sigma failures).\n");
  return 0;
}
