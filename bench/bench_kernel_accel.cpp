// Exact-engine vs LUT fast-path throughput of the kernel layer
// (kernels/accel.hpp) per format and width: dot, axpy and sparse matvec
// for every accelerated format. The acceptance bar is a >= 3x speedup on
// all three kernels for the four 8-bit formats; the 16-bit decode-table
// paths are measured alongside for the performance trajectory.
//
// Exact timings use kernels::ref:: (always the exact engines); LUT timings
// use the dispatching kernels with the runtime switch forced on. In an
// MFLA_ENABLE_LUT=0 build the dispatching kernels equal ref::, so the
// "Lut" series degenerates to a second exact measurement.
#include <benchmark/benchmark.h>

#include <vector>

#include "graph/generators.hpp"
#include "graph/laplacian.hpp"
#include "kernels/accel.hpp"
#include "kernels/spmv.hpp"
#include "kernels/vector_ops.hpp"
#include "sparse/csr.hpp"
#include "support/rng.hpp"

namespace {

using namespace mfla;

template <typename T>
std::vector<T> random_vec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<T> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) v.push_back(NumTraits<T>::from_double(rng.normal()));
  return v;
}

template <typename T>
CsrMatrix<T> bench_matrix(std::size_t n) {
  Rng rng("bench_kernel_accel", n);
  const CooMatrix lap = graph_laplacian_pipeline(erdos_renyi(static_cast<std::uint32_t>(n),
                                                             8.0 / static_cast<double>(n), rng));
  return CsrMatrix<double>::from_coo(lap).convert<T>();
}

template <typename T, bool kLut>
void BM_Dot(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = random_vec<T>(n, 1);
  const auto y = random_vec<T>(n, 2);
  const bool prev = kernels::set_lut_enabled(kLut);
  for (auto _ : state) {
    if constexpr (kLut) {
      benchmark::DoNotOptimize(kernels::dot(n, x.data(), y.data()));
    } else {
      benchmark::DoNotOptimize(kernels::ref::dot(n, x.data(), y.data()));
    }
  }
  kernels::set_lut_enabled(prev);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

template <typename T, bool kLut>
void BM_Axpy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = random_vec<T>(n, 3);
  auto y = random_vec<T>(n, 4);
  const T alpha = NumTraits<T>::from_double(0.37);
  const bool prev = kernels::set_lut_enabled(kLut);
  for (auto _ : state) {
    if constexpr (kLut) {
      kernels::axpy(n, alpha, x.data(), y.data());
    } else {
      kernels::ref::axpy(n, alpha, x.data(), y.data());
    }
    benchmark::DoNotOptimize(y.data());
  }
  kernels::set_lut_enabled(prev);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

template <typename T, bool kLut>
void BM_SpMV(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = bench_matrix<T>(n);
  const auto x = random_vec<T>(a.rows(), 5);
  std::vector<T> y(a.rows());
  const bool prev = kernels::set_lut_enabled(kLut);
  for (auto _ : state) {
    if constexpr (kLut) {
      kernels::spmv(a.rows(), a.row_ptr().data(), a.col_idx().data(), a.values().data(),
                    x.data(), y.data());
    } else {
      kernels::ref::spmv(a.rows(), a.row_ptr().data(), a.col_idx().data(), a.values().data(),
                         x.data(), y.data());
    }
    benchmark::DoNotOptimize(y.data());
  }
  kernels::set_lut_enabled(prev);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(a.nnz()));
}

#define MFLA_ACCEL_BENCH(T)                                          \
  BENCHMARK_TEMPLATE(BM_Dot, T, false)->Name("Dot/exact/" #T)->Arg(4096);   \
  BENCHMARK_TEMPLATE(BM_Dot, T, true)->Name("Dot/lut/" #T)->Arg(4096);      \
  BENCHMARK_TEMPLATE(BM_Axpy, T, false)->Name("Axpy/exact/" #T)->Arg(4096); \
  BENCHMARK_TEMPLATE(BM_Axpy, T, true)->Name("Axpy/lut/" #T)->Arg(4096);    \
  BENCHMARK_TEMPLATE(BM_SpMV, T, false)->Name("SpMV/exact/" #T)->Arg(512);  \
  BENCHMARK_TEMPLATE(BM_SpMV, T, true)->Name("SpMV/lut/" #T)->Arg(512)

// The four 8-bit formats (acceptance: >= 3x on dot/axpy/spmv for all).
MFLA_ACCEL_BENCH(OFP8E4M3);
MFLA_ACCEL_BENCH(OFP8E5M2);
MFLA_ACCEL_BENCH(Posit8);
MFLA_ACCEL_BENCH(Takum8);
// The four 16-bit formats (decode-table paths).
MFLA_ACCEL_BENCH(Float16);
MFLA_ACCEL_BENCH(BFloat16);
MFLA_ACCEL_BENCH(Posit16);
MFLA_ACCEL_BENCH(Takum16);

}  // namespace
