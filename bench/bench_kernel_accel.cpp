// Exact-engine vs LUT vs SIMD throughput of the kernel layer
// (kernels/accel.hpp, kernels/simd_avx2.hpp) per format and width: dot,
// axpy and sparse matvec for every accelerated format, plus the
// multi-vector primitives (spmm, dot_block) against k single-vector calls.
// The acceptance bar is a >= 3x speedup of the LUT paths over the exact
// engines on all three kernels for the four 8-bit formats; the SIMD series
// measures the third tier on top (see docs/PERFORMANCE.md for what should
// and should not be expected to move — single-vector dot is chain-latency
// bound, the batched primitives are where the lanes pay).
//
// Exact timings use kernels::ref:: (always the exact engines); lut timings
// force the table switch on and the SIMD switch off; simd timings force
// both on (degenerating to the lut series when the host lacks AVX2 — every
// simd-mode benchmark carries the active ISA as its label, "avx2" or
// "scalar", so results from different hosts stay interpretable). In an
// MFLA_ENABLE_LUT=0 build all three series are exact measurements.
#include <benchmark/benchmark.h>

#include <vector>

#include "graph/generators.hpp"
#include "graph/laplacian.hpp"
#include "kernels/accel.hpp"
#include "kernels/simd.hpp"
#include "kernels/spmv.hpp"
#include "kernels/vector_ops.hpp"
#include "sparse/csr.hpp"
#include "support/rng.hpp"

namespace {

using namespace mfla;

enum class Mode { exact, lut, simd };

/// Force the runtime switches for one benchmark run.
class ModeGuard {
 public:
  explicit ModeGuard(Mode m)
      : lut_prev_(kernels::set_lut_enabled(m != Mode::exact)),
        simd_prev_(kernels::set_simd_enabled(m == Mode::simd)) {}
  ~ModeGuard() {
    kernels::set_simd_enabled(simd_prev_);
    kernels::set_lut_enabled(lut_prev_);
  }

 private:
  bool lut_prev_;
  bool simd_prev_;
};

void label_isa(benchmark::State& state, Mode m) {
  if (m == Mode::simd) state.SetLabel(kernels::simd_caps().isa);
}

template <typename T>
std::vector<T> random_vec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<T> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) v.push_back(NumTraits<T>::from_double(rng.normal()));
  return v;
}

template <typename T>
CsrMatrix<T> bench_matrix(std::size_t n) {
  Rng rng("bench_kernel_accel", n);
  const CooMatrix lap = graph_laplacian_pipeline(erdos_renyi(static_cast<std::uint32_t>(n),
                                                             8.0 / static_cast<double>(n), rng));
  return CsrMatrix<double>::from_coo(lap).convert<T>();
}

template <typename T, Mode kMode>
void BM_Dot(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = random_vec<T>(n, 1);
  const auto y = random_vec<T>(n, 2);
  const ModeGuard guard(kMode);
  for (auto _ : state) {
    if constexpr (kMode == Mode::exact) {
      benchmark::DoNotOptimize(kernels::ref::dot(n, x.data(), y.data()));
    } else {
      benchmark::DoNotOptimize(kernels::dot(n, x.data(), y.data()));
    }
  }
  label_isa(state, kMode);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

template <typename T, Mode kMode>
void BM_Axpy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = random_vec<T>(n, 3);
  auto y = random_vec<T>(n, 4);
  const T alpha = NumTraits<T>::from_double(0.37);
  const ModeGuard guard(kMode);
  for (auto _ : state) {
    if constexpr (kMode == Mode::exact) {
      kernels::ref::axpy(n, alpha, x.data(), y.data());
    } else {
      kernels::axpy(n, alpha, x.data(), y.data());
    }
    benchmark::DoNotOptimize(y.data());
  }
  label_isa(state, kMode);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

template <typename T, Mode kMode>
void BM_SpMV(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = bench_matrix<T>(n);
  const auto x = random_vec<T>(a.cols(), 5);
  std::vector<T> y(a.rows());
  const ModeGuard guard(kMode);
  for (auto _ : state) {
    if constexpr (kMode == Mode::exact) {
      kernels::ref::spmv(a.rows(), a.row_ptr().data(), a.col_idx().data(), a.values().data(),
                         x.data(), y.data());
    } else {
      // Through the matrix so the offset plan (and, in simd mode, the
      // SELL-8 slice plan) is in play — that is the path solvers run.
      a.matvec(x.data(), y.data());
    }
    benchmark::DoNotOptimize(y.data());
  }
  label_isa(state, kMode);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(a.nnz()));
}

// -- Multi-vector primitives vs k single-vector calls -----------------------
// Both sides run under the same mode; the comparison isolates what one
// amortized traversal buys at each tier (range(1) = k).

template <typename T, Mode kMode, bool kBlocked>
void BM_SpMM(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  const auto a = bench_matrix<T>(n);
  const auto x = random_vec<T>(k * a.cols(), 6);
  std::vector<T> y(k * a.rows());
  const ModeGuard guard(kMode);
  for (auto _ : state) {
    if constexpr (kBlocked) {
      a.matvec_block(x.data(), a.cols(), k, y.data(), a.rows());
    } else {
      for (std::size_t c = 0; c < k; ++c)
        a.matvec(x.data() + c * a.cols(), y.data() + c * a.rows());
    }
    benchmark::DoNotOptimize(y.data());
  }
  label_isa(state, kMode);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(a.nnz() * k));
}

template <typename T, Mode kMode, bool kBlocked>
void BM_DotBlock(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  const auto x = random_vec<T>(k * n, 7);
  const auto y = random_vec<T>(n, 8);
  std::vector<T> out(k);
  const ModeGuard guard(kMode);
  for (auto _ : state) {
    if constexpr (kBlocked) {
      kernels::dot_block(n, k, x.data(), n, y.data(), out.data());
    } else {
      for (std::size_t c = 0; c < k; ++c) out[c] = kernels::dot(n, x.data() + c * n, y.data());
    }
    benchmark::DoNotOptimize(out.data());
  }
  label_isa(state, kMode);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * k));
}

#define MFLA_ACCEL_BENCH(T)                                                             \
  BENCHMARK_TEMPLATE(BM_Dot, T, Mode::exact)->Name("Dot/exact/" #T)->Arg(4096);         \
  BENCHMARK_TEMPLATE(BM_Dot, T, Mode::lut)->Name("Dot/lut/" #T)->Arg(4096);             \
  BENCHMARK_TEMPLATE(BM_Axpy, T, Mode::exact)->Name("Axpy/exact/" #T)->Arg(4096);       \
  BENCHMARK_TEMPLATE(BM_Axpy, T, Mode::lut)->Name("Axpy/lut/" #T)->Arg(4096);           \
  BENCHMARK_TEMPLATE(BM_SpMV, T, Mode::exact)->Name("SpMV/exact/" #T)->Arg(512);        \
  BENCHMARK_TEMPLATE(BM_SpMV, T, Mode::lut)->Name("SpMV/lut/" #T)->Arg(512)

// The SIMD tier only exists for the 8-bit formats.
#define MFLA_SIMD_BENCH(T)                                                              \
  BENCHMARK_TEMPLATE(BM_Dot, T, Mode::simd)->Name("Dot/simd/" #T)->Arg(4096);           \
  BENCHMARK_TEMPLATE(BM_Axpy, T, Mode::simd)->Name("Axpy/simd/" #T)->Arg(4096);         \
  BENCHMARK_TEMPLATE(BM_SpMV, T, Mode::simd)->Name("SpMV/simd/" #T)->Arg(512);          \
  BENCHMARK_TEMPLATE(BM_SpMM, T, Mode::simd, false)                                     \
      ->Name("SpMM/singles/" #T)                                                        \
      ->Args({512, 4})                                                                  \
      ->Args({512, 8})                                                                  \
      ->Args({512, 16});                                                                \
  BENCHMARK_TEMPLATE(BM_SpMM, T, Mode::simd, true)                                      \
      ->Name("SpMM/block/" #T)                                                          \
      ->Args({512, 4})                                                                  \
      ->Args({512, 8})                                                                  \
      ->Args({512, 16});                                                                \
  BENCHMARK_TEMPLATE(BM_SpMM, T, Mode::lut, true)->Name("SpMM/block_scalar/" #T)->Args( \
      {512, 8});                                                                        \
  BENCHMARK_TEMPLATE(BM_DotBlock, T, Mode::simd, false)                                 \
      ->Name("DotBlock/singles/" #T)                                                    \
      ->Args({4096, 8})                                                                 \
      ->Args({4096, 16});                                                               \
  BENCHMARK_TEMPLATE(BM_DotBlock, T, Mode::simd, true)                                  \
      ->Name("DotBlock/block/" #T)                                                      \
      ->Args({4096, 8})                                                                 \
      ->Args({4096, 16})

// The four 8-bit formats (acceptance: >= 3x lut-over-exact on
// dot/axpy/spmv for all; the simd series rides on top).
MFLA_ACCEL_BENCH(OFP8E4M3);
MFLA_ACCEL_BENCH(OFP8E5M2);
MFLA_ACCEL_BENCH(Posit8);
MFLA_ACCEL_BENCH(Takum8);
// The four 16-bit formats (decode-table paths; no SIMD tier).
MFLA_ACCEL_BENCH(Float16);
MFLA_ACCEL_BENCH(BFloat16);
MFLA_ACCEL_BENCH(Posit16);
MFLA_ACCEL_BENCH(Takum16);

MFLA_SIMD_BENCH(Posit8);
MFLA_SIMD_BENCH(Takum8);

}  // namespace
