// Exact-engine vs LUT vs per-ISA-rung throughput of the kernel layer
// (kernels/accel.hpp, kernels/simd_avx2.hpp, kernels/simd_avx512.hpp) per
// format and width: dot, axpy, scal and sparse matvec for every
// accelerated format, plus the multi-vector primitives (spmm, dot_block)
// against k single-vector calls. The acceptance bar is a >= 3x speedup of
// the LUT paths over the exact engines on all three kernels for the four
// 8-bit formats; the avx2/avx512 series measure the vector rungs on top
// (see docs/PERFORMANCE.md for what should and should not be expected to
// move — single-vector dot is chain-latency bound, axpy is load-port
// bound at every rung, the batched primitives are where the lanes pay).
//
// Exact timings use kernels::ref:: (always the exact engines); lut timings
// force the table switch on with the ladder pinned at scalar; avx2/avx512
// timings pin the ladder at that rung (degenerating to the rung below
// when the host lacks the ISA — every vector-mode benchmark carries the
// active ISA as its label, "avx512", "avx2" or "scalar", so results from
// different hosts stay interpretable). In an MFLA_ENABLE_LUT=0 build all
// series are exact measurements.
#include <benchmark/benchmark.h>

#include <vector>

#include "graph/generators.hpp"
#include "graph/laplacian.hpp"
#include "kernels/accel.hpp"
#include "kernels/simd.hpp"
#include "kernels/spmv.hpp"
#include "kernels/vector_ops.hpp"
#include "sparse/csr.hpp"
#include "support/rng.hpp"

namespace {

using namespace mfla;

enum class Mode { exact, lut, avx2, avx512 };

constexpr kernels::SimdLevel mode_level(Mode m) {
  switch (m) {
    case Mode::avx2: return kernels::SimdLevel::avx2;
    case Mode::avx512: return kernels::SimdLevel::avx512;
    default: return kernels::SimdLevel::scalar;
  }
}

/// Force the runtime switches for one benchmark run.
class ModeGuard {
 public:
  explicit ModeGuard(Mode m)
      : lut_prev_(kernels::set_lut_enabled(m != Mode::exact)),
        level_prev_(kernels::set_simd_level(mode_level(m))) {}
  ~ModeGuard() {
    kernels::set_simd_level(level_prev_);
    kernels::set_lut_enabled(lut_prev_);
  }

 private:
  bool lut_prev_;
  kernels::SimdLevel level_prev_;
};

void label_isa(benchmark::State& state, Mode m) {
  if (m == Mode::avx2 || m == Mode::avx512) state.SetLabel(kernels::simd_caps().isa);
}

template <typename T>
std::vector<T> random_vec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<T> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) v.push_back(NumTraits<T>::from_double(rng.normal()));
  return v;
}

template <typename T>
CsrMatrix<T> bench_matrix(std::size_t n) {
  Rng rng("bench_kernel_accel", n);
  const CooMatrix lap = graph_laplacian_pipeline(erdos_renyi(static_cast<std::uint32_t>(n),
                                                             8.0 / static_cast<double>(n), rng));
  return CsrMatrix<double>::from_coo(lap).convert<T>();
}

template <typename T, Mode kMode>
void BM_Dot(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = random_vec<T>(n, 1);
  const auto y = random_vec<T>(n, 2);
  const ModeGuard guard(kMode);
  for (auto _ : state) {
    if constexpr (kMode == Mode::exact) {
      benchmark::DoNotOptimize(kernels::ref::dot(n, x.data(), y.data()));
    } else {
      benchmark::DoNotOptimize(kernels::dot(n, x.data(), y.data()));
    }
  }
  label_isa(state, kMode);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

template <typename T, Mode kMode>
void BM_Axpy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = random_vec<T>(n, 3);
  auto y = random_vec<T>(n, 4);
  const T alpha = NumTraits<T>::from_double(0.37);
  const ModeGuard guard(kMode);
  for (auto _ : state) {
    if constexpr (kMode == Mode::exact) {
      kernels::ref::axpy(n, alpha, x.data(), y.data());
    } else {
      kernels::axpy(n, alpha, x.data(), y.data());
    }
    benchmark::DoNotOptimize(y.data());
  }
  label_isa(state, kMode);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

template <typename T, Mode kMode>
void BM_Scal(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto x = random_vec<T>(n, 9);
  const T alpha = NumTraits<T>::from_double(0.37);
  const ModeGuard guard(kMode);
  for (auto _ : state) {
    if constexpr (kMode == Mode::exact) {
      kernels::ref::scal(n, alpha, x.data());
    } else {
      kernels::scal(n, alpha, x.data());
    }
    benchmark::DoNotOptimize(x.data());
  }
  label_isa(state, kMode);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

template <typename T, Mode kMode>
void BM_SpMV(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = bench_matrix<T>(n);
  const auto x = random_vec<T>(a.cols(), 5);
  std::vector<T> y(a.rows());
  const ModeGuard guard(kMode);
  for (auto _ : state) {
    if constexpr (kMode == Mode::exact) {
      kernels::ref::spmv(a.rows(), a.row_ptr().data(), a.col_idx().data(), a.values().data(),
                         x.data(), y.data());
    } else {
      // Through the matrix so the offset plan (and, in simd mode, the
      // SELL-8 slice plan) is in play — that is the path solvers run.
      a.matvec(x.data(), y.data());
    }
    benchmark::DoNotOptimize(y.data());
  }
  label_isa(state, kMode);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(a.nnz()));
}

// -- Multi-vector primitives vs k single-vector calls -----------------------
// Both sides run under the same mode; the comparison isolates what one
// amortized traversal buys at each tier (range(1) = k).

template <typename T, Mode kMode, bool kBlocked>
void BM_SpMM(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  const auto a = bench_matrix<T>(n);
  const auto x = random_vec<T>(k * a.cols(), 6);
  std::vector<T> y(k * a.rows());
  const ModeGuard guard(kMode);
  for (auto _ : state) {
    if constexpr (kBlocked) {
      a.matvec_block(x.data(), a.cols(), k, y.data(), a.rows());
    } else {
      for (std::size_t c = 0; c < k; ++c)
        a.matvec(x.data() + c * a.cols(), y.data() + c * a.rows());
    }
    benchmark::DoNotOptimize(y.data());
  }
  label_isa(state, kMode);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(a.nnz() * k));
}

template <typename T, Mode kMode, bool kBlocked>
void BM_DotBlock(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  const auto x = random_vec<T>(k * n, 7);
  const auto y = random_vec<T>(n, 8);
  std::vector<T> out(k);
  const ModeGuard guard(kMode);
  for (auto _ : state) {
    if constexpr (kBlocked) {
      kernels::dot_block(n, k, x.data(), n, y.data(), out.data());
    } else {
      for (std::size_t c = 0; c < k; ++c) out[c] = kernels::dot(n, x.data() + c * n, y.data());
    }
    benchmark::DoNotOptimize(out.data());
  }
  label_isa(state, kMode);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * k));
}

#define MFLA_ACCEL_BENCH(T)                                                             \
  BENCHMARK_TEMPLATE(BM_Dot, T, Mode::exact)->Name("Dot/exact/" #T)->Arg(4096);         \
  BENCHMARK_TEMPLATE(BM_Dot, T, Mode::lut)->Name("Dot/lut/" #T)->Arg(4096);             \
  BENCHMARK_TEMPLATE(BM_Axpy, T, Mode::exact)->Name("Axpy/exact/" #T)->Arg(4096);       \
  BENCHMARK_TEMPLATE(BM_Axpy, T, Mode::lut)->Name("Axpy/lut/" #T)->Arg(4096);           \
  BENCHMARK_TEMPLATE(BM_SpMV, T, Mode::exact)->Name("SpMV/exact/" #T)->Arg(512);        \
  BENCHMARK_TEMPLATE(BM_SpMV, T, Mode::lut)->Name("SpMV/lut/" #T)->Arg(512)

// One rung of the ladder for an 8-bit format: the same kernels pinned at
// Mode M, so a rung's win or loss over the one below is a row-by-row
// comparison of the avx2 and avx512 series against lut (and each other).
// Scal only appears here because its vector rung (VBMI in-register mul
// row) is the interesting part; its exact/lut gap mirrors axpy's.
#define MFLA_VEC_TIER_BENCH(T, M)                                                       \
  BENCHMARK_TEMPLATE(BM_Dot, T, Mode::M)->Name("Dot/" #M "/" #T)->Arg(4096);            \
  BENCHMARK_TEMPLATE(BM_Axpy, T, Mode::M)->Name("Axpy/" #M "/" #T)->Arg(4096);          \
  BENCHMARK_TEMPLATE(BM_Scal, T, Mode::M)->Name("Scal/" #M "/" #T)->Arg(4096);          \
  BENCHMARK_TEMPLATE(BM_SpMV, T, Mode::M)->Name("SpMV/" #M "/" #T)->Arg(512);           \
  BENCHMARK_TEMPLATE(BM_SpMM, T, Mode::M, true)                                         \
      ->Name("SpMM/block_" #M "/" #T)                                                   \
      ->Args({512, 8})                                                                  \
      ->Args({512, 16})                                                                 \
      ->Args({512, 32});                                                                \
  BENCHMARK_TEMPLATE(BM_DotBlock, T, Mode::M, true)                                     \
      ->Name("DotBlock/block_" #M "/" #T)                                               \
      ->Args({4096, 8})                                                                 \
      ->Args({4096, 16})                                                                \
      ->Args({4096, 32})

// Amortization anchors: k single-vector calls and the scalar blocked loop,
// against which the SpMM/DotBlock block_* series above are read. Run at
// the top rung (auto dispatch picks the best available path for the
// singles side too, so the comparison is fair on any host).
#define MFLA_BLOCK_ANCHOR_BENCH(T)                                                      \
  BENCHMARK_TEMPLATE(BM_SpMM, T, Mode::avx512, false)                                   \
      ->Name("SpMM/singles/" #T)                                                        \
      ->Args({512, 8})                                                                  \
      ->Args({512, 16});                                                                \
  BENCHMARK_TEMPLATE(BM_SpMM, T, Mode::lut, true)->Name("SpMM/block_scalar/" #T)->Args( \
      {512, 8});                                                                        \
  BENCHMARK_TEMPLATE(BM_DotBlock, T, Mode::avx512, false)                               \
      ->Name("DotBlock/singles/" #T)                                                    \
      ->Args({4096, 8})                                                                 \
      ->Args({4096, 16})

// The four 8-bit formats (acceptance: >= 3x lut-over-exact on
// dot/axpy/spmv for all; the vector-rung series ride on top).
MFLA_ACCEL_BENCH(OFP8E4M3);
MFLA_ACCEL_BENCH(OFP8E5M2);
MFLA_ACCEL_BENCH(Posit8);
MFLA_ACCEL_BENCH(Takum8);
// The four 16-bit formats (decode-table paths; no vector tier).
MFLA_ACCEL_BENCH(Float16);
MFLA_ACCEL_BENCH(BFloat16);
MFLA_ACCEL_BENCH(Posit16);
MFLA_ACCEL_BENCH(Takum16);

// The vector rungs only exist for the 8-bit formats.
MFLA_VEC_TIER_BENCH(Posit8, avx2);
MFLA_VEC_TIER_BENCH(Posit8, avx512);
MFLA_VEC_TIER_BENCH(Takum8, avx2);
MFLA_VEC_TIER_BENCH(Takum8, avx512);
MFLA_BLOCK_ANCHOR_BENCH(Posit8);
MFLA_BLOCK_ANCHOR_BENCH(Takum8);

}  // namespace
