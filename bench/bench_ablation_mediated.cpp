// Ablation A4: why might posits underperform so dramatically at 32/64 bits
// in the paper, even on graph Laplacians whose entries all sit near one?
//
// Two candidate mechanisms are tested on the same graph corpus:
//
//  (1) Reflector formulation. The restart QR's Householder vectors can be
//      formed the LAPACK dlarfg way (tau in [1,2], all intermediates near
//      one) or the textbook way (beta = 2 v0^2/(sigma + v0^2), which forms
//      the *square of a small scale*). Tapered formats keep very few
//      fraction bits at 2^-50-ish magnitudes, so the textbook variant
//      destroys the orthogonality of the restart basis in posit32/64 while
//      leaving float32/64 nearly untouched — exactly the kind of silent,
//      format-dependent failure the paper observes for posits.
//
//  (2) Double-mediated arithmetic: every op computed by converting to
//      float64 and re-rounding (a common shortcut in posit software
//      stacks). This caps posit64's effective precision at 53 bits.
#include <cstdio>

#include "figure_common.hpp"

namespace mfla {

/// Posit whose arithmetic is mediated through double (decode -> op in
/// float64 -> re-encode): the "software shortcut" implementation.
template <int N>
struct MediatedPosit {
  Posit<N> v;
  MediatedPosit() = default;
  MediatedPosit(double d) : v(d) {}
  MediatedPosit(int i) : v(i) {}
  explicit MediatedPosit(Posit<N> p) : v(p) {}
  explicit operator double() const { return v.to_double(); }

  friend MediatedPosit operator+(MediatedPosit a, MediatedPosit b) {
    return MediatedPosit(a.v.to_double() + b.v.to_double());
  }
  friend MediatedPosit operator-(MediatedPosit a, MediatedPosit b) {
    return MediatedPosit(a.v.to_double() - b.v.to_double());
  }
  friend MediatedPosit operator*(MediatedPosit a, MediatedPosit b) {
    return MediatedPosit(a.v.to_double() * b.v.to_double());
  }
  friend MediatedPosit operator/(MediatedPosit a, MediatedPosit b) {
    return MediatedPosit(a.v.to_double() / b.v.to_double());
  }
  friend MediatedPosit operator-(MediatedPosit a) { return MediatedPosit(-a.v); }
  MediatedPosit& operator+=(MediatedPosit o) { return *this = *this + o; }
  MediatedPosit& operator-=(MediatedPosit o) { return *this = *this - o; }
  MediatedPosit& operator*=(MediatedPosit o) { return *this = *this * o; }
  MediatedPosit& operator/=(MediatedPosit o) { return *this = *this / o; }
  friend bool operator==(MediatedPosit a, MediatedPosit b) { return a.v == b.v; }
  friend bool operator!=(MediatedPosit a, MediatedPosit b) { return a.v != b.v; }
  friend bool operator<(MediatedPosit a, MediatedPosit b) { return a.v < b.v; }
  friend bool operator>(MediatedPosit a, MediatedPosit b) { return a.v > b.v; }
  friend bool operator<=(MediatedPosit a, MediatedPosit b) { return a.v <= b.v; }
  friend bool operator>=(MediatedPosit a, MediatedPosit b) { return a.v >= b.v; }
  friend MediatedPosit sqrt(MediatedPosit a) {
    return MediatedPosit(std::sqrt(a.v.to_double()));
  }
  friend MediatedPosit abs(MediatedPosit a) { return MediatedPosit(abs(a.v)); }
  friend bool is_number(MediatedPosit a) { return !a.v.is_nar(); }
};

template <int N>
struct NumTraits<MediatedPosit<N>> {
  using T = MediatedPosit<N>;
  static constexpr int bits = N;
  static constexpr bool tapered = true;
  static std::string name() { return "posit" + std::to_string(N) + "~f64"; }
  static constexpr double epsilon() noexcept { return NumTraits<Posit<N>>::epsilon(); }
  static constexpr double default_tolerance() noexcept {
    return NumTraits<Posit<N>>::default_tolerance();
  }
  static double to_double(T x) noexcept { return x.v.to_double(); }
  static T from_double(double x) noexcept { return T(x); }
};

}  // namespace mfla

namespace {

using namespace mfla;

struct Row {
  std::string label;
  std::vector<double> eig_log10;
  std::size_t omega = 0;
};

void print_rows(const char* title, const std::vector<Row>& rows) {
  std::printf("-- %s --\n", title);
  std::printf("%-22s %8s %8s %8s %6s\n", "configuration", "p25", "median", "p75", "omega");
  for (const auto& r : rows) {
    auto sorted = r.eig_log10;
    std::sort(sorted.begin(), sorted.end());
    auto pct = [&sorted](double p) {
      if (sorted.empty()) return std::nan("");
      return sorted[static_cast<std::size_t>(p * (static_cast<double>(sorted.size()) - 1) + 0.5)];
    };
    std::printf("%-22s %8.2f %8.2f %8.2f %6zu\n", r.label.c_str(), pct(0.25), pct(0.5), pct(0.75),
                r.omega);
  }
  std::printf("\n");
}

template <typename T>
Row run_config(const std::string& label, const std::vector<TestMatrix>& corpus,
               ReflectorStyle style) {
  ExperimentConfig cfg;
  cfg.max_restarts = 60;
  Row row;
  row.label = label;
  for (const auto& tm : corpus) {
    Rng rng(tm.name, cfg.seed);
    const auto start = rng.unit_vector(tm.n());
    const auto ref = compute_reference(tm, cfg, start);
    if (!ref.ok) continue;
    // Same run as the main pipeline, but with a configurable reflector.
    const CsrMatrix<T> at = tm.matrix.convert<T>();
    PartialSchurOptions opts;
    opts.nev = cfg.nev + cfg.buffer;
    opts.tolerance = NumTraits<T>::default_tolerance();
    opts.max_restarts = cfg.max_restarts;
    opts.start_vector = &start;
    opts.reflector_style = style;
    const auto r = partialschur<T>(at, opts);
    if (!r.converged) {
      ++row.omega;
      continue;
    }
    DenseMatrix<double> vectors(tm.n(), r.q.cols());
    for (std::size_t j = 0; j < r.q.cols(); ++j)
      for (std::size_t i = 0; i < tm.n(); ++i)
        vectors(i, j) = NumTraits<T>::to_double(r.q(i, j));
    const auto match = match_eigenvectors(ref.vectors, vectors);
    const auto values = apply_match(std::vector<double>(r.eig_re.begin(), r.eig_re.end()), match);
    const auto err = eigenvalue_errors(ref.values, values, cfg.nev);
    if (std::isfinite(err.relative)) {
      row.eig_log10.push_back(std::log10(std::max(err.relative, 1e-40)));
    } else {
      ++row.omega;
    }
  }
  return row;
}

}  // namespace

int main() {
  using benchtool::scaled;
  GraphCorpusOptions gopts;
  gopts.counts = {scaled(10), scaled(8), scaled(8), 0};
  gopts.max_n = 220;
  const auto corpus = build_graph_corpus(gopts);
  std::printf("=== Ablation A4: posit-hostile implementation choices (%zu graphs) ===\n\n",
              corpus.size());

  std::vector<Row> rows32;
  rows32.push_back(run_config<float>("float32 lapack", corpus, ReflectorStyle::lapack));
  rows32.push_back(run_config<float>("float32 textbook", corpus, ReflectorStyle::textbook));
  rows32.push_back(run_config<Posit32>("posit32 lapack", corpus, ReflectorStyle::lapack));
  rows32.push_back(run_config<Posit32>("posit32 textbook", corpus, ReflectorStyle::textbook));
  rows32.push_back(run_config<Takum32>("takum32 lapack", corpus, ReflectorStyle::lapack));
  rows32.push_back(run_config<Takum32>("takum32 textbook", corpus, ReflectorStyle::textbook));
  print_rows("32-bit: reflector formulation (log10 eigenvalue rel. error)", rows32);

  std::vector<Row> rows64;
  rows64.push_back(run_config<double>("float64 lapack", corpus, ReflectorStyle::lapack));
  rows64.push_back(run_config<Posit64>("posit64 lapack", corpus, ReflectorStyle::lapack));
  rows64.push_back(run_config<Posit64>("posit64 textbook", corpus, ReflectorStyle::textbook));
  rows64.push_back(
      run_config<MediatedPosit<64>>("posit64~f64 lapack", corpus, ReflectorStyle::lapack));
  rows64.push_back(run_config<Takum64>("takum64 lapack", corpus, ReflectorStyle::lapack));
  print_rows("64-bit: reflector formulation + double-mediated ops", rows64);

  std::printf(
      "Reading: 'textbook' squares a small scale inside the restart QR; exact\n"
      "posit arithmetic loses orders of magnitude there while IEEE barely moves —\n"
      "a concrete mechanism consistent with the paper's posit32/64 anomaly.\n"
      "Double-mediated posit64 caps at float64 accuracy (53-bit significand).\n");
  return 0;
}
