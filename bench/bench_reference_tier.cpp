// bench_reference_tier: two cold sweeps over the same corpus — one with
// the float128-only reference, one with the dd_first tier — timing the
// reference stage of each and reporting the speedup plus the promotion
// rate, as JSON.
//
// A plain executable (no Google Benchmark dependency) running the real
// task-parallel engine with no reference cache, so every reference solve
// is executed in the tier under test. The corpus is well-conditioned
// graph Laplacians on which the dd certification bound holds, so the
// acceptance bar is: zero promotions and a >=2x reference-stage speedup
// from hardware double-double over soft binary128. Both are printed in
// the JSON the CI bench job archives and gates on.
//
// Usage: bench_reference_tier [output.json]
//   MFLA_BENCH_SCALE=0.5 shrinks the corpus (smoke runs).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "mfla.hpp"

namespace {

using namespace mfla;

double scale_from_env() {
  const char* s = std::getenv("MFLA_BENCH_SCALE");
  if (s == nullptr) return 1.0;
  const double v = std::atof(s);
  return v > 0 ? v : 1.0;
}

struct PassResult {
  double total_seconds = 0.0;
  SweepStats stats;
};

PassResult run_pass(const std::vector<TestMatrix>& dataset, const std::vector<FormatId>& formats,
                    const ExperimentConfig& cfg) {
  PassResult pr;
  ScheduleOptions sched;
  sched.stats = &pr.stats;
  const auto t0 = std::chrono::steady_clock::now();
  const auto results = run_experiment(dataset, formats, cfg, sched);
  pr.total_seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  for (const auto& r : results) {
    if (!r.reference_ok)
      std::fprintf(stderr, "warning: reference failed for %s: %s\n", r.name.c_str(),
                   r.reference_failure.c_str());
  }
  return pr;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "bench_reference_tier.json";
  const double scale = scale_from_env();

  // Well-conditioned Laplacians: eigenvalues of order ||A||, so the dd
  // adequacy bound gamma <= tol |lambda| holds and nothing promotes.
  std::vector<TestMatrix> dataset;
  const auto sizes = {48u, 64u, 96u, 128u};
  std::uint64_t seed = 0xdd7e;
  for (const unsigned base : sizes) {
    const auto n = static_cast<std::uint32_t>(base * scale < 8 ? 8 : base * scale);
    Rng rng(seed++);
    dataset.push_back(make_test_matrix("bench_tier_" + std::to_string(n), "misc", "bench",
                                       graph_laplacian_pipeline(erdos_renyi(n, 0.12, rng))));
  }
  const std::vector<FormatId> formats = {FormatId::bfloat16, FormatId::posit16,
                                         FormatId::takum16};
  ExperimentConfig cfg;
  cfg.nev = 8;
  cfg.buffer = 2;
  cfg.max_restarts = 60;

  std::printf("float128-only pass (%zu matrices x %zu formats)...\n", dataset.size(),
              formats.size());
  cfg.reference_tier = ReferenceTier::f128_only;
  const PassResult f128 = run_pass(dataset, formats, cfg);
  std::printf("dd_first pass...\n");
  cfg.reference_tier = ReferenceTier::dd_first;
  const PassResult dd = run_pass(dataset, formats, cfg);

  const double f128_ref_stage = f128.stats.reference_seconds;
  const double dd_ref_stage = dd.stats.reference_seconds;
  const double ref_speedup = f128_ref_stage / (dd_ref_stage > 1e-9 ? dd_ref_stage : 1e-9);
  const double promotion_rate =
      dd.stats.reference_dd_solves == 0
          ? 0.0
          : static_cast<double>(dd.stats.reference_promotions) /
                static_cast<double>(dd.stats.reference_dd_solves);

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"benchmark\": \"reference_tier\",\n"
               "  \"matrices\": %zu,\n"
               "  \"formats\": %zu,\n"
               "  \"f128_only\": {\n"
               "    \"total_seconds\": %.6f,\n"
               "    \"reference_stage_seconds\": %.6f,\n"
               "    \"reference_solves\": %zu\n"
               "  },\n"
               "  \"dd_first\": {\n"
               "    \"total_seconds\": %.6f,\n"
               "    \"reference_stage_seconds\": %.6f,\n"
               "    \"dd_solves\": %zu,\n"
               "    \"dd_certified\": %zu,\n"
               "    \"promotions\": %zu,\n"
               "    \"dd_seconds\": %.6f,\n"
               "    \"f128_seconds\": %.6f\n"
               "  },\n"
               "  \"promotion_rate\": %.4f,\n"
               "  \"reference_stage_speedup\": %.2f\n"
               "}\n",
               dataset.size(), formats.size(), f128.total_seconds, f128_ref_stage,
               f128.stats.reference_solves, dd.total_seconds, dd_ref_stage,
               dd.stats.reference_dd_solves, dd.stats.reference_dd_certified,
               dd.stats.reference_promotions, dd.stats.reference_dd_seconds,
               dd.stats.reference_f128_seconds, promotion_rate, ref_speedup);
  std::fclose(out);

  std::printf(
      "f128_only: %.2fs total, %.3fs reference stage (%zu solves)\n"
      "dd_first:  %.2fs total, %.3fs reference stage (%zu dd solves, %zu certified, "
      "%zu promoted)\n"
      "reference-stage speedup: %.1fx -> %s\n",
      f128.total_seconds, f128_ref_stage, f128.stats.reference_solves, dd.total_seconds,
      dd_ref_stage, dd.stats.reference_dd_solves, dd.stats.reference_dd_certified,
      dd.stats.reference_promotions, ref_speedup, out_path.c_str());

  if (dd.stats.reference_promotions != 0) {
    std::fprintf(stderr, "FAIL: %zu promotions on a corpus chosen to certify in dd\n",
                 dd.stats.reference_promotions);
    return 1;
  }
  // Enforce the >=2x acceptance bar whenever the f128 stage is large
  // enough to measure reliably (scaled-down smoke corpora can make both
  // stages sub-millisecond noise).
  if (f128_ref_stage > 0.05 && ref_speedup < 2.0) {
    std::fprintf(stderr, "FAIL: dd reference stage only %.1fx faster than float128 (need 2x)\n",
                 ref_speedup);
    return 1;
  }
  return 0;
}
