// Figure 2 reproduction: biological graph Laplacians (duplication-
// divergence protein networks et al.), cumulative error distributions.
//
// Honors MFLA_BENCH_SCALE (dataset size multiplier); see docs/EXPERIMENTS.md.
#include "figure_common.hpp"

int main() {
  using namespace mfla;
  GraphCorpusOptions opts;
  opts.counts.biological = benchtool::scaled(40);
  const auto dataset = build_graph_corpus(opts, "biological");
  benchtool::run_figure("fig2_biological", "biological graph Laplacians", dataset);
  return 0;
}
