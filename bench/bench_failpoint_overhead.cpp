// bench_failpoint_overhead: proves the failpoint fast path is free.
//
// Failpoints are compiled into all builds (docs/ROBUSTNESS.md), so the
// unarmed check — one relaxed atomic load — must cost nothing measurable
// at the call sites. This harness times dot and spmv call loops three
// ways: no check at all, the unarmed MFLA_FAILPOINT check (the shipped
// configuration), and with an unrelated failpoint armed (the slow path:
// a registry lookup per call). A plain executable reporting JSON, gated
// two ways: tools/bench_compare.py diffs the timings against the
// committed baseline, and the binary itself fails if the unarmed loop
// exceeds the plain loop by more than the noise margin.
//
// Usage: bench_failpoint_overhead [output.json]
//   MFLA_BENCH_SCALE=0.5 shrinks the iteration counts (smoke runs).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "support/failpoint.hpp"
#include "support/rng.hpp"

namespace {

using namespace mfla;

constexpr double kNoiseMargin = 1.25;  // unarmed may not cost >25% over plain
constexpr int kRepetitions = 7;        // best-of: min wall-clock per variant

double scale_from_env() {
  const char* s = std::getenv("MFLA_BENCH_SCALE");
  if (s == nullptr) return 1.0;
  const double v = std::atof(s);
  return v > 0 ? v : 1.0;
}

// The kernels are deliberately hand-rolled: the subject under test is the
// per-call check, so the loop bodies just need realistic, optimizer-proof
// work of the sweep engine's flavor (dense dot, CSR spmv). noinline keeps
// the kernel code byte-identical across variants — otherwise the extra
// call changes inlining/layout and the diff measures codegen, not the
// check.

#if defined(__GNUC__) || defined(__clang__)
#define BENCH_NOINLINE __attribute__((noinline))
#else
#define BENCH_NOINLINE
#endif

BENCH_NOINLINE double dot(const std::vector<double>& x, const std::vector<double>& y) {
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

struct Csr {
  std::vector<std::size_t> row_ptr;
  std::vector<std::size_t> col;
  std::vector<double> val;
  std::size_t n = 0;
};

Csr make_csr(std::size_t n, std::size_t per_row, Rng& rng) {
  Csr m;
  m.n = n;
  m.row_ptr.push_back(0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < per_row; ++k) {
      m.col.push_back(rng.uniform_index(n));
      m.val.push_back(rng.uniform() - 0.5);
    }
    m.row_ptr.push_back(m.col.size());
  }
  return m;
}

BENCH_NOINLINE void spmv(const Csr& m, const std::vector<double>& x, std::vector<double>& y) {
  for (std::size_t i = 0; i < m.n; ++i) {
    double acc = 0.0;
    for (std::size_t k = m.row_ptr[i]; k < m.row_ptr[i + 1]; ++k)
      acc += m.val[k] * x[m.col[k]];
    y[i] = acc;
  }
}

/// Best-of-kRepetitions wall-clock of `iters` calls to `body`.
template <typename F>
double time_loop(int iters, F&& body) {
  double best = 1e300;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) body();
    const double s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    if (s < best) best = s;
  }
  return best;
}

struct Variant {
  double plain_seconds;
  double unarmed_seconds;
  double armed_other_seconds;
};

volatile double g_sink;  // defeats dead-code elimination across variants

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "bench_failpoint_overhead.json";
  const double scale = scale_from_env();

  Rng rng(0xfa17);
  const std::size_t n = 1024;
  std::vector<double> x(n), y(n), z(n);
  for (auto& v : x) v = rng.uniform() - 0.5;
  for (auto& v : y) v = rng.uniform() - 0.5;
  const Csr m = make_csr(512, 8, rng);
  std::vector<double> sx(m.n, 1.0);

  const int dot_iters = static_cast<int>(200000 * scale) + 1;
  const int spmv_iters = static_cast<int>(50000 * scale) + 1;

  failpoint::disarm_all();
  Variant d{}, s{};
  d.plain_seconds = time_loop(dot_iters, [&] { g_sink = dot(x, y); });
  s.plain_seconds = time_loop(spmv_iters, [&] {
    spmv(m, sx, z);
    g_sink = z[0];
  });
  d.unarmed_seconds = time_loop(dot_iters, [&] {
    (void)MFLA_FAILPOINT("bench.dot");
    g_sink = dot(x, y);
  });
  s.unarmed_seconds = time_loop(spmv_iters, [&] {
    (void)MFLA_FAILPOINT("bench.spmv");
    spmv(m, sx, z);
    g_sink = z[0];
  });

  // Arm an unrelated point: every check now takes the registry-lookup slow
  // path. Informational — this is the cost of running *with* injection on.
  failpoint::arm_from_spec("bench.unrelated=error(5)@1000000000");
  d.armed_other_seconds = time_loop(dot_iters, [&] {
    (void)MFLA_FAILPOINT("bench.dot");
    g_sink = dot(x, y);
  });
  s.armed_other_seconds = time_loop(spmv_iters, [&] {
    (void)MFLA_FAILPOINT("bench.spmv");
    spmv(m, sx, z);
    g_sink = z[0];
  });
  failpoint::disarm_all();

  const double d_ratio = d.unarmed_seconds / d.plain_seconds;
  const double s_ratio = s.unarmed_seconds / s.plain_seconds;

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"benchmark\": \"failpoint_overhead\",\n"
               "  \"dot\": {\n"
               "    \"plain_seconds\": %.6f,\n"
               "    \"unarmed_seconds\": %.6f,\n"
               "    \"armed_other_seconds\": %.6f,\n"
               "    \"unarmed_overhead_ratio\": %.4f\n"
               "  },\n"
               "  \"spmv\": {\n"
               "    \"plain_seconds\": %.6f,\n"
               "    \"unarmed_seconds\": %.6f,\n"
               "    \"armed_other_seconds\": %.6f,\n"
               "    \"unarmed_overhead_ratio\": %.4f\n"
               "  }\n"
               "}\n",
               d.plain_seconds, d.unarmed_seconds, d.armed_other_seconds, d_ratio,
               s.plain_seconds, s.unarmed_seconds, s.armed_other_seconds, s_ratio);
  std::fclose(out);

  std::printf(
      "dot : plain %.3fs, unarmed %.3fs (%.2fx), armed-other %.3fs\n"
      "spmv: plain %.3fs, unarmed %.3fs (%.2fx), armed-other %.3fs\n-> %s\n",
      d.plain_seconds, d.unarmed_seconds, d_ratio, d.armed_other_seconds, s.plain_seconds,
      s.unarmed_seconds, s_ratio, s.armed_other_seconds, out_path.c_str());

  // Self-gate only when the loops are long enough to measure reliably.
  if (d.plain_seconds > 0.05 && d_ratio > kNoiseMargin) {
    std::fprintf(stderr, "FAIL: unarmed failpoint check costs %.0f%% on dot (noise margin %.0f%%)\n",
                 (d_ratio - 1.0) * 100.0, (kNoiseMargin - 1.0) * 100.0);
    return 1;
  }
  if (s.plain_seconds > 0.05 && s_ratio > kNoiseMargin) {
    std::fprintf(stderr,
                 "FAIL: unarmed failpoint check costs %.0f%% on spmv (noise margin %.0f%%)\n",
                 (s_ratio - 1.0) * 100.0, (kNoiseMargin - 1.0) * 100.0);
    return 1;
  }
  return 0;
}
