// Figure 4 reproduction: social graph Laplacians (communities, hubs,
// collaboration structure), cumulative error distributions.
//
// Honors MFLA_BENCH_SCALE (dataset size multiplier); see docs/EXPERIMENTS.md.
#include "figure_common.hpp"

int main() {
  using namespace mfla;
  GraphCorpusOptions opts;
  opts.counts.social = benchtool::scaled(30);
  const auto dataset = build_graph_corpus(opts, "social");
  benchtool::run_figure("fig4_social", "social graph Laplacians", dataset);
  return 0;
}
