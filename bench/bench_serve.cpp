// bench_serve: serving-layer overhead and shared-cache leverage for the
// sweep daemon (docs/SERVING.md).
//
// A plain executable (no Google Benchmark dependency): it starts an
// in-process serve::Server on a Unix socket, runs one cold tenant sweep
// (populating the server-side reference cache), then a concurrent batch
// of tenants submitting the same spec, and reports wall-clock numbers as
// JSON. Two self-gates make it an acceptance harness rather than just a
// stopwatch: every concurrent tenant's reconstructed CSV must be
// byte-identical to the direct api::Sweep CSV for the spec (serving is
// bit-transparent), and the concurrent batch must serve its references
// from the shared cache (zero cold reference solves after warmup).
//
// Usage: bench_serve [output.json]
//   MFLA_BENCH_SCALE=0.5 shrinks the corpus (smoke runs).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/api.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

namespace {

using namespace mfla;

double scale_from_env() {
  const char* s = std::getenv("MFLA_BENCH_SCALE");
  if (s == nullptr) return 1.0;
  const double v = std::atof(s);
  return v > 0 ? v : 1.0;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

std::string csv_bytes(const std::vector<MatrixResult>& results, const std::string& tag) {
  const std::string path = "bench_out/serve_" + tag + "_raw.csv";
  write_results_csv(path, results);
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  std::filesystem::remove(path);
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "bench_serve.json";
  const double scale = scale_from_env();
  const std::size_t count = std::max<std::size_t>(1, static_cast<std::size_t>(4 * scale));
  constexpr int kTenants = 4;

  serve::SweepRequest spec;
  spec.corpus = "general";
  spec.count = count;
  spec.formats = "f16,p16,t16";
  spec.nev = 4;
  spec.buffer = 2;
  spec.restarts = 40;

  std::filesystem::remove_all("bench_out/serve");
  std::filesystem::create_directories("bench_out/serve");

  serve::ServerOptions sopts;
  sopts.socket_path = "bench_out/serve/bench.sock";
  sopts.state_dir = "bench_out/serve/state";
  sopts.limits.max_active = kTenants;
  sopts.limits.max_per_tenant = kTenants;
  serve::Server server(sopts);
  std::thread loop([&server] { server.serve(); });

  serve::ClientOptions copts;
  copts.socket_path = sopts.socket_path;

  // Baseline: the direct in-process sweep this daemon must reproduce.
  GeneralCorpusOptions gopts;
  gopts.count = count;
  auto t0 = std::chrono::steady_clock::now();
  const api::SweepResult direct = api::Sweep::over(build_general_corpus(gopts))
                                      .formats(spec.formats)
                                      .nev(spec.nev)
                                      .buffer(spec.buffer)
                                      .restarts(spec.restarts)
                                      .run();
  const double direct_seconds = seconds_since(t0);
  const std::string expected_csv = csv_bytes(direct.results, "direct");

  // Cold pass: one tenant, empty server-side cache — pays the references.
  spec.tenant = "cold";
  t0 = std::chrono::steady_clock::now();
  const serve::ClientResult cold = serve::run_sweep(copts, spec);
  const double cold_seconds = seconds_since(t0);
  if (cold.status != serve::ClientResult::Status::ok) {
    std::fprintf(stderr, "FAIL: cold sweep did not complete: %s\n", cold.error.c_str());
    server.request_drain();
    loop.join();
    return 1;
  }
  const std::uint64_t cold_misses = server.stats_snapshot().cache.misses;

  // Warm concurrent batch: every tenant's references come from the cache.
  std::vector<serve::ClientResult> warm(kTenants);
  std::vector<std::thread> tenants;
  t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kTenants; ++i) {
    tenants.emplace_back([&, i] {
      serve::SweepRequest req = spec;
      req.tenant = "tenant" + std::to_string(i);
      warm[i] = serve::run_sweep(copts, req);
    });
  }
  for (auto& t : tenants) t.join();
  const double warm_batch_seconds = seconds_since(t0);

  server.request_drain();
  loop.join();
  const serve::ServerStats stats = server.stats_snapshot();

  bool ok = true;
  for (int i = 0; i < kTenants; ++i) {
    if (warm[i].status != serve::ClientResult::Status::ok) {
      std::fprintf(stderr, "FAIL: tenant %d did not complete: %s\n", i, warm[i].error.c_str());
      ok = false;
      continue;
    }
    if (csv_bytes(warm[i].results, "tenant" + std::to_string(i)) != expected_csv) {
      std::fprintf(stderr, "FAIL: tenant %d CSV differs from the direct sweep\n", i);
      ok = false;
    }
  }
  // Gate: the concurrent batch added no cache misses — all references for
  // the warm tenants were served from the shared cache.
  if (stats.cache.misses != cold_misses) {
    std::fprintf(stderr, "FAIL: warm batch recomputed %llu references (cache not shared)\n",
                 static_cast<unsigned long long>(stats.cache.misses - cold_misses));
    ok = false;
  }

  const double per_sweep_warm = warm_batch_seconds / kTenants;
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"benchmark\": \"serve\",\n"
               "  \"matrices\": %zu,\n"
               "  \"tenants\": %d,\n"
               "  \"direct_seconds\": %.6f,\n"
               "  \"cold_served_seconds\": %.6f,\n"
               "  \"warm_batch_seconds\": %.6f,\n"
               "  \"warm_seconds_per_sweep\": %.6f,\n"
               "  \"serving_overhead_vs_direct\": %.6f,\n"
               "  \"cache_hits\": %llu,\n"
               "  \"cache_misses\": %llu,\n"
               "  \"gates_ok\": %s\n"
               "}\n",
               count, kTenants, direct_seconds, cold_seconds, warm_batch_seconds, per_sweep_warm,
               cold_seconds - direct_seconds, static_cast<unsigned long long>(stats.cache.hits),
               static_cast<unsigned long long>(stats.cache.misses), ok ? "true" : "false");
  std::fclose(out);
  std::printf("bench_serve: direct %.2fs, cold served %.2fs, warm batch of %d %.2fs "
              "(%.2fs/sweep), cache %llu hits / %llu misses -> %s\n",
              direct_seconds, cold_seconds, kTenants, warm_batch_seconds, per_sweep_warm,
              static_cast<unsigned long long>(stats.cache.hits),
              static_cast<unsigned long long>(stats.cache.misses), ok ? "ok" : "FAILED");
  std::filesystem::remove_all("bench_out/serve");
  return ok ? 0 : 1;
}
