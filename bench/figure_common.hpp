// Shared driver for the figure-reproduction harnesses (Figures 1-5).
//
// For a given dataset it runs the full multi-format experiment and emits,
// per bit width (8/16/32/64) and metric (eigenvalue/eigenvector), exactly
// the series the paper plots: the cumulative distribution of log10 relative
// errors with the ∞ω/∞σ tails — as CSV under out/, an ASCII panel, and a
// summary table used by docs/EXPERIMENTS.md.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "api/api.hpp"

namespace mfla::benchtool {

/// Global scale factor for dataset sizes: MFLA_BENCH_SCALE (default 1.0).
inline double bench_scale() {
  const char* env = std::getenv("MFLA_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double v = std::atof(env);
  return v > 0 ? v : 1.0;
}

inline std::size_t scaled(std::size_t n) {
  const auto s = static_cast<std::size_t>(static_cast<double>(n) * bench_scale() + 0.5);
  return s < 3 ? 3 : s;
}

/// The paper's format lineup (everything except the float128 reference).
inline std::vector<FormatId> evaluation_formats() { return api::evaluation_formats(); }

inline void run_figure(const std::string& figure_id, const std::string& title,
                       const std::vector<TestMatrix>& dataset) {
  std::printf("=== %s: %s ===\n", figure_id.c_str(), title.c_str());
  std::printf("dataset: %zu matrices", dataset.size());
  {
    std::size_t nmin = SIZE_MAX, nmax = 0, nnz = 0;
    for (const auto& t : dataset) {
      nmin = std::min(nmin, t.n());
      nmax = std::max(nmax, t.n());
      nnz += t.nnz();
    }
    if (!dataset.empty()) {
      std::printf(" (n in [%zu, %zu], total nnz %zu)", nmin, nmax, nnz);
    }
  }
  std::printf("\n\n");

  const api::SweepResult sweep = api::Sweep::over(dataset)
                                     .formats(evaluation_formats())
                                     .nev(10)
                                     .buffer(2)
                                     .restarts(60)
                                     .reference_restarts(150)
                                     .run();
  const auto& results = sweep.results;
  const double secs = sweep.elapsed_seconds;

  std::size_t ref_fail = 0;
  for (const auto& r : results) ref_fail += !r.reference_ok;
  std::printf("experiment wall time: %.1f s; reference failures: %zu/%zu\n\n", secs, ref_fail,
              results.size());

  // Raw per-run data (re-bin offline with read_results_csv).
  write_results_csv("out/" + figure_id + "_raw.csv", results);

  for (const int bits : {8, 16, 32, 64}) {
    const PanelDistributions panel = build_panel(results, bits);
    char sub[160];
    std::snprintf(sub, sizeof sub, "%s (%c) %d bits — eigenvalue relative errors",
                  figure_id.c_str(), static_cast<char>('a' + (bits == 8 ? 0 : bits == 16 ? 1 : bits == 32 ? 2 : 3)),
                  bits);
    std::printf("%s", ascii_panel(panel.eigenvalues, sub).c_str());
    std::printf("%s\n", summary_table(panel.eigenvalues, "eigenvalues").c_str());
    std::snprintf(sub, sizeof sub, "%s %d bits — eigenvector relative errors", figure_id.c_str(),
                  bits);
    std::printf("%s", ascii_panel(panel.eigenvectors, sub).c_str());
    std::printf("%s\n", summary_table(panel.eigenvectors, "eigenvectors").c_str());

    char path[256];
    std::snprintf(path, sizeof path, "out/%s_%dbit_eigenvalues.csv", figure_id.c_str(), bits);
    write_distribution_csv(path, panel.eigenvalues);
    std::snprintf(path, sizeof path, "out/%s_%dbit_eigenvectors.csv", figure_id.c_str(), bits);
    write_distribution_csv(path, panel.eigenvectors);
  }
  std::printf("CSV series written to out/%s_*.csv\n\n", figure_id.c_str());
}

}  // namespace mfla::benchtool
