// Figure 1 reproduction: cumulative relative-error distributions of the 10
// largest eigenpairs of the *general matrices* (SuiteSparse substitute),
// per bit width and format, with ∞ω/∞σ tails.
//
// Honors MFLA_BENCH_SCALE (dataset size multiplier); see docs/EXPERIMENTS.md.
#include "figure_common.hpp"

int main() {
  using namespace mfla;
  GeneralCorpusOptions opts;
  opts.count = benchtool::scaled(64);
  const auto dataset = build_general_corpus(opts);
  benchtool::run_figure("fig1_general", "general matrices (SuiteSparse substitute)", dataset);
  return 0;
}
