// bench_reference_cache: cold-vs-warm sweep over a small corpus, timing the
// float128 reference stage with and without the persistent cache.
//
// A plain executable (no Google Benchmark dependency): it runs the real
// task-parallel engine twice against the same cache directory and reports
// the reference-stage wall-clock of each pass plus the speedup, as JSON.
// The warm pass must execute zero float128 solves — that, and the >=10x
// reference-stage speedup on this corpus, are the cache's acceptance bar
// and are printed in the JSON the CI bench job archives.
//
// Usage: bench_reference_cache [output.json]
//   MFLA_BENCH_SCALE=0.5 shrinks the corpus (smoke runs).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "mfla.hpp"

namespace {

using namespace mfla;

double scale_from_env() {
  const char* s = std::getenv("MFLA_BENCH_SCALE");
  if (s == nullptr) return 1.0;
  const double v = std::atof(s);
  return v > 0 ? v : 1.0;
}

struct PassResult {
  double total_seconds = 0.0;
  SweepStats stats;
};

PassResult run_pass(const std::vector<TestMatrix>& dataset, const std::vector<FormatId>& formats,
                    const ExperimentConfig& cfg, ReferenceCache* cache) {
  PassResult pr;
  ScheduleOptions sched;
  sched.ref_cache = cache;
  sched.stats = &pr.stats;
  const auto t0 = std::chrono::steady_clock::now();
  const auto results = run_experiment(dataset, formats, cfg, sched);
  pr.total_seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  for (const auto& r : results) {
    if (!r.reference_ok)
      std::fprintf(stderr, "warning: reference failed for %s: %s\n", r.name.c_str(),
                   r.reference_failure.c_str());
  }
  return pr;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "bench_reference_cache.json";
  const double scale = scale_from_env();

  // A skewed corpus: matrix sizes spread so the reference stage dominates.
  std::vector<TestMatrix> dataset;
  const auto sizes = {48u, 64u, 96u, 128u};
  std::uint64_t seed = 0x9e37;
  for (const unsigned base : sizes) {
    const auto n = static_cast<std::uint32_t>(base * scale < 8 ? 8 : base * scale);
    Rng rng(seed++);
    dataset.push_back(make_test_matrix("bench_ref_" + std::to_string(n), "misc", "bench",
                                       graph_laplacian_pipeline(erdos_renyi(n, 0.12, rng))));
  }
  const std::vector<FormatId> formats = {FormatId::bfloat16, FormatId::posit16,
                                         FormatId::takum16};
  ExperimentConfig cfg;
  cfg.nev = 8;
  cfg.buffer = 2;
  cfg.max_restarts = 60;

  const std::string cache_dir = "out/bench_refcache";
  std::filesystem::remove_all(cache_dir);
  ReferenceCache cache(cache_dir);

  std::printf("cold pass (%zu matrices x %zu formats)...\n", dataset.size(), formats.size());
  const PassResult cold = run_pass(dataset, formats, cfg, &cache);
  std::printf("warm pass...\n");
  const PassResult warm = run_pass(dataset, formats, cfg, &cache);

  // Warm reference stage = the time spent serving cache hits (the warm
  // pass executes zero solves, so reference_seconds is exactly 0 there).
  const double warm_ref_stage =
      warm.stats.reference_seconds + warm.stats.reference_cache_seconds;
  const double cold_ref_stage =
      cold.stats.reference_seconds + cold.stats.reference_cache_seconds;
  const double ref_speedup = cold_ref_stage / (warm_ref_stage > 1e-9 ? warm_ref_stage : 1e-9);

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"benchmark\": \"reference_cache\",\n"
               "  \"matrices\": %zu,\n"
               "  \"formats\": %zu,\n"
               "  \"cold\": {\n"
               "    \"total_seconds\": %.6f,\n"
               "    \"reference_stage_seconds\": %.6f,\n"
               "    \"reference_solves\": %zu,\n"
               "    \"cache_hits\": %zu\n"
               "  },\n"
               "  \"warm\": {\n"
               "    \"total_seconds\": %.6f,\n"
               "    \"reference_stage_seconds\": %.6f,\n"
               "    \"reference_solves\": %zu,\n"
               "    \"cache_hits\": %zu\n"
               "  },\n"
               "  \"reference_stage_speedup\": %.2f,\n"
               "  \"total_speedup\": %.2f\n"
               "}\n",
               dataset.size(), formats.size(), cold.total_seconds, cold_ref_stage,
               cold.stats.reference_solves, cold.stats.reference_cache_hits, warm.total_seconds,
               warm_ref_stage, warm.stats.reference_solves, warm.stats.reference_cache_hits,
               ref_speedup,
               cold.total_seconds / (warm.total_seconds > 1e-9 ? warm.total_seconds : 1e-9));
  std::fclose(out);

  std::printf(
      "cold: %.2fs total, %.3fs reference stage (%zu solves)\n"
      "warm: %.2fs total, %.3fs reference stage (%zu solves, %zu cache hits)\n"
      "reference-stage speedup: %.1fx -> %s\n",
      cold.total_seconds, cold_ref_stage, cold.stats.reference_solves, warm.total_seconds,
      warm_ref_stage, warm.stats.reference_solves, warm.stats.reference_cache_hits, ref_speedup,
      out_path.c_str());

  if (warm.stats.reference_solves != 0) {
    std::fprintf(stderr, "FAIL: warm pass executed %zu reference solves (expected 0)\n",
                 warm.stats.reference_solves);
    return 1;
  }
  // Enforce the >=10x acceptance bar whenever the cold stage is large
  // enough to measure reliably (scaled-down smoke corpora can make both
  // stages sub-millisecond noise).
  if (cold_ref_stage > 0.01 && ref_speedup < 10.0) {
    std::fprintf(stderr, "FAIL: warm reference stage only %.1fx faster than cold (need 10x)\n",
                 ref_speedup);
    return 1;
  }
  return 0;
}
