// Figure 5 reproduction: miscellaneous graph Laplacians — the hardest
// class: exact eigenvalue multiplicities (complete graphs, repeated
// components), huge-degree hubs and wide-dynamic-range weights that drive
// the ∞σ tails the paper reports even at 16/32 bits.
//
// Honors MFLA_BENCH_SCALE (dataset size multiplier); see docs/EXPERIMENTS.md.
#include "figure_common.hpp"

int main() {
  using namespace mfla;
  GraphCorpusOptions opts;
  opts.counts.miscellaneous = benchtool::scaled(45);
  const auto dataset = build_graph_corpus(opts, "miscellaneous");
  benchtool::run_figure("fig5_miscellaneous", "miscellaneous graph Laplacians", dataset);
  return 0;
}
