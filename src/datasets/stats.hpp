// Matrix statistics used by the dataset reports: entry-magnitude dynamic
// range, norm estimates and an extremal-eigenvalue condition estimate (via
// the library's own solver), mirroring the per-matrix metadata the paper's
// MuFoLAB framework records for its corpora.
#pragma once

#include <cmath>
#include <cstddef>
#include <limits>

#include "core/krylov_schur.hpp"
#include "datasets/test_matrix.hpp"

namespace mfla {

struct MatrixStats {
  std::size_t n = 0;
  std::size_t nnz = 0;
  double min_abs = 0.0;       // smallest non-zero |entry|
  double max_abs = 0.0;       // largest |entry|
  double dynamic_range = 0.0; // max_abs / min_abs
  double frobenius = 0.0;
  double inf_norm = 0.0;      // max row sum of |entries|
  double lambda_max = std::numeric_limits<double>::quiet_NaN();
  double lambda_min_mag = std::numeric_limits<double>::quiet_NaN();
  double condition_estimate = std::numeric_limits<double>::quiet_NaN();
};

/// Entry-level statistics (cheap, always available).
[[nodiscard]] inline MatrixStats matrix_entry_stats(const CsrMatrix<double>& a) {
  MatrixStats s;
  s.n = a.rows();
  s.nnz = a.nnz();
  s.min_abs = std::numeric_limits<double>::infinity();
  double fro2 = 0.0;
  std::vector<double> row_sum(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::uint32_t k = a.row_ptr()[i]; k < a.row_ptr()[i + 1]; ++k) {
      const double v = std::abs(a.values()[k]);
      if (v > 0) {
        s.min_abs = std::min(s.min_abs, v);
        s.max_abs = std::max(s.max_abs, v);
      }
      fro2 += v * v;
      row_sum[i] += v;
    }
  }
  if (!std::isfinite(s.min_abs)) s.min_abs = 0.0;
  s.dynamic_range = (s.min_abs > 0) ? s.max_abs / s.min_abs : 0.0;
  s.frobenius = std::sqrt(fro2);
  for (const double r : row_sum) s.inf_norm = std::max(s.inf_norm, r);
  return s;
}

/// Extremal-eigenvalue condition estimate for a symmetric matrix:
/// |lambda|_max / |lambda|_min via two partialschur runs (LM and SM).
/// Returns the entry stats augmented with the spectral quantities; the
/// spectral fields stay NaN when either solve fails.
[[nodiscard]] inline MatrixStats matrix_spectral_stats(const CsrMatrix<double>& a,
                                                       int max_restarts = 80) {
  MatrixStats s = matrix_entry_stats(a);
  PartialSchurOptions opts;
  opts.nev = 1;
  opts.tolerance = 1e-8;
  opts.max_restarts = max_restarts;
  opts.which = Which::largest_magnitude;
  const auto hi = partialschur<double>(a, opts);
  if (hi.converged && !hi.eig_re.empty()) {
    s.lambda_max = std::hypot(hi.eig_re[0], hi.eig_im[0]);
  }
  opts.which = Which::smallest_magnitude;
  opts.max_restarts = 2 * max_restarts;  // interior-most eigenvalue is harder
  const auto lo = partialschur<double>(a, opts);
  if (lo.converged && !lo.eig_re.empty()) {
    s.lambda_min_mag = std::hypot(lo.eig_re[0], lo.eig_im[0]);
  }
  if (std::isfinite(s.lambda_max) && std::isfinite(s.lambda_min_mag) && s.lambda_min_mag > 0) {
    s.condition_estimate = s.lambda_max / s.lambda_min_mag;
  }
  return s;
}

}  // namespace mfla
