// TestMatrix: a named symmetric sparse matrix with metadata, mirroring the
// paper's MuFoLAB TestMatrix structure.
#pragma once

#include <string>
#include <vector>

#include "sparse/coo.hpp"
#include "sparse/csr.hpp"

namespace mfla {

struct TestMatrix {
  std::string name;      // e.g. "protein_dd_042"
  std::string klass;     // aggregated class: biological / infrastructure /
                         // social / miscellaneous / general
  std::string category;  // source category: protein, road, soc, misc, ...
  CsrMatrix<double> matrix;

  [[nodiscard]] std::size_t n() const { return matrix.rows(); }
  [[nodiscard]] std::size_t nnz() const { return matrix.nnz(); }
};

[[nodiscard]] inline TestMatrix make_test_matrix(std::string name, std::string klass,
                                                 std::string category, const CooMatrix& coo) {
  TestMatrix t;
  t.name = std::move(name);
  t.klass = std::move(klass);
  t.category = std::move(category);
  t.matrix = CsrMatrix<double>::from_coo(coo);
  return t;
}

}  // namespace mfla
