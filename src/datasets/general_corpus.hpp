// Synthetic stand-in for the paper's 302 SuiteSparse general matrices
// (symmetric, <= 20,000 non-zeros, wildly varying size, scale and
// condition number). See docs/DESIGN.md §3 for the substitution rationale.
#pragma once

#include <cstddef>
#include <vector>

#include "datasets/test_matrix.hpp"

namespace mfla {

struct GeneralCorpusOptions {
  std::size_t count = 96;      // number of matrices
  std::size_t min_n = 24;      // smallest dimension
  std::size_t max_n = 220;     // largest dimension
  std::size_t max_nnz = 20000; // paper's nnz filter
  std::uint64_t seed = 0x5eed'0001;
};

/// Deterministic corpus of symmetric test matrices drawn from seven
/// families (banded SPD with log-uniform spectrum, random sparse symmetric,
/// diagonally dominant, Laplacian stencils, arrow, low-rank+noise, and
/// wide-dynamic-range variants). Matrices are sorted by name.
[[nodiscard]] std::vector<TestMatrix> build_general_corpus(const GeneralCorpusOptions& opts = {});

}  // namespace mfla
