#include "datasets/graph_corpus.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "graph/generators.hpp"
#include "graph/laplacian.hpp"
#include "support/rng.hpp"

namespace mfla {

namespace {

std::string numbered(const std::string& base, std::size_t i) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%s_%03zu", base.c_str(), i);
  return buf;
}

std::uint32_t pick_n(Rng& rng, const GraphCorpusOptions& opts) {
  return static_cast<std::uint32_t>(opts.min_n +
                                    rng.uniform_index(opts.max_n - opts.min_n + 1));
}

/// Apply log-uniform random weights to an unweighted adjacency (models the
/// weighted econ/retweet graphs whose extreme weights drive the paper's
/// ∞σ tails in the miscellaneous class even at 16/32 bits).
CooMatrix randomize_weights(const CooMatrix& a, double lo_exp, double hi_exp, Rng& rng) {
  CooMatrix w(a.rows(), a.cols());
  w.reserve(a.nnz());
  for (const auto& t : a.triplets()) {
    if (t.row <= t.col) {
      const double v = rng.log_uniform(lo_exp, hi_exp);
      w.add(t.row, t.col, v);
      if (t.row != t.col) w.add(t.col, t.row, v);
    }
  }
  w.compress();
  return w;
}

/// Two connected hubs with `leaves` pendant vertices each: the hub-hub
/// Laplacian entry is ~1/(leaves+1), below the OFP8 E4M3 subnormal floor
/// once leaves >= 512 (the paper's unweighted ∞σ mechanism).
CooMatrix twin_star(std::uint32_t leaves) {
  CooMatrix a(2 + 2 * leaves, 2 + 2 * leaves);
  a.add(0, 1, 1.0);
  a.add(1, 0, 1.0);
  for (std::uint32_t i = 0; i < leaves; ++i) {
    a.add(0, 2 + i, 1.0);
    a.add(2 + i, 0, 1.0);
    a.add(1, 2 + leaves + i, 1.0);
    a.add(2 + leaves + i, 1, 1.0);
  }
  a.compress();
  return a;
}

struct Generated {
  std::string category;
  CooMatrix adjacency;
};

Generated make_biological(std::size_t i, Rng& rng, const GraphCorpusOptions& opts) {
  const std::uint32_t n = pick_n(rng, opts);
  // Paper Table 1: protein dominates the class (1178 of 1219).
  const std::size_t r = i % 20;
  if (r < 16) return {"protein", duplication_divergence(n, rng.uniform(0.25, 0.6), rng)};
  if (r < 18) return {"bio", barabasi_albert(n, 1 + static_cast<std::uint32_t>(rng.uniform_index(3)), rng)};
  if (r < 19) return {"bn", watts_strogatz(n, 3, 0.15, rng)};
  return {"eco", erdos_renyi(n / 4 + 8, rng.uniform(0.15, 0.4), rng)};
}

Generated make_infrastructure(std::size_t i, Rng& rng, const GraphCorpusOptions& opts) {
  const std::uint32_t n = pick_n(rng, opts);
  switch (i % 6) {
    case 0: {
      const auto side = static_cast<std::uint32_t>(std::max(4.0, std::sqrt(static_cast<double>(n))));
      return {"road", grid_2d(side, side, rng.uniform(0.0, 0.08), rng)};
    }
    case 1:
      return {"power", ring_of_cliques(std::max<std::uint32_t>(4, n / 12), 8)};
    case 2:
      return {"inf", random_geometric(n, rng.uniform(0.08, 0.2), rng)};
    case 3:
      return {"tech", barabasi_albert(n, 2, rng)};
    case 4:
      return {"web", add_hubs(barabasi_albert(n, 1, rng), 2, n / 4, rng)};
    default:
      return {"power", watts_strogatz(n, 2, 0.05, rng)};
  }
}

Generated make_social(std::size_t i, Rng& rng, const GraphCorpusOptions& opts) {
  const std::uint32_t n = pick_n(rng, opts);
  switch (i % 7) {
    case 0:
      return {"soc", stochastic_block(n, 2 + static_cast<std::uint32_t>(rng.uniform_index(4)),
                                      rng.uniform(0.15, 0.4), rng.uniform(0.005, 0.04), rng)};
    case 1:
      return {"socfb", stochastic_block(n, 2, rng.uniform(0.3, 0.6), rng.uniform(0.02, 0.08), rng)};
    case 2:
      return {"ca", disjoint_union(ring_of_cliques(std::max<std::uint32_t>(3, n / 16), 6),
                                   erdos_renyi(n / 3 + 8, 0.08, rng))};
    case 3:
      return {"ia", barabasi_albert(n, 2, rng)};
    case 4:
      return {"rt", add_hubs(star(n / 2), 3, n / 3, rng)};
    case 5:
      return {"email", barabasi_albert(n, 1, rng)};
    default:
      return {"econ", randomize_weights(erdos_renyi(n / 2 + 10, 0.06, rng), -2.0, 2.0, rng)};
  }
}

Generated make_miscellaneous(std::size_t i, Rng& rng, const GraphCorpusOptions& opts) {
  const std::uint32_t n = pick_n(rng, opts);
  switch (i % 9) {
    case 0:
      return {"rand", erdos_renyi(n, rng.uniform(0.02, 0.15), rng)};
    case 1:
      return {"misc", erdos_renyi(n, rng.uniform(0.01, 0.05), rng)};
    case 2:  // eigenvalue multiplicities: complete graphs
      return {"dimacs", complete(16 + static_cast<std::uint32_t>(rng.uniform_index(24)))};
    case 3:  // multiplicities: complete bipartite
      return {"dimacs", complete_bipartite(8 + static_cast<std::uint32_t>(rng.uniform_index(16)),
                                           8 + static_cast<std::uint32_t>(rng.uniform_index(16)))};
    case 4: {  // repeated identical components: exactly degenerate spectra
      const CooMatrix unit = complete(6);
      CooMatrix u = unit;
      const std::size_t copies = 3 + rng.uniform_index(4);
      for (std::size_t c = 1; c < copies; ++c) u = disjoint_union(u, unit);
      return {"labeled", disjoint_union(u, path(n / 4 + 4))};
    }
    case 5:  // unweighted ∞σ driver: twin hubs with >= 512 leaves
      return {"misc", twin_star(512 + static_cast<std::uint32_t>(rng.uniform_index(256)))};
    case 6:  // weighted wide-dynamic-range graphs (econ-like)
      return {"misc",
              randomize_weights(erdos_renyi(n, 0.04, rng), -7.0, 7.0, rng)};
    case 7:
      return {"labeled", binary_tree(n)};
    default:
      return {"rand", watts_strogatz(n, 1 + static_cast<std::uint32_t>(rng.uniform_index(3)),
                                     rng.uniform(0.0, 1.0), rng)};
  }
}

Generated make_for_class(const std::string& klass, std::size_t i, Rng& rng,
                         const GraphCorpusOptions& opts) {
  if (klass == "biological") return make_biological(i, rng, opts);
  if (klass == "infrastructure") return make_infrastructure(i, rng, opts);
  if (klass == "social") return make_social(i, rng, opts);
  if (klass == "miscellaneous") return make_miscellaneous(i, rng, opts);
  throw std::invalid_argument("unknown graph class '" + klass + "'");
}

std::size_t class_count(const GraphCorpusOptions& opts, const std::string& klass) {
  if (klass == "biological") return opts.counts.biological;
  if (klass == "infrastructure") return opts.counts.infrastructure;
  if (klass == "social") return opts.counts.social;
  if (klass == "miscellaneous") return opts.counts.miscellaneous;
  return 0;
}

}  // namespace

std::vector<TestMatrix> build_graph_corpus(const GraphCorpusOptions& opts,
                                           const std::string& klass) {
  const std::vector<std::string> classes =
      klass.empty() ? std::vector<std::string>{"biological", "infrastructure", "social",
                                               "miscellaneous"}
                    : std::vector<std::string>{klass};
  std::vector<TestMatrix> out;
  for (const auto& cls : classes) {
    const std::size_t count = class_count(opts, cls);
    for (std::size_t i = 0; i < count; ++i) {
      Rng rng(fnv1a(cls) ^ (opts.seed + 0x100000001b3ull * (i + 1)));
      Generated g = make_for_class(cls, i, rng, opts);
      const CooMatrix lap = graph_laplacian_pipeline(g.adjacency);
      if (lap.rows() < 16) continue;  // too small to ask for 12 eigenpairs
      out.push_back(make_test_matrix(numbered(cls + "_" + g.category, i), cls, g.category, lap));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TestMatrix& x, const TestMatrix& y) { return x.name < y.name; });
  return out;
}

std::vector<CategoryCount> graph_corpus_composition(const GraphCorpusOptions& opts) {
  const auto corpus = build_graph_corpus(opts);
  std::vector<CategoryCount> counts;
  for (const auto& t : corpus) {
    auto it = std::find_if(counts.begin(), counts.end(), [&t](const CategoryCount& c) {
      return c.klass == t.klass && c.category == t.category;
    });
    if (it == counts.end()) {
      counts.push_back({t.klass, t.category, 1});
    } else {
      ++it->count;
    }
  }
  std::sort(counts.begin(), counts.end(), [](const CategoryCount& a, const CategoryCount& b) {
    return a.klass != b.klass ? a.klass < b.klass : a.category < b.category;
  });
  return counts;
}

}  // namespace mfla
