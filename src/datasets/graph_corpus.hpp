// Synthetic stand-in for the Network Repository graph corpus (paper §2.1
// and Table 1): four aggregated classes built from per-category generators,
// each graph turned into its symmetrized normalized Laplacian.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "datasets/test_matrix.hpp"

namespace mfla {

struct GraphClassCounts {
  std::size_t biological = 72;
  std::size_t infrastructure = 29;  // paper's class size, kept 1:1
  std::size_t social = 48;
  std::size_t miscellaneous = 96;
};

struct GraphCorpusOptions {
  GraphClassCounts counts;
  std::size_t min_n = 24;
  std::size_t max_n = 360;
  std::uint64_t seed = 0x5eed'0002;
};

/// Category histogram entry for the Table-1 reproduction.
struct CategoryCount {
  std::string klass;
  std::string category;
  std::size_t count;
};

/// Build one class ("biological", "infrastructure", "social",
/// "miscellaneous") or all classes (empty name). Matrices are the
/// symmetrized normalized Laplacians, sorted lexicographically by name.
[[nodiscard]] std::vector<TestMatrix> build_graph_corpus(const GraphCorpusOptions& opts = {},
                                                         const std::string& klass = "");

/// Per-category composition of the corpus (drives bench_table1_dataset).
[[nodiscard]] std::vector<CategoryCount> graph_corpus_composition(
    const GraphCorpusOptions& opts = {});

}  // namespace mfla
