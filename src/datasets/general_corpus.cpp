#include "datasets/general_corpus.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

#include "support/rng.hpp"

namespace mfla {

namespace {

/// Symmetric band matrix with bandwidth b; diagonal dominance `dom` and a
/// global scale factor.
CooMatrix band_matrix(std::size_t n, std::size_t b, double dom, double scale, Rng& rng) {
  CooMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    a.add(static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(i),
          scale * (dom + rng.uniform(0.0, 1.0)));
    for (std::size_t d = 1; d <= b && i + d < n; ++d) {
      const double v = scale * rng.uniform(-1.0, 1.0);
      a.add(static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(i + d), v);
      a.add(static_cast<std::uint32_t>(i + d), static_cast<std::uint32_t>(i), v);
    }
  }
  a.compress();
  return a;
}

/// Random sparse symmetric matrix with ~density*n^2/2 entries.
CooMatrix random_symmetric(std::size_t n, double density, double scale, Rng& rng) {
  CooMatrix a(n, n);
  const auto target = static_cast<std::size_t>(density * static_cast<double>(n) * static_cast<double>(n) / 2.0) + n;
  for (std::size_t k = 0; k < target; ++k) {
    const auto i = static_cast<std::uint32_t>(rng.uniform_index(n));
    const auto j = static_cast<std::uint32_t>(rng.uniform_index(n));
    const double v = scale * rng.normal();
    a.add(i, j, v);
    if (i != j) a.add(j, i, v);
  }
  a.compress();
  return a;
}

/// Diagonally dominant symmetric matrix (well conditioned).
CooMatrix diag_dominant(std::size_t n, std::size_t per_row, double scale, Rng& rng) {
  CooMatrix a(n, n);
  std::vector<double> diag(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < per_row; ++k) {
      const auto j = static_cast<std::uint32_t>(rng.uniform_index(n));
      if (j == i) continue;
      const double v = scale * rng.uniform(-1.0, 1.0);
      a.add(static_cast<std::uint32_t>(i), j, v);
      a.add(j, static_cast<std::uint32_t>(i), v);
      diag[i] += std::abs(v);
      diag[j] += std::abs(v);
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    a.add(static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(i),
          diag[i] * (1.0 + rng.uniform()) + scale);
  }
  a.compress();
  return a;
}

/// 1-D/2-D Laplacian stencil (classic PDE test matrix).
CooMatrix stencil_laplacian(std::size_t n, bool two_d, double scale) {
  CooMatrix a(n, n);
  if (!two_d) {
    for (std::size_t i = 0; i < n; ++i) {
      a.add(static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(i), 2.0 * scale);
      if (i + 1 < n) {
        a.add(static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(i + 1), -scale);
        a.add(static_cast<std::uint32_t>(i + 1), static_cast<std::uint32_t>(i), -scale);
      }
    }
  } else {
    const auto side = static_cast<std::size_t>(std::sqrt(static_cast<double>(n)));
    const std::size_t m = side * side;
    a.set_shape(m, m);
    auto id = [side](std::size_t r, std::size_t c) { return static_cast<std::uint32_t>(r * side + c); };
    for (std::size_t r = 0; r < side; ++r) {
      for (std::size_t c = 0; c < side; ++c) {
        a.add(id(r, c), id(r, c), 4.0 * scale);
        if (c + 1 < side) {
          a.add(id(r, c), id(r, c + 1), -scale);
          a.add(id(r, c + 1), id(r, c), -scale);
        }
        if (r + 1 < side) {
          a.add(id(r, c), id(r + 1, c), -scale);
          a.add(id(r + 1, c), id(r, c), -scale);
        }
      }
    }
  }
  a.compress();
  return a;
}

/// Arrow matrix: heavy diagonal plus a dense first row/column.
CooMatrix arrow_matrix(std::size_t n, double scale, Rng& rng) {
  CooMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    a.add(static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(i),
          scale * rng.log_uniform(-2.0, 2.0));
    if (i > 0) {
      const double v = scale * rng.uniform(-1.0, 1.0);
      a.add(0, static_cast<std::uint32_t>(i), v);
      a.add(static_cast<std::uint32_t>(i), 0, v);
    }
  }
  a.compress();
  return a;
}

/// Rank-k outer-product structure plus sparse symmetric noise: produces
/// tightly clustered dominant eigenvalues (stresses the paper's matching
/// method and the buffer-count machinery).
CooMatrix low_rank_plus_noise(std::size_t n, std::size_t rank, double scale, Rng& rng) {
  CooMatrix a(n, n);
  std::vector<std::vector<double>> u(rank);
  for (auto& col : u) col = rng.unit_vector(n);
  // Dense rank-k part restricted to a sparse sampling pattern to respect
  // the nnz budget.
  const std::size_t samples = 6 * n;
  for (std::size_t s = 0; s < samples; ++s) {
    const auto i = static_cast<std::uint32_t>(rng.uniform_index(n));
    const auto j = static_cast<std::uint32_t>(rng.uniform_index(n));
    double v = 0.0;
    for (std::size_t r = 0; r < rank; ++r) v += u[r][i] * u[r][j];
    v *= scale * static_cast<double>(n) / 4.0;
    v += 0.01 * scale * rng.normal();
    a.add(i, j, v);
    if (i != j) a.add(j, i, v);
  }
  for (std::size_t i = 0; i < n; ++i) {
    double v = scale;
    for (std::size_t r = 0; r < rank; ++r) v += scale * u[r][i] * u[r][i] * static_cast<double>(n) / 4.0;
    a.add(static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(i), v);
  }
  a.compress();
  return a;
}

/// Wide-dynamic-range matrix: entries spread over many decades within one
/// matrix (this is what pushes OFP8/float16 into the ∞σ regime).
CooMatrix wide_range(std::size_t n, double lo_exp, double hi_exp, Rng& rng) {
  CooMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    a.add(static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(i),
          rng.log_uniform(lo_exp, hi_exp));
    const std::size_t fan = 2 + rng.uniform_index(3);
    for (std::size_t k = 0; k < fan; ++k) {
      const auto j = static_cast<std::uint32_t>(rng.uniform_index(n));
      if (j == i) continue;
      const double sign = rng.uniform() < 0.5 ? -1.0 : 1.0;
      const double v = sign * rng.log_uniform(lo_exp, hi_exp);
      a.add(static_cast<std::uint32_t>(i), j, v);
      a.add(j, static_cast<std::uint32_t>(i), v);
    }
  }
  a.compress();
  return a;
}

std::string numbered(const char* base, std::size_t i) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s_%03zu", base, i);
  return buf;
}

}  // namespace

std::vector<TestMatrix> build_general_corpus(const GeneralCorpusOptions& opts) {
  std::vector<TestMatrix> out;
  out.reserve(opts.count);
  for (std::size_t i = 0; i < opts.count; ++i) {
    Rng rng(opts.seed ^ (0x9e3779b97f4a7c15ull * (i + 1)));
    const std::size_t n =
        opts.min_n + rng.uniform_index(opts.max_n - opts.min_n + 1);
    // Global scale: log-uniform over many decades, as in SuiteSparse where
    // physical units make matrix norms range from 1e-10 to 1e+12.
    const double scale = rng.log_uniform(-6.0, 6.0);
    CooMatrix a;
    std::string family;
    switch (i % 7) {
      case 0:
        family = "band";
        a = band_matrix(n, 1 + rng.uniform_index(6), rng.uniform(0.0, 4.0), scale, rng);
        break;
      case 1:
        family = "randsym";
        a = random_symmetric(n, rng.uniform(0.01, 0.08), scale, rng);
        break;
      case 2:
        family = "diagdom";
        a = diag_dominant(n, 2 + rng.uniform_index(4), scale, rng);
        break;
      case 3:
        family = "stencil";
        a = stencil_laplacian(n, rng.uniform() < 0.5, scale);
        break;
      case 4:
        family = "arrow";
        a = arrow_matrix(n, scale, rng);
        break;
      case 5:
        family = "lowrank";
        a = low_rank_plus_noise(n, 2 + rng.uniform_index(4), scale, rng);
        break;
      default: {
        family = "widerange";
        const double span = rng.uniform(3.0, 14.0);
        const double center = rng.uniform(-6.0, 6.0);
        a = wide_range(n, center - span, center + span, rng);
        break;
      }
    }
    if (a.nnz() > opts.max_nnz) continue;  // mirror the paper's nnz filter
    out.push_back(make_test_matrix(numbered(family.c_str(), i), "general", family, a));
  }
  std::sort(out.begin(), out.end(),
            [](const TestMatrix& x, const TestMatrix& y) { return x.name < y.name; });
  return out;
}

}  // namespace mfla
