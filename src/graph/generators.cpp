#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>
#include <vector>

namespace mfla {

namespace {

/// Build a symmetric adjacency from an undirected edge set.
CooMatrix from_edges(std::uint32_t n, const std::vector<std::pair<std::uint32_t, std::uint32_t>>& edges) {
  CooMatrix a(n, n);
  a.reserve(2 * edges.size());
  for (const auto& [u, v] : edges) {
    if (u == v) continue;
    a.add(u, v, 1.0);
    a.add(v, u, 1.0);
  }
  a.compress();
  return a;
}

}  // namespace

CooMatrix erdos_renyi(std::uint32_t n, double p, Rng& rng) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = i + 1; j < n; ++j) {
      if (rng.uniform() < p) edges.emplace_back(i, j);
    }
  }
  return from_edges(n, edges);
}

CooMatrix barabasi_albert(std::uint32_t n, std::uint32_t m, Rng& rng) {
  if (m < 1) m = 1;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  // Degree-proportional sampling via the repeated-endpoints trick.
  std::vector<std::uint32_t> endpoints;
  const std::uint32_t m0 = m + 1;
  for (std::uint32_t i = 0; i < m0 && i + 1 < n; ++i) {  // initial clique
    for (std::uint32_t j = i + 1; j < m0; ++j) {
      edges.emplace_back(i, j);
      endpoints.push_back(i);
      endpoints.push_back(j);
    }
  }
  for (std::uint32_t v = m0; v < n; ++v) {
    std::set<std::uint32_t> targets;
    std::uint32_t guard = 0;
    while (targets.size() < m && guard++ < 16 * m) {
      const std::uint32_t t = endpoints[rng.uniform_index(endpoints.size())];
      if (t != v) targets.insert(t);
    }
    for (const std::uint32_t t : targets) {
      edges.emplace_back(v, t);
      endpoints.push_back(v);
      endpoints.push_back(t);
    }
  }
  return from_edges(n, edges);
}

CooMatrix watts_strogatz(std::uint32_t n, std::uint32_t k, double beta, Rng& rng) {
  std::set<std::pair<std::uint32_t, std::uint32_t>> edge_set;
  auto norm = [](std::uint32_t a, std::uint32_t b) {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  };
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t d = 1; d <= k; ++d) {
      const std::uint32_t j = (i + d) % n;
      if (rng.uniform() < beta) {
        // Rewire to a random non-self target.
        std::uint32_t t = static_cast<std::uint32_t>(rng.uniform_index(n));
        std::uint32_t guard = 0;
        while ((t == i || edge_set.count(norm(i, t)) != 0) && guard++ < 32) {
          t = static_cast<std::uint32_t>(rng.uniform_index(n));
        }
        if (t != i) edge_set.insert(norm(i, t));
      } else {
        edge_set.insert(norm(i, j));
      }
    }
  }
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges(edge_set.begin(), edge_set.end());
  return from_edges(n, edges);
}

CooMatrix duplication_divergence(std::uint32_t n, double retain, Rng& rng) {
  // Start from a small seed; each new vertex copies a random template
  // vertex, keeps each copied edge with probability `retain`, and always
  // links back to the template with probability 0.5.
  std::vector<std::vector<std::uint32_t>> adj(n);
  auto connect = [&adj](std::uint32_t a, std::uint32_t b) {
    adj[a].push_back(b);
    adj[b].push_back(a);
  };
  connect(0, 1);
  connect(1, 2);
  connect(0, 2);
  for (std::uint32_t v = 3; v < n; ++v) {
    const auto tmpl = static_cast<std::uint32_t>(rng.uniform_index(v));
    bool attached = false;
    for (const std::uint32_t nb : std::vector<std::uint32_t>(adj[tmpl])) {
      if (rng.uniform() < retain) {
        connect(v, nb);
        attached = true;
      }
    }
    if (rng.uniform() < 0.5 || !attached) connect(v, tmpl);
  }
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::uint32_t u = 0; u < n; ++u) {
    for (const std::uint32_t v : adj[u]) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  return from_edges(n, edges);
}

CooMatrix grid_2d(std::uint32_t rows, std::uint32_t cols, double perturb, Rng& rng) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  auto id = [cols](std::uint32_t r, std::uint32_t c) { return r * cols + c; };
  const std::uint32_t n = rows * cols;
  for (std::uint32_t r = 0; r < rows; ++r) {
    for (std::uint32_t c = 0; c < cols; ++c) {
      if (c + 1 < cols && rng.uniform() >= perturb) edges.emplace_back(id(r, c), id(r, c + 1));
      if (r + 1 < rows && rng.uniform() >= perturb) edges.emplace_back(id(r, c), id(r + 1, c));
    }
  }
  // A few long-range shortcuts (bridges/highways).
  const auto shortcuts = static_cast<std::uint32_t>(perturb * n);
  for (std::uint32_t s = 0; s < shortcuts; ++s) {
    const auto u = static_cast<std::uint32_t>(rng.uniform_index(n));
    const auto v = static_cast<std::uint32_t>(rng.uniform_index(n));
    if (u != v) edges.emplace_back(u, v);
  }
  return from_edges(n, edges);
}

CooMatrix random_geometric(std::uint32_t n, double radius, Rng& rng) {
  std::vector<double> x(n), y(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    x[i] = rng.uniform();
    y[i] = rng.uniform();
  }
  const double r2 = radius * radius;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = i + 1; j < n; ++j) {
      const double dx = x[i] - x[j], dy = y[i] - y[j];
      if (dx * dx + dy * dy <= r2) edges.emplace_back(i, j);
    }
  }
  return from_edges(n, edges);
}

CooMatrix stochastic_block(std::uint32_t n, std::uint32_t blocks, double p_in, double p_out,
                           Rng& rng) {
  if (blocks < 1) blocks = 1;
  std::vector<std::uint32_t> community(n);
  for (std::uint32_t i = 0; i < n; ++i) community[i] = i % blocks;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = i + 1; j < n; ++j) {
      const double p = (community[i] == community[j]) ? p_in : p_out;
      if (rng.uniform() < p) edges.emplace_back(i, j);
    }
  }
  return from_edges(n, edges);
}

CooMatrix star(std::uint32_t n) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::uint32_t i = 1; i < n; ++i) edges.emplace_back(0, i);
  return from_edges(n, edges);
}

CooMatrix complete(std::uint32_t n) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::uint32_t i = 0; i < n; ++i)
    for (std::uint32_t j = i + 1; j < n; ++j) edges.emplace_back(i, j);
  return from_edges(n, edges);
}

CooMatrix complete_bipartite(std::uint32_t a, std::uint32_t b) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::uint32_t i = 0; i < a; ++i)
    for (std::uint32_t j = 0; j < b; ++j) edges.emplace_back(i, a + j);
  return from_edges(a + b, edges);
}

CooMatrix path(std::uint32_t n) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::uint32_t i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  return from_edges(n, edges);
}

CooMatrix ring_of_cliques(std::uint32_t c, std::uint32_t s) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::uint32_t b = 0; b < c; ++b) {
    const std::uint32_t base = b * s;
    for (std::uint32_t i = 0; i < s; ++i)
      for (std::uint32_t j = i + 1; j < s; ++j) edges.emplace_back(base + i, base + j);
    const std::uint32_t next = ((b + 1) % c) * s;
    edges.emplace_back(base, next);
  }
  return from_edges(c * s, edges);
}

CooMatrix binary_tree(std::uint32_t n) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::uint32_t i = 1; i < n; ++i) edges.emplace_back((i - 1) / 2, i);
  return from_edges(n, edges);
}

CooMatrix disjoint_union(const CooMatrix& a, const CooMatrix& b) {
  CooMatrix u(a.rows() + b.rows(), a.cols() + b.cols());
  u.reserve(a.nnz() + b.nnz());
  for (const auto& t : a.triplets()) u.add(t.row, t.col, t.value);
  const auto ro = static_cast<std::uint32_t>(a.rows());
  const auto co = static_cast<std::uint32_t>(a.cols());
  for (const auto& t : b.triplets()) u.add(t.row + ro, t.col + co, t.value);
  u.compress();
  return u;
}

CooMatrix rmat(std::uint32_t scale, std::uint32_t edges_per_vertex, double a, double b, double c,
               Rng& rng) {
  const std::uint32_t n = 1u << scale;
  const std::uint64_t target = static_cast<std::uint64_t>(edges_per_vertex) * n;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  edges.reserve(target);
  for (std::uint64_t k = 0; k < target; ++k) {
    std::uint32_t u = 0, v = 0;
    for (std::uint32_t bit = 0; bit < scale; ++bit) {
      const double r = rng.uniform();
      u <<= 1;
      v <<= 1;
      if (r < a) {
        // top-left quadrant: no bits set
      } else if (r < a + b) {
        v |= 1;
      } else if (r < a + b + c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u != v) edges.emplace_back(u, v);
  }
  return from_edges(n, edges);
}

CooMatrix add_hubs(const CooMatrix& g, std::uint32_t hubs, std::uint32_t degree, Rng& rng) {
  const auto n0 = static_cast<std::uint32_t>(g.rows());
  CooMatrix out(n0 + hubs, n0 + hubs);
  out.reserve(g.nnz() + 2ull * hubs * degree);
  for (const auto& t : g.triplets()) out.add(t.row, t.col, t.value);
  for (std::uint32_t h = 0; h < hubs; ++h) {
    const std::uint32_t hub = n0 + h;
    for (std::uint32_t d = 0; d < degree; ++d) {
      const auto t = static_cast<std::uint32_t>(rng.uniform_index(n0 + h));
      out.add(hub, t, 1.0);
      out.add(t, hub, 1.0);
    }
  }
  out.compress();
  return out;
}

}  // namespace mfla
