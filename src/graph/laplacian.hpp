// Graph preprocessing pipeline (paper §2.1):
//   1. squarify      — crop a removable zero block, or pad, so the
//                      adjacency matrix is square;
//   2. symmetrize    — average symmetrization A ↦ (A + Aᵀ)/2;
//   3. normalized Laplacian (Eq. 1):
//        L_ii = 1                        if deg(i) > 0
//        L_ij = -A_ij / sqrt(deg_i deg_j) if i != j and A_ij != 0
//        L_ij = 0                         otherwise,
//      with deg(i) = Σ_j A_ij.
#pragma once

#include <cmath>
#include <vector>

#include "sparse/coo.hpp"

namespace mfla {

/// Make the adjacency matrix square. If all entries beyond the smaller
/// dimension are zero the zero block is cropped; otherwise the matrix is
/// padded with a zero block (paper §2.1).
[[nodiscard]] inline CooMatrix squarify(const CooMatrix& a) {
  if (a.rows() == a.cols()) return a;
  const std::size_t small = a.rows() < a.cols() ? a.rows() : a.cols();
  bool croppable = true;
  for (const auto& t : a.triplets()) {
    if (t.row >= small || t.col >= small) {
      croppable = false;
      break;
    }
  }
  CooMatrix out = a;
  if (croppable) {
    out.set_shape(small, small);
  } else {
    const std::size_t big = a.rows() > a.cols() ? a.rows() : a.cols();
    out.set_shape(big, big);
  }
  return out;
}

/// Average symmetrization A ↦ (A + Aᵀ)/2.
[[nodiscard]] inline CooMatrix symmetrize_average(const CooMatrix& a) {
  CooMatrix s(a.rows(), a.cols());
  s.reserve(2 * a.nnz());
  for (const auto& t : a.triplets()) {
    s.add(t.row, t.col, 0.5 * t.value);
    s.add(t.col, t.row, 0.5 * t.value);
  }
  s.compress();
  return s;
}

/// Weighted vertex degrees deg(i) = Σ_j A_ij of a symmetric adjacency.
[[nodiscard]] inline std::vector<double> vertex_degrees(const CooMatrix& a) {
  std::vector<double> deg(a.rows(), 0.0);
  for (const auto& t : a.triplets()) deg[t.row] += t.value;
  return deg;
}

/// Symmetrically normalized Laplacian of a symmetric adjacency matrix.
[[nodiscard]] inline CooMatrix normalized_laplacian(const CooMatrix& adj) {
  const std::vector<double> deg = vertex_degrees(adj);
  CooMatrix l(adj.rows(), adj.cols());
  l.reserve(adj.nnz() + adj.rows());
  for (std::size_t i = 0; i < adj.rows(); ++i) {
    if (deg[i] > 0.0) l.add(static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(i), 1.0);
  }
  for (const auto& t : adj.triplets()) {
    if (t.row == t.col) continue;  // self-loops only contribute to degrees
    const double dd = deg[t.row] * deg[t.col];
    if (dd <= 0.0) continue;
    l.add(t.row, t.col, -t.value / std::sqrt(dd));
  }
  l.compress();
  return l;
}

/// Full pipeline: raw (possibly rectangular, directed) adjacency to the
/// symmetrized normalized Laplacian.
[[nodiscard]] inline CooMatrix graph_laplacian_pipeline(const CooMatrix& raw) {
  return normalized_laplacian(symmetrize_average(squarify(raw)));
}

}  // namespace mfla
