// Synthetic graph generators.
//
// These substitute for the Network Repository download (no network access
// in this environment): each generator produces adjacency matrices whose
// structure matches one of the repository's category families, so the
// Laplacian spectra exercise the same phenomena the paper measures
// (clustered eigenvalues, hubs with huge degree products, multiplicities
// from symmetric components, ...). All generators are deterministic given
// the Rng.
#pragma once

#include <cstdint>

#include "sparse/coo.hpp"
#include "support/rng.hpp"

namespace mfla {

/// G(n, p) Erdős–Rényi random graph.
[[nodiscard]] CooMatrix erdos_renyi(std::uint32_t n, double p, Rng& rng);

/// Barabási–Albert preferential attachment with m edges per new vertex.
[[nodiscard]] CooMatrix barabasi_albert(std::uint32_t n, std::uint32_t m, Rng& rng);

/// Watts–Strogatz small world: ring lattice with k neighbors per side,
/// rewired with probability beta.
[[nodiscard]] CooMatrix watts_strogatz(std::uint32_t n, std::uint32_t k, double beta, Rng& rng);

/// Duplication–divergence model (protein-interaction-like).
[[nodiscard]] CooMatrix duplication_divergence(std::uint32_t n, double retain, Rng& rng);

/// 2-D grid graph (rows x cols) with optional random extra/dropped edges.
[[nodiscard]] CooMatrix grid_2d(std::uint32_t rows, std::uint32_t cols, double perturb, Rng& rng);

/// Random geometric graph in the unit square with connection radius r.
[[nodiscard]] CooMatrix random_geometric(std::uint32_t n, double radius, Rng& rng);

/// Stochastic block model with `blocks` equal communities.
[[nodiscard]] CooMatrix stochastic_block(std::uint32_t n, std::uint32_t blocks, double p_in,
                                         double p_out, Rng& rng);

/// Star with n-1 leaves (vertex 0 is the hub).
[[nodiscard]] CooMatrix star(std::uint32_t n);

/// Complete graph K_n.
[[nodiscard]] CooMatrix complete(std::uint32_t n);

/// Complete bipartite graph K_{a,b}.
[[nodiscard]] CooMatrix complete_bipartite(std::uint32_t a, std::uint32_t b);

/// Path graph P_n.
[[nodiscard]] CooMatrix path(std::uint32_t n);

/// Ring of c cliques of size s, joined by single edges (power-grid-like
/// clustered topology).
[[nodiscard]] CooMatrix ring_of_cliques(std::uint32_t c, std::uint32_t s);

/// Balanced binary tree with n vertices.
[[nodiscard]] CooMatrix binary_tree(std::uint32_t n);

/// Disjoint union (block diagonal) of two graphs.
[[nodiscard]] CooMatrix disjoint_union(const CooMatrix& a, const CooMatrix& b);

/// Attach `hubs` additional vertices, each connected to `degree` random
/// existing vertices (creates large-degree hubs; drives Laplacian entries
/// below small-format subnormal floors — the paper's miscellaneous ∞σ).
[[nodiscard]] CooMatrix add_hubs(const CooMatrix& g, std::uint32_t hubs, std::uint32_t degree,
                                 Rng& rng);

/// R-MAT / Kronecker-style recursive random graph (graph500 category):
/// 2^scale vertices, `edges_per_vertex` * 2^scale edge samples distributed
/// by the (a, b, c) quadrant probabilities.
[[nodiscard]] CooMatrix rmat(std::uint32_t scale, std::uint32_t edges_per_vertex, double a,
                             double b, double c, Rng& rng);

}  // namespace mfla
