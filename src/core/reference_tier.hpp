// The tiered reference engine's vocabulary: which arithmetic tiers the
// per-matrix reference solve may use, and the telemetry one tiered solve
// reports back to the sweep statistics.
//
// The paper defines the reference eigenpairs in software float128
// (113-bit significand, tolerance 1e-20). That oracle stays authoritative;
// the dd_first tier merely tries double-double arithmetic (arith/dd.hpp,
// ~106-bit significand on hardware adds/fmas, typically an order of
// magnitude faster than soft binary128) first and *certifies* the result:
// it recomputes the partial-Schur residual ||A Q - Q R|| column by column
// in dd and accepts only when, for every kept column j,
//
//     gamma <= kReferenceTolerance * max(|lambda_j|, tiny)            (1)
//     res_j + gamma <= 1024 * kReferenceTolerance * max(|lambda_j|, tiny)
//                                                                    (2)
//
// where gamma = 16 n eps_dd ||A||_F bounds the rounding error of the dd
// residual evaluation itself. (1) rejects matrices on which dd cannot
// even measure residuals at the tolerance scale; (2) accepts the locking
// accumulation the restart scheme itself introduces (float128 included)
// while pinning the certified bound ~20x below double rounding — see
// core/reference_tier.cpp for the full derivation. Whenever the dd solve
// fails to converge, produces non-finite values, or a bound fails, the
// solve is transparently *promoted*: the float128 oracle runs exactly as
// in f128_only mode, so promoted solves are bit-identical to a pure-f128
// sweep by construction.
//
// The tier is part of the reference-cache key (f128_only hashes exactly as
// before this tier existed, keeping old caches valid) and of the
// checkpoint-journal meta, so byte-identity is preserved per tier.
#pragma once

#include <stdexcept>
#include <string>

namespace mfla {

enum class ReferenceTier {
  f128_only,  ///< today's behavior: every reference solve in float128
  dd_first,   ///< try double-double, promote to float128 when uncertified
};

[[nodiscard]] constexpr const char* reference_tier_name(ReferenceTier t) noexcept {
  return t == ReferenceTier::dd_first ? "dd_first" : "f128_only";
}

/// Parse a CLI/API tier spelling; throws std::invalid_argument listing the
/// valid names on anything else.
[[nodiscard]] inline ReferenceTier reference_tier_from_name(const std::string& name) {
  if (name == "f128_only") return ReferenceTier::f128_only;
  if (name == "dd_first") return ReferenceTier::dd_first;
  throw std::invalid_argument("unknown reference tier '" + name +
                              "' (valid tiers: f128_only dd_first)");
}

/// What one tiered reference solve did, fed into SweepStats by the engine.
struct ReferenceTierTelemetry {
  bool dd_attempted = false;  ///< a dd solve ran (tier == dd_first)
  bool dd_certified = false;  ///< the dd result passed the residual bound
  bool promoted = false;      ///< fell through to the float128 oracle
  double dd_seconds = 0.0;    ///< wall-clock of the dd solve + certification
  double f128_seconds = 0.0;  ///< wall-clock of the float128 solve (if run)
  /// Largest certified per-column relative residual of an accepted dd
  /// solve (diagnostic; <= kReferenceTolerance when dd_certified).
  double certified_residual = 0.0;
  /// Why the dd tier was rejected (empty when certified or not attempted).
  std::string dd_failure;
};

}  // namespace mfla
