// Persistence of raw experiment results: one CSV row per (matrix, format)
// run with outcome, errors and solver statistics — the MuFoLAB-style raw
// data behind the figures, so distributions can be re-binned offline.
#pragma once

#include <string>
#include <vector>

#include "core/experiment.hpp"

namespace mfla {

/// Write raw per-run results. Columns:
/// matrix,class,category,n,nnz,format,outcome,eig_abs,eig_rel,vec_abs,
/// vec_rel,similarity,nconv,restarts,matvecs
void write_results_csv(const std::string& path, const std::vector<MatrixResult>& results);

/// Read back a results CSV written by write_results_csv. Only the fields
/// needed to rebuild distributions are restored (errors, outcome, format).
[[nodiscard]] std::vector<MatrixResult> read_results_csv(const std::string& path);

[[nodiscard]] const char* outcome_name(RunOutcome o) noexcept;
[[nodiscard]] RunOutcome outcome_from_name(const std::string& s);

}  // namespace mfla
