// Persistence of raw experiment results.
//
//  * CSV: one row per (matrix, format) run with outcome, errors and solver
//    statistics — the MuFoLAB-style raw data behind the figures, so
//    distributions can be re-binned offline.
//  * JSONL journal: the experiment engine's durable checkpoint. One line is
//    appended (and flushed) per completed event — a `meta` header describing
//    the sweep, a `run` line per finished (matrix, format) evaluation, and a
//    `reference` line per failed float128 reference solve. A sweep killed
//    mid-flight leaves at worst one torn final line, which the reader skips;
//    `--resume` then replays the journal and schedules only the missing
//    runs. Values round-trip exactly (%.17g; non-finite values are written
//    as Infinity/-Infinity/NaN, which both our reader and Python's json
//    module accept).
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.hpp"

namespace mfla {

/// Write raw per-run results. Columns:
/// matrix,class,category,n,nnz,format,outcome,eig_abs,eig_rel,vec_abs,
/// vec_rel,similarity,nconv,restarts,matvecs
void write_results_csv(const std::string& path, const std::vector<MatrixResult>& results);

/// Read back a results CSV written by write_results_csv. Only the fields
/// needed to rebuild distributions are restored (errors, outcome, format).
[[nodiscard]] std::vector<MatrixResult> read_results_csv(const std::string& path);

[[nodiscard]] const char* outcome_name(RunOutcome o) noexcept;
[[nodiscard]] RunOutcome outcome_from_name(const std::string& s);

// ---------------------------------------------------------------------------
// JSONL checkpoint journal
// ---------------------------------------------------------------------------

/// Identity of a sweep; a journal may only be resumed by an invocation with
/// an identical meta (same numerical config, format list and corpus size).
struct JournalMeta {
  std::size_t nev = 0;
  std::size_t buffer = 0;
  int which = 0;  // static_cast<int>(ExperimentConfig::which)
  int max_restarts = 0;
  int reference_max_restarts = 0;
  std::uint64_t seed = 0;
  /// static_cast<int>(ExperimentConfig::reference_tier); journals written
  /// before the tier existed read back as 0 == f128_only, their behavior.
  int reference_tier = 0;
  std::string formats;  // comma-joined format names in run order
  std::size_t matrix_count = 0;

  friend bool operator==(const JournalMeta&, const JournalMeta&) = default;
};

[[nodiscard]] JournalMeta make_journal_meta(const ExperimentConfig& cfg,
                                            const std::vector<FormatId>& formats,
                                            std::size_t matrix_count);

/// Append-only journal writer. Thread-safe; every line is flushed so a
/// killed process loses at most the line being written. Write failures
/// (disk full, file removed) throw IoError — checkpoints must never be
/// lost silently.
class JournalWriter {
 public:
  /// Opens `path` (creating parent directories). With truncate=false the
  /// file is opened for append, first physically truncating any torn
  /// trailing garbage back to the last complete line.
  JournalWriter(const std::string& path, bool truncate);

  void write_meta(const JournalMeta& meta);
  void write_reference_failure(const std::string& matrix, std::size_t n, std::size_t nnz,
                               const std::string& failure);
  void write_run(const std::string& matrix, std::size_t n, std::size_t nnz,
                 const FormatRun& run);

  /// Bytes of torn trailing garbage discarded when opening for append.
  [[nodiscard]] std::uint64_t truncated_bytes() const { return truncated_bytes_; }

 private:
  void append_line(const std::string& line);

  std::ofstream out_;
  std::mutex mtx_;
  std::uint64_t truncated_bytes_ = 0;
};

/// A journaled per-format run, stamped with the matrix dimensions so a
/// resume can reject entries for a matrix whose contents changed on disk.
struct JournalRun {
  FormatRun run;
  std::size_t n = 0;
  std::size_t nnz = 0;
};

struct JournalReferenceFailure {
  std::string failure;
  std::size_t n = 0;
  std::size_t nnz = 0;
};

/// Everything a journal recorded, keyed for resume lookups. Torn or
/// otherwise unparseable lines are counted, not fatal.
struct JournalContents {
  bool has_meta = false;
  JournalMeta meta;
  std::map<std::string, JournalReferenceFailure> reference_failures;  // by matrix name
  std::map<std::pair<std::string, FormatId>, JournalRun> runs;
  std::size_t skipped_lines = 0;
};

/// Read a journal; a missing file yields empty contents.
[[nodiscard]] JournalContents read_journal(const std::string& path);

}  // namespace mfla
