// Tiered reference driver (core/reference_tier.hpp has the contract).
//
// dd_first runs the reference IRAM in double-double arithmetic and then
// *certifies* the result against the paper's float128 tolerance: the
// partial-Schur residual E = A Q - Q R is recomputed column by column in
// dd, and each kept column j must satisfy both
//
//     (1)  gamma <= kReferenceTolerance * max(|lambda_j|, tiny)
//     (2)  res_j + gamma <= kDdCertifySlack * kReferenceTolerance
//                           * max(|lambda_j|, tiny)
//
// where gamma = 16 n eps_dd ||A||_F bounds the rounding error of the dd
// residual evaluation itself (each entry of E is a length-<=(nnz_row + k)
// dd dot product; 16 n eps_dd ||A||_F dominates the accumulated error of
// every column for the subspace sizes this driver sees).
//
// (1) is arithmetic adequacy: when gamma exceeds the tolerance threshold,
// dd cannot even *measure* residuals at the 1e-20 |lambda| level — its
// rounding noise drowns the quantity being certified — so the solve is
// promoted no matter what residual was observed. This is what rejects
// matrices whose kept eigenvalues are tiny relative to ||A||_F.
//
// (2) is convergence quality. The Krylov-Schur restart locks converged
// blocks by annihilating couplings of size up to tol |lambda|, so the
// *true* residual of the final decomposition accumulates a modest multiple
// of tol |lambda| beyond the solver's spike criterion — identically in any
// arithmetic, float128 included (measured: 10-200x on the test corpora).
// kDdCertifySlack = 1024 covers that envelope while keeping the certified
// bound at 1024e-20 ~ 1e-17 |lambda|, a factor ~20 below the double
// rounding unit: a certified dd reference and the float128 oracle are each
// that close to a true invariant pair, and since both tiers execute the
// same deterministic restart trajectory their mutual difference is dd
// rounding noise, far below the double rounding in which references are
// consumed.
//
// When either bound fails — or the dd solve does not converge, keeps fewer
// columns than requested, or produces non-finite values — the solve is
// promoted: compute_reference runs exactly as under f128_only, so a
// promoted solve is bit-identical to a pure-float128 sweep.
#include "core/experiment.hpp"

#include <chrono>
#include <cmath>
#include <limits>

#include "arith/dd.hpp"

namespace mfla {

namespace {

/// Machine epsilon of the normalized double-double format (2^-104).
constexpr double kDdEps = 0x1p-104;

/// Residual slack over kReferenceTolerance accepted by certification
/// bound (2) — the Krylov-Schur locking-accumulation envelope (see the
/// file comment).
constexpr double kDdCertifySlack = 1024.0;

/// Outcome of one dd-tier attempt. failure empty <=> certified.
struct DdAttempt {
  ReferenceSolution solution;
  double max_relative_residual = 0.0;
  std::string failure;
};

DdAttempt attempt_dd_reference(const TestMatrix& tm, const ExperimentConfig& cfg,
                               const std::vector<double>& start) {
  DdAttempt out;
  const std::size_t n = tm.n();
  const CsrMatrix<DoubleDouble> add = tm.matrix.convert<DoubleDouble>();

  PartialSchurOptions opts;
  opts.nev = cfg.nev + cfg.buffer;
  opts.which = cfg.which;
  opts.tolerance = kReferenceTolerance;
  opts.max_restarts = cfg.reference_max_restarts;
  opts.start_vector = &start;
  const auto r = partialschur<DoubleDouble>(add, opts);
  if (!r.converged) {
    out.failure = r.failure.empty() ? "dd reference did not converge" : "dd: " + r.failure;
    return out;
  }
  const std::size_t k = cfg.nev + cfg.buffer;
  const std::size_t keep = r.q.cols();
  if (keep < k) {
    out.failure = "dd reference kept fewer columns than requested";
    return out;
  }

  // gamma = 16 n eps_dd ||A||_F, the evaluation-error margin of the dd
  // residual below.
  DoubleDouble fro2(0.0);
  for (const DoubleDouble& v : add.values()) fro2 += v * v;
  const double fro = sqrt(fro2).to_double();
  const double gamma = 16.0 * static_cast<double>(n) * kDdEps * fro;
  if (!std::isfinite(gamma)) {
    out.failure = "dd certification margin is non-finite";
    return out;
  }

  // Column-by-column residual of A Q - Q R in dd. R is quasi-triangular:
  // column j only involves rows i <= j+1 (the +1 for a 2x2 block's
  // subdiagonal), all of which are inside the kept block.
  std::vector<DoubleDouble> aq(n);
  constexpr double tiny = std::numeric_limits<double>::min();
  for (std::size_t j = 0; j < k; ++j) {
    add.matvec(r.q.col(j), aq.data());
    const std::size_t top = std::min(j + 2, keep);
    for (std::size_t i = 0; i < top; ++i) {
      const DoubleDouble rij = r.r(i, j);
      if (rij == DoubleDouble(0.0)) continue;
      const DoubleDouble* qi = r.q.col(i);
      for (std::size_t row = 0; row < n; ++row) aq[row] -= qi[row] * rij;
    }
    DoubleDouble res2(0.0);
    for (std::size_t row = 0; row < n; ++row) res2 += aq[row] * aq[row];
    const DoubleDouble res = sqrt(res2);
    if (!is_number(res)) {
      out.failure = "dd residual is non-finite";
      return out;
    }
    const double mag = std::hypot(r.eig_re[j], r.eig_im[j]);
    const double denom = std::max(mag, tiny);
    const double rel = (res.to_double() + gamma) / denom;
    out.max_relative_residual = std::max(out.max_relative_residual, rel);
    if (!(gamma <= kReferenceTolerance * denom)) {
      out.failure = "dd cannot resolve the reference tolerance for column " +
                    std::to_string(j) + " (evaluation margin exceeds tol*|lambda|)";
      return out;
    }
    if (!(res.to_double() + gamma <= kDdCertifySlack * kReferenceTolerance * denom)) {
      out.failure = "dd residual bound uncertifiable for column " + std::to_string(j);
      return out;
    }
  }

  out.solution.values.assign(r.eig_re.begin(), r.eig_re.begin() + static_cast<long>(k));
  out.solution.vectors = DenseMatrix<double>(n, k);
  for (std::size_t j = 0; j < k; ++j)
    for (std::size_t i = 0; i < n; ++i)
      out.solution.vectors(i, j) = NumTraits<DoubleDouble>::to_double(r.q(i, j));
  out.solution.ok = true;
  return out;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

TieredReference compute_reference_tiered(const TestMatrix& tm, const ExperimentConfig& cfg,
                                         const std::vector<double>& start) {
  TieredReference out;
  if (cfg.reference_tier == ReferenceTier::dd_first) {
    out.tier.dd_attempted = true;
    const auto t0 = std::chrono::steady_clock::now();
    DdAttempt dd = attempt_dd_reference(tm, cfg, start);
    out.tier.dd_seconds = seconds_since(t0);
    if (dd.failure.empty()) {
      out.tier.dd_certified = true;
      out.tier.certified_residual = dd.max_relative_residual;
      out.solution = std::move(dd.solution);
      return out;
    }
    out.tier.promoted = true;
    out.tier.dd_failure = std::move(dd.failure);
  }
  const auto t0 = std::chrono::steady_clock::now();
  out.solution = compute_reference(tm, cfg, start);
  out.tier.f128_seconds = seconds_since(t0);
  return out;
}

}  // namespace mfla
