// Eigenpair matching (paper §2.2, the authors' "novel method").
//
// Low-precision runs can permute tightly clustered eigenvalues and flip
// eigenvector signs. To compare fairly, both the reference and the trial
// runs compute nev + buffer pairs (buffer = 2 in the paper); the optimal
// permutation is found with the Hungarian algorithm on the negative
// absolute cosine similarity matrix (paper Eq. 2), signs are fixed via the
// largest-|entry| index of each reference eigenvector, and only the first
// nev (reference-ordered) pairs are scored.
#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

#include "core/hungarian.hpp"
#include "dense/matrix.hpp"

namespace mfla {

/// Absolute cosine similarity matrix C_ij = |<r_i, s_j>| / (||r_i|| ||s_j||)
/// between reference columns r_i and computed columns s_j (paper Eq. 2).
[[nodiscard]] inline DenseMatrix<double> cosine_similarity(const DenseMatrix<double>& ref,
                                                           const DenseMatrix<double>& cmp) {
  const std::size_t n = ref.rows();
  const std::size_t p = ref.cols(), q = cmp.cols();
  DenseMatrix<double> c(p, q);
  std::vector<double> rnorm(p, 0.0), snorm(q, 0.0);
  for (std::size_t i = 0; i < p; ++i) {
    double acc = 0;
    for (std::size_t r = 0; r < n; ++r) acc += ref(r, i) * ref(r, i);
    rnorm[i] = std::sqrt(acc);
  }
  for (std::size_t j = 0; j < q; ++j) {
    double acc = 0;
    for (std::size_t r = 0; r < n; ++r) acc += cmp(r, j) * cmp(r, j);
    snorm[j] = std::sqrt(acc);
  }
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t j = 0; j < q; ++j) {
      double acc = 0;
      for (std::size_t r = 0; r < n; ++r) acc += ref(r, i) * cmp(r, j);
      const double denom = rnorm[i] * snorm[j];
      c(i, j) = denom > 0 ? std::abs(acc) / denom : 0.0;
    }
  }
  return c;
}

struct MatchResult {
  /// permutation[i] = column of the computed matrix assigned to reference
  /// column i (for all nev + buffer columns).
  std::vector<int> permutation;
  /// sign[i] in {+1, -1}: factor applied to the matched computed column.
  std::vector<double> sign;
  /// Mean absolute cosine similarity over the matched pairs.
  double mean_similarity = 0.0;
};

/// Match computed eigenvector columns to reference columns.
[[nodiscard]] inline MatchResult match_eigenvectors(const DenseMatrix<double>& ref,
                                                    const DenseMatrix<double>& cmp) {
  const DenseMatrix<double> sim = cosine_similarity(ref, cmp);
  // Hungarian minimizes cost; the paper feeds it the negative similarity.
  DenseMatrix<double> cost(sim.rows(), sim.cols());
  for (std::size_t i = 0; i < sim.rows(); ++i)
    for (std::size_t j = 0; j < sim.cols(); ++j) {
      const double s = sim(i, j);
      cost(i, j) = std::isfinite(s) ? -s : 0.0;
    }
  MatchResult out;
  out.permutation = hungarian_assignment(cost);

  const std::size_t n = ref.rows();
  out.sign.assign(ref.cols(), 1.0);
  double total_sim = 0.0;
  for (std::size_t i = 0; i < ref.cols(); ++i) {
    const int j = out.permutation[i];
    if (j < 0) continue;
    total_sim += sim(i, static_cast<std::size_t>(j));
    // Sign reference: the largest-|entry| index of the reference vector
    // (stable against tiny first entries, paper §2.2).
    std::size_t imax = 0;
    double best = -1.0;
    for (std::size_t r = 0; r < n; ++r) {
      const double a = std::abs(ref(r, i));
      if (a > best) {
        best = a;
        imax = r;
      }
    }
    const double rs = ref(imax, i);
    const double cs = cmp(imax, static_cast<std::size_t>(j));
    out.sign[i] = (rs < 0) == (cs < 0) ? 1.0 : -1.0;
  }
  out.mean_similarity = ref.cols() > 0 ? total_sim / static_cast<double>(ref.cols()) : 0.0;
  return out;
}

/// Apply a match: returns the computed columns permuted into reference
/// order and sign-corrected (columns 0..ref_cols-1).
[[nodiscard]] inline DenseMatrix<double> apply_match(const DenseMatrix<double>& cmp,
                                                     const MatchResult& match) {
  const std::size_t n = cmp.rows();
  const std::size_t p = match.permutation.size();
  DenseMatrix<double> out(n, p);
  for (std::size_t i = 0; i < p; ++i) {
    const int j = match.permutation[i];
    if (j < 0) continue;
    for (std::size_t r = 0; r < n; ++r) {
      out(r, i) = match.sign[i] * cmp(r, static_cast<std::size_t>(j));
    }
  }
  return out;
}

/// Apply the same permutation to an eigenvalue vector.
[[nodiscard]] inline std::vector<double> apply_match(const std::vector<double>& values,
                                                     const MatchResult& match) {
  std::vector<double> out(match.permutation.size(), 0.0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const int j = match.permutation[i];
    if (j >= 0 && static_cast<std::size_t>(j) < values.size()) out[i] = values[static_cast<std::size_t>(j)];
  }
  return out;
}

}  // namespace mfla
