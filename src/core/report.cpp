#include "core/report.hpp"

#include <sys/stat.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "support/failpoint.hpp"

namespace mfla {

void ensure_directory(const std::string& path) {
  // Injected mkdir failure: skip the mkdir calls entirely so the caller's
  // subsequent open fails exactly as it would on a read-only filesystem.
  if (MFLA_FAILPOINT("checkpoint.dir") != 0) return;
  std::string partial;
  for (std::size_t i = 0; i <= path.size(); ++i) {
    if (i == path.size() || path[i] == '/') {
      if (!partial.empty()) ::mkdir(partial.c_str(), 0755);
      if (i < path.size()) partial += '/';
      continue;
    }
    partial += path[i];
  }
}

void ensure_parent_directory(const std::string& path) {
  const auto slash = path.find_last_of('/');
  if (slash != std::string::npos) ensure_directory(path.substr(0, slash));
}

void write_distribution_csv(const std::string& path, const std::vector<Distribution>& series) {
  ensure_parent_directory(path);
  std::ofstream out(path);
  out << "percentile";
  for (const auto& s : series) out << ',' << s.format_name;
  out << '\n';
  const int steps = 100;
  for (int p = 0; p <= steps; ++p) {
    const double pct = static_cast<double>(p);
    out << pct;
    for (const auto& s : series) {
      const double v = s.percentile(pct);
      out << ',';
      if (std::isfinite(v)) out << v;
    }
    out << '\n';
  }
  out << "# failures";
  for (const auto& s : series) {
    out << ", " << s.format_name << ": omega=" << s.n_omega << " sigma=" << s.n_sigma << " of "
        << s.n_total;
  }
  out << '\n';
}

namespace {
constexpr const char* kSymbols = "*o+x#@%&";
}

std::string ascii_panel(const std::vector<Distribution>& series, const std::string& title,
                        int width, int height) {
  double lo = 1e300, hi = -1e300;
  for (const auto& s : series) {
    if (!s.sorted_log10.empty()) {
      lo = std::min(lo, s.sorted_log10.front());
      hi = std::max(hi, s.sorted_log10.back());
    }
  }
  std::ostringstream os;
  os << "== " << title << " ==\n";
  if (lo > hi) {
    os << "   (no finite series: all runs failed)\n";
    for (std::size_t k = 0; k < series.size(); ++k) {
      const auto& s = series[k];
      os << "   " << kSymbols[k % 8] << " " << s.format_name << "  omega=" << s.n_omega
         << " sigma=" << s.n_sigma << " / " << s.n_total << "\n";
    }
    return os.str();
  }
  if (hi - lo < 1e-9) hi = lo + 1.0;
  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));
  for (std::size_t k = 0; k < series.size(); ++k) {
    const auto& s = series[k];
    const char sym = kSymbols[k % 8];
    if (s.n_total == 0) continue;
    for (int c = 0; c < width; ++c) {
      const double pct = 100.0 * c / (width - 1);
      const double v = s.percentile(pct);
      if (!std::isfinite(v)) continue;
      int r = static_cast<int>((hi - v) / (hi - lo) * (height - 1) + 0.5);
      r = std::clamp(r, 0, height - 1);
      grid[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] = sym;
    }
  }
  char buf[64];
  for (int r = 0; r < height; ++r) {
    const double v = hi - (hi - lo) * r / (height - 1);
    std::snprintf(buf, sizeof buf, "%7.1f |", v);
    os << buf << grid[static_cast<std::size_t>(r)] << "\n";
  }
  os << "        +" << std::string(static_cast<std::size_t>(width), '-') << "\n";
  os << "         0%" << std::string(static_cast<std::size_t>(width) - 8, ' ') << "100%\n";
  os << "   log10(relative error) vs percentile;";
  for (std::size_t k = 0; k < series.size(); ++k) {
    os << "  " << kSymbols[k % 8] << "=" << series[k].format_name;
  }
  os << "\n";
  for (const auto& s : series) {
    if (s.n_omega + s.n_sigma > 0) {
      os << "   " << s.format_name << ": omega(no conv)=" << s.n_omega
         << " sigma(range)=" << s.n_sigma << " of " << s.n_total << "\n";
    }
  }
  return os.str();
}

std::string summary_table(const std::vector<Distribution>& series, const std::string& title) {
  std::ostringstream os;
  os << "-- " << title << " --\n";
  char buf[256];
  std::snprintf(buf, sizeof buf, "%-12s %8s %8s %8s %6s %6s %6s\n", "format", "p25", "median",
                "p75", "ok", "omega", "sigma");
  os << buf;
  for (const auto& s : series) {
    const double p25 = s.percentile(25), p50 = s.percentile(50), p75 = s.percentile(75);
    auto fmt = [](double v, char* b, std::size_t sz) {
      if (std::isfinite(v)) {
        std::snprintf(b, sz, "%8.2f", v);
      } else {
        std::snprintf(b, sz, "%8s", "inf");
      }
    };
    char b25[16], b50[16], b75[16];
    fmt(p25, b25, sizeof b25);
    fmt(p50, b50, sizeof b50);
    fmt(p75, b75, sizeof b75);
    std::snprintf(buf, sizeof buf, "%-12s %s %s %s %6zu %6zu %6zu\n", s.format_name.c_str(), b25,
                  b50, b75, s.n_finite(), s.n_omega, s.n_sigma);
    os << buf;
  }
  return os.str();
}

}  // namespace mfla
