// The experiment driver (paper §2.2): for each test matrix,
//   1. compute a reference partial Schur decomposition in float128
//      (tolerance 1e-20) for nev + buffer pairs,
//   2. for each format under evaluation: pre-check the dynamic range (∞σ),
//      convert, run partialschur in that format (per-width tolerance),
//      match eigenpairs (Hungarian on |cosine|, buffer = 2, sign fix),
//      and compute relative L2 errors over the first nev pairs,
//   3. classify the outcome (ok / ∞ω / ∞σ).
//
// Execution engine (experiment.cpp): work is scheduled on a work-stealing
// thread pool at (matrix, format) granularity. The float128 reference solve
// is a per-matrix prerequisite task whose result is cached and shared by all
// format runs of that matrix. Completed runs can be journaled to a JSONL
// checkpoint (core/results_io.hpp) so an interrupted sweep resumes with only
// the missing runs. Results are bit-identical for any thread count: every
// run depends only on (matrix, config) — the start vector comes from an RNG
// stream derived from the matrix name, never from scheduling order.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "arith/format_registry.hpp"
#include "core/errors.hpp"
#include "core/krylov_schur.hpp"
#include "core/matching.hpp"
#include "core/reference_tier.hpp"
#include "datasets/test_matrix.hpp"
#include "sparse/csr.hpp"
#include "support/rng.hpp"

// Deprecation markers for the legacy free-function driver surface. The
// supported entry point is the mfla::api layer (api/sweep.hpp); translation
// units that deliberately exercise the legacy path (its tests) define
// MFLA_ALLOW_DEPRECATED before including this header.
#if defined(MFLA_ALLOW_DEPRECATED)
#define MFLA_DEPRECATED(msg)
#else
#define MFLA_DEPRECATED(msg) [[deprecated(msg)]]
#endif

namespace mfla {

/// The paper's reference-solve tolerance (float128, §2.2). Shared by
/// compute_reference and the reference cache key, so changing it here
/// invalidates every cached reference solution automatically.
inline constexpr double kReferenceTolerance = 1e-20;

struct ExperimentConfig {
  std::size_t nev = 10;    // eigenvalue_count (paper: 10 largest)
  std::size_t buffer = 2;  // eigenvalue_buffer_count (paper: 2)
  Which which = Which::largest_magnitude;
  int max_restarts = 60;           // per-format restart budget
  int reference_max_restarts = 150;
  std::uint64_t seed = 0xa11ce;
  /// Reference arithmetic tier (core/reference_tier.hpp). The default runs
  /// every reference solve in float128, exactly as before the dd tier
  /// existed; dd_first tries double-double and promotes on an uncertified
  /// residual bound. Part of the reference-cache key and journal meta.
  ReferenceTier reference_tier = ReferenceTier::f128_only;
};

struct FormatRun {
  FormatId format = FormatId::float64;
  RunOutcome outcome = RunOutcome::no_convergence;
  ErrorPair eigenvalue_error;
  ErrorPair eigenvector_error;
  double mean_similarity = 0.0;
  std::size_t nconverged = 0;
  int restarts = 0;
  std::size_t matvecs = 0;
  /// Wall-clock seconds this run took (timing telemetry; journaled, but
  /// deliberately kept out of the numeric CSV columns, which must stay
  /// reproducible run-to-run).
  double duration_seconds = 0.0;
  std::string failure;
};

struct MatrixResult {
  std::string name;
  std::string klass;
  std::string category;
  std::size_t n = 0;
  std::size_t nnz = 0;
  bool reference_ok = false;
  std::string reference_failure;
  std::vector<FormatRun> runs;
};

struct ReferenceSolution {
  bool ok = false;
  std::string failure;
  std::vector<double> values;     // nev + buffer matched-order eigenvalues
  DenseMatrix<double> vectors;    // n x (nev + buffer)
};

/// Reference solve in float128 with the paper's 1e-20 tolerance.
[[nodiscard]] ReferenceSolution compute_reference(const TestMatrix& tm,
                                                  const ExperimentConfig& cfg,
                                                  const std::vector<double>& start);

/// A reference solve routed through the configured tier, plus what the
/// tier did (core/reference_tier.cpp).
struct TieredReference {
  ReferenceSolution solution;
  ReferenceTierTelemetry tier;
};

/// Reference solve honoring cfg.reference_tier: float128 directly under
/// f128_only; under dd_first a double-double solve whose residual bound is
/// certified against kReferenceTolerance, promoted to compute_reference
/// (bit-identical to f128_only) whenever certification fails.
[[nodiscard]] TieredReference compute_reference_tiered(const TestMatrix& tm,
                                                       const ExperimentConfig& cfg,
                                                       const std::vector<double>& start);

/// One format evaluation against a prepared reference.
template <typename T>
FormatRun run_format(const TestMatrix& tm, const ReferenceSolution& ref,
                     const ExperimentConfig& cfg, const std::vector<double>& start,
                     FormatId id) {
  FormatRun run;
  run.format = id;

  // ∞σ pre-check: does any entry leave the format's dynamic range?
  if (matrix_exceeds_range<T>(tm.matrix)) {
    run.outcome = RunOutcome::range_exceeded;
    run.failure = "matrix entries exceed dynamic range";
    return run;
  }

  const CsrMatrix<T> at = tm.matrix.convert<T>();
  PartialSchurOptions opts;
  opts.nev = cfg.nev + cfg.buffer;
  opts.which = cfg.which;
  opts.tolerance = NumTraits<T>::default_tolerance();
  opts.max_restarts = cfg.max_restarts;
  opts.start_vector = &start;
  opts.seed = fnv1a(tm.name) ^ 0x517e;
  const auto r = partialschur<T>(at, opts);
  run.restarts = r.restarts;
  run.matvecs = r.matvecs;
  run.nconverged = r.nconverged;
  if (!r.converged) {
    run.outcome = RunOutcome::no_convergence;
    run.failure = r.failure;
    return run;
  }

  // Convert results to double for matching/metrics (postprocessing step;
  // not part of the arithmetic under study).
  const std::size_t k = cfg.nev + cfg.buffer;
  const std::size_t kc = std::min(k, r.q.cols());
  DenseMatrix<double> vectors(tm.n(), kc);
  for (std::size_t j = 0; j < kc; ++j)
    for (std::size_t i = 0; i < tm.n(); ++i)
      vectors(i, j) = NumTraits<T>::to_double(r.q(i, j));
  std::vector<double> values(r.eig_re.begin(), r.eig_re.begin() + static_cast<long>(kc));

  const MatchResult match = match_eigenvectors(ref.vectors, vectors);
  const DenseMatrix<double> matched_vectors = apply_match(vectors, match);
  const std::vector<double> matched_values = apply_match(values, match);
  run.mean_similarity = match.mean_similarity;

  run.eigenvalue_error = eigenvalue_errors(ref.values, matched_values, cfg.nev);
  run.eigenvector_error = eigenvector_errors(ref.vectors, matched_vectors, cfg.nev);
  const bool finite = std::isfinite(run.eigenvalue_error.relative) &&
                      std::isfinite(run.eigenvector_error.relative);
  run.outcome = finite ? RunOutcome::ok : RunOutcome::no_convergence;
  return run;
}

/// Run one format identified at runtime (dispatches to run_format<T>).
[[nodiscard]] FormatRun run_format_dynamic(const TestMatrix& tm, const ReferenceSolution& ref,
                                           const ExperimentConfig& cfg,
                                           const std::vector<double>& start, FormatId id);

/// Evaluate one matrix across a format list (reference solve + all formats,
/// sequentially on the calling thread). Deprecated shim: build a one-matrix
/// sweep with mfla::api::Sweep instead (docs/API.md has the migration table).
MFLA_DEPRECATED("use mfla::api::Sweep::over({tm}) (docs/API.md)")
[[nodiscard]] MatrixResult run_matrix(const TestMatrix& tm, const std::vector<FormatId>& formats,
                                      const ExperimentConfig& cfg);

/// Progress snapshot handed to ScheduleOptions::on_progress after every
/// completed format run (and after a reference failure retires a matrix).
struct ExperimentProgress {
  std::size_t done = 0;     // format runs completed (or retired) so far
  std::size_t total = 0;    // format runs this invocation has to produce
  double elapsed_seconds = 0.0;
};

class ReferenceCache;  // core/reference_cache.hpp

/// Aggregate counters for one run_experiment invocation, written before it
/// returns when ScheduleOptions::stats is set. The reference counters are
/// what the cache tests and bench_reference_cache observe: a fully warm
/// sweep executes zero float128 solves.
struct SweepStats {
  std::size_t reference_solves = 0;   // reference solves executed (any tier)
  double reference_seconds = 0.0;     // wall-clock summed over those solves
  std::size_t reference_cache_hits = 0;
  double reference_cache_seconds = 0.0;  // wall-clock spent serving cache hits
  double format_seconds = 0.0;        // wall-clock summed over format runs
  // Reference-tier breakdown (core/reference_tier.hpp). Under f128_only
  // the dd counters stay zero and reference_f128_seconds ==
  // reference_seconds.
  std::size_t reference_dd_solves = 0;     // dd-tier solves attempted
  std::size_t reference_dd_certified = 0;  // dd results accepted by the bound
  std::size_t reference_promotions = 0;    // dd rejections re-solved in f128
  double reference_dd_seconds = 0.0;       // wall-clock of dd solves + certification
  double reference_f128_seconds = 0.0;     // wall-clock of float128 solves
  // Durability telemetry (docs/ROBUSTNESS.md). Journal recovery: what a
  // --resume adopted from (and discarded out of) the checkpoint file.
  std::size_t journal_replayed_runs = 0;      // runs adopted from the journal
  std::size_t journal_replayed_failures = 0;  // reference failures adopted
  std::size_t journal_discarded_lines = 0;    // torn/unknown lines skipped
  std::size_t journal_truncated_bytes = 0;    // torn tail physically removed
  // Solve guard: (matrix, format) runs whose solver aborted (exception)
  // and were recorded as RunOutcome::fault instead of killing the sweep,
  // plus reference solves whose abort was recorded as a reference failure.
  std::size_t solve_faults = 0;
  std::size_t reference_faults = 0;
  // Runs skipped because ScheduleOptions::cancel fired mid-sweep. Nonzero
  // means the returned results are INCOMPLETE (the journal, if any, holds
  // everything that did finish and the sweep is resumable).
  std::size_t canceled_runs = 0;
};

/// What the solve guard caught for one (matrix, format) run or one
/// reference solve, delivered through ScheduleOptions::on_fault.
struct SolveFault {
  /// "format" (a per-format run; `format` is valid) or "reference" (the
  /// shared reference solve; `format` is meaningless).
  const char* stage = "format";
  FormatId format = FormatId::float64;
  std::string what;  // the captured exception message
};

class ThreadPool;  // support/thread_pool.hpp

/// Engine knobs, orthogonal to the numerical ExperimentConfig.
struct ScheduleOptions {
  /// Worker threads; 0 = hardware concurrency. Ignored when `pool` is set.
  std::size_t threads = 0;
  /// Run on this externally owned pool instead of creating one per
  /// invocation. Several concurrent run_experiment calls may share a pool
  /// (the serving daemon's scheduler does); each invocation waits only on
  /// its own tasks. Results stay bit-identical either way.
  ThreadPool* pool = nullptr;
  /// Cooperative cancellation (not owned; may be flipped from a signal
  /// handler or another thread). Once true, tasks not yet started are
  /// skipped and counted in SweepStats::canceled_runs; runs already in
  /// flight finish and are journaled normally, so a canceled checkpointed
  /// sweep is always resumable. The returned results are incomplete when
  /// canceled_runs != 0.
  const std::atomic<bool>* cancel = nullptr;
  /// JSONL journal path; empty disables checkpointing. Requires unique
  /// matrix names in the dataset.
  std::string checkpoint_path;
  /// Reuse runs recorded in checkpoint_path instead of recomputing them.
  /// The journal's meta line must match the current config/formats/dataset
  /// (throws std::runtime_error otherwise). Without this flag an existing
  /// checkpoint file is truncated and the sweep starts from scratch.
  bool resume = false;
  /// Persistent reference-solution cache (not owned); nullptr disables
  /// caching. A matrix whose runs are all journaled is retired before its
  /// prerequisite task is scheduled, so it never touches the cache.
  ReferenceCache* ref_cache = nullptr;
  /// Filled with this invocation's counters when non-null.
  SweepStats* stats = nullptr;
  /// Invoked (serialized) after each completed run; default: silent.
  std::function<void(const ExperimentProgress&)> on_progress;
  /// Invoked (serialized, under the same lock as on_progress and before it)
  /// with every format run completed by THIS invocation — journal-replayed
  /// runs are not re-announced. This is the event stream the api layer's
  /// ResultSink pipeline consumes.
  std::function<void(const TestMatrix&, const FormatRun&, const ExperimentProgress&)> on_run;
  /// Invoked (serialized, like on_run) when a reference solve fails and
  /// retires its matrix; the progress snapshot already counts the retired
  /// format runs as done.
  std::function<void(const TestMatrix&, const std::string& failure, const ExperimentProgress&)>
      on_reference_failure;
  /// Invoked (serialized, like on_run) when the solve guard converts a
  /// solver abort into a structured failure. For stage "format" the
  /// corresponding RunOutcome::fault run is still delivered through on_run
  /// right after; for stage "reference" the matrix retires through
  /// on_reference_failure.
  std::function<void(const TestMatrix&, const SolveFault&)> on_fault;
};

/// Evaluate a whole dataset on the task-parallel engine.
[[nodiscard]] std::vector<MatrixResult> run_experiment(const std::vector<TestMatrix>& dataset,
                                                       const std::vector<FormatId>& formats,
                                                       const ExperimentConfig& cfg,
                                                       const ScheduleOptions& sched);

/// Convenience overload: default engine options (all cores, no checkpoint).
/// Deprecated shim: use mfla::api::Sweep, or pass ScheduleOptions{}.
MFLA_DEPRECATED("use mfla::api::Sweep (docs/API.md)")
[[nodiscard]] std::vector<MatrixResult> run_experiment(const std::vector<TestMatrix>& dataset,
                                                       const std::vector<FormatId>& formats,
                                                       const ExperimentConfig& cfg = {});

}  // namespace mfla
