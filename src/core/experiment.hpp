// The experiment driver (paper §2.2): for each test matrix,
//   1. compute a reference partial Schur decomposition in float128
//      (tolerance 1e-20) for nev + buffer pairs,
//   2. for each format under evaluation: pre-check the dynamic range (∞σ),
//      convert, run partialschur in that format (per-width tolerance),
//      match eigenpairs (Hungarian on |cosine|, buffer = 2, sign fix),
//      and compute relative L2 errors over the first nev pairs,
//   3. classify the outcome (ok / ∞ω / ∞σ).
//
// Matrices are processed in parallel with OpenMP (each matrix is fully
// independent; the RNG streams are derived from matrix names).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "arith/format_registry.hpp"
#include "core/errors.hpp"
#include "core/krylov_schur.hpp"
#include "core/matching.hpp"
#include "datasets/test_matrix.hpp"
#include "sparse/csr.hpp"
#include "support/rng.hpp"

namespace mfla {

struct ExperimentConfig {
  std::size_t nev = 10;    // eigenvalue_count (paper: 10 largest)
  std::size_t buffer = 2;  // eigenvalue_buffer_count (paper: 2)
  Which which = Which::largest_magnitude;
  int max_restarts = 60;           // per-format restart budget
  int reference_max_restarts = 150;
  std::uint64_t seed = 0xa11ce;
};

struct FormatRun {
  FormatId format = FormatId::float64;
  RunOutcome outcome = RunOutcome::no_convergence;
  ErrorPair eigenvalue_error;
  ErrorPair eigenvector_error;
  double mean_similarity = 0.0;
  std::size_t nconverged = 0;
  int restarts = 0;
  std::size_t matvecs = 0;
  std::string failure;
};

struct MatrixResult {
  std::string name;
  std::string klass;
  std::string category;
  std::size_t n = 0;
  std::size_t nnz = 0;
  bool reference_ok = false;
  std::string reference_failure;
  std::vector<FormatRun> runs;
};

struct ReferenceSolution {
  bool ok = false;
  std::string failure;
  std::vector<double> values;     // nev + buffer matched-order eigenvalues
  DenseMatrix<double> vectors;    // n x (nev + buffer)
};

/// Reference solve in float128 with the paper's 1e-20 tolerance.
inline ReferenceSolution compute_reference(const TestMatrix& tm, const ExperimentConfig& cfg,
                                           const std::vector<double>& start) {
  ReferenceSolution ref;
  const CsrMatrix<Quad> aq = tm.matrix.convert<Quad>();
  PartialSchurOptions opts;
  opts.nev = cfg.nev + cfg.buffer;
  opts.which = cfg.which;
  opts.tolerance = 1e-20;
  opts.max_restarts = cfg.reference_max_restarts;
  opts.start_vector = &start;
  const auto r = partialschur<Quad>(aq, opts);
  if (!r.converged) {
    ref.failure = r.failure.empty() ? "reference did not converge" : r.failure;
    return ref;
  }
  const std::size_t k = cfg.nev + cfg.buffer;
  ref.values.assign(r.eig_re.begin(), r.eig_re.begin() + static_cast<long>(k));
  ref.vectors = DenseMatrix<double>(tm.n(), k);
  for (std::size_t j = 0; j < k; ++j)
    for (std::size_t i = 0; i < tm.n(); ++i)
      ref.vectors(i, j) = NumTraits<Quad>::to_double(r.q(i, j));
  ref.ok = true;
  return ref;
}

/// One format evaluation against a prepared reference.
template <typename T>
FormatRun run_format(const TestMatrix& tm, const ReferenceSolution& ref,
                     const ExperimentConfig& cfg, const std::vector<double>& start,
                     FormatId id) {
  FormatRun run;
  run.format = id;

  // ∞σ pre-check: does any entry leave the format's dynamic range?
  if (matrix_exceeds_range<T>(tm.matrix)) {
    run.outcome = RunOutcome::range_exceeded;
    run.failure = "matrix entries exceed dynamic range";
    return run;
  }

  const CsrMatrix<T> at = tm.matrix.convert<T>();
  PartialSchurOptions opts;
  opts.nev = cfg.nev + cfg.buffer;
  opts.which = cfg.which;
  opts.tolerance = NumTraits<T>::default_tolerance();
  opts.max_restarts = cfg.max_restarts;
  opts.start_vector = &start;
  opts.seed = fnv1a(tm.name) ^ 0x517e;
  const auto r = partialschur<T>(at, opts);
  run.restarts = r.restarts;
  run.matvecs = r.matvecs;
  run.nconverged = r.nconverged;
  if (!r.converged) {
    run.outcome = RunOutcome::no_convergence;
    run.failure = r.failure;
    return run;
  }

  // Convert results to double for matching/metrics (postprocessing step;
  // not part of the arithmetic under study).
  const std::size_t k = cfg.nev + cfg.buffer;
  const std::size_t kc = std::min(k, r.q.cols());
  DenseMatrix<double> vectors(tm.n(), kc);
  for (std::size_t j = 0; j < kc; ++j)
    for (std::size_t i = 0; i < tm.n(); ++i)
      vectors(i, j) = NumTraits<T>::to_double(r.q(i, j));
  std::vector<double> values(r.eig_re.begin(), r.eig_re.begin() + static_cast<long>(kc));

  const MatchResult match = match_eigenvectors(ref.vectors, vectors);
  const DenseMatrix<double> matched_vectors = apply_match(vectors, match);
  const std::vector<double> matched_values = apply_match(values, match);
  run.mean_similarity = match.mean_similarity;

  run.eigenvalue_error = eigenvalue_errors(ref.values, matched_values, cfg.nev);
  run.eigenvector_error = eigenvector_errors(ref.vectors, matched_vectors, cfg.nev);
  const bool finite = std::isfinite(run.eigenvalue_error.relative) &&
                      std::isfinite(run.eigenvector_error.relative);
  run.outcome = finite ? RunOutcome::ok : RunOutcome::no_convergence;
  return run;
}

/// Evaluate one matrix across a format list.
inline MatrixResult run_matrix(const TestMatrix& tm, const std::vector<FormatId>& formats,
                               const ExperimentConfig& cfg) {
  MatrixResult res;
  res.name = tm.name;
  res.klass = tm.klass;
  res.category = tm.category;
  res.n = tm.n();
  res.nnz = tm.nnz();

  Rng rng(tm.name, cfg.seed);
  const std::vector<double> start = rng.unit_vector(tm.n());

  const ReferenceSolution ref = compute_reference(tm, cfg, start);
  res.reference_ok = ref.ok;
  res.reference_failure = ref.failure;
  if (!ref.ok) return res;

  res.runs.reserve(formats.size());
  for (const FormatId id : formats) {
    res.runs.push_back(dispatch_format(id, [&](auto tag) {
      using T = typename decltype(tag)::type;
      return run_format<T>(tm, ref, cfg, start, id);
    }));
  }
  return res;
}

/// Evaluate a whole dataset (OpenMP-parallel across matrices).
inline std::vector<MatrixResult> run_experiment(const std::vector<TestMatrix>& dataset,
                                                const std::vector<FormatId>& formats,
                                                const ExperimentConfig& cfg = {}) {
  std::vector<MatrixResult> results(dataset.size());
#pragma omp parallel for schedule(dynamic)
  for (std::size_t i = 0; i < dataset.size(); ++i) {  // NOLINT(modernize-loop-convert)
    results[i] = run_matrix(dataset[i], formats, cfg);
  }
  return results;
}

}  // namespace mfla
