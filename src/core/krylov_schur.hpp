// partialschur(): the implicitly restarted Arnoldi method with Krylov–Schur
// restarts, modeled on ArnoldiMethod.jl (the solver the paper uses).
//
// Maintains the Krylov decomposition
//     A V_k = V_k S_k + v_k b_k^T
// with V orthonormal. Each cycle expands the basis to maxdim with Arnoldi
// steps, reduces the Rayleigh matrix (Schur + spike + Hessenberg extension)
// back to Hessenberg form, computes its real Schur form (Francis QR),
// reorders the wanted Ritz values to the front, locks converged pairs and
// truncates. Works for general real matrices; for symmetric inputs the
// Schur form is diagonal and the Schur vectors are the eigenvectors
// (paper §2.2).
#pragma once

#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "core/arnoldi.hpp"
#include "kernels/vector_ops.hpp"
#include "dense/hessenberg.hpp"
#include "dense/schur.hpp"
#include "dense/schur_reorder.hpp"

namespace mfla {

enum class Which {
  largest_magnitude,
  smallest_magnitude,
  largest_real,
  smallest_real,
};

struct PartialSchurOptions {
  std::size_t nev = 10;
  Which which = Which::largest_magnitude;
  double tolerance = 0.0;    // 0: use NumTraits<T>::default_tolerance()
  std::size_t mindim = 0;    // 0: max(10, nev)
  std::size_t maxdim = 0;    // 0: max(20, 2*nev)
  int max_restarts = 100;
  std::uint64_t seed = 0x1234u;
  /// Optional shared start vector (unit 2-norm, in double); the experiment
  /// driver passes the same vector to every format for comparability.
  const std::vector<double>* start_vector = nullptr;
  /// Householder reflector formulation in the restart QR (ablation A4).
  ReflectorStyle reflector_style = ReflectorStyle::lapack;
};

template <typename T>
struct PartialSchurResult {
  bool converged = false;       // nev pairs converged
  std::size_t nconverged = 0;   // converged leading pairs
  int restarts = 0;
  std::size_t matvecs = 0;
  std::string failure;          // non-empty on hard failure
  DenseMatrix<T> q;             // n x k Schur vectors (k >= nev on success)
  DenseMatrix<T> r;             // k x k quasi-triangular Rayleigh block
  std::vector<double> eig_re;   // eigenvalues from r, in diagonal order
  std::vector<double> eig_im;
};

/// All restart-loop scratch of one partialschur/lanczos_eigs solve. Sized
/// on first use and recycled across restarts, so the steady-state cycle
/// (expand -> reduce -> reorder -> truncate) reuses one set of buffers
/// instead of reallocating the Rayleigh/accumulator matrices, the spike,
/// the reflector scratch and the basis-update scratch every restart.
template <typename T>
struct KrylovSchurWorkspace {
  ArnoldiWorkspace<T> arnoldi;     // inner-loop scratch (allocation-free steps)
  DenseMatrix<T> t;                // m x m Rayleigh matrix -> Schur form
  DenseMatrix<T> q;                // m x m orthogonal accumulator
  HessenbergScratch<T> hessenberg; // reflector scratch of the re-reduction
  std::vector<T> basis_scratch;    // n x keep accumulator of update_basis
  std::vector<double> spike;       // residual couplings b^T q
};

namespace detail {

[[nodiscard]] inline bool prefer_eig(Which which, double are, double aim, double bre,
                                     double bim) noexcept {
  switch (which) {
    case Which::largest_magnitude: return std::hypot(are, aim) > std::hypot(bre, bim);
    case Which::smallest_magnitude: return std::hypot(are, aim) < std::hypot(bre, bim);
    case Which::largest_real: return are > bre;
    case Which::smallest_real: return are < bre;
  }
  return false;
}

}  // namespace detail

template <typename T, class Op>
PartialSchurResult<T> partialschur(const Op& a, const PartialSchurOptions& opts = {}) {
  const std::size_t n = a.rows();
  PartialSchurResult<T> out;

  const std::size_t nev = opts.nev;
  if (nev == 0 || n < 2) {
    out.failure = "matrix too small";
    return out;
  }
  std::size_t mindim = opts.mindim != 0 ? opts.mindim : std::max<std::size_t>(10, nev);
  std::size_t maxdim = opts.maxdim != 0 ? opts.maxdim : std::max<std::size_t>(20, 2 * nev);
  // The decomposition keeps maxdim+1 basis vectors; cap at n-1 so the
  // residual direction always exists (full-space runs deflate via beta=0).
  maxdim = std::min(maxdim, n - 1);
  mindim = std::min(mindim, maxdim >= 2 ? maxdim - 2 : 1);
  mindim = std::max<std::size_t>(mindim, 1);
  if (nev > maxdim) {
    out.failure = "nev exceeds subspace dimension";
    return out;
  }
  const double tol = opts.tolerance > 0 ? opts.tolerance : NumTraits<T>::default_tolerance();

  Rng rng(opts.seed);

  DenseMatrix<T> v(n, maxdim + 1);
  DenseMatrix<T> s(maxdim + 1, maxdim);

  // Start vector (unit, shared across formats when provided).
  {
    std::vector<double> v0;
    if (opts.start_vector != nullptr && opts.start_vector->size() == n) {
      v0 = *opts.start_vector;
    } else {
      v0 = rng.unit_vector(n);
    }
    for (std::size_t i = 0; i < n; ++i) v(i, 0) = NumTraits<T>::from_double(v0[i]);
    // Normalize in T (conversion perturbs the double-unit norm).
    const T nrm = kernels::nrm2(n, v.col(0));
    if (!is_number(nrm) || NumTraits<T>::to_double(nrm) == 0.0) {
      out.failure = "start vector collapsed in format";
      return out;
    }
    const T inv = T(1) / nrm;
    kernels::scal(n, inv, v.col(0));
  }

  KrylovSchurWorkspace<T> ws;
  ws.arnoldi.reserve(n, maxdim);

  std::size_t k = 0;  // active decomposition size
  for (int restart = 0; restart <= opts.max_restarts; ++restart) {
    out.restarts = restart;

    // ---- Expansion: k -> m ------------------------------------------------
    const std::size_t m = maxdim;
    for (std::size_t j = k; j < m; ++j) {
      const ExpandStatus es = arnoldi_step(a, v, s, j, rng, ws.arnoldi);
      ++out.matvecs;
      if (es == ExpandStatus::failed) {
        out.failure = "non-finite values during Arnoldi expansion";
        return out;
      }
    }
    const T beta = s(m, m - 1);

    // ---- Rayleigh matrix -> Hessenberg -> real Schur ----------------------
    // t/q are workspace matrices, fully overwritten here each restart.
    DenseMatrix<T>& t = ws.t;
    DenseMatrix<T>& q = ws.q;
    t.resize(m, m);
    for (std::size_t j = 0; j < m; ++j)
      for (std::size_t i = 0; i < m; ++i) t(i, j) = s(i, j);
    q.set_identity(m);
    if (!hessenberg_reduce(t, q, ws.hessenberg)) {
      out.failure = "non-finite values in Hessenberg reduction";
      return out;
    }
    const SchurStatus sst = hessenberg_to_schur(t, q, 40, opts.reflector_style);
    if (!sst.ok) {
      out.failure = "Schur iteration failed to converge";
      return out;
    }

    // ---- Reorder wanted Ritz values to the front --------------------------
    const Which which = opts.which;
    reorder_schur<T>(t, q, [which](const SchurBlock& x, const SchurBlock& y) {
      return detail::prefer_eig(which, x.re, x.im, y.re, y.im);
    });

    // ---- Spike and convergence --------------------------------------------
    std::vector<double>& spike = ws.spike;
    spike.assign(m, 0.0);
    for (std::size_t i = 0; i < m; ++i) {
      spike[i] = NumTraits<T>::to_double(beta) * NumTraits<T>::to_double(q(m - 1, i));
    }
    const auto blocks = schur_blocks(t);
    std::size_t nconv = 0;     // converged leading columns
    for (const auto& blk : blocks) {
      double res = 0.0;
      for (int c = 0; c < blk.size; ++c) {
        const double e = spike[blk.start + static_cast<std::size_t>(c)];
        res += e * e;
      }
      res = std::sqrt(res);
      const double mag = std::hypot(blk.re, blk.im);
      if (!(res <= tol * mag)) break;  // also stops on NaN residuals
      nconv += static_cast<std::size_t>(blk.size);
    }
    out.nconverged = std::min(nconv, nev);

    const bool done = nconv >= nev || restart == opts.max_restarts;
    if (done) {
      // Keep nev columns, extended by one if that would split a 2x2 block.
      std::size_t keep = std::min(nev, m);
      if (keep < m && t(keep, keep - 1) != T(0)) ++keep;
      kernels::update_basis(v, q, m, keep, ws.basis_scratch);
      out.q = v.top_left(n, keep);
      out.r = t.top_left(keep, keep);
      std::vector<T> re, im;
      schur_eigenvalues(out.r, re, im);
      out.eig_re.resize(keep);
      out.eig_im.resize(keep);
      for (std::size_t i = 0; i < keep; ++i) {
        out.eig_re[i] = NumTraits<T>::to_double(re[i]);
        out.eig_im[i] = NumTraits<T>::to_double(im[i]);
      }
      out.converged = nconv >= nev;
      if (!out.converged) out.failure = "no convergence within restart budget";
      return out;
    }

    // ---- Truncate (thick restart) ------------------------------------------
    std::size_t keep = mindim + std::min(nconv, (maxdim - mindim) / 2);
    keep = std::min(keep, m - 1);
    if (keep < m && t(keep, keep - 1) != T(0)) ++keep;  // do not split a pair
    keep = std::min(keep, m - 1);

    kernels::update_basis(v, q, m, keep, ws.basis_scratch);
    // Residual vector v_m becomes the new v_k.
    {
      T* dst = v.col(keep);
      const T* src = v.col(m);
      for (std::size_t i = 0; i < n; ++i) dst[i] = src[i];
    }
    s.fill(T(0));
    for (std::size_t j = 0; j < keep; ++j)
      for (std::size_t i = 0; i < keep; ++i) s(i, j) = t(i, j);
    for (std::size_t i = 0; i < keep; ++i) {
      // Lock converged leading pairs: their couplings are annihilated.
      const double val = (i < nconv) ? 0.0 : spike[i];
      s(keep, i) = NumTraits<T>::from_double(val);
    }
    k = keep;
  }
  out.failure = "restart loop left unexpectedly";
  return out;
}

}  // namespace mfla
