// Hungarian (Kuhn–Munkres) algorithm, O(n^3) shortest-augmenting-path
// formulation. The paper uses it (via Hungarian.jl) to find the optimal
// permutation matching computed eigenvectors to reference eigenvectors
// under the negative absolute cosine similarity cost.
#pragma once

#include <vector>

#include "dense/matrix.hpp"

namespace mfla {

/// Minimum-cost assignment of rows to columns of a square (or wide,
/// rows <= cols) cost matrix. Returns, for each row, the assigned column.
[[nodiscard]] std::vector<int> hungarian_assignment(const DenseMatrix<double>& cost);

/// Total cost of an assignment.
[[nodiscard]] double assignment_cost(const DenseMatrix<double>& cost,
                                     const std::vector<int>& assignment);

}  // namespace mfla
