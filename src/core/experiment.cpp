// Task-parallel experiment engine.
//
// Work is decomposed at (matrix, format) granularity onto a work-stealing
// thread pool: each matrix contributes one prerequisite task (the float128
// reference solve) which, on success, fans out one task per format sharing
// the cached reference and start vector. Compared with the former
// one-OpenMP-loop-over-matrices design, a single slow reference solve or a
// skewed corpus no longer serializes the tail: format runs of one matrix
// proceed while another matrix's reference is still being solved.
//
// Determinism: every run depends only on (matrix, config). The start vector
// comes from an RNG stream seeded by the matrix name, results are written
// into preallocated (matrix, format) slots, and the output ordering is the
// dataset/format-list ordering — so results are bit-identical for any
// thread count and any scheduling interleaving.
//
// Durability: with a checkpoint path set, every completed run is appended
// to a JSONL journal (core/results_io.hpp) and flushed; on --resume the
// journal is replayed and only missing runs are scheduled. A matrix whose
// runs are all journaled does not even recompute its reference.
#include "core/experiment.hpp"

#include <atomic>
#include <chrono>
#include <cstring>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "arith/quad.hpp"
#include "core/reference_cache.hpp"
#include "core/results_io.hpp"
#include "support/failpoint.hpp"
#include "support/thread_pool.hpp"

namespace mfla {

ReferenceSolution compute_reference(const TestMatrix& tm, const ExperimentConfig& cfg,
                                    const std::vector<double>& start) {
  ReferenceSolution ref;
  const CsrMatrix<Quad> aq = tm.matrix.convert<Quad>();
  PartialSchurOptions opts;
  opts.nev = cfg.nev + cfg.buffer;
  opts.which = cfg.which;
  opts.tolerance = kReferenceTolerance;
  opts.max_restarts = cfg.reference_max_restarts;
  opts.start_vector = &start;
  const auto r = partialschur<Quad>(aq, opts);
  if (!r.converged) {
    ref.failure = r.failure.empty() ? "reference did not converge" : r.failure;
    return ref;
  }
  const std::size_t k = cfg.nev + cfg.buffer;
  ref.values.assign(r.eig_re.begin(), r.eig_re.begin() + static_cast<long>(k));
  ref.vectors = DenseMatrix<double>(tm.n(), k);
  for (std::size_t j = 0; j < k; ++j)
    for (std::size_t i = 0; i < tm.n(); ++i)
      ref.vectors(i, j) = NumTraits<Quad>::to_double(r.q(i, j));
  ref.ok = true;
  return ref;
}

FormatRun run_format_dynamic(const TestMatrix& tm, const ReferenceSolution& ref,
                             const ExperimentConfig& cfg, const std::vector<double>& start,
                             FormatId id) {
  const auto t0 = std::chrono::steady_clock::now();
  FormatRun run = dispatch_format(id, [&](auto tag) {
    using T = typename decltype(tag)::type;
    return run_format<T>(tm, ref, cfg, start, id);
  });
  run.duration_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return run;
}

MatrixResult run_matrix(const TestMatrix& tm, const std::vector<FormatId>& formats,
                        const ExperimentConfig& cfg) {
  MatrixResult res;
  res.name = tm.name;
  res.klass = tm.klass;
  res.category = tm.category;
  res.n = tm.n();
  res.nnz = tm.nnz();

  Rng rng(tm.name, cfg.seed);
  const std::vector<double> start = rng.unit_vector(tm.n());

  const ReferenceSolution ref = compute_reference_tiered(tm, cfg, start).solution;
  res.reference_ok = ref.ok;
  res.reference_failure = ref.failure;
  if (!ref.ok) return res;

  res.runs.reserve(formats.size());
  for (const FormatId id : formats) {
    res.runs.push_back(run_format_dynamic(tm, ref, cfg, start, id));
  }
  return res;
}

namespace {

/// Mutable per-sweep state shared by the scheduled tasks.
struct EngineState {
  // slots[i][j] is written by at most one task. done[i][j] marks slots
  // filled from the journal during resume (consumed before scheduling).
  std::vector<std::vector<FormatRun>> slots;
  std::vector<std::vector<char>> done;
  std::vector<char> ref_failed;
  std::vector<std::string> ref_failures;

  std::unique_ptr<JournalWriter> journal;

  std::atomic<std::size_t> completed{0};
  std::size_t total = 0;
  std::chrono::steady_clock::time_point t0;
  std::mutex progress_mtx;

  // Sweep counters (low write rate: once per reference / format run).
  SweepStats sweep;
  std::mutex stats_mtx;

  void count_reference(bool cache_hit, double seconds, const ReferenceTierTelemetry* tier) {
    std::lock_guard<std::mutex> lk(stats_mtx);
    if (cache_hit) {
      ++sweep.reference_cache_hits;
      sweep.reference_cache_seconds += seconds;
    } else {
      ++sweep.reference_solves;
      sweep.reference_seconds += seconds;
      if (tier != nullptr) {
        if (tier->dd_attempted) {
          ++sweep.reference_dd_solves;
          sweep.reference_dd_seconds += tier->dd_seconds;
          if (tier->dd_certified) ++sweep.reference_dd_certified;
          if (tier->promoted) ++sweep.reference_promotions;
        }
        sweep.reference_f128_seconds += tier->f128_seconds;
      }
    }
  }

  void count_format(double seconds) {
    std::lock_guard<std::mutex> lk(stats_mtx);
    sweep.format_seconds += seconds;
  }

  void count_solve_fault(bool reference) {
    std::lock_guard<std::mutex> lk(stats_mtx);
    if (reference)
      ++sweep.reference_faults;
    else
      ++sweep.solve_faults;
  }

  void count_canceled(std::size_t runs) {
    std::lock_guard<std::mutex> lk(stats_mtx);
    sweep.canceled_runs += runs;
  }

  /// Serialized (under the same lock as on_run/on_progress) so sinks see
  /// fault events interleaved consistently with the run stream.
  void notify_fault(const ScheduleOptions& sched, const TestMatrix& tm, const SolveFault& f) {
    if (!sched.on_fault) return;
    std::lock_guard<std::mutex> lk(progress_mtx);
    sched.on_fault(tm, f);
  }

  /// Increment the done count by `add` and, with any observer installed,
  /// snapshot the progress under the lock so callbacks see a monotonically
  /// increasing done count and are serialized with each other.
  ExperimentProgress advance(std::size_t add) {
    ExperimentProgress p;
    p.done = completed.fetch_add(add, std::memory_order_relaxed) + add;
    p.total = total;
    p.elapsed_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    return p;
  }

  void complete_run(const ScheduleOptions& sched, const TestMatrix& tm, const FormatRun& run) {
    if (!sched.on_progress && !sched.on_run) {
      completed.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    std::lock_guard<std::mutex> lk(progress_mtx);
    const ExperimentProgress p = advance(1);
    if (sched.on_run) sched.on_run(tm, run, p);
    if (sched.on_progress) sched.on_progress(p);
  }

  void complete_reference_failure(const ScheduleOptions& sched, const TestMatrix& tm,
                                  const std::string& failure, std::size_t retired) {
    if (!sched.on_progress && !sched.on_reference_failure) {
      completed.fetch_add(retired, std::memory_order_relaxed);
      return;
    }
    std::lock_guard<std::mutex> lk(progress_mtx);
    const ExperimentProgress p = advance(retired);
    if (sched.on_reference_failure) sched.on_reference_failure(tm, failure, p);
    if (sched.on_progress) sched.on_progress(p);
  }
};

std::string meta_mismatch_message(const JournalMeta& found, const JournalMeta& expected) {
  std::string msg =
      "checkpoint journal was written by a different sweep "
      "(nev/buffer/restarts/seed/formats/corpus size differ); ";
  msg += "expected formats [" + expected.formats + "] over " +
         std::to_string(expected.matrix_count) + " matrices, found [" + found.formats +
         "] over " + std::to_string(found.matrix_count) +
         " — rerun without --resume to start over";
  return msg;
}

}  // namespace

std::vector<MatrixResult> run_experiment(const std::vector<TestMatrix>& dataset,
                                         const std::vector<FormatId>& formats,
                                         const ExperimentConfig& cfg,
                                         const ScheduleOptions& sched) {
  const std::size_t nm = dataset.size();
  const std::size_t nf = formats.size();

  EngineState st;
  st.slots.assign(nm, std::vector<FormatRun>(nf));
  st.done.assign(nm, std::vector<char>(nf, 0));
  st.ref_failed.assign(nm, 0);
  st.ref_failures.resize(nm);

  std::map<std::string, std::size_t> matrix_index;
  const bool checkpointing = !sched.checkpoint_path.empty();
  if (checkpointing) {
    for (std::size_t i = 0; i < nm; ++i) {
      if (!matrix_index.emplace(dataset[i].name, i).second)
        throw std::runtime_error("checkpointing requires unique matrix names; duplicate '" +
                                 dataset[i].name + "'");
    }
    std::map<FormatId, std::size_t> format_index;
    for (std::size_t j = 0; j < nf; ++j) format_index.emplace(formats[j], j);

    const JournalMeta meta = make_journal_meta(cfg, formats, nm);
    bool journal_has_meta = false;
    if (sched.resume) {
      const JournalContents jc = read_journal(sched.checkpoint_path);
      if (jc.has_meta && !(jc.meta == meta))
        throw std::runtime_error(meta_mismatch_message(jc.meta, meta));
      journal_has_meta = jc.has_meta;
      st.sweep.journal_discarded_lines = jc.skipped_lines;
      // Entries whose matrix name is unknown, or whose recorded dimensions
      // no longer match the dataset (the matrix changed on disk since the
      // journal was written), are ignored: those runs recompute.
      for (const auto& [name, rf] : jc.reference_failures) {
        const auto it = matrix_index.find(name);
        if (it == matrix_index.end()) continue;
        const TestMatrix& tm = dataset[it->second];
        if (rf.n != tm.n() || rf.nnz != tm.nnz()) continue;
        st.ref_failed[it->second] = 1;
        st.ref_failures[it->second] = rf.failure;
        ++st.sweep.journal_replayed_failures;
      }
      for (const auto& [key, jr] : jc.runs) {
        const auto mi = matrix_index.find(key.first);
        const auto fi = format_index.find(key.second);
        if (mi == matrix_index.end() || fi == format_index.end()) continue;
        const TestMatrix& tm = dataset[mi->second];
        if (jr.n != tm.n() || jr.nnz != tm.nnz()) continue;
        st.slots[mi->second][fi->second] = jr.run;
        st.done[mi->second][fi->second] = 1;
        ++st.sweep.journal_replayed_runs;
      }
    }
    st.journal = std::make_unique<JournalWriter>(sched.checkpoint_path, /*truncate=*/!sched.resume);
    st.sweep.journal_truncated_bytes =
        static_cast<std::size_t>(st.journal->truncated_bytes());
    // Also (re)write the meta when resuming a journal whose meta line was
    // torn by a crash during the very first write — otherwise the journal
    // would never regain one and later resumes would skip validation.
    if (!sched.resume || !journal_has_meta) st.journal->write_meta(meta);
  }

  // Pending work per matrix: format indices still to run. A matrix with a
  // journaled reference failure or with every format journaled needs no
  // reference solve at all.
  std::vector<std::vector<std::size_t>> pending(nm);
  for (std::size_t i = 0; i < nm; ++i) {
    if (st.ref_failed[i]) continue;
    for (std::size_t j = 0; j < nf; ++j) {
      if (!st.done[i][j]) pending[i].push_back(j);
    }
    st.total += pending[i].size();
  }
  st.t0 = std::chrono::steady_clock::now();

  // Cooperative cancellation: checked before work starts, never mid-solve.
  const auto canceled = [&sched] {
    return sched.cancel != nullptr && sched.cancel->load(std::memory_order_relaxed);
  };

  if (st.total > 0) {
    // Run either on a pool of our own or on a caller-shared one; in both
    // cases the TaskGroup scopes waiting (and error propagation) to this
    // invocation's tasks only.
    std::unique_ptr<ThreadPool> own_pool;
    if (sched.pool == nullptr) own_pool = std::make_unique<ThreadPool>(sched.threads);
    TaskGroup group(sched.pool != nullptr ? *sched.pool : *own_pool);
    for (std::size_t i = 0; i < nm; ++i) {
      if (pending[i].empty()) continue;
      group.submit([&group, &canceled, &st, &dataset, &formats, &cfg, &sched, &pending, i] {
        const TestMatrix& tm = dataset[i];
        if (canceled()) {
          st.count_canceled(pending[i].size());
          return;
        }
        Rng rng(tm.name, cfg.seed);
        auto start = std::make_shared<const std::vector<double>>(rng.unit_vector(tm.n()));
        // Prerequisite: the tiered reference solve — served from the
        // persistent cache when one is attached and holds a valid entry for
        // this exact (matrix bits, config incl. tier, start vector),
        // recomputed (and re-stored) otherwise. Cached solutions are
        // bit-identical to fresh ones, so every downstream format run is
        // byte-identical either way. The solution is published const: it is
        // shared read-only across every format-run task of this matrix.
        std::shared_ptr<const ReferenceSolution> ref;
        {
          auto fresh = std::make_shared<ReferenceSolution>();
          bool cache_hit = false;
          Hash128 key;
          ReferenceTierTelemetry tier;
          const auto rt0 = std::chrono::steady_clock::now();
          if (sched.ref_cache != nullptr) {
            key = reference_cache_key(tm.matrix, cfg, *start);
            cache_hit = sched.ref_cache->load(key, *fresh);
          }
          if (!cache_hit) {
            // Solve guard: a reference solve that *aborts* (exception —
            // breakdown, bad_alloc, injected fault) retires its matrix as a
            // recorded reference failure instead of killing the sweep.
            // Unlike genuine non-convergence the aborted result is NOT
            // cached: the abort may be transient (memory pressure, a fault
            // injection) and must not poison warm reruns.
            try {
              if (int err = MFLA_FAILPOINT("engine.reference"); err != 0)
                throw std::runtime_error(std::string("injected reference error: ") +
                                         std::strerror(err));
              TieredReference tr = compute_reference_tiered(tm, cfg, *start);
              *fresh = std::move(tr.solution);
              tier = std::move(tr.tier);
              if (sched.ref_cache != nullptr) sched.ref_cache->store(key, *fresh);
            } catch (const std::exception& e) {
              *fresh = ReferenceSolution{};
              fresh->failure = std::string("reference solve aborted: ") + e.what();
              st.count_solve_fault(/*reference=*/true);
              SolveFault fault;
              fault.stage = "reference";
              fault.what = e.what();
              st.notify_fault(sched, tm, fault);
            }
          }
          const double seconds =
              std::chrono::duration<double>(std::chrono::steady_clock::now() - rt0).count();
          st.count_reference(cache_hit, seconds, cache_hit ? nullptr : &tier);
          ref = std::move(fresh);
        }
        if (!ref->ok) {
          st.ref_failed[i] = 1;
          st.ref_failures[i] = ref->failure;
          if (st.journal)
            st.journal->write_reference_failure(tm.name, tm.n(), tm.nnz(), ref->failure);
          st.complete_reference_failure(sched, tm, ref->failure, pending[i].size());
          return;
        }
        for (const std::size_t j : pending[i]) {
          group.submit([&canceled, &st, &dataset, &formats, &cfg, &sched, start, ref, i, j] {
            const TestMatrix& tmj = dataset[i];
            if (canceled()) {
              st.count_canceled(1);
              return;
            }
            // Solve guard: a format run that aborts (NaN/Inf-driven solver
            // exception, bad_alloc, injected fault) becomes a journaled
            // RunOutcome::fault row — one lost data point, not a lost sweep.
            const auto ft0 = std::chrono::steady_clock::now();
            FormatRun run;
            try {
              if (int err = MFLA_FAILPOINT("engine.format_run"); err != 0)
                throw std::runtime_error(std::string("injected format-run error: ") +
                                         std::strerror(err));
              run = run_format_dynamic(tmj, *ref, cfg, *start, formats[j]);
            } catch (const std::exception& e) {
              run = FormatRun{};
              run.format = formats[j];
              run.outcome = RunOutcome::fault;
              run.failure = std::string("solve aborted: ") + e.what();
              run.duration_seconds =
                  std::chrono::duration<double>(std::chrono::steady_clock::now() - ft0)
                      .count();
              st.count_solve_fault(/*reference=*/false);
              SolveFault fault;
              fault.format = formats[j];
              fault.what = e.what();
              st.notify_fault(sched, tmj, fault);
            }
            st.slots[i][j] = std::move(run);
            st.count_format(st.slots[i][j].duration_seconds);
            if (st.journal) st.journal->write_run(tmj.name, tmj.n(), tmj.nnz(), st.slots[i][j]);
            st.complete_run(sched, tmj, st.slots[i][j]);
          });
        }
      });
    }
    group.wait();  // rethrows the first task exception of THIS sweep, if any
  }
  if (sched.stats != nullptr) *sched.stats = st.sweep;

  // Assemble in dataset/format order, independent of completion order.
  std::vector<MatrixResult> results(nm);
  for (std::size_t i = 0; i < nm; ++i) {
    MatrixResult& res = results[i];
    res.name = dataset[i].name;
    res.klass = dataset[i].klass;
    res.category = dataset[i].category;
    res.n = dataset[i].n();
    res.nnz = dataset[i].nnz();
    if (st.ref_failed[i]) {
      res.reference_ok = false;
      res.reference_failure = st.ref_failures[i];
      continue;
    }
    res.reference_ok = true;
    res.runs = std::move(st.slots[i]);
  }
  return results;
}

std::vector<MatrixResult> run_experiment(const std::vector<TestMatrix>& dataset,
                                         const std::vector<FormatId>& formats,
                                         const ExperimentConfig& cfg) {
  return run_experiment(dataset, formats, cfg, ScheduleOptions{});
}

}  // namespace mfla
