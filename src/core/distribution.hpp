// Cumulative error distributions (paper §3): per (format, metric), the
// sorted log10 relative errors plus the ∞ω / ∞σ failure tallies that the
// figures mark beyond the top of each panel.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "arith/format_registry.hpp"
#include "core/experiment.hpp"

namespace mfla {

struct Distribution {
  FormatId format = FormatId::float64;
  std::string format_name;
  std::string metric;  // "eigenvalue" | "eigenvector"
  std::vector<double> sorted_log10;  // finite errors, ascending
  std::size_t n_total = 0;  // matrices with a valid reference
  std::size_t n_omega = 0;  // ∞ω: no convergence
  std::size_t n_sigma = 0;  // ∞σ: dynamic range exceeded

  [[nodiscard]] std::size_t n_finite() const { return sorted_log10.size(); }

  /// Percentile over the *full* population (failures count as +inf); NaN if
  /// the percentile falls into the failure tail.
  [[nodiscard]] double percentile(double p) const {
    if (n_total == 0) return std::nan("");
    const auto idx = static_cast<std::size_t>(p / 100.0 * static_cast<double>(n_total - 1) + 0.5);
    if (idx >= sorted_log10.size()) return std::nan("");
    return sorted_log10[idx];
  }
  [[nodiscard]] double median() const { return percentile(50.0); }
  [[nodiscard]] double failure_fraction() const {
    return n_total == 0 ? 0.0
                        : static_cast<double>(n_omega + n_sigma) / static_cast<double>(n_total);
  }
};

/// Clamp used for log10(0) (exact zeros plot at the paper's bottom edge).
inline constexpr double kLogFloor = -40.0;

[[nodiscard]] inline Distribution build_distribution(const std::vector<MatrixResult>& results,
                                                     FormatId format, bool eigenvectors) {
  Distribution d;
  d.format = format;
  d.format_name = format_info(format).name;
  d.metric = eigenvectors ? "eigenvector" : "eigenvalue";
  for (const auto& mr : results) {
    if (!mr.reference_ok) continue;
    for (const auto& run : mr.runs) {
      if (run.format != format) continue;
      ++d.n_total;
      switch (run.outcome) {
        case RunOutcome::range_exceeded:
          ++d.n_sigma;
          break;
        case RunOutcome::no_convergence:
        case RunOutcome::fault:  // solve-guard abort: no result, ∞ω tail
          ++d.n_omega;
          break;
        case RunOutcome::ok: {
          const double rel = eigenvectors ? run.eigenvector_error.relative
                                          : run.eigenvalue_error.relative;
          if (!std::isfinite(rel)) {
            ++d.n_omega;
          } else {
            const double lg = rel > 0 ? std::log10(rel) : kLogFloor;
            d.sorted_log10.push_back(std::max(lg, kLogFloor));
          }
          break;
        }
      }
    }
  }
  std::sort(d.sorted_log10.begin(), d.sorted_log10.end());
  return d;
}

/// All distributions for a width panel (paper figure row): the formats at
/// `bits`, eigenvalues and eigenvectors.
struct PanelDistributions {
  int bits = 0;
  std::vector<Distribution> eigenvalues;
  std::vector<Distribution> eigenvectors;
};

[[nodiscard]] inline PanelDistributions build_panel(const std::vector<MatrixResult>& results,
                                                    int bits) {
  PanelDistributions p;
  p.bits = bits;
  for (const auto& f : formats_for_width(bits)) {
    p.eigenvalues.push_back(build_distribution(results, f.id, false));
    p.eigenvectors.push_back(build_distribution(results, f.id, true));
  }
  return p;
}

}  // namespace mfla
