#include "core/reference_cache.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <stdexcept>
#include <thread>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>
#define MFLA_HAVE_FLOCK 1
#else
#define MFLA_HAVE_FLOCK 0
#endif

#include "support/failpoint.hpp"

namespace mfla {

namespace {

// Store retry policy: transient I/O errors (NFS rename hiccups, brief
// ENOSPC) get kRetries extra attempts with short sleeps in between; after
// kDegradeAfter *consecutive* abandoned stores the cache stops trying
// altogether (degraded mode) so a full disk costs a few failed writes, not
// one per matrix.
constexpr int kStoreAttempts = 3;
constexpr int kRetryBackoffMs[] = {1, 5};
constexpr std::uint64_t kDegradeAfter = 3;

// Entry layout version. Bump whenever the payload encoding or the key
// derivation changes incompatibly; old entries are then rejected (with a
// warning) and recomputed instead of being misread.
constexpr std::uint32_t kCacheVersion = 1;
constexpr char kMagic[8] = {'M', 'F', 'L', 'A', 'R', 'E', 'F', '\n'};

// ---- little-endian scalar (de)serialization -------------------------------

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out += static_cast<char>((v >> (8 * i)) & 0xff);
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out += static_cast<char>((v >> (8 * i)) & 0xff);
}

void put_f64(std::string& out, double v) { put_u64(out, std::bit_cast<std::uint64_t>(v)); }

/// Bounds-checked little-endian reader over a byte buffer. Any overrun
/// flips `ok` and sticks; callers check once at the end.
struct Reader {
  const unsigned char* p;
  std::size_t size;
  std::size_t pos = 0;
  bool ok = true;

  std::uint32_t u32() noexcept {
    if (pos + 4 > size) {
      ok = false;
      return 0;
    }
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[pos + i]) << (8 * i);
    pos += 4;
    return v;
  }

  std::uint64_t u64() noexcept {
    if (pos + 8 > size) {
      ok = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[pos + i]) << (8 * i);
    pos += 8;
    return v;
  }

  double f64() noexcept { return std::bit_cast<double>(u64()); }

  std::string str(std::size_t len) {
    if (pos + len > size) {
      ok = false;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(p + pos), len);
    pos += len;
    return s;
  }
};

[[nodiscard]] Hash128 payload_checksum(const char* payload, std::size_t size) {
  Hasher h(0x5ca1ab1eu);
  h.bytes(payload, size);
  return h.finish();
}

void warn(const std::string& path, const char* why) {
  std::fprintf(stderr, "warning: reference cache entry '%s' %s; recomputing\n", path.c_str(),
               why);
}

/// RAII advisory inter-process lock on an already-open fd (`<dir>/.lock`).
/// flock also excludes between two DIFFERENT fds for the same file within
/// one process, so two ReferenceCache instances on one directory — one per
/// daemon tenant, say — serialize exactly like two processes do. A -1 fd
/// (lock file uncreatable) degrades to a no-op; the in-process mutex the
/// callers already hold still serializes within this process.
class DirLock {
 public:
  explicit DirLock(int fd) : fd_(fd) {
#if MFLA_HAVE_FLOCK
    if (fd_ >= 0) {
      int rc;
      do {
        rc = ::flock(fd_, LOCK_EX);
      } while (rc != 0 && errno == EINTR);
      locked_ = rc == 0;
    }
#endif
  }
  DirLock(const DirLock&) = delete;
  DirLock& operator=(const DirLock&) = delete;
  ~DirLock() {
#if MFLA_HAVE_FLOCK
    if (locked_) ::flock(fd_, LOCK_UN);
#endif
  }

 private:
  int fd_ = -1;
  bool locked_ = false;
};

}  // namespace

Hash128 reference_cache_key(const CsrMatrix<double>& matrix, const ExperimentConfig& cfg,
                            const std::vector<double>& start) {
  Hasher h;
  h.str("mfla-reference-v1");  // domain separation / key-scheme version
  // Matrix content: dimensions, CSR structure and exact value bits.
  h.u64(matrix.rows()).u64(matrix.cols()).u64(matrix.nnz());
  h.span(matrix.row_ptr().data(), matrix.row_ptr().size());
  h.span(matrix.col_idx().data(), matrix.col_idx().size());
  h.span(matrix.values().data(), matrix.values().size());
  // Reference solver configuration. kReferenceTolerance is the very
  // constant compute_reference passes, and the PartialSchurOptions
  // defaults below (deflation RNG seed, reflector style) are the ones it
  // leaves unset — hashing them means changing any of those invalidates
  // every cached entry without anyone remembering to edit this file.
  h.u64(cfg.nev).u64(cfg.buffer);
  h.u64(static_cast<std::uint64_t>(cfg.which));
  h.u64(static_cast<std::uint64_t>(static_cast<std::int64_t>(cfg.reference_max_restarts)));
  h.f64(kReferenceTolerance);
  h.u64(cfg.seed);
  const PartialSchurOptions solver_defaults;
  h.u64(solver_defaults.seed);
  h.u64(static_cast<std::uint64_t>(solver_defaults.reflector_style));
  // Start-vector bits, hashed by content. (Note the engine derives the
  // start vector from the matrix *name*, so renaming a matrix changes
  // these bits and deliberately misses: a cache hit always reproduces the
  // exact sweep the engine would run cold.)
  h.span(start.data(), start.size());
  // Reference tier. Hashed only for non-default tiers so every cache
  // entry written before the dd tier existed stays valid for f128_only
  // sweeps; dd_first entries get their own key space.
  if (cfg.reference_tier != ReferenceTier::f128_only) {
    h.str("ref-tier");
    h.u64(static_cast<std::uint64_t>(cfg.reference_tier));
  }
  return h.finish();
}

ReferenceCache::ReferenceCache(std::string directory) : dir_(std::move(directory)) {
  if (dir_.empty()) throw std::runtime_error("reference cache: empty directory path");
  std::error_code ec;
  if (int err = MFLA_FAILPOINT("refcache.open"); err != 0)
    ec = std::error_code(err, std::generic_category());
  else
    std::filesystem::create_directories(dir_, ec);
  if (ec && !std::filesystem::is_directory(dir_)) {
    // An unusable cache location must never kill a sweep: degrade to a
    // no-op cache (all misses, no stores) and say so once.
    degraded_.store(true, std::memory_order_relaxed);
    warned_degraded_.store(true, std::memory_order_relaxed);
    std::fprintf(stderr,
                 "warning: reference cache: cannot create directory '%s' (%s); continuing "
                 "without a cache — every reference will be recomputed\n",
                 dir_.c_str(), ec.message().c_str());
    return;
  }
#if MFLA_HAVE_FLOCK
  // Inter-process lock file for the rename seams (see DirLock). Failure is
  // non-fatal: the cache still works, just without cross-process exclusion.
  const std::string lock_path = dir_ + "/.lock";
  do {
    lock_fd_ = ::open(lock_path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  } while (lock_fd_ < 0 && errno == EINTR);
#endif
}

ReferenceCache::~ReferenceCache() {
#if MFLA_HAVE_FLOCK
  if (lock_fd_ >= 0) ::close(lock_fd_);
#endif
}

std::string ReferenceCache::entry_path(const Hash128& key) const {
  return dir_ + "/" + key.hex() + ".mfref";
}

bool ReferenceCache::load(const Hash128& key, ReferenceSolution& ref) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  const std::string path = entry_path(key);

  // Rejected entries are quarantined: renamed aside to `<entry>.bad` so
  // the corrupt bytes stay available for a post-mortem but are never read
  // (or warned about) again. Best-effort — a concurrent store may have
  // just replaced the entry with a fresh one, in which case the rename
  // quarantines that copy and the producer simply stores once more. The
  // rename itself is serialized (mutex within this process, flock across
  // processes sharing the directory) so exactly one of several concurrent
  // rejecters performs it — the losers see ENOENT and count nothing.
  const auto reject = [&](const char* why) {
    warn(path, why);
    rejects_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lk(store_mtx_);
    DirLock dl(lock_fd_);
    std::error_code ec;
    std::filesystem::rename(path, path + ".bad", ec);
    if (!ec) quarantined_.fetch_add(1, std::memory_order_relaxed);
    return false;
  };

  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // One sized read, not a char-at-a-time slurp: entries are MBs of double
  // bits for large matrices and this is the warm sweep's hot path.
  const std::streamoff size = in.tellg();
  std::string blob(size > 0 ? static_cast<std::size_t>(size) : 0, '\0');
  in.seekg(0);
  if (!blob.empty()) in.read(blob.data(), static_cast<std::streamsize>(blob.size()));
  if (MFLA_FAILPOINT("refcache.load.read") != 0) in.setstate(std::ios::failbit);
  if (!in) return reject("cannot be read");
  in.close();

  // Header: magic(8) version(4) key(16) payload_size(8); then payload and
  // a trailing 16-byte checksum.
  constexpr std::size_t kHeader = 8 + 4 + 16 + 8;
  if (blob.size() < kHeader + 16) return reject("is truncated");
  Reader r{reinterpret_cast<const unsigned char*>(blob.data()), blob.size()};
  if (blob.compare(0, 8, kMagic, 8) != 0) return reject("has a foreign header (bad magic)");
  r.pos = 8;
  const std::uint32_t version = r.u32();
  if (version != kCacheVersion) return reject("was written by an incompatible cache version");
  Hash128 stored_key;
  stored_key.lo = r.u64();
  stored_key.hi = r.u64();
  if (!(stored_key == key)) return reject("records a different cache key (hash collision?)");
  const std::uint64_t payload_size = r.u64();
  if (payload_size != blob.size() - kHeader - 16) return reject("is truncated");

  // Checksum and parse the payload in place — entries are MBs of double
  // bits for large matrices, so no second copy on the warm hot path.
  const char* payload = blob.data() + kHeader;
  Reader cr{reinterpret_cast<const unsigned char*>(blob.data()), blob.size()};
  cr.pos = kHeader + payload_size;
  Hash128 stored_sum;
  stored_sum.lo = cr.u64();
  stored_sum.hi = cr.u64();
  if (!(payload_checksum(payload, payload_size) == stored_sum))
    return reject("fails its checksum (corrupted)");

  // Payload: ok(1) failure_len(4) failure rows(8) cols(8) nvalues(8)
  // values[nvalues] vectors[rows*cols].
  Reader pr{reinterpret_cast<const unsigned char*>(payload), payload_size};
  ReferenceSolution out;
  const std::uint32_t ok_flag = pr.u32();
  const std::uint32_t failure_len = pr.u32();
  out.failure = pr.str(failure_len);
  const std::uint64_t rows = pr.u64();
  const std::uint64_t cols = pr.u64();
  const std::uint64_t nvalues = pr.u64();
  // Bound each dimension before multiplying so corrupt headers cannot
  // overflow rows * cols past the size check.
  if (!pr.ok || ok_flag > 1 || nvalues > payload_size || rows > payload_size ||
      cols > payload_size || rows * cols > payload_size)
    return reject("has an inconsistent payload");
  out.ok = ok_flag == 1;
  out.values.resize(nvalues);
  for (auto& v : out.values) v = pr.f64();
  out.vectors = DenseMatrix<double>(rows, cols);
  for (std::uint64_t j = 0; j < cols; ++j)
    for (std::uint64_t i = 0; i < rows; ++i) out.vectors(i, j) = pr.f64();
  if (!pr.ok || pr.pos != payload_size) return reject("has an inconsistent payload");

  ref = std::move(out);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ReferenceCache::store(const Hash128& key, const ReferenceSolution& ref) {
  std::string payload;
  put_u32(payload, ref.ok ? 1 : 0);
  put_u32(payload, static_cast<std::uint32_t>(ref.failure.size()));
  payload += ref.failure;
  put_u64(payload, ref.vectors.rows());
  put_u64(payload, ref.vectors.cols());
  put_u64(payload, ref.values.size());
  for (const double v : ref.values) put_f64(payload, v);
  for (std::size_t j = 0; j < ref.vectors.cols(); ++j)
    for (std::size_t i = 0; i < ref.vectors.rows(); ++i) put_f64(payload, ref.vectors(i, j));

  std::string blob(kMagic, 8);
  put_u32(blob, kCacheVersion);
  put_u64(blob, key.lo);
  put_u64(blob, key.hi);
  put_u64(blob, payload.size());
  blob += payload;
  const Hash128 sum = payload_checksum(payload.data(), payload.size());
  put_u64(blob, sum.lo);
  put_u64(blob, sum.hi);

  // A cache that already proved unwritable stops trying (degraded mode):
  // a full disk costs a handful of failed stores, not one per matrix.
  if (degraded_.load(std::memory_order_relaxed)) return;

  // Unique temp name per producer, then atomic rename: concurrent stores of
  // the same key race harmlessly (identical content) and readers never see
  // a partial entry. Transient I/O errors get a few retries with bounded
  // backoff; a store abandoned after that is counted, warned about once,
  // and leaves no orphaned temp file behind. Stores (and the retry/degrade
  // bookkeeping) are serialized within this process — they are rare and
  // seconds-long solves apart, so contention is nil — and the publish
  // rename additionally takes the directory flock against other processes.
  std::lock_guard<std::mutex> store_lk(store_mtx_);
  if (degraded_.load(std::memory_order_relaxed)) return;  // re-check under the lock
  std::string last_error;
  for (int attempt = 0; attempt < kStoreAttempts; ++attempt) {
    if (attempt > 0) {
      store_retries_.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(
          std::chrono::milliseconds(kRetryBackoffMs[std::min(attempt - 1, 1)]));
    }
    const std::uint64_t serial = tmp_counter_.fetch_add(1, std::memory_order_relaxed);
    const std::string tmp =
        dir_ + "/.tmp-" + key.hex() + "-" + std::to_string(serial) + "-" +
        std::to_string(static_cast<std::uint64_t>(
            std::hash<std::thread::id>{}(std::this_thread::get_id())));
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (int err = MFLA_FAILPOINT("refcache.store.open"); err != 0 && out) {
        out.setstate(std::ios::failbit);
        last_error = std::strerror(err);
      }
      if (out) out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
      if (int err = MFLA_FAILPOINT("refcache.store.write"); err != 0 && out) {
        out.setstate(std::ios::badbit);
        last_error = std::strerror(err);
      }
      // Flush before the rename: a deferred destructor flush could fail
      // silently (disk full) and publish a truncated entry.
      if (out) out.flush();
      if (!out) {
        if (last_error.empty()) last_error = "cannot write '" + tmp + "'";
        std::remove(tmp.c_str());
        continue;
      }
    }
    std::error_code ec;
    if (int err = MFLA_FAILPOINT("refcache.store.rename"); err != 0) {
      ec = std::error_code(err, std::generic_category());
    } else {
      DirLock dl(lock_fd_);
      std::filesystem::rename(tmp, entry_path(key), ec);
    }
    if (ec) {
      last_error = "cannot publish '" + entry_path(key) + "': " + ec.message();
      std::remove(tmp.c_str());
      continue;
    }
    stores_.fetch_add(1, std::memory_order_relaxed);
    consecutive_store_failures_.store(0, std::memory_order_relaxed);
    return;
  }
  note_store_failure(last_error);
}

void ReferenceCache::note_store_failure(const std::string& what) {
  store_failures_.fetch_add(1, std::memory_order_relaxed);
  if (!warned_store_.exchange(true, std::memory_order_relaxed))
    std::fprintf(stderr,
                 "warning: reference cache: store failed after %d attempts (%s); results are "
                 "unaffected, the reference was kept in memory\n",
                 kStoreAttempts, what.c_str());
  const std::uint64_t consecutive =
      consecutive_store_failures_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (consecutive >= kDegradeAfter && !degraded_.exchange(true, std::memory_order_relaxed) &&
      !warned_degraded_.exchange(true, std::memory_order_relaxed))
    std::fprintf(stderr,
                 "warning: reference cache: %llu consecutive store failures (disk full or "
                 "directory unwritable?); degrading to recompute-only for the rest of the "
                 "sweep\n",
                 static_cast<unsigned long long>(consecutive));
}

RefCacheStats ReferenceCache::stats() const noexcept {
  RefCacheStats s;
  s.lookups = lookups_.load(std::memory_order_relaxed);
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.rejects = rejects_.load(std::memory_order_relaxed);
  s.stores = stores_.load(std::memory_order_relaxed);
  s.quarantined = quarantined_.load(std::memory_order_relaxed);
  s.store_retries = store_retries_.load(std::memory_order_relaxed);
  s.store_failures = store_failures_.load(std::memory_order_relaxed);
  s.degraded = degraded_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace mfla
