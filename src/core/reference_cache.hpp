// Persistent content-addressed cache of float128 reference solutions.
//
// The per-matrix reference eigenproblem (compute_reference, tolerance
// 1e-20 in software quad arithmetic) dominates the wall-clock of a sweep,
// yet its result depends only on the problem content: the CSR structure
// and value bits of the matrix, the solver configuration, and the shared
// start vector. This cache stores each ReferenceSolution under a 128-bit
// hash of exactly that content (support/hash.hpp), so any later sweep over
// the same matrix — a resumed run, a CI rerun, a format-subset rerun —
// skips the quad solve entirely and is byte-identical to a cold one.
//
// Entry format (one file per key, named <hex key>.mfref inside the cache
// directory): a fixed header (magic, version, key echo), a little-endian
// binary payload carrying the exact double bit patterns of the eigenvalues
// and Schur vectors (plus the ok flag and failure string), and a 128-bit
// payload checksum. Loads are strict: wrong magic, version, key, size or
// checksum rejects the entry with a warning, quarantines it (renamed to
// `.bad`) and the caller recomputes. Stores write to a temporary file and
// rename, so concurrent producers of the same key are safe and readers
// never see a torn entry; store I/O failures retry with bounded backoff
// and then degrade (recompute-only) rather than ever failing a sweep.
// Fault injection for all of this lives behind the `refcache.*`
// failpoints (docs/ROBUSTNESS.md).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "support/hash.hpp"

namespace mfla {

/// Counters for one ReferenceCache instance (monotone over its lifetime).
struct RefCacheStats {
  std::uint64_t lookups = 0;      // load() calls
  std::uint64_t hits = 0;         // valid entries returned
  std::uint64_t misses = 0;       // entry absent
  std::uint64_t rejects = 0;      // entry present but failed validation
  std::uint64_t stores = 0;       // entries written
  std::uint64_t quarantined = 0;  // rejected entries renamed aside to .bad
  std::uint64_t store_retries = 0;   // extra store attempts after transient I/O errors
  std::uint64_t store_failures = 0;  // stores abandoned after exhausting retries
  bool degraded = false;  // cache stopped persisting (dir unwritable / disk full)
};

/// Cache key: hash of the matrix bits (structure + values), the reference
/// solver configuration, and the start-vector bits. Flipping any single
/// input bit — one matrix value, one config field, one start component —
/// yields a different key.
[[nodiscard]] Hash128 reference_cache_key(const CsrMatrix<double>& matrix,
                                          const ExperimentConfig& cfg,
                                          const std::vector<double>& start);

class ReferenceCache {
 public:
  /// Opens (creating if needed) the cache directory. An uncreatable
  /// directory does NOT throw: the cache warns once and degrades to a
  /// no-op (every load misses, every store is skipped) — a sweep must
  /// never fail because its cache is unusable. Only an empty path (a
  /// programming error) throws std::runtime_error.
  explicit ReferenceCache(std::string directory);

  ReferenceCache(const ReferenceCache&) = delete;
  ReferenceCache& operator=(const ReferenceCache&) = delete;
  ~ReferenceCache();

  /// Look up `key`; on a valid hit fills `ref` with the exact stored
  /// solution (bit-identical doubles) and returns true. A corrupted,
  /// truncated or version-mismatched entry warns on stderr, counts as a
  /// reject, is quarantined (renamed to `<entry>.bad` so the corruption
  /// is kept for inspection but never re-read) and returns false — the
  /// caller recomputes and store() writes a fresh entry.
  [[nodiscard]] bool load(const Hash128& key, ReferenceSolution& ref);

  /// Persist `ref` under `key` (temp file + atomic rename). Transient I/O
  /// failures (disk full, rename refused) are retried a few times with
  /// bounded backoff; a store that still fails warns once, is counted in
  /// stats, and removes its orphaned temp file. After several consecutive
  /// failed stores the cache degrades to recompute-only and stops trying.
  /// Store failures never propagate: a sweep never fails because its
  /// cache is unwritable.
  void store(const Hash128& key, const ReferenceSolution& ref);

  [[nodiscard]] RefCacheStats stats() const noexcept;
  [[nodiscard]] const std::string& directory() const noexcept { return dir_; }
  [[nodiscard]] std::string entry_path(const Hash128& key) const;
  [[nodiscard]] bool degraded() const noexcept {
    return degraded_.load(std::memory_order_relaxed);
  }

 private:
  void note_store_failure(const std::string& what);

  std::string dir_;
  /// Serializes the mutating seams — store attempts (incl. the
  /// retry/degrade bookkeeping) and quarantine renames — within this
  /// process. The warm load path never takes it.
  std::mutex store_mtx_;
  /// fd of `<dir>/.lock`, flock()ed (advisory, exclusive) around the
  /// temp→entry publish rename and the quarantine rename so multiple
  /// PROCESSES sharing one cache directory cannot race those renames
  /// (e.g. double-quarantine one corrupt entry). -1 when the lock file
  /// could not be created; locking then degrades to in-process only.
  int lock_fd_ = -1;
  std::atomic<std::uint64_t> lookups_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> rejects_{0};
  std::atomic<std::uint64_t> stores_{0};
  std::atomic<std::uint64_t> quarantined_{0};
  std::atomic<std::uint64_t> store_retries_{0};
  std::atomic<std::uint64_t> store_failures_{0};
  std::atomic<std::uint64_t> consecutive_store_failures_{0};
  std::atomic<bool> degraded_{false};
  std::atomic<bool> warned_store_{false};
  std::atomic<bool> warned_degraded_{false};
  std::atomic<std::uint64_t> tmp_counter_{0};
};

}  // namespace mfla
