// Persistent content-addressed cache of float128 reference solutions.
//
// The per-matrix reference eigenproblem (compute_reference, tolerance
// 1e-20 in software quad arithmetic) dominates the wall-clock of a sweep,
// yet its result depends only on the problem content: the CSR structure
// and value bits of the matrix, the solver configuration, and the shared
// start vector. This cache stores each ReferenceSolution under a 128-bit
// hash of exactly that content (support/hash.hpp), so any later sweep over
// the same matrix — a resumed run, a CI rerun, a format-subset rerun —
// skips the quad solve entirely and is byte-identical to a cold one.
//
// Entry format (one file per key, named <hex key>.mfref inside the cache
// directory): a fixed header (magic, version, key echo), a little-endian
// binary payload carrying the exact double bit patterns of the eigenvalues
// and Schur vectors (plus the ok flag and failure string), and a 128-bit
// payload checksum. Loads are strict: wrong magic, version, key, size or
// checksum rejects the entry with a warning and the caller recomputes (and
// overwrites the bad entry). Stores write to a temporary file and rename,
// so concurrent producers of the same key are safe and readers never see a
// torn entry.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "support/hash.hpp"

namespace mfla {

/// Counters for one ReferenceCache instance (monotone over its lifetime).
struct RefCacheStats {
  std::uint64_t lookups = 0;  // load() calls
  std::uint64_t hits = 0;     // valid entries returned
  std::uint64_t misses = 0;   // entry absent
  std::uint64_t rejects = 0;  // entry present but failed validation
  std::uint64_t stores = 0;   // entries written
};

/// Cache key: hash of the matrix bits (structure + values), the reference
/// solver configuration, and the start-vector bits. Flipping any single
/// input bit — one matrix value, one config field, one start component —
/// yields a different key.
[[nodiscard]] Hash128 reference_cache_key(const CsrMatrix<double>& matrix,
                                          const ExperimentConfig& cfg,
                                          const std::vector<double>& start);

class ReferenceCache {
 public:
  /// Opens (creating if needed) the cache directory. Throws
  /// std::runtime_error if the directory cannot be created.
  explicit ReferenceCache(std::string directory);

  /// Look up `key`; on a valid hit fills `ref` with the exact stored
  /// solution (bit-identical doubles) and returns true. A corrupted,
  /// truncated or version-mismatched entry warns on stderr, counts as a
  /// reject and returns false — the caller recomputes and store()
  /// overwrites the bad entry.
  [[nodiscard]] bool load(const Hash128& key, ReferenceSolution& ref);

  /// Persist `ref` under `key` (temp file + atomic rename). I/O failures
  /// warn on stderr and are otherwise ignored: a sweep never fails because
  /// its cache is unwritable.
  void store(const Hash128& key, const ReferenceSolution& ref);

  [[nodiscard]] RefCacheStats stats() const noexcept;
  [[nodiscard]] const std::string& directory() const noexcept { return dir_; }
  [[nodiscard]] std::string entry_path(const Hash128& key) const;

 private:
  std::string dir_;
  std::atomic<std::uint64_t> lookups_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> rejects_{0};
  std::atomic<std::uint64_t> stores_{0};
  std::atomic<std::uint64_t> tmp_counter_{0};
};

}  // namespace mfla
