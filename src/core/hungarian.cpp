#include "core/hungarian.hpp"

#include <limits>
#include <stdexcept>

namespace mfla {

std::vector<int> hungarian_assignment(const DenseMatrix<double>& cost) {
  const auto n = static_cast<int>(cost.rows());
  const auto m = static_cast<int>(cost.cols());
  if (n > m) throw std::invalid_argument("hungarian: need rows <= cols");
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // Potentials and matching, 1-based internally (classic formulation).
  std::vector<double> u(static_cast<std::size_t>(n) + 1, 0.0);
  std::vector<double> v(static_cast<std::size_t>(m) + 1, 0.0);
  std::vector<int> match(static_cast<std::size_t>(m) + 1, 0);  // column -> row
  std::vector<int> way(static_cast<std::size_t>(m) + 1, 0);

  for (int i = 1; i <= n; ++i) {
    match[0] = i;
    int j0 = 0;
    std::vector<double> minv(static_cast<std::size_t>(m) + 1, kInf);
    std::vector<char> used(static_cast<std::size_t>(m) + 1, 0);
    do {
      used[j0] = 1;
      const int i0 = match[j0];
      double delta = kInf;
      int j1 = 0;
      for (int j = 1; j <= m; ++j) {
        if (used[j]) continue;
        const double cur = cost(static_cast<std::size_t>(i0 - 1), static_cast<std::size_t>(j - 1)) -
                           u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (int j = 0; j <= m; ++j) {
        if (used[j]) {
          u[match[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (match[j0] != 0);
    do {
      const int j1 = way[j0];
      match[j0] = match[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  std::vector<int> assignment(static_cast<std::size_t>(n), -1);
  for (int j = 1; j <= m; ++j) {
    if (match[j] > 0) assignment[static_cast<std::size_t>(match[j] - 1)] = j - 1;
  }
  return assignment;
}

double assignment_cost(const DenseMatrix<double>& cost, const std::vector<int>& assignment) {
  double total = 0.0;
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    if (assignment[i] >= 0) total += cost(i, static_cast<std::size_t>(assignment[i]));
  }
  return total;
}

}  // namespace mfla
