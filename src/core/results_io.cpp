#include "core/results_io.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "core/report.hpp"

namespace mfla {

const char* outcome_name(RunOutcome o) noexcept {
  switch (o) {
    case RunOutcome::ok: return "ok";
    case RunOutcome::no_convergence: return "omega";
    case RunOutcome::range_exceeded: return "sigma";
  }
  return "unknown";
}

RunOutcome outcome_from_name(const std::string& s) {
  if (s == "ok") return RunOutcome::ok;
  if (s == "omega") return RunOutcome::no_convergence;
  if (s == "sigma") return RunOutcome::range_exceeded;
  throw std::invalid_argument("unknown outcome '" + s + "'");
}

namespace {

FormatId format_from_name(const std::string& name) {
  for (const auto& f : all_formats()) {
    if (f.name == name) return f.id;
  }
  throw std::invalid_argument("unknown format '" + name + "'");
}

std::vector<std::string> split_csv(const std::string& line) {
  std::vector<std::string> out;
  std::string field;
  std::istringstream ss(line);
  while (std::getline(ss, field, ',')) out.push_back(field);
  return out;
}

}  // namespace

void write_results_csv(const std::string& path, const std::vector<MatrixResult>& results) {
  const auto slash = path.find_last_of('/');
  if (slash != std::string::npos) ensure_directory(path.substr(0, slash));
  std::ofstream out(path);
  out.precision(17);
  out << "matrix,class,category,n,nnz,format,outcome,eig_abs,eig_rel,vec_abs,vec_rel,"
         "similarity,nconv,restarts,matvecs\n";
  for (const auto& mr : results) {
    if (!mr.reference_ok) {
      out << mr.name << ',' << mr.klass << ',' << mr.category << ',' << mr.n << ',' << mr.nnz
          << ",-,reference_failed,,,,,,,,\n";
      continue;
    }
    for (const auto& run : mr.runs) {
      out << mr.name << ',' << mr.klass << ',' << mr.category << ',' << mr.n << ',' << mr.nnz
          << ',' << format_info(run.format).name << ',' << outcome_name(run.outcome) << ','
          << run.eigenvalue_error.absolute << ',' << run.eigenvalue_error.relative << ','
          << run.eigenvector_error.absolute << ',' << run.eigenvector_error.relative << ','
          << run.mean_similarity << ',' << run.nconverged << ',' << run.restarts << ','
          << run.matvecs << '\n';
    }
  }
}

std::vector<MatrixResult> read_results_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("results csv: cannot open '" + path + "'");
  std::string line;
  if (!std::getline(in, line)) throw std::runtime_error("results csv: empty file");
  std::map<std::string, std::size_t> index;
  std::vector<MatrixResult> results;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto f = split_csv(line);
    if (f.size() < 7) throw std::runtime_error("results csv: bad row '" + line + "'");
    auto [it, inserted] = index.try_emplace(f[0], results.size());
    if (inserted) {
      MatrixResult mr;
      mr.name = f[0];
      mr.klass = f[1];
      mr.category = f[2];
      mr.n = static_cast<std::size_t>(std::stoull(f[3]));
      mr.nnz = static_cast<std::size_t>(std::stoull(f[4]));
      mr.reference_ok = f[6] != "reference_failed";
      results.push_back(mr);
    }
    MatrixResult& mr = results[it->second];
    if (f[6] == "reference_failed") {
      mr.reference_ok = false;
      continue;
    }
    if (f.size() < 15) throw std::runtime_error("results csv: truncated row '" + line + "'");
    FormatRun run;
    run.format = format_from_name(f[5]);
    run.outcome = outcome_from_name(f[6]);
    if (run.outcome == RunOutcome::ok) {
      run.eigenvalue_error.absolute = std::stod(f[7]);
      run.eigenvalue_error.relative = std::stod(f[8]);
      run.eigenvector_error.absolute = std::stod(f[9]);
      run.eigenvector_error.relative = std::stod(f[10]);
      run.mean_similarity = std::stod(f[11]);
    }
    run.nconverged = static_cast<std::size_t>(std::stoull(f[12]));
    run.restarts = std::stoi(f[13]);
    run.matvecs = static_cast<std::size_t>(std::stoull(f[14]));
    mr.runs.push_back(run);
  }
  return results;
}

}  // namespace mfla
