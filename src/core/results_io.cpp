#include "core/results_io.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "core/report.hpp"
#include "support/failpoint.hpp"
#include "support/jsonl.hpp"

namespace mfla {

const char* outcome_name(RunOutcome o) noexcept {
  switch (o) {
    case RunOutcome::ok: return "ok";
    case RunOutcome::no_convergence: return "omega";
    case RunOutcome::range_exceeded: return "sigma";
    case RunOutcome::fault: return "fault";
  }
  return "unknown";
}

RunOutcome outcome_from_name(const std::string& s) {
  if (s == "ok") return RunOutcome::ok;
  if (s == "omega") return RunOutcome::no_convergence;
  if (s == "sigma") return RunOutcome::range_exceeded;
  if (s == "fault") return RunOutcome::fault;
  throw std::invalid_argument("unknown outcome '" + s + "'");
}

namespace {

std::vector<std::string> split_csv(const std::string& line) {
  std::vector<std::string> out;
  std::string field;
  std::istringstream ss(line);
  while (std::getline(ss, field, ',')) out.push_back(field);
  return out;
}

}  // namespace

void write_results_csv(const std::string& path, const std::vector<MatrixResult>& results) {
  ensure_parent_directory(path);
  std::ofstream out(path);
  if (int err = MFLA_FAILPOINT("csv.write"); err != 0)
    throw IoError("results csv: cannot write '" + path + "': " + std::strerror(err));
  if (!out) throw IoError("results csv: cannot open '" + path + "' for writing");
  out.precision(17);
  out << "matrix,class,category,n,nnz,format,outcome,eig_abs,eig_rel,vec_abs,vec_rel,"
         "similarity,nconv,restarts,matvecs\n";
  for (const auto& mr : results) {
    if (!mr.reference_ok) {
      out << mr.name << ',' << mr.klass << ',' << mr.category << ',' << mr.n << ',' << mr.nnz
          << ",-,reference_failed,,,,,,,,\n";
      continue;
    }
    for (const auto& run : mr.runs) {
      out << mr.name << ',' << mr.klass << ',' << mr.category << ',' << mr.n << ',' << mr.nnz
          << ',' << format_info(run.format).name << ',' << outcome_name(run.outcome) << ','
          << run.eigenvalue_error.absolute << ',' << run.eigenvalue_error.relative << ','
          << run.eigenvector_error.absolute << ',' << run.eigenvector_error.relative << ','
          << run.mean_similarity << ',' << run.nconverged << ',' << run.restarts << ','
          << run.matvecs << '\n';
    }
  }
  out.flush();
  // Losing the raw CSV to a full disk must be loud — it is the product of
  // the whole sweep.
  if (!out) throw IoError("results csv: write to '" + path + "' failed (disk full?)");
}

std::vector<MatrixResult> read_results_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("results csv: cannot open '" + path + "'");
  std::string line;
  if (!std::getline(in, line)) throw std::runtime_error("results csv: empty file");
  std::map<std::string, std::size_t> index;
  std::vector<MatrixResult> results;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto f = split_csv(line);
    if (f.size() < 7) throw std::runtime_error("results csv: bad row '" + line + "'");
    auto [it, inserted] = index.try_emplace(f[0], results.size());
    if (inserted) {
      MatrixResult mr;
      mr.name = f[0];
      mr.klass = f[1];
      mr.category = f[2];
      mr.n = static_cast<std::size_t>(std::stoull(f[3]));
      mr.nnz = static_cast<std::size_t>(std::stoull(f[4]));
      mr.reference_ok = f[6] != "reference_failed";
      results.push_back(mr);
    }
    MatrixResult& mr = results[it->second];
    if (f[6] == "reference_failed") {
      mr.reference_ok = false;
      continue;
    }
    if (f.size() < 15) throw std::runtime_error("results csv: truncated row '" + line + "'");
    FormatRun run;
    run.format = format_from_name(f[5]);
    run.outcome = outcome_from_name(f[6]);
    if (run.outcome == RunOutcome::ok) {
      run.eigenvalue_error.absolute = std::stod(f[7]);
      run.eigenvalue_error.relative = std::stod(f[8]);
      run.eigenvector_error.absolute = std::stod(f[9]);
      run.eigenvector_error.relative = std::stod(f[10]);
      run.mean_similarity = std::stod(f[11]);
    }
    run.nconverged = static_cast<std::size_t>(std::stoull(f[12]));
    run.restarts = std::stoi(f[13]);
    run.matvecs = static_cast<std::size_t>(std::stoull(f[14]));
    mr.runs.push_back(run);
  }
  return results;
}

// ---------------------------------------------------------------------------
// JSONL checkpoint journal
// ---------------------------------------------------------------------------

// The JSON building/parsing itself lives in support/jsonl.hpp — the serve
// protocol speaks the same dialect and shares the implementation.
using jsonl::field_num;
using jsonl::field_num_or;
using jsonl::field_str;
using jsonl::field_u64;
using jsonl::field_u64_or;
using jsonl::JsonLine;

JournalMeta make_journal_meta(const ExperimentConfig& cfg, const std::vector<FormatId>& formats,
                              std::size_t matrix_count) {
  JournalMeta m;
  m.nev = cfg.nev;
  m.buffer = cfg.buffer;
  m.which = static_cast<int>(cfg.which);
  m.max_restarts = cfg.max_restarts;
  m.reference_max_restarts = cfg.reference_max_restarts;
  m.seed = cfg.seed;
  m.reference_tier = static_cast<int>(cfg.reference_tier);
  for (const FormatId id : formats) {
    if (!m.formats.empty()) m.formats += ',';
    m.formats += format_info(id).name;
  }
  m.matrix_count = matrix_count;
  return m;
}

JournalWriter::JournalWriter(const std::string& path, bool truncate) {
  ensure_parent_directory(path);
  // A sweep killed mid-write can leave trailing garbage — at worst one torn
  // final line without a newline. Before appending, physically truncate the
  // file back to its last complete line so the next record never glues onto
  // a torn fragment and the garbage is gone for good (not just skipped on
  // every future read).
  if (!truncate) {
    std::ifstream probe(path, std::ios::binary);
    if (probe) {
      std::uint64_t pos = 0, keep = 0;  // keep = end of last complete line
      char buf[4096];
      while (probe.read(buf, sizeof buf) || probe.gcount() > 0) {
        const std::streamsize got = probe.gcount();
        for (std::streamsize i = 0; i < got; ++i)
          if (buf[i] == '\n') keep = pos + static_cast<std::uint64_t>(i) + 1;
        pos += static_cast<std::uint64_t>(got);
        if (got < static_cast<std::streamsize>(sizeof buf)) break;
      }
      probe.close();
      if (keep < pos) {
        truncated_bytes_ = pos - keep;
        std::error_code ec;
        std::filesystem::resize_file(path, keep, ec);
        if (ec)
          throw IoError("journal: cannot truncate torn tail of '" + path +
                        "': " + ec.message());
      }
    }
  }
  if (int err = MFLA_FAILPOINT("journal.open"); err != 0)
    throw IoError("journal: cannot open '" + path + "': " + std::strerror(err));
  const auto mode = truncate ? std::ios::out | std::ios::trunc : std::ios::out | std::ios::app;
  out_.open(path, mode);
  if (!out_) throw IoError("journal: cannot open '" + path + "' for writing");
}

void JournalWriter::append_line(const std::string& line) {
  std::lock_guard<std::mutex> lk(mtx_);
  if (int err = MFLA_FAILPOINT("journal.append"); err != 0)
    throw IoError(std::string("journal: write failed: ") + std::strerror(err));
  out_ << line << '\n';
  if (MFLA_FAILPOINT("journal.flush") != 0) out_.setstate(std::ios::failbit);
  out_.flush();
  // Surface write failures (e.g. disk full) instead of silently dropping
  // checkpoint records — the engine propagates this out of run_experiment.
  if (!out_) throw IoError("journal: write failed (disk full or file removed?)");
}

void JournalWriter::write_meta(const JournalMeta& meta) {
  JsonLine j;
  j.str("type", "meta")
      .integer("version", 1)
      .uint("nev", meta.nev)
      .uint("buffer", meta.buffer)
      .integer("which", meta.which)
      .integer("restarts", meta.max_restarts)
      .integer("ref_restarts", meta.reference_max_restarts)
      .uint("seed", meta.seed)
      .integer("ref_tier", meta.reference_tier)
      .str("formats", meta.formats)
      .uint("matrices", meta.matrix_count);
  append_line(j.finish());
}

void JournalWriter::write_reference_failure(const std::string& matrix, std::size_t n,
                                            std::size_t nnz, const std::string& failure) {
  JsonLine j;
  j.str("type", "reference").str("matrix", matrix).uint("n", n).uint("nnz", nnz).str("failure",
                                                                                     failure);
  append_line(j.finish());
}

void JournalWriter::write_run(const std::string& matrix, std::size_t n, std::size_t nnz,
                              const FormatRun& run) {
  JsonLine j;
  j.str("type", "run")
      .str("matrix", matrix)
      .uint("n", n)
      .uint("nnz", nnz)
      .str("format", format_info(run.format).name)
      .str("outcome", outcome_name(run.outcome))
      .num("eig_abs", run.eigenvalue_error.absolute)
      .num("eig_rel", run.eigenvalue_error.relative)
      .num("vec_abs", run.eigenvector_error.absolute)
      .num("vec_rel", run.eigenvector_error.relative)
      .num("similarity", run.mean_similarity)
      .uint("nconv", run.nconverged)
      .integer("restarts", run.restarts)
      .uint("matvecs", run.matvecs)
      .num("duration", run.duration_seconds)
      .str("failure", run.failure);
  append_line(j.finish());
}

JournalContents read_journal(const std::string& path) {
  JournalContents jc;
  std::ifstream in(path);
  if (!in) return jc;  // no journal yet: nothing to resume
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::map<std::string, std::string> obj;
    if (!jsonl::parse_line(line, obj)) {
      ++jc.skipped_lines;  // torn final write of a killed sweep
      continue;
    }
    try {
      const std::string type = field_str(obj, "type");
      if (type == "meta") {
        jc.meta.nev = field_u64(obj, "nev");
        jc.meta.buffer = field_u64(obj, "buffer");
        jc.meta.which = static_cast<int>(field_u64(obj, "which"));
        jc.meta.max_restarts = static_cast<int>(field_u64(obj, "restarts"));
        jc.meta.reference_max_restarts = static_cast<int>(field_u64(obj, "ref_restarts"));
        jc.meta.seed = field_u64(obj, "seed");
        jc.meta.reference_tier = static_cast<int>(field_u64_or(obj, "ref_tier", 0));
        jc.meta.formats = field_str(obj, "formats");
        jc.meta.matrix_count = field_u64(obj, "matrices");
        jc.has_meta = true;
      } else if (type == "reference") {
        JournalReferenceFailure rf;
        rf.failure = field_str(obj, "failure");
        rf.n = field_u64(obj, "n");
        rf.nnz = field_u64(obj, "nnz");
        jc.reference_failures.insert_or_assign(field_str(obj, "matrix"), rf);
      } else if (type == "run") {
        JournalRun jr;
        jr.n = field_u64(obj, "n");
        jr.nnz = field_u64(obj, "nnz");
        FormatRun& run = jr.run;
        run.format = format_from_name(field_str(obj, "format"));
        run.outcome = outcome_from_name(field_str(obj, "outcome"));
        run.eigenvalue_error.absolute = field_num(obj, "eig_abs");
        run.eigenvalue_error.relative = field_num(obj, "eig_rel");
        run.eigenvector_error.absolute = field_num(obj, "vec_abs");
        run.eigenvector_error.relative = field_num(obj, "vec_rel");
        run.mean_similarity = field_num(obj, "similarity");
        run.nconverged = field_u64(obj, "nconv");
        run.restarts = static_cast<int>(field_num(obj, "restarts"));
        run.matvecs = field_u64(obj, "matvecs");
        run.duration_seconds = field_num_or(obj, "duration", 0.0);
        run.failure = field_str(obj, "failure");
        jc.runs.insert_or_assign({field_str(obj, "matrix"), run.format}, jr);
      } else {
        ++jc.skipped_lines;  // unknown record type (newer writer?)
      }
    } catch (const std::invalid_argument&) {
      ++jc.skipped_lines;
    }
  }
  return jc;
}

}  // namespace mfla
