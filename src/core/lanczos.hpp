// Thick-restart Lanczos (Wu & Simon): the symmetric-specialized companion
// to partialschur(), analogous to ARPACK's dsaupd next to dnaupd.
//
// Maintains A V_k = V_k D_k + v_k b_k^T with D_k diagonal; expansion uses
// the three-term recurrence plus full reorthogonalization (iterated CGS,
// same kernel as the Arnoldi path — low-precision Lanczos without
// reorthogonalization loses orthogonality immediately, which would
// confound the format comparison). The projected matrix after a restart is
// diagonal-plus-arrowhead-plus-tridiagonal; its eigendecomposition uses
// the Jacobi kernel (robust at restart dimensions; the standalone
// tridiagonal QL kernel lives in dense/tridiagonal.hpp).
#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

#include "core/arnoldi.hpp"
#include "kernels/vector_ops.hpp"
#include "core/krylov_schur.hpp"
#include "dense/jacobi.hpp"
#include "dense/tridiagonal.hpp"

namespace mfla {

/// Symmetric partial eigendecomposition via thick-restart Lanczos.
/// Options are shared with partialschur(); `which` must be a real ordering
/// (largest/smallest magnitude or real — all eigenvalues are real here).
template <typename T, class Op>
PartialSchurResult<T> lanczos_eigs(const Op& a, const PartialSchurOptions& opts = {}) {
  const std::size_t n = a.rows();
  PartialSchurResult<T> out;
  const std::size_t nev = opts.nev;
  if (nev == 0 || n < 2) {
    out.failure = "matrix too small";
    return out;
  }
  std::size_t mindim = opts.mindim != 0 ? opts.mindim : std::max<std::size_t>(10, nev);
  std::size_t maxdim = opts.maxdim != 0 ? opts.maxdim : std::max<std::size_t>(20, 2 * nev);
  maxdim = std::min(maxdim, n - 1);
  mindim = std::min(mindim, maxdim >= 2 ? maxdim - 2 : 1);
  if (nev > maxdim) {
    out.failure = "nev exceeds subspace dimension";
    return out;
  }
  const double tol = opts.tolerance > 0 ? opts.tolerance : NumTraits<T>::default_tolerance();

  Rng rng(opts.seed);
  DenseMatrix<T> v(n, maxdim + 1);
  // Projected symmetric matrix (dense storage; diagonal+arrow+tridiagonal).
  DenseMatrix<T> s(maxdim + 1, maxdim);

  {
    std::vector<double> v0;
    if (opts.start_vector != nullptr && opts.start_vector->size() == n) {
      v0 = *opts.start_vector;
    } else {
      v0 = rng.unit_vector(n);
    }
    for (std::size_t i = 0; i < n; ++i) v(i, 0) = NumTraits<T>::from_double(v0[i]);
    const T nrm = kernels::nrm2(n, v.col(0));
    if (!is_number(nrm) || NumTraits<T>::to_double(nrm) == 0.0) {
      out.failure = "start vector collapsed in format";
      return out;
    }
    kernels::scal(n, T(1) / nrm, v.col(0));
  }

  KrylovSchurWorkspace<T> ws;
  ws.arnoldi.reserve(n, maxdim);

  std::size_t k = 0;
  for (int restart = 0; restart <= opts.max_restarts; ++restart) {
    out.restarts = restart;
    const std::size_t m = maxdim;
    for (std::size_t j = k; j < m; ++j) {
      // arnoldi_step orthogonalizes against the full basis: in exact
      // arithmetic only the last two coefficients are non-zero (Lanczos
      // recurrence); keeping the full projection = full reorthogonalization.
      const ExpandStatus es = arnoldi_step(a, v, s, j, rng, ws.arnoldi);
      ++out.matvecs;
      if (es == ExpandStatus::failed) {
        out.failure = "non-finite values during Lanczos expansion";
        return out;
      }
      // Enforce symmetry of the projected block (Lanczos invariant).
      for (std::size_t i = 0; i < j; ++i) s(j, i) = s(i, j);
    }
    const T beta = s(m, m - 1);

    // Eigendecomposition of the symmetric projected matrix.
    DenseMatrix<T> sm(m, m);
    for (std::size_t j = 0; j < m; ++j)
      for (std::size_t i = 0; i < m; ++i) sm(i, j) = s(i, j);
    // Symmetrize fully (rounding skew from the expansion).
    for (std::size_t j = 0; j < m; ++j)
      for (std::size_t i = 0; i < j; ++i) {
        const T avg = (sm(i, j) + sm(j, i)) * NumTraits<T>::from_double(0.5);
        sm(i, j) = avg;
        sm(j, i) = avg;
      }
    DenseMatrix<T> q;
    if (jacobi_eigen(sm, q, 40) < 0) {
      out.failure = "projected eigendecomposition failed";
      return out;
    }
    // Sort eigenpairs by the requested ordering.
    std::vector<std::size_t> order(m);
    for (std::size_t i = 0; i < m; ++i) order[i] = i;
    std::vector<double> vals(m);
    for (std::size_t i = 0; i < m; ++i) vals[i] = NumTraits<T>::to_double(sm(i, i));
    const Which which = opts.which;
    std::sort(order.begin(), order.end(), [&vals, which](std::size_t x, std::size_t y) {
      return detail::prefer_eig(which, vals[x], 0.0, vals[y], 0.0);
    });

    // Spike in the sorted eigenbasis.
    std::vector<double> spike(m);
    const double beta_d = NumTraits<T>::to_double(beta);
    for (std::size_t i = 0; i < m; ++i) {
      spike[i] = beta_d * NumTraits<T>::to_double(q(m - 1, order[i]));
    }
    std::size_t nconv = 0;
    while (nconv < m &&
           std::abs(spike[nconv]) <= tol * std::abs(vals[order[nconv]])) {
      ++nconv;
    }
    out.nconverged = std::min(nconv, nev);

    const bool done = nconv >= nev || restart == opts.max_restarts;
    const std::size_t keep =
        done ? std::min(nev, m)
             : std::min(mindim + std::min(nconv, (maxdim - mindim) / 2), m - 1);

    // Rotate the basis into the sorted eigenvectors (leading `keep`),
    // staged through the workspace selection matrix.
    DenseMatrix<T>& qsel = ws.t;
    qsel.resize(m, keep);
    for (std::size_t j = 0; j < keep; ++j)
      for (std::size_t i = 0; i < m; ++i) qsel(i, j) = q(i, order[j]);
    kernels::update_basis(v, qsel, m, keep, ws.basis_scratch);

    if (done) {
      out.q = v.top_left(n, keep);
      out.r = DenseMatrix<T>(keep, keep);
      out.eig_re.resize(keep);
      out.eig_im.assign(keep, 0.0);
      for (std::size_t i = 0; i < keep; ++i) {
        out.r(i, i) = sm(order[i], order[i]);
        out.eig_re[i] = vals[order[i]];
      }
      out.converged = nconv >= nev;
      if (!out.converged) out.failure = "no convergence within restart budget";
      return out;
    }

    // New decomposition: V_keep diag + residual coupling.
    {
      T* dst = v.col(keep);
      const T* src = v.col(m);
      for (std::size_t i = 0; i < n; ++i) dst[i] = src[i];
    }
    s.fill(T(0));
    for (std::size_t i = 0; i < keep; ++i) {
      s(i, i) = sm(order[i], order[i]);
      const double val = (i < nconv) ? 0.0 : spike[i];  // lock converged
      s(keep, i) = NumTraits<T>::from_double(val);
      s(i, keep) = s(keep, i);  // arrowhead column (enters at next expansion)
    }
    k = keep;
  }
  out.failure = "restart loop left unexpectedly";
  return out;
}

}  // namespace mfla
