// Arnoldi expansion with iterated classical Gram–Schmidt (DGKS criterion),
// the inner loop of the Krylov–Schur solver.
//
// Everything runs in the working scalar type T: inner products, norms and
// the normalization — the paper's subject is precisely how these kernels
// behave in each format.
//
// The hot loop is allocation-free at steady state: every scratch vector a
// step needs (the matvec target w, the projection coefficients h, the
// discard buffer for deflation retries) lives in an ArnoldiWorkspace<T>
// owned by the solver and sized once per solve. The workspace-free
// arnoldi_step overload below keeps the one-off call sites (tests,
// benchmarks) unchanged; it allocates a fresh workspace per call.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "arith/traits.hpp"
#include "kernels/vector_ops.hpp"
#include "dense/matrix.hpp"
#include "support/rng.hpp"

namespace mfla {

enum class ExpandStatus {
  ok,          // regular step, beta > 0
  deflated,    // invariant subspace found: beta = 0, fresh random direction
  failed,      // non-finite values appeared (overflow / NaR poisoning)
};

/// Per-solve scratch for the Arnoldi inner loop. reserve() sizes every
/// buffer for the largest step of the solve; after that, arnoldi_step
/// performs zero heap allocations on its regular (non-deflation) path —
/// verified by tests/test_arnoldi_workspace.cpp with an operator-new hook.
template <typename T>
struct ArnoldiWorkspace {
  std::vector<T> w;     // n: matvec target / candidate basis vector
  std::vector<T> h;     // maxdim+1: projection coefficients of one step
  std::vector<T> dump;  // maxdim+1: discarded coefficients (deflation only)

  void reserve(std::size_t n, std::size_t maxdim) {
    w.resize(n);
    h.resize(maxdim + 1);
    dump.resize(maxdim + 1);
  }
};

namespace detail {

/// Orthogonalize w against the first `cols` columns of v with iterated CGS
/// (eta = 1/sqrt(2)); coefficients are accumulated into h[0..cols), which
/// is (re)initialized here — callers may pass recycled buffers.
/// Returns the norm of the orthogonalized w (in T), or NaR/NaN on failure.
template <typename T>
T orthogonalize(const DenseMatrix<T>& v, std::size_t cols, T* w, T* h, T norm_before) {
  const std::size_t n = v.rows();
  const T eta = NumTraits<T>::from_double(0.7071067811865475);
  for (std::size_t j = 0; j < cols; ++j) h[j] = T(0);
  T norm_after = norm_before;
  for (int pass = 0; pass < 3; ++pass) {
    for (std::size_t j = 0; j < cols; ++j) {
      const T c = kernels::dot(n, v.col(j), w);
      h[j] += c;
      kernels::axpy(n, -c, v.col(j), w);
    }
    norm_after = kernels::nrm2(n, w);
    if (!is_number(norm_after)) return norm_after;
    if (norm_after > eta * norm_before) break;  // DGKS: no further pass needed
    norm_before = norm_after;
  }
  return norm_after;
}

/// Fill w with a random unit vector (generated in double, converted to T).
template <typename T>
void random_direction(std::size_t n, Rng& rng, T* w) {
  const std::vector<double> u = rng.unit_vector(n);
  for (std::size_t i = 0; i < n; ++i) w[i] = NumTraits<T>::from_double(u[i]);
}

}  // namespace detail

/// The post-matvec tail of one Arnoldi step: assumes ws.w already holds
/// A v_j (callers run the matvec — singly via arnoldi_step, or batched
/// across several independent expansions via arnoldi_step_batch, which is
/// what makes the split worthwhile: the matvec is the only part of a step
/// that can amortize over lanes; everything from here on is sequential in
/// j). Orthogonalizes ws.w against V[:, 0..j], stores coefficients into
/// s(0..j, j) and the subdiagonal beta into s(j+1, j), writes
/// v_{j+1} = w/beta.
///
/// On invariant-subspace breakdown (beta ~ 0) the subdiagonal is set to
/// exact zero and a fresh random direction (orthogonalized) continues the
/// basis, as in ArnoldiMethod.jl.
///
/// `ws` must be reserve()d for (v.rows(), at least j+1); all scratch comes
/// from it, so the regular path allocates nothing.
template <typename T>
ExpandStatus arnoldi_finish_step(DenseMatrix<T>& v, DenseMatrix<T>& s, std::size_t j, Rng& rng,
                                 ArnoldiWorkspace<T>& ws) {
  const std::size_t n = v.rows();
  T* const w = ws.w.data();

  const T norm_before = kernels::nrm2(n, w);
  if (!is_number(norm_before)) return ExpandStatus::failed;

  T* const h = ws.h.data();
  T beta = detail::orthogonalize(v, j + 1, w, h, norm_before);
  if (!is_number(beta)) return ExpandStatus::failed;
  for (std::size_t i = 0; i <= j; ++i) {
    if (!is_number(h[i])) return ExpandStatus::failed;
    s(i, j) = h[i];
  }

  // Breakdown threshold: beta negligible relative to ||A v_j||.
  const double beta_d = NumTraits<T>::to_double(beta);
  const double scale_d = NumTraits<T>::to_double(norm_before);
  const bool breakdown =
      beta_d <= 0.0 || beta_d < NumTraits<T>::epsilon() * scale_d;

  if (!breakdown) {
    const T inv = T(1) / beta;
    T* next = v.col(j + 1);
    for (std::size_t i = 0; i < n; ++i) next[i] = w[i] * inv;
    s(j + 1, j) = beta;
    return ExpandStatus::ok;
  }

  // Invariant subspace: restart the basis with a random direction. A random
  // unit vector's component orthogonal to a (j+1)-dimensional subspace has
  // magnitude ~ sqrt(1 - (j+1)/n), so accept well below that scale and only
  // reject the rounding-noise floor.
  s(j + 1, j) = T(0);
  const double accept = std::max(0.05 / std::sqrt(static_cast<double>(n)),
                                 64.0 * NumTraits<T>::epsilon());
  for (int attempt = 0; attempt < 6; ++attempt) {
    detail::random_direction(n, rng, w);
    const T nrm = detail::orthogonalize(v, j + 1, w, ws.dump.data(), T(1));
    if (!is_number(nrm)) return ExpandStatus::failed;
    if (NumTraits<T>::to_double(nrm) > accept) {
      const T inv = T(1) / nrm;
      T* next = v.col(j + 1);
      for (std::size_t i = 0; i < n; ++i) next[i] = w[i] * inv;
      return ExpandStatus::deflated;
    }
  }
  return ExpandStatus::failed;
}

/// One Arnoldi step: w = A v_j, then the orthogonalization/breakdown tail
/// (arnoldi_finish_step above).
template <typename T, class Op>
ExpandStatus arnoldi_step(const Op& a, DenseMatrix<T>& v, DenseMatrix<T>& s, std::size_t j,
                          Rng& rng, ArnoldiWorkspace<T>& ws) {
  a.matvec(v.col(j), ws.w.data());
  return arnoldi_finish_step(v, s, j, rng, ws);
}

/// Convenience overload with a throwaway workspace (one-off call sites).
template <typename T, class Op>
ExpandStatus arnoldi_step(const Op& a, DenseMatrix<T>& v, DenseMatrix<T>& s, std::size_t j,
                          Rng& rng) {
  ArnoldiWorkspace<T> ws;
  ws.reserve(v.rows(), j + 1);
  return arnoldi_step(a, v, s, j, rng, ws);
}

/// One independent Arnoldi expansion participating in a batched step: its
/// own basis, Rayleigh matrix, step index, RNG and workspace — only the
/// operator is shared. status receives the lane's ExpandStatus after each
/// arnoldi_step_batch call.
template <typename T>
struct ArnoldiBatchLane {
  DenseMatrix<T>* v = nullptr;
  DenseMatrix<T>* s = nullptr;
  std::size_t j = 0;
  Rng* rng = nullptr;
  ArnoldiWorkspace<T>* ws = nullptr;
  ExpandStatus status = ExpandStatus::ok;
};

/// Advance k independent Arnoldi expansions of the same operator by one
/// step each, batching the k matvecs into one a.matvec_block call (one
/// traversal of A; kernels/spmm.hpp) and then running each lane's
/// sequential tail. Bit-identical to calling arnoldi_step per lane — the
/// matvec block is bit-identical to k matvecs by the SpMM contract, and
/// the tails are the very same code on the very same inputs.
///
/// All lanes must have v->rows() == a's dimension and a reserve()d
/// workspace. xblk/wblk are caller-owned staging buffers (grown here,
/// recycled across calls — the steady-state path allocates nothing once
/// they are warm).
template <typename T, class Op>
void arnoldi_step_batch(const Op& a, ArnoldiBatchLane<T>* lanes, std::size_t k,
                        std::vector<T>& xblk, std::vector<T>& wblk) {
  if (k == 0) return;
  const std::size_t n = lanes[0].v->rows();
  if (xblk.size() < n * k) xblk.resize(n * k);
  if (wblk.size() < n * k) wblk.resize(n * k);
  for (std::size_t c = 0; c < k; ++c) {
    const T* src = lanes[c].v->col(lanes[c].j);
    std::copy(src, src + n, xblk.data() + c * n);
  }
  a.matvec_block(xblk.data(), n, k, wblk.data(), n);
  for (std::size_t c = 0; c < k; ++c) {
    ArnoldiBatchLane<T>& lane = lanes[c];
    const T* src = wblk.data() + c * n;
    std::copy(src, src + n, lane.ws->w.data());
    lane.status = arnoldi_finish_step(*lane.v, *lane.s, lane.j, *lane.rng, *lane.ws);
  }
}

}  // namespace mfla
