// Rendering of experiment results: CSV series (one file per panel, exactly
// the data behind the paper's figures), ASCII plots for the terminal, and
// summary tables.
#pragma once

#include <string>
#include <vector>

#include "core/distribution.hpp"

namespace mfla {

/// CSV with columns: percentile, then one column per format (log10 relative
/// error; empty cells once the series enters its failure tail). A trailing
/// comment records the ∞ω/∞σ counts per format.
void write_distribution_csv(const std::string& path, const std::vector<Distribution>& series);

/// Terminal rendering of a cumulative-distribution panel (percentile on x,
/// log10 relative error on y), one symbol per format.
[[nodiscard]] std::string ascii_panel(const std::vector<Distribution>& series,
                                      const std::string& title, int width = 72, int height = 18);

/// Summary table: per format, the p25/median/p75 of log10 relative error
/// plus failure tallies.
[[nodiscard]] std::string summary_table(const std::vector<Distribution>& series,
                                        const std::string& title);

/// Ensure the output directory exists (best-effort mkdir -p).
void ensure_directory(const std::string& path);

/// Ensure the directory containing `path` exists (no-op for bare names).
void ensure_parent_directory(const std::string& path);

}  // namespace mfla
