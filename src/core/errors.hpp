// Error metrics and outcome classification (paper §2.2 end / §3).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "dense/matrix.hpp"

namespace mfla {

/// Run outcome categories used throughout the figures:
///   ok            — converged, finite errors;
///   no_convergence — the Arnoldi method did not converge (∞ω);
///   range_exceeded — matrix entries fell outside the format's dynamic
///                    range during conversion (∞σ);
///   fault         — the solve aborted (exception, breakdown) and the
///                   engine's solve guard recorded it as a structured
///                   failure instead of propagating; counted with ∞ω in
///                   the distributions.
enum class RunOutcome { ok, no_convergence, range_exceeded, fault };

/// Durability-layer I/O failure (journal, CSV, dataset files). Lets
/// callers (mfla_experiment exit codes) distinguish "the disk said no"
/// from usage errors and solve failures.
class IoError : public std::runtime_error {
 public:
  explicit IoError(const std::string& what) : std::runtime_error(what) {}
};

struct ErrorPair {
  double absolute = std::numeric_limits<double>::infinity();
  double relative = std::numeric_limits<double>::infinity();
};

/// L2 errors over the first nev entries of the matched eigenvalue vectors.
[[nodiscard]] inline ErrorPair eigenvalue_errors(const std::vector<double>& ref,
                                                 const std::vector<double>& cmp,
                                                 std::size_t nev) {
  ErrorPair e;
  double diff2 = 0.0, ref2 = 0.0;
  for (std::size_t i = 0; i < nev && i < ref.size() && i < cmp.size(); ++i) {
    const double d = ref[i] - cmp[i];
    diff2 += d * d;
    ref2 += ref[i] * ref[i];
  }
  e.absolute = std::sqrt(diff2);
  e.relative = ref2 > 0 ? e.absolute / std::sqrt(ref2) : e.absolute;
  return e;
}

/// Frobenius errors over the first nev columns of the matched eigenvector
/// matrices (the stacked-L2 norm of the paper).
[[nodiscard]] inline ErrorPair eigenvector_errors(const DenseMatrix<double>& ref,
                                                  const DenseMatrix<double>& cmp,
                                                  std::size_t nev) {
  ErrorPair e;
  double diff2 = 0.0, ref2 = 0.0;
  const std::size_t cols = std::min({nev, ref.cols(), cmp.cols()});
  for (std::size_t j = 0; j < cols; ++j) {
    for (std::size_t i = 0; i < ref.rows(); ++i) {
      const double d = ref(i, j) - cmp(i, j);
      diff2 += d * d;
      ref2 += ref(i, j) * ref(i, j);
    }
  }
  e.absolute = std::sqrt(diff2);
  e.relative = ref2 > 0 ? e.absolute / std::sqrt(ref2) : e.absolute;
  return e;
}

}  // namespace mfla
