// Error metrics and outcome classification (paper §2.2 end / §3).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "dense/matrix.hpp"

namespace mfla {

/// Run outcome categories used throughout the figures:
///   ok            — converged, finite errors;
///   no_convergence — the Arnoldi method did not converge (∞ω);
///   range_exceeded — matrix entries fell outside the format's dynamic
///                    range during conversion (∞σ).
enum class RunOutcome { ok, no_convergence, range_exceeded };

struct ErrorPair {
  double absolute = std::numeric_limits<double>::infinity();
  double relative = std::numeric_limits<double>::infinity();
};

/// L2 errors over the first nev entries of the matched eigenvalue vectors.
[[nodiscard]] inline ErrorPair eigenvalue_errors(const std::vector<double>& ref,
                                                 const std::vector<double>& cmp,
                                                 std::size_t nev) {
  ErrorPair e;
  double diff2 = 0.0, ref2 = 0.0;
  for (std::size_t i = 0; i < nev && i < ref.size() && i < cmp.size(); ++i) {
    const double d = ref[i] - cmp[i];
    diff2 += d * d;
    ref2 += ref[i] * ref[i];
  }
  e.absolute = std::sqrt(diff2);
  e.relative = ref2 > 0 ? e.absolute / std::sqrt(ref2) : e.absolute;
  return e;
}

/// Frobenius errors over the first nev columns of the matched eigenvector
/// matrices (the stacked-L2 norm of the paper).
[[nodiscard]] inline ErrorPair eigenvector_errors(const DenseMatrix<double>& ref,
                                                  const DenseMatrix<double>& cmp,
                                                  std::size_t nev) {
  ErrorPair e;
  double diff2 = 0.0, ref2 = 0.0;
  const std::size_t cols = std::min({nev, ref.cols(), cmp.cols()});
  for (std::size_t j = 0; j < cols; ++j) {
    for (std::size_t i = 0; i < ref.rows(); ++i) {
      const double d = ref(i, j) - cmp(i, j);
      diff2 += d * d;
      ref2 += ref(i, j) * ref(i, j);
    }
  }
  e.absolute = std::sqrt(diff2);
  e.relative = ref2 > 0 ? e.absolute / std::sqrt(ref2) : e.absolute;
  return e;
}

}  // namespace mfla
