// Coordinate-format sparse matrix (assembly format).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace mfla {

struct Triplet {
  std::uint32_t row = 0;
  std::uint32_t col = 0;
  double value = 0.0;
};

class CooMatrix {
 public:
  CooMatrix() = default;
  CooMatrix(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] const std::vector<Triplet>& triplets() const noexcept { return triplets_; }
  [[nodiscard]] std::size_t nnz() const noexcept { return triplets_.size(); }

  void reserve(std::size_t n) { triplets_.reserve(n); }

  void add(std::uint32_t r, std::uint32_t c, double v) {
    if (v == 0.0) return;
    triplets_.push_back({r, c, v});
    if (r >= rows_) rows_ = r + 1;
    if (c >= cols_) cols_ = c + 1;
  }

  void set_shape(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
  }

  /// Sort by (row, col) and sum duplicate entries in place.
  void compress() {
    std::sort(triplets_.begin(), triplets_.end(), [](const Triplet& a, const Triplet& b) {
      return a.row != b.row ? a.row < b.row : a.col < b.col;
    });
    std::size_t out = 0;
    for (std::size_t i = 0; i < triplets_.size();) {
      Triplet t = triplets_[i];
      std::size_t j = i + 1;
      while (j < triplets_.size() && triplets_[j].row == t.row && triplets_[j].col == t.col) {
        t.value += triplets_[j].value;
        ++j;
      }
      if (t.value != 0.0) triplets_[out++] = t;
      i = j;
    }
    triplets_.resize(out);
  }

  [[nodiscard]] CooMatrix transposed() const {
    CooMatrix t(cols_, rows_);
    t.reserve(triplets_.size());
    for (const auto& e : triplets_) t.add(e.col, e.row, e.value);
    return t;
  }

  /// Is the (compressed) matrix symmetric to within `tol`?
  [[nodiscard]] bool is_symmetric(double tol = 0.0) const;

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<Triplet> triplets_;
};

inline bool CooMatrix::is_symmetric(double tol) const {
  if (rows_ != cols_) return false;
  CooMatrix a = *this;
  a.compress();
  CooMatrix b = transposed();
  b.compress();
  const auto& ta = a.triplets();
  const auto& tb = b.triplets();
  if (ta.size() != tb.size()) return false;
  for (std::size_t i = 0; i < ta.size(); ++i) {
    if (ta[i].row != tb[i].row || ta[i].col != tb[i].col) return false;
    const double d = ta[i].value - tb[i].value;
    if (d > tol || d < -tol) return false;
  }
  return true;
}

}  // namespace mfla
