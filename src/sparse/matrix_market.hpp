// Matrix Market (.mtx) reader/writer.
//
// Supports the subset the study needs (and the Network Repository emits):
// object `matrix`, formats `coordinate` and `array`, fields `real`,
// `integer` and `pattern`, symmetries `general`, `symmetric` and
// `skew-symmetric`. Symmetric storage is expanded to full storage on read.
#pragma once

#include <iosfwd>
#include <string>

#include "sparse/coo.hpp"

namespace mfla {

struct MatrixMarketHeader {
  bool coordinate = true;  // false: array (dense)
  std::string field = "real";
  std::string symmetry = "general";
};

/// Parse a Matrix Market stream into an (expanded, compressed) COO matrix.
/// Throws std::runtime_error with a line-diagnostic message on bad input.
[[nodiscard]] CooMatrix read_matrix_market(std::istream& in, MatrixMarketHeader* header = nullptr);

/// Convenience: read from a file path.
[[nodiscard]] CooMatrix read_matrix_market_file(const std::string& path,
                                                MatrixMarketHeader* header = nullptr);

/// Write a COO matrix in coordinate/real/general form.
void write_matrix_market(std::ostream& out, const CooMatrix& m);

}  // namespace mfla
