#include "sparse/edge_list.hpp"

#include <cctype>
#include <cstdint>
#include <fstream>
#include <istream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace mfla {

namespace {
struct RawEdge {
  std::uint64_t u, v;
  double w;
};
}  // namespace

CooMatrix read_edge_list(std::istream& in, const EdgeListOptions& opts) {
  std::vector<RawEdge> edges;
  std::unordered_map<std::uint64_t, std::uint32_t> remap;
  std::string line;
  while (std::getline(in, line)) {
    // Normalize separators: commas become spaces.
    for (char& c : line) {
      if (c == ',' || c == ';' || c == '\t') c = ' ';
    }
    std::size_t i = 0;
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
    if (i == line.size() || line[i] == '%' || line[i] == '#') continue;
    std::istringstream ls(line.substr(i));
    std::uint64_t u = 0, v = 0;
    double w = 1.0;
    ls >> u >> v;
    if (ls.fail()) throw std::runtime_error("edge list: bad line '" + line + "'");
    if (opts.use_weights) {
      double maybe_w;
      if (ls >> maybe_w) w = maybe_w;
    }
    edges.push_back({u, v, w});
  }
  // Compact vertex ids in first-seen order (deterministic).
  auto id_of = [&remap](std::uint64_t raw) {
    auto [it, inserted] = remap.try_emplace(raw, static_cast<std::uint32_t>(remap.size()));
    return it->second;
  };
  CooMatrix coo;
  coo.reserve(edges.size());
  for (const auto& e : edges) {
    coo.add(id_of(e.u), id_of(e.v), e.w);
  }
  const std::size_t n = remap.size();
  coo.set_shape(n, n);
  coo.compress();
  return coo;
}

CooMatrix read_edge_list_file(const std::string& path, const EdgeListOptions& opts) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("edge list: cannot open '" + path + "'");
  return read_edge_list(in, opts);
}

}  // namespace mfla
