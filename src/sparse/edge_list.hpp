// Edge-list (.edges) reader, as distributed by the Network Repository.
//
// Lines are "u v" or "u v w" (optionally comma-separated); '%' and '#'
// start comments. Vertex ids may be 0- or 1-based and need not be
// contiguous — ids are compacted to a dense range, mirroring the paper's
// "general parsing rules" cleanup stage.
#pragma once

#include <iosfwd>
#include <string>

#include "sparse/coo.hpp"

namespace mfla {

struct EdgeListOptions {
  bool use_weights = true;  // take the third column as weight when present
};

/// Parse an edge list into a (square) adjacency COO matrix.
[[nodiscard]] CooMatrix read_edge_list(std::istream& in, const EdgeListOptions& opts = {});

[[nodiscard]] CooMatrix read_edge_list_file(const std::string& path,
                                            const EdgeListOptions& opts = {});

}  // namespace mfla
