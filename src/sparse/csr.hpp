// Compressed sparse row matrix, templated over the scalar type.
//
// The matvec delegates to kernels::spmv, which accumulates in the working
// format T — this is the central kernel whose low-precision behavior the
// study measures.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "arith/traits.hpp"
#include "kernels/spmm.hpp"
#include "kernels/spmv.hpp"
#include "sparse/coo.hpp"

namespace mfla {

template <typename T>
class CsrMatrix {
 public:
  CsrMatrix() = default;

  [[nodiscard]] static CsrMatrix from_coo(const CooMatrix& coo) {
    CooMatrix c = coo;
    c.compress();
    CsrMatrix m;
    m.rows_ = c.rows();
    m.cols_ = c.cols();
    m.row_ptr_.assign(m.rows_ + 1, 0);
    m.col_idx_.reserve(c.nnz());
    m.values_.reserve(c.nnz());
    for (const auto& t : c.triplets()) ++m.row_ptr_[t.row + 1];
    for (std::size_t i = 0; i < m.rows_; ++i) m.row_ptr_[i + 1] += m.row_ptr_[i];
    for (const auto& t : c.triplets()) {
      m.col_idx_.push_back(t.col);
      m.values_.push_back(NumTraits<T>::from_double(t.value));
    }
    m.rebuild_spmv_plan();
    return m;
  }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t nnz() const noexcept { return values_.size(); }
  [[nodiscard]] const std::vector<std::uint32_t>& row_ptr() const noexcept { return row_ptr_; }
  [[nodiscard]] const std::vector<std::uint32_t>& col_idx() const noexcept { return col_idx_; }
  [[nodiscard]] const std::vector<T>& values() const noexcept { return values_; }
  /// Explicit mutable access (there is deliberately no non-const values():
  /// a read through it would silently cost the fast path). Mutation drops
  /// the precomputed SpMV plan — it indexes the operation tables by value
  /// bits — so matvec takes the generic kernel until rebuild_spmv_plan()
  /// is called: slower, never incorrect.
  [[nodiscard]] std::vector<T>& mutable_values() noexcept {
    spmv_plan_.clear();
#if MFLA_ENABLE_LUT
    sell_plan_.clear();
    sell16_plan_.clear();
#endif
    return values_;
  }

  /// Is the precomputed offset plan current? (Both matvec and matvec_block
  /// fall back to the generic kernels when it is not — mutable_values()
  /// invalidates it for *all* planned paths at once.)
  [[nodiscard]] bool has_spmv_plan() const noexcept {
    return kernels::spmv_plan_supported<T>() && spmv_plan_.size() == values_.size() &&
           !values_.empty();
  }

  /// y := A x, accumulated in T. 8-bit formats with a current offset plan
  /// take the precomputed-offset LUT kernel (bit-identical to the generic
  /// dispatch; kernels/spmv.hpp).
  void matvec(const T* x, T* y) const {
#if MFLA_ENABLE_LUT
    if constexpr (kernels::spmv_plan_supported<T>()) {
      if (spmv_plan_.size() == values_.size() && kernels::lut_enabled()) {
        kernels::spmv_planned(rows_, row_ptr_.data(), col_idx_.data(), spmv_plan_.data(), x, y,
                              &sell_plan_, &sell16_plan_);
        return;
      }
    }
#endif
    kernels::spmv(rows_, row_ptr_.data(), col_idx_.data(), values_.data(), x, y);
  }

  /// Y := A X for k right-hand sides (column-major, leading dimensions ldx
  /// and ldy) — bit-identical to k matvec calls, but one traversal of the
  /// matrix advances all k accumulation chains (kernels/spmm.hpp). Shares
  /// the offset plan with matvec, including its invalidation rules.
  void matvec_block(const T* x, std::size_t ldx, std::size_t k, T* y, std::size_t ldy) const {
#if MFLA_ENABLE_LUT
    if constexpr (kernels::spmv_plan_supported<T>()) {
      if (spmv_plan_.size() == values_.size() && kernels::lut_enabled()) {
        kernels::spmm_planned(rows_, cols_, row_ptr_.data(), col_idx_.data(),
                              spmv_plan_.data(), k, x, ldx, y, ldy);
        return;
      }
    }
#endif
    kernels::spmm(rows_, row_ptr_.data(), col_idx_.data(), values_.data(), k, x, ldx, y, ldy);
  }

  /// (Re)compute the per-nonzero LUT row offsets and, when the SIMD tier
  /// is compiled in, the SELL slice plans over them — height 8 for the
  /// interleaved-scalar kernel every vector rung runs, additionally
  /// height 16 only if the AVX-512 SELL-16 gather dispatch is un-pinned
  /// (kernels::kSpmvSell16Dispatch; it measured slower, so by default no
  /// height-16 plan is built or consumed). No-op for formats wider than
  /// 8 bits. Called by the constructors; call manually after editing
  /// values() in place.
  void rebuild_spmv_plan() {
    if constexpr (kernels::spmv_plan_supported<T>()) {
      spmv_plan_ = kernels::build_spmv_plan(values_.data(), values_.size());
#if MFLA_ENABLE_LUT
      if (kernels::simd_compiled()) {
        sell_plan_ = kernels::build_sell_plan(rows_, cols_, row_ptr_.data(), col_idx_.data(),
                                              spmv_plan_.data());
      }
      if (kernels::kSpmvSell16Dispatch && kernels::simd_avx512_compiled()) {
        sell16_plan_ = kernels::build_sell_plan(rows_, cols_, row_ptr_.data(),
                                                col_idx_.data(), spmv_plan_.data(), 16);
      }
#endif
    }
  }

  /// Entry lookup (binary search within the row — col_idx_ is sorted within
  /// each row after CooMatrix::compress); 0 if absent.
  [[nodiscard]] T at(std::size_t i, std::size_t j) const noexcept {
    const auto* first = col_idx_.data() + row_ptr_[i];
    const auto* last = col_idx_.data() + row_ptr_[i + 1];
    const auto* it = std::lower_bound(first, last, static_cast<std::uint32_t>(j));
    if (it == last || *it != j) return T(0);
    return values_[static_cast<std::size_t>(it - col_idx_.data())];
  }

  /// Convert the value array into another scalar type (same pattern).
  template <typename U>
  [[nodiscard]] CsrMatrix<U> convert() const {
    CsrMatrix<U> m;
    m.rows_ = rows_;
    m.cols_ = cols_;
    m.row_ptr_ = row_ptr_;
    m.col_idx_ = col_idx_;
    m.values_.reserve(values_.size());
    for (const T& v : values_) {
      m.values_.push_back(NumTraits<U>::from_double(NumTraits<T>::to_double(v)));
    }
    m.rebuild_spmv_plan();
    return m;
  }

  template <typename U>
  friend class CsrMatrix;

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<std::uint32_t> row_ptr_{0};
  std::vector<std::uint32_t> col_idx_;
  std::vector<T> values_;
  // Per-nonzero LUT row offsets (8-bit formats only; empty otherwise or
  // after in-place value mutation). 2 bytes per nonzero.
  std::vector<std::uint16_t> spmv_plan_;
#if MFLA_ENABLE_LUT
  // SELL slice plans over the offsets (SIMD tier; kernels/simd.hpp):
  // height 8 for the interleaved-scalar kernel, height 16 for the AVX-512
  // gather kernel. Invalidated together with spmv_plan_ by
  // mutable_values().
  kernels::SellPlan sell_plan_;
  kernels::SellPlan sell16_plan_;
#endif
};

/// Does any entry of the (double) matrix fall outside the representable
/// dynamic range of format T (maps to 0, inf or NaN)? This is the paper's
/// ∞σ pre-check.
template <typename T>
[[nodiscard]] bool matrix_exceeds_range(const CsrMatrix<double>& a) {
  for (const double v : a.values()) {
    if (conversion_loses_value<T>(v)) return true;
  }
  return false;
}

}  // namespace mfla
