#include "sparse/matrix_market.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace mfla {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) { return std::tolower(c); });
  return s;
}

/// Line-counting reader skipping comments and blanks, so errors can point
/// at the offending 1-based line of the input.
struct LineReader {
  std::istream& in;
  long lineno = 0;

  /// Next non-comment, non-blank line; returns false on EOF.
  bool next_data_line(std::string& line) {
    while (std::getline(in, line)) {
      ++lineno;
      std::size_t i = 0;
      while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
      if (i == line.size()) continue;
      if (line[i] == '%' || line[i] == '#') continue;
      return true;
    }
    return false;
  }
};

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("matrix market: " + what);
}

[[noreturn]] void fail_at(long lineno, const std::string& what) {
  fail("line " + std::to_string(lineno) + ": " + what);
}

}  // namespace

CooMatrix read_matrix_market(std::istream& in, MatrixMarketHeader* header) {
  LineReader reader{in};
  std::string line;
  if (!std::getline(in, line)) fail("empty input");
  reader.lineno = 1;

  MatrixMarketHeader h;
  {
    std::istringstream banner(lower(line));
    std::string tag, object, format;
    banner >> tag >> object >> format >> h.field >> h.symmetry;
    if (tag != "%%matrixmarket") fail("missing %%MatrixMarket banner");
    if (object != "matrix") fail("unsupported object '" + object + "'");
    if (format == "coordinate") {
      h.coordinate = true;
    } else if (format == "array") {
      h.coordinate = false;
    } else {
      fail("unsupported format '" + format + "'");
    }
    if (h.field != "real" && h.field != "integer" && h.field != "pattern") {
      fail("unsupported field '" + h.field + "'");
    }
    if (h.symmetry.empty()) h.symmetry = "general";
    if (h.symmetry != "general" && h.symmetry != "symmetric" && h.symmetry != "skew-symmetric") {
      fail("unsupported symmetry '" + h.symmetry + "'");
    }
    if (!h.coordinate && h.field == "pattern") fail("array format cannot be pattern");
  }
  if (header != nullptr) *header = h;

  if (!reader.next_data_line(line)) fail_at(reader.lineno, "missing size line");
  std::istringstream size_line(line);

  CooMatrix coo;
  if (h.coordinate) {
    long long rows = 0, cols = 0, entries = 0;
    size_line >> rows >> cols >> entries;
    if (size_line.fail() || rows < 0 || cols < 0 || entries < 0) {
      fail_at(reader.lineno, "bad size line");
    }
    coo.set_shape(static_cast<std::size_t>(rows), static_cast<std::size_t>(cols));
    coo.reserve(static_cast<std::size_t>(entries) * (h.symmetry == "general" ? 1 : 2));
    for (long long k = 0; k < entries; ++k) {
      if (!reader.next_data_line(line)) fail_at(reader.lineno, "unexpected EOF in entries");
      std::istringstream e(line);
      long long r = 0, c = 0;
      double v = 1.0;
      e >> r >> c;
      if (h.field != "pattern") e >> v;
      if (e.fail() || r < 1 || c < 1 || r > rows || c > cols) {
        fail_at(reader.lineno, "bad entry '" + line + "'");
      }
      const auto ri = static_cast<std::uint32_t>(r - 1);
      const auto ci = static_cast<std::uint32_t>(c - 1);
      coo.add(ri, ci, v);
      if (ri != ci) {
        if (h.symmetry == "symmetric") coo.add(ci, ri, v);
        if (h.symmetry == "skew-symmetric") coo.add(ci, ri, -v);
      }
    }
  } else {
    long long rows = 0, cols = 0;
    size_line >> rows >> cols;
    if (size_line.fail() || rows < 0 || cols < 0) fail_at(reader.lineno, "bad size line");
    coo.set_shape(static_cast<std::size_t>(rows), static_cast<std::size_t>(cols));
    // Array data is column-major; symmetric storage lists the lower
    // triangle, skew-symmetric the *strictly* lower triangle (the diagonal
    // is implicitly zero).
    for (long long j = 0; j < cols; ++j) {
      const long long i0 = (h.symmetry == "general")        ? 0
                           : (h.symmetry == "skew-symmetric") ? j + 1
                                                              : j;
      for (long long i = i0; i < rows; ++i) {
        if (!reader.next_data_line(line)) {
          fail_at(reader.lineno, "unexpected EOF in array data");
        }
        std::istringstream e(line);
        double v = 0.0;
        e >> v;
        if (e.fail()) fail_at(reader.lineno, "bad array value '" + line + "'");
        const auto ri = static_cast<std::uint32_t>(i);
        const auto ci = static_cast<std::uint32_t>(j);
        coo.add(ri, ci, v);
        if (i != j && h.symmetry == "symmetric") coo.add(ci, ri, v);
        if (i != j && h.symmetry == "skew-symmetric") coo.add(ci, ri, -v);
      }
    }
  }
  coo.compress();
  return coo;
}

CooMatrix read_matrix_market_file(const std::string& path, MatrixMarketHeader* header) {
  std::ifstream in(path);
  if (!in) fail("cannot open '" + path + "'");
  return read_matrix_market(in, header);
}

void write_matrix_market(std::ostream& out, const CooMatrix& m) {
  CooMatrix c = m;
  c.compress();
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << c.rows() << ' ' << c.cols() << ' ' << c.nnz() << '\n';
  out.precision(17);
  for (const auto& t : c.triplets()) {
    out << (t.row + 1) << ' ' << (t.col + 1) << ' ' << t.value << '\n';
  }
}

}  // namespace mfla
