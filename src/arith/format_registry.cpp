#include "arith/format_registry.hpp"

#include <stdexcept>

namespace mfla {

const std::vector<FormatInfo>& all_formats() {
  static const std::vector<FormatInfo> table = {
      {FormatId::ofp8_e4m3, "OFP8 E4M3", 8, "ofp8"},
      {FormatId::ofp8_e5m2, "OFP8 E5M2", 8, "ofp8"},
      {FormatId::takum8, "takum8", 8, "takum"},
      {FormatId::posit8, "posit8", 8, "posit"},
      {FormatId::float16, "float16", 16, "ieee"},
      {FormatId::takum16, "takum16", 16, "takum"},
      {FormatId::posit16, "posit16", 16, "posit"},
      {FormatId::bfloat16, "bfloat16", 16, "ieee"},
      {FormatId::float32, "float32", 32, "ieee"},
      {FormatId::takum32, "takum32", 32, "takum"},
      {FormatId::posit32, "posit32", 32, "posit"},
      {FormatId::float64, "float64", 64, "ieee"},
      {FormatId::takum64, "takum64", 64, "takum"},
      {FormatId::posit64, "posit64", 64, "posit"},
      {FormatId::float128, "float128", 128, "ieee"},
  };
  return table;
}

std::vector<FormatInfo> formats_for_width(int bits) {
  std::vector<FormatInfo> out;
  for (const auto& f : all_formats()) {
    if (f.bits == bits) out.push_back(f);
  }
  return out;
}

const FormatInfo& format_info(FormatId id) {
  for (const auto& f : all_formats()) {
    if (f.id == id) return f;
  }
  throw std::invalid_argument("unknown format id");
}

}  // namespace mfla
