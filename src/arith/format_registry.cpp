#include "arith/format_registry.hpp"

#include <stdexcept>

namespace mfla {

const std::vector<FormatInfo>& all_formats() {
  static const std::vector<FormatInfo> table = {
      {FormatId::ofp8_e4m3, "OFP8 E4M3", "e4m3", 8, "ofp8"},
      {FormatId::ofp8_e5m2, "OFP8 E5M2", "e5m2", 8, "ofp8"},
      {FormatId::takum8, "takum8", "t8", 8, "takum"},
      {FormatId::posit8, "posit8", "p8", 8, "posit"},
      {FormatId::float16, "float16", "f16", 16, "ieee"},
      {FormatId::takum16, "takum16", "t16", 16, "takum"},
      {FormatId::posit16, "posit16", "p16", 16, "posit"},
      {FormatId::bfloat16, "bfloat16", "bf16", 16, "ieee"},
      {FormatId::float32, "float32", "f32", 32, "ieee"},
      {FormatId::takum32, "takum32", "t32", 32, "takum"},
      {FormatId::posit32, "posit32", "p32", 32, "posit"},
      {FormatId::float64, "float64", "f64", 64, "ieee"},
      {FormatId::takum64, "takum64", "t64", 64, "takum"},
      {FormatId::posit64, "posit64", "p64", 64, "posit"},
      {FormatId::dd, "dd", "dd", 128, "dd", /*reference_only=*/true},
      {FormatId::float128, "float128", "f128", 128, "ieee", /*reference_only=*/true},
  };
  return table;
}

std::vector<FormatInfo> formats_for_width(int bits) {
  std::vector<FormatInfo> out;
  for (const auto& f : all_formats()) {
    if (f.bits == bits) out.push_back(f);
  }
  return out;
}

const FormatInfo& format_info(FormatId id) {
  for (const auto& f : all_formats()) {
    if (f.id == id) return f;
  }
  throw std::invalid_argument("unknown format id");
}

const std::string& format_key(FormatId id) { return format_info(id).key; }

namespace {

/// The keys a sweep may select: everything except the reference
/// arithmetics (dd fast tier, float128 oracle).
std::string valid_keys_list() {
  std::string keys;
  for (const auto& f : all_formats()) {
    if (f.reference_only) continue;
    if (!keys.empty()) keys += ' ';
    keys += f.key;
  }
  return keys;
}

}  // namespace

FormatId format_from_key(const std::string& key) {
  for (const auto& f : all_formats()) {
    if (f.key == key) return f.id;
  }
  throw std::invalid_argument("unknown format key '" + key + "' (valid keys: " +
                              valid_keys_list() + ")");
}

FormatId format_from_name(const std::string& name) {
  for (const auto& f : all_formats()) {
    if (f.name == name) return f.id;
  }
  throw std::invalid_argument("unknown format '" + name + "'");
}

std::vector<FormatId> parse_format_keys(const std::string& spec) {
  std::vector<FormatId> out;
  std::string token;
  for (std::size_t i = 0; i <= spec.size(); ++i) {
    if (i == spec.size() || spec[i] == ',') {
      if (!token.empty()) {
        const FormatId id = format_from_key(token);
        if (format_info(id).reference_only)
          throw std::invalid_argument(
              "'" + token + "' is the " + format_info(id).name +
              " reference arithmetic; it cannot be selected as a format under evaluation "
              "(pick the reference tier with --ref-tier / Sweep::reference_tier instead)");
        for (const FormatId seen : out) {
          if (seen == id)
            throw std::invalid_argument("duplicate format key '" + token + "'");
        }
        out.push_back(id);
        token.clear();
      }
    } else {
      token += spec[i];
    }
  }
  if (out.empty())
    throw std::invalid_argument("format list must name at least one key (valid keys: " +
                                valid_keys_list() + ")");
  return out;
}

}  // namespace mfla
