// Runtime registry of the number formats evaluated in the paper, plus a
// compile-time dispatcher mapping a runtime FormatId onto the concrete
// scalar type (so the experiment driver can loop over formats).
#pragma once

#include <string>
#include <vector>

#include "arith/traits.hpp"

namespace mfla {

enum class FormatId {
  ofp8_e4m3,
  ofp8_e5m2,
  posit8,
  takum8,
  float16,
  bfloat16,
  posit16,
  takum16,
  float32,
  posit32,
  takum32,
  float64,
  posit64,
  takum64,
  float128,
};

struct FormatInfo {
  FormatId id;
  std::string name;    // e.g. "takum16"
  int bits;            // storage width
  std::string family;  // "ieee" | "ofp8" | "posit" | "takum"
};

/// All formats of the study, in the paper's presentation order.
[[nodiscard]] const std::vector<FormatInfo>& all_formats();

/// The formats evaluated at a given bit width (8, 16, 32 or 64), in the
/// paper's legend order.
[[nodiscard]] std::vector<FormatInfo> formats_for_width(int bits);

[[nodiscard]] const FormatInfo& format_info(FormatId id);

template <typename T>
struct TypeTag {
  using type = T;
};

/// Invoke fn(TypeTag<T>{}) with the scalar type behind a FormatId.
template <class Fn>
decltype(auto) dispatch_format(FormatId id, Fn&& fn) {
  switch (id) {
    case FormatId::ofp8_e4m3: return fn(TypeTag<OFP8E4M3>{});
    case FormatId::ofp8_e5m2: return fn(TypeTag<OFP8E5M2>{});
    case FormatId::posit8: return fn(TypeTag<Posit8>{});
    case FormatId::takum8: return fn(TypeTag<Takum8>{});
    case FormatId::float16: return fn(TypeTag<Float16>{});
    case FormatId::bfloat16: return fn(TypeTag<BFloat16>{});
    case FormatId::posit16: return fn(TypeTag<Posit16>{});
    case FormatId::takum16: return fn(TypeTag<Takum16>{});
    case FormatId::float32: return fn(TypeTag<float>{});
    case FormatId::posit32: return fn(TypeTag<Posit32>{});
    case FormatId::takum32: return fn(TypeTag<Takum32>{});
    case FormatId::float64: return fn(TypeTag<double>{});
    case FormatId::posit64: return fn(TypeTag<Posit64>{});
    case FormatId::takum64: return fn(TypeTag<Takum64>{});
    case FormatId::float128: return fn(TypeTag<Quad>{});
  }
  return fn(TypeTag<double>{});  // unreachable
}

}  // namespace mfla
