// Runtime registry of the number formats evaluated in the paper, plus a
// compile-time dispatcher mapping a runtime FormatId onto the concrete
// scalar type (so the experiment driver can loop over formats).
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "arith/traits.hpp"

namespace mfla {

enum class FormatId {
  ofp8_e4m3,
  ofp8_e5m2,
  posit8,
  takum8,
  float16,
  bfloat16,
  posit16,
  takum16,
  float32,
  posit32,
  takum32,
  float64,
  posit64,
  takum64,
  dd,
  float128,
};

struct FormatInfo {
  FormatId id;
  std::string name;    // e.g. "takum16"
  std::string key;     // short CLI/API key, e.g. "t16"
  int bits;            // storage width
  std::string family;  // "ieee" | "ofp8" | "posit" | "takum" | "dd"
  /// Reference arithmetics (double-double fast tier, float128 oracle):
  /// selectable as a reference tier, never as a format under evaluation —
  /// parse_format_keys rejects them and valid-key listings omit them.
  bool reference_only = false;
};

/// All formats of the study, in the paper's presentation order.
[[nodiscard]] const std::vector<FormatInfo>& all_formats();

/// The formats evaluated at a given bit width (8, 16, 32 or 64), in the
/// paper's legend order.
[[nodiscard]] std::vector<FormatInfo> formats_for_width(int bits);

[[nodiscard]] const FormatInfo& format_info(FormatId id);

/// The short selection key of a format ("t16", "bf16", ...), as accepted
/// by format_from_key and the mfla_experiment --formats option.
[[nodiscard]] const std::string& format_key(FormatId id);

/// Resolve a short key ("t16") to its FormatId. Unknown keys throw
/// std::invalid_argument whose message lists every valid key.
[[nodiscard]] FormatId format_from_key(const std::string& key);

/// Resolve a full format name ("takum16") to its FormatId; throws
/// std::invalid_argument on unknown names.
[[nodiscard]] FormatId format_from_name(const std::string& name);

/// Parse a comma-separated list of short keys ("f16,bf16,t16") into
/// FormatIds. Empty lists, unknown keys, duplicate keys and "f128" (the
/// reference arithmetic is not a format under evaluation) all throw
/// std::invalid_argument with a message naming the offending token.
[[nodiscard]] std::vector<FormatId> parse_format_keys(const std::string& spec);

template <typename T>
struct TypeTag {
  using type = T;
};

/// Invoke fn(TypeTag<T>{}) with the scalar type behind a FormatId.
template <class Fn>
decltype(auto) dispatch_format(FormatId id, Fn&& fn) {
  switch (id) {
    case FormatId::ofp8_e4m3: return fn(TypeTag<OFP8E4M3>{});
    case FormatId::ofp8_e5m2: return fn(TypeTag<OFP8E5M2>{});
    case FormatId::posit8: return fn(TypeTag<Posit8>{});
    case FormatId::takum8: return fn(TypeTag<Takum8>{});
    case FormatId::float16: return fn(TypeTag<Float16>{});
    case FormatId::bfloat16: return fn(TypeTag<BFloat16>{});
    case FormatId::posit16: return fn(TypeTag<Posit16>{});
    case FormatId::takum16: return fn(TypeTag<Takum16>{});
    case FormatId::float32: return fn(TypeTag<float>{});
    case FormatId::posit32: return fn(TypeTag<Posit32>{});
    case FormatId::takum32: return fn(TypeTag<Takum32>{});
    case FormatId::float64: return fn(TypeTag<double>{});
    case FormatId::posit64: return fn(TypeTag<Posit64>{});
    case FormatId::takum64: return fn(TypeTag<Takum64>{});
    case FormatId::dd: return fn(TypeTag<DoubleDouble>{});
    case FormatId::float128: return fn(TypeTag<Quad>{});
  }
  // A FormatId forged from an out-of-range integer must not silently run
  // the sweep in double; make it a hard error instead.
  throw std::invalid_argument("dispatch_format: invalid FormatId " +
                              std::to_string(static_cast<int>(id)));
}

}  // namespace mfla
