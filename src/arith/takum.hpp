// Takum arithmetic (linear takums, Hunhold 2024).
//
// An n-bit takum encodes, after the sign bit S:
//   D      — 1-bit direction (sign of the characteristic),
//   R      — 3-bit regime rho,
//   C      — characteristic field of rho bits (D=1) or 7-rho bits (D=0),
//   M      — the remaining mantissa bits,
// with the characteristic
//   c = 2^rho - 1 + C          for D = 1   (c in [0, 254])
//   c = -2^(8-rho) + 1 + C     for D = 0   (c in [-255, -1])
// and value = (1 + f) * 2^c for positive encodings; negative values are the
// two's complement of the positive pattern. The characteristic and mantissa
// fields are truncated by the total width (missing bits read as zero), so
// even takum8 spans roughly 2^±239.
//
// Rounding is defined on the encoding (round-to-nearest-even of the integer
// pattern) with saturation at the extremes, exactly like posits.
#pragma once

#include <cstdint>
#include <string>

#include "arith/tapered.hpp"

namespace mfla {

template <int N>
struct TakumCodec {
  static_assert(N >= 8 && N <= 64, "takum widths below 8 bits are not defined");

  static constexpr int nbits = N;
  using Storage = detail::uint_for_bits<N>;

  static constexpr int max_exponent = 255;  // |c| <= 255 by construction

  [[nodiscard]] static const char* name() noexcept {
    static const std::string s = "takum" + std::to_string(N);
    return s.c_str();
  }

  [[nodiscard]] static Unpacked decode_positive(std::uint64_t p) noexcept {
    const std::uint64_t x = p << (64 - N);
    const int d = static_cast<int>((x >> 62) & 1);
    const int rho = static_cast<int>((x >> 59) & 7);
    const int cbits = d ? rho : 7 - rho;
    const int avail = N - 5;
    const int ctaken = (cbits < avail) ? cbits : avail;
    const std::uint64_t rest = x << 5;
    const std::uint64_t c_explicit = (ctaken > 0) ? rest >> (64 - ctaken) : 0;
    const auto c_field = static_cast<int>(c_explicit << (cbits - ctaken));
    const int c = d ? ((1 << rho) - 1 + c_field) : (-(1 << (8 - rho)) + 1 + c_field);
    const std::uint64_t rest2 = (ctaken < 64) ? rest << ctaken : 0;
    Unpacked u;
    u.e = c;
    u.m = (1ull << 63) | (rest2 >> 1);
    return u;
  }

  [[nodiscard]] static Storage encode_positive(int e, std::uint64_t m, bool guard,
                                               bool sticky) noexcept {
    constexpr std::uint64_t maxpos = (std::uint64_t{1} << (N - 1)) - 1;
    // The characteristic is limited to [-255, 254]; saturate outside it.
    // (Width-induced truncation saturates via round_payload's clamps.)
    if (e >= max_exponent) return static_cast<Storage>(maxpos);
    if (e < -max_exponent) return Storage{1};
    int d, rho, cbits;
    std::uint64_t c_field;
    if (e >= 0) {
      d = 1;
      rho = detail::bitlen(static_cast<unsigned>(e) + 1) - 1;
      cbits = rho;
      c_field = static_cast<std::uint64_t>(e - ((1 << rho) - 1));
    } else {
      d = 0;
      const int t = -e;
      const int fl = detail::bitlen(static_cast<unsigned>(t)) - 1;
      rho = 7 - fl;
      cbits = 7 - rho;
      c_field = static_cast<std::uint64_t>(e + (1 << (8 - rho)) - 1);
    }
    detail::BitBuilder bb;
    bb.put(static_cast<std::uint64_t>(d), 1);
    bb.put(static_cast<std::uint64_t>(rho), 3);
    bb.put(c_field, cbits);
    bb.put(m & ((1ull << 63) - 1), 63);
    bb.put(guard ? 1 : 0, 1);
    return detail::round_payload<Storage>(N, bb.extract(N - 1), sticky);
  }
};

template <int N>
using Takum = TaperedFloat<TakumCodec<N>>;

using Takum8 = Takum<8>;
using Takum16 = Takum<16>;
using Takum32 = Takum<32>;
using Takum64 = Takum<64>;

}  // namespace mfla
