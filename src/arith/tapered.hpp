// Exact arithmetic engine for tapered-precision formats (posit, takum).
//
// Both posit and takum share the following structure:
//   * monotone two's-complement encoding (negation = two's complement),
//   * a single zero (encoding 0) and a single NaR (encoding 10...0),
//   * a variable-length exponent prefix followed by fraction bits,
//   * rounding defined on the *encoding*: append the infinitely precise
//     tail to the n-bit pattern and round-to-nearest (ties-to-even) as an
//     integer, saturating at +/-maxpos (never to NaR) and +/-minpos (never
//     to zero).
//
// TaperedFloat<Codec> implements +,-,*,/ and sqrt with an exact 128-bit
// integer significand engine: every operation decodes to
// (sign, exponent, 64-bit significand), computes the exact result with
// guard/sticky information, and re-encodes with a single correct rounding.
// There is no intermediate float anywhere, so results are bit-exact
// regardless of host rounding modes.
#pragma once

#include <cstdint>
#include <ostream>
#include <type_traits>

#include "support/floatbits.hpp"
#include "support/int128.hpp"

namespace mfla {

/// A decoded finite non-zero value: magnitude = m * 2^(e - 63),
/// with m in [2^63, 2^64) (the MSB is the implicit leading 1).
struct Unpacked {
  bool neg = false;
  int e = 0;
  std::uint64_t m = 0;
};

namespace detail {

/// Assembles an "infinitely precise" encoding from the top down into a
/// 128-bit accumulator; bits pushed past the bottom turn into sticky.
class BitBuilder {
 public:
  void put(std::uint64_t bits, int width) noexcept {
    if (width <= 0) return;
    if (width < 64) bits &= (1ull << width) - 1;
    pos_ -= width;
    if (pos_ >= 0) {
      acc_ |= static_cast<u128>(bits) << pos_;
      return;
    }
    const int below = -pos_;
    if (below >= width) {
      sticky_ = sticky_ || bits != 0;
      return;
    }
    acc_ |= static_cast<u128>(bits) >> below;
    const std::uint64_t lost = bits & ((below >= 64) ? ~0ull : ((1ull << below) - 1));
    sticky_ = sticky_ || lost != 0;
  }

  struct Extracted {
    std::uint64_t payload;
    bool guard;
    bool rest;
  };

  /// Take the top `width` bits (width <= 63) as the payload; the next bit is
  /// the guard, everything below (plus overflow sticky) is `rest`.
  [[nodiscard]] Extracted extract(int width) const noexcept {
    Extracted r{};
    r.payload = static_cast<std::uint64_t>(acc_ >> (128 - width));
    r.guard = (acc_ >> (128 - width - 1)) & 1;
    r.rest = ((acc_ << (width + 1)) != 0) || sticky_;
    return r;
  }

 private:
  u128 acc_ = 0;
  int pos_ = 128;
  bool sticky_ = false;
};

/// Encoding-level round-to-nearest-even with posit/takum saturation:
/// payload+1 on round-up; never produces 0 (minpos clamp) and never crosses
/// into the NaR pattern (maxpos clamp).
template <typename Storage>
[[nodiscard]] Storage round_payload(int nbits, BitBuilder::Extracted x, bool extra_sticky) noexcept {
  const bool rest = x.rest || extra_sticky;
  std::uint64_t p = x.payload;
  if (x.guard && (rest || (p & 1))) ++p;
  const std::uint64_t top = 1ull << (nbits - 1);
  if (p >= top) p = top - 1;  // saturate below NaR
  if (p == 0) p = 1;          // never round a non-zero value to zero
  return static_cast<Storage>(p);
}

[[nodiscard]] constexpr int bitlen(unsigned v) noexcept {
  return v == 0 ? 0 : 32 - __builtin_clz(v);
}

}  // namespace detail

/// Number wrapper over a tapered codec. The Codec supplies:
///   nbits, Storage, name(),
///   decode_positive(uint64)  -> Unpacked (for payloads in (0, 2^(n-1))),
///   encode_positive(e, m, guard, sticky) -> payload in [1, 2^(n-1)-1],
///   max_exponent() (for traits/reporting).
template <class Codec>
class TaperedFloat {
 public:
  using Storage = typename Codec::Storage;
  static constexpr int kBits = Codec::nbits;
  static constexpr Storage kNaRBits = static_cast<Storage>(std::uint64_t{1} << (kBits - 1));
  static constexpr std::uint64_t kMask =
      (kBits >= 64) ? ~0ull : ((std::uint64_t{1} << kBits) - 1);

  constexpr TaperedFloat() noexcept : bits_(0) {}
  TaperedFloat(double d) noexcept : bits_(from_double(d).bits_) {}
  TaperedFloat(int i) noexcept : TaperedFloat(static_cast<double>(i)) {}

  [[nodiscard]] static constexpr TaperedFloat from_bits(Storage b) noexcept {
    TaperedFloat r;
    r.bits_ = static_cast<Storage>(b & kMask);
    return r;
  }
  [[nodiscard]] constexpr Storage bits() const noexcept { return bits_; }

  [[nodiscard]] static constexpr TaperedFloat nar() noexcept { return from_bits(kNaRBits); }
  [[nodiscard]] static constexpr TaperedFloat zero() noexcept { return from_bits(0); }
  [[nodiscard]] static constexpr TaperedFloat max_positive() noexcept {
    return from_bits(static_cast<Storage>(kNaRBits - 1));
  }
  [[nodiscard]] static constexpr TaperedFloat min_positive() noexcept { return from_bits(Storage{1}); }

  [[nodiscard]] constexpr bool is_nar() const noexcept { return bits_ == kNaRBits; }
  [[nodiscard]] constexpr bool is_zero() const noexcept { return bits_ == 0; }
  [[nodiscard]] constexpr bool is_negative() const noexcept {
    return !is_nar() && (bits_ >> (kBits - 1)) != 0;
  }

  // -- Conversions ---------------------------------------------------------
  [[nodiscard]] static TaperedFloat from_double(double d) noexcept {
    const DoubleParts p = decompose_double(d);
    if (p.nan || p.inf) return nar();
    if (p.zero) return zero();
    // |d| = sig * 2^(p.e), sig in [2^52, 2^53); re-anchor at 64 bits.
    const std::uint64_t m = p.sig << 11;
    const int e = p.e + 52;
    return make(p.neg, e, m, false, false);
  }

  [[nodiscard]] double to_double() const noexcept {
    if (is_nar()) return __builtin_nan("");
    if (is_zero()) return 0.0;
    const Unpacked u = unpack();
    return compose_double(u.neg, u.m, u.e - 63);
  }

  explicit operator double() const noexcept { return to_double(); }
  explicit operator float() const noexcept { return static_cast<float>(to_double()); }

  /// Decode to sign/exponent/significand (finite non-zero values only).
  [[nodiscard]] Unpacked unpack() const noexcept {
    std::uint64_t p = bits_;
    bool neg = false;
    if ((p >> (kBits - 1)) & 1) {
      neg = true;
      p = (~p + 1) & kMask;  // two's complement within kBits
    }
    Unpacked u = Codec::decode_positive(p);
    u.neg = neg;
    return u;
  }

  // -- Arithmetic ----------------------------------------------------------
  friend TaperedFloat operator+(TaperedFloat a, TaperedFloat b) noexcept { return add(a, b, false); }
  friend TaperedFloat operator-(TaperedFloat a, TaperedFloat b) noexcept { return add(a, b, true); }

  friend TaperedFloat operator*(TaperedFloat a, TaperedFloat b) noexcept {
    if (a.is_nar() || b.is_nar()) return nar();
    if (a.is_zero() || b.is_zero()) return zero();
    return mul_unpacked(a.unpack(), b.unpack());
  }

  friend TaperedFloat operator/(TaperedFloat a, TaperedFloat b) noexcept {
    if (a.is_nar() || b.is_nar() || b.is_zero()) return nar();
    if (a.is_zero()) return zero();
    const Unpacked x = a.unpack(), y = b.unpack();
    const u128 num = static_cast<u128>(x.m) << 64;
    u128 q = num / y.m;  // in (2^63, 2^65)
    const u128 rem = num % y.m;
    const int t = 127 - clz_u128(q);
    q <<= (127 - t);
    const auto m = static_cast<std::uint64_t>(q >> 64);
    const bool g = (static_cast<std::uint64_t>(q) >> 63) & 1;
    const bool s = ((static_cast<std::uint64_t>(q) & ((1ull << 63) - 1)) != 0) || rem != 0;
    return make(x.neg != y.neg, x.e - y.e - 64 + t, m, g, s);
  }

  friend TaperedFloat operator-(TaperedFloat a) noexcept {
    return from_bits(static_cast<Storage>((~a.bits_ + 1) & kMask));
  }
  friend TaperedFloat operator+(TaperedFloat a) noexcept { return a; }

  TaperedFloat& operator+=(TaperedFloat o) noexcept { return *this = *this + o; }
  TaperedFloat& operator-=(TaperedFloat o) noexcept { return *this = *this - o; }
  TaperedFloat& operator*=(TaperedFloat o) noexcept { return *this = *this * o; }
  TaperedFloat& operator/=(TaperedFloat o) noexcept { return *this = *this / o; }

  [[nodiscard]] friend TaperedFloat sqrt(TaperedFloat a) noexcept {
    if (a.is_nar() || a.is_zero()) return a;
    if (a.is_negative()) return nar();
    Unpacked x = a.unpack();
    u128 mm = x.m;
    int e = x.e;
    if (e & 1) {  // works for negative odd e too: (e & 1) == 1
      mm <<= 1;
      e -= 1;
    }
    const u128 n = mm << 63;
    const std::uint64_t s = isqrt_u128(n);
    const u128 rem = n - static_cast<u128>(s) * s;
    return make(false, e / 2, s, false, rem != 0);
  }

  [[nodiscard]] friend TaperedFloat abs(TaperedFloat a) noexcept {
    return a.is_negative() ? -a : a;
  }

  // -- Unpacked-operand cores ----------------------------------------------
  // The arithmetic engines behind operator+/operator*, taking already
  // decoded operands. Callers must have handled zero/NaR beforehand. The
  // kernel layer's 16-bit fast path (kernels/accel.hpp) feeds these from a
  // precomputed 65536-entry Unpacked table, so the fast path shares every
  // instruction of the exact engine except the decode bit-twiddling.

  /// Exact sum of two finite non-zero values (handles either sign).
  [[nodiscard]] static TaperedFloat add_unpacked(Unpacked x, Unpacked y) noexcept {
    if (x.e < y.e || (x.e == y.e && x.m < y.m)) {
      const Unpacked t = x;
      x = y;
      y = t;
    }
    const bool effective_sub = x.neg != y.neg;
    const u128 big = static_cast<u128>(x.m) << 63;  // headroom bit 127 free
    bool sticky = false;
    const u128 small = shift_right_sticky(static_cast<u128>(y.m) << 63, x.e - y.e, sticky);
    u128 r;
    if (!effective_sub) {
      r = big + small;
    } else {
      r = big - small;
      // With a sticky tail the true result is strictly below r: borrow one
      // ulp so guard/sticky classification stays exact.
      if (sticky) r -= 1;
      if (r == 0) return zero();
    }
    const int t = 127 - clz_u128(r);
    r <<= (127 - t);
    const auto m = static_cast<std::uint64_t>(r >> 64);
    const bool g = (static_cast<std::uint64_t>(r) >> 63) & 1;
    const bool s = sticky || (static_cast<std::uint64_t>(r) & ((1ull << 63) - 1)) != 0;
    return make(x.neg, x.e - 126 + t, m, g, s);
  }

  /// Exact product of two finite non-zero values.
  [[nodiscard]] static TaperedFloat mul_unpacked(const Unpacked& x, const Unpacked& y) noexcept {
    u128 prod = static_cast<u128>(x.m) * y.m;  // in [2^126, 2^128)
    const int t = 127 - clz_u128(prod);
    prod <<= (127 - t);
    const auto m = static_cast<std::uint64_t>(prod >> 64);
    const bool g = (static_cast<std::uint64_t>(prod) >> 63) & 1;
    const bool s = (static_cast<std::uint64_t>(prod) & ((1ull << 63) - 1)) != 0;
    return make(x.neg != y.neg, x.e + y.e - 126 + t, m, g, s);
  }

  // -- Comparisons: total order via the signed encoding (NaR is smallest) --
  friend constexpr bool operator==(TaperedFloat a, TaperedFloat b) noexcept { return a.bits_ == b.bits_; }
  friend constexpr bool operator!=(TaperedFloat a, TaperedFloat b) noexcept { return a.bits_ != b.bits_; }
  friend constexpr bool operator<(TaperedFloat a, TaperedFloat b) noexcept {
    return signed_bits(a.bits_) < signed_bits(b.bits_);
  }
  friend constexpr bool operator>(TaperedFloat a, TaperedFloat b) noexcept { return b < a; }
  friend constexpr bool operator<=(TaperedFloat a, TaperedFloat b) noexcept { return !(b < a); }
  friend constexpr bool operator>=(TaperedFloat a, TaperedFloat b) noexcept { return !(a < b); }

  friend std::ostream& operator<<(std::ostream& os, TaperedFloat v) {
    if (v.is_nar()) return os << "NaR";
    return os << v.to_double();
  }

 private:
  [[nodiscard]] static constexpr std::int64_t signed_bits(Storage s) noexcept {
    using SignedStorage = std::make_signed_t<Storage>;
    return static_cast<std::int64_t>(static_cast<SignedStorage>(s));
  }

  /// Round and pack a finite non-zero result.
  [[nodiscard]] static TaperedFloat make(bool neg, int e, std::uint64_t m, bool guard,
                                         bool sticky) noexcept {
    const Storage payload = Codec::encode_positive(e, m, guard, sticky);
    if (!neg) return from_bits(payload);
    return from_bits(static_cast<Storage>((~payload + 1) & kMask));
  }

  /// Shared addition/subtraction entry: special cases, then the exact core.
  [[nodiscard]] static TaperedFloat add(TaperedFloat a, TaperedFloat b, bool negate_b) noexcept {
    if (a.is_nar() || b.is_nar()) return nar();
    if (negate_b) b = -b;
    if (a.is_zero()) return b;
    if (b.is_zero()) return a;
    return add_unpacked(a.unpack(), b.unpack());
  }

  Storage bits_;
};

template <class Codec>
[[nodiscard]] constexpr bool is_number(TaperedFloat<Codec> x) noexcept {
  return !x.is_nar();
}

}  // namespace mfla
