// Software-emulated IEEE-754-style minifloats.
//
// SoftFloat<E, M, Flavor> models a binary floating-point format with E
// exponent bits, M mantissa bits and IEEE-like subnormals. Two flavors:
//
//  * Flavor::ieee       — infinities and NaNs as in IEEE 754 (float16,
//                         bfloat16 and OFP8 E5M2 use this).
//  * Flavor::finite_nan — the OFP8 E4M3 layout: no infinities; the
//                         all-ones exponent encodings are ordinary finite
//                         numbers except S.1111.111 which is NaN. Overflow
//                         converts to NaN (OCP non-saturating mode).
//
// Arithmetic is performed by converting to double, computing, and rounding
// back with round-to-nearest-even. Because 2*M + 2 <= 53 for every format
// instantiated here (M <= 10), the double rounding is provably innocuous,
// i.e. every operation is correctly rounded.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string_view>
#include <type_traits>

#include "support/floatbits.hpp"
#include "support/int128.hpp"

namespace mfla {

enum class Flavor { ieee, finite_nan };

template <int E, int M, Flavor F = Flavor::ieee>
class SoftFloat {
  static_assert(E >= 2 && E <= 8, "exponent field out of supported range");
  static_assert(M >= 1 && M <= 10, "mantissa field out of supported range");

 public:
  static constexpr int kBits = 1 + E + M;
  static constexpr int kExpBits = E;
  static constexpr int kManBits = M;
  static constexpr Flavor kFlavor = F;
  using Storage = detail::uint_for_bits<kBits>;

  static constexpr int kBias = (1 << (E - 1)) - 1;
  static constexpr int kEmin = 1 - kBias;  // minimum normal exponent
  // Maximum finite exponent: IEEE reserves the all-ones exponent; the
  // finite_nan flavor uses it for finite values.
  static constexpr int kEmax = (F == Flavor::ieee) ? kBias : ((1 << E) - 1) - kBias;

  constexpr SoftFloat() noexcept : bits_(0) {}
  constexpr SoftFloat(double d) noexcept : bits_(from_double(d).bits_) {}
  constexpr SoftFloat(int i) noexcept : SoftFloat(static_cast<double>(i)) {}

  [[nodiscard]] static constexpr SoftFloat from_bits(Storage b) noexcept {
    SoftFloat r;
    r.bits_ = b & mask(kBits);
    return r;
  }
  [[nodiscard]] constexpr Storage bits() const noexcept { return bits_; }

  // -- Special values ------------------------------------------------------
  [[nodiscard]] static constexpr SoftFloat nan() noexcept {
    if constexpr (F == Flavor::ieee) {
      return from_bits(static_cast<Storage>((mask(E) << M) | (Storage{1} << (M - 1))));
    } else {
      return from_bits(static_cast<Storage>(mask(E + M)));  // S.111..111
    }
  }
  [[nodiscard]] static constexpr SoftFloat infinity() noexcept {
    // Dependent on F, so it fires exactly when a finite_nan instantiation
    // calls infinity() (that flavor reuses the all-ones exponent encodings
    // for finite values; the would-be infinity pattern is an ordinary
    // number there).
    static_assert(F == Flavor::ieee, "finite_nan formats have no infinity");
    return from_bits(static_cast<Storage>(mask(E) << M));
  }
  [[nodiscard]] static constexpr SoftFloat max_finite() noexcept {
    if constexpr (F == Flavor::ieee) {
      // Exponent all-ones minus one, mantissa all ones.
      return from_bits(static_cast<Storage>(((mask(E) - 1) << M) | mask(M)));
    } else {
      // All ones except the mantissa LSB (which would be NaN).
      return from_bits(static_cast<Storage>(mask(E + M) - 1));
    }
  }
  [[nodiscard]] static constexpr SoftFloat min_positive_subnormal() noexcept { return from_bits(Storage{1}); }
  [[nodiscard]] static constexpr SoftFloat min_positive_normal() noexcept {
    return from_bits(static_cast<Storage>(Storage{1} << M));
  }
  /// Machine epsilon (spacing just above 1).
  [[nodiscard]] static constexpr double epsilon() noexcept { return std::ldexp(1.0, -M); }

  // -- Predicates ----------------------------------------------------------
  [[nodiscard]] constexpr bool is_zero() const noexcept { return (bits_ & mask(E + M)) == 0; }
  [[nodiscard]] constexpr bool signbit() const noexcept { return (bits_ >> (E + M)) & 1; }
  [[nodiscard]] constexpr bool is_nan() const noexcept {
    const Storage mag = bits_ & mask(E + M);
    if constexpr (F == Flavor::ieee) {
      return (mag >> M) == mask(E) && (mag & mask(M)) != 0;
    } else {
      return mag == mask(E + M);
    }
  }
  [[nodiscard]] constexpr bool is_inf() const noexcept {
    if constexpr (F == Flavor::ieee) {
      return (bits_ & mask(E + M)) == (mask(E) << M);
    } else {
      return false;
    }
  }
  [[nodiscard]] constexpr bool is_finite() const noexcept { return !is_nan() && !is_inf(); }

  // -- Conversions ---------------------------------------------------------
  [[nodiscard]] static constexpr SoftFloat from_double(double d) noexcept {
    const DoubleParts p = decompose_double(d);
    if (p.nan) return nan();
    if (p.inf) {
      if constexpr (F == Flavor::ieee) {
        return p.neg ? negate(infinity()) : infinity();
      } else {
        return nan();
      }
    }
    if (p.zero) return from_bits(static_cast<Storage>(p.neg ? (Storage{1} << (E + M)) : 0));

    // Unbiased exponent of d (value = 1.xxx * 2^et).
    const int et = p.e + 52;
    // Quantum: the weight of the target mantissa LSB.
    const int q = (et > kEmin ? et : kEmin) - M;
    // shift >= 52 - M > 0 always holds (M <= 10), so we always shift right.
    const int shift = q - p.e;
    std::uint64_t t;
    bool round_bit = false, sticky = false;
    if (shift >= 64) {
      t = 0;
      sticky = p.sig != 0;
    } else {
      t = p.sig >> shift;
      round_bit = (shift >= 1) && ((p.sig >> (shift - 1)) & 1);
      sticky = (shift >= 2) && ((p.sig & ((1ull << (shift - 1)) - 1)) != 0);
    }
    if (round_bit && (sticky || (t & 1))) ++t;

    int e_out = (et > kEmin ? et : kEmin);
    if (t >= (1ull << (M + 1))) {  // rounding carried out of the mantissa
      t >>= 1;
      ++e_out;
    }
    if (t == 0) return from_bits(static_cast<Storage>(p.neg ? (Storage{1} << (E + M)) : 0));

    Storage be, mf;
    if (t < (1ull << M)) {  // subnormal target
      be = 0;
      mf = static_cast<Storage>(t);
    } else {
      be = static_cast<Storage>(e_out - kEmin + 1);
      mf = static_cast<Storage>(t - (1ull << M));
    }
    // Overflow handling.
    if constexpr (F == Flavor::ieee) {
      if (be >= mask(E)) {
        const SoftFloat inf = infinity();
        return p.neg ? negate(inf) : inf;
      }
    } else {
      // finite_nan: the very last encoding (all ones) is NaN; anything at or
      // beyond it maps to NaN (OCP OFP8 non-saturating conversion).
      if (be > mask(E) || (be == mask(E) && mf >= mask(M))) return nan();
    }
    Storage out = static_cast<Storage>((be << M) | mf);
    if (p.neg) out |= static_cast<Storage>(Storage{1} << (E + M));
    return from_bits(out);
  }

  [[nodiscard]] constexpr double to_double() const noexcept {
    const bool neg = signbit();
    const Storage be = (bits_ >> M) & mask(E);
    const Storage mf = bits_ & mask(M);
    if constexpr (F == Flavor::ieee) {
      if (be == mask(E)) {
        if (mf != 0) return std::numeric_limits<double>::quiet_NaN();
        return neg ? -std::numeric_limits<double>::infinity() : std::numeric_limits<double>::infinity();
      }
    } else {
      if (be == mask(E) && mf == mask(M)) return std::numeric_limits<double>::quiet_NaN();
    }
    double mag;
    if (be == 0) {
      mag = std::ldexp(static_cast<double>(mf), kEmin - M);
    } else {
      mag = std::ldexp(static_cast<double>((1ull << M) | mf), static_cast<int>(be) + kEmin - 1 - M);
    }
    return neg ? -mag : mag;
  }

  explicit constexpr operator double() const noexcept { return to_double(); }
  explicit constexpr operator float() const noexcept { return static_cast<float>(to_double()); }

  // -- Arithmetic (correctly rounded via double) ---------------------------
  friend constexpr SoftFloat operator+(SoftFloat a, SoftFloat b) noexcept {
    return from_double(a.to_double() + b.to_double());
  }
  friend constexpr SoftFloat operator-(SoftFloat a, SoftFloat b) noexcept {
    return from_double(a.to_double() - b.to_double());
  }
  friend constexpr SoftFloat operator*(SoftFloat a, SoftFloat b) noexcept {
    return from_double(a.to_double() * b.to_double());
  }
  friend constexpr SoftFloat operator/(SoftFloat a, SoftFloat b) noexcept {
    return from_double(a.to_double() / b.to_double());
  }
  friend constexpr SoftFloat operator-(SoftFloat a) noexcept { return negate(a); }
  friend constexpr SoftFloat operator+(SoftFloat a) noexcept { return a; }

  constexpr SoftFloat& operator+=(SoftFloat o) noexcept { return *this = *this + o; }
  constexpr SoftFloat& operator-=(SoftFloat o) noexcept { return *this = *this - o; }
  constexpr SoftFloat& operator*=(SoftFloat o) noexcept { return *this = *this * o; }
  constexpr SoftFloat& operator/=(SoftFloat o) noexcept { return *this = *this / o; }

  // -- Comparisons (IEEE semantics: NaN unordered) -------------------------
  friend constexpr bool operator==(SoftFloat a, SoftFloat b) noexcept {
    if (a.is_nan() || b.is_nan()) return false;
    if (a.is_zero() && b.is_zero()) return true;
    return a.bits_ == b.bits_;
  }
  friend constexpr bool operator!=(SoftFloat a, SoftFloat b) noexcept { return !(a == b); }
  friend constexpr bool operator<(SoftFloat a, SoftFloat b) noexcept {
    return a.to_double() < b.to_double();
  }
  friend constexpr bool operator>(SoftFloat a, SoftFloat b) noexcept { return b < a; }
  friend constexpr bool operator<=(SoftFloat a, SoftFloat b) noexcept {
    if (a.is_nan() || b.is_nan()) return false;
    return !(b < a);
  }
  friend constexpr bool operator>=(SoftFloat a, SoftFloat b) noexcept { return b <= a; }

  [[nodiscard]] static constexpr SoftFloat negate(SoftFloat a) noexcept {
    SoftFloat r = a;
    r.bits_ ^= static_cast<Storage>(Storage{1} << (E + M));
    return r;
  }

 private:
  [[nodiscard]] static constexpr Storage mask(int n) noexcept {
    return static_cast<Storage>((n >= kBits && static_cast<unsigned>(n) >= 8 * sizeof(Storage))
                                    ? ~Storage{0}
                                    : static_cast<Storage>((Storage{1} << n) - 1));
  }

  Storage bits_;
};

// The concrete formats used in the study.
using Float16 = SoftFloat<5, 10, Flavor::ieee>;
using BFloat16 = SoftFloat<8, 7, Flavor::ieee>;
using OFP8E4M3 = SoftFloat<4, 3, Flavor::finite_nan>;
using OFP8E5M2 = SoftFloat<5, 2, Flavor::ieee>;

// Free-function math used by the templated algorithms.
template <int E, int M, Flavor F>
[[nodiscard]] constexpr SoftFloat<E, M, F> abs(SoftFloat<E, M, F> x) noexcept {
  return x.signbit() ? SoftFloat<E, M, F>::negate(x) : x;
}
template <int E, int M, Flavor F>
[[nodiscard]] inline SoftFloat<E, M, F> sqrt(SoftFloat<E, M, F> x) noexcept {
  // Correctly rounded: sqrt in double then one rounding to M <= 10 bits.
  return SoftFloat<E, M, F>::from_double(std::sqrt(x.to_double()));
}
template <int E, int M, Flavor F>
[[nodiscard]] constexpr bool is_number(SoftFloat<E, M, F> x) noexcept {
  return x.is_finite();
}

}  // namespace mfla
