// Uniform compile-time description of every number format in the study.
//
// NumTraits<T> provides, for each scalar type:
//   * name()              — human-readable format name ("takum16", ...)
//   * bits                — storage width
//   * tapered             — posit/takum-style tapered precision?
//   * epsilon()           — relative spacing just above 1.0 (double)
//   * default_tolerance() — the paper's per-width IRAM convergence tolerance
//                           (1e-2 / 1e-4 / 1e-8 / 1e-12, 1e-20 for float128)
//   * to_double / from_double
#pragma once

#include <bit>
#include <cstdint>
#include <string>

#include "arith/dd.hpp"
#include "arith/posit.hpp"
#include "arith/quad.hpp"
#include "arith/softfloat.hpp"
#include "arith/takum.hpp"
#include "arith/tapered.hpp"

namespace mfla {

namespace detail {
[[nodiscard]] constexpr double tolerance_for_bits(int bits) noexcept {
  if (bits <= 8) return 1e-2;
  if (bits <= 16) return 1e-4;
  if (bits <= 32) return 1e-8;
  if (bits <= 64) return 1e-12;
  return 1e-20;
}
}  // namespace detail

template <typename T>
struct NumTraits;

template <>
struct NumTraits<float> {
  static constexpr int bits = 32;
  static constexpr bool tapered = false;
  static std::string name() { return "float32"; }
  static constexpr double epsilon() noexcept { return 0x1p-23; }
  static constexpr double default_tolerance() noexcept { return detail::tolerance_for_bits(bits); }
  static double to_double(float x) noexcept { return x; }
  static float from_double(double x) noexcept { return static_cast<float>(x); }
};

template <>
struct NumTraits<double> {
  static constexpr int bits = 64;
  static constexpr bool tapered = false;
  static std::string name() { return "float64"; }
  static constexpr double epsilon() noexcept { return 0x1p-52; }
  static constexpr double default_tolerance() noexcept { return detail::tolerance_for_bits(bits); }
  static double to_double(double x) noexcept { return x; }
  static double from_double(double x) noexcept { return x; }
};

template <>
struct NumTraits<Quad> {
  static constexpr int bits = 128;
  static constexpr bool tapered = false;
  static std::string name() { return "float128"; }
  static constexpr double epsilon() noexcept { return 0x1p-112; }
  static constexpr double default_tolerance() noexcept { return 1e-20; }
  static double to_double(Quad x) noexcept { return static_cast<double>(x); }
  static Quad from_double(double x) noexcept { return x; }
};

template <>
struct NumTraits<DoubleDouble> {
  static constexpr int bits = 128;  // storage width (two packed doubles)
  static constexpr bool tapered = false;
  static std::string name() { return "dd"; }
  /// Relative spacing of the normalized pair: 2^-104 (the lo word extends
  /// the 53-bit hi significand by another 52 significant bits minimum).
  static constexpr double epsilon() noexcept { return 0x1p-104; }
  /// dd serves as the reference fast tier, so it inherits the reference
  /// tolerance — the certification bound in core/reference_tier.hpp decides
  /// whether a dd solve actually met it.
  static constexpr double default_tolerance() noexcept { return 1e-20; }
  static double to_double(DoubleDouble x) noexcept { return x.to_double(); }
  static DoubleDouble from_double(double x) noexcept { return DoubleDouble::from_double(x); }
};

template <int E, int M, Flavor F>
struct NumTraits<SoftFloat<E, M, F>> {
  using T = SoftFloat<E, M, F>;
  static constexpr int bits = T::kBits;
  static constexpr bool tapered = false;
  static std::string name() {
    if constexpr (E == 5 && M == 10) return "float16";
    if constexpr (E == 8 && M == 7) return "bfloat16";
    if constexpr (E == 4 && M == 3) return "OFP8 E4M3";
    if constexpr (E == 5 && M == 2) return "OFP8 E5M2";
    return "float" + std::to_string(bits) + "_e" + std::to_string(E) + "m" + std::to_string(M);
  }
  static constexpr double epsilon() noexcept { return T::epsilon(); }
  static constexpr double default_tolerance() noexcept { return detail::tolerance_for_bits(bits); }
  static double to_double(T x) noexcept { return x.to_double(); }
  static T from_double(double x) noexcept { return T::from_double(x); }
};

template <int N, int ES>
struct NumTraits<Posit<N, ES>> {
  using T = Posit<N, ES>;
  static constexpr int bits = N;
  static constexpr bool tapered = true;
  static std::string name() { return PositCodec<N, ES>::name(); }
  /// Spacing just above 1: fraction width there is N - 3 - ES bits.
  static constexpr double epsilon() noexcept {
    constexpr int fbits = N - 3 - ES;
    return fbits > 0 ? __builtin_ldexp(1.0, -fbits) : 1.0;
  }
  static constexpr double default_tolerance() noexcept { return detail::tolerance_for_bits(bits); }
  static double to_double(T x) noexcept { return x.to_double(); }
  static T from_double(double x) noexcept { return T::from_double(x); }
};

template <int N>
struct NumTraits<Takum<N>> {
  using T = Takum<N>;
  static constexpr int bits = N;
  static constexpr bool tapered = true;
  static std::string name() { return TakumCodec<N>::name(); }
  /// Spacing just above 1: c = 0 needs no characteristic bits, so the
  /// fraction spans N - 5 bits.
  static constexpr double epsilon() noexcept {
    constexpr int fbits = N - 5;
    return fbits > 0 ? __builtin_ldexp(1.0, -fbits) : 1.0;
  }
  static constexpr double default_tolerance() noexcept { return detail::tolerance_for_bits(bits); }
  static double to_double(T x) noexcept { return x.to_double(); }
  static T from_double(double x) noexcept { return T::from_double(x); }
};

// ---------------------------------------------------------------------------
// ScalarCodec<T>: uniform bit-level codec surface for the emulated formats.
//
// Where NumTraits<T> speaks in values, ScalarCodec<T> speaks in encodings:
// bits <-> T, bits <-> double, and (for tapered formats) bits <-> Unpacked.
// The exact engines (SoftFloat, TaperedFloat) implement these operations;
// ScalarCodec exposes them uniformly so the kernel layer's LUT builders
// (kernels/accel.hpp) and the exhaustive bit-identity tests can enumerate
// and decode every encoding of a format without knowing its family.
// Native float/double/Quad have no codec: they take the plain kernel paths.
// ---------------------------------------------------------------------------

template <typename T>
struct ScalarCodec;  // primary template intentionally undefined

template <int E, int M, Flavor F>
struct ScalarCodec<SoftFloat<E, M, F>> {
  using Scalar = SoftFloat<E, M, F>;
  using Storage = typename Scalar::Storage;
  static constexpr int bits = Scalar::kBits;
  static constexpr bool tapered = false;
  [[nodiscard]] static constexpr Storage to_bits(Scalar x) noexcept { return x.bits(); }
  [[nodiscard]] static constexpr Scalar from_bits(Storage b) noexcept {
    return Scalar::from_bits(b);
  }
  [[nodiscard]] static constexpr double bits_to_double(Storage b) noexcept {
    return Scalar::from_bits(b).to_double();
  }
  [[nodiscard]] static constexpr Storage bits_from_double(double d) noexcept {
    return Scalar::from_double(d).bits();
  }
};

template <class Codec>
struct ScalarCodec<TaperedFloat<Codec>> {
  using Scalar = TaperedFloat<Codec>;
  using Storage = typename Scalar::Storage;
  static constexpr int bits = Scalar::kBits;
  static constexpr bool tapered = true;
  [[nodiscard]] static constexpr Storage to_bits(Scalar x) noexcept { return x.bits(); }
  [[nodiscard]] static constexpr Scalar from_bits(Storage b) noexcept {
    return Scalar::from_bits(b);
  }
  [[nodiscard]] static double bits_to_double(Storage b) noexcept {
    return Scalar::from_bits(b).to_double();
  }
  [[nodiscard]] static Storage bits_from_double(double d) noexcept {
    return Scalar::from_double(d).bits();
  }
  /// Decode an encoding to (sign, exponent, significand). Meaningful for
  /// finite non-zero patterns; zero/NaR must be special-cased by the caller
  /// (as the exact engine itself does).
  [[nodiscard]] static Unpacked bits_to_unpacked(Storage b) noexcept {
    return Scalar::from_bits(b).unpack();
  }
};

/// dd's codec speaks in the packed bit patterns of its two components
/// (hi in the upper 64 bits). The kernel accelerator ignores it (128-bit
/// encodings are far beyond table range — accel_kind yields none); it
/// exists so codec-keyed dispatch, the reference-tier cache keying and the
/// round-trip tests can treat dd uniformly with the other emulated formats.
template <>
struct ScalarCodec<DoubleDouble> {
  using Scalar = DoubleDouble;
  using Storage = unsigned __int128;
  static constexpr int bits = 128;
  static constexpr bool tapered = false;
  [[nodiscard]] static Storage to_bits(Scalar x) noexcept {
    return (static_cast<Storage>(std::bit_cast<std::uint64_t>(x.hi)) << 64) |
           std::bit_cast<std::uint64_t>(x.lo);
  }
  [[nodiscard]] static Scalar from_bits(Storage b) noexcept {
    return {std::bit_cast<double>(static_cast<std::uint64_t>(b >> 64)),
            std::bit_cast<double>(static_cast<std::uint64_t>(b))};
  }
  [[nodiscard]] static double bits_to_double(Storage b) noexcept {
    return from_bits(b).to_double();
  }
  [[nodiscard]] static Storage bits_from_double(double d) noexcept {
    return to_bits(Scalar::from_double(d));
  }
};

/// Formats with a bit-level codec (everything software-emulated here).
template <typename T>
concept HasScalarCodec = requires { typename ScalarCodec<T>::Storage; };

/// Did converting `x` into format T lose the value entirely (zero, infinity
/// or NaN from a finite non-zero input)? This is the paper's per-matrix
/// "dynamic range exceeded" test used for the ∞σ classification.
/// Posit/takum saturate, so they never trip this.
template <typename T>
[[nodiscard]] bool conversion_loses_value(double x) {
  if (x == 0.0 || !std::isfinite(x)) return false;
  const double back = NumTraits<T>::to_double(NumTraits<T>::from_double(x));
  return back == 0.0 || !std::isfinite(back);
}

}  // namespace mfla
