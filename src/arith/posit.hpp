// Posit arithmetic (Posit Standard 2022 layout, configurable exponent size).
//
// An n-bit posit<n, es> encodes, after the sign bit, a unary regime run
// (k >= 0: k+1 ones + terminating zero; k < 0: -k zeros + terminating one),
// an es-bit exponent field and the remaining fraction bits:
//
//   value = (1 + f) * 2^(k * 2^es + e_field)
//
// The Posit Standard (2022) fixes es = 2 for every width; es is kept as a
// template parameter for the es-ablation study (bench_ablation_posit_es).
//
// Rounding/saturation semantics follow the standard (and SoftPosit):
// round-to-nearest-even on the encoding integer; overflow clamps to maxpos
// (never NaR), underflow clamps to minpos (never zero).
#pragma once

#include <cstdint>
#include <string>

#include "arith/tapered.hpp"

namespace mfla {

template <int N, int ES = 2>
struct PositCodec {
  static_assert(N >= 4 && N <= 64);
  static_assert(ES >= 0 && ES <= 4);

  static constexpr int nbits = N;
  static constexpr int es = ES;
  using Storage = detail::uint_for_bits<N>;

  /// Largest representable exponent: maxpos = 2^((N-2) * 2^ES).
  static constexpr int max_exponent = (N - 2) << ES;

  [[nodiscard]] static const char* name() noexcept {
    static const std::string s = [] {
      std::string r = "posit" + std::to_string(N);
      if (ES != 2) r += "_es" + std::to_string(ES);
      return r;
    }();
    return s.c_str();
  }

  [[nodiscard]] static Unpacked decode_positive(std::uint64_t p) noexcept {
    const std::uint64_t x = p << (64 - N);
    const std::uint64_t y = x << 1;  // regime field starts at bit 63
    constexpr int w = N - 1;         // payload width after the sign bit
    const bool r0 = (y >> 63) & 1;
    std::uint64_t z = r0 ? ~y : y;
    z |= 1ull << (63 - w);  // stop the run count at the end of the payload
    const int run = clz_u64(z);
    const int k = r0 ? run - 1 : -run;
    const int consumed = (run < w) ? run + 1 : run;  // terminator if present
    const int pos = 1 + consumed;
    const std::uint64_t rest = (pos < 64) ? x << pos : 0;
    const int avail = N - pos;
    const int taken = (ES < avail) ? ES : (avail > 0 ? avail : 0);
    std::uint64_t ef = (taken > 0) ? rest >> (64 - taken) : 0;
    ef <<= (ES - taken);
    const std::uint64_t rest2 = (taken < 64) ? rest << taken : 0;
    Unpacked u;
    u.e = (k << ES) + static_cast<int>(ef);
    u.m = (1ull << 63) | (rest2 >> 1);
    return u;
  }

  [[nodiscard]] static Storage encode_positive(int e, std::uint64_t m, bool guard,
                                               bool sticky) noexcept {
    constexpr std::uint64_t maxpos = (std::uint64_t{1} << (N - 1)) - 1;
    if (e >= max_exponent) return static_cast<Storage>(maxpos);
    if (e < -max_exponent) return Storage{1};
    const int k = e >> ES;  // arithmetic shift == floor division
    const auto ef = static_cast<std::uint64_t>(e - (k << ES));
    detail::BitBuilder bb;
    if (k >= 0) {
      bb.put((2ull << (k + 1)) - 2, k + 2);  // (k+1) ones, then the 0 terminator
    } else {
      bb.put(1, -k + 1);  // (-k) zeros, then the 1 terminator
    }
    bb.put(ef, ES);
    bb.put(m & ((1ull << 63) - 1), 63);
    bb.put(guard ? 1 : 0, 1);
    return detail::round_payload<Storage>(N, bb.extract(N - 1), sticky);
  }
};

template <int N, int ES = 2>
using Posit = TaperedFloat<PositCodec<N, ES>>;

using Posit8 = Posit<8>;
using Posit16 = Posit<16>;
using Posit32 = Posit<32>;
using Posit64 = Posit<64>;

}  // namespace mfla
