// float128 reference arithmetic.
//
// The paper computes reference eigenpairs in float128 (113-bit significand)
// with a 1e-20 convergence tolerance. GCC's __float128 provides exactly
// this; sqrt comes from libquadmath.
#pragma once

#include <quadmath.h>

#include <cmath>

namespace mfla {

using Quad = __float128;

[[nodiscard]] inline Quad sqrt(Quad x) noexcept { return sqrtq(x); }
[[nodiscard]] inline Quad abs(Quad x) noexcept { return fabsq(x); }
[[nodiscard]] inline bool is_number(Quad x) noexcept { return !isnanq(x) && !isinfq(x); }

// Native IEEE types get the same uniform surface so templated algorithms can
// call mfla::sqrt / mfla::abs / mfla::is_number unqualified-by-type.
[[nodiscard]] inline float sqrt(float x) noexcept { return std::sqrt(x); }
[[nodiscard]] inline double sqrt(double x) noexcept { return std::sqrt(x); }
[[nodiscard]] inline long double sqrt(long double x) noexcept { return std::sqrt(x); }
[[nodiscard]] inline float abs(float x) noexcept { return std::fabs(x); }
[[nodiscard]] inline double abs(double x) noexcept { return std::fabs(x); }
[[nodiscard]] inline long double abs(long double x) noexcept { return std::fabs(x); }
[[nodiscard]] inline bool is_number(float x) noexcept { return std::isfinite(x); }
[[nodiscard]] inline bool is_number(double x) noexcept { return std::isfinite(x); }
[[nodiscard]] inline bool is_number(long double x) noexcept { return std::isfinite(x); }

}  // namespace mfla
