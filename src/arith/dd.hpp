// Double-double arithmetic: ~106-bit significand built from hardware doubles.
//
// A DoubleDouble represents a value as an unevaluated sum hi + lo of two
// IEEE doubles with |lo| <= ulp(hi)/2 (the pair is kept normalized by a
// quick_two_sum after every operation). The error-free transformations are
// the classical ones — Knuth TwoSum for +, the Dekker product (realized
// through a correctly rounded fma, which computes the same exact error
// term without the split's overflow hazard) for * — so every arithmetic
// operation is accurate to a few units of eps_dd = 2^-104 ≈ 4.9e-32.
//
// Role in the engine: the *fast tier* of the reference solve
// (core/reference_tier.hpp). The paper's reference eigenpairs are defined
// in software float128 (113-bit significand, tolerance 1e-20); dd runs the
// same IRAM on hardware adds/fmas, typically an order of magnitude faster
// than soft binary128, and a certified residual bound decides per matrix
// whether the dd result can stand in for the float128 oracle or the solve
// must be promoted. dd is therefore registered reference-only
// (FormatId::dd): it is never a format under evaluation.
//
// NaN/inf: operations propagate non-finite values through the hi word; a
// non-finite hi forces lo = 0 during normalization so a partially poisoned
// pair (finite hi, NaN lo from an inf-inf error term) cannot masquerade as
// a finite value. is_number() inspects hi only, like the other formats.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>

namespace mfla {

namespace dd_detail {

/// Knuth TwoSum: s + err == a + b exactly (any finite a, b), s = fl(a+b).
[[nodiscard]] inline double two_sum(double a, double b, double& err) noexcept {
  const double s = a + b;
  const double bb = s - a;
  err = (a - (s - bb)) + (b - bb);
  return s;
}

/// Fast TwoSum (Dekker): requires |a| >= |b| or a == 0; 3 flops.
[[nodiscard]] inline double quick_two_sum(double a, double b, double& err) noexcept {
  const double s = a + b;
  err = b - (s - a);
  return s;
}

/// Dekker product via fma: p + err == a * b exactly (finite, no overflow
/// and the product not below the denormal range). A correctly rounded fma
/// yields the identical error term to Dekker's 17-flop veltkamp-split
/// formulation while avoiding the split's 2^27+1 scaling overflow for
/// |a| > ~2^970.
[[nodiscard]] inline double two_prod(double a, double b, double& err) noexcept {
  const double p = a * b;
  err = std::fma(a, b, -p);
  return p;
}

/// Veltkamp split: x == x_hi + x_lo with both halves 26/27-bit. Exposed for
/// the property tests, which cross-check the fma product against Dekker's
/// original split-based formulation.
inline void veltkamp_split(double x, double& hi, double& lo) noexcept {
  const double t = 134217729.0 * x;  // 2^27 + 1
  hi = t - (t - x);
  lo = x - hi;
}

}  // namespace dd_detail

struct DoubleDouble {
  double hi = 0.0;
  double lo = 0.0;

  constexpr DoubleDouble() noexcept = default;
  constexpr DoubleDouble(double x) noexcept : hi(x), lo(0.0) {}  // NOLINT: value-preserving
  constexpr DoubleDouble(double h, double l) noexcept : hi(h), lo(l) {}

  /// Renormalize an unevaluated sum (|h| >= |l| expected, as produced by
  /// the operation cores) and enforce the non-finite invariant.
  [[nodiscard]] static DoubleDouble normalized(double h, double l) noexcept {
    double e;
    const double s = dd_detail::quick_two_sum(h, l, e);
    if (!std::isfinite(s)) return {s, 0.0};
    return {s, e};
  }

  [[nodiscard]] static DoubleDouble from_double(double x) noexcept { return {x, 0.0}; }
  /// Correctly rounded by the normalization invariant: hi = fl(hi + lo).
  [[nodiscard]] double to_double() const noexcept { return hi; }

  [[nodiscard]] friend DoubleDouble operator-(DoubleDouble a) noexcept {
    return {-a.hi, -a.lo};
  }

  [[nodiscard]] friend DoubleDouble operator+(DoubleDouble a, DoubleDouble b) noexcept {
    double s2, t2;
    double s1 = dd_detail::two_sum(a.hi, b.hi, s2);
    // IEEE hi-word semantics for overflow and inf/NaN operands: the error
    // terms are NaN garbage in these cases and must not poison the result
    // (inf would otherwise decay to NaN through the renormalization).
    if (!std::isfinite(s1)) return {s1, 0.0};
    const double t1 = dd_detail::two_sum(a.lo, b.lo, t2);
    s2 += t1;
    s1 = dd_detail::quick_two_sum(s1, s2, s2);
    s2 += t2;
    return normalized(s1, s2);
  }

  [[nodiscard]] friend DoubleDouble operator-(DoubleDouble a, DoubleDouble b) noexcept {
    return a + (-b);
  }

  [[nodiscard]] friend DoubleDouble operator*(DoubleDouble a, DoubleDouble b) noexcept {
    double e;
    const double p = dd_detail::two_prod(a.hi, b.hi, e);
    if (!std::isfinite(p)) return {p, 0.0};  // see operator+
    e += a.hi * b.lo + a.lo * b.hi;
    return normalized(p, e);
  }

  [[nodiscard]] friend DoubleDouble operator/(DoubleDouble a, DoubleDouble b) noexcept {
    // Long division with two exact-remainder refinements (the accurate
    // QD-style algorithm): full dd accuracy for finite quotients, and the
    // hi-word division supplies IEEE semantics for 0/0, x/0 and inf cases.
    const double q1 = a.hi / b.hi;
    if (!std::isfinite(q1)) return {q1, 0.0};
    DoubleDouble r = a - b * DoubleDouble(q1);
    const double q2 = r.hi / b.hi;
    r = r - b * DoubleDouble(q2);
    const double q3 = r.hi / b.hi;
    double e;
    const double q = dd_detail::quick_two_sum(q1, q2, e);
    return DoubleDouble::normalized(q, e) + DoubleDouble(q3);
  }

  DoubleDouble& operator+=(DoubleDouble b) noexcept { return *this = *this + b; }
  DoubleDouble& operator-=(DoubleDouble b) noexcept { return *this = *this - b; }
  DoubleDouble& operator*=(DoubleDouble b) noexcept { return *this = *this * b; }
  DoubleDouble& operator/=(DoubleDouble b) noexcept { return *this = *this / b; }

  // Comparisons are lexicographic on the normalized (hi, lo) pair; any
  // comparison involving NaN is false (IEEE ordering on the hi word).
  [[nodiscard]] friend bool operator==(DoubleDouble a, DoubleDouble b) noexcept {
    return a.hi == b.hi && a.lo == b.lo;
  }
  [[nodiscard]] friend bool operator!=(DoubleDouble a, DoubleDouble b) noexcept {
    return !(a == b) && a.hi == a.hi && b.hi == b.hi;
  }
  [[nodiscard]] friend bool operator<(DoubleDouble a, DoubleDouble b) noexcept {
    return a.hi < b.hi || (a.hi == b.hi && a.lo < b.lo);
  }
  [[nodiscard]] friend bool operator>(DoubleDouble a, DoubleDouble b) noexcept {
    return b < a;
  }
  [[nodiscard]] friend bool operator<=(DoubleDouble a, DoubleDouble b) noexcept {
    return a == b || a < b;
  }
  [[nodiscard]] friend bool operator>=(DoubleDouble a, DoubleDouble b) noexcept {
    return b <= a;
  }
};

[[nodiscard]] inline bool is_number(DoubleDouble x) noexcept { return std::isfinite(x.hi); }

[[nodiscard]] inline DoubleDouble abs(DoubleDouble x) noexcept {
  return (x.hi < 0.0 || (x.hi == 0.0 && std::signbit(x.hi))) ? -x : x;
}

[[nodiscard]] inline DoubleDouble sqrt(DoubleDouble x) noexcept {
  if (x.hi == 0.0) return {std::sqrt(x.hi), 0.0};  // preserves sqrt(-0) = -0
  if (x.hi < 0.0) return {std::numeric_limits<double>::quiet_NaN(), 0.0};
  if (!std::isfinite(x.hi)) return {x.hi, 0.0};  // inf or NaN
  // Karp–Markstein: one dd-accurate Newton correction of the hardware root.
  const double approx = std::sqrt(x.hi);
  const DoubleDouble s(approx);
  const DoubleDouble err = x - s * s;
  const double corr = err.hi / (2.0 * approx);
  return DoubleDouble::normalized(approx, corr);
}

/// Exact textual form: both components in C99 hex-float. Round-trips
/// bit-for-bit through dd_from_string (including -0.0, denormals, inf/NaN).
[[nodiscard]] inline std::string dd_to_string(DoubleDouble x) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a;%a", x.hi, x.lo);
  return buf;
}

[[nodiscard]] inline DoubleDouble dd_from_string(const std::string& s) {
  const std::size_t sep = s.find(';');
  if (sep == std::string::npos) return {std::strtod(s.c_str(), nullptr), 0.0};
  return {std::strtod(s.substr(0, sep).c_str(), nullptr),
          std::strtod(s.c_str() + sep + 1, nullptr)};
}

}  // namespace mfla
