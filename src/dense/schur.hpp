// Real Schur decomposition of an upper Hessenberg matrix via the Francis
// implicit double-shift QR iteration (LAPACK dlahqr-style, simplified for
// the small Rayleigh-quotient matrices that arise in Krylov–Schur).
//
// The result is quasi-triangular: 1x1 blocks for real eigenvalues and 2x2
// blocks for complex-conjugate pairs. 2x2 blocks with *real* eigenvalues
// are standardized to triangular form.
//
// Everything runs in the working scalar type T so that low-precision
// behavior is exactly that of the format under study; a non-finite value
// (overflow/NaR poisoning) aborts with failure, which the eigensolver
// classifies as non-convergence.
#pragma once

#include <cstddef>
#include <vector>

#include "arith/traits.hpp"
#include "dense/matrix.hpp"

namespace mfla {

struct SchurStatus {
  bool ok = false;
  int iterations = 0;
};

/// Householder reflector formulation (see make_reflector):
///  * lapack   — dlarfg-style, tau in [1,2]: robust in tapered formats.
///  * textbook — Golub & Van Loan beta = 2 v0^2/(sigma+v0^2): forms the
///    square of a small scale, where tapered-precision formats carry very
///    few fraction bits. Kept for the A4 ablation (docs/DESIGN.md §5), which
///    demonstrates a plausible mechanism behind the paper's posit anomaly.
enum class ReflectorStyle { lapack, textbook };

namespace detail {

/// Apply the Givens-like rotation [c s; -s c]^T ... [c s; -s c] as a
/// similarity on rows/cols (i, i+1) of t, and on columns of z.
template <typename T>
void apply_rotation_similarity(DenseMatrix<T>& t, DenseMatrix<T>& z, std::size_t i, T cs, T sn) {
  const std::size_t n = t.rows();
  for (std::size_t j = 0; j < n; ++j) {  // left: rows i, i+1
    const T x = t(i, j), y = t(i + 1, j);
    t(i, j) = cs * x + sn * y;
    t(i + 1, j) = cs * y - sn * x;
  }
  for (std::size_t r = 0; r < n; ++r) {  // right: cols i, i+1
    const T x = t(r, i), y = t(r, i + 1);
    t(r, i) = cs * x + sn * y;
    t(r, i + 1) = cs * y - sn * x;
  }
  for (std::size_t r = 0; r < z.rows(); ++r) {
    const T x = z(r, i), y = z(r, i + 1);
    z(r, i) = cs * x + sn * y;
    z(r, i + 1) = cs * y - sn * x;
  }
}

/// Standardize the 2x2 block at (i, i): if its eigenvalues are real, rotate
/// the block to upper-triangular form.
template <typename T>
void standardize_2x2(DenseMatrix<T>& t, DenseMatrix<T>& z, std::size_t i) {
  const T a = t(i, i), b = t(i, i + 1), c = t(i + 1, i), d = t(i + 1, i + 1);
  if (c == T(0)) return;
  const T half(0.5);
  const T p = (a - d) * half;
  const T disc = p * p + b * c;
  if (!is_number(disc) || disc < T(0)) return;  // complex pair: keep the block
  const T sq = sqrt(disc);
  // Larger-magnitude root offset for stability.
  const T z1 = (p >= T(0)) ? (p + sq) : (p - sq);
  const T lambda = d + z1;  // one real eigenvalue
  // Rotation whose first column is the (normalized) eigenvector [b; λ-a]
  // or [λ-d; c], whichever is better conditioned.
  T x0 = b, x1 = lambda - a;
  const T y0 = lambda - d, y1 = c;
  if (abs(x0) + abs(x1) < abs(y0) + abs(y1)) {
    x0 = y0;
    x1 = y1;
  }
  // dlartg-style scaling: normalize by the larger component before squaring
  // so the sum of squares stays near magnitude one.
  const T mx = (abs(x0) > abs(x1)) ? abs(x0) : abs(x1);
  if (!is_number(mx) || mx == T(0)) return;
  x0 = x0 / mx;
  x1 = x1 / mx;
  const T r = sqrt(x0 * x0 + x1 * x1);
  if (!is_number(r) || r == T(0)) return;
  apply_rotation_similarity(t, z, i, x0 / r, x1 / r);
  t(i + 1, i) = T(0);
}

/// Householder reflector for a 2- or 3-vector: computes v (v[0] = 1) and
/// tau such that (I - tau v v^T) x = mu e1. Returns false for x = 0.
///
/// Uses the LAPACK dlarfg formulation: tau = (beta - alpha)/beta lies in
/// [1, 2] and v_i = x_i/(alpha - beta) with |alpha - beta| >= |beta|, so no
/// intermediate falls to the square of a small scale. (The textbook variant
/// that forms v0^2 ~ sigma^2 collapses in tapered formats, whose precision
/// decays away from magnitude one.)
template <typename T>
bool make_reflector(const T* x, int nr, T* v, T& tau,
                    ReflectorStyle style = ReflectorStyle::lapack) {
  T scale(0);
  for (int i = 0; i < nr; ++i) scale += abs(x[i]);
  if (scale == T(0) || !is_number(scale)) return false;
  const T alpha = x[0] / scale;
  T sigma(0);
  T xs[3];
  xs[0] = alpha;
  for (int i = 1; i < nr; ++i) {
    xs[i] = x[i] / scale;
    sigma += xs[i] * xs[i];
  }
  if (sigma == T(0)) return false;  // already in e1 direction
  const T mu = sqrt(alpha * alpha + sigma);
  if (style == ReflectorStyle::textbook) {
    const T v0 = (alpha <= T(0)) ? (alpha - mu) : (-sigma / (alpha + mu));
    if (v0 == T(0) || !is_number(v0)) return false;
    tau = T(2) * v0 * v0 / (sigma + v0 * v0);
    v[0] = T(1);
    for (int i = 1; i < nr; ++i) v[i] = xs[i] / v0;
    return is_number(tau);
  }
  const T beta = (alpha <= T(0)) ? mu : -mu;  // no cancellation in alpha - beta
  tau = (beta - alpha) / beta;
  const T denom = alpha - beta;
  if (denom == T(0) || !is_number(denom) || !is_number(tau)) return false;
  v[0] = T(1);
  for (int i = 1; i < nr; ++i) v[i] = xs[i] / denom;
  return true;
}

}  // namespace detail

/// Francis double-shift QR: h (upper Hessenberg, modified in place into the
/// real Schur form) and z (orthogonal accumulator, pre-initialized).
template <typename T>
SchurStatus hessenberg_to_schur(DenseMatrix<T>& h, DenseMatrix<T>& z, int max_sweeps_per_eig = 40,
                                ReflectorStyle style = ReflectorStyle::lapack) {
  const auto n = static_cast<int>(h.rows());
  SchurStatus st;
  if (n == 0) {
    st.ok = true;
    return st;
  }
  const T eps = NumTraits<T>::from_double(NumTraits<T>::epsilon());

  // Overall scale fallback for deflation tests on zero diagonals.
  T anorm(0);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i <= (j + 1 < n ? j + 1 : n - 1); ++i) anorm += abs(h(i, j));
  if (!is_number(anorm)) return st;
  if (anorm == T(0)) {
    st.ok = true;
    return st;
  }

  int hi = n - 1;
  int iter = 0;
  const int max_total = max_sweeps_per_eig * n + 20;
  while (hi >= 0) {
    if (++st.iterations > max_total) return st;

    // Look for a negligible subdiagonal entry.
    int lo = hi;
    while (lo > 0) {
      T s = abs(h(lo - 1, lo - 1)) + abs(h(lo, lo));
      if (s == T(0)) s = anorm;
      if (!(abs(h(lo, lo - 1)) > eps * s)) {  // also catches NaN/NaR
        if (!is_number(h(lo, lo - 1))) return st;
        h(lo, lo - 1) = T(0);
        break;
      }
      --lo;
    }

    if (lo == hi) {  // 1x1 block deflated
      hi -= 1;
      iter = 0;
      continue;
    }
    if (lo == hi - 1) {  // 2x2 block deflated
      detail::standardize_2x2(h, z, static_cast<std::size_t>(lo));
      hi -= 2;
      iter = 0;
      continue;
    }

    ++iter;
    // Shift from the trailing 2x2 (or exceptional shifts, dlahqr-style).
    T s11, s12, s21, s22;
    if (iter == 10 || iter == 20 || iter == 30) {
      const T s = abs(h(hi, hi - 1)) + abs(h(hi - 1, hi - 2));
      s11 = NumTraits<T>::from_double(0.75) * s + h(hi, hi);
      s12 = NumTraits<T>::from_double(-0.4375) * s;
      s21 = s;
      s22 = s11;
    } else {
      s11 = h(hi - 1, hi - 1);
      s12 = h(hi - 1, hi);
      s21 = h(hi, hi - 1);
      s22 = h(hi, hi);
    }
    const T tr = s11 + s22;
    const T det = s11 * s22 - s12 * s21;

    // First column of (H - aI)(H - bI) e1 on the active window.
    T x = h(lo, lo) * h(lo, lo) + h(lo, lo + 1) * h(lo + 1, lo) - tr * h(lo, lo) + det;
    T y = h(lo + 1, lo) * (h(lo, lo) + h(lo + 1, lo + 1) - tr);
    T w = h(lo + 1, lo) * h(lo + 2, lo + 1);
    if (!is_number(x) || !is_number(y) || !is_number(w)) return st;

    // Bulge chase.
    for (int k = lo; k <= hi - 1; ++k) {
      const int nr = (hi - k + 1 < 3) ? hi - k + 1 : 3;
      T col[3];
      if (k == lo) {
        col[0] = x;
        col[1] = y;
        col[2] = w;
      } else {
        col[0] = h(k, k - 1);
        col[1] = h(k + 1, k - 1);
        col[2] = (nr == 3) ? h(k + 2, k - 1) : T(0);
      }
      T v[3], beta;
      if (!detail::make_reflector(col, nr, v, beta, style)) continue;

      // Left: rows k..k+nr-1, all columns (small m: simplicity over flops).
      for (int j = (k > lo ? k - 1 : lo); j < n; ++j) {
        T s(0);
        for (int i = 0; i < nr; ++i) s += v[i] * h(k + i, j);
        s *= beta;
        for (int i = 0; i < nr; ++i) h(k + i, j) -= s * v[i];
      }
      // Right: columns k..k+nr-1.
      const int ilast = (k + nr + 1 < hi + 1) ? k + nr + 1 : hi + 1;
      for (int i = 0; i < ilast; ++i) {
        T s(0);
        for (int j = 0; j < nr; ++j) s += h(i, k + j) * v[j];
        s *= beta;
        for (int j = 0; j < nr; ++j) h(i, k + j) -= s * v[j];
      }
      // Accumulate into z.
      for (std::size_t i = 0; i < z.rows(); ++i) {
        T s(0);
        for (int j = 0; j < nr; ++j) s += z(i, k + j) * v[j];
        s *= beta;
        for (int j = 0; j < nr; ++j) z(i, k + j) -= s * v[j];
      }
      // Clean the annihilated entries below the subdiagonal.
      if (k > lo) {
        for (int i = k + 1; i <= k + nr - 1; ++i) h(i, k - 1) = T(0);
      }
      if (!is_number(h(k + 1, k))) return st;
    }
  }
  st.ok = true;
  return st;
}

/// Eigenvalues (re, im) read off a real Schur form, in diagonal order.
template <typename T>
void schur_eigenvalues(const DenseMatrix<T>& t, std::vector<T>& re, std::vector<T>& im) {
  const std::size_t n = t.rows();
  re.assign(n, T(0));
  im.assign(n, T(0));
  std::size_t i = 0;
  const T half(0.5);
  while (i < n) {
    if (i + 1 == n || t(i + 1, i) == T(0)) {
      re[i] = t(i, i);
      ++i;
      continue;
    }
    const T a = t(i, i), b = t(i, i + 1), c = t(i + 1, i), d = t(i + 1, i + 1);
    const T p = (a - d) * half;
    const T disc = p * p + b * c;
    if (disc < T(0)) {  // complex pair
      const T sq = sqrt(-disc);
      re[i] = re[i + 1] = d + p;
      im[i] = sq;
      im[i + 1] = -sq;
    } else {  // real pair in an (unstandardized) 2x2 block
      const T sq = sqrt(disc);
      re[i] = d + p + sq;
      re[i + 1] = d + p - sq;
    }
    i += 2;
  }
}

}  // namespace mfla
