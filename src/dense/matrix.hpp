// Column-major dense matrix, templated over every scalar in the study.
#pragma once

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace mfla {

template <typename T>
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols), data_(rows * cols, T(0)) {}

  [[nodiscard]] static DenseMatrix identity(std::size_t n) {
    DenseMatrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = T(1);
    return m;
  }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  T& operator()(std::size_t i, std::size_t j) noexcept {
    assert(i < rows_ && j < cols_);
    return data_[j * rows_ + i];
  }
  const T& operator()(std::size_t i, std::size_t j) const noexcept {
    assert(i < rows_ && j < cols_);
    return data_[j * rows_ + i];
  }

  [[nodiscard]] T* col(std::size_t j) noexcept { return data_.data() + j * rows_; }
  [[nodiscard]] const T* col(std::size_t j) const noexcept { return data_.data() + j * rows_; }

  [[nodiscard]] T* data() noexcept { return data_.data(); }
  [[nodiscard]] const T* data() const noexcept { return data_.data(); }

  void fill(T v) { std::fill(data_.begin(), data_.end(), v); }

  /// Reshape in place, reusing the existing allocation when it suffices
  /// (std::vector capacity is kept). Contents are unspecified afterwards —
  /// this exists for workspace matrices that are fully overwritten before
  /// use (e.g. the Krylov–Schur restart's Rayleigh/accumulator scratch).
  void resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  /// resize to n x n and load the identity.
  void set_identity(std::size_t n) {
    resize(n, n);
    std::fill(data_.begin(), data_.end(), T(0));
    for (std::size_t i = 0; i < n; ++i) (*this)(i, i) = T(1);
  }

  /// Copy of the leading rows x cols block.
  [[nodiscard]] DenseMatrix top_left(std::size_t r, std::size_t c) const {
    assert(r <= rows_ && c <= cols_);
    DenseMatrix out(r, c);
    for (std::size_t j = 0; j < c; ++j)
      for (std::size_t i = 0; i < r; ++i) out(i, j) = (*this)(i, j);
    return out;
  }

  [[nodiscard]] DenseMatrix transposed() const {
    DenseMatrix out(cols_, rows_);
    for (std::size_t j = 0; j < cols_; ++j)
      for (std::size_t i = 0; i < rows_; ++i) out(j, i) = (*this)(i, j);
    return out;
  }

  /// Convert element-wise through a callable (e.g. format conversion).
  template <typename U, typename Fn>
  [[nodiscard]] DenseMatrix<U> map(Fn&& fn) const {
    DenseMatrix<U> out(rows_, cols_);
    for (std::size_t j = 0; j < cols_; ++j)
      for (std::size_t i = 0; i < rows_; ++i) out(i, j) = fn((*this)(i, j));
    return out;
  }

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<T> data_;
};

}  // namespace mfla
