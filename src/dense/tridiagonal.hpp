// Symmetric tridiagonal eigensolver: implicit QL with Wilkinson shifts
// (the classic tqli kernel), with optional eigenvector accumulation.
//
// Used by the thick-restart Lanczos solver for its first (purely
// tridiagonal) cycle, and available as a standalone kernel.
#pragma once

#include <cstddef>
#include <vector>

#include "arith/traits.hpp"
#include "dense/matrix.hpp"

namespace mfla {

/// Eigen-decomposition of the symmetric tridiagonal matrix with diagonal d
/// (length n) and subdiagonal e (length n-1): on return d holds the
/// eigenvalues (unsorted) and z (pre-initialized, typically identity or a
/// basis to rotate) is multiplied by the eigenvector matrix.
/// Returns false if the QL iteration fails to converge or hits non-finite
/// values (possible in the low-precision formats).
template <typename T>
bool tridiagonal_ql(std::vector<T>& d, std::vector<T>& e, DenseMatrix<T>& z,
                    int max_iter_per_eig = 40) {
  const std::size_t n = d.size();
  if (n == 0) return true;
  if (e.size() + 1 != n && !(n == 1 && e.empty())) return false;
  // Classic tqli scratch convention: e padded to length n (e[n-1] unused).
  e.resize(n, T(0));
  const T eps = NumTraits<T>::from_double(NumTraits<T>::epsilon());
  const T one(1), two(2);

  for (std::size_t l = 0; l < n; ++l) {
    int iter = 0;
    std::size_t m;
    do {
      // Find a negligible subdiagonal element.
      for (m = l; m + 1 < n; ++m) {
        const T dd = abs(d[m]) + abs(d[m + 1]);
        if (!(abs(e[m]) > eps * dd)) break;  // catches NaN too
      }
      if (m == l) break;
      if (++iter > max_iter_per_eig) return false;
      // Wilkinson shift.
      T g = (d[l + 1] - d[l]) / (two * e[l]);
      T r = sqrt(g * g + one);
      if (!is_number(r)) return false;
      const T gsign = (g >= T(0)) ? abs(r) : -abs(r);
      g = d[m] - d[l] + e[l] / (g + gsign);
      T s(1), c(1), p(0);
      bool underflow_break = false;
      for (std::size_t i = m; i-- > l;) {
        T f = s * e[i];
        const T b = c * e[i];
        r = sqrt(f * f + g * g);
        e[i + 1] = r;
        if (r == T(0)) {
          d[i + 1] -= p;
          e[m] = T(0);
          underflow_break = true;
          break;
        }
        if (!is_number(r)) return false;
        s = f / r;
        c = g / r;
        g = d[i + 1] - p;
        r = (d[i] - g) * s + two * c * b;
        p = s * r;
        d[i + 1] = g + p;
        g = c * r - b;
        // Accumulate eigenvectors.
        for (std::size_t k = 0; k < z.rows(); ++k) {
          f = z(k, i + 1);
          z(k, i + 1) = s * z(k, i) + c * f;
          z(k, i) = c * z(k, i) - s * f;
        }
      }
      if (underflow_break) continue;
      d[l] -= p;
      e[l] = g;
      e[m] = T(0);
    } while (m != l);
  }
  e.resize(n > 0 ? n - 1 : 0);
  return true;
}

}  // namespace mfla
