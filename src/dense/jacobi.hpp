// Cyclic Jacobi eigenvalue algorithm for dense symmetric matrices.
//
// Serves as an independent oracle in the test suite (it shares no code with
// the Hessenberg/Francis path) and as a robust fallback EVD for small
// symmetric systems.
#pragma once

#include <cstddef>

#include "arith/traits.hpp"
#include "dense/matrix.hpp"

namespace mfla {

/// In place: a (symmetric) becomes ~diagonal, v accumulates the
/// eigenvectors (columns). Returns the number of sweeps used, or -1 if the
/// iteration failed to converge / produced non-finite values.
template <typename T>
int jacobi_eigen(DenseMatrix<T>& a, DenseMatrix<T>& v, int max_sweeps = 30) {
  const std::size_t n = a.rows();
  v = DenseMatrix<T>::identity(n);
  if (n < 2) return 0;
  const T eps = NumTraits<T>::from_double(NumTraits<T>::epsilon());

  for (int sweep = 1; sweep <= max_sweeps; ++sweep) {
    T off(0);
    for (std::size_t p = 0; p < n; ++p)
      for (std::size_t q = p + 1; q < n; ++q) off += abs(a(p, q));
    if (!is_number(off)) return -1;
    T diag(0);
    for (std::size_t p = 0; p < n; ++p) diag += abs(a(p, p));
    if (off <= eps * (diag + off)) return sweep;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const T apq = a(p, q);
        if (apq == T(0)) continue;
        const T app = a(p, p), aqq = a(q, q);
        // Rotation angle: theta = (aqq - app) / (2 apq).
        const T theta = (aqq - app) / (T(2) * apq);
        T t;
        const T abs_theta = abs(theta);
        if (abs_theta > T(1e7)) {
          t = T(1) / (T(2) * theta);
        } else {
          t = T(1) / (abs_theta + sqrt(theta * theta + T(1)));
          if (theta < T(0)) t = -t;
        }
        const T c = T(1) / sqrt(t * t + T(1));
        const T s = t * c;
        if (!is_number(s) || !is_number(c)) return -1;
        // A := J^T A J with J the (p,q) rotation.
        for (std::size_t i = 0; i < n; ++i) {
          const T aip = a(i, p), aiq = a(i, q);
          a(i, p) = c * aip - s * aiq;
          a(i, q) = s * aip + c * aiq;
        }
        for (std::size_t j = 0; j < n; ++j) {
          const T apj = a(p, j), aqj = a(q, j);
          a(p, j) = c * apj - s * aqj;
          a(q, j) = s * apj + c * aqj;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const T vip = v(i, p), viq = v(i, q);
          v(i, p) = c * vip - s * viq;
          v(i, q) = s * vip + c * viq;
        }
        // Clean symmetric off-diagonal pair.
        a(p, q) = T(0);
        a(q, p) = T(0);
      }
    }
  }
  return -1;
}

}  // namespace mfla
