// Thin Householder QR factorization.
#pragma once

#include <cstddef>
#include <vector>

#include "arith/quad.hpp"
#include "dense/matrix.hpp"

namespace mfla {

/// Factor a (m x n, m >= n) as Q R with Q thin-orthonormal (m x n) and R
/// upper triangular (n x n). Returns false on numerical breakdown.
template <typename T>
bool qr_factor(const DenseMatrix<T>& a, DenseMatrix<T>& q, DenseMatrix<T>& r) {
  const std::size_t m = a.rows(), n = a.cols();
  DenseMatrix<T> w = a;  // working copy, becomes R + reflectors
  std::vector<std::vector<T>> vs;
  std::vector<T> betas;
  vs.reserve(n);
  for (std::size_t k = 0; k < n && k < m; ++k) {
    T norm2(0);
    for (std::size_t i = k; i < m; ++i) norm2 += w(i, k) * w(i, k);
    T alpha = sqrt(norm2);
    if (!is_number(alpha)) return false;
    std::vector<T> v(m, T(0));
    T beta(0);
    if (alpha != T(0)) {
      if (w(k, k) > T(0)) alpha = -alpha;
      for (std::size_t i = k; i < m; ++i) v[i] = w(i, k);
      v[k] -= alpha;
      const T denom = norm2 - w(k, k) * alpha;
      if (denom != T(0)) {
        beta = T(1) / denom;
        for (std::size_t j = k; j < n; ++j) {
          T s(0);
          for (std::size_t i = k; i < m; ++i) s += v[i] * w(i, j);
          s *= beta;
          for (std::size_t i = k; i < m; ++i) w(i, j) -= s * v[i];
        }
      }
    }
    vs.push_back(std::move(v));
    betas.push_back(beta);
  }
  r = DenseMatrix<T>(n, n);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i <= j; ++i) r(i, j) = w(i, j);
  // Q = H_0 ... H_{n-1} applied to the thin identity.
  q = DenseMatrix<T>(m, n);
  for (std::size_t j = 0; j < n && j < m; ++j) q(j, j) = T(1);
  for (std::size_t k = vs.size(); k-- > 0;) {
    if (betas[k] == T(0)) continue;
    for (std::size_t j = 0; j < n; ++j) {
      T s(0);
      for (std::size_t i = k; i < m; ++i) s += vs[k][i] * q(i, j);
      s *= betas[k];
      for (std::size_t i = k; i < m; ++i) q(i, j) -= s * vs[k][i];
    }
  }
  return true;
}

}  // namespace mfla
