// Eigenvector extraction from a real Schur decomposition (T, Z): for a real
// eigenvalue at diagonal position k, back-substitute through the leading
// quasi-triangular block and rotate back through Z.
//
// The evaluation pipeline itself works on *symmetric* matrices, where the
// Schur vectors are already the eigenvectors (R is diagonal); this routine
// completes the library for general real matrices with real eigenvalues.
#pragma once

#include <cstddef>
#include <vector>

#include "arith/traits.hpp"
#include "dense/matrix.hpp"

namespace mfla {

/// Right eigenvector for the real eigenvalue at 1x1 diagonal position k of
/// the quasi-triangular t; the vector is expressed in the Schur basis and
/// then mapped through z. Returns an empty vector if k sits inside a 2x2
/// (complex) block.
template <typename T>
[[nodiscard]] std::vector<T> schur_eigenvector(const DenseMatrix<T>& t, const DenseMatrix<T>& z,
                                               std::size_t k) {
  const std::size_t n = t.rows();
  const bool in_pair_below = (k + 1 < n && t(k + 1, k) != T(0));
  const bool in_pair_above = (k > 0 && t(k, k - 1) != T(0));
  if (in_pair_below || in_pair_above) return {};

  const T lambda = t(k, k);
  const T smallnum = NumTraits<T>::from_double(NumTraits<T>::epsilon());
  std::vector<T> y(k + 1, T(0));
  y[k] = T(1);

  std::size_t i = k;
  while (i-- > 0) {
    T rhs(0);
    for (std::size_t j = i + 1; j <= k; ++j) rhs -= t(i, j) * y[j];
    if (i > 0 && t(i, i - 1) != T(0)) {
      // 2x2 block rows (i-1, i): solve the coupled system.
      T rhs0(0);
      for (std::size_t j = i + 1; j <= k; ++j) rhs0 -= t(i - 1, j) * y[j];
      const T a = t(i - 1, i - 1) - lambda, b = t(i - 1, i);
      const T c = t(i, i - 1), d = t(i, i) - lambda;
      T det = a * d - b * c;
      if (abs(det) < smallnum) det = (det < T(0)) ? -smallnum : smallnum;
      y[i - 1] = (rhs0 * d - b * rhs) / det;
      y[i] = (a * rhs - rhs0 * c) / det;
      --i;
    } else {
      T denom = t(i, i) - lambda;
      if (abs(denom) < smallnum) denom = (denom < T(0)) ? -smallnum : smallnum;
      y[i] = rhs / denom;
    }
  }

  // x = Z(:, 0..k) * y, normalized.
  std::vector<T> x(z.rows(), T(0));
  for (std::size_t j = 0; j <= k; ++j) {
    const T yj = y[j];
    for (std::size_t r = 0; r < z.rows(); ++r) x[r] += z(r, j) * yj;
  }
  T norm2(0);
  for (const T& v : x) norm2 += v * v;
  const T nrm = sqrt(norm2);
  if (is_number(nrm) && nrm != T(0)) {
    const T inv = T(1) / nrm;
    for (T& v : x) v *= inv;
  }
  return x;
}

}  // namespace mfla
