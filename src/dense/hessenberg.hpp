// Householder reduction of a dense square matrix to upper Hessenberg form,
// with accumulation of the orthogonal similarity.
//
// Used by the Krylov–Schur restart: after truncation the Rayleigh quotient
// matrix is (quasi-triangular + spike + Hessenberg extension); it must be
// restored to Hessenberg form before the Francis QR sweep.
//
// The reflector applications run through the kernel layer
// (kernels/vector_ops.hpp) as contiguous column dot/axpy operations, so
// the ≤16-bit formats take the LUT fast paths. The row-wise right/Q
// applications are expressed column-by-column; per element the
// accumulation order (ascending j) is unchanged, and commuting a
// correctly rounded multiply or folding a negation into the axpy
// coefficient is exact in every format here, so results are bit-identical
// to the direct row-wise loops.
#pragma once

#include <cstddef>
#include <vector>

#include "arith/quad.hpp"
#include "dense/matrix.hpp"
#include "kernels/vector_ops.hpp"

namespace mfla {

/// Reflector scratch for hessenberg_reduce, reusable across calls (the
/// Krylov–Schur solver re-reduces its Rayleigh matrix every restart).
template <typename T>
struct HessenbergScratch {
  std::vector<T> v;  // reflector
  std::vector<T> w;  // row-sum accumulator
};

/// In place: a becomes upper Hessenberg H = Q^T A Q; q (same size,
/// pre-initialized, typically identity) becomes q·Q.
/// Returns false if a non-finite value appeared (low-precision overflow).
/// `scratch` buffers are resized here and recycled by repeat callers.
template <typename T>
bool hessenberg_reduce(DenseMatrix<T>& a, DenseMatrix<T>& q, HessenbergScratch<T>& scratch) {
  const std::size_t n = a.rows();
  if (n <= 2) return true;
  scratch.v.resize(n);
  scratch.w.resize(n > q.rows() ? n : q.rows());
  std::vector<T>& v = scratch.v;
  std::vector<T>& w = scratch.w;
  for (std::size_t k = 0; k + 2 < n; ++k) {
    // Householder reflector annihilating a(k+2..n-1, k).
    T scale(0);
    for (std::size_t i = k + 1; i < n; ++i) scale += abs(a(i, k));
    if (!is_number(scale)) return false;
    if (scale == T(0)) continue;
    const std::size_t len = n - (k + 1);  // active rows/cols k+1..n-1
    for (std::size_t i = k + 1; i < n; ++i) v[i] = a(i, k) / scale;
    T alpha2 = kernels::dot(len, v.data() + k + 1, v.data() + k + 1);
    T alpha = sqrt(alpha2);
    if (!is_number(alpha) || alpha == T(0)) continue;
    if (v[k + 1] > T(0)) alpha = -alpha;
    // v := x - alpha e1, beta = 1/(alpha^2 - alpha x1) so P = I - beta v v^T.
    const T denom = alpha2 - v[k + 1] * alpha;
    if (denom == T(0)) continue;
    const T beta = T(1) / denom;
    v[k + 1] = v[k + 1] - alpha;
    if (!is_number(beta)) return false;

    // Apply from the left: A := P A on rows k+1..n-1 (contiguous in each
    // column): s = beta * v^T a_j, then a_j -= s v.
    for (std::size_t j = 0; j < n; ++j) {
      T* colj = a.col(j) + (k + 1);
      T s = kernels::dot(len, v.data() + k + 1, colj);
      s *= beta;
      kernels::axpy(len, -s, v.data() + k + 1, colj);
    }
    // Apply from the right: A := A P on cols k+1..n-1. Row-wise sums are
    // built column-by-column: w = beta * A[:, k+1..n) v, then a_j -= v_j w.
    for (std::size_t i = 0; i < n; ++i) w[i] = T(0);
    for (std::size_t j = k + 1; j < n; ++j) kernels::axpy(n, v[j], a.col(j), w.data());
    kernels::scal(n, beta, w.data());
    for (std::size_t j = k + 1; j < n; ++j) kernels::axpy(n, -v[j], w.data(), a.col(j));
    // Accumulate: Q := Q P (same shape as the right application).
    const std::size_t qr = q.rows();
    for (std::size_t i = 0; i < qr; ++i) w[i] = T(0);
    for (std::size_t j = k + 1; j < n; ++j) kernels::axpy(qr, v[j], q.col(j), w.data());
    kernels::scal(qr, beta, w.data());
    for (std::size_t j = k + 1; j < n; ++j) kernels::axpy(qr, -v[j], w.data(), q.col(j));
    // Restore the exact Hessenberg pattern.
    a(k + 1, k) = alpha * scale;
    for (std::size_t i = k + 2; i < n; ++i) a(i, k) = T(0);
  }
  // Validate finiteness once at the end.
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < n; ++i)
      if (!is_number(a(i, j))) return false;
  return true;
}

/// Convenience overload with throwaway scratch (one-off call sites).
template <typename T>
bool hessenberg_reduce(DenseMatrix<T>& a, DenseMatrix<T>& q) {
  HessenbergScratch<T> scratch;
  return hessenberg_reduce(a, q, scratch);
}

}  // namespace mfla
