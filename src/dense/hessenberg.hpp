// Householder reduction of a dense square matrix to upper Hessenberg form,
// with accumulation of the orthogonal similarity.
//
// Used by the Krylov–Schur restart: after truncation the Rayleigh quotient
// matrix is (quasi-triangular + spike + Hessenberg extension); it must be
// restored to Hessenberg form before the Francis QR sweep.
#pragma once

#include <cstddef>
#include <vector>

#include "arith/quad.hpp"
#include "dense/matrix.hpp"

namespace mfla {

/// In place: a becomes upper Hessenberg H = Q^T A Q; q (same size,
/// pre-initialized, typically identity) becomes q·Q.
/// Returns false if a non-finite value appeared (low-precision overflow).
template <typename T>
bool hessenberg_reduce(DenseMatrix<T>& a, DenseMatrix<T>& q) {
  const std::size_t n = a.rows();
  if (n <= 2) return true;
  std::vector<T> v(n), w(n);
  for (std::size_t k = 0; k + 2 < n; ++k) {
    // Householder reflector annihilating a(k+2..n-1, k).
    T scale(0);
    for (std::size_t i = k + 1; i < n; ++i) scale += abs(a(i, k));
    if (!is_number(scale)) return false;
    if (scale == T(0)) continue;
    T alpha2(0);
    for (std::size_t i = k + 1; i < n; ++i) {
      v[i] = a(i, k) / scale;
      alpha2 += v[i] * v[i];
    }
    T alpha = sqrt(alpha2);
    if (!is_number(alpha) || alpha == T(0)) continue;
    if (v[k + 1] > T(0)) alpha = -alpha;
    // v := x - alpha e1, beta = 1/(alpha^2 - alpha x1) so P = I - beta v v^T.
    const T denom = alpha2 - v[k + 1] * alpha;
    if (denom == T(0)) continue;
    const T beta = T(1) / denom;
    v[k + 1] = v[k + 1] - alpha;
    if (!is_number(beta)) return false;

    // Apply from the left: A := P A on rows k+1..n-1.
    for (std::size_t j = 0; j < n; ++j) {
      T s(0);
      for (std::size_t i = k + 1; i < n; ++i) s += v[i] * a(i, j);
      s *= beta;
      for (std::size_t i = k + 1; i < n; ++i) a(i, j) -= s * v[i];
    }
    // Apply from the right: A := A P on cols k+1..n-1.
    for (std::size_t i = 0; i < n; ++i) {
      T s(0);
      for (std::size_t j = k + 1; j < n; ++j) s += a(i, j) * v[j];
      s *= beta;
      for (std::size_t j = k + 1; j < n; ++j) a(i, j) -= s * v[j];
    }
    // Accumulate: Q := Q P.
    for (std::size_t i = 0; i < q.rows(); ++i) {
      T s(0);
      for (std::size_t j = k + 1; j < n; ++j) s += q(i, j) * v[j];
      s *= beta;
      for (std::size_t j = k + 1; j < n; ++j) q(i, j) -= s * v[j];
    }
    // Restore the exact Hessenberg pattern.
    a(k + 1, k) = alpha * scale;
    for (std::size_t i = k + 2; i < n; ++i) a(i, k) = T(0);
  }
  // Validate finiteness once at the end.
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < n; ++i)
      if (!is_number(a(i, j))) return false;
  return true;
}

}  // namespace mfla
