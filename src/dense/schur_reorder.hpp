// Reordering of a real Schur form: bring selected eigenvalues to the top
// via adjacent block swaps (LAPACK dtrexc/dlaexc approach).
//
// Adjacent 1x1-1x1 swaps use a Givens rotation; swaps involving 2x2 blocks
// solve a small Sylvester equation and re-orthonormalize (direct swap).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "arith/traits.hpp"
#include "dense/matrix.hpp"
#include "dense/schur.hpp"

namespace mfla {
namespace detail {

/// Gaussian elimination with partial pivoting for tiny systems (n <= 4).
/// Returns false when the pivot collapses (near-singular system).
template <typename T>
bool solve_small(DenseMatrix<T>& a, std::vector<T>& b) {
  const std::size_t n = a.rows();
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t piv = k;
    for (std::size_t i = k + 1; i < n; ++i)
      if (abs(a(i, k)) > abs(a(piv, k))) piv = i;
    if (piv != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(a(k, j), a(piv, j));
      std::swap(b[k], b[piv]);
    }
    const T p = a(k, k);
    if (p == T(0) || !is_number(p)) return false;
    for (std::size_t i = k + 1; i < n; ++i) {
      const T f = a(i, k) / p;
      for (std::size_t j = k; j < n; ++j) a(i, j) -= f * a(k, j);
      b[i] -= f * b[k];
    }
  }
  for (std::size_t k = n; k-- > 0;) {
    T s = b[k];
    for (std::size_t j = k + 1; j < n; ++j) s -= a(k, j) * b[j];
    b[k] = s / a(k, k);
    if (!is_number(b[k])) return false;
  }
  return true;
}

/// Swap the adjacent diagonal blocks of sizes p (at `i`) and q (at `i+p`).
/// Returns false if the swap is ill-conditioned and was skipped.
template <typename T>
bool swap_adjacent_blocks(DenseMatrix<T>& t, DenseMatrix<T>& z, std::size_t i, int p, int q) {
  if (p == 1 && q == 1) {
    const T t11 = t(i, i), t12 = t(i, i + 1), t22 = t(i + 1, i + 1);
    T x0 = t12, x1 = t22 - t11;
    if (abs(x1) == T(0)) return true;  // equal eigenvalues: nothing to do
    // dlartg-style scaling before the sum of squares (see schur.hpp).
    const T mx = (abs(x0) > abs(x1)) ? abs(x0) : abs(x1);
    if (!is_number(mx) || mx == T(0)) return false;
    x0 = x0 / mx;
    x1 = x1 / mx;
    const T r = sqrt(x0 * x0 + x1 * x1);
    if (!is_number(r) || r == T(0)) return false;
    apply_rotation_similarity(t, z, i, x0 / r, x1 / r);
    t(i + 1, i) = T(0);
    return true;
  }
  // Direct swap: solve A11 X - X A22 = A12 (pq <= 4 unknowns).
  const int m = p + q;
  DenseMatrix<T> sys(static_cast<std::size_t>(p * q), static_cast<std::size_t>(p * q));
  std::vector<T> rhs(static_cast<std::size_t>(p * q));
  for (int r = 0; r < p; ++r) {
    for (int c = 0; c < q; ++c) {
      const int eq = r * q + c;
      rhs[eq] = t(i + r, i + p + c);
      for (int k = 0; k < p; ++k) sys(eq, k * q + c) += t(i + r, i + k);
      for (int k = 0; k < q; ++k) sys(eq, r * q + k) -= t(i + p + k, i + p + c);
    }
  }
  if (!solve_small(sys, rhs)) return false;
  // QR of [-X; I_q] (m x q) by Householder; accumulate full Q (m x m).
  DenseMatrix<T> k(static_cast<std::size_t>(m), static_cast<std::size_t>(q));
  for (int r = 0; r < p; ++r)
    for (int c = 0; c < q; ++c) k(r, c) = -rhs[r * q + c];
  for (int c = 0; c < q; ++c) k(p + c, c) = T(1);
  DenseMatrix<T> qm = DenseMatrix<T>::identity(static_cast<std::size_t>(m));
  for (int col = 0; col < q; ++col) {
    T norm2(0);
    for (int r = col; r < m; ++r) norm2 += k(r, col) * k(r, col);
    T alpha = sqrt(norm2);
    if (!is_number(alpha) || alpha == T(0)) return false;
    if (k(col, col) > T(0)) alpha = -alpha;
    std::vector<T> v(static_cast<std::size_t>(m), T(0));
    for (int r = col; r < m; ++r) v[r] = k(r, col);
    v[col] -= alpha;
    const T denom = norm2 - k(col, col) * alpha;
    if (denom == T(0) || !is_number(denom)) return false;
    const T beta = T(1) / denom;
    for (int c = col; c < q; ++c) {  // K := P K
      T s(0);
      for (int r = col; r < m; ++r) s += v[r] * k(r, c);
      s *= beta;
      for (int r = col; r < m; ++r) k(r, c) -= s * v[r];
    }
    for (int r = 0; r < m; ++r) {  // Q := Q P
      T s(0);
      for (int c = col; c < m; ++c) s += qm(r, c) * v[c];
      s *= beta;
      for (int c = col; c < m; ++c) qm(r, c) -= s * v[c];
    }
  }
  // Similarity on the full matrix: rows/cols i..i+m-1.
  const std::size_t n = t.rows();
  DenseMatrix<T> tmp(static_cast<std::size_t>(m), n);
  for (int r = 0; r < m; ++r)  // tmp := Q^T * T[rows,:]
    for (std::size_t j = 0; j < n; ++j) {
      T s(0);
      for (int l = 0; l < m; ++l) s += qm(l, r) * t(i + l, j);
      tmp(r, j) = s;
    }
  for (int r = 0; r < m; ++r)
    for (std::size_t j = 0; j < n; ++j) t(i + r, j) = tmp(r, j);
  DenseMatrix<T> tmp2(n, static_cast<std::size_t>(m));
  for (std::size_t r = 0; r < n; ++r)  // T[:,cols] := T[:,cols] * Q
    for (int c = 0; c < m; ++c) {
      T s(0);
      for (int l = 0; l < m; ++l) s += t(r, i + l) * qm(l, c);
      tmp2(r, c) = s;
    }
  for (std::size_t r = 0; r < n; ++r)
    for (int c = 0; c < m; ++c) t(r, i + c) = tmp2(r, c);
  for (std::size_t r = 0; r < z.rows(); ++r) {  // Z[:,cols] := Z[:,cols] * Q
    T acc[4];
    for (int c = 0; c < m; ++c) {
      T s(0);
      for (int l = 0; l < m; ++l) s += z(r, i + l) * qm(l, c);
      acc[c] = s;
    }
    for (int c = 0; c < m; ++c) z(r, i + c) = acc[c];
  }
  // Enforce the block-triangular pattern: new leading block has size q.
  for (int r = q; r < m; ++r)
    for (int c = 0; c < q; ++c) t(i + r, i + c) = T(0);
  // Standardize the two new blocks where applicable.
  if (q == 2) standardize_2x2(t, z, i);
  if (p == 2) standardize_2x2(t, z, i + static_cast<std::size_t>(q));
  return true;
}

}  // namespace detail

/// A diagonal block of a real Schur form with its eigenvalue (for ordering
/// decisions, held in double: exact for real eigenvalues of every format).
struct SchurBlock {
  std::size_t start = 0;
  int size = 1;
  double re = 0.0;
  double im = 0.0;
};

template <typename T>
[[nodiscard]] std::vector<SchurBlock> schur_blocks(const DenseMatrix<T>& t) {
  std::vector<T> re, im;
  schur_eigenvalues(t, re, im);
  std::vector<SchurBlock> blocks;
  std::size_t i = 0;
  const std::size_t n = t.rows();
  while (i < n) {
    SchurBlock b;
    b.start = i;
    b.size = (i + 1 < n && t(i + 1, i) != T(0)) ? 2 : 1;
    b.re = NumTraits<T>::to_double(re[i]);
    b.im = NumTraits<T>::to_double(im[i]);
    blocks.push_back(b);
    i += static_cast<std::size_t>(b.size);
  }
  return blocks;
}

/// Stable-sort the Schur blocks so that `prefer(a, b) == true` means block a
/// comes before block b (e.g. larger |λ| first). Uses adjacent swaps only.
template <typename T>
void reorder_schur(DenseMatrix<T>& t, DenseMatrix<T>& z,
                   const std::function<bool(const SchurBlock&, const SchurBlock&)>& prefer) {
  auto blocks = schur_blocks(t);
  const std::size_t nb = blocks.size();
  if (nb < 2) return;
  bool changed = true;
  std::size_t guard = 0;
  while (changed && guard++ < nb * nb + 4) {
    changed = false;
    for (std::size_t b = 0; b + 1 < blocks.size(); ++b) {
      if (prefer(blocks[b + 1], blocks[b]) && !prefer(blocks[b], blocks[b + 1])) {
        const std::size_t start = blocks[b].start;
        if (detail::swap_adjacent_blocks(t, z, start, blocks[b].size, blocks[b + 1].size)) {
          std::swap(blocks[b], blocks[b + 1]);
          blocks[b].start = start;
          blocks[b + 1].start = start + static_cast<std::size_t>(blocks[b].size);
          changed = true;
        }
      }
    }
  }
}

}  // namespace mfla
