// BLAS-style kernels, templated over the scalar type.
//
// These are the kernels whose low-precision behavior the paper studies:
// accumulation happens in the working format T (no hidden wide
// accumulators), so overflow/rounding effects are exactly those of the
// format under evaluation.
#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

#include "arith/quad.hpp"
#include "dense/matrix.hpp"

namespace mfla {

template <typename T>
[[nodiscard]] T dot(std::size_t n, const T* x, const T* y) noexcept {
  T acc(0);
  for (std::size_t i = 0; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

template <typename T>
[[nodiscard]] T nrm2(std::size_t n, const T* x) noexcept {
  // Unqualified call: resolves to the mfla:: overload for native floats and
  // via ADL for the emulated formats.
  return sqrt(dot(n, x, x));
}

template <typename T>
void axpy(std::size_t n, T alpha, const T* x, T* y) noexcept {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

template <typename T>
void scal(std::size_t n, T alpha, T* x) noexcept {
  for (std::size_t i = 0; i < n; ++i) x[i] *= alpha;
}

/// y := A x (dense, column-major).
template <typename T>
void gemv(const DenseMatrix<T>& a, const T* x, T* y) noexcept {
  const std::size_t m = a.rows(), n = a.cols();
  for (std::size_t i = 0; i < m; ++i) y[i] = T(0);
  for (std::size_t j = 0; j < n; ++j) {
    const T xj = x[j];
    const T* col = a.col(j);
    for (std::size_t i = 0; i < m; ++i) y[i] += col[i] * xj;
  }
}

/// y := A^T x (dense, column-major).
template <typename T>
void gemv_t(const DenseMatrix<T>& a, const T* x, T* y) noexcept {
  const std::size_t m = a.rows(), n = a.cols();
  for (std::size_t j = 0; j < n; ++j) y[j] = dot(m, a.col(j), x);
}

/// C := A * B.
template <typename T>
[[nodiscard]] DenseMatrix<T> matmul(const DenseMatrix<T>& a, const DenseMatrix<T>& b) {
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  DenseMatrix<T> c(m, n);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t l = 0; l < k; ++l) {
      const T blj = b(l, j);
      const T* acol = a.col(l);
      T* ccol = c.col(j);
      for (std::size_t i = 0; i < m; ++i) ccol[i] += acol[i] * blj;
    }
  }
  return c;
}

/// C := A^T * B.
template <typename T>
[[nodiscard]] DenseMatrix<T> matmul_tn(const DenseMatrix<T>& a, const DenseMatrix<T>& b) {
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  DenseMatrix<T> c(m, n);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < m; ++i) c(i, j) = dot(k, a.col(i), b.col(j));
  return c;
}

/// Update the leading `keep` columns of V in place: V[:, :keep] := V * W,
/// where W has V.cols() rows (or fewer) and `keep` columns.
template <typename T>
void update_basis(DenseMatrix<T>& v, const DenseMatrix<T>& w, std::size_t keep) {
  const std::size_t n = v.rows();
  const std::size_t m = w.rows();
  DenseMatrix<T> tmp(n, keep);
  for (std::size_t j = 0; j < keep; ++j) {
    T* out = tmp.col(j);
    for (std::size_t l = 0; l < m; ++l) {
      const T wlj = w(l, j);
      const T* vcol = v.col(l);
      for (std::size_t i = 0; i < n; ++i) out[i] += vcol[i] * wlj;
    }
  }
  for (std::size_t j = 0; j < keep; ++j) {
    T* dst = v.col(j);
    const T* src = tmp.col(j);
    for (std::size_t i = 0; i < n; ++i) dst[i] = src[i];
  }
}

/// Frobenius norm computed in double (used by tests / diagnostics only).
template <typename T>
[[nodiscard]] double frobenius_norm_double(const DenseMatrix<T>& a) {
  double acc = 0;
  for (std::size_t j = 0; j < a.cols(); ++j)
    for (std::size_t i = 0; i < a.rows(); ++i) {
      const double v = static_cast<double>(a(i, j));
      acc += v * v;
    }
  return std::sqrt(acc);
}

}  // namespace mfla
