#include "support/rng.hpp"

#include <cmath>

namespace mfla {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

Rng::Rng(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

Rng::Rng(std::string_view name, std::uint64_t salt) noexcept
    : Rng(fnv1a(name) ^ (salt * 0x9e3779b97f4a7c15ull + 0x2545f4914f6cdd1dull)) {}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  if (n == 0) return 0;
  // Rejection-free Lemire reduction is overkill here; modulo bias is
  // negligible for n << 2^64 and this is not cryptographic.
  return next_u64() % n;
}

double Rng::normal() noexcept {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return spare_normal_;
  }
  double u1 = uniform();
  double u2 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_normal_ = r * std::sin(theta);
  have_spare_normal_ = true;
  return r * std::cos(theta);
}

double Rng::log_uniform(double lo_exp, double hi_exp) noexcept {
  return std::pow(10.0, uniform(lo_exp, hi_exp));
}

std::vector<double> Rng::unit_vector(std::size_t n) noexcept {
  std::vector<double> v(n);
  double norm_sq = 0.0;
  for (auto& x : v) {
    x = normal();
    norm_sq += x * x;
  }
  const double inv = (norm_sq > 0) ? 1.0 / std::sqrt(norm_sq) : 0.0;
  for (auto& x : v) x *= inv;
  return v;
}

}  // namespace mfla
