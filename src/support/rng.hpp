// Deterministic random number generation for corpora and solvers.
//
// Every dataset and every solver start vector is derived from a named seed
// so that experiments are exactly reproducible run-to-run and across
// machines (we only rely on our own splitmix/xoshiro implementation, never
// on std::mt19937 distribution details).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace mfla {

/// SplitMix64: seed expander (public-domain construction by Vigna).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — fast, high-quality 64-bit generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;
  /// Seed from a human-readable name (matrix name, corpus id, ...).
  explicit Rng(std::string_view name, std::uint64_t salt = 0) noexcept;

  std::uint64_t next_u64() noexcept;

  /// Uniform in [0, 1).
  double uniform() noexcept;
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n) noexcept;
  /// Standard normal via Box-Muller.
  double normal() noexcept;
  /// log-uniform over [10^lo_exp, 10^hi_exp).
  double log_uniform(double lo_exp, double hi_exp) noexcept;
  /// Random unit vector of length n (normalized standard normals).
  std::vector<double> unit_vector(std::size_t n) noexcept;

 private:
  std::uint64_t s_[4];
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

/// FNV-1a hash of a string, used to derive seeds from names.
[[nodiscard]] std::uint64_t fnv1a(std::string_view s) noexcept;

}  // namespace mfla
