#include "support/jsonl.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace mfla::jsonl {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c) & 0xff);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

JsonLine& JsonLine::num(const char* key, double v) {
  next(key);
  if (std::isnan(v)) {
    s_ += "NaN";
  } else if (std::isinf(v)) {
    s_ += v > 0 ? "Infinity" : "-Infinity";
  } else {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    s_ += buf;
  }
  return *this;
}

bool parse_line(const std::string& line, std::map<std::string, std::string>& out) {
  std::size_t i = 0;
  auto skip_ws = [&] {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  };
  auto parse_string = [&](std::string& s) -> bool {
    if (i >= line.size() || line[i] != '"') return false;
    ++i;
    s.clear();
    while (i < line.size() && line[i] != '"') {
      char c = line[i];
      if (c == '\\') {
        if (++i >= line.size()) return false;
        switch (line[i]) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'u': {
            if (i + 4 >= line.size()) return false;
            char* end = nullptr;
            const std::string hex = line.substr(i + 1, 4);
            const unsigned long cp = std::strtoul(hex.c_str(), &end, 16);
            if (end == nullptr || *end != '\0' || cp > 0xff) return false;  // we only emit \u00xx
            c = static_cast<char>(cp);
            i += 4;
            break;
          }
          default: return false;
        }
      }
      s += c;
      ++i;
    }
    if (i >= line.size()) return false;
    ++i;  // closing quote
    return true;
  };

  skip_ws();
  if (i >= line.size() || line[i] != '{') return false;
  ++i;
  skip_ws();
  if (i < line.size() && line[i] == '}') return true;
  while (true) {
    skip_ws();
    std::string key;
    if (!parse_string(key)) return false;
    skip_ws();
    if (i >= line.size() || line[i] != ':') return false;
    ++i;
    skip_ws();
    std::string value;
    if (i < line.size() && line[i] == '"') {
      if (!parse_string(value)) return false;
    } else {
      while (i < line.size() && line[i] != ',' && line[i] != '}') value += line[i++];
      while (!value.empty() && (value.back() == ' ' || value.back() == '\t')) value.pop_back();
      if (value.empty()) return false;
    }
    out[key] = value;
    skip_ws();
    if (i >= line.size()) return false;
    if (line[i] == '}') return true;
    if (line[i] != ',') return false;
    ++i;
  }
}

double field_num(const std::map<std::string, std::string>& obj, const char* key) {
  const auto it = obj.find(key);
  if (it == obj.end()) throw std::invalid_argument(std::string("missing field ") + key);
  // strtod accepts the inf/nan spellings %.17g produces and also
  // "Infinity"/"NaN" (as the INF/NAN prefixes are case-insensitive).
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str()) throw std::invalid_argument(std::string("bad number in ") + key);
  return v;
}

std::uint64_t field_u64(const std::map<std::string, std::string>& obj, const char* key) {
  const auto it = obj.find(key);
  if (it == obj.end()) throw std::invalid_argument(std::string("missing field ") + key);
  char* end = nullptr;
  errno = 0;
  const std::uint64_t v = std::strtoull(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || errno == ERANGE)
    throw std::invalid_argument(std::string("bad integer in ") + key);
  return v;
}

double field_num_or(const std::map<std::string, std::string>& obj, const char* key,
                    double fallback) {
  return obj.count(key) != 0 ? field_num(obj, key) : fallback;
}

std::uint64_t field_u64_or(const std::map<std::string, std::string>& obj, const char* key,
                           std::uint64_t fallback) {
  return obj.count(key) != 0 ? field_u64(obj, key) : fallback;
}

std::string field_str(const std::map<std::string, std::string>& obj, const char* key) {
  const auto it = obj.find(key);
  if (it == obj.end()) throw std::invalid_argument(std::string("missing field ") + key);
  return it->second;
}

std::string field_str_or(const std::map<std::string, std::string>& obj, const char* key,
                         const std::string& fallback) {
  const auto it = obj.find(key);
  return it != obj.end() ? it->second : fallback;
}

}  // namespace mfla::jsonl
