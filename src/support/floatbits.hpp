// IEEE-754 double decomposition helpers shared by all emulated formats.
#pragma once

#include <bit>
#include <cstdint>

namespace mfla {

/// Exact decomposition of a double: |d| = sig * 2^e with sig in [2^52, 2^53)
/// for all finite non-zero inputs (subnormals are normalized).
struct DoubleParts {
  bool neg = false;
  bool zero = false;
  bool nan = false;
  bool inf = false;
  int e = 0;               // binary exponent of the least significant bit
  std::uint64_t sig = 0;   // 53-bit significand, MSB set unless zero
};

[[nodiscard]] inline DoubleParts decompose_double(double d) noexcept {
  DoubleParts p;
  const auto bits = std::bit_cast<std::uint64_t>(d);
  p.neg = (bits >> 63) != 0;
  const int be = static_cast<int>((bits >> 52) & 0x7ff);
  std::uint64_t m = bits & ((1ull << 52) - 1);
  if (be == 0x7ff) {
    p.nan = (m != 0);
    p.inf = (m == 0);
    return p;
  }
  if (be == 0) {
    if (m == 0) {
      p.zero = true;
      return p;
    }
    // Subnormal: value = m * 2^-1074; normalize the significand to 53 bits.
    const int shift = __builtin_clzll(m) - 11;
    p.sig = m << shift;
    p.e = -1074 - shift;
    return p;
  }
  p.sig = (1ull << 52) | m;
  p.e = be - 1075;  // value = sig * 2^(be - 1023 - 52)
  return p;
}

/// Reassemble sign/significand/exponent into the nearest double
/// (round-to-nearest-even, graceful overflow/underflow via ldexp).
[[nodiscard]] inline double compose_double(bool neg, std::uint64_t sig, int e) noexcept {
  // static_cast<double>(sig) rounds the 64-bit integer correctly (RNE).
  const double mag = __builtin_ldexp(static_cast<double>(sig), e);
  return neg ? -mag : mag;
}

}  // namespace mfla
