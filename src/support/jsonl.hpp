// Flat one-line JSON building and parsing, shared by every JSONL surface
// of the system: the checkpoint journal (core/results_io.cpp), the serve
// protocol (serve/protocol.hpp) and the daemon's stats responses.
//
// The dialect is deliberately tiny — one object per line, string keys,
// scalar values only (strings, integers, doubles) — which keeps the parser
// a few dozen lines, dependency-free, and tolerant by construction: a torn
// or malformed line simply fails to parse and the caller skips it. Doubles
// round-trip exactly (%.17g; non-finite values are written as
// Infinity/-Infinity/NaN, which both this reader and Python's json module
// accept).
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace mfla::jsonl {

/// Append `s` to `out` as a quoted JSON string with the mandatory escapes.
void append_escaped(std::string& out, const std::string& s);

/// Flat one-line JSON object builder (scalar values only).
class JsonLine {
 public:
  JsonLine& str(const char* key, const std::string& v) {
    next(key);
    append_escaped(s_, v);
    return *this;
  }
  JsonLine& num(const char* key, double v);
  JsonLine& uint(const char* key, std::uint64_t v) {
    next(key);
    s_ += std::to_string(v);
    return *this;
  }
  JsonLine& integer(const char* key, long long v) {
    next(key);
    s_ += std::to_string(v);
    return *this;
  }
  [[nodiscard]] std::string finish() {
    s_ += '}';
    return std::move(s_);
  }

 private:
  void next(const char* key) {
    s_ += s_.size() > 1 ? "," : "";
    append_escaped(s_, key);
    s_ += ':';
  }
  std::string s_ = "{";
};

/// Minimal parser for the flat objects JsonLine emits: string keys, scalar
/// values (strings are unescaped; numbers/booleans kept as raw tokens).
/// Returns false on anything malformed — callers treat that as a torn line.
bool parse_line(const std::string& line, std::map<std::string, std::string>& out);

// Typed field accessors over a parsed object. The non-defaulted forms throw
// std::invalid_argument on a missing or malformed field; the *_or forms
// return the fallback when the key is absent (fields added after files
// already existed in the wild).
[[nodiscard]] double field_num(const std::map<std::string, std::string>& obj, const char* key);
[[nodiscard]] std::uint64_t field_u64(const std::map<std::string, std::string>& obj,
                                      const char* key);
[[nodiscard]] double field_num_or(const std::map<std::string, std::string>& obj, const char* key,
                                  double fallback);
[[nodiscard]] std::uint64_t field_u64_or(const std::map<std::string, std::string>& obj,
                                         const char* key, std::uint64_t fallback);
[[nodiscard]] std::string field_str(const std::map<std::string, std::string>& obj,
                                    const char* key);
[[nodiscard]] std::string field_str_or(const std::map<std::string, std::string>& obj,
                                       const char* key, const std::string& fallback);

}  // namespace mfla::jsonl
