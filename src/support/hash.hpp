// Stable 128-bit content hashing for cache keys and payload checksums.
//
// The reference-solution cache (core/reference_cache.hpp) addresses entries
// by a hash of the exact problem content: CSR structure, value bits, solver
// configuration and start-vector bits. Two properties matter there:
//
//  * stability — the digest is a value-level function of the fed words, not
//    of memory layout, so it is identical across compilers, platforms and
//    endiannesses (bytes are packed into words little-endian explicitly);
//  * sensitivity — flipping any single input bit changes the digest (each
//    word passes through two independently keyed multiply-xorshift lanes,
//    MurmurHash3-style, cross-coupled at finalization).
//
// This is a content hash, not a cryptographic one: collisions are
// astronomically unlikely by accident (128 bits) but constructible on
// purpose, which is fine for a local cache of self-produced results.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace mfla {

struct Hash128 {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  friend bool operator==(const Hash128&, const Hash128&) = default;

  /// 32 lowercase hex digits, hi word first (usable as a file name).
  [[nodiscard]] std::string hex() const {
    static constexpr char digits[] = "0123456789abcdef";
    std::string s(32, '0');
    for (int i = 0; i < 16; ++i) {
      s[static_cast<std::size_t>(i)] = digits[(hi >> (60 - 4 * i)) & 0xf];
      s[static_cast<std::size_t>(16 + i)] = digits[(lo >> (60 - 4 * i)) & 0xf];
    }
    return s;
  }
};

/// Streaming hasher: feed words and byte ranges, then finish().
class Hasher {
 public:
  Hasher() = default;
  explicit Hasher(std::uint64_t seed) noexcept : h1_(seed ^ kInit1), h2_(seed ^ kInit2) {}

  Hasher& u64(std::uint64_t v) noexcept {
    mix_word(v);
    return *this;
  }

  Hasher& u32(std::uint32_t v) noexcept { return u64(v); }

  Hasher& f64(double v) noexcept { return u64(std::bit_cast<std::uint64_t>(v)); }

  /// Hash a byte range by value: bytes are packed into 64-bit words
  /// little-endian, the tail word is zero-padded, and the length is mixed
  /// in, so "ab","c" and "a","bc" fed as separate ranges differ.
  Hasher& bytes(const void* data, std::size_t len) noexcept {
    const auto* p = static_cast<const unsigned char*>(data);
    std::size_t i = 0;
    for (; i + 8 <= len; i += 8) mix_word(load_le64(p + i));
    if (i < len) {
      std::uint64_t tail = 0;
      for (std::size_t k = 0; i + k < len; ++k)
        tail |= static_cast<std::uint64_t>(p[i + k]) << (8 * k);
      mix_word(tail);
    }
    mix_word(0x9ddfea08eb382d69ull ^ len);  // length terminator
    return *this;
  }

  Hasher& str(std::string_view s) noexcept { return bytes(s.data(), s.size()); }

  template <typename U>
    requires(sizeof(U) <= 8 && (std::unsigned_integral<U> || std::signed_integral<U>))
  Hasher& span(const U* data, std::size_t count) noexcept {
    for (std::size_t i = 0; i < count; ++i) mix_word(static_cast<std::uint64_t>(data[i]));
    mix_word(0xa0761d6478bd642full ^ count);
    return *this;
  }

  Hasher& span(const double* data, std::size_t count) noexcept {
    for (std::size_t i = 0; i < count; ++i) mix_word(std::bit_cast<std::uint64_t>(data[i]));
    mix_word(0xe7037ed1a0b428dbull ^ count);
    return *this;
  }

  [[nodiscard]] Hash128 finish() const noexcept {
    // Cross-couple the lanes and finalize (MurmurHash3 fmix64 twice).
    std::uint64_t a = h1_ ^ words_;
    std::uint64_t b = h2_ ^ (words_ * 0x9e3779b97f4a7c15ull);
    a += b;
    b += a;
    a = fmix64(a);
    b = fmix64(b);
    a += b;
    b += a;
    return Hash128{a, b};
  }

 private:
  static constexpr std::uint64_t kInit1 = 0x736f6d6570736575ull;
  static constexpr std::uint64_t kInit2 = 0x646f72616e646f6dull;

  [[nodiscard]] static std::uint64_t load_le64(const unsigned char* p) noexcept {
    std::uint64_t v = 0;
    for (int k = 0; k < 8; ++k) v |= static_cast<std::uint64_t>(p[k]) << (8 * k);
    return v;
  }

  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  [[nodiscard]] static constexpr std::uint64_t fmix64(std::uint64_t k) noexcept {
    k ^= k >> 33;
    k *= 0xff51afd7ed558ccdull;
    k ^= k >> 33;
    k *= 0xc4ceb9fe1a85ec53ull;
    k ^= k >> 33;
    return k;
  }

  void mix_word(std::uint64_t k) noexcept {
    // MurmurHash3 x64_128 body with the two 64-bit lanes.
    std::uint64_t k1 = k * 0x87c37b91114253d5ull;
    k1 = rotl(k1, 31);
    k1 *= 0x4cf5ad432745937full;
    h1_ ^= k1;
    h1_ = rotl(h1_, 27) + h2_;
    h1_ = h1_ * 5 + 0x52dce729;

    std::uint64_t k2 = k * 0x4cf5ad432745937full;
    k2 = rotl(k2, 33);
    k2 *= 0x87c37b91114253d5ull;
    h2_ ^= k2;
    h2_ = rotl(h2_, 31) + h1_;
    h2_ = h2_ * 5 + 0x38495ab5;

    ++words_;
  }

  std::uint64_t h1_ = kInit1;
  std::uint64_t h2_ = kInit2;
  std::uint64_t words_ = 0;
};

}  // namespace mfla
