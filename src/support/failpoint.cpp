#include "support/failpoint.hpp"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#ifdef _WIN32
#include <process.h>
#define MFLA_FAILPOINT_EXIT ::_exit
#else
#include <unistd.h>
#define MFLA_FAILPOINT_EXIT ::_exit
#endif

namespace mfla::failpoint {

namespace detail {
std::atomic<std::uint32_t> armed_count{0};
}  // namespace detail

namespace {

struct Entry {
  Config cfg;
  std::uint64_t hits = 0;
  std::uint64_t fires = 0;
  std::uint64_t rng = 0;  // xorshift64 state for @p triggers
};

struct Registry {
  std::mutex mtx;
  std::unordered_map<std::string, Entry> entries;
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;
};

Registry& registry() {
  static Registry r;  // magic static: safe from static initializers
  return r;
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

double next_uniform(Entry& e) {
  // xorshift64: deterministic per-entry stream, no global RNG coupling.
  std::uint64_t x = e.rng;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  e.rng = x;
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

[[noreturn]] void bad_spec(const std::string& clause, const char* why) {
  throw std::invalid_argument("failpoint spec \"" + clause + "\": " + why);
}

int parse_errno_name(const std::string& clause, std::string arg) {
  for (char& c : arg) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (arg.empty()) bad_spec(clause, "empty error() argument");
  if (std::isdigit(static_cast<unsigned char>(arg[0]))) {
    char* end = nullptr;
    long v = std::strtol(arg.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || v <= 0 || v > 4096)
      bad_spec(clause, "error() wants a positive errno");
    return static_cast<int>(v);
  }
  // The handful of errnos the durability seams care about, by POSIX name.
  if (arg == "eio") return 5;
  if (arg == "enoent") return 2;
  if (arg == "eagain") return 11;
  if (arg == "eacces") return 13;
  if (arg == "emfile") return 24;
  if (arg == "enospc") return 28;
  if (arg == "erofs") return 30;
  // Connection-class errnos for the serve.* socket seams (docs/SERVING.md).
  if (arg == "epipe") return 32;
  if (arg == "econnreset") return 104;
  if (arg == "etimedout") return 110;
  if (arg == "edquot") return 122;
  bad_spec(clause, "unknown errno name in error()");
}

// "action[@trigger]" → Config. Grammar documented in failpoint.hpp.
Config parse_action(const std::string& clause, const std::string& text) {
  Config cfg;
  std::string action = text;
  std::string trigger;
  if (std::size_t at = text.find('@'); at != std::string::npos) {
    action = trim(text.substr(0, at));
    trigger = trim(text.substr(at + 1));
  }

  std::string arg;
  if (std::size_t paren = action.find('('); paren != std::string::npos) {
    if (action.back() != ')') bad_spec(clause, "unterminated '('");
    arg = trim(action.substr(paren + 1, action.size() - paren - 2));
    action = trim(action.substr(0, paren));
  }

  if (action == "error") {
    cfg.action = Action::error;
    if (!arg.empty()) cfg.error_code = parse_errno_name(clause, arg);
  } else if (action == "throw") {
    cfg.action = Action::throw_exception;
    if (!arg.empty()) bad_spec(clause, "throw takes no argument");
  } else if (action == "delay") {
    cfg.action = Action::delay;
    if (arg.empty()) bad_spec(clause, "delay wants milliseconds, e.g. delay(50)");
    char* end = nullptr;
    long ms = std::strtol(arg.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || ms < 0 || ms > 60'000)
      bad_spec(clause, "delay(ms) wants 0..60000");
    cfg.delay_ms = static_cast<int>(ms);
  } else if (action == "crash") {
    cfg.action = Action::crash;
    if (!arg.empty()) bad_spec(clause, "crash takes no argument");
  } else if (action == "off") {
    cfg.action = Action::off;
  } else {
    bad_spec(clause, "unknown action (want error/throw/delay/crash/off)");
  }

  if (!trigger.empty()) {
    if (trigger[0] == 'p' || trigger[0] == 'P') {
      char* end = nullptr;
      double p = std::strtod(trigger.c_str() + 1, &end);
      if (end == nullptr || *end != '\0' || !(p >= 0.0) || p > 1.0)
        bad_spec(clause, "@p wants a probability in [0,1]");
      cfg.probability = p;
    } else {
      char* end = nullptr;
      unsigned long long from = std::strtoull(trigger.c_str(), &end, 10);
      if (end == trigger.c_str() || from == 0)
        bad_spec(clause, "@trigger wants N, N+M, or pP with 1-based N");
      cfg.from_hit = from;
      if (*end == '+') {
        char* end2 = nullptr;
        unsigned long long count = std::strtoull(end + 1, &end2, 10);
        if (end2 == end + 1 || *end2 != '\0' || count == 0)
          bad_spec(clause, "@N+M wants a positive fire count M");
        cfg.fire_count = count;
      } else if (*end != '\0') {
        bad_spec(clause, "trailing garbage after @N");
      }
    }
  }
  return cfg;
}

void arm_locked(Registry& r, const std::string& name, const Config& cfg) {
  auto [it, inserted] = r.entries.try_emplace(name);
  const bool was_armed = !inserted && it->second.cfg.action != Action::off;
  it->second.cfg = cfg;
  it->second.hits = 0;
  it->second.fires = 0;
  it->second.rng = r.seed ^ fnv1a(name);
  if (it->second.rng == 0) it->second.rng = 1;
  const bool now_armed = cfg.action != Action::off;
  if (now_armed && !was_armed)
    detail::armed_count.fetch_add(1, std::memory_order_relaxed);
  else if (!now_armed && was_armed)
    detail::armed_count.fetch_sub(1, std::memory_order_relaxed);
}

// Parse MFLA_FAILPOINTS once at program start so seams fire without any
// code having to opt in. Lives here (not in a header) so the object file —
// pulled in by every seam's call to evaluate() — carries the initializer.
[[maybe_unused]] const bool g_env_armed_at_startup = [] {
  arm_from_env();
  return true;
}();

}  // namespace

int evaluate(const char* name) {
  Action action = Action::off;
  int error_code = 0;
  int delay_ms = 0;
  std::string thrown_name;
  {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mtx);
    auto it = r.entries.find(name);
    if (it == r.entries.end() || it->second.cfg.action == Action::off) return 0;
    Entry& e = it->second;
    const Config& cfg = e.cfg;
    const std::uint64_t hit = ++e.hits;
    if (hit < cfg.from_hit) return 0;
    if (cfg.fire_count != 0 && hit >= cfg.from_hit + cfg.fire_count) return 0;
    if (cfg.probability < 1.0 && next_uniform(e) >= cfg.probability) return 0;
    ++e.fires;
    action = cfg.action;
    error_code = cfg.error_code;
    delay_ms = cfg.delay_ms;
    if (action == Action::throw_exception) thrown_name = name;
  }
  // Act outside the lock: sleeping or unwinding with the registry mutex
  // held would deadlock concurrent evaluate() calls.
  switch (action) {
    case Action::error:
      return error_code;
    case Action::throw_exception:
      throw Injected(thrown_name);
    case Action::delay:
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      return 0;
    case Action::crash:
      // A simulated hard kill: no stream flushes, no atexit, no unwinding.
      MFLA_FAILPOINT_EXIT(kCrashExitCode);
    case Action::off:
      break;
  }
  return 0;
}

void arm(const std::string& name, const Config& cfg) {
  if (name.empty()) throw std::invalid_argument("failpoint: empty name");
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mtx);
  arm_locked(r, name, cfg);
}

void disarm(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mtx);
  auto it = r.entries.find(name);
  if (it == r.entries.end()) return;
  if (it->second.cfg.action != Action::off) {
    it->second.cfg.action = Action::off;
    detail::armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
}

void disarm_all() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mtx);
  for (auto& [name, entry] : r.entries) {
    if (entry.cfg.action != Action::off) {
      entry.cfg.action = Action::off;
      detail::armed_count.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

std::size_t arm_from_spec(const std::string& spec) {
  // Parse every clause before arming any: a malformed spec arms nothing.
  std::vector<std::pair<std::string, Config>> parsed;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find_first_of(";,", begin);
    if (end == std::string::npos) end = spec.size();
    std::string clause = trim(spec.substr(begin, end - begin));
    begin = end + 1;
    if (clause.empty()) continue;
    std::size_t eq = clause.find('=');
    if (eq == std::string::npos) bad_spec(clause, "missing '=' (want name=action)");
    std::string name = trim(clause.substr(0, eq));
    if (name.empty()) bad_spec(clause, "empty failpoint name");
    parsed.emplace_back(std::move(name), parse_action(clause, trim(clause.substr(eq + 1))));
  }
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mtx);
  for (const auto& [name, cfg] : parsed) arm_locked(r, name, cfg);
  return parsed.size();
}

void arm_from_env() {
  const char* spec = std::getenv("MFLA_FAILPOINTS");
  if (spec == nullptr || *spec == '\0') return;
  try {
    arm_from_spec(spec);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mfla: warning: ignoring MFLA_FAILPOINTS: %s\n", e.what());
  }
}

void set_seed(std::uint64_t seed) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mtx);
  r.seed = seed != 0 ? seed : 0x9e3779b97f4a7c15ull;
}

Stats stats(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mtx);
  auto it = r.entries.find(name);
  if (it == r.entries.end()) return {};
  return {it->second.hits, it->second.fires};
}

std::vector<std::string> armed_names() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mtx);
  std::vector<std::string> out;
  for (const auto& [name, entry] : r.entries)
    if (entry.cfg.action != Action::off) out.push_back(name);
  return out;
}

}  // namespace mfla::failpoint
