#pragma once
// Named failpoints for fault injection (docs/ROBUSTNESS.md).
//
// Durability seams (cache I/O, journal writes, CSV emission, directory
// creation, the per-run solve guard) each carry a named failpoint:
//
//   if (int err = MFLA_FAILPOINT("refcache.store.write")) { /* fail as errno err */ }
//
// Unarmed, the macro is a single relaxed atomic load and a branch — cheap
// enough to live on hot paths (bench_failpoint_overhead pins this), so the
// checks are compiled into every build and CI can torture Release binaries.
//
// Armed via the MFLA_FAILPOINTS environment variable or the programmatic
// API, a failpoint performs one of four actions each time it fires:
//
//   error        return a nonzero errno from MFLA_FAILPOINT (default EIO);
//   error(28)    ... a specific errno, numeric or named (enospc, eacces, ...)
//   throw        throw mfla::failpoint::Injected (a std::runtime_error)
//   delay(50)    sleep the given milliseconds, then return 0 (race widener)
//   crash        _exit(kCrashExitCode) immediately: no unwinding, no flushes,
//                simulating a hard kill mid-write
//
// Triggers select which hits fire:
//
//   name=error             every hit
//   name=crash@7           hit 7 and every later hit
//   name=error(28)@3+2     hits 3 and 4 only (fire twice starting at hit 3)
//   name=throw@p0.25       each hit independently with probability 0.25
//                          (deterministic per-failpoint xorshift stream)
//
// Multiple specs are separated by ';' or ','. Example:
//
//   MFLA_FAILPOINTS='journal.append=crash@12;refcache.store.write=error(enospc)@1+2'

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace mfla::failpoint {

// Exit status used by the `crash` action; mfla_crashtest keys off "nonzero".
inline constexpr int kCrashExitCode = 86;

enum class Action { off, error, throw_exception, delay, crash };

struct Config {
  Action action = Action::off;
  int error_code = 5;  // EIO; the value MFLA_FAILPOINT returns for `error`
  int delay_ms = 0;
  // Hits are 1-based. Fire on hits [from_hit, from_hit + fire_count), with
  // fire_count == 0 meaning "unbounded".
  std::uint64_t from_hit = 1;
  std::uint64_t fire_count = 0;
  // When < 1.0, each eligible hit fires independently with this probability
  // (deterministic per-failpoint PRNG seeded from the name and set_seed()).
  double probability = 1.0;
};

struct Stats {
  std::uint64_t hits = 0;   // times an armed evaluate() ran for this name
  std::uint64_t fires = 0;  // times the action actually triggered
};

// Thrown by the `throw` action; carries "failpoint <name> injected".
struct Injected : std::runtime_error {
  explicit Injected(const std::string& name)
      : std::runtime_error("failpoint " + name + " injected") {}
};

namespace detail {
// Count of currently-armed failpoints. constinit so the unarmed fast path
// is safe during static initialization of any other TU.
extern std::atomic<std::uint32_t> armed_count;
}  // namespace detail

// The unarmed fast path: one relaxed load. Inlined at every seam.
inline bool any_armed() noexcept {
  return detail::armed_count.load(std::memory_order_relaxed) != 0;
}

// Slow path — called only while at least one failpoint is armed anywhere.
// Looks `name` up in the registry; if armed and its trigger matches, performs
// the action. Returns the injected errno for `error`, 0 otherwise.
int evaluate(const char* name);

// Programmatic arming (tests). Re-arming an existing name replaces its
// config and resets its hit/fire counters.
void arm(const std::string& name, const Config& cfg);
void disarm(const std::string& name);
void disarm_all();

// Parse a spec string ("name=action[@trigger][;...]") and arm every clause.
// Returns the number of failpoints armed; throws std::invalid_argument with
// the offending clause on malformed input.
std::size_t arm_from_spec(const std::string& spec);

// Arm from the current value of MFLA_FAILPOINTS (no-op when unset). Runs
// automatically at static-init time in any binary linking mfla; malformed
// env specs warn on stderr rather than aborting startup. Callable again
// after setenv() in tests.
void arm_from_env();

// Seed for @p probability triggers (applied to failpoints armed afterwards).
void set_seed(std::uint64_t seed);

Stats stats(const std::string& name);
std::vector<std::string> armed_names();

// RAII arm/disarm for tests.
class ScopedFailpoint {
 public:
  ScopedFailpoint(std::string name, const Config& cfg) : name_(std::move(name)) {
    arm(name_, cfg);
  }
  ~ScopedFailpoint() { disarm(name_); }
  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

 private:
  std::string name_;
};

}  // namespace mfla::failpoint

// Returns 0 when unarmed or not firing; the injected errno for `error`
// actions. `throw`/`delay`/`crash` act inside evaluate().
#define MFLA_FAILPOINT(name) \
  (::mfla::failpoint::any_armed() ? ::mfla::failpoint::evaluate(name) : 0)
