// 128-bit integer helpers used by the exact tapered-arithmetic engine.
#pragma once

#include <cstdint>

#include <type_traits>

namespace mfla {

using u128 = unsigned __int128;
using i128 = __int128;

namespace detail {
/// Smallest unsigned integer type that holds `Bits` bits.
template <int Bits>
using uint_for_bits =
    std::conditional_t<(Bits <= 8), std::uint8_t,
                       std::conditional_t<(Bits <= 16), std::uint16_t,
                                          std::conditional_t<(Bits <= 32), std::uint32_t, std::uint64_t>>>;
}  // namespace detail

/// Count leading zeros of a non-zero 128-bit value.
[[nodiscard]] constexpr int clz_u128(u128 x) noexcept {
  const auto hi = static_cast<std::uint64_t>(x >> 64);
  const auto lo = static_cast<std::uint64_t>(x);
  if (hi != 0) return __builtin_clzll(hi);
  return 64 + __builtin_clzll(lo);
}

/// Count leading zeros of a non-zero 64-bit value.
[[nodiscard]] constexpr int clz_u64(std::uint64_t x) noexcept {
  return __builtin_clzll(x);
}

/// Right shift that collects the shifted-out bits into a sticky flag.
/// Well-defined for any shift amount (including >= 128).
[[nodiscard]] constexpr u128 shift_right_sticky(u128 x, int s, bool& sticky) noexcept {
  if (s <= 0) return x;
  if (s >= 128) {
    sticky = sticky || (x != 0);
    return 0;
  }
  const u128 lost = x << (128 - s);
  sticky = sticky || (lost != 0);
  return x >> s;
}

/// Floor of the integer square root of a 128-bit value.
/// Newton iteration seeded from the long double estimate, with an exact
/// correction loop (at most a couple of steps).
[[nodiscard]] inline std::uint64_t isqrt_u128(u128 n) noexcept {
  if (n == 0) return 0;
  // Seed: long double carries a 64-bit significand, so the estimate for a
  // 128-bit operand is good to ~2^-60 relative error.
  auto x = static_cast<std::uint64_t>(__builtin_sqrtl(static_cast<long double>(n)));
  // A few Newton steps in integer arithmetic remove the seed error.
  for (int i = 0; i < 3; ++i) {
    const std::uint64_t q = (x != 0) ? static_cast<std::uint64_t>(n / x) : ~0ull;
    x = x / 2 + q / 2 + ((x & 1u) & (q & 1u));
  }
  // Exact correction: ensure x = floor(sqrt(n)).
  while (x > 0 && static_cast<u128>(x) * x > n) --x;
  while (x + 1 != 0 && static_cast<u128>(x + 1) * (x + 1) <= n) ++x;
  return x;
}

}  // namespace mfla
