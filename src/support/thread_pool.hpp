// Work-stealing thread pool used by the experiment engine.
//
// Each worker owns a deque: it pops its own tasks from the front (so a
// single-threaded pool executes external submissions in submission order)
// and steals from the back of other workers' deques when its own runs dry.
// External submissions are distributed round-robin; submissions made from
// inside a worker land on that worker's own deque (the common case for
// dependent tasks, e.g. the per-format runs spawned once a reference solve
// completes — they stay local unless another worker is idle and steals).
//
// Error handling: `async` returns a std::future that carries the task's
// exception; for fire-and-forget `submit`, the first exception thrown by a
// task is captured and rethrown from the next `wait_idle()` call (the pool
// stays usable afterwards). The destructor drains every queued task before
// joining.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace mfla {

class ThreadPool {
 public:
  /// threads == 0 selects std::thread::hardware_concurrency() (at least 1).
  explicit ThreadPool(std::size_t threads = 0) {
    if (threads == 0) threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
    queues_.resize(threads);
    for (std::size_t i = 0; i < threads; ++i) queues_[i] = std::make_unique<Queue>();
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this, i] { worker_loop(i); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains all queued tasks (including tasks submitted by running tasks),
  /// then joins the workers. Pending submit() errors are swallowed.
  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lk(signal_mtx_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  [[nodiscard]] std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Enqueue a task. Safe to call concurrently and from inside tasks.
  void submit(std::function<void()> task) {
    pending_.fetch_add(1, std::memory_order_relaxed);
    const std::size_t target = this_pool_ == this
                                   ? this_worker_
                                   : next_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
    {
      // Increment queued_ under the same queue mutex that guards the push:
      // a pop of this task (which decrements) must acquire this mutex first,
      // so the counter can never underflow.
      std::lock_guard<std::mutex> lk(queues_[target]->mtx);
      queued_.fetch_add(1, std::memory_order_release);
      queues_[target]->tasks.push_back(std::move(task));
    }
    // Fence against a worker that checked the wait predicate before the
    // increment and has not started waiting yet (lost-wakeup race).
    {
      std::lock_guard<std::mutex> lk(signal_mtx_);
    }
    work_cv_.notify_one();
  }

  /// Enqueue a task and get its result (or exception) as a future.
  template <class F>
  [[nodiscard]] auto async(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    submit([task] { (*task)(); });
    return fut;
  }

  /// Block until every submitted task (including nested submissions) has
  /// finished. Rethrows the first exception thrown by a submit() task since
  /// the previous wait_idle(), if any.
  void wait_idle() {
    std::unique_lock<std::mutex> lk(signal_mtx_);
    idle_cv_.wait(lk, [this] { return pending_.load(std::memory_order_acquire) == 0; });
    if (first_error_) {
      std::exception_ptr err;
      std::swap(err, first_error_);
      lk.unlock();
      std::rethrow_exception(err);
    }
  }

 private:
  struct Queue {
    std::mutex mtx;
    std::deque<std::function<void()>> tasks;
  };

  // Which pool (if any) owns the current thread, and its worker index there.
  static thread_local const ThreadPool* this_pool_;
  static thread_local std::size_t this_worker_;

  bool try_pop(std::size_t index, bool own, std::function<void()>& out) {
    Queue& q = *queues_[index];
    std::lock_guard<std::mutex> lk(q.mtx);
    if (q.tasks.empty()) return false;
    if (own) {  // owner: FIFO from the front
      out = std::move(q.tasks.front());
      q.tasks.pop_front();
    } else {  // thief: steal from the back
      out = std::move(q.tasks.back());
      q.tasks.pop_back();
    }
    queued_.fetch_sub(1, std::memory_order_release);
    return true;
  }

  bool find_task(std::size_t self, std::function<void()>& out) {
    if (try_pop(self, true, out)) return true;
    for (std::size_t k = 1; k < queues_.size(); ++k) {
      if (try_pop((self + k) % queues_.size(), false, out)) return true;
    }
    return false;
  }

  void run_task(std::function<void()>& task) {
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lk(signal_mtx_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    task = nullptr;  // release captures before signalling idle
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lk(signal_mtx_);
      idle_cv_.notify_all();
    }
  }

  void worker_loop(std::size_t self) {
    this_pool_ = this;
    this_worker_ = self;
    std::function<void()> task;
    while (true) {
      if (find_task(self, task)) {
        run_task(task);
        continue;
      }
      std::unique_lock<std::mutex> lk(signal_mtx_);
      work_cv_.wait(lk, [this] {
        return stop_ || queued_.load(std::memory_order_acquire) > 0;
      });
      if (stop_ && queued_.load(std::memory_order_acquire) == 0) return;
    }
  }

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;
  std::mutex signal_mtx_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::exception_ptr first_error_;
  std::atomic<std::size_t> pending_{0};  // submitted, not yet finished
  std::atomic<std::size_t> queued_{0};   // sitting in a deque
  std::atomic<std::size_t> next_{0};     // round-robin cursor for external submits
  bool stop_ = false;
};

inline thread_local const ThreadPool* ThreadPool::this_pool_ = nullptr;
inline thread_local std::size_t ThreadPool::this_worker_ = 0;

/// A completion scope over a (possibly shared) ThreadPool.
///
/// ThreadPool::wait_idle() waits for the WHOLE pool to drain and rethrows
/// anyone's first error — fine when the caller owns the pool, wrong once
/// several sweeps share one pool (the serving daemon). A TaskGroup counts
/// only its own submissions: wait() returns when every task submitted
/// through THIS group has finished, regardless of what else is running on
/// the pool, and rethrows only this group's first exception.
///
/// Nested submissions (a group task submitting more group tasks) are safe
/// as long as they happen before the submitting task returns — the parent
/// task is still counted as pending, so the group cannot appear idle in
/// between.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Blocks until all tasks have finished; never throws (a pending error
  /// that was never wait()ed for is dropped, matching ThreadPool's dtor).
  ~TaskGroup() {
    std::unique_lock<std::mutex> lk(mtx_);
    cv_.wait(lk, [this] { return pending_.load(std::memory_order_acquire) == 0; });
  }

  /// Enqueue a task on the underlying pool, counted against this group.
  void submit(std::function<void()> task) {
    pending_.fetch_add(1, std::memory_order_relaxed);
    pool_.submit([this, t = std::move(task)] {
      std::exception_ptr err;
      try {
        t();
      } catch (...) {
        err = std::current_exception();
      }
      // The decrement and notify happen under mtx_: a waiter can only see
      // pending_ == 0 (and destroy the group) once this task has released
      // the lock and stopped touching *this.
      std::lock_guard<std::mutex> lk(mtx_);
      if (err && !first_error_) first_error_ = err;
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) cv_.notify_all();
    });
  }

  /// Block until every task submitted through this group (including nested
  /// submissions) has finished. Rethrows the group's first task exception.
  void wait() {
    std::unique_lock<std::mutex> lk(mtx_);
    cv_.wait(lk, [this] { return pending_.load(std::memory_order_acquire) == 0; });
    if (first_error_) {
      std::exception_ptr err;
      std::swap(err, first_error_);
      lk.unlock();
      std::rethrow_exception(err);
    }
  }

 private:
  ThreadPool& pool_;
  std::mutex mtx_;
  std::condition_variable cv_;
  std::exception_ptr first_error_;
  std::atomic<std::size_t> pending_{0};
};

}  // namespace mfla
