// Client side of the serving protocol: submit one sweep request, consume
// the event stream, and reconstruct the MatrixResult vector — in dataset
// order, runs in format order — so that writing it with write_results_csv
// yields a CSV byte-identical to what mfla_experiment produces for the
// same spec. Doubles survive the wire exactly (%.17g both ways), and the
// server streams matrix metadata (class/category) the run events alone
// would not carry.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "serve/protocol.hpp"

namespace mfla::serve {

struct ClientOptions {
  std::string socket_path;
  /// Socket send/recv timeout. Generous by default: the server streams an
  /// event per completed run, and a single float128 reference solve can
  /// legitimately take minutes.
  int io_timeout_ms = 600000;
  /// Test hook: hard-close the connection after this many received events
  /// (0 = never) — how CI simulates a client dying mid-stream.
  std::size_t abort_after_events = 0;
};

struct ClientResult {
  enum class Status {
    ok,              ///< full stream; `results` is complete
    rejected,        ///< server said no (reject_reason/detail)
    canceled,        ///< sweep canceled server-side (drain or dead stream)
    error,           ///< sweep failed server-side (error holds the message)
    protocol_error,  ///< stream violated the protocol (error has details)
    io_error,        ///< connection died mid-stream (error has details)
    aborted,         ///< abort_after_events closed the connection on purpose
  };

  Status status = Status::io_error;
  std::string sweep_id;
  std::string reject_reason;  ///< machine-readable, for Status::rejected
  std::string error;          ///< human-readable failure detail
  /// Reconstructed results, complete only for Status::ok: dataset order,
  /// per-matrix runs in the meta line's format order.
  std::vector<MatrixResult> results;
  std::size_t events = 0;    ///< response lines consumed
  std::size_t executed = 0;  ///< runs the server executed for this request
  std::size_t replayed = 0;  ///< runs served from the server-side journal
  double elapsed_seconds = 0.0;  ///< server-side sweep wall clock
};

/// Submit `req` and consume the stream to completion. Throws IoError only
/// when the daemon cannot be reached at all; everything after the connect
/// is reported through ClientResult.
[[nodiscard]] ClientResult run_sweep(const ClientOptions& opts, const SweepRequest& req);

/// Fetch the daemon's stats line (raw JSON). Throws IoError on connect or
/// stream failure.
[[nodiscard]] std::string fetch_stats(const ClientOptions& opts);

}  // namespace mfla::serve
