#include "serve/server.hpp"

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "api/sweep.hpp"
#include "core/errors.hpp"
#include "datasets/general_corpus.hpp"
#include "datasets/graph_corpus.hpp"
#include "support/failpoint.hpp"
#include "support/jsonl.hpp"

namespace mfla::serve {

namespace {

Which which_from_name(const std::string& name) {
  if (name == "largest_magnitude") return Which::largest_magnitude;
  if (name == "smallest_magnitude") return Which::smallest_magnitude;
  if (name == "largest_real") return Which::largest_real;
  if (name == "smallest_real") return Which::smallest_real;
  throw std::invalid_argument(
      "unknown which '" + name +
      "' (expected largest_magnitude|smallest_magnitude|largest_real|smallest_real)");
}

/// Mirror mfla_experiment's corpus assembly exactly — same options, same
/// builders — so a daemon sweep and a batch sweep over the same request
/// produce byte-identical CSVs.
std::vector<TestMatrix> build_dataset(const SweepRequest& req) {
  if (req.corpus == "general") {
    GeneralCorpusOptions opts;
    opts.count = req.count;
    return build_general_corpus(opts);
  }
  if (req.corpus == "biological" || req.corpus == "infrastructure" || req.corpus == "social" ||
      req.corpus == "miscellaneous") {
    GraphCorpusOptions opts;
    opts.counts = {req.count, req.count, req.count, req.count};
    return build_graph_corpus(opts, req.corpus);
  }
  throw std::invalid_argument(
      "unknown corpus '" + req.corpus +
      "' (expected general|biological|infrastructure|social|miscellaneous)");
}

/// ResultSink that serializes every engine event onto the connection
/// socket. The engine already serializes event delivery under one lock, so
/// this sink needs no locking of its own. A failed send marks the stream
/// broken AND flips the sweep's cancel flag — a dead client stops
/// consuming compute at the next task boundary, while everything already
/// in flight still reaches the journal.
class StreamSink final : public api::ResultSink {
 public:
  StreamSink(int fd, std::atomic<bool>& cancel, std::vector<std::string> matrix_lines)
      : fd_(fd), cancel_(cancel), matrix_lines_(std::move(matrix_lines)) {}

  void on_meta(const api::SweepMeta& m) override {
    send(meta_line(m));
    for (const std::string& line : matrix_lines_) send(line);
  }

  void on_run(const api::RunEvent& e) override {
    streamed_runs_.insert({e.matrix, e.run.format});
    send(run_line(e.matrix, e.n, e.nnz, e.run, /*replayed=*/false));
  }

  void on_reference(const api::ReferenceEvent& e) override {
    streamed_refs_.insert(e.matrix);
    send(reference_line(e.matrix, e.n, e.nnz, e.failure, /*replayed=*/false));
  }

  void on_fault(const api::FaultEvent& e) override { send(fault_line(e)); }

  [[nodiscard]] bool broken() const noexcept { return broken_; }
  [[nodiscard]] bool streamed_run(const std::string& matrix, FormatId format) const {
    return streamed_runs_.count({matrix, format}) != 0;
  }
  [[nodiscard]] bool streamed_reference(const std::string& matrix) const {
    return streamed_refs_.count(matrix) != 0;
  }

 private:
  void send(const std::string& line) {
    if (broken_) return;
    std::string err;
    if (!send_line(fd_, line, err)) {
      broken_ = true;
      cancel_.store(true, std::memory_order_release);
    }
  }

  int fd_;
  std::atomic<bool>& cancel_;
  std::vector<std::string> matrix_lines_;
  bool broken_ = false;
  std::set<std::pair<std::string, FormatId>> streamed_runs_;
  std::set<std::string> streamed_refs_;
};

}  // namespace

Server::Server(ServerOptions opts)
    : opts_(std::move(opts)),
      pool_(opts_.threads),
      cache_(opts_.state_dir + "/refcache"),
      scheduler_(opts_.limits) {
  std::error_code ec;
  std::filesystem::create_directories(std::filesystem::path(opts_.state_dir) / "sweeps", ec);
  if (ec)
    throw IoError("serve: cannot create state directory '" + opts_.state_dir +
                  "': " + ec.message());
  listener_ = listen_unix(opts_.socket_path);
}

Server::~Server() = default;

void Server::serve() {
  while (!drain_.load(std::memory_order_acquire)) {
    std::string err;
    Fd accepted = poll_accept(listener_.get(), opts_.accept_poll_ms, err);
    if (!accepted.valid()) {
      // Timeout (err empty) re-checks the drain flag; per-connection accept
      // failures — injected or real — are logged and survived.
      if (!err.empty()) std::fprintf(stderr, "mfla_served: %s\n", err.c_str());
      continue;
    }
    connections_.fetch_add(1, std::memory_order_relaxed);
    set_io_timeout(accepted.get(), opts_.io_timeout_ms);
    auto conn = std::make_unique<Conn>();
    conn->fd = std::move(accepted);
    {
      std::lock_guard<std::mutex> lk(conn_mtx_);
      conns_.insert(conn.get());
    }
    std::thread([this, c = std::move(conn)]() mutable {
      handle_connection(*c);
      // Notify under the mutex: the moment the erase is visible to serve()'s
      // drain wait the Server may be destroyed, so the notify must complete
      // before this thread lets go of the lock.
      std::lock_guard<std::mutex> lk(conn_mtx_);
      conns_.erase(c.get());
      conn_cv_.notify_all();
    }).detach();
  }

  // Drain order matters: close the listener first so new clients fail fast
  // (ECONNREFUSED/ENOENT, not a hang), reject everything still queued for
  // admission, then wait for the in-flight connections to finish — their
  // sweeps either complete or (under cancel) stop at a task boundary with
  // their journals flushed.
  listener_.reset();
  ::unlink(opts_.socket_path.c_str());
  scheduler_.begin_shutdown();
  if (cancel_all_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lk(conn_mtx_);
    for (Conn* c : conns_) c->cancel.store(true, std::memory_order_release);
  }
  std::unique_lock<std::mutex> lk(conn_mtx_);
  conn_cv_.wait(lk, [this] { return conns_.empty(); });
}

void Server::request_drain() {
  drain_.store(true, std::memory_order_release);
  scheduler_.begin_shutdown();
}

void Server::request_cancel() {
  cancel_all_.store(true, std::memory_order_release);
  request_drain();
  std::lock_guard<std::mutex> lk(conn_mtx_);
  for (Conn* c : conns_) c->cancel.store(true, std::memory_order_release);
}

void Server::handle_connection(Conn& conn) {
  const int fd = conn.fd.get();
  LineReader reader(fd, kMaxRequestBytes);
  std::string line;
  std::string err;
  const LineReader::Status st = reader.read_line(line, err);
  if (st != LineReader::Status::ok) {
    if (st == LineReader::Status::overlong) {
      malformed_.fetch_add(1, std::memory_order_relaxed);
      std::string werr;
      (void)send_line(fd, rejected_line("bad_request", "request " + err), werr);
    }
    // eof/error: the peer vanished or timed out before asking anything.
    return;
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
  Request req;
  std::string perr;
  if (!parse_request(line, req, perr)) {
    malformed_.fetch_add(1, std::memory_order_relaxed);
    std::string werr;
    (void)send_line(fd, rejected_line("bad_request", perr), werr);
    return;
  }
  if (req.kind == Request::Kind::stats) {
    std::string werr;
    (void)send_line(fd, stats_line(), werr);
    return;
  }
  run_sweep(conn, req.sweep);
}

void Server::run_sweep(Conn& conn, const SweepRequest& req) {
  const int fd = conn.fd.get();
  std::string werr;
  if (int injected = MFLA_FAILPOINT("serve.dispatch"); injected != 0) {
    (void)send_line(
        fd,
        rejected_line("error", std::string("dispatch failed: ") + std::strerror(injected) +
                                   " (injected)"),
        werr);
    return;
  }

  // Validate and build everything BEFORE admission — a bad request must
  // cost a slot to nobody.
  std::vector<FormatId> formats;
  Which which{};
  ReferenceTier tier{};
  std::vector<TestMatrix> dataset;
  try {
    if (req.nev == 0) throw std::invalid_argument("nev must be positive");
    if (req.count == 0) throw std::invalid_argument("count must be positive");
    formats = parse_format_keys(req.formats);
    which = which_from_name(req.which);
    tier = reference_tier_from_name(req.ref_tier);
    dataset = build_dataset(req);
  } catch (const std::exception& e) {
    malformed_.fetch_add(1, std::memory_order_relaxed);
    (void)send_line(fd, rejected_line("bad_request", e.what()), werr);
    return;
  }

  const std::string id = sweep_id(req);
  {
    std::lock_guard<std::mutex> lk(sweep_mtx_);
    if (!active_sweep_ids_.insert(id).second) {
      (void)send_line(fd, rejected_line("duplicate", "sweep " + id + " is already in flight"),
                      werr);
      return;
    }
  }
  struct IdGuard {
    Server* s;
    const std::string& id;
    ~IdGuard() {
      std::lock_guard<std::mutex> lk(s->sweep_mtx_);
      s->active_sweep_ids_.erase(id);
    }
  } id_guard{this, id};

  Scheduler::Slot slot;
  const Admission adm = scheduler_.acquire(req.tenant, slot);
  if (adm != Admission::admitted) {
    const SchedulerLimits& lim = scheduler_.limits();
    std::string detail;
    switch (adm) {
      case Admission::overloaded:
        detail = "server at capacity (" + std::to_string(lim.max_active) + " active + " +
                 std::to_string(lim.max_queued) + " queued); retry later";
        break;
      case Admission::tenant_quota:
        detail = "tenant '" + req.tenant + "' already holds its fair share (" +
                 std::to_string(lim.max_per_tenant) + " sweeps)";
        break;
      default: detail = "server is shutting down"; break;
    }
    (void)send_line(fd, rejected_line(admission_name(adm), detail), werr);
    return;
  }

  const std::filesystem::path sweep_dir =
      std::filesystem::path(opts_.state_dir) / "sweeps" / id;
  std::error_code ec;
  std::filesystem::create_directories(sweep_dir, ec);
  if (ec) {
    (void)send_line(
        fd, rejected_line("error", "cannot create sweep state dir: " + ec.message()), werr);
    return;
  }
  const std::string journal = (sweep_dir / "journal.jsonl").string();
  const bool resume = req.resume && std::filesystem::exists(journal, ec);

  if (!send_line(fd, accepted_line(id), werr)) return;

  // The dataset is moved into the Sweep below; matrix announcement lines
  // are rendered now so the sink can emit them right after the meta line.
  std::vector<std::string> matrix_lines;
  matrix_lines.reserve(dataset.size());
  for (std::size_t i = 0; i < dataset.size(); ++i)
    matrix_lines.push_back(matrix_line(dataset[i], i));
  auto sink = std::make_shared<StreamSink>(fd, conn.cancel, std::move(matrix_lines));

  std::string status = "ok";
  std::string error;
  api::SweepResult result;
  try {
    result = api::Sweep::over(std::move(dataset))
                 .formats(formats)
                 .nev(req.nev)
                 .buffer(req.buffer)
                 .which(which)
                 .restarts(req.restarts)
                 .seed(req.seed)
                 .reference_tier(tier)
                 .pool(&pool_)
                 .cancel(&conn.cancel)
                 .cache(&cache_)
                 .checkpoint(journal)
                 .resume(resume)
                 .sink(sink)
                 .run();
  } catch (const std::exception& e) {
    status = "error";
    error = e.what();
  }

  const bool canceled =
      conn.cancel.load(std::memory_order_acquire) || result.stats.canceled_runs != 0;
  if (status == "ok" && canceled) status = "canceled";

  // Journal-replayed results were never announced by the engine; re-stream
  // them (marked) so the client's reconstruction covers the whole sweep. A
  // canceled sweep skips this — its unexecuted result slots are empty
  // placeholders, not results.
  std::size_t replayed = 0;
  if (status == "ok" && !sink->broken()) {
    bool stream_ok = true;
    for (const MatrixResult& mr : result.results) {
      if (!stream_ok) break;
      if (!mr.reference_ok) {
        if (!sink->streamed_reference(mr.name)) {
          ++replayed;
          stream_ok = send_line(
              fd, reference_line(mr.name, mr.n, mr.nnz, mr.reference_failure, true), werr);
        }
        continue;
      }
      for (const FormatRun& run : mr.runs) {
        if (sink->streamed_run(mr.name, run.format)) continue;
        ++replayed;
        if (!(stream_ok = send_line(fd, run_line(mr.name, mr.n, mr.nnz, run, true), werr)))
          break;
      }
    }
  }

  if (status == "ok")
    sweeps_ok_.fetch_add(1, std::memory_order_relaxed);
  else if (status == "canceled")
    sweeps_canceled_.fetch_add(1, std::memory_order_relaxed);
  else
    sweeps_failed_.fetch_add(1, std::memory_order_relaxed);

  (void)send_line(fd,
                  done_line(status, result.executed_runs, replayed, result.stats.canceled_runs,
                            result.elapsed_seconds, error),
                  werr);

  // A completed sweep's journal has served its purpose; removing the
  // namespace keeps the state dir from accreting one directory per request
  // ever made. Canceled/failed sweeps keep theirs — that journal is what
  // makes the retry cheap.
  if (status == "ok") std::filesystem::remove_all(sweep_dir, ec);
}

std::string Server::stats_line() {
  const ServerStats s = stats_snapshot();
  jsonl::JsonLine j;
  j.str("type", "stats")
      .uint("connections", s.connections)
      .uint("requests", s.requests)
      .uint("malformed", s.malformed)
      .uint("sweeps_ok", s.sweeps_ok)
      .uint("sweeps_failed", s.sweeps_failed)
      .uint("sweeps_canceled", s.sweeps_canceled)
      .uint("active", s.admission.active)
      .uint("queued", s.admission.queued)
      .uint("admitted", s.admission.admitted)
      .uint("rejected_overloaded", s.admission.rejected_overloaded)
      .uint("rejected_tenant", s.admission.rejected_tenant)
      .uint("rejected_shutdown", s.admission.rejected_shutdown)
      .uint("cache_lookups", s.cache.lookups)
      .uint("cache_hits", s.cache.hits)
      .uint("cache_misses", s.cache.misses)
      .uint("cache_stores", s.cache.stores)
      .uint("cache_quarantined", s.cache.quarantined)
      .uint("cache_degraded", s.cache.degraded ? 1 : 0)
      .uint("draining", s.draining ? 1 : 0);
  return j.finish();
}

ServerStats Server::stats_snapshot() {
  ServerStats s;
  s.connections = connections_.load(std::memory_order_relaxed);
  s.requests = requests_.load(std::memory_order_relaxed);
  s.malformed = malformed_.load(std::memory_order_relaxed);
  s.sweeps_ok = sweeps_ok_.load(std::memory_order_relaxed);
  s.sweeps_failed = sweeps_failed_.load(std::memory_order_relaxed);
  s.sweeps_canceled = sweeps_canceled_.load(std::memory_order_relaxed);
  s.admission = scheduler_.stats();
  s.cache = cache_.stats();
  s.draining = drain_.load(std::memory_order_acquire);
  return s;
}

}  // namespace mfla::serve
