#include "serve/scheduler.hpp"

namespace mfla::serve {

const char* admission_name(Admission a) noexcept {
  switch (a) {
    case Admission::admitted: return "admitted";
    case Admission::overloaded: return "overloaded";
    case Admission::tenant_quota: return "tenant_quota";
    case Admission::shutting_down: return "shutting_down";
  }
  return "unknown";
}

void Scheduler::Slot::release() noexcept {
  if (sched_ == nullptr) return;
  sched_->release_slot(tenant_);
  sched_ = nullptr;
}

Admission Scheduler::acquire(const std::string& tenant, Slot& slot) {
  std::unique_lock<std::mutex> lk(mtx_);
  if (shutdown_) {
    ++counters_.rejected_shutdown;
    return Admission::shutting_down;
  }
  // The rejection checks run BEFORE queueing: a client over capacity gets
  // its answer immediately, never a silent park.
  const auto tenant_it = per_tenant_.find(tenant);
  if (tenant_it != per_tenant_.end() && tenant_it->second >= limits_.max_per_tenant) {
    ++counters_.rejected_tenant;
    return Admission::tenant_quota;
  }
  if (active_ >= limits_.max_active && queue_.size() >= limits_.max_queued) {
    ++counters_.rejected_overloaded;
    return Admission::overloaded;
  }
  ++per_tenant_[tenant];
  if (active_ < limits_.max_active && queue_.empty()) {
    ++active_;
    ++counters_.admitted;
    slot = Slot(this, tenant);
    return Admission::admitted;
  }
  // Park in FIFO order. The ticket lives on this stack frame; it cannot
  // go away while queued because we only return after removing it.
  Ticket ticket;
  ticket.id = next_ticket_++;
  queue_.push_back(&ticket);
  cv_.wait(lk, [&] {
    if (ticket.canceled) return true;
    return active_ < limits_.max_active && !queue_.empty() && queue_.front() == &ticket;
  });
  if (ticket.canceled) {
    // begin_shutdown() already removed us from the queue.
    if (--per_tenant_[tenant] == 0) per_tenant_.erase(tenant);
    ++counters_.rejected_shutdown;
    return Admission::shutting_down;
  }
  queue_.pop_front();
  ++active_;
  ++counters_.admitted;
  // The next queued ticket may also be eligible (several slots can free
  // up while the head waits to be scheduled).
  cv_.notify_all();
  slot = Slot(this, tenant);
  return Admission::admitted;
}

void Scheduler::release_slot(const std::string& tenant) {
  std::lock_guard<std::mutex> lk(mtx_);
  --active_;
  const auto it = per_tenant_.find(tenant);
  if (it != per_tenant_.end() && --it->second == 0) per_tenant_.erase(it);
  cv_.notify_all();
}

void Scheduler::begin_shutdown() {
  std::lock_guard<std::mutex> lk(mtx_);
  shutdown_ = true;
  for (Ticket* t : queue_) t->canceled = true;
  queue_.clear();
  cv_.notify_all();
}

SchedulerStats Scheduler::stats() const {
  std::lock_guard<std::mutex> lk(mtx_);
  SchedulerStats s = counters_;
  s.active = active_;
  s.queued = queue_.size();
  return s;
}

}  // namespace mfla::serve
