// Admission control for the serving daemon (docs/SERVING.md).
//
// The daemon runs every admitted sweep on ONE shared ThreadPool, so the
// scheduler's job is not to allocate cores — the pool does that — but to
// bound how much work is in the building at once and to keep one noisy
// tenant from starving the rest:
//
//   * at most `max_active` sweeps execute concurrently;
//   * at most `max_queued` more wait in a FIFO queue;
//   * at most `max_per_tenant` of (active + queued) belong to one tenant;
//   * anything beyond those bounds is REJECTED immediately with a
//     machine-readable reason — the daemon never silently hangs a client.
//
// acquire() blocks the calling connection thread while its ticket is
// queued (the client sees admission latency, not an error) and returns an
// RAII slot whose destruction wakes the next ticket in line.
// begin_shutdown() flips every queued ticket to `shutting_down` and makes
// all future acquires fail fast, which is how SIGTERM drains: in-flight
// sweeps finish, the queue empties immediately, nothing new gets in.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <utility>

namespace mfla::serve {

struct SchedulerLimits {
  std::size_t max_active = 2;      ///< sweeps executing concurrently
  std::size_t max_queued = 8;      ///< tickets waiting beyond that
  std::size_t max_per_tenant = 4;  ///< one tenant's share of active + queued
};

/// Why an acquire() did not yield a slot.
enum class Admission {
  admitted,
  overloaded,     ///< active + queued both full
  tenant_quota,   ///< this tenant alone is at its fair share
  shutting_down,  ///< begin_shutdown() has been called
};

[[nodiscard]] const char* admission_name(Admission a) noexcept;

/// Monotonic counters for the stats endpoint.
struct SchedulerStats {
  std::size_t active = 0;  // snapshot
  std::size_t queued = 0;  // snapshot
  std::uint64_t admitted = 0;
  std::uint64_t rejected_overloaded = 0;
  std::uint64_t rejected_tenant = 0;
  std::uint64_t rejected_shutdown = 0;
};

class Scheduler {
 public:
  explicit Scheduler(SchedulerLimits limits) : limits_(limits) {}
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// An admitted sweep's execution slot; releases on destruction.
  class Slot {
   public:
    Slot() = default;
    Slot(Slot&& other) noexcept : sched_(other.sched_), tenant_(std::move(other.tenant_)) {
      other.sched_ = nullptr;
    }
    Slot& operator=(Slot&& other) noexcept {
      if (this != &other) {
        release();
        sched_ = other.sched_;
        tenant_ = std::move(other.tenant_);
        other.sched_ = nullptr;
      }
      return *this;
    }
    Slot(const Slot&) = delete;
    Slot& operator=(const Slot&) = delete;
    ~Slot() { release(); }

    [[nodiscard]] bool held() const noexcept { return sched_ != nullptr; }
    void release() noexcept;

   private:
    friend class Scheduler;
    Slot(Scheduler* s, std::string tenant) : sched_(s), tenant_(std::move(tenant)) {}
    Scheduler* sched_ = nullptr;
    std::string tenant_;
  };

  /// Try to admit one sweep for `tenant`. Returns Admission::admitted with
  /// `slot` filled (possibly after blocking in the FIFO queue while
  /// max_active slots are busy), or a rejection reason immediately.
  [[nodiscard]] Admission acquire(const std::string& tenant, Slot& slot);

  /// Reject all queued tickets with `shutting_down` and make every future
  /// acquire fail fast. Idempotent.
  void begin_shutdown();

  [[nodiscard]] SchedulerStats stats() const;
  [[nodiscard]] const SchedulerLimits& limits() const noexcept { return limits_; }

 private:
  struct Ticket {
    std::uint64_t id = 0;
    bool canceled = false;  // shutdown flipped it while queued
  };

  void release_slot(const std::string& tenant);

  const SchedulerLimits limits_;
  mutable std::mutex mtx_;
  std::condition_variable cv_;
  bool shutdown_ = false;
  std::size_t active_ = 0;
  std::deque<Ticket*> queue_;  // FIFO of tickets parked in acquire()
  std::uint64_t next_ticket_ = 1;
  std::map<std::string, std::size_t> per_tenant_;  // active + queued per tenant
  SchedulerStats counters_;
};

}  // namespace mfla::serve
