// Wire protocol of the sweep-serving daemon (docs/SERVING.md).
//
// Newline-delimited JSON in both directions, in the same tiny flat-object
// dialect as the checkpoint journal (support/jsonl.hpp). A connection
// carries exactly one request line from the client, then a response
// stream from the server:
//
//   client:  {"type":"sweep","tenant":"ci","corpus":"general","count":4,...}
//   server:  {"type":"accepted","sweep":"<32-hex id>"}
//            {"type":"meta",...}                         (sweep identity)
//            {"type":"matrix","index":0,...}             (dataset order)
//            ...
//            {"type":"run",...} | {"type":"reference",...} | {"type":"fault",...}
//            ...
//            {"type":"done","status":"ok",...}
//
// or a single {"type":"rejected","reason":...} line. Every numeric field
// round-trips doubles exactly (%.17g), so a client can reconstruct
// MatrixResult structs — and therefore a CSV byte-identical to
// mfla_experiment's — from the stream alone.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "api/sinks.hpp"
#include "core/experiment.hpp"
#include "datasets/test_matrix.hpp"

namespace mfla::serve {

/// Protocol/schema version, echoed in meta lines. Bump on incompatible
/// changes; clients reject a version they don't know.
inline constexpr int kProtocolVersion = 1;

/// Upper bound on one request line; longer requests are rejected as
/// oversized before parsing (a client bug or garbage peer must not make
/// the daemon buffer without bound).
inline constexpr std::size_t kMaxRequestBytes = 64 * 1024;

/// Upper bound on one response line read by the client (event lines are
/// small, but matrix names are caller-controlled).
inline constexpr std::size_t kMaxEventBytes = 1024 * 1024;

/// A serialized api::Sweep spec over the built-in corpora. Field defaults
/// match mfla_experiment's CLI defaults, so the same spec submitted to the
/// daemon and run as a batch yields byte-identical CSVs.
struct SweepRequest {
  std::string tenant = "default";  ///< fair-share admission bucket
  /// "general" or a graph class: biological|infrastructure|social|miscellaneous.
  std::string corpus = "general";
  std::size_t count = 24;  ///< matrices per corpus class
  std::string formats = "f16,bf16,p16,t16,f32,p32,t32,f64,p64,t64";
  std::size_t nev = 10;
  std::size_t buffer = 2;
  int restarts = 80;
  std::string which = "largest_magnitude";
  std::uint64_t seed = 0xa11ce;  ///< ExperimentConfig::seed default
  std::string ref_tier = "f128_only";
  /// Resume this sweep's server-side journal when one exists (a retried
  /// request recomputes only what its predecessor didn't finish).
  bool resume = true;
};

struct Request {
  enum class Kind { sweep, stats };
  Kind kind = Kind::sweep;
  SweepRequest sweep;
};

/// Parse one request line. Returns false with a message on malformed
/// input (bad JSON, unknown type, bad numbers); unknown KEYS are ignored
/// for forward compatibility.
[[nodiscard]] bool parse_request(const std::string& line, Request& out, std::string& error);

[[nodiscard]] std::string serialize_request(const SweepRequest& r);
[[nodiscard]] std::string serialize_stats_request();

/// Identity of a sweep: hash of every request field that changes the
/// result (plus the tenant, so tenants never share journal namespaces).
/// The daemon keys per-request checkpoint/journal namespaces by this.
[[nodiscard]] std::string sweep_id(const SweepRequest& r);

// ---------------------------------------------------------------------------
// Response lines (server -> client)
// ---------------------------------------------------------------------------

[[nodiscard]] std::string accepted_line(const std::string& id);
/// reason is machine-readable ("overloaded", "tenant_quota",
/// "shutting_down", "bad_request", "duplicate"); detail is for humans.
[[nodiscard]] std::string rejected_line(const std::string& reason, const std::string& detail);
[[nodiscard]] std::string meta_line(const api::SweepMeta& m);
[[nodiscard]] std::string matrix_line(const TestMatrix& tm, std::size_t index);
[[nodiscard]] std::string run_line(const std::string& matrix, std::size_t n, std::size_t nnz,
                                   const FormatRun& run, bool replayed);
[[nodiscard]] std::string reference_line(const std::string& matrix, std::size_t n,
                                         std::size_t nnz, const std::string& failure,
                                         bool replayed);
[[nodiscard]] std::string fault_line(const api::FaultEvent& e);
[[nodiscard]] std::string done_line(const std::string& status, std::size_t executed,
                                    std::size_t replayed, std::size_t canceled, double elapsed,
                                    const std::string& error);

// ---------------------------------------------------------------------------
// Client-side event decoding
// ---------------------------------------------------------------------------

/// One decoded response line: its type plus the raw field map.
struct Event {
  std::string type;
  std::map<std::string, std::string> fields;
};

/// Parse one response line; false on malformed JSON or a missing type.
[[nodiscard]] bool parse_event(const std::string& line, Event& out);

/// Decode a "run" event's FormatRun payload (exact double round-trip).
/// Throws std::invalid_argument on missing/malformed fields.
[[nodiscard]] FormatRun run_from_event(const Event& e);

}  // namespace mfla::serve
