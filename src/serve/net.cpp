#include "serve/net.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "core/errors.hpp"
#include "support/failpoint.hpp"

namespace mfla::serve {

namespace {

std::string errno_string(int err) { return std::strerror(err); }

/// Fill a sockaddr_un; throws IoError when the path does not fit (the
/// classic silent-truncation footgun).
sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path)
    throw IoError("serve: socket path '" + path + "' exceeds sockaddr_un limit (" +
                  std::to_string(sizeof addr.sun_path - 1) + " bytes)");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

Fd& Fd::operator=(Fd&& other) noexcept {
  if (this != &other) {
    reset(other.fd_);
    other.fd_ = -1;
  }
  return *this;
}

void Fd::reset(int fd) noexcept {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

Fd listen_unix(const std::string& path, int backlog) {
  const sockaddr_un addr = make_addr(path);
  Fd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) throw IoError("serve: socket() failed: " + errno_string(errno));
  // A previous daemon that crashed leaves its socket file behind; binding
  // over it needs the unlink first. A LIVE daemon on the same path loses
  // its listener too — single-instance-per-path is the deployment contract.
  ::unlink(path.c_str());
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0)
    throw IoError("serve: bind('" + path + "') failed: " + errno_string(errno));
  if (::listen(fd.get(), backlog) != 0)
    throw IoError("serve: listen('" + path + "') failed: " + errno_string(errno));
  return fd;
}

Fd connect_unix(const std::string& path) {
  const sockaddr_un addr = make_addr(path);
  Fd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) throw IoError("serve: socket() failed: " + errno_string(errno));
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0)
    throw IoError("serve: connect('" + path + "') failed: " + errno_string(errno) +
                  " (is the daemon running?)");
  return fd;
}

void set_io_timeout(int fd, int timeout_ms) {
  if (timeout_ms <= 0) return;
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>(timeout_ms % 1000) * 1000;
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

Fd poll_accept(int listen_fd, int timeout_ms, std::string& err) {
  err.clear();
  if (int injected = MFLA_FAILPOINT("serve.accept"); injected != 0) {
    err = "accept failed: " + errno_string(injected) + " (injected)";
    return Fd();
  }
  pollfd pfd{};
  pfd.fd = listen_fd;
  pfd.events = POLLIN;
  const int r = ::poll(&pfd, 1, timeout_ms);
  if (r == 0) return Fd();  // timeout: not an error
  if (r < 0) {
    if (errno == EINTR) return Fd();  // signal: let the caller re-check its flags
    err = "poll failed: " + errno_string(errno);
    return Fd();
  }
  const int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
  if (fd < 0) {
    // Per-connection accept errors (peer already gone, fd pressure) must
    // not kill the loop; report and carry on.
    err = "accept failed: " + errno_string(errno);
    return Fd();
  }
  return Fd(fd);
}

bool send_line(int fd, const std::string& line, std::string& err) {
  std::string framed = line;
  framed += '\n';
  std::size_t off = 0;
  while (off < framed.size()) {
    if (int injected = MFLA_FAILPOINT("serve.write"); injected != 0) {
      err = "write failed: " + errno_string(injected) + " (injected)";
      return false;
    }
    const ssize_t n = ::send(fd, framed.data() + off, framed.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      err = "write failed: " + errno_string(errno);
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

LineReader::Status LineReader::read_line(std::string& out, std::string& err) {
  err.clear();
  for (;;) {
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      // The bound applies even when the terminator has already arrived —
      // a complete-but-overlong line is still overlong.
      if (nl > max_line_) {
        err = "line exceeds " + std::to_string(max_line_) + " bytes";
        return Status::overlong;
      }
      out.assign(buf_, 0, nl);
      buf_.erase(0, nl + 1);
      return Status::ok;
    }
    if (buf_.size() > max_line_) {
      err = "line exceeds " + std::to_string(max_line_) + " bytes";
      return Status::overlong;
    }
    if (int injected = MFLA_FAILPOINT("serve.read"); injected != 0) {
      err = "read failed: " + errno_string(injected) + " (injected)";
      return Status::error;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n == 0) return Status::eof;
    if (n < 0) {
      if (errno == EINTR) continue;
      err = "read failed: " + errno_string(errno);
      return Status::error;
    }
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace mfla::serve
