#include "serve/client.hpp"

#include <map>
#include <stdexcept>
#include <utility>

#include "arith/format_registry.hpp"
#include "core/errors.hpp"
#include "serve/net.hpp"
#include "support/jsonl.hpp"

namespace mfla::serve {

namespace {

std::vector<std::string> split_names(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(csv.substr(start));
      break;
    }
    out.push_back(csv.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

}  // namespace

ClientResult run_sweep(const ClientOptions& opts, const SweepRequest& req) {
  ClientResult out;
  Fd fd = connect_unix(opts.socket_path);  // IoError when the daemon is absent
  set_io_timeout(fd.get(), opts.io_timeout_ms);
  std::string err;
  if (!send_line(fd.get(), serialize_request(req), err)) {
    out.status = ClientResult::Status::io_error;
    out.error = err;
    return out;
  }

  LineReader reader(fd.get(), kMaxEventBytes);
  std::vector<std::string> format_names;            // meta's run order
  std::map<std::string, std::size_t> format_index;  // name -> slot
  std::map<std::string, std::size_t> matrix_index;  // name -> results slot
  std::vector<std::vector<bool>> filled;            // per matrix, per slot
  std::string done_status;

  const auto protocol_error = [&](const std::string& what) {
    out.status = ClientResult::Status::protocol_error;
    out.error = what;
    return out;
  };

  for (;;) {
    std::string line;
    const LineReader::Status st = reader.read_line(line, err);
    if (st == LineReader::Status::eof) {
      out.status = ClientResult::Status::io_error;
      out.error = "server closed the connection before the done line";
      return out;
    }
    if (st != LineReader::Status::ok) {
      out.status = ClientResult::Status::io_error;
      out.error = err.empty() ? "read failed" : err;
      return out;
    }
    ++out.events;

    Event ev;
    if (!parse_event(line, ev)) return protocol_error("unparseable response line: " + line);
    try {
      if (ev.type == "rejected") {
        out.status = ClientResult::Status::rejected;
        out.reject_reason = jsonl::field_str_or(ev.fields, "reason", "unknown");
        out.error = jsonl::field_str_or(ev.fields, "detail", "");
        return out;
      }
      if (ev.type == "accepted") {
        out.sweep_id = jsonl::field_str_or(ev.fields, "sweep", "");
        const auto version = jsonl::field_u64_or(ev.fields, "version", 0);
        if (version != static_cast<std::uint64_t>(kProtocolVersion))
          return protocol_error("server speaks protocol version " + std::to_string(version) +
                                ", this client speaks " + std::to_string(kProtocolVersion));
      } else if (ev.type == "meta") {
        format_names = split_names(jsonl::field_str(ev.fields, "formats"));
        for (std::size_t i = 0; i < format_names.size(); ++i)
          format_index[format_names[i]] = i;
      } else if (ev.type == "matrix") {
        MatrixResult mr;
        mr.name = jsonl::field_str(ev.fields, "matrix");
        mr.klass = jsonl::field_str(ev.fields, "class");
        mr.category = jsonl::field_str(ev.fields, "category");
        mr.n = static_cast<std::size_t>(jsonl::field_u64(ev.fields, "n"));
        mr.nnz = static_cast<std::size_t>(jsonl::field_u64(ev.fields, "nnz"));
        mr.reference_ok = true;
        mr.runs.resize(format_names.size());
        if (matrix_index.count(mr.name) != 0)
          return protocol_error("matrix '" + mr.name + "' announced twice");
        matrix_index[mr.name] = out.results.size();
        out.results.push_back(std::move(mr));
        filled.emplace_back(format_names.size(), false);
      } else if (ev.type == "run") {
        const std::string name = jsonl::field_str(ev.fields, "matrix");
        const auto mi = matrix_index.find(name);
        if (mi == matrix_index.end())
          return protocol_error("run event for unannounced matrix '" + name + "'");
        const FormatRun run = run_from_event(ev);
        const auto fi = format_index.find(format_info(run.format).name);
        if (fi == format_index.end())
          return protocol_error("run event for format outside the meta list");
        out.results[mi->second].runs[fi->second] = run;
        filled[mi->second][fi->second] = true;
      } else if (ev.type == "reference") {
        const std::string name = jsonl::field_str(ev.fields, "matrix");
        const auto mi = matrix_index.find(name);
        if (mi == matrix_index.end())
          return protocol_error("reference event for unannounced matrix '" + name + "'");
        MatrixResult& mr = out.results[mi->second];
        mr.reference_ok = false;
        mr.reference_failure = jsonl::field_str_or(ev.fields, "failure", "");
        mr.runs.clear();
      } else if (ev.type == "done") {
        done_status = jsonl::field_str(ev.fields, "status");
        out.executed = static_cast<std::size_t>(jsonl::field_u64_or(ev.fields, "executed", 0));
        out.replayed = static_cast<std::size_t>(jsonl::field_u64_or(ev.fields, "replayed", 0));
        out.elapsed_seconds = jsonl::field_num_or(ev.fields, "elapsed", 0.0);
        out.error = jsonl::field_str_or(ev.fields, "error", "");
        break;
      }
      // "fault" and any future informational types are consumed silently.
    } catch (const std::exception& e) {
      return protocol_error(std::string("bad field in '") + ev.type + "' event: " + e.what());
    }

    if (opts.abort_after_events != 0 && out.events >= opts.abort_after_events) {
      out.status = ClientResult::Status::aborted;
      out.error = "aborted after " + std::to_string(out.events) + " events (test hook)";
      return out;
    }
  }

  if (done_status == "canceled") {
    out.status = ClientResult::Status::canceled;
    return out;
  }
  if (done_status != "ok") {
    out.status = ClientResult::Status::error;
    if (out.error.empty()) out.error = "sweep failed server-side";
    return out;
  }
  // A complete stream accounts for every (matrix, format) slot; anything
  // missing means the stream lied about being done.
  for (std::size_t m = 0; m < out.results.size(); ++m) {
    if (!out.results[m].reference_ok) continue;
    for (std::size_t f = 0; f < filled[m].size(); ++f) {
      if (!filled[m][f])
        return protocol_error("done, but run (" + out.results[m].name + ", " + format_names[f] +
                              ") was never streamed");
    }
  }
  out.status = ClientResult::Status::ok;
  return out;
}

std::string fetch_stats(const ClientOptions& opts) {
  Fd fd = connect_unix(opts.socket_path);
  set_io_timeout(fd.get(), opts.io_timeout_ms);
  std::string err;
  if (!send_line(fd.get(), serialize_stats_request(), err))
    throw IoError("serve: stats request failed: " + err);
  LineReader reader(fd.get(), kMaxEventBytes);
  std::string line;
  const LineReader::Status st = reader.read_line(line, err);
  if (st != LineReader::Status::ok)
    throw IoError("serve: stats response failed: " + (err.empty() ? "connection closed" : err));
  return line;
}

}  // namespace mfla::serve
