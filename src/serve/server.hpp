// The sweep-serving daemon (docs/SERVING.md): a Unix-domain-socket server
// that runs api::Sweep requests for many concurrent tenants over ONE
// shared ThreadPool and ONE shared ReferenceCache, streaming each sweep's
// ResultSink events back as JSONL (serve/protocol.hpp).
//
// Life of a connection: accept -> read one request line (bounded, timed
// out) -> admission control (serve/scheduler.hpp) -> `accepted` ->
// meta/matrix/run/reference/fault event stream -> `done`. Rejections
// (malformed, oversized, overloaded, tenant quota, draining, duplicate)
// are a single `rejected` line; none of them ever kill the process.
//
// Each sweep checkpoints into its own journal namespace under
// <state_dir>/sweeps/<sweep-id>/ — a retried request resumes its
// predecessor's journal and re-streams journal-replayed results marked
// "replayed":1. A client that dies mid-stream flips the sweep's cancel
// flag: in-flight runs finish and journal, queued ones are skipped, and
// the next retry resumes. Graceful shutdown (request_drain) closes the
// listener first, rejects the queue, lets in-flight sweeps finish;
// request_cancel additionally cancels them (their journals make the work
// resumable).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>

#include "core/reference_cache.hpp"
#include "serve/net.hpp"
#include "serve/protocol.hpp"
#include "serve/scheduler.hpp"
#include "support/thread_pool.hpp"

namespace mfla::serve {

struct ServerOptions {
  std::string socket_path;  ///< Unix socket to listen on (file is replaced)
  /// Daemon state root: <state_dir>/refcache (shared reference cache) and
  /// <state_dir>/sweeps/<id>/journal.jsonl (per-request checkpoints).
  std::string state_dir;
  std::size_t threads = 0;  ///< shared pool size; 0 = hardware concurrency
  SchedulerLimits limits;
  int io_timeout_ms = 30000;  ///< per-connection socket send/recv timeout
  int accept_poll_ms = 200;   ///< drain-flag check cadence in the accept loop
};

/// Counter snapshot returned by the `stats` request and stats_snapshot().
struct ServerStats {
  std::uint64_t connections = 0;  ///< sockets accepted
  std::uint64_t requests = 0;     ///< complete request lines read
  std::uint64_t malformed = 0;    ///< rejected before admission (parse/size)
  std::uint64_t sweeps_ok = 0;
  std::uint64_t sweeps_failed = 0;    ///< engine threw (I/O, journal mismatch)
  std::uint64_t sweeps_canceled = 0;  ///< dead client or shutdown cancel
  SchedulerStats admission;
  RefCacheStats cache;
  bool draining = false;
};

class Server {
 public:
  /// Binds the socket, creates the state directory and the shared cache;
  /// throws IoError when either is impossible.
  explicit Server(ServerOptions opts);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Run the accept loop on the calling thread. Returns — with the
  /// listener closed, the socket file removed, and every connection thread
  /// joined-equivalent (drained) — after request_drain()/request_cancel().
  void serve();

  /// Graceful shutdown: stop accepting, reject the queue, let in-flight
  /// sweeps finish and their journals flush. Safe from any thread (but not
  /// from a signal handler — flip an atomic there and call this after).
  void request_drain();

  /// Drain plus cooperative cancellation of in-flight sweeps (they stop at
  /// the next task boundary; journals keep them resumable).
  void request_cancel();

  [[nodiscard]] ServerStats stats_snapshot();
  [[nodiscard]] const ServerOptions& options() const noexcept { return opts_; }

 private:
  /// Per-connection state shared between the connection thread and
  /// request_cancel(); `cancel` is also the sweep's cancel flag.
  struct Conn {
    Fd fd;
    std::atomic<bool> cancel{false};
  };

  void handle_connection(Conn& conn);
  void run_sweep(Conn& conn, const SweepRequest& req);
  [[nodiscard]] std::string stats_line();

  ServerOptions opts_;
  ThreadPool pool_;
  ReferenceCache cache_;
  Scheduler scheduler_;
  Fd listener_;

  std::atomic<bool> drain_{false};
  std::atomic<bool> cancel_all_{false};

  std::mutex conn_mtx_;
  std::condition_variable conn_cv_;
  std::set<Conn*> conns_;  // open connections, for cancel fan-out + drain wait

  std::mutex sweep_mtx_;
  std::set<std::string> active_sweep_ids_;  // duplicate-request guard

  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> malformed_{0};
  std::atomic<std::uint64_t> sweeps_ok_{0};
  std::atomic<std::uint64_t> sweeps_failed_{0};
  std::atomic<std::uint64_t> sweeps_canceled_{0};
};

}  // namespace mfla::serve
