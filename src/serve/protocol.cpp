#include "serve/protocol.hpp"

#include <cinttypes>
#include <cstdio>
#include <stdexcept>

#include "core/results_io.hpp"
#include "support/jsonl.hpp"
#include "support/rng.hpp"

namespace mfla::serve {

namespace {

using jsonl::JsonLine;

/// Hex of one 64-bit word, zero-padded to 16 digits.
std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, v);
  return buf;
}

}  // namespace

bool parse_request(const std::string& line, Request& out, std::string& error) {
  std::map<std::string, std::string> obj;
  if (!jsonl::parse_line(line, obj)) {
    error = "malformed JSON request line";
    return false;
  }
  const auto type = obj.find("type");
  if (type == obj.end()) {
    error = "request has no \"type\" field";
    return false;
  }
  if (type->second == "stats") {
    out.kind = Request::Kind::stats;
    return true;
  }
  if (type->second != "sweep") {
    error = "unknown request type \"" + type->second + "\"";
    return false;
  }
  out.kind = Request::Kind::sweep;
  SweepRequest r;  // defaults for absent fields
  try {
    r.tenant = jsonl::field_str_or(obj, "tenant", r.tenant);
    r.corpus = jsonl::field_str_or(obj, "corpus", r.corpus);
    r.count = static_cast<std::size_t>(jsonl::field_u64_or(obj, "count", r.count));
    r.formats = jsonl::field_str_or(obj, "formats", r.formats);
    r.nev = static_cast<std::size_t>(jsonl::field_u64_or(obj, "nev", r.nev));
    r.buffer = static_cast<std::size_t>(jsonl::field_u64_or(obj, "buffer", r.buffer));
    r.restarts = static_cast<int>(
        jsonl::field_u64_or(obj, "restarts", static_cast<std::uint64_t>(r.restarts)));
    r.which = jsonl::field_str_or(obj, "which", r.which);
    r.seed = jsonl::field_u64_or(obj, "seed", r.seed);
    r.ref_tier = jsonl::field_str_or(obj, "ref_tier", r.ref_tier);
    r.resume = jsonl::field_u64_or(obj, "resume", r.resume ? 1 : 0) != 0;
  } catch (const std::invalid_argument& e) {
    error = std::string("bad request field: ") + e.what();
    return false;
  }
  if (r.tenant.empty()) {
    error = "tenant must be non-empty";
    return false;
  }
  out.sweep = std::move(r);
  return true;
}

std::string serialize_request(const SweepRequest& r) {
  JsonLine j;
  j.str("type", "sweep")
      .str("tenant", r.tenant)
      .str("corpus", r.corpus)
      .uint("count", r.count)
      .str("formats", r.formats)
      .uint("nev", r.nev)
      .uint("buffer", r.buffer)
      .uint("restarts", static_cast<std::uint64_t>(r.restarts))
      .str("which", r.which)
      .uint("seed", r.seed)
      .str("ref_tier", r.ref_tier)
      .uint("resume", r.resume ? 1 : 0);
  return j.finish();
}

std::string serialize_stats_request() {
  JsonLine j;
  j.str("type", "stats");
  return j.finish();
}

std::string sweep_id(const SweepRequest& r) {
  // Canonical encoding of every result-affecting field plus the tenant.
  // `resume` deliberately does NOT participate: a retry with resume=false
  // must map to the same namespace it is restarting.
  std::string canon = r.tenant;
  canon += '\n';
  canon += r.corpus;
  canon += '\n';
  canon += std::to_string(r.count);
  canon += '\n';
  canon += r.formats;
  canon += '\n';
  canon += std::to_string(r.nev);
  canon += '\n';
  canon += std::to_string(r.buffer);
  canon += '\n';
  canon += std::to_string(r.restarts);
  canon += '\n';
  canon += r.which;
  canon += '\n';
  canon += std::to_string(r.seed);
  canon += '\n';
  canon += r.ref_tier;
  // Two independent 64-bit FNV streams -> a 128-bit id; collisions across
  // a server state dir are then not a practical concern.
  const std::uint64_t lo = fnv1a(canon);
  const std::uint64_t hi = fnv1a(canon + "\n#salt");
  return hex64(hi) + hex64(lo);
}

// ---------------------------------------------------------------------------
// Response lines
// ---------------------------------------------------------------------------

std::string accepted_line(const std::string& id) {
  JsonLine j;
  j.str("type", "accepted").str("sweep", id).integer("version", kProtocolVersion);
  return j.finish();
}

std::string rejected_line(const std::string& reason, const std::string& detail) {
  JsonLine j;
  j.str("type", "rejected").str("reason", reason).str("detail", detail);
  return j.finish();
}

std::string meta_line(const api::SweepMeta& m) {
  std::string formats;
  for (const FormatId id : m.formats) {
    if (!formats.empty()) formats += ',';
    formats += format_info(id).name;
  }
  JsonLine j;
  j.str("type", "meta")
      .integer("version", kProtocolVersion)
      .uint("nev", m.config.nev)
      .uint("buffer", m.config.buffer)
      .integer("which", static_cast<int>(m.config.which))
      .integer("restarts", m.config.max_restarts)
      .integer("ref_restarts", m.config.reference_max_restarts)
      .uint("seed", m.config.seed)
      .integer("ref_tier", static_cast<int>(m.config.reference_tier))
      .str("formats", formats)
      .uint("matrices", m.matrix_count)
      .uint("total_runs", m.total_runs);
  return j.finish();
}

std::string matrix_line(const TestMatrix& tm, std::size_t index) {
  JsonLine j;
  j.str("type", "matrix")
      .uint("index", index)
      .str("matrix", tm.name)
      .str("class", tm.klass)
      .str("category", tm.category)
      .uint("n", tm.n())
      .uint("nnz", tm.nnz());
  return j.finish();
}

std::string run_line(const std::string& matrix, std::size_t n, std::size_t nnz,
                     const FormatRun& run, bool replayed) {
  // Field names follow the checkpoint journal's run lines so the two
  // formats stay mentally interchangeable.
  JsonLine j;
  j.str("type", "run")
      .str("matrix", matrix)
      .uint("n", n)
      .uint("nnz", nnz)
      .str("format", format_info(run.format).name)
      .str("outcome", outcome_name(run.outcome))
      .num("eig_abs", run.eigenvalue_error.absolute)
      .num("eig_rel", run.eigenvalue_error.relative)
      .num("vec_abs", run.eigenvector_error.absolute)
      .num("vec_rel", run.eigenvector_error.relative)
      .num("similarity", run.mean_similarity)
      .uint("nconv", run.nconverged)
      .integer("restarts", run.restarts)
      .uint("matvecs", run.matvecs)
      .num("duration", run.duration_seconds)
      .str("failure", run.failure);
  if (replayed) j.uint("replayed", 1);
  return j.finish();
}

std::string reference_line(const std::string& matrix, std::size_t n, std::size_t nnz,
                           const std::string& failure, bool replayed) {
  JsonLine j;
  j.str("type", "reference")
      .str("matrix", matrix)
      .uint("n", n)
      .uint("nnz", nnz)
      .str("failure", failure);
  if (replayed) j.uint("replayed", 1);
  return j.finish();
}

std::string fault_line(const api::FaultEvent& e) {
  JsonLine j;
  j.str("type", "fault")
      .str("matrix", e.matrix)
      .str("stage", e.stage)
      .str("format", e.format)
      .str("what", e.what);
  return j.finish();
}

std::string done_line(const std::string& status, std::size_t executed, std::size_t replayed,
                      std::size_t canceled, double elapsed, const std::string& error) {
  JsonLine j;
  j.str("type", "done")
      .str("status", status)
      .uint("executed", executed)
      .uint("replayed", replayed)
      .uint("canceled", canceled)
      .num("elapsed", elapsed);
  if (!error.empty()) j.str("error", error);
  return j.finish();
}

// ---------------------------------------------------------------------------
// Client-side decoding
// ---------------------------------------------------------------------------

bool parse_event(const std::string& line, Event& out) {
  out.fields.clear();
  if (!jsonl::parse_line(line, out.fields)) return false;
  const auto type = out.fields.find("type");
  if (type == out.fields.end()) return false;
  out.type = type->second;
  return true;
}

FormatRun run_from_event(const Event& e) {
  const auto& f = e.fields;
  FormatRun run;
  run.format = format_from_name(jsonl::field_str(f, "format"));
  run.outcome = outcome_from_name(jsonl::field_str(f, "outcome"));
  run.eigenvalue_error.absolute = jsonl::field_num(f, "eig_abs");
  run.eigenvalue_error.relative = jsonl::field_num(f, "eig_rel");
  run.eigenvector_error.absolute = jsonl::field_num(f, "vec_abs");
  run.eigenvector_error.relative = jsonl::field_num(f, "vec_rel");
  run.mean_similarity = jsonl::field_num(f, "similarity");
  run.nconverged = static_cast<std::size_t>(jsonl::field_u64(f, "nconv"));
  run.restarts = static_cast<int>(jsonl::field_num(f, "restarts"));
  run.matvecs = static_cast<std::size_t>(jsonl::field_u64(f, "matvecs"));
  run.duration_seconds = jsonl::field_num_or(f, "duration", 0.0);
  run.failure = jsonl::field_str_or(f, "failure", "");
  return run;
}

}  // namespace mfla::serve
