// Minimal Unix-domain socket plumbing for the serving daemon: listener
// setup, blocking connect, poll-based accept with a timeout (so the accept
// loop can notice a drain request), whole-line send, and a bounded
// buffered line reader. Everything reports errors by return value — a
// misbehaving peer must never take the daemon down — and the I/O seams
// carry `serve.accept` / `serve.read` / `serve.write` failpoints so CI can
// torture the connection paths (docs/ROBUSTNESS.md).
#pragma once

#include <cstddef>
#include <string>

namespace mfla::serve {

/// RAII file descriptor. Move-only; closes on destruction.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) noexcept : fd_(fd) {}
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept;
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  ~Fd() { reset(); }

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  /// Close the current descriptor (if any) and take ownership of `fd`.
  void reset(int fd = -1) noexcept;
  /// Give up ownership without closing.
  [[nodiscard]] int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_ = -1;
};

/// Create, bind and listen on a Unix-domain socket at `path`, replacing a
/// stale socket file from a previous run. Throws IoError on failure
/// (including a path longer than sockaddr_un allows).
[[nodiscard]] Fd listen_unix(const std::string& path, int backlog = 16);

/// Connect to the daemon's socket. Throws IoError when the daemon is not
/// there (ENOENT/ECONNREFUSED) or the path is too long.
[[nodiscard]] Fd connect_unix(const std::string& path);

/// Arm SO_RCVTIMEO/SO_SNDTIMEO so a dead peer cannot wedge a connection
/// thread forever. timeout_ms <= 0 leaves the socket blocking.
void set_io_timeout(int fd, int timeout_ms);

/// poll() for a pending connection; returns the accepted fd, or an invalid
/// Fd on timeout (err empty) or error (err set). Fires the `serve.accept`
/// failpoint.
[[nodiscard]] Fd poll_accept(int listen_fd, int timeout_ms, std::string& err);

/// Send `line` plus a trailing newline, looping over partial writes, with
/// MSG_NOSIGNAL (a dead peer yields EPIPE, not a process-killing SIGPIPE).
/// Fires the `serve.write` failpoint. Returns false with `err` set on any
/// failure — the caller treats the connection as gone.
[[nodiscard]] bool send_line(int fd, const std::string& line, std::string& err);

/// Buffered newline-delimited reader with a hard per-line byte bound.
class LineReader {
 public:
  enum class Status {
    ok,        ///< one complete line in `out` (newline stripped)
    eof,       ///< peer closed cleanly before another full line
    error,     ///< read failed (err is set); includes timeouts
    overlong,  ///< line exceeded max_line bytes: protocol violation
  };

  explicit LineReader(int fd, std::size_t max_line) : fd_(fd), max_line_(max_line) {}

  /// Block (subject to the socket timeout) until one full line arrives.
  /// Fires the `serve.read` failpoint.
  [[nodiscard]] Status read_line(std::string& out, std::string& err);

 private:
  int fd_;
  std::size_t max_line_;
  std::string buf_;
};

}  // namespace mfla::serve
