// Sparse matrix–vector product over CSR storage.
//
// The matvec accumulates in the working format T — this is the central
// kernel whose low-precision behavior the study measures. Like the dense
// kernels in vector_ops.hpp it is written once against a scalar-operation
// policy: the ≤16-bit formats take the bit-identical LUT fast paths from
// kernels/accel.hpp, everything else runs the exact engines.
//
// On top of the precomputed-offset plan, the SIMD tier (kernels/simd.hpp)
// adds a SELL-8 execution plan: rows are grouped into slices of eight and
// their nonzeros stored slice-interleaved, so eight *independent* row
// chains advance in lock step. Each row's chain still executes in its
// original nonzero order over the very same tables, so the result is
// bit-identical; the win is instruction-level parallelism — a single row
// chain is bounded by the ~5-cycle latency of its dependent table loads,
// eight interleaved chains keep the load ports saturated instead.
// (A vpgatherdd formulation of this kernel measures *slower* than the
// interleaved scalar chains: the per-nonzero x→mul gathers chain, and
// chained gathers cost ~4x a chained scalar load. The gather-based
// kernels live where chains are per-lane independent — kernels/
// simd_avx2.hpp's spmm and blocked dot/axpy.)
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "kernels/accel.hpp"
#include "kernels/simd.hpp"

namespace mfla {
namespace kernels {

namespace detail {

template <typename T, class Ops>
void spmv_impl(std::size_t rows, const std::uint32_t* row_ptr, const std::uint32_t* col_idx,
               const T* values, const T* x, T* y, const Ops& ops) noexcept {
  for (std::size_t i = 0; i < rows; ++i) {
    T acc(0);
    for (std::uint32_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      acc = ops.add(acc, ops.mul(values[k], x[col_idx[k]]));
    }
    y[i] = acc;
  }
}

}  // namespace detail

namespace ref {

template <typename T>
void spmv(std::size_t rows, const std::uint32_t* row_ptr, const std::uint32_t* col_idx,
          const T* values, const T* x, T* y) noexcept {
  detail::spmv_impl(rows, row_ptr, col_idx, values, x, y, accel::NativeOps<T>{});
}

}  // namespace ref

// -- 8-bit precomputed-offset fast path -------------------------------------

/// Is the offset plan meaningful for T? (8-bit formats with LUT support.)
template <typename T>
[[nodiscard]] consteval bool spmv_plan_supported() noexcept {
#if MFLA_ENABLE_LUT
  return accel::accel_kind<T>() == accel::AccelKind::lut8;
#else
  return false;
#endif
}

/// Per-nonzero LUT row offsets for an 8-bit value array: offsets[k] is
/// bits(values[k]) << 8, i.e. the base index of that operand's row in the
/// 256x256 operation tables. Computed once per matrix (sparse/csr.hpp),
/// it removes the shift/or index arithmetic on the value operand from
/// every inner-loop multiply of every matvec.
template <typename T>
[[nodiscard]] std::vector<std::uint16_t> build_spmv_plan(const T* values, std::size_t nnz) {
  static_assert(spmv_plan_supported<T>());
  std::vector<std::uint16_t> offsets(nnz);
  using Codec = ScalarCodec<T>;
  for (std::size_t k = 0; k < nnz; ++k)
    offsets[k] = static_cast<std::uint16_t>(static_cast<std::uint16_t>(Codec::to_bits(values[k]))
                                            << 8);
  return offsets;
}

#if MFLA_ENABLE_LUT

// -- SELL-8 execution plan (SIMD tier) --------------------------------------

/// Sliced-ELL layout with slice height 8 over the offset plan: each slice
/// covers eight consecutive rows, padded to the longest row in the slice,
/// with one fused word (offset << 16) | col per (padded) nonzero stored
/// lane-interleaved (fused[base + 8 t + c] is row c's t-th entry). Pad
/// entries replicate the row's last real nonzero so every load stays in
/// range; their results are discarded by the t < len guard in the kernel.
/// Built once per matrix alongside the offset plan (sparse/csr.hpp) and
/// invalidated with it.
struct SellPlan {
  struct Slice {
    std::uint32_t base = 0;  ///< first fused word of the slice
    std::uint32_t maxl = 0;  ///< longest row in the slice
    std::uint32_t len[8] = {};  ///< row lengths (0 past the last row)
  };
  std::vector<Slice> slices;
  std::vector<std::uint32_t> fused;
  bool valid = false;

  void clear() noexcept {
    slices.clear();
    fused.clear();
    valid = false;
  }
};

/// Build the SELL-8 plan, or an invalid one when the layout cannot help:
/// columns beyond 16 bits (they must fit the fused word), or row lengths
/// so skewed that slice padding would blow the plan past ~4x the nonzero
/// count (the planned scalar loop is the fallback, slower never wrong).
[[nodiscard]] inline SellPlan build_sell_plan(std::size_t rows, std::size_t cols,
                                              const std::uint32_t* row_ptr,
                                              const std::uint32_t* col_idx,
                                              const std::uint16_t* offsets) {
  SellPlan p;
  if (rows == 0 || cols > 65536) return p;
  std::size_t padded = 0;
  for (std::size_t r = 0; r < rows; r += 8) {
    std::uint32_t maxl = 0;
    for (std::size_t c = 0; c < 8 && r + c < rows; ++c) {
      const std::uint32_t l = row_ptr[r + c + 1] - row_ptr[r + c];
      maxl = l > maxl ? l : maxl;
    }
    padded += std::size_t{8} * maxl;
  }
  if (padded > 4 * std::size_t{row_ptr[rows]} + 64) return p;
  p.slices.reserve((rows + 7) / 8);
  p.fused.resize(padded);
  std::size_t base = 0;
  for (std::size_t r = 0; r < rows; r += 8) {
    SellPlan::Slice s;
    s.base = static_cast<std::uint32_t>(base);
    for (std::size_t c = 0; c < 8 && r + c < rows; ++c) {
      s.len[c] = row_ptr[r + c + 1] - row_ptr[r + c];
      s.maxl = s.len[c] > s.maxl ? s.len[c] : s.maxl;
    }
    for (std::size_t c = 0; c < 8; ++c) {
      for (std::uint32_t t = 0; t < s.maxl; ++t) {
        std::uint32_t word = 0;
        if (s.len[c] != 0) {
          const std::uint32_t k = row_ptr[r + c] + (t < s.len[c] ? t : s.len[c] - 1);
          word = (static_cast<std::uint32_t>(offsets[k]) << 16) | col_idx[k];
        }
        p.fused[base + std::size_t{8} * t + c] = word;
      }
    }
    base += std::size_t{8} * s.maxl;
    p.slices.push_back(s);
  }
  p.valid = true;
  return p;
}

/// Planned SpMV over the SELL-8 plan, in the encoding-bit domain: eight
/// independent row chains advance in lock step (two nonzeros deep per
/// iteration on the unpadded prefix), hiding each chain's dependent-load
/// latency behind the other seven. Every chain is the scalar chain of its
/// row, in its original order — bit-identical by construction. `x` is the
/// x encoding bytes (no padding needed: all reads are single bytes).
inline void spmv_sell_bits(const std::uint8_t* mul2d, const std::uint8_t* addt,
                           const std::uint8_t* x, const SellPlan& plan, std::size_t rows,
                           std::uint8_t* y, std::uint8_t zero_bits) noexcept {
  for (std::size_t si = 0; si < plan.slices.size(); ++si) {
    const SellPlan::Slice& s = plan.slices[si];
    const std::uint32_t* f = plan.fused.data() + s.base;
    std::uint32_t a[8];
    for (int c = 0; c < 8; ++c) a[c] = zero_bits;
    std::uint32_t minl = s.len[0];
    for (int c = 1; c < 8; ++c) minl = s.len[c] < minl ? s.len[c] : minl;
    std::uint32_t t = 0;
    for (; t + 2 <= minl; t += 2) {
      std::uint32_t p0[8], p1[8];
#pragma GCC unroll 8
      for (int c = 0; c < 8; ++c) {
        const std::uint32_t e = f[8 * t + c];
        p0[c] = mul2d[(e >> 16) | x[e & 0xffff]];
      }
#pragma GCC unroll 8
      for (int c = 0; c < 8; ++c) {
        const std::uint32_t e = f[8 * t + 8 + c];
        p1[c] = mul2d[(e >> 16) | x[e & 0xffff]];
      }
#pragma GCC unroll 8
      for (int c = 0; c < 8; ++c) a[c] = addt[(p0[c] << 8) + a[c]];
#pragma GCC unroll 8
      for (int c = 0; c < 8; ++c) a[c] = addt[(p1[c] << 8) + a[c]];
    }
    for (; t < minl; ++t) {
#pragma GCC unroll 8
      for (int c = 0; c < 8; ++c) {
        const std::uint32_t e = f[8 * t + c];
        const std::uint32_t p = mul2d[(e >> 16) | x[e & 0xffff]];
        a[c] = addt[(p << 8) + a[c]];
      }
    }
    for (; t < s.maxl; ++t) {
#pragma GCC unroll 8
      for (int c = 0; c < 8; ++c) {
        const std::uint32_t e = f[8 * t + c];
        const std::uint32_t p = mul2d[(e >> 16) | x[e & 0xffff]];
        const std::uint32_t nx = addt[(p << 8) + a[c]];
        a[c] = t < s.len[c] ? nx : a[c];
      }
    }
    const std::size_t r0 = si * 8;
    for (std::size_t c = 0; c < 8 && r0 + c < rows; ++c)
      y[r0 + c] = static_cast<std::uint8_t>(a[c]);
  }
}

/// y := A x with the precomputed offset plan; bit-identical to the generic
/// LUT path (the accumulation runs in the bit domain over the very same
/// tables, in the very same order). Callers must check lut_enabled().
/// When the SIMD tier is active and a valid SELL-8 plan is supplied, the
/// slice-interleaved kernel above runs instead of the row-at-a-time loop.
template <typename T>
void spmv_planned(std::size_t rows, const std::uint32_t* row_ptr, const std::uint32_t* col_idx,
                  const std::uint16_t* offsets, const T* x, T* y,
                  const SellPlan* sell = nullptr) noexcept {
  static_assert(spmv_plan_supported<T>());
  using Codec = ScalarCodec<T>;
  using Storage = typename Codec::Storage;
  const auto& lut = accel::Lut8<T>::instance();
  const Storage zero_bits = Codec::to_bits(T(0));
  if (sell != nullptr && sell->valid && simd_active()) {
    spmv_sell_bits(lut.mul_data(), lut.add_t_data(), detail::byte_ptr(x), *sell, rows,
                   detail::byte_ptr(y), zero_bits);
    return;
  }
  for (std::size_t i = 0; i < rows; ++i) {
    Storage acc = zero_bits;
    for (std::uint32_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      const Storage prod =
          lut.mul_at(static_cast<std::size_t>(offsets[k]) |
                     static_cast<std::size_t>(Codec::to_bits(x[col_idx[k]])));
      acc = lut.add_bits(acc, prod);
    }
    y[i] = Codec::from_bits(acc);
  }
}

#endif  // MFLA_ENABLE_LUT

/// y := A x for CSR (row_ptr, col_idx, values), accumulated in T.
template <typename T>
void spmv(std::size_t rows, const std::uint32_t* row_ptr, const std::uint32_t* col_idx,
          const T* values, const T* x, T* y) {
  accel::with_ops<T>(
      [&](const auto& ops) { detail::spmv_impl(rows, row_ptr, col_idx, values, x, y, ops); });
}

}  // namespace kernels
}  // namespace mfla
