// Sparse matrix–vector product over CSR storage.
//
// The matvec accumulates in the working format T — this is the central
// kernel whose low-precision behavior the study measures. Like the dense
// kernels in vector_ops.hpp it is written once against a scalar-operation
// policy: the ≤16-bit formats take the bit-identical LUT fast paths from
// kernels/accel.hpp, everything else runs the exact engines.
#pragma once

#include <cstddef>
#include <cstdint>

#include "kernels/accel.hpp"

namespace mfla {
namespace kernels {

namespace detail {

template <typename T, class Ops>
void spmv_impl(std::size_t rows, const std::uint32_t* row_ptr, const std::uint32_t* col_idx,
               const T* values, const T* x, T* y, const Ops& ops) noexcept {
  for (std::size_t i = 0; i < rows; ++i) {
    T acc(0);
    for (std::uint32_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      acc = ops.add(acc, ops.mul(values[k], x[col_idx[k]]));
    }
    y[i] = acc;
  }
}

}  // namespace detail

namespace ref {

template <typename T>
void spmv(std::size_t rows, const std::uint32_t* row_ptr, const std::uint32_t* col_idx,
          const T* values, const T* x, T* y) noexcept {
  detail::spmv_impl(rows, row_ptr, col_idx, values, x, y, accel::NativeOps<T>{});
}

}  // namespace ref

/// y := A x for CSR (row_ptr, col_idx, values), accumulated in T.
template <typename T>
void spmv(std::size_t rows, const std::uint32_t* row_ptr, const std::uint32_t* col_idx,
          const T* values, const T* x, T* y) {
  accel::with_ops<T>(
      [&](const auto& ops) { detail::spmv_impl(rows, row_ptr, col_idx, values, x, y, ops); });
}

}  // namespace kernels
}  // namespace mfla
