// Sparse matrix–vector product over CSR storage.
//
// The matvec accumulates in the working format T — this is the central
// kernel whose low-precision behavior the study measures. Like the dense
// kernels in vector_ops.hpp it is written once against a scalar-operation
// policy: the ≤16-bit formats take the bit-identical LUT fast paths from
// kernels/accel.hpp, everything else runs the exact engines.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "kernels/accel.hpp"

namespace mfla {
namespace kernels {

namespace detail {

template <typename T, class Ops>
void spmv_impl(std::size_t rows, const std::uint32_t* row_ptr, const std::uint32_t* col_idx,
               const T* values, const T* x, T* y, const Ops& ops) noexcept {
  for (std::size_t i = 0; i < rows; ++i) {
    T acc(0);
    for (std::uint32_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      acc = ops.add(acc, ops.mul(values[k], x[col_idx[k]]));
    }
    y[i] = acc;
  }
}

}  // namespace detail

namespace ref {

template <typename T>
void spmv(std::size_t rows, const std::uint32_t* row_ptr, const std::uint32_t* col_idx,
          const T* values, const T* x, T* y) noexcept {
  detail::spmv_impl(rows, row_ptr, col_idx, values, x, y, accel::NativeOps<T>{});
}

}  // namespace ref

// -- 8-bit precomputed-offset fast path -------------------------------------

/// Is the offset plan meaningful for T? (8-bit formats with LUT support.)
template <typename T>
[[nodiscard]] consteval bool spmv_plan_supported() noexcept {
#if MFLA_ENABLE_LUT
  return accel::accel_kind<T>() == accel::AccelKind::lut8;
#else
  return false;
#endif
}

/// Per-nonzero LUT row offsets for an 8-bit value array: offsets[k] is
/// bits(values[k]) << 8, i.e. the base index of that operand's row in the
/// 256x256 operation tables. Computed once per matrix (sparse/csr.hpp),
/// it removes the shift/or index arithmetic on the value operand from
/// every inner-loop multiply of every matvec.
template <typename T>
[[nodiscard]] std::vector<std::uint16_t> build_spmv_plan(const T* values, std::size_t nnz) {
  static_assert(spmv_plan_supported<T>());
  std::vector<std::uint16_t> offsets(nnz);
  using Codec = ScalarCodec<T>;
  for (std::size_t k = 0; k < nnz; ++k)
    offsets[k] = static_cast<std::uint16_t>(static_cast<std::uint16_t>(Codec::to_bits(values[k]))
                                            << 8);
  return offsets;
}

#if MFLA_ENABLE_LUT

/// y := A x with the precomputed offset plan; bit-identical to the generic
/// LUT path (the accumulation runs in the bit domain over the very same
/// tables, in the very same order). Callers must check lut_enabled().
template <typename T>
void spmv_planned(std::size_t rows, const std::uint32_t* row_ptr, const std::uint32_t* col_idx,
                  const std::uint16_t* offsets, const T* x, T* y) noexcept {
  static_assert(spmv_plan_supported<T>());
  using Codec = ScalarCodec<T>;
  using Storage = typename Codec::Storage;
  const auto& lut = accel::Lut8<T>::instance();
  const Storage zero_bits = Codec::to_bits(T(0));
  for (std::size_t i = 0; i < rows; ++i) {
    Storage acc = zero_bits;
    for (std::uint32_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      const Storage prod =
          lut.mul_at(static_cast<std::size_t>(offsets[k]) |
                     static_cast<std::size_t>(Codec::to_bits(x[col_idx[k]])));
      acc = lut.add_bits(acc, prod);
    }
    y[i] = Codec::from_bits(acc);
  }
}

#endif  // MFLA_ENABLE_LUT

/// y := A x for CSR (row_ptr, col_idx, values), accumulated in T.
template <typename T>
void spmv(std::size_t rows, const std::uint32_t* row_ptr, const std::uint32_t* col_idx,
          const T* values, const T* x, T* y) {
  accel::with_ops<T>(
      [&](const auto& ops) { detail::spmv_impl(rows, row_ptr, col_idx, values, x, y, ops); });
}

}  // namespace kernels
}  // namespace mfla
