// Sparse matrix–vector product over CSR storage.
//
// The matvec accumulates in the working format T — this is the central
// kernel whose low-precision behavior the study measures. Like the dense
// kernels in vector_ops.hpp it is written once against a scalar-operation
// policy: the ≤16-bit formats take the bit-identical LUT fast paths from
// kernels/accel.hpp, everything else runs the exact engines.
//
// On top of the precomputed-offset plan, the SIMD tier (kernels/simd.hpp)
// adds SELL execution plans: rows are grouped into slices of eight (AVX2
// tier) or sixteen (AVX-512 tier) and their nonzeros stored
// slice-interleaved, so the slice's *independent* row chains advance in
// lock step. Each row's chain still executes in its original nonzero
// order over the very same tables, so the result is bit-identical; the
// win is instruction-level parallelism — a single row chain is bounded by
// the ~5-cycle latency of its dependent table loads, interleaved chains
// keep the load ports saturated instead.
// (A vpgatherdd formulation measures *slower* than the interleaved scalar
// chains at BOTH widths: the per-nonzero x→mul gathers chain, and a
// chained gather costs ~4x a chained scalar load — doubling the lanes to
// sixteen does not close that gap on current cores. The gather-based
// SELL-16 kernel, kernels/simd_avx512.hpp's spmv_sell16_bits, is
// therefore pinned out of production dispatch by
// kernels::kSpmvSell16Dispatch; it stays compiled and identity-tested.)
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "kernels/accel.hpp"
#include "kernels/simd.hpp"
#include "kernels/simd_avx512.hpp"

namespace mfla {
namespace kernels {

namespace detail {

template <typename T, class Ops>
void spmv_impl(std::size_t rows, const std::uint32_t* row_ptr, const std::uint32_t* col_idx,
               const T* values, const T* x, T* y, const Ops& ops) noexcept {
  for (std::size_t i = 0; i < rows; ++i) {
    T acc(0);
    for (std::uint32_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      acc = ops.add(acc, ops.mul(values[k], x[col_idx[k]]));
    }
    y[i] = acc;
  }
}

}  // namespace detail

namespace ref {

template <typename T>
void spmv(std::size_t rows, const std::uint32_t* row_ptr, const std::uint32_t* col_idx,
          const T* values, const T* x, T* y) noexcept {
  detail::spmv_impl(rows, row_ptr, col_idx, values, x, y, accel::NativeOps<T>{});
}

}  // namespace ref

// -- 8-bit precomputed-offset fast path -------------------------------------

/// Is the offset plan meaningful for T? (8-bit formats with LUT support.)
template <typename T>
[[nodiscard]] consteval bool spmv_plan_supported() noexcept {
#if MFLA_ENABLE_LUT
  return accel::accel_kind<T>() == accel::AccelKind::lut8;
#else
  return false;
#endif
}

/// Per-nonzero LUT row offsets for an 8-bit value array: offsets[k] is
/// bits(values[k]) << 8, i.e. the base index of that operand's row in the
/// 256x256 operation tables. Computed once per matrix (sparse/csr.hpp),
/// it removes the shift/or index arithmetic on the value operand from
/// every inner-loop multiply of every matvec.
template <typename T>
[[nodiscard]] std::vector<std::uint16_t> build_spmv_plan(const T* values, std::size_t nnz) {
  static_assert(spmv_plan_supported<T>());
  std::vector<std::uint16_t> offsets(nnz);
  using Codec = ScalarCodec<T>;
  for (std::size_t k = 0; k < nnz; ++k)
    offsets[k] = static_cast<std::uint16_t>(static_cast<std::uint16_t>(Codec::to_bits(values[k]))
                                            << 8);
  return offsets;
}

#if MFLA_ENABLE_LUT

// -- SELL execution kernels (SIMD tier) -------------------------------------
// The SellPlan layout and build_sell_plan builder live in kernels/simd.hpp
// (shared by the AVX2 and AVX-512 rungs); the height-8 interleaved-scalar
// kernel is below, the height-16 gather kernel is
// simd512::spmv_sell16_bits (kernels/simd_avx512.hpp).

/// Planned SpMV over the SELL-8 plan, in the encoding-bit domain: eight
/// independent row chains advance in lock step (two nonzeros deep per
/// iteration on the unpadded prefix), hiding each chain's dependent-load
/// latency behind the other seven. Every chain is the scalar chain of its
/// row, in its original order — bit-identical by construction. `x` is the
/// x encoding bytes (no padding needed: all reads are single bytes).
inline void spmv_sell_bits(const std::uint8_t* mul2d, const std::uint8_t* addt,
                           const std::uint8_t* x, const SellPlan& plan, std::size_t rows,
                           std::uint8_t* y, std::uint8_t zero_bits) noexcept {
  for (std::size_t si = 0; si < plan.slices.size(); ++si) {
    const SellPlan::Slice& s = plan.slices[si];
    const std::uint32_t* f = plan.fused.data() + s.base;
    std::uint32_t a[8];
    for (int c = 0; c < 8; ++c) a[c] = zero_bits;
    std::uint32_t minl = s.len[0];
    for (int c = 1; c < 8; ++c) minl = s.len[c] < minl ? s.len[c] : minl;
    std::uint32_t t = 0;
    for (; t + 2 <= minl; t += 2) {
      std::uint32_t p0[8], p1[8];
#pragma GCC unroll 8
      for (int c = 0; c < 8; ++c) {
        const std::uint32_t e = f[8 * t + c];
        p0[c] = mul2d[(e >> 16) | x[e & 0xffff]];
      }
#pragma GCC unroll 8
      for (int c = 0; c < 8; ++c) {
        const std::uint32_t e = f[8 * t + 8 + c];
        p1[c] = mul2d[(e >> 16) | x[e & 0xffff]];
      }
#pragma GCC unroll 8
      for (int c = 0; c < 8; ++c) a[c] = addt[(p0[c] << 8) + a[c]];
#pragma GCC unroll 8
      for (int c = 0; c < 8; ++c) a[c] = addt[(p1[c] << 8) + a[c]];
    }
    for (; t < minl; ++t) {
#pragma GCC unroll 8
      for (int c = 0; c < 8; ++c) {
        const std::uint32_t e = f[8 * t + c];
        const std::uint32_t p = mul2d[(e >> 16) | x[e & 0xffff]];
        a[c] = addt[(p << 8) + a[c]];
      }
    }
    for (; t < s.maxl; ++t) {
#pragma GCC unroll 8
      for (int c = 0; c < 8; ++c) {
        const std::uint32_t e = f[8 * t + c];
        const std::uint32_t p = mul2d[(e >> 16) | x[e & 0xffff]];
        const std::uint32_t nx = addt[(p << 8) + a[c]];
        a[c] = t < s.len[c] ? nx : a[c];
      }
    }
    const std::size_t r0 = si * 8;
    for (std::size_t c = 0; c < 8 && r0 + c < rows; ++c)
      y[r0 + c] = static_cast<std::uint8_t>(a[c]);
  }
}

/// y := A x with the precomputed offset plan; bit-identical to the generic
/// LUT path (the accumulation runs in the bit domain over the very same
/// tables, in the very same order). Callers must check lut_enabled().
/// When a SIMD rung is active and a matching valid SELL plan is supplied,
/// the corresponding slice kernel runs instead of the row-at-a-time loop.
/// The AVX-512 SELL-16 gather branch exists but is pinned off by
/// kSpmvSell16Dispatch (measured slower than SELL-8 — see the header
/// comment), so production dispatch goes straight to the height-8
/// interleaved-scalar kernel at every vector rung.
template <typename T>
void spmv_planned(std::size_t rows, const std::uint32_t* row_ptr, const std::uint32_t* col_idx,
                  const std::uint16_t* offsets, const T* x, T* y,
                  const SellPlan* sell = nullptr, const SellPlan* sell16 = nullptr) noexcept {
  static_assert(spmv_plan_supported<T>());
  using Codec = ScalarCodec<T>;
  using Storage = typename Codec::Storage;
  const auto& lut = accel::Lut8<T>::instance();
  const Storage zero_bits = Codec::to_bits(T(0));
#if MFLA_SIMD_AVX512_COMPILED
  if (kSpmvSell16Dispatch && sell16 != nullptr && sell16->valid && simd_avx512_active()) {
    // The SELL-16 kernel gathers x bytes as 32-bit words, so it reads past
    // the last entry: stage x into the padded thread-local scratch.
    auto& xpad = detail::simd_scratch(0);
    const std::size_t need = std::size_t{sell16->cols} + simd512::kGatherSlack;
    if (xpad.size() < need) xpad.resize(need);
    if (sell16->cols != 0) std::memcpy(xpad.data(), detail::byte_ptr(x), sell16->cols);
    simd512::spmv_sell16_bits(lut.mul_data(), lut.add_t_data(), xpad.data(), *sell16, rows,
                              detail::byte_ptr(y), zero_bits);
    return;
  }
#endif
  if (sell != nullptr && sell->valid && simd_active()) {
    spmv_sell_bits(lut.mul_data(), lut.add_t_data(), detail::byte_ptr(x), *sell, rows,
                   detail::byte_ptr(y), zero_bits);
    return;
  }
  for (std::size_t i = 0; i < rows; ++i) {
    Storage acc = zero_bits;
    for (std::uint32_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      const Storage prod =
          lut.mul_at(static_cast<std::size_t>(offsets[k]) |
                     static_cast<std::size_t>(Codec::to_bits(x[col_idx[k]])));
      acc = lut.add_bits(acc, prod);
    }
    y[i] = Codec::from_bits(acc);
  }
}

#endif  // MFLA_ENABLE_LUT

/// y := A x for CSR (row_ptr, col_idx, values), accumulated in T.
template <typename T>
void spmv(std::size_t rows, const std::uint32_t* row_ptr, const std::uint32_t* col_idx,
          const T* values, const T* x, T* y) {
  accel::with_ops<T>(
      [&](const auto& ops) { detail::spmv_impl(rows, row_ptr, col_idx, values, x, y, ops); });
}

}  // namespace kernels
}  // namespace mfla
