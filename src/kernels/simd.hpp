// Runtime-dispatched SIMD backend: capability detection and the runtime
// switch for the vectorized 8-bit LUT kernels (kernels/simd_avx2.hpp).
//
// The SIMD paths are a third acceleration tier on top of the LUT layer
// (kernels/accel.hpp): they walk the very same 256×256 operation tables in
// the very same order as the scalar LUT kernels, so they are bit-identical
// by construction — `vpgatherdd` fetches table entries for eight lanes at
// once and `pshufb` resolves 256-entry single-row lookups in registers,
// but every lane's accumulation chain is the scalar chain.
//
// Dispatch is layered, each level falling back to the next:
//
//   compile time   MFLA_ENABLE_SIMD (CMake option, mirrors MFLA_ENABLE_LUT)
//                  && MFLA_ENABLE_LUT (the tables are the data the SIMD
//                  kernels gather from) && an x86 GCC/Clang toolchain
//                  -> MFLA_SIMD_COMPILED
//   process start  the MFLA_SIMD environment variable ("0"/"off"/"false"
//                  disables) seeds the runtime switch
//   runtime        set_simd_enabled() toggles; __builtin_cpu_supports
//                  gates on the host actually executing AVX2
//
// simd_active() folds all of it: kernels vectorize iff it returns true
// (call sites additionally require lut_enabled(), since the tables are
// owned by the LUT tier). Everything degrades to the scalar LUT kernels,
// and below those to the exact engines — slower, never different.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <type_traits>
#include <vector>

#ifndef MFLA_ENABLE_LUT
#define MFLA_ENABLE_LUT 1
#endif
#ifndef MFLA_ENABLE_SIMD
#define MFLA_ENABLE_SIMD 1
#endif

#if MFLA_ENABLE_SIMD && MFLA_ENABLE_LUT && (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define MFLA_SIMD_COMPILED 1
#else
#define MFLA_SIMD_COMPILED 0
#endif

namespace mfla {
namespace kernels {

/// Does the MFLA_SIMD environment value ask for SIMD to start disabled?
/// Exposed (rather than buried in the initializer) so tests can pin the
/// parsing contract without spawning subprocesses.
[[nodiscard]] inline bool simd_env_requests_off(const char* value) noexcept {
  if (value == nullptr) return false;
  return std::strcmp(value, "0") == 0 || std::strcmp(value, "off") == 0 ||
         std::strcmp(value, "OFF") == 0 || std::strcmp(value, "false") == 0;
}

namespace detail {
[[nodiscard]] inline std::atomic<bool>& simd_flag() noexcept {
  static std::atomic<bool> flag{!simd_env_requests_off(std::getenv("MFLA_SIMD"))};
  return flag;
}
}  // namespace detail

/// Were the SIMD kernels compiled into this build?
[[nodiscard]] constexpr bool simd_compiled() noexcept { return MFLA_SIMD_COMPILED != 0; }

/// Does the host CPU execute the compiled SIMD ISA (AVX2)? Always false
/// when the kernels are compiled out.
[[nodiscard]] inline bool simd_supported() noexcept {
#if MFLA_SIMD_COMPILED
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

/// The runtime switch (independent of CPU support; defaults to on unless
/// the MFLA_SIMD environment variable disabled it).
[[nodiscard]] inline bool simd_enabled() noexcept {
  return detail::simd_flag().load(std::memory_order_relaxed);
}

/// Toggle the SIMD fast paths at runtime; returns the previous setting.
/// Turning them on only takes effect where simd_supported() holds.
inline bool set_simd_enabled(bool on) noexcept {
  return detail::simd_flag().exchange(on, std::memory_order_relaxed);
}

/// Will the dispatching kernels actually vectorize? (Compiled in, host
/// executes AVX2, runtime switch on. Call sites combine this with
/// lut_enabled() — the SIMD kernels gather from the LUT tier's tables.)
[[nodiscard]] inline bool simd_active() noexcept {
  return simd_compiled() && simd_enabled() && simd_supported();
}

/// Capability report, for diagnostics and the dispatch tests.
struct SimdCaps {
  bool compiled;    ///< built with MFLA_ENABLE_SIMD on an x86 toolchain
  bool avx2;        ///< host CPU executes AVX2
  bool enabled;     ///< runtime switch (MFLA_SIMD env / set_simd_enabled)
  bool active;      ///< compiled && avx2 && enabled
  const char* isa;  ///< "avx2" when active, "scalar" otherwise
};

[[nodiscard]] inline SimdCaps simd_caps() noexcept {
  SimdCaps caps;
  caps.compiled = simd_compiled();
  caps.avx2 = simd_supported();
  caps.enabled = simd_enabled();
  caps.active = simd_active();
  caps.isa = caps.active ? "avx2" : "scalar";
  return caps;
}

namespace detail {

/// Byte view of an 8-bit scalar array: for the lut8 formats the codec
/// Storage byte *is* the object representation, so the SIMD kernels can
/// address encodings directly.
template <typename T>
[[nodiscard]] inline const std::uint8_t* byte_ptr(const T* p) noexcept {
  static_assert(sizeof(T) == 1 && std::is_trivially_copyable_v<T>);
  return reinterpret_cast<const std::uint8_t*>(p);
}
template <typename T>
[[nodiscard]] inline std::uint8_t* byte_ptr(T* p) noexcept {
  static_assert(sizeof(T) == 1 && std::is_trivially_copyable_v<T>);
  return reinterpret_cast<std::uint8_t*>(p);
}

/// Grow-only thread-local byte scratch for the SIMD kernels' operand
/// staging (slot 0: SpMV's padded x copy, slot 1: SpMM's interleaved x
/// block). Thread-local keeps the experiment engine's pool threads
/// independent; grow-only keeps the steady-state hot loops
/// allocation-free once warmed up.
[[nodiscard]] inline std::vector<std::uint8_t>& simd_scratch(int slot) {
  static thread_local std::vector<std::uint8_t> bufs[2];
  return bufs[slot];
}

}  // namespace detail

}  // namespace kernels
}  // namespace mfla
