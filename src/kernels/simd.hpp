// Runtime-dispatched SIMD backend: capability detection and the runtime
// ISA ladder for the vectorized 8-bit LUT kernels (kernels/simd_avx2.hpp,
// kernels/simd_avx512.hpp).
//
// The SIMD paths are a third acceleration tier on top of the LUT layer
// (kernels/accel.hpp): they walk the very same 256×256 operation tables in
// the very same order as the scalar LUT kernels, so they are bit-identical
// by construction — `vpgatherdd` fetches table entries for eight (AVX2) or
// sixteen (AVX-512) lanes at once, `pshufb`/`vpermi2b` resolve 256-entry
// single-row lookups in registers, but every lane's accumulation chain is
// the scalar chain.
//
// Dispatch is an ISA ladder, each rung falling back to the next:
//
//   compile time   MFLA_ENABLE_SIMD (CMake option, mirrors MFLA_ENABLE_LUT)
//                  && MFLA_ENABLE_LUT (the tables are the data the SIMD
//                  kernels gather from) && an x86 GCC/Clang toolchain
//                  -> MFLA_SIMD_COMPILED (the AVX2 rung); additionally
//                  MFLA_ENABLE_AVX512 -> MFLA_SIMD_AVX512_COMPILED
//   process start  the MFLA_SIMD environment variable seeds the runtime
//                  level: "0"/"off"/"false"/"scalar" pin the scalar LUT
//                  kernels, "avx2" caps the ladder at AVX2, "avx512"
//                  allows the AVX-512 rung, anything else ("1", "auto",
//                  unset) means best-available
//   runtime        set_simd_level()/set_simd_enabled() move the cap;
//                  the host ISA probe (__builtin_cpu_supports, cached
//                  once per process) gates what actually executes
//
// Kernels pick the best rung their gate admits, per function: the
// gather kernels need AVX-512F/BW, the in-register decode-table kernels
// additionally need VBMI — a host with F/BW but no VBMI runs the former
// at the avx512 rung and the latter at the avx2 rung. Everything degrades
// to the scalar LUT kernels, and below those to the exact engines —
// slower, never different.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <type_traits>
#include <vector>

#ifndef MFLA_ENABLE_LUT
#define MFLA_ENABLE_LUT 1
#endif
#ifndef MFLA_ENABLE_SIMD
#define MFLA_ENABLE_SIMD 1
#endif
#ifndef MFLA_ENABLE_AVX512
#define MFLA_ENABLE_AVX512 1
#endif

#if MFLA_ENABLE_SIMD && MFLA_ENABLE_LUT && (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define MFLA_SIMD_COMPILED 1
#else
#define MFLA_SIMD_COMPILED 0
#endif

#if MFLA_SIMD_COMPILED && MFLA_ENABLE_AVX512
#define MFLA_SIMD_AVX512_COMPILED 1
#else
#define MFLA_SIMD_AVX512_COMPILED 0
#endif

namespace mfla {
namespace kernels {

/// Runtime cap on the ISA ladder. Each kernel dispatches to the highest
/// rung that is (a) at or below the cap, (b) compiled in, and (c) executed
/// by the host CPU — so `avx512` on an AVX2-only host runs the AVX2
/// kernels, and `auto_` is simply "no cap".
enum class SimdLevel : int {
  scalar = 0,  ///< pin the scalar LUT kernels (vector tiers off)
  avx2 = 1,    ///< allow the AVX2 rung only
  avx512 = 2,  ///< allow up to the AVX-512 rung
  auto_ = 3,   ///< best available (the default)
};

/// Does the MFLA_SIMD environment value ask for SIMD to start disabled?
/// Exposed (rather than buried in the initializer) so tests can pin the
/// parsing contract without spawning subprocesses.
[[nodiscard]] inline bool simd_env_requests_off(const char* value) noexcept {
  if (value == nullptr) return false;
  return std::strcmp(value, "0") == 0 || std::strcmp(value, "off") == 0 ||
         std::strcmp(value, "OFF") == 0 || std::strcmp(value, "false") == 0;
}

/// Parse the MFLA_SIMD environment value into a ladder cap. The off
/// tokens and "scalar" pin scalar; "avx2"/"avx512" cap at that rung;
/// everything else (including unset, "1", "auto", "on") is best-available.
[[nodiscard]] inline SimdLevel simd_env_level(const char* value) noexcept {
  if (value == nullptr) return SimdLevel::auto_;
  if (simd_env_requests_off(value) || std::strcmp(value, "scalar") == 0)
    return SimdLevel::scalar;
  if (std::strcmp(value, "avx2") == 0) return SimdLevel::avx2;
  if (std::strcmp(value, "avx512") == 0) return SimdLevel::avx512;
  return SimdLevel::auto_;
}

namespace detail {

[[nodiscard]] inline std::atomic<int>& simd_level_flag() noexcept {
  static std::atomic<int> flag{
      static_cast<int>(simd_env_level(std::getenv("MFLA_SIMD")))};
  return flag;
}

/// Host ISA flags, probed once per process (a __builtin_cpu_supports call
/// is a cpuid-backed table walk — cheap, but the dispatch predicates sit
/// on kernel hot paths and the answers cannot change while we run).
struct HostIsa {
  bool avx2 = false;
  bool avx512f = false;
  bool avx512bw = false;
  bool avx512vbmi = false;
};

[[nodiscard]] inline const HostIsa& host_isa() noexcept {
  static const HostIsa probed = [] {
    HostIsa h;
#if MFLA_SIMD_COMPILED
    h.avx2 = __builtin_cpu_supports("avx2") != 0;
#endif
#if MFLA_SIMD_AVX512_COMPILED
    h.avx512f = __builtin_cpu_supports("avx512f") != 0;
    h.avx512bw = __builtin_cpu_supports("avx512bw") != 0;
    h.avx512vbmi = __builtin_cpu_supports("avx512vbmi") != 0;
#endif
    return h;
  }();
  return probed;
}

}  // namespace detail

/// Were the SIMD kernels compiled into this build?
[[nodiscard]] constexpr bool simd_compiled() noexcept { return MFLA_SIMD_COMPILED != 0; }

/// Was the AVX-512 rung compiled into this build? (MFLA_ENABLE_AVX512 on
/// top of everything simd_compiled() requires.)
[[nodiscard]] constexpr bool simd_avx512_compiled() noexcept {
  return MFLA_SIMD_AVX512_COMPILED != 0;
}

/// Does the host CPU execute the base SIMD ISA (AVX2)? Always false when
/// the kernels are compiled out.
[[nodiscard]] inline bool simd_supported() noexcept {
  return simd_compiled() && detail::host_isa().avx2;
}

/// Does the host CPU execute the AVX-512 gather kernels (F + BW)? Always
/// false when the AVX-512 rung is compiled out.
[[nodiscard]] inline bool simd_avx512_supported() noexcept {
  return simd_avx512_compiled() && detail::host_isa().avx512f && detail::host_isa().avx512bw;
}

/// Does the host CPU additionally execute the in-register `vpermi2b`
/// decode-table kernels (VBMI)?
[[nodiscard]] inline bool simd_vbmi_supported() noexcept {
  return simd_avx512_supported() && detail::host_isa().avx512vbmi;
}

/// The runtime ladder cap (independent of CPU support; defaults to
/// best-available unless the MFLA_SIMD environment variable said
/// otherwise).
[[nodiscard]] inline SimdLevel simd_level() noexcept {
  return static_cast<SimdLevel>(detail::simd_level_flag().load(std::memory_order_relaxed));
}

/// Move the ladder cap at runtime; returns the previous cap. Raising it
/// only takes effect where the host/compile gates hold.
inline SimdLevel set_simd_level(SimdLevel level) noexcept {
  return static_cast<SimdLevel>(detail::simd_level_flag().exchange(
      static_cast<int>(level), std::memory_order_relaxed));
}

/// Is any vector rung allowed by the runtime cap? (The boolean view of the
/// ladder, kept for callers that only care about on/off.)
[[nodiscard]] inline bool simd_enabled() noexcept {
  return simd_level() != SimdLevel::scalar;
}

/// Boolean toggle over the ladder: off pins scalar, on restores
/// best-available. Returns whether any vector rung was previously allowed.
inline bool set_simd_enabled(bool on) noexcept {
  return set_simd_level(on ? SimdLevel::auto_ : SimdLevel::scalar) != SimdLevel::scalar;
}

/// Will the dispatching kernels vectorize at all? (Some rung compiled in,
/// host executes AVX2, cap above scalar. Call sites combine this with
/// lut_enabled() — the SIMD kernels gather from the LUT tier's tables.)
[[nodiscard]] inline bool simd_active() noexcept {
  return simd_compiled() && simd_supported() &&
         static_cast<int>(simd_level()) >= static_cast<int>(SimdLevel::avx2);
}

/// Will the AVX-512 gather kernels (F/BW: 16-lane vpgatherdd, SELL-16
/// SpMV, 16-lane spmm/dot_block) dispatch?
[[nodiscard]] inline bool simd_avx512_active() noexcept {
  return simd_avx512_supported() && simd_supported() &&
         static_cast<int>(simd_level()) >= static_cast<int>(SimdLevel::avx512);
}

/// Will the VBMI decode-table kernels (in-register vpermi2b 256-entry
/// lookups) dispatch? Independent of the gather gate per function: a host
/// with F/BW but no VBMI still runs the gather kernels.
[[nodiscard]] inline bool simd_vbmi_active() noexcept {
  return simd_vbmi_supported() && simd_supported() &&
         static_cast<int>(simd_level()) >= static_cast<int>(SimdLevel::avx512);
}

/// Capability report, for diagnostics and the dispatch tests. The
/// compiled/host fields come from the one-time probe; only the runtime
/// cap varies between calls.
struct SimdCaps {
  bool compiled;         ///< built with MFLA_ENABLE_SIMD on an x86 toolchain
  bool avx512_compiled;  ///< AVX-512 rung also built (MFLA_ENABLE_AVX512)
  bool avx2;             ///< host CPU executes AVX2
  bool avx512f;          ///< host CPU executes AVX-512F
  bool avx512bw;         ///< host CPU executes AVX-512BW
  bool avx512vbmi;       ///< host CPU executes AVX-512VBMI
  bool enabled;          ///< runtime cap above scalar
  SimdLevel level;       ///< the runtime cap itself
  bool active;           ///< some vector rung dispatches
  bool avx512_active;    ///< the AVX-512 gather rung dispatches
  bool vbmi_active;      ///< the VBMI decode rung dispatches
  const char* isa;       ///< best dispatching rung: "avx512", "avx2", "scalar"
};

[[nodiscard]] inline SimdCaps simd_caps() noexcept {
  const detail::HostIsa& host = detail::host_isa();
  SimdCaps caps;
  caps.compiled = simd_compiled();
  caps.avx512_compiled = simd_avx512_compiled();
  caps.avx2 = host.avx2;
  caps.avx512f = host.avx512f;
  caps.avx512bw = host.avx512bw;
  caps.avx512vbmi = host.avx512vbmi;
  caps.enabled = simd_enabled();
  caps.level = simd_level();
  caps.active = simd_active();
  caps.avx512_active = simd_avx512_active();
  caps.vbmi_active = simd_vbmi_active();
  caps.isa = caps.avx512_active ? "avx512" : (caps.active ? "avx2" : "scalar");
  return caps;
}

// -- SELL-C execution plans (shared by the vector SpMV rungs) ---------------

/// Sliced-ELL layout over the offset plan: rows are grouped into slices of
/// `height` consecutive rows, padded to the longest row in the slice, with
/// one fused word (offset << 16) | col per (padded) nonzero stored
/// lane-interleaved (fused[base + height * t + c] is row c's t-th entry).
/// Pad entries replicate the row's last real nonzero so every load stays
/// in range; their results are discarded by the t < len guard in the
/// kernels. Height 8 feeds the interleaved-scalar AVX2-tier kernel
/// (kernels/spmv.hpp), height 16 the AVX-512 gather kernel
/// (kernels/simd_avx512.hpp). Built once per matrix alongside the offset
/// plan (sparse/csr.hpp) and invalidated with it.
struct SellPlan {
  static constexpr std::uint32_t kMaxHeight = 16;
  struct Slice {
    std::uint32_t base = 0;  ///< first fused word of the slice
    std::uint32_t maxl = 0;  ///< longest row in the slice
    std::uint32_t len[kMaxHeight] = {};  ///< row lengths (0 past the last row)
  };
  std::uint32_t height = 8;  ///< rows per slice (8 or 16)
  std::uint32_t cols = 0;    ///< x length the fused col indices address
  std::vector<Slice> slices;
  std::vector<std::uint32_t> fused;
  bool valid = false;

  void clear() noexcept {
    slices.clear();
    fused.clear();
    valid = false;
  }
};

/// Production-dispatch switch for the SELL-16 gather SpMV
/// (simd512::spmv_sell16_bits). Measured on AVX-512 hardware
/// (bench_kernel_accel, 512-row Laplacians): the 16-lane gather
/// formulation loses to the SELL-8 interleaved-scalar kernel by
/// ~1.4-1.8x (Posit8 7.8us vs 4.3us, Takum8 6.2us vs 4.5us) — the
/// per-nonzero x->mul gathers chain, and a chained gather still costs
/// ~4x a chained scalar load even at sixteen lanes. The dispatcher is
/// therefore pinned to the SELL-8 rung; the kernel, its plan builder and
/// its exhaustive identity tests stay (flip this to re-evaluate on a
/// core with cheaper chained gathers). See docs/PERFORMANCE.md.
inline constexpr bool kSpmvSell16Dispatch = false;

/// Build a SELL plan of the given slice height, or an invalid one when the
/// layout cannot help: columns beyond 16 bits (they must fit the fused
/// word), or row lengths so skewed that slice padding would blow the plan
/// past ~4x the nonzero count (the planned scalar loop is the fallback,
/// slower never wrong).
[[nodiscard]] inline SellPlan build_sell_plan(std::size_t rows, std::size_t cols,
                                              const std::uint32_t* row_ptr,
                                              const std::uint32_t* col_idx,
                                              const std::uint16_t* offsets,
                                              std::size_t height = 8) {
  SellPlan p;
  p.height = static_cast<std::uint32_t>(height);
  p.cols = static_cast<std::uint32_t>(cols);
  if (rows == 0 || cols > 65536 || height == 0 || height > SellPlan::kMaxHeight) return p;
  const std::size_t h = height;
  std::size_t padded = 0;
  for (std::size_t r = 0; r < rows; r += h) {
    std::uint32_t maxl = 0;
    for (std::size_t c = 0; c < h && r + c < rows; ++c) {
      const std::uint32_t l = row_ptr[r + c + 1] - row_ptr[r + c];
      maxl = l > maxl ? l : maxl;
    }
    padded += h * maxl;
  }
  if (padded > 4 * std::size_t{row_ptr[rows]} + 64) return p;
  p.slices.reserve((rows + h - 1) / h);
  p.fused.resize(padded);
  std::size_t base = 0;
  for (std::size_t r = 0; r < rows; r += h) {
    SellPlan::Slice s;
    s.base = static_cast<std::uint32_t>(base);
    for (std::size_t c = 0; c < h && r + c < rows; ++c) {
      s.len[c] = row_ptr[r + c + 1] - row_ptr[r + c];
      s.maxl = s.len[c] > s.maxl ? s.len[c] : s.maxl;
    }
    for (std::size_t c = 0; c < h; ++c) {
      for (std::uint32_t t = 0; t < s.maxl; ++t) {
        std::uint32_t word = 0;
        if (s.len[c] != 0) {
          const std::uint32_t k = row_ptr[r + c] + (t < s.len[c] ? t : s.len[c] - 1);
          word = (static_cast<std::uint32_t>(offsets[k]) << 16) | col_idx[k];
        }
        p.fused[base + h * t + c] = word;
      }
    }
    base += h * s.maxl;
    p.slices.push_back(s);
  }
  p.valid = true;
  return p;
}

namespace detail {

/// Byte view of an 8-bit scalar array: for the lut8 formats the codec
/// Storage byte *is* the object representation, so the SIMD kernels can
/// address encodings directly.
template <typename T>
[[nodiscard]] inline const std::uint8_t* byte_ptr(const T* p) noexcept {
  static_assert(sizeof(T) == 1 && std::is_trivially_copyable_v<T>);
  return reinterpret_cast<const std::uint8_t*>(p);
}
template <typename T>
[[nodiscard]] inline std::uint8_t* byte_ptr(T* p) noexcept {
  static_assert(sizeof(T) == 1 && std::is_trivially_copyable_v<T>);
  return reinterpret_cast<std::uint8_t*>(p);
}

/// Grow-only thread-local byte scratch for the SIMD kernels' operand
/// staging (slot 0: SpMV's padded x copy, slot 1: SpMM's interleaved x
/// block). Thread-local keeps the experiment engine's pool threads
/// independent; grow-only keeps the steady-state hot loops
/// allocation-free once warmed up.
[[nodiscard]] inline std::vector<std::uint8_t>& simd_scratch(int slot) {
  static thread_local std::vector<std::uint8_t> bufs[2];
  return bufs[slot];
}

}  // namespace detail

}  // namespace kernels
}  // namespace mfla
