// BLAS-style kernels, templated over the scalar type.
//
// These are the kernels whose low-precision behavior the paper studies:
// accumulation happens in the working format T (no hidden wide
// accumulators), so overflow/rounding effects are exactly those of the
// format under evaluation.
//
// Every kernel body is written once against a scalar-operation policy and
// dispatched through kernels::accel::with_ops: native floats and the
// 32/64-bit emulated formats run the plain loops, while the ≤16-bit
// formats take the bit-identical LUT fast paths (see kernels/accel.hpp).
// On top of that, the 8-bit formats dispatch to the AVX2 kernels
// (kernels/simd_avx2.hpp) when the host supports them — same tables, same
// operation order, vectorized fetches. kernels::ref:: always runs the
// exact engines regardless of the LUT/SIMD switches — it is the reference
// the fast paths are tested and benchmarked against.
//
// Multi-vector primitives (dot_block, axpy_block; kernels::spmm lives in
// kernels/spmm.hpp) are defined as *exactly* k applications of the
// single-vector kernel — the bit-identity contract every backend must
// honor. Where the k chains are independent (dot_block, spmm) the SIMD
// tier packs them into gather lanes and one traversal amortizes over all
// of them; where fusing would chain them (axpy_block) the sequential
// form is the fast one and the primitive is plain sugar.
#pragma once

#include <cmath>
#include <cstddef>

#include "dense/matrix.hpp"
#include "kernels/accel.hpp"
#include "kernels/simd.hpp"
#include "kernels/simd_avx2.hpp"
#include "kernels/simd_avx512.hpp"

namespace mfla {
namespace kernels {

namespace detail {

template <typename T, class Ops>
[[nodiscard]] T dot_impl(std::size_t n, const T* x, const T* y, const Ops& ops) noexcept {
  T acc(0);
  for (std::size_t i = 0; i < n; ++i) acc = ops.add(acc, ops.mul(x[i], y[i]));
  return acc;
}

template <typename T, class Ops>
void axpy_impl(std::size_t n, T alpha, const T* x, T* y, const Ops& ops) noexcept {
  for (std::size_t i = 0; i < n; ++i) y[i] = ops.add(y[i], ops.mul(alpha, x[i]));
}

template <typename T, class Ops>
void scal_impl(std::size_t n, T alpha, T* x, const Ops& ops) noexcept {
  for (std::size_t i = 0; i < n; ++i) x[i] = ops.mul(x[i], alpha);
}

/// Blocked dot: out[c] = dot(n, x_c, y) for k column vectors x_c stored
/// column-major with leading dimension ldx. Defined as exactly k
/// applications of dot_impl — the contract the SIMD lane-packed version
/// must (and does) reproduce bit for bit.
template <typename T, class Ops>
void dot_block_impl(std::size_t n, std::size_t k, const T* x, std::size_t ldx, const T* y,
                    T* out, const Ops& ops) noexcept {
  for (std::size_t c = 0; c < k; ++c) out[c] = dot_impl(n, x + c * ldx, y, ops);
}

/// Blocked axpy: y := (((y + alpha_0 x_0) + alpha_1 x_1) + ...) — exactly
/// k sequential applications of axpy_impl into the same y, in that order.
template <typename T, class Ops>
void axpy_block_impl(std::size_t n, std::size_t k, const T* alphas, const T* x,
                     std::size_t ldx, T* y, const Ops& ops) noexcept {
  for (std::size_t c = 0; c < k; ++c) axpy_impl(n, alphas[c], x + c * ldx, y, ops);
}

template <typename T, class Ops>
void gemv_impl(const DenseMatrix<T>& a, const T* x, T* y, const Ops& ops) noexcept {
  const std::size_t m = a.rows(), n = a.cols();
  for (std::size_t i = 0; i < m; ++i) y[i] = T(0);
  for (std::size_t j = 0; j < n; ++j) {
    const T xj = x[j];
    const T* col = a.col(j);
    for (std::size_t i = 0; i < m; ++i) y[i] = ops.add(y[i], ops.mul(col[i], xj));
  }
}

template <typename T, class Ops>
void gemv_t_impl(const DenseMatrix<T>& a, const T* x, T* y, const Ops& ops) noexcept {
  const std::size_t m = a.rows(), n = a.cols();
  for (std::size_t j = 0; j < n; ++j) y[j] = dot_impl(m, a.col(j), x, ops);
}

template <typename T, class Ops>
[[nodiscard]] DenseMatrix<T> matmul_impl(const DenseMatrix<T>& a, const DenseMatrix<T>& b,
                                         const Ops& ops) {
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  DenseMatrix<T> c(m, n);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t l = 0; l < k; ++l) {
      const T blj = b(l, j);
      const T* acol = a.col(l);
      T* ccol = c.col(j);
      for (std::size_t i = 0; i < m; ++i) ccol[i] = ops.add(ccol[i], ops.mul(acol[i], blj));
    }
  }
  return c;
}

template <typename T, class Ops>
[[nodiscard]] DenseMatrix<T> matmul_tn_impl(const DenseMatrix<T>& a, const DenseMatrix<T>& b,
                                            const Ops& ops) {
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  DenseMatrix<T> c(m, n);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < m; ++i) c(i, j) = dot_impl(k, a.col(i), b.col(j), ops);
  return c;
}

/// Core of update_basis: reads w(l, j) for l < wrows, j < keep (so callers
/// can pass a taller matrix and use only its leading block, without the
/// top_left copy), accumulates V * W into `scratch` and copies back.
/// `scratch` is resized/zeroed here; recycling it across restarts makes the
/// basis update allocation-free at steady state.
template <typename T, class Ops>
void update_basis_impl(DenseMatrix<T>& v, const DenseMatrix<T>& w, std::size_t wrows,
                       std::size_t keep, std::vector<T>& scratch, const Ops& ops) {
  const std::size_t n = v.rows();
  scratch.assign(n * keep, T(0));
  for (std::size_t j = 0; j < keep; ++j) {
    T* out = scratch.data() + j * n;
    for (std::size_t l = 0; l < wrows; ++l) {
      const T wlj = w(l, j);
      const T* vcol = v.col(l);
      for (std::size_t i = 0; i < n; ++i) out[i] = ops.add(out[i], ops.mul(vcol[i], wlj));
    }
  }
  for (std::size_t j = 0; j < keep; ++j) {
    T* dst = v.col(j);
    const T* src = scratch.data() + j * n;
    for (std::size_t i = 0; i < n; ++i) dst[i] = src[i];
  }
}

}  // namespace detail

// -- Reference path: always the exact engines ------------------------------

namespace ref {

template <typename T>
[[nodiscard]] T dot(std::size_t n, const T* x, const T* y) noexcept {
  return detail::dot_impl(n, x, y, accel::NativeOps<T>{});
}

template <typename T>
[[nodiscard]] T nrm2(std::size_t n, const T* x) noexcept {
  // Unqualified call: resolves to the mfla:: overload for native floats and
  // via ADL for the emulated formats.
  return sqrt(dot(n, x, x));
}

template <typename T>
void axpy(std::size_t n, T alpha, const T* x, T* y) noexcept {
  detail::axpy_impl(n, alpha, x, y, accel::NativeOps<T>{});
}

template <typename T>
void scal(std::size_t n, T alpha, T* x) noexcept {
  detail::scal_impl(n, alpha, x, accel::NativeOps<T>{});
}

template <typename T>
void dot_block(std::size_t n, std::size_t k, const T* x, std::size_t ldx, const T* y,
               T* out) noexcept {
  detail::dot_block_impl(n, k, x, ldx, y, out, accel::NativeOps<T>{});
}

template <typename T>
void axpy_block(std::size_t n, std::size_t k, const T* alphas, const T* x, std::size_t ldx,
                T* y) noexcept {
  detail::axpy_block_impl(n, k, alphas, x, ldx, y, accel::NativeOps<T>{});
}

}  // namespace ref

// -- Dispatching kernels ----------------------------------------------------
// The lut8 formats additionally check the SIMD tier: compiled in, host has
// AVX2, both runtime switches on. Everything else (and every fallback)
// goes through with_ops.

namespace detail {
#if MFLA_SIMD_COMPILED
template <typename T>
[[nodiscard]] inline bool use_simd_lut8() noexcept {
  if constexpr (accel::accel_kind<T>() == accel::AccelKind::lut8) {
    return lut_enabled() && simd_active();
  } else {
    return false;
  }
}
#endif
}  // namespace detail

template <typename T>
[[nodiscard]] T dot(std::size_t n, const T* x, const T* y) {
#if MFLA_SIMD_COMPILED
  if constexpr (accel::accel_kind<T>() == accel::AccelKind::lut8) {
    if (detail::use_simd_lut8<T>()) {
      using Codec = ScalarCodec<T>;
      const auto& lut = accel::Lut8<T>::instance();
#if MFLA_SIMD_AVX512_COMPILED
      if (simd_avx512_active()) {
        return Codec::from_bits(simd512::dot_bits(lut.mul_data(), lut.add_t_data(),
                                                  detail::byte_ptr(x), detail::byte_ptr(y), n,
                                                  Codec::to_bits(T(0))));
      }
#endif
      return Codec::from_bits(simd::dot_bits(lut.mul_data(), lut.add_t_data(),
                                             detail::byte_ptr(x), detail::byte_ptr(y), n,
                                             Codec::to_bits(T(0))));
    }
  }
#endif
  return accel::with_ops<T>([&](const auto& ops) { return detail::dot_impl(n, x, y, ops); });
}

template <typename T>
[[nodiscard]] T nrm2(std::size_t n, const T* x) {
  return sqrt(dot(n, x, x));
}

// axpy and scal do NOT take an AVX2 branch: their scalar LUT loops have
// independent per-element lookups (two loads / one load per element) and
// run port-bound at ~2 loads per cycle already, so the pshufb/gather
// forms (simd::axpy_bits, simd::scal_bits — kept, and covered by the
// identity tests) measure at or below the scalar loops. The VBMI rung
// changes the arithmetic for scal: the whole 256-entry mul row lives in
// registers and `vpermi2b` maps 64 elements per step with zero table
// traffic, which does beat the load-port bound. For axpy the add stage
// is still one gather per element and measures below the scalar loop
// (docs/PERFORMANCE.md), so axpy stays scalar and simd512::axpy_bits is
// kept under the identity tests only.
template <typename T>
void axpy(std::size_t n, T alpha, const T* x, T* y) {
  accel::with_ops<T>([&](const auto& ops) { detail::axpy_impl(n, alpha, x, y, ops); });
}

template <typename T>
void scal(std::size_t n, T alpha, T* x) {
#if MFLA_SIMD_AVX512_COMPILED
  if constexpr (accel::accel_kind<T>() == accel::AccelKind::lut8) {
    if (detail::use_simd_lut8<T>() && simd_vbmi_active()) {
      using Codec = ScalarCodec<T>;
      const auto& lut = accel::Lut8<T>::instance();
      simd512::scal_bits(lut.mul_t_row(Codec::to_bits(alpha)), detail::byte_ptr(x), n);
      return;
    }
  }
#endif
  accel::with_ops<T>([&](const auto& ops) { detail::scal_impl(n, alpha, x, ops); });
}

/// out[c] = dot(n, x + c * ldx, y) for c < k. Bit-identical to k separate
/// dot() calls; the SIMD paths pack independent accumulation chains into
/// gather lanes — thirty-two then sixteen at the AVX-512 rung, sixteen
/// then eight at the AVX2 rung (always two gather chains in flight at the
/// widest width) — amortizing one traversal of y over them.
template <typename T>
void dot_block(std::size_t n, std::size_t k, const T* x, std::size_t ldx, const T* y, T* out) {
#if MFLA_SIMD_COMPILED
  if constexpr (accel::accel_kind<T>() == accel::AccelKind::lut8) {
    if (detail::use_simd_lut8<T>()) {
      using Codec = ScalarCodec<T>;
      const auto& lut = accel::Lut8<T>::instance();
      const auto zero = Codec::to_bits(T(0));
      std::uint8_t lane[32];
      std::size_t c0 = 0;
#if MFLA_SIMD_AVX512_COMPILED
      if (simd_avx512_active()) {
        for (; c0 + 32 <= k; c0 += 32) {
          simd512::dot_block32_bits(lut.mul_data(), lut.add_t_data(),
                                    detail::byte_ptr(x + c0 * ldx), ldx, detail::byte_ptr(y),
                                    n, zero, lane);
          for (std::size_t c = 0; c < 32; ++c) out[c0 + c] = Codec::from_bits(lane[c]);
        }
        if (c0 + 16 <= k) {
          simd512::dot_block16_bits(lut.mul_data(), lut.add_t_data(),
                                    detail::byte_ptr(x + c0 * ldx), ldx, 16,
                                    detail::byte_ptr(y), n, zero, lane);
          for (std::size_t c = 0; c < 16; ++c) out[c0 + c] = Codec::from_bits(lane[c]);
          c0 += 16;
        }
      }
#endif
      for (; c0 + 16 <= k; c0 += 16) {
        simd::dot_block16_bits(lut.mul_data(), lut.add_t_data(),
                               detail::byte_ptr(x + c0 * ldx), ldx, detail::byte_ptr(y), n,
                               zero, lane);
        for (std::size_t c = 0; c < 16; ++c) out[c0 + c] = Codec::from_bits(lane[c]);
      }
      if (c0 + 8 <= k) {
        simd::dot_block8_bits(lut.mul_data(), lut.add_t_data(),
                              detail::byte_ptr(x + c0 * ldx), ldx, 8, detail::byte_ptr(y), n,
                              zero, lane);
        for (std::size_t c = 0; c < 8; ++c) out[c0 + c] = Codec::from_bits(lane[c]);
        c0 += 8;
      }
      // Fewer than eight columns left: the gather kernel would pay for
      // eight lanes regardless, so the remainder runs the scalar LUT dots
      // (bit-identical by the with_ops dispatch).
      if (c0 < k) {
        accel::with_ops<T>([&](const auto& ops) {
          detail::dot_block_impl(n, k - c0, x + c0 * ldx, ldx, y, out + c0, ops);
        });
      }
      return;
    }
  }
#endif
  accel::with_ops<T>(
      [&](const auto& ops) { detail::dot_block_impl(n, k, x, ldx, y, out, ops); });
}

/// y := y + alpha_0 x_0 + ... + alpha_{k-1} x_{k-1}, applied strictly in
/// that order — bit-identical to k sequential axpy() calls. Always runs
/// the sequential form: the interchanged (c, i) loop turns each element
/// into a k-deep chain of dependent table loads, while k streaming passes
/// are pure load-throughput — measured, the fused forms (scalar and
/// gather; simd::axpy_block_bits) lose to the sequential passes on every
/// k, so the primitive exists for API symmetry and fuses nothing.
template <typename T>
void axpy_block(std::size_t n, std::size_t k, const T* alphas, const T* x, std::size_t ldx,
                T* y) {
  for (std::size_t c = 0; c < k; ++c) axpy(n, alphas[c], x + c * ldx, y);
}

/// y := A x (dense, column-major).
template <typename T>
void gemv(const DenseMatrix<T>& a, const T* x, T* y) {
  accel::with_ops<T>([&](const auto& ops) { detail::gemv_impl(a, x, y, ops); });
}

/// y := A^T x (dense, column-major).
template <typename T>
void gemv_t(const DenseMatrix<T>& a, const T* x, T* y) {
  accel::with_ops<T>([&](const auto& ops) { detail::gemv_t_impl(a, x, y, ops); });
}

/// C := A * B.
template <typename T>
[[nodiscard]] DenseMatrix<T> matmul(const DenseMatrix<T>& a, const DenseMatrix<T>& b) {
  return accel::with_ops<T>([&](const auto& ops) { return detail::matmul_impl(a, b, ops); });
}

/// C := A^T * B.
template <typename T>
[[nodiscard]] DenseMatrix<T> matmul_tn(const DenseMatrix<T>& a, const DenseMatrix<T>& b) {
  return accel::with_ops<T>([&](const auto& ops) { return detail::matmul_tn_impl(a, b, ops); });
}

/// Update the leading `keep` columns of V in place: V[:, :keep] := V * W,
/// where only W's leading wrows x keep block participates (W may be larger;
/// this avoids materializing top_left views). `scratch` is recycled across
/// calls — the steady-state path allocates nothing.
template <typename T>
void update_basis(DenseMatrix<T>& v, const DenseMatrix<T>& w, std::size_t wrows,
                  std::size_t keep, std::vector<T>& scratch) {
  accel::with_ops<T>(
      [&](const auto& ops) { detail::update_basis_impl(v, w, wrows, keep, scratch, ops); });
}

/// Convenience overload: whole W, throwaway scratch.
template <typename T>
void update_basis(DenseMatrix<T>& v, const DenseMatrix<T>& w, std::size_t keep) {
  std::vector<T> scratch;
  update_basis(v, w, w.rows(), keep, scratch);
}

/// Frobenius norm computed in double (used by tests / diagnostics only).
template <typename T>
[[nodiscard]] double frobenius_norm_double(const DenseMatrix<T>& a) {
  double acc = 0;
  for (std::size_t j = 0; j < a.cols(); ++j)
    for (std::size_t i = 0; i < a.rows(); ++i) {
      const double v = static_cast<double>(a(i, j));
      acc += v * v;
    }
  return std::sqrt(acc);
}

}  // namespace kernels
}  // namespace mfla
