// BLAS-style kernels, templated over the scalar type.
//
// These are the kernels whose low-precision behavior the paper studies:
// accumulation happens in the working format T (no hidden wide
// accumulators), so overflow/rounding effects are exactly those of the
// format under evaluation.
//
// Every kernel body is written once against a scalar-operation policy and
// dispatched through kernels::accel::with_ops: native floats and the
// 32/64-bit emulated formats run the plain loops, while the ≤16-bit
// formats take the bit-identical LUT fast paths (see kernels/accel.hpp).
// kernels::ref:: always runs the exact engines regardless of the LUT
// switch — it is the reference the fast paths are tested and benchmarked
// against.
#pragma once

#include <cmath>
#include <cstddef>

#include "dense/matrix.hpp"
#include "kernels/accel.hpp"

namespace mfla {
namespace kernels {

namespace detail {

template <typename T, class Ops>
[[nodiscard]] T dot_impl(std::size_t n, const T* x, const T* y, const Ops& ops) noexcept {
  T acc(0);
  for (std::size_t i = 0; i < n; ++i) acc = ops.add(acc, ops.mul(x[i], y[i]));
  return acc;
}

template <typename T, class Ops>
void axpy_impl(std::size_t n, T alpha, const T* x, T* y, const Ops& ops) noexcept {
  for (std::size_t i = 0; i < n; ++i) y[i] = ops.add(y[i], ops.mul(alpha, x[i]));
}

template <typename T, class Ops>
void scal_impl(std::size_t n, T alpha, T* x, const Ops& ops) noexcept {
  for (std::size_t i = 0; i < n; ++i) x[i] = ops.mul(x[i], alpha);
}

template <typename T, class Ops>
void gemv_impl(const DenseMatrix<T>& a, const T* x, T* y, const Ops& ops) noexcept {
  const std::size_t m = a.rows(), n = a.cols();
  for (std::size_t i = 0; i < m; ++i) y[i] = T(0);
  for (std::size_t j = 0; j < n; ++j) {
    const T xj = x[j];
    const T* col = a.col(j);
    for (std::size_t i = 0; i < m; ++i) y[i] = ops.add(y[i], ops.mul(col[i], xj));
  }
}

template <typename T, class Ops>
void gemv_t_impl(const DenseMatrix<T>& a, const T* x, T* y, const Ops& ops) noexcept {
  const std::size_t m = a.rows(), n = a.cols();
  for (std::size_t j = 0; j < n; ++j) y[j] = dot_impl(m, a.col(j), x, ops);
}

template <typename T, class Ops>
[[nodiscard]] DenseMatrix<T> matmul_impl(const DenseMatrix<T>& a, const DenseMatrix<T>& b,
                                         const Ops& ops) {
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  DenseMatrix<T> c(m, n);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t l = 0; l < k; ++l) {
      const T blj = b(l, j);
      const T* acol = a.col(l);
      T* ccol = c.col(j);
      for (std::size_t i = 0; i < m; ++i) ccol[i] = ops.add(ccol[i], ops.mul(acol[i], blj));
    }
  }
  return c;
}

template <typename T, class Ops>
[[nodiscard]] DenseMatrix<T> matmul_tn_impl(const DenseMatrix<T>& a, const DenseMatrix<T>& b,
                                            const Ops& ops) {
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  DenseMatrix<T> c(m, n);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < m; ++i) c(i, j) = dot_impl(k, a.col(i), b.col(j), ops);
  return c;
}

/// Core of update_basis: reads w(l, j) for l < wrows, j < keep (so callers
/// can pass a taller matrix and use only its leading block, without the
/// top_left copy), accumulates V * W into `scratch` and copies back.
/// `scratch` is resized/zeroed here; recycling it across restarts makes the
/// basis update allocation-free at steady state.
template <typename T, class Ops>
void update_basis_impl(DenseMatrix<T>& v, const DenseMatrix<T>& w, std::size_t wrows,
                       std::size_t keep, std::vector<T>& scratch, const Ops& ops) {
  const std::size_t n = v.rows();
  scratch.assign(n * keep, T(0));
  for (std::size_t j = 0; j < keep; ++j) {
    T* out = scratch.data() + j * n;
    for (std::size_t l = 0; l < wrows; ++l) {
      const T wlj = w(l, j);
      const T* vcol = v.col(l);
      for (std::size_t i = 0; i < n; ++i) out[i] = ops.add(out[i], ops.mul(vcol[i], wlj));
    }
  }
  for (std::size_t j = 0; j < keep; ++j) {
    T* dst = v.col(j);
    const T* src = scratch.data() + j * n;
    for (std::size_t i = 0; i < n; ++i) dst[i] = src[i];
  }
}

}  // namespace detail

// -- Reference path: always the exact engines ------------------------------

namespace ref {

template <typename T>
[[nodiscard]] T dot(std::size_t n, const T* x, const T* y) noexcept {
  return detail::dot_impl(n, x, y, accel::NativeOps<T>{});
}

template <typename T>
[[nodiscard]] T nrm2(std::size_t n, const T* x) noexcept {
  // Unqualified call: resolves to the mfla:: overload for native floats and
  // via ADL for the emulated formats.
  return sqrt(dot(n, x, x));
}

template <typename T>
void axpy(std::size_t n, T alpha, const T* x, T* y) noexcept {
  detail::axpy_impl(n, alpha, x, y, accel::NativeOps<T>{});
}

template <typename T>
void scal(std::size_t n, T alpha, T* x) noexcept {
  detail::scal_impl(n, alpha, x, accel::NativeOps<T>{});
}

}  // namespace ref

// -- Dispatching kernels ----------------------------------------------------

template <typename T>
[[nodiscard]] T dot(std::size_t n, const T* x, const T* y) {
  return accel::with_ops<T>([&](const auto& ops) { return detail::dot_impl(n, x, y, ops); });
}

template <typename T>
[[nodiscard]] T nrm2(std::size_t n, const T* x) {
  return sqrt(dot(n, x, x));
}

template <typename T>
void axpy(std::size_t n, T alpha, const T* x, T* y) {
  accel::with_ops<T>([&](const auto& ops) { detail::axpy_impl(n, alpha, x, y, ops); });
}

template <typename T>
void scal(std::size_t n, T alpha, T* x) {
  accel::with_ops<T>([&](const auto& ops) { detail::scal_impl(n, alpha, x, ops); });
}

/// y := A x (dense, column-major).
template <typename T>
void gemv(const DenseMatrix<T>& a, const T* x, T* y) {
  accel::with_ops<T>([&](const auto& ops) { detail::gemv_impl(a, x, y, ops); });
}

/// y := A^T x (dense, column-major).
template <typename T>
void gemv_t(const DenseMatrix<T>& a, const T* x, T* y) {
  accel::with_ops<T>([&](const auto& ops) { detail::gemv_t_impl(a, x, y, ops); });
}

/// C := A * B.
template <typename T>
[[nodiscard]] DenseMatrix<T> matmul(const DenseMatrix<T>& a, const DenseMatrix<T>& b) {
  return accel::with_ops<T>([&](const auto& ops) { return detail::matmul_impl(a, b, ops); });
}

/// C := A^T * B.
template <typename T>
[[nodiscard]] DenseMatrix<T> matmul_tn(const DenseMatrix<T>& a, const DenseMatrix<T>& b) {
  return accel::with_ops<T>([&](const auto& ops) { return detail::matmul_tn_impl(a, b, ops); });
}

/// Update the leading `keep` columns of V in place: V[:, :keep] := V * W,
/// where only W's leading wrows x keep block participates (W may be larger;
/// this avoids materializing top_left views). `scratch` is recycled across
/// calls — the steady-state path allocates nothing.
template <typename T>
void update_basis(DenseMatrix<T>& v, const DenseMatrix<T>& w, std::size_t wrows,
                  std::size_t keep, std::vector<T>& scratch) {
  accel::with_ops<T>(
      [&](const auto& ops) { detail::update_basis_impl(v, w, wrows, keep, scratch, ops); });
}

/// Convenience overload: whole W, throwaway scratch.
template <typename T>
void update_basis(DenseMatrix<T>& v, const DenseMatrix<T>& w, std::size_t keep) {
  std::vector<T> scratch;
  update_basis(v, w, w.rows(), keep, scratch);
}

/// Frobenius norm computed in double (used by tests / diagnostics only).
template <typename T>
[[nodiscard]] double frobenius_norm_double(const DenseMatrix<T>& a) {
  double acc = 0;
  for (std::size_t j = 0; j < a.cols(); ++j)
    for (std::size_t i = 0; i < a.rows(); ++i) {
      const double v = static_cast<double>(a(i, j));
      acc += v * v;
    }
  return std::sqrt(acc);
}

}  // namespace kernels
}  // namespace mfla
