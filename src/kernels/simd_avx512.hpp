// AVX-512 kernels over the 8-bit LUT tables (kernels/accel.hpp), operating
// on raw encoding bytes — the rung above kernels/simd_avx2.hpp on the ISA
// ladder (kernels/simd.hpp).
//
// Every function here evaluates exactly the scalar LUT recurrences — the
// tables are the arithmetic, SIMD only changes how entries are fetched:
//
//   * `vpgatherdd` (_mm512_i32gather_epi32) fetches sixteen table entries
//     at once from the 256×256 add/mul tables — double the AVX2 gather
//     width. Entries are bytes, gathers are 32-bit: each lane reads the
//     word starting at its entry and masks to the low byte, which is why
//     every gathered array carries Lut8::kGatherPad (tables) or
//     kGatherSlack (staged operands) trailing bytes.
//   * `vpermi2b` (_mm512_permutex2var_epi8, VBMI) resolves a whole
//     256-entry single-row lookup (e.g. mul-by-fixed-alpha) entirely in
//     registers: the table lives in four zmm registers, two two-source
//     128-byte permutes cover the halves, and the index MSB selects
//     between them via a mask blend — 64 lookups per step, zero memory
//     traffic. This replaces AVX2's sixteen-chunk pshufb cascade.
//   * accumulation chains (dot, spmv rows, spmm columns) are inherently
//     sequential — LUT addition does not associate — so they either run
//     scalar over vector-precomputed products (dot) or pack sixteen
//     *independent* chains into the lanes of one gather (spmm columns,
//     blocked dot, SELL-16 spmv rows). A chained gather costs ~4x a
//     chained scalar load on current cores, so the chained kernels keep
//     two gather chains in flight (spmm runs row pairs, the 32-wide
//     blocked dot runs two lane groups, the SELL-16 spmv runs slice
//     pairs).
//
// Chains index the *transposed* add table (Lut8::add_t_data, layout
// (product << 8) | acc): the late-arriving accumulator sits in the low
// bits, so the dependent operation is a single indexed load.
//
// The two ISA gates are independent, per function: the gather kernels
// carry the AVX-512F/BW target attribute, the in-register decode kernels
// additionally VBMI — callers gate on kernels::simd_avx512_active() /
// simd_vbmi_active() respectively (see kernels/simd.hpp), so a host with
// F/BW but no VBMI still runs the gather rung. Compiled only when
// MFLA_SIMD_AVX512_COMPILED; no global -mavx512* flags are needed.
#pragma once

#include "kernels/simd.hpp"

#if MFLA_SIMD_AVX512_COMPILED

#include <immintrin.h>

#include <cstddef>
#include <cstdint>
#include <cstring>

#define MFLA_TARGET_AVX512 __attribute__((target("avx512f,avx512bw")))
#define MFLA_TARGET_AVX512_VBMI __attribute__((target("avx512f,avx512bw,avx512vbmi")))

namespace mfla {
namespace kernels {
namespace simd512 {

/// Bytes of headroom every gathered table/array must carry past its last
/// addressable entry (32-bit gathers of byte entries read 3 bytes beyond).
inline constexpr std::size_t kGatherSlack = 3;

// -- Building blocks --------------------------------------------------------

/// Sixteen byte-table entries at the byte indices in `idx` (32-bit lanes).
/// `table` must have kGatherSlack bytes of headroom past the last entry.
MFLA_TARGET_AVX512 inline __m512i gather_bytes(const std::uint8_t* table, __m512i idx) noexcept {
  // The all-ones-mask form, not the plain intrinsic: GCC expands the plain
  // one from an undefined source register, which trips -Wmaybe-uninitialized
  // at every instantiation. Same single vpgatherdd either way.
  const __m512i words =
      _mm512_mask_i32gather_epi32(_mm512_setzero_si512(), __mmask16(0xffff), idx, table, 1);
  return _mm512_and_si512(words, _mm512_set1_epi32(0xff));
}

/// v << 8 and v >> 16 on 32-bit lanes. The all-ones-mask forms for the same
/// GCC 12 reason as gather_bytes (the plain shift/convert intrinsics expand
/// from an undefined source, tripping -Wmaybe-uninitialized); identical
/// instruction either way.
MFLA_TARGET_AVX512 inline __m512i shl8_epi32(__m512i v) noexcept {
  return _mm512_maskz_slli_epi32(__mmask16(0xffff), v, 8);
}
MFLA_TARGET_AVX512 inline __m512i shr16_epi32(__m512i v) noexcept {
  return _mm512_maskz_srli_epi32(__mmask16(0xffff), v, 16);
}

/// Zero-extend 16 bytes at p into sixteen 32-bit lanes.
MFLA_TARGET_AVX512 inline __m512i load16_epu32(const std::uint8_t* p) noexcept {
  return _mm512_maskz_cvtepu8_epi32(__mmask16(0xffff),
                                    _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
}

/// Store the low byte of each 32-bit lane: 16 contiguous bytes at `out`
/// (`vpmovdb` — a single instruction, unlike AVX2's shuffle+extract).
MFLA_TARGET_AVX512 inline void store_low_bytes16(std::uint8_t* out, __m512i v) noexcept {
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out),
                   _mm512_maskz_cvtepi32_epi8(__mmask16(0xffff), v));
}

/// out[i] = table2d[(a[i] << 8) | b[i]] — the generic two-operand table
/// fetch behind the vectorized mul and (for independent elements) add
/// stages, sixteen lanes per gather. In-place use (out aliasing a or b)
/// is safe: each 16-element chunk is fully read before its result is
/// stored.
MFLA_TARGET_AVX512 inline void gather_pairs(const std::uint8_t* table2d, const std::uint8_t* a,
                                            const std::uint8_t* b, std::uint8_t* out,
                                            std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512i va = load16_epu32(a + i);
    const __m512i vb = load16_epu32(b + i);
    const __m512i idx = _mm512_or_si512(shl8_epi32(va), vb);
    store_low_bytes16(out + i, gather_bytes(table2d, idx));
  }
  for (; i < n; ++i)
    out[i] = table2d[(static_cast<std::size_t>(a[i]) << 8) | b[i]];
}

/// A 256-entry byte table staged into four zmm registers for in-register
/// `vpermi2b` lookups (VBMI).
struct Lookup256 {
  __m512i q0, q1, q2, q3;  ///< table bytes 0..63, 64..127, 128..191, 192..255
};

MFLA_TARGET_AVX512_VBMI inline Lookup256 load_lookup256(const std::uint8_t* row256) noexcept {
  Lookup256 t;
  t.q0 = _mm512_loadu_si512(row256);
  t.q1 = _mm512_loadu_si512(row256 + 64);
  t.q2 = _mm512_loadu_si512(row256 + 128);
  t.q3 = _mm512_loadu_si512(row256 + 192);
  return t;
}

/// 64 parallel 256-entry lookups: out[i] = table[x[i]]. Two `vpermi2b`
/// permutes resolve the low and high 128-byte halves (the permute indexes
/// by the low 7 bits), the index MSB mask-blends between them.
MFLA_TARGET_AVX512_VBMI inline __m512i lookup256_apply(const Lookup256& t, __m512i x) noexcept {
  const __m512i lo = _mm512_permutex2var_epi8(t.q0, x, t.q1);
  const __m512i hi = _mm512_permutex2var_epi8(t.q2, x, t.q3);
  const __mmask64 msb = _mm512_movepi8_mask(x);
  return _mm512_mask_blend_epi8(msb, lo, hi);
}

/// out[i] = row256[x[i]] for a whole array (in-place allowed).
MFLA_TARGET_AVX512_VBMI inline void lookup256_map(const std::uint8_t* row256,
                                                  const std::uint8_t* x, std::uint8_t* out,
                                                  std::size_t n) noexcept {
  std::size_t i = 0;
  if (n >= 64) {
    const Lookup256 t = load_lookup256(row256);
    for (; i + 64 <= n; i += 64) {
      const __m512i v = _mm512_loadu_si512(x + i);
      _mm512_storeu_si512(out + i, lookup256_apply(t, v));
    }
  }
  for (; i < n; ++i) out[i] = row256[x[i]];
}

/// Transpose a 16x16 byte tile: reads x[c * ldx + e] for columns c and
/// elements e in 0..16, writes element-major rows out[e * 16 + c]. This
/// is the staging step of the blocked dot kernels — it turns sixteen
/// strided column reads per element into one 16-byte load. Four rounds of
/// the perfect-shuffle network (pair register i with i+8, byte-unpack)
/// realize the transpose.
MFLA_TARGET_AVX512 inline void transpose16x16_bytes(const std::uint8_t* x, std::size_t ldx,
                                                    std::uint8_t* out) noexcept {
  __m128i a[16], b[16];
  for (int c = 0; c < 16; ++c)
    a[c] = _mm_loadu_si128(reinterpret_cast<const __m128i*>(x + c * ldx));
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 8; ++i) {
      b[2 * i] = _mm_unpacklo_epi8(a[i], a[i + 8]);
      b[2 * i + 1] = _mm_unpackhi_epi8(a[i], a[i + 8]);
    }
    for (int i = 0; i < 16; ++i) a[i] = b[i];
  }
  for (int e = 0; e < 16; ++e)
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + e * 16), a[e]);
}

// -- Kernels ----------------------------------------------------------------

/// Product-buffer block size for the chained kernels (stack-resident, so
/// the hot loops stay allocation-free); same sizing rationale as the AVX2
/// tier — small enough that the next block's independent gathers fit the
/// out-of-order window while the current block's accumulation chain
/// drains.
inline constexpr std::size_t kChainBlock = 32;

/// Dot-product recurrence: acc := addt[(mul2d[(x[i]<<8)|y[i]] << 8) | acc]
/// in index order, starting from acc0 (the bits of T(0)). The products are
/// gathered sixteen at a time; the accumulation chain is the scalar chain.
MFLA_TARGET_AVX512 inline std::uint8_t dot_bits(const std::uint8_t* mul2d,
                                                const std::uint8_t* addt, const std::uint8_t* x,
                                                const std::uint8_t* y, std::size_t n,
                                                std::uint8_t acc0) noexcept {
  std::uint8_t prod[kChainBlock];
  std::size_t acc = acc0;
  for (std::size_t base = 0; base < n; base += kChainBlock) {
    const std::size_t m = n - base < kChainBlock ? n - base : kChainBlock;
    gather_pairs(mul2d, x + base, y + base, prod, m);
    for (std::size_t i = 0; i < m; ++i)
      acc = addt[(static_cast<std::size_t>(prod[i]) << 8) + acc];
  }
  return static_cast<std::uint8_t>(acc);
}

/// y[i] := add2d[(y[i] << 8) | mulrow[x[i]]] — axpy with the alpha row of
/// the mul table. Products via in-register `vpermi2b` (64 per step), sums
/// via 16-lane gathers (each element's chain has depth one, so the add
/// stage is fully parallel).
MFLA_TARGET_AVX512_VBMI inline void axpy_bits(const std::uint8_t* add2d,
                                              const std::uint8_t* mulrow, const std::uint8_t* x,
                                              std::uint8_t* y, std::size_t n) noexcept {
  std::uint8_t prod[64];
  std::size_t i = 0;
  if (n >= 64) {
    const Lookup256 t = load_lookup256(mulrow);
    for (; i + 64 <= n; i += 64) {
      _mm512_storeu_si512(prod, lookup256_apply(t, _mm512_loadu_si512(x + i)));
      gather_pairs(add2d, y + i, prod, y + i, 64);
    }
  }
  for (; i < n; ++i)
    y[i] = add2d[(static_cast<std::size_t>(y[i]) << 8) | mulrow[x[i]]];
}

/// x[i] := mulrow[x[i]] — scal as a pure in-register 256-entry map.
MFLA_TARGET_AVX512_VBMI inline void scal_bits(const std::uint8_t* mulrow, std::uint8_t* x,
                                              std::size_t n) noexcept {
  lookup256_map(mulrow, x, x, n);
}

/// One nonzero's advance of a 16-lane SpMM chain: gather the products
/// mul2d[offsets[k] | xblk[col*16 + c]] for the sixteen lanes, then the
/// dependent add through the transposed table.
MFLA_TARGET_AVX512 inline __m512i spmm_advance(const std::uint8_t* mul2d,
                                               const std::uint8_t* addt,
                                               const std::uint32_t* col_idx,
                                               const std::uint16_t* offsets,
                                               const std::uint8_t* xblk, std::uint32_t k,
                                               __m512i acc) noexcept {
  const __m512i xb = load16_epu32(xblk + static_cast<std::size_t>(col_idx[k]) * 16);
  const __m512i idx = _mm512_or_si512(_mm512_set1_epi32(offsets[k]), xb);
  const __m512i pr = gather_bytes(mul2d, idx);
  return gather_bytes(addt, _mm512_or_si512(shl8_epi32(pr), acc));
}

/// Planned SpMM over a chunk of kc <= 16 right-hand sides: the sixteen
/// lanes carry sixteen *independent* column chains, so one gather per
/// nonzero advances all of them — double the AVX2 amortization per
/// traversal. Rows are processed in pairs, keeping two gather chains in
/// flight. `xblk` interleaves the chunk's x encodings as xblk[col*16 + c]
/// (dead lanes may hold anything valid); results go to y[c * ldy + r] for
/// c < kc.
MFLA_TARGET_AVX512 inline void spmm16_bits(const std::uint8_t* mul2d, const std::uint8_t* addt,
                                           std::size_t rows, const std::uint32_t* row_ptr,
                                           const std::uint32_t* col_idx,
                                           const std::uint16_t* offsets,
                                           const std::uint8_t* xblk, std::uint8_t* y,
                                           std::size_t ldy, std::size_t kc,
                                           std::uint8_t zero_bits) noexcept {
  std::uint8_t lane[32];
  const __m512i zero = _mm512_set1_epi32(zero_bits);
  std::size_t r = 0;
  for (; r + 2 <= rows; r += 2) {
    const std::uint32_t b0 = row_ptr[r], l0 = row_ptr[r + 1] - b0;
    const std::uint32_t b1 = row_ptr[r + 1], l1 = row_ptr[r + 2] - b1;
    const std::uint32_t minl = l0 < l1 ? l0 : l1;
    const std::uint32_t maxl = l0 < l1 ? l1 : l0;
    __m512i acc0 = zero, acc1 = zero;
    std::uint32_t t = 0;
    for (; t < minl; ++t) {
      acc0 = spmm_advance(mul2d, addt, col_idx, offsets, xblk, b0 + t, acc0);
      acc1 = spmm_advance(mul2d, addt, col_idx, offsets, xblk, b1 + t, acc1);
    }
    for (; t < maxl; ++t) {
      if (t < l0) acc0 = spmm_advance(mul2d, addt, col_idx, offsets, xblk, b0 + t, acc0);
      if (t < l1) acc1 = spmm_advance(mul2d, addt, col_idx, offsets, xblk, b1 + t, acc1);
    }
    store_low_bytes16(lane, acc0);
    store_low_bytes16(lane + 16, acc1);
    for (std::size_t c = 0; c < kc; ++c) y[c * ldy + r] = lane[c];
    for (std::size_t c = 0; c < kc; ++c) y[c * ldy + r + 1] = lane[16 + c];
  }
  if (r < rows) {
    __m512i acc = zero;
    for (std::uint32_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k)
      acc = spmm_advance(mul2d, addt, col_idx, offsets, xblk, k, acc);
    store_low_bytes16(lane, acc);
    for (std::size_t c = 0; c < kc; ++c) y[c * ldy + r] = lane[c];
  }
}

/// Blocked dot over a chunk of kc <= 16 left-hand sides x_c (column-major,
/// leading dimension ldx) against one y: sixteen independent dot chains in
/// the lanes of one gather. Full chunks stage operands with the 16x16 byte
/// transpose; partial chunks stage scalar, with dead lanes re-running
/// column 0. Writes out[0..16).
MFLA_TARGET_AVX512 inline void dot_block16_bits(const std::uint8_t* mul2d,
                                                const std::uint8_t* addt, const std::uint8_t* x,
                                                std::size_t ldx, std::size_t kc,
                                                const std::uint8_t* y, std::size_t n,
                                                std::uint8_t zero_bits,
                                                std::uint8_t* out) noexcept {
  std::uint8_t xblk[kChainBlock * 16];
  __m512i acc = _mm512_set1_epi32(zero_bits);
  for (std::size_t base = 0; base < n; base += kChainBlock) {
    const std::size_t m = n - base < kChainBlock ? n - base : kChainBlock;
    std::size_t i = 0;
    if (kc == 16) {
      for (; i + 16 <= m; i += 16) transpose16x16_bytes(x + base + i, ldx, xblk + i * 16);
    }
    for (; i < m; ++i) {
      for (std::size_t c = 0; c < 16; ++c) {
        const std::size_t col = c < kc ? c : 0;
        xblk[i * 16 + c] = x[col * ldx + base + i];
      }
    }
    for (i = 0; i < m; ++i) {
      const __m512i xb = load16_epu32(xblk + i * 16);
      const __m512i yb = _mm512_set1_epi32(y[base + i]);
      const __m512i pr = gather_bytes(mul2d, _mm512_or_si512(shl8_epi32(xb), yb));
      acc = gather_bytes(addt, _mm512_or_si512(shl8_epi32(pr), acc));
    }
  }
  store_low_bytes16(out, acc);
}

/// Blocked dot over exactly thirty-two left-hand sides: two lane groups of
/// sixteen, i.e. two independent gather chains in flight per element — one
/// chain alone cannot saturate the gather unit. Writes out[0..32).
MFLA_TARGET_AVX512 inline void dot_block32_bits(const std::uint8_t* mul2d,
                                                const std::uint8_t* addt, const std::uint8_t* x,
                                                std::size_t ldx, const std::uint8_t* y,
                                                std::size_t n, std::uint8_t zero_bits,
                                                std::uint8_t* out) noexcept {
  std::uint8_t xb0[kChainBlock * 16];
  std::uint8_t xb1[kChainBlock * 16];
  __m512i acc0 = _mm512_set1_epi32(zero_bits);
  __m512i acc1 = acc0;
  for (std::size_t base = 0; base < n; base += kChainBlock) {
    const std::size_t m = n - base < kChainBlock ? n - base : kChainBlock;
    std::size_t i = 0;
    for (; i + 16 <= m; i += 16) {
      transpose16x16_bytes(x + base + i, ldx, xb0 + i * 16);
      transpose16x16_bytes(x + 16 * ldx + base + i, ldx, xb1 + i * 16);
    }
    for (; i < m; ++i) {
      for (std::size_t c = 0; c < 16; ++c) {
        xb0[i * 16 + c] = x[c * ldx + base + i];
        xb1[i * 16 + c] = x[(16 + c) * ldx + base + i];
      }
    }
    for (i = 0; i < m; ++i) {
      const __m512i yb = _mm512_set1_epi32(y[base + i]);
      const __m512i pr0 = gather_bytes(
          mul2d, _mm512_or_si512(shl8_epi32(load16_epu32(xb0 + i * 16)), yb));
      const __m512i pr1 = gather_bytes(
          mul2d, _mm512_or_si512(shl8_epi32(load16_epu32(xb1 + i * 16)), yb));
      acc0 = gather_bytes(addt, _mm512_or_si512(shl8_epi32(pr0), acc0));
      acc1 = gather_bytes(addt, _mm512_or_si512(shl8_epi32(pr1), acc1));
    }
  }
  store_low_bytes16(out, acc0);
  store_low_bytes16(out + 16, acc1);
}

/// One step of a SELL-16 slice's sixteen row chains: load the sixteen
/// fused words of step t, gather the x bytes, the products, then the
/// dependent add through the transposed table; keep the new accumulator
/// only in lanes whose row really has a t-th nonzero (the mask reproduces
/// the scalar kernel's t < len guard exactly, so pad entries change
/// nothing).
MFLA_TARGET_AVX512 inline __m512i sell16_advance(const std::uint8_t* mul2d,
                                                 const std::uint8_t* addt,
                                                 const std::uint8_t* xpad,
                                                 const std::uint32_t* f, std::uint32_t t,
                                                 __m512i lenv, __m512i acc) noexcept {
  const __m512i e = _mm512_loadu_si512(f + std::size_t{16} * t);
  const __m512i xb = gather_bytes(xpad, _mm512_and_si512(e, _mm512_set1_epi32(0xffff)));
  const __m512i pr = gather_bytes(mul2d, _mm512_or_si512(shr16_epi32(e), xb));
  const __m512i nx = gather_bytes(addt, _mm512_or_si512(shl8_epi32(pr), acc));
  const __mmask16 live = _mm512_cmplt_epu32_mask(_mm512_set1_epi32(static_cast<int>(t)), lenv);
  return _mm512_mask_mov_epi32(acc, live, nx);
}

/// Write one finished SELL-16 slice's sixteen accumulators to y, trimming
/// the lanes past the last real row.
MFLA_TARGET_AVX512 inline void sell16_emit(std::uint8_t* y, std::size_t rows, std::size_t si,
                                           __m512i acc) noexcept {
  const std::size_t r0 = si * 16;
  if (r0 + 16 <= rows) {
    store_low_bytes16(y + r0, acc);
  } else {
    std::uint8_t lane[16];
    store_low_bytes16(lane, acc);
    for (std::size_t c = 0; r0 + c < rows; ++c) y[r0 + c] = lane[c];
  }
}

/// Planned SpMV over a SELL-16 plan, in the encoding-bit domain: sixteen
/// independent row chains advance per gather, and slices are processed in
/// pairs so two chained gathers are in flight. Every chain is the scalar
/// chain of its row, in its original nonzero order — bit-identical by
/// construction. `xpad` is a copy of the x encoding bytes with
/// kGatherSlack bytes of headroom (the 32-bit gathers read past the last
/// entry).
MFLA_TARGET_AVX512 inline void spmv_sell16_bits(const std::uint8_t* mul2d,
                                                const std::uint8_t* addt,
                                                const std::uint8_t* xpad, const SellPlan& plan,
                                                std::size_t rows, std::uint8_t* y,
                                                std::uint8_t zero_bits) noexcept {
  const __m512i zero = _mm512_set1_epi32(zero_bits);
  const std::size_t nslices = plan.slices.size();
  std::size_t si = 0;
  for (; si + 2 <= nslices; si += 2) {
    const SellPlan::Slice& s0 = plan.slices[si];
    const SellPlan::Slice& s1 = plan.slices[si + 1];
    const std::uint32_t* f0 = plan.fused.data() + s0.base;
    const std::uint32_t* f1 = plan.fused.data() + s1.base;
    const __m512i len0 = _mm512_loadu_si512(s0.len);
    const __m512i len1 = _mm512_loadu_si512(s1.len);
    __m512i a0 = zero, a1 = zero;
    const std::uint32_t minl = s0.maxl < s1.maxl ? s0.maxl : s1.maxl;
    std::uint32_t t = 0;
    for (; t < minl; ++t) {
      a0 = sell16_advance(mul2d, addt, xpad, f0, t, len0, a0);
      a1 = sell16_advance(mul2d, addt, xpad, f1, t, len1, a1);
    }
    for (; t < s0.maxl; ++t) a0 = sell16_advance(mul2d, addt, xpad, f0, t, len0, a0);
    for (; t < s1.maxl; ++t) a1 = sell16_advance(mul2d, addt, xpad, f1, t, len1, a1);
    sell16_emit(y, rows, si, a0);
    sell16_emit(y, rows, si + 1, a1);
  }
  if (si < nslices) {
    const SellPlan::Slice& s = plan.slices[si];
    const std::uint32_t* f = plan.fused.data() + s.base;
    const __m512i lenv = _mm512_loadu_si512(s.len);
    __m512i acc = zero;
    for (std::uint32_t t = 0; t < s.maxl; ++t)
      acc = sell16_advance(mul2d, addt, xpad, f, t, lenv, acc);
    sell16_emit(y, rows, si, acc);
  }
}

}  // namespace simd512
}  // namespace kernels
}  // namespace mfla

#undef MFLA_TARGET_AVX512
#undef MFLA_TARGET_AVX512_VBMI

#endif  // MFLA_SIMD_AVX512_COMPILED
