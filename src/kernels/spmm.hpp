// Sparse matrix × block of vectors (SpMM) over CSR storage.
//
// Y[:, c] := A X[:, c] for k right-hand sides stored column-major — defined
// as exactly k applications of the single-vector SpMV, so every backend is
// bit-identical to k matvecs by contract. The point of the primitive is
// traversal amortization: one walk over the CSR structure advances all k
// accumulation chains, instead of k walks re-reading row_ptr/col_idx/
// values (or the offset plan) from memory each time.
//
//   * generic path — processes the rhs block in chunks of up to 8 columns;
//     within a chunk each nonzero updates all chunk accumulators (a small
//     stack array), i.e. a plain loop interchange of the k-spmv
//     definition. Element chains are per-column independent, so the
//     interchange is exactly identity-preserving.
//   * planned path (8-bit formats, kernels/spmv.hpp offset plan) — same
//     chunking in the bit domain over the LUT tables. With up to eight
//     independent chains advancing per nonzero this is already 2x+ faster
//     than separate spmv calls: each chain alone is bounded by its
//     dependent table-load latency, interleaved chains fill the gap.
//   * SIMD paths (kernels/simd_avx512.hpp spmm16_bits, then
//     kernels/simd_avx2.hpp spmm8_bits), full chunks only — the chunk
//     chains live in the lanes of one `vpgatherdd`, one gather per
//     nonzero advancing all of them; x bytes are staged interleaved
//     (xblk[col * W + c] for lane width W) so each nonzero's operands
//     load as one read. The AVX-512 rung takes chunks of sixteen while
//     they last, the AVX2 rung chunks of eight, and partial chunks take
//     the scalar interleave above: the gathers cost the same with dead
//     lanes, the scalar chunk scales down with kc.
#pragma once

#include <cstddef>
#include <cstdint>

#include "kernels/accel.hpp"
#include "kernels/simd.hpp"
#include "kernels/simd_avx2.hpp"
#include "kernels/simd_avx512.hpp"
#include "kernels/spmv.hpp"

namespace mfla {
namespace kernels {

namespace detail {

/// Chunk width of the blocked SpMM paths (matches the SIMD lane count).
inline constexpr std::size_t kSpmmChunk = 8;

template <typename T, class Ops>
void spmm_impl(std::size_t rows, const std::uint32_t* row_ptr, const std::uint32_t* col_idx,
               const T* values, std::size_t k, const T* x, std::size_t ldx, T* y,
               std::size_t ldy, const Ops& ops) noexcept {
  for (std::size_t c0 = 0; c0 < k; c0 += kSpmmChunk) {
    const std::size_t kc = k - c0 < kSpmmChunk ? k - c0 : kSpmmChunk;
    for (std::size_t i = 0; i < rows; ++i) {
      T acc[kSpmmChunk];
      for (std::size_t c = 0; c < kc; ++c) acc[c] = T(0);
      for (std::uint32_t nz = row_ptr[i]; nz < row_ptr[i + 1]; ++nz) {
        const T a = values[nz];
        const std::size_t col = col_idx[nz];
        for (std::size_t c = 0; c < kc; ++c)
          acc[c] = ops.add(acc[c], ops.mul(a, x[(c0 + c) * ldx + col]));
      }
      for (std::size_t c = 0; c < kc; ++c) y[(c0 + c) * ldy + i] = acc[c];
    }
  }
}

}  // namespace detail

namespace ref {

/// Y := A X, exact engines, bit-identical to k ref::spmv calls.
template <typename T>
void spmm(std::size_t rows, const std::uint32_t* row_ptr, const std::uint32_t* col_idx,
          const T* values, std::size_t k, const T* x, std::size_t ldx, T* y,
          std::size_t ldy) noexcept {
  detail::spmm_impl(rows, row_ptr, col_idx, values, k, x, ldx, y, ldy, accel::NativeOps<T>{});
}

}  // namespace ref

#if MFLA_ENABLE_LUT

/// Y := A X with the precomputed offset plan (kernels/spmv.hpp); callers
/// must check lut_enabled(). Bit-identical to k spmv_planned calls.
/// `cols` is the x column length (rows of X).
template <typename T>
void spmm_planned(std::size_t rows, std::size_t cols, const std::uint32_t* row_ptr,
                  const std::uint32_t* col_idx, const std::uint16_t* offsets, std::size_t k,
                  const T* x, std::size_t ldx, T* y, std::size_t ldy) noexcept {
  static_assert(spmv_plan_supported<T>());
  using Codec = ScalarCodec<T>;
  using Storage = typename Codec::Storage;
  const auto& lut = accel::Lut8<T>::instance();
  const Storage zero_bits = Codec::to_bits(T(0));
  (void)cols;
  std::size_t c0 = 0;
#if MFLA_SIMD_AVX512_COMPILED
  // Sixteen lanes per gather while full 16-column chunks last; the
  // remainder falls through to the 8-lane rung and the scalar chunk loop.
  if (simd_avx512_active() && k >= 2 * detail::kSpmmChunk) {
    auto& xblk = detail::simd_scratch(1);
    if (xblk.size() < cols * 16) xblk.resize(cols * 16);
    for (; c0 + 16 <= k; c0 += 16) {
      for (std::size_t col = 0; col < cols; ++col) {
        for (std::size_t c = 0; c < 16; ++c)
          xblk[col * 16 + c] = detail::byte_ptr(x)[(c0 + c) * ldx + col];
      }
      simd512::spmm16_bits(lut.mul_data(), lut.add_t_data(), rows, row_ptr, col_idx, offsets,
                           xblk.data(), detail::byte_ptr(y) + c0 * ldy, ldy, 16, zero_bits);
    }
  }
#endif
#if MFLA_SIMD_COMPILED
  // The gather kernel only pays off with all eight lanes live — a partial
  // chunk costs the same gathers as a full one, so fewer than eight
  // columns run faster through the interleaved scalar chunk loop below.
  if (simd_active() && k - c0 >= detail::kSpmmChunk) {
    auto& xblk = detail::simd_scratch(1);
    if (xblk.size() < cols * 8) xblk.resize(cols * 8);
    for (; c0 + detail::kSpmmChunk <= k; c0 += detail::kSpmmChunk) {
      // Interleave the chunk's x encodings so each nonzero's eight lane
      // operands load as one 8-byte read.
      for (std::size_t col = 0; col < cols; ++col) {
        for (std::size_t c = 0; c < 8; ++c)
          xblk[col * 8 + c] = detail::byte_ptr(x)[(c0 + c) * ldx + col];
      }
      simd::spmm8_bits(lut.mul_data(), lut.add_t_data(), rows, row_ptr, col_idx, offsets,
                       xblk.data(), detail::byte_ptr(y) + c0 * ldy, ldy, detail::kSpmmChunk,
                       zero_bits);
    }
  }
#endif
  for (; c0 < k; c0 += detail::kSpmmChunk) {
    const std::size_t kc = k - c0 < detail::kSpmmChunk ? k - c0 : detail::kSpmmChunk;
    for (std::size_t i = 0; i < rows; ++i) {
      Storage acc[detail::kSpmmChunk];
      for (std::size_t c = 0; c < kc; ++c) acc[c] = zero_bits;
      for (std::uint32_t nz = row_ptr[i]; nz < row_ptr[i + 1]; ++nz) {
        const std::size_t off = offsets[nz];
        const std::size_t col = col_idx[nz];
        for (std::size_t c = 0; c < kc; ++c) {
          const Storage prod = lut.mul_at(
              off | static_cast<std::size_t>(Codec::to_bits(x[(c0 + c) * ldx + col])));
          acc[c] = lut.add_bits(acc[c], prod);
        }
      }
      for (std::size_t c = 0; c < kc; ++c) y[(c0 + c) * ldy + i] = Codec::from_bits(acc[c]);
    }
  }
}

#endif  // MFLA_ENABLE_LUT

/// Y := A X for CSR, accumulated in T — bit-identical to k spmv calls.
/// X and Y are column-major with leading dimensions ldx (>= A cols) and
/// ldy (>= rows).
template <typename T>
void spmm(std::size_t rows, const std::uint32_t* row_ptr, const std::uint32_t* col_idx,
          const T* values, std::size_t k, const T* x, std::size_t ldx, T* y, std::size_t ldy) {
  accel::with_ops<T>([&](const auto& ops) {
    detail::spmm_impl(rows, row_ptr, col_idx, values, k, x, ldx, y, ldy, ops);
  });
}

}  // namespace kernels
}  // namespace mfla
