// AVX2 kernels over the 8-bit LUT tables (kernels/accel.hpp), operating on
// raw encoding bytes.
//
// Every function here evaluates exactly the scalar LUT recurrences — the
// tables are the arithmetic, SIMD only changes how entries are fetched:
//
//   * `vpgatherdd` (_mm256_i32gather_epi32) fetches eight table entries at
//     once from the 256×256 add/mul tables. Entries are bytes, gathers are
//     32-bit: each lane reads the word starting at its entry and masks to
//     the low byte, which is why every gathered array carries
//     Lut8::kGatherPad trailing bytes.
//   * `pshufb` (_mm256_shuffle_epi8) resolves a whole 256-entry single-row
//     lookup (e.g. mul-by-fixed-alpha) in registers: sixteen 16-byte table
//     chunks, select by high nibble, shuffle by low nibble.
//   * accumulation chains (dot, spmv rows, spmm columns) are inherently
//     sequential — LUT addition does not associate — so they either run
//     scalar over vector-precomputed products (dot) or pack eight
//     *independent* chains into the lanes of one gather (spmm columns,
//     blocked dot), which is where the multi-vector primitives win. A
//     chained gather costs ~4x a chained scalar load on current cores, so
//     the kernels below keep at least two gather chains in flight (spmm
//     runs row pairs, the 16-wide blocked dot runs two lane groups); the
//     single-vector spmv restructure lives in kernels/spmv.hpp as
//     interleaved scalar chains over a SELL-8 plan for the same reason.
//
// Chains index the *transposed* add table (Lut8::add_t_data, layout
// (product << 8) | acc): the late-arriving accumulator sits in the low
// bits, so the dependent operation is a single indexed load.
//
// Compiled only when MFLA_SIMD_COMPILED; functions carry the AVX2 target
// attribute so no global -mavx2 is needed, and callers must gate on
// kernels::simd_supported() (see kernels/simd.hpp).
#pragma once

#include "kernels/simd.hpp"

#if MFLA_SIMD_COMPILED

#include <immintrin.h>

#include <cstddef>
#include <cstdint>
#include <cstring>

#define MFLA_TARGET_AVX2 __attribute__((target("avx2")))

namespace mfla {
namespace kernels {
namespace simd {

/// Bytes of headroom every gathered table/array must carry past its last
/// addressable entry (32-bit gathers of byte entries read 3 bytes beyond).
inline constexpr std::size_t kGatherSlack = 3;

// -- Building blocks --------------------------------------------------------

/// Eight byte-table entries at the byte indices in `idx` (32-bit lanes).
/// `table` must have kGatherSlack bytes of headroom past the last entry.
MFLA_TARGET_AVX2 inline __m256i gather_bytes(const std::uint8_t* table, __m256i idx) noexcept {
  const __m256i words =
      _mm256_i32gather_epi32(reinterpret_cast<const int*>(table), idx, 1);
  return _mm256_and_si256(words, _mm256_set1_epi32(0xff));
}

/// Zero-extend 8 bytes at p into eight 32-bit lanes.
MFLA_TARGET_AVX2 inline __m256i load8_epu32(const std::uint8_t* p) noexcept {
  return _mm256_cvtepu8_epi32(_mm_loadl_epi64(reinterpret_cast<const __m128i*>(p)));
}

/// Store the low byte of each 32-bit lane: 8 contiguous bytes at `out`.
MFLA_TARGET_AVX2 inline void store_low_bytes8(std::uint8_t* out, __m256i v) noexcept {
  const __m256i shuf = _mm256_setr_epi8(
      0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1,
      0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1);
  const __m256i packed = _mm256_shuffle_epi8(v, shuf);
  const auto lo = static_cast<std::uint32_t>(_mm256_extract_epi32(packed, 0));
  const auto hi = static_cast<std::uint32_t>(_mm256_extract_epi32(packed, 4));
  std::memcpy(out, &lo, 4);
  std::memcpy(out + 4, &hi, 4);
}

/// out[i] = table2d[(a[i] << 8) | b[i]] — the generic two-operand table
/// fetch behind the vectorized mul and (for independent elements) add
/// stages. In-place use (out aliasing a or b) is safe: each 8-element
/// chunk is fully read before its result is stored.
MFLA_TARGET_AVX2 inline void gather_pairs(const std::uint8_t* table2d, const std::uint8_t* a,
                                          const std::uint8_t* b, std::uint8_t* out,
                                          std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i va = load8_epu32(a + i);
    const __m256i vb = load8_epu32(b + i);
    const __m256i idx = _mm256_or_si256(_mm256_slli_epi32(va, 8), vb);
    store_low_bytes8(out + i, gather_bytes(table2d, idx));
  }
  for (; i < n; ++i)
    out[i] = table2d[(static_cast<std::size_t>(a[i]) << 8) | b[i]];
}

/// A 256-entry byte table staged into registers as sixteen 16-byte chunks
/// for in-register pshufb lookups.
struct Lookup256 {
  __m256i chunk[16];
};

MFLA_TARGET_AVX2 inline Lookup256 load_lookup256(const std::uint8_t* row256) noexcept {
  Lookup256 t;
  for (int r = 0; r < 16; ++r) {
    t.chunk[r] = _mm256_broadcastsi128_si256(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(row256 + 16 * r)));
  }
  return t;
}

/// 32 parallel 256-entry lookups: out[i] = table[x[i]]. Select the chunk
/// by high nibble (compare + blend), the entry within it by low nibble
/// (pshufb).
MFLA_TARGET_AVX2 inline __m256i lookup256_apply(const Lookup256& t, __m256i x) noexcept {
  const __m256i nib = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(x, nib);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(x, 4), nib);
  __m256i out = _mm256_setzero_si256();
  for (int r = 0; r < 16; ++r) {
    const __m256i mask = _mm256_cmpeq_epi8(hi, _mm256_set1_epi8(static_cast<char>(r)));
    out = _mm256_blendv_epi8(out, _mm256_shuffle_epi8(t.chunk[r], lo), mask);
  }
  return out;
}

/// Transpose an 8x8 byte tile: reads x[c * ldx + e] for columns c and
/// elements e in 0..8, writes element-major rows out[e * 8 + c]. This is
/// the staging step of the blocked dot kernels — it turns eight strided
/// column reads per element into one 8-byte load.
MFLA_TARGET_AVX2 inline void transpose8x8_bytes(const std::uint8_t* x, std::size_t ldx,
                                                std::uint8_t* out) noexcept {
  const auto row = [&](std::size_t c) {
    return _mm_loadl_epi64(reinterpret_cast<const __m128i*>(x + c * ldx));
  };
  const __m128i b0 = _mm_unpacklo_epi8(row(0), row(1));
  const __m128i b1 = _mm_unpacklo_epi8(row(2), row(3));
  const __m128i b2 = _mm_unpacklo_epi8(row(4), row(5));
  const __m128i b3 = _mm_unpacklo_epi8(row(6), row(7));
  const __m128i c0 = _mm_unpacklo_epi16(b0, b1);
  const __m128i c1 = _mm_unpackhi_epi16(b0, b1);
  const __m128i c2 = _mm_unpacklo_epi16(b2, b3);
  const __m128i c3 = _mm_unpackhi_epi16(b2, b3);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out), _mm_unpacklo_epi32(c0, c2));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16), _mm_unpackhi_epi32(c0, c2));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 32), _mm_unpacklo_epi32(c1, c3));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 48), _mm_unpackhi_epi32(c1, c3));
}

/// out[i] = row256[x[i]] for a whole array (in-place allowed).
MFLA_TARGET_AVX2 inline void lookup256_map(const std::uint8_t* row256, const std::uint8_t* x,
                                           std::uint8_t* out, std::size_t n) noexcept {
  std::size_t i = 0;
  if (n >= 32) {
    const Lookup256 t = load_lookup256(row256);
    for (; i + 32 <= n; i += 32) {
      const __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), lookup256_apply(t, v));
    }
  }
  for (; i < n; ++i) out[i] = row256[x[i]];
}

// -- Kernels ----------------------------------------------------------------

/// Product-buffer block size for the chained kernels (stack-resident, so
/// the hot loops stay allocation-free). Small enough that the next
/// block's independent gathers fit the out-of-order window while the
/// current block's accumulation chain drains — at 128 the chain alone
/// overflows the reorder buffer and the gathers stop overlapping.
inline constexpr std::size_t kChainBlock = 32;

/// Dot-product recurrence: acc := addt[(mul2d[(x[i]<<8)|y[i]] << 8) | acc]
/// in index order, starting from acc0 (the bits of T(0)). The products are
/// gathered eight at a time; the accumulation chain is the scalar chain.
MFLA_TARGET_AVX2 inline std::uint8_t dot_bits(const std::uint8_t* mul2d,
                                              const std::uint8_t* addt, const std::uint8_t* x,
                                              const std::uint8_t* y, std::size_t n,
                                              std::uint8_t acc0) noexcept {
  std::uint8_t prod[kChainBlock];
  std::size_t acc = acc0;
  for (std::size_t base = 0; base < n; base += kChainBlock) {
    const std::size_t m = n - base < kChainBlock ? n - base : kChainBlock;
    gather_pairs(mul2d, x + base, y + base, prod, m);
    for (std::size_t i = 0; i < m; ++i)
      acc = addt[(static_cast<std::size_t>(prod[i]) << 8) + acc];
  }
  return static_cast<std::uint8_t>(acc);
}

/// y[i] := add2d[(y[i] << 8) | mulrow[x[i]]] — axpy with the alpha row of
/// the mul table. Products via in-register pshufb, sums via gather (each
/// element's chain has depth one, so the add stage is fully parallel).
MFLA_TARGET_AVX2 inline void axpy_bits(const std::uint8_t* add2d, const std::uint8_t* mulrow,
                                       const std::uint8_t* x, std::uint8_t* y,
                                       std::size_t n) noexcept {
  std::uint8_t prod[32];
  std::size_t i = 0;
  if (n >= 32) {
    const Lookup256 t = load_lookup256(mulrow);
    for (; i + 32 <= n; i += 32) {
      const __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(prod), lookup256_apply(t, v));
      gather_pairs(add2d, y + i, prod, y + i, 32);
    }
  }
  for (; i < n; ++i)
    y[i] = add2d[(static_cast<std::size_t>(y[i]) << 8) | mulrow[x[i]]];
}

/// x[i] := mulrow[x[i]] — scal as a pure in-register 256-entry map.
MFLA_TARGET_AVX2 inline void scal_bits(const std::uint8_t* mulrow, std::uint8_t* x,
                                       std::size_t n) noexcept {
  lookup256_map(mulrow, x, x, n);
}

/// Fused blocked axpy: applies kc sequential axpys y += alpha_c * x_c in
/// one traversal of y. Each element's chain
///   y[i] := add2d[(y[i] << 8) | mul2d[(alpha_c << 8) | x_c[i]]],  c = 0..kc
/// is independent of every other element's, so interchanging the (c, i)
/// loops of the scalar definition is exactly identity-preserving; eight
/// element chains run in the gather lanes.
MFLA_TARGET_AVX2 inline void axpy_block_bits(const std::uint8_t* mul2d,
                                             const std::uint8_t* add2d,
                                             const std::uint8_t* alphas, std::size_t kc,
                                             const std::uint8_t* x, std::size_t ldx,
                                             std::uint8_t* y, std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i yv = load8_epu32(y + i);
    for (std::size_t c = 0; c < kc; ++c) {
      const __m256i xb = load8_epu32(x + c * ldx + i);
      const __m256i pr = gather_bytes(
          mul2d, _mm256_or_si256(_mm256_set1_epi32(static_cast<int>(alphas[c]) << 8), xb));
      yv = gather_bytes(add2d, _mm256_or_si256(_mm256_slli_epi32(yv, 8), pr));
    }
    store_low_bytes8(y + i, yv);
  }
  for (; i < n; ++i) {
    std::size_t acc = y[i];
    for (std::size_t c = 0; c < kc; ++c) {
      const std::uint8_t pr =
          mul2d[(static_cast<std::size_t>(alphas[c]) << 8) | x[c * ldx + i]];
      acc = add2d[(acc << 8) | pr];
    }
    y[i] = static_cast<std::uint8_t>(acc);
  }
}

/// One nonzero's advance of an 8-lane SpMM chain: gather the products
/// mul2d[offsets[k] | xblk[col*8 + c]] for the eight lanes, then the
/// dependent add through the transposed table.
MFLA_TARGET_AVX2 inline __m256i spmm_advance(const std::uint8_t* mul2d, const std::uint8_t* addt,
                                             const std::uint32_t* col_idx,
                                             const std::uint16_t* offsets,
                                             const std::uint8_t* xblk, std::uint32_t k,
                                             __m256i acc) noexcept {
  const __m256i xb = load8_epu32(xblk + static_cast<std::size_t>(col_idx[k]) * 8);
  const __m256i idx = _mm256_or_si256(_mm256_set1_epi32(offsets[k]), xb);
  const __m256i pr = gather_bytes(mul2d, idx);
  return gather_bytes(addt, _mm256_or_si256(_mm256_slli_epi32(pr, 8), acc));
}

/// Planned SpMM over a chunk of kc <= 8 right-hand sides: the eight lanes
/// carry eight *independent* column chains, so one gather per nonzero
/// advances all of them — this is where one matrix traversal amortizes
/// over many vectors. Rows are processed in pairs, keeping two gather
/// chains in flight (a chained gather costs ~4x a chained scalar load;
/// one chain per row leaves the gather unit mostly idle). `xblk`
/// interleaves the chunk's x encodings as xblk[col * 8 + c] (dead lanes
/// may hold anything valid); results go to y[c * ldy + r] for c < kc.
MFLA_TARGET_AVX2 inline void spmm8_bits(const std::uint8_t* mul2d, const std::uint8_t* addt,
                                        std::size_t rows, const std::uint32_t* row_ptr,
                                        const std::uint32_t* col_idx,
                                        const std::uint16_t* offsets, const std::uint8_t* xblk,
                                        std::uint8_t* y, std::size_t ldy, std::size_t kc,
                                        std::uint8_t zero_bits) noexcept {
  std::uint8_t lane[16];
  const __m256i zero = _mm256_set1_epi32(zero_bits);
  std::size_t r = 0;
  for (; r + 2 <= rows; r += 2) {
    const std::uint32_t b0 = row_ptr[r], l0 = row_ptr[r + 1] - b0;
    const std::uint32_t b1 = row_ptr[r + 1], l1 = row_ptr[r + 2] - b1;
    const std::uint32_t minl = l0 < l1 ? l0 : l1;
    const std::uint32_t maxl = l0 < l1 ? l1 : l0;
    __m256i acc0 = zero, acc1 = zero;
    std::uint32_t t = 0;
    for (; t < minl; ++t) {
      acc0 = spmm_advance(mul2d, addt, col_idx, offsets, xblk, b0 + t, acc0);
      acc1 = spmm_advance(mul2d, addt, col_idx, offsets, xblk, b1 + t, acc1);
    }
    for (; t < maxl; ++t) {
      if (t < l0) acc0 = spmm_advance(mul2d, addt, col_idx, offsets, xblk, b0 + t, acc0);
      if (t < l1) acc1 = spmm_advance(mul2d, addt, col_idx, offsets, xblk, b1 + t, acc1);
    }
    store_low_bytes8(lane, acc0);
    store_low_bytes8(lane + 8, acc1);
    for (std::size_t c = 0; c < kc; ++c) y[c * ldy + r] = lane[c];
    for (std::size_t c = 0; c < kc; ++c) y[c * ldy + r + 1] = lane[8 + c];
  }
  if (r < rows) {
    __m256i acc = zero;
    for (std::uint32_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k)
      acc = spmm_advance(mul2d, addt, col_idx, offsets, xblk, k, acc);
    store_low_bytes8(lane, acc);
    for (std::size_t c = 0; c < kc; ++c) y[c * ldy + r] = lane[c];
  }
}

/// Blocked dot over a chunk of kc <= 8 left-hand sides x_c (column-major,
/// leading dimension ldx) against one y: eight independent dot chains in
/// the lanes of one gather. Full chunks stage operands with the 8x8 byte
/// transpose; partial chunks stage scalar, with dead lanes re-running
/// column 0. Writes out[0..8).
MFLA_TARGET_AVX2 inline void dot_block8_bits(const std::uint8_t* mul2d,
                                             const std::uint8_t* addt, const std::uint8_t* x,
                                             std::size_t ldx, std::size_t kc,
                                             const std::uint8_t* y, std::size_t n,
                                             std::uint8_t zero_bits,
                                             std::uint8_t* out) noexcept {
  std::uint8_t xblk[kChainBlock * 8];
  __m256i acc = _mm256_set1_epi32(zero_bits);
  for (std::size_t base = 0; base < n; base += kChainBlock) {
    const std::size_t m = n - base < kChainBlock ? n - base : kChainBlock;
    std::size_t i = 0;
    if (kc == 8) {
      for (; i + 8 <= m; i += 8) transpose8x8_bytes(x + base + i, ldx, xblk + i * 8);
    }
    for (; i < m; ++i) {
      for (std::size_t c = 0; c < 8; ++c) {
        const std::size_t col = c < kc ? c : 0;
        xblk[i * 8 + c] = x[col * ldx + base + i];
      }
    }
    for (i = 0; i < m; ++i) {
      const __m256i xb = load8_epu32(xblk + i * 8);
      const __m256i yb = _mm256_set1_epi32(y[base + i]);
      const __m256i pr = gather_bytes(mul2d, _mm256_or_si256(_mm256_slli_epi32(xb, 8), yb));
      acc = gather_bytes(addt, _mm256_or_si256(_mm256_slli_epi32(pr, 8), acc));
    }
  }
  store_low_bytes8(out, acc);
}

/// Blocked dot over exactly sixteen left-hand sides: two lane groups of
/// eight, i.e. two independent gather chains in flight per element — the
/// ~4x latency gap between a chained gather and a chained scalar load
/// means one chain alone cannot saturate the gather unit. Writes
/// out[0..16).
MFLA_TARGET_AVX2 inline void dot_block16_bits(const std::uint8_t* mul2d,
                                              const std::uint8_t* addt, const std::uint8_t* x,
                                              std::size_t ldx, const std::uint8_t* y,
                                              std::size_t n, std::uint8_t zero_bits,
                                              std::uint8_t* out) noexcept {
  std::uint8_t xb0[kChainBlock * 8];
  std::uint8_t xb1[kChainBlock * 8];
  __m256i acc0 = _mm256_set1_epi32(zero_bits);
  __m256i acc1 = acc0;
  for (std::size_t base = 0; base < n; base += kChainBlock) {
    const std::size_t m = n - base < kChainBlock ? n - base : kChainBlock;
    std::size_t i = 0;
    for (; i + 8 <= m; i += 8) {
      transpose8x8_bytes(x + base + i, ldx, xb0 + i * 8);
      transpose8x8_bytes(x + 8 * ldx + base + i, ldx, xb1 + i * 8);
    }
    for (; i < m; ++i) {
      for (std::size_t c = 0; c < 8; ++c) {
        xb0[i * 8 + c] = x[c * ldx + base + i];
        xb1[i * 8 + c] = x[(8 + c) * ldx + base + i];
      }
    }
    for (i = 0; i < m; ++i) {
      const __m256i yb = _mm256_set1_epi32(y[base + i]);
      const __m256i pr0 =
          gather_bytes(mul2d, _mm256_or_si256(_mm256_slli_epi32(load8_epu32(xb0 + i * 8), 8), yb));
      const __m256i pr1 =
          gather_bytes(mul2d, _mm256_or_si256(_mm256_slli_epi32(load8_epu32(xb1 + i * 8), 8), yb));
      acc0 = gather_bytes(addt, _mm256_or_si256(_mm256_slli_epi32(pr0, 8), acc0));
      acc1 = gather_bytes(addt, _mm256_or_si256(_mm256_slli_epi32(pr1, 8), acc1));
    }
  }
  store_low_bytes8(out, acc0);
  store_low_bytes8(out + 8, acc1);
}

}  // namespace simd
}  // namespace kernels
}  // namespace mfla

#undef MFLA_TARGET_AVX2

#endif  // MFLA_SIMD_COMPILED
