// Lookup-table acceleration for the ≤16-bit formats.
//
// Every inner-loop scalar operation of the study's kernels normally pays
// full software emulation: SoftFloat round-trips through double (ldexp on
// both sides) and TaperedFloat runs a 128-bit exact-significand engine per
// element. For narrow formats the whole operation space is small enough to
// precompute, so this header provides three acceleration tiers, selected
// per scalar type at compile time:
//
//  * 8-bit formats (OFP8 E4M3/E5M2, posit8, takum8) — full two-operand
//    add/mul result tables (256×256 = 64 KiB each) plus a 256-entry double
//    decode table. One table load replaces a complete emulated operation.
//  * 16-bit IEEE-style formats (float16, bfloat16) — a 65536-entry double
//    decode table turns to_double into a single load; the encode side is
//    the exact, correctly rounded SoftFloat::from_double.
//  * 16-bit tapered formats (posit16, takum16) — a 65536-entry Unpacked
//    table replaces the decode bit-twiddling; the arithmetic core and the
//    encoding-level rounding are TaperedFloat::add_unpacked/mul_unpacked,
//    i.e. the exact engine itself.
//
// Every table entry is produced by the exact engine, so the fast paths are
// bit-identical by construction; tests/test_kernel_accel.cpp verifies this
// exhaustively for the 8-bit formats and by decode-exhaustion plus operand
// sampling for the 16-bit ones.
//
// Tables are built lazily on first use through a magic static (thread-safe
// since C++11) and shared by every thread of the experiment engine's pool.
// Building MFLA_ENABLE_LUT=0 (CMake option of the same name) compiles all
// fast paths out, leaving only the exact reference engines;
// set_lut_enabled(false) disables them at runtime in an enabled build
// (used by the bit-identity tests and the exact-vs-LUT benchmark).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "arith/traits.hpp"

#ifndef MFLA_ENABLE_LUT
#define MFLA_ENABLE_LUT 1
#endif

namespace mfla {
namespace kernels {

#if MFLA_ENABLE_LUT
namespace detail {
[[nodiscard]] inline std::atomic<bool>& lut_flag() noexcept {
  static std::atomic<bool> flag{true};
  return flag;
}
}  // namespace detail
#endif

/// Are the LUT fast paths active? Compile-time false when built with
/// MFLA_ENABLE_LUT=0; otherwise a runtime switch defaulting to on.
[[nodiscard]] inline bool lut_enabled() noexcept {
#if MFLA_ENABLE_LUT
  return detail::lut_flag().load(std::memory_order_relaxed);
#else
  return false;
#endif
}

/// Toggle the LUT fast paths at runtime; returns the previous setting.
/// A no-op (always off) when compiled with MFLA_ENABLE_LUT=0.
inline bool set_lut_enabled(bool on) noexcept {
#if MFLA_ENABLE_LUT
  return detail::lut_flag().exchange(on, std::memory_order_relaxed);
#else
  (void)on;
  return false;
#endif
}

namespace accel {

enum class AccelKind { none, lut8, dec16_ieee, dec16_tapered };

template <typename T>
[[nodiscard]] consteval AccelKind accel_kind() noexcept {
  if constexpr (!HasScalarCodec<T>) {
    return AccelKind::none;
  } else if constexpr (ScalarCodec<T>::bits == 8) {
    return AccelKind::lut8;
  } else if constexpr (ScalarCodec<T>::bits == 16) {
    return ScalarCodec<T>::tapered ? AccelKind::dec16_tapered : AccelKind::dec16_ieee;
  } else {
    return AccelKind::none;
  }
}

/// Full operation tables for an 8-bit format: result bits for every
/// (a, b) operand pair of + and *, plus a 256-entry decode table.
template <typename T>
class Lut8 {
 public:
  using Codec = ScalarCodec<T>;
  using Storage = typename Codec::Storage;
  static_assert(Codec::bits == 8);

  [[nodiscard]] static const Lut8& instance() {
    static const Lut8 lut;
    return lut;
  }

  [[nodiscard]] T add(T a, T b) const noexcept {
    return Codec::from_bits(add_[index(a, b)]);
  }
  [[nodiscard]] T mul(T a, T b) const noexcept {
    return Codec::from_bits(mul_[index(a, b)]);
  }
  [[nodiscard]] double decode(Storage bits) const noexcept { return dec_[bits]; }

  // Bit-domain surface for precomputed-offset kernels (kernels/spmv.hpp):
  // an 8-bit SpMV can hoist `bits(a_k) << 8` out of the inner loop as a
  // per-nonzero row offset, turning each multiply into mul_at(offset | x).
  [[nodiscard]] Storage add_bits(Storage a, Storage b) const noexcept {
    return add_[(static_cast<std::size_t>(a) << 8) | b];
  }
  [[nodiscard]] Storage mul_at(std::size_t row_offset_or_bits) const noexcept {
    return mul_[row_offset_or_bits];
  }
  /// Transposed add table: add_t_at((b << 8) | a) == add_bits(a, b). The
  /// SIMD accumulation chains index through this layout so the chained
  /// operand (the accumulator) lands in the low bits — the late-arriving
  /// value folds into the load's addressing mode instead of a dependent
  /// shift. Built as an explicit transpose of add_, never by assuming
  /// commutativity.
  [[nodiscard]] Storage add_t_at(std::size_t index) const noexcept { return addt_[index]; }

  // Raw table bytes for the SIMD kernels (kernels/simd_avx2.hpp), which
  // gather entries as 32-bit words: every table carries kGatherPad trailing
  // bytes so a 4-byte read starting at the last real entry stays inside the
  // allocation. Layouts: add/mul are indexed (a << 8) | b, add_t is the
  // transpose (b << 8) | a, and mul_row(alpha) is the 256-entry row
  // mul(alpha, x) used by the in-register pshufb lookups.
  static constexpr std::size_t kGatherPad = 8;
  [[nodiscard]] const Storage* add_data() const noexcept { return add_.data(); }
  [[nodiscard]] const Storage* add_t_data() const noexcept { return addt_.data(); }
  [[nodiscard]] const Storage* mul_data() const noexcept { return mul_.data(); }
  [[nodiscard]] const Storage* mul_row(Storage alpha_bits) const noexcept {
    return mul_.data() + (static_cast<std::size_t>(alpha_bits) << 8);
  }
  /// Row alpha of the *transposed* mul table: mul_t_row(alpha)[x] ==
  /// mul(x, alpha) — the operand order of the scal recurrence. Like addt_,
  /// built as an explicit transpose of mul_, never by assuming
  /// commutativity (the in-register map kernels need the fixed operand in
  /// a contiguous 256-entry row whichever side it sits on).
  [[nodiscard]] const Storage* mul_t_row(Storage alpha_bits) const noexcept {
    return mult_.data() + (static_cast<std::size_t>(alpha_bits) << 8);
  }

 private:
  Lut8() : add_(65536 + kGatherPad), mul_(65536 + kGatherPad), dec_(256) {
    for (unsigned a = 0; a < 256; ++a) {
      const T ta = Codec::from_bits(static_cast<Storage>(a));
      dec_[a] = Codec::bits_to_double(static_cast<Storage>(a));
      for (unsigned b = 0; b < 256; ++b) {
        const T tb = Codec::from_bits(static_cast<Storage>(b));
        add_[(a << 8) | b] = Codec::to_bits(ta + tb);
        mul_[(a << 8) | b] = Codec::to_bits(ta * tb);
      }
    }
    addt_.assign(65536 + kGatherPad, Storage{0});
    for (unsigned a = 0; a < 256; ++a)
      for (unsigned b = 0; b < 256; ++b) addt_[(b << 8) | a] = add_[(a << 8) | b];
    mult_.assign(65536 + kGatherPad, Storage{0});
    for (unsigned a = 0; a < 256; ++a)
      for (unsigned b = 0; b < 256; ++b) mult_[(b << 8) | a] = mul_[(a << 8) | b];
  }

  [[nodiscard]] static std::size_t index(T a, T b) noexcept {
    return (static_cast<std::size_t>(Codec::to_bits(a)) << 8) |
           static_cast<std::size_t>(Codec::to_bits(b));
  }

  std::vector<Storage> add_;
  std::vector<Storage> addt_;
  std::vector<Storage> mul_;
  std::vector<Storage> mult_;
  std::vector<double> dec_;
};

/// Decode tables for a 16-bit format: double per encoding, and for tapered
/// formats additionally the Unpacked (sign, exponent, significand) that
/// feeds the exact engine's arithmetic cores.
template <typename T>
class Dec16 {
 public:
  using Codec = ScalarCodec<T>;
  using Storage = typename Codec::Storage;
  static_assert(Codec::bits == 16);

  [[nodiscard]] static const Dec16& instance() {
    static const Dec16 lut;
    return lut;
  }

  [[nodiscard]] double decode(Storage bits) const noexcept { return dec_[bits]; }
  [[nodiscard]] const Unpacked& unpacked(Storage bits) const noexcept { return unp_[bits]; }

 private:
  Dec16() : dec_(65536), unp_(Codec::tapered ? 65536 : 0) {
    for (std::uint32_t b = 0; b < 65536; ++b) {
      dec_[b] = Codec::bits_to_double(static_cast<Storage>(b));
      if constexpr (Codec::tapered) {
        unp_[b] = Codec::bits_to_unpacked(static_cast<Storage>(b));
      }
    }
  }

  std::vector<double> dec_;
  std::vector<Unpacked> unp_;
};

// -- Scalar-operation policies ---------------------------------------------
// Each kernel body is written once against an `ops` policy; with_ops()
// below picks the policy for the scalar type (and the runtime LUT switch).

/// The exact engines: plain operator+ / operator*.
template <typename T>
struct NativeOps {
  [[nodiscard]] T add(T a, T b) const noexcept { return a + b; }
  [[nodiscard]] T mul(T a, T b) const noexcept { return a * b; }
};

#if MFLA_ENABLE_LUT

template <typename T>
struct Lut8Ops {
  const Lut8<T>& lut;
  [[nodiscard]] T add(T a, T b) const noexcept { return lut.add(a, b); }
  [[nodiscard]] T mul(T a, T b) const noexcept { return lut.mul(a, b); }
};

template <typename T>
struct Dec16IeeeOps {
  const Dec16<T>& lut;
  [[nodiscard]] T add(T a, T b) const noexcept {
    return T::from_double(lut.decode(a.bits()) + lut.decode(b.bits()));
  }
  [[nodiscard]] T mul(T a, T b) const noexcept {
    return T::from_double(lut.decode(a.bits()) * lut.decode(b.bits()));
  }
};

template <typename T>
struct Dec16TaperedOps {
  const Dec16<T>& lut;
  // Special cases mirror TaperedFloat's operator+/operator* exactly; only
  // the unpack step is replaced by a table load.
  [[nodiscard]] T add(T a, T b) const noexcept {
    if (a.is_nar() || b.is_nar()) return T::nar();
    if (a.is_zero()) return b;
    if (b.is_zero()) return a;
    return T::add_unpacked(lut.unpacked(a.bits()), lut.unpacked(b.bits()));
  }
  [[nodiscard]] T mul(T a, T b) const noexcept {
    if (a.is_nar() || b.is_nar()) return T::nar();
    if (a.is_zero() || b.is_zero()) return T::zero();
    return T::mul_unpacked(lut.unpacked(a.bits()), lut.unpacked(b.bits()));
  }
};

#endif  // MFLA_ENABLE_LUT

/// Invoke fn with the scalar-operation policy for T: the matching LUT
/// policy when one exists and LUTs are enabled, the exact engines
/// otherwise. The policy choice is hoisted out of the kernel loops — one
/// runtime flag check per kernel call, not per element.
template <typename T, class Fn>
decltype(auto) with_ops(Fn&& fn) {
#if MFLA_ENABLE_LUT
  constexpr AccelKind kind = accel_kind<T>();
  if constexpr (kind == AccelKind::lut8) {
    if (lut_enabled()) return fn(Lut8Ops<T>{Lut8<T>::instance()});
  } else if constexpr (kind == AccelKind::dec16_ieee) {
    if (lut_enabled()) return fn(Dec16IeeeOps<T>{Dec16<T>::instance()});
  } else if constexpr (kind == AccelKind::dec16_tapered) {
    if (lut_enabled()) return fn(Dec16TaperedOps<T>{Dec16<T>::instance()});
  }
#endif
  return fn(NativeOps<T>{});
}

}  // namespace accel
}  // namespace kernels
}  // namespace mfla
