#include "api/sweep.hpp"

#include <chrono>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "core/report.hpp"

namespace mfla::api {

std::vector<FormatId> evaluation_formats() {
  std::vector<FormatId> out;
  for (const auto& f : all_formats()) {
    if (!f.reference_only) out.push_back(f.id);
  }
  return out;
}

const MatrixResult* SweepResult::find(const std::string& matrix) const {
  for (const auto& mr : results) {
    if (mr.name == matrix) return &mr;
  }
  return nullptr;
}

const FormatRun* SweepResult::find(const std::string& matrix, FormatId format) const {
  const MatrixResult* mr = find(matrix);
  if (mr == nullptr) return nullptr;
  for (const auto& run : mr->runs) {
    if (run.format == format) return &run;
  }
  return nullptr;
}

Sweep Sweep::over(std::vector<TestMatrix> corpus) {
  Sweep s;
  s.corpus_ = std::move(corpus);
  return s;
}

Sweep& Sweep::formats(std::vector<FormatId> ids) {
  formats_ = std::move(ids);
  return *this;
}

Sweep& Sweep::formats(const std::string& keys) {
  formats_ = parse_format_keys(keys);
  return *this;
}

Sweep& Sweep::nev(std::size_t n) {
  cfg_.nev = n;
  return *this;
}
Sweep& Sweep::buffer(std::size_t b) {
  cfg_.buffer = b;
  return *this;
}
Sweep& Sweep::which(Which w) {
  cfg_.which = w;
  return *this;
}
Sweep& Sweep::restarts(int r) {
  cfg_.max_restarts = r;
  return *this;
}
Sweep& Sweep::reference_restarts(int r) {
  cfg_.reference_max_restarts = r;
  return *this;
}
Sweep& Sweep::seed(std::uint64_t s) {
  cfg_.seed = s;
  return *this;
}
Sweep& Sweep::reference_tier(ReferenceTier tier) {
  cfg_.reference_tier = tier;
  return *this;
}
Sweep& Sweep::reference_tier(const std::string& name) {
  cfg_.reference_tier = reference_tier_from_name(name);
  return *this;
}
Sweep& Sweep::config(const ExperimentConfig& cfg) {
  cfg_ = cfg;
  return *this;
}

Sweep& Sweep::threads(std::size_t n) {
  threads_ = n;
  return *this;
}
Sweep& Sweep::pool(ThreadPool* p) {
  pool_ = p;
  return *this;
}
Sweep& Sweep::cancel(const std::atomic<bool>* flag) {
  cancel_ = flag;
  return *this;
}
Sweep& Sweep::checkpoint(std::string path) {
  checkpoint_ = std::move(path);
  return *this;
}
Sweep& Sweep::resume(bool on) {
  resume_ = on;
  return *this;
}
Sweep& Sweep::cache(std::string directory) {
  cache_dir_ = std::move(directory);
  return *this;
}
Sweep& Sweep::cache(ReferenceCache* shared) {
  shared_cache_ = shared;
  return *this;
}

Sweep& Sweep::sink(std::shared_ptr<ResultSink> s) {
  if (s != nullptr) sinks_.push_back(std::move(s));
  return *this;
}

Sweep& Sweep::progress(std::function<void(const ExperimentProgress&)> fn) {
  progress_ = std::move(fn);
  return *this;
}

namespace {

/// The checkpoint journal needs its directory; create it (mkdir -p
/// semantics, like the engine would) and fail the build-state validation
/// early when it still does not exist — e.g. a path routed through a file.
void require_checkpoint_directory(const std::string& path) {
  ensure_parent_directory(path);
  const std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (parent.empty()) return;  // bare filename: current directory
  std::error_code ec;
  if (!std::filesystem::is_directory(parent, ec))
    throw std::invalid_argument("Sweep: checkpoint directory '" + parent.string() +
                                "' does not exist and cannot be created");
}

}  // namespace

SweepResult Sweep::run() {
  if (corpus_.empty())
    throw std::invalid_argument("Sweep: no matrices; pass a non-empty corpus to Sweep::over");
  if (formats_.empty())
    throw std::invalid_argument("Sweep: no formats; call formats(...) before run()");
  for (std::size_t i = 0; i < formats_.size(); ++i) {
    for (std::size_t j = i + 1; j < formats_.size(); ++j) {
      if (formats_[i] == formats_[j])
        throw std::invalid_argument("Sweep: duplicate format '" +
                                    format_info(formats_[i]).name + "' in format list");
    }
  }
  if (cfg_.nev == 0) throw std::invalid_argument("Sweep: nev must be positive");
  if (resume_ && checkpoint_.empty())
    throw std::invalid_argument("Sweep: resume() requires checkpoint(path)");
  if (!checkpoint_.empty()) require_checkpoint_directory(checkpoint_);

  ScheduleOptions sched;
  sched.threads = threads_;
  sched.pool = pool_;
  sched.cancel = cancel_;
  sched.checkpoint_path = checkpoint_;
  sched.resume = resume_;
  SweepStats stats;
  sched.stats = &stats;

  std::unique_ptr<ReferenceCache> cache;
  if (shared_cache_ != nullptr) {
    sched.ref_cache = shared_cache_;
  } else if (!cache_dir_.empty()) {
    cache = std::make_unique<ReferenceCache>(cache_dir_);
    sched.ref_cache = cache.get();
  }

  // The engine fires on_run/on_reference_failure serialized under one lock,
  // so the per-event sink fan-out below needs no locking of its own.
  std::size_t executed = 0;
  if (!sinks_.empty()) {
    sched.on_run = [this, &executed](const TestMatrix& tm, const FormatRun& run,
                                     const ExperimentProgress& p) {
      ++executed;
      RunEvent e;
      e.matrix = tm.name;
      e.n = tm.n();
      e.nnz = tm.nnz();
      e.run = run;
      e.done = p.done;
      e.total = p.total;
      e.elapsed_seconds = p.elapsed_seconds;
      for (const auto& s : sinks_) s->on_run(e);
    };
    sched.on_reference_failure = [this](const TestMatrix& tm, const std::string& failure,
                                        const ExperimentProgress& p) {
      ReferenceEvent e;
      e.matrix = tm.name;
      e.n = tm.n();
      e.nnz = tm.nnz();
      e.failure = failure;
      e.done = p.done;
      e.total = p.total;
      e.elapsed_seconds = p.elapsed_seconds;
      for (const auto& s : sinks_) s->on_reference(e);
    };
    sched.on_fault = [this](const TestMatrix& tm, const SolveFault& f) {
      FaultEvent e;
      e.matrix = tm.name;
      e.n = tm.n();
      e.nnz = tm.nnz();
      e.stage = f.stage;
      if (std::string(f.stage) == "format") e.format = format_info(f.format).name;
      e.what = f.what;
      for (const auto& s : sinks_) s->on_fault(e);
    };
  } else {
    sched.on_run = [&executed](const TestMatrix&, const FormatRun&, const ExperimentProgress&) {
      ++executed;
    };
  }
  if (progress_) sched.on_progress = progress_;

  SweepMeta meta;
  meta.config = cfg_;
  meta.formats = formats_;
  meta.matrix_count = corpus_.size();
  meta.total_runs = corpus_.size() * formats_.size();
  meta.threads = threads_;
  meta.checkpoint_path = checkpoint_;
  meta.resume = resume_;
  meta.cache_dir = cache_dir_;
  for (const auto& s : sinks_) s->on_meta(meta);

  const auto t0 = std::chrono::steady_clock::now();
  SweepResult out;
  out.results = run_experiment(corpus_, formats_, cfg_, sched);
  out.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  out.stats = stats;
  out.executed_runs = executed;
  if (shared_cache_ != nullptr) {
    out.cache_attached = true;
    out.cache = shared_cache_->stats();
  } else if (cache) {
    out.cache_attached = true;
    out.cache = cache->stats();
  }
  for (const auto& s : sinks_) s->on_done(out);
  return out;
}

}  // namespace mfla::api
