// The fluent sweep facade: the single supported entry point for running
// the paper's multi-format evaluation pipeline.
//
//   auto result = api::Sweep::over(corpus)
//                     .formats("f16,bf16,p16,t16")
//                     .nev(10).buffer(2).restarts(80)
//                     .threads(0)
//                     .checkpoint("out/journal.jsonl")
//                     .cache("out/refcache")
//                     .sink(std::make_shared<api::CsvSink>("out/raw.csv"))
//                     .run();
//
// Sweep subsumes the former three-struct sprawl (ExperimentConfig,
// ScheduleOptions, PartialSchurOptions wiring) behind one builder,
// validates the configuration up front (std::invalid_argument with a
// precise message instead of a half-started sweep), and drives the
// task-parallel engine with the ResultSink event pipeline attached.
// Results are byte-identical to the legacy run_experiment +
// write_results_csv path for the same corpus/config/threads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "api/sinks.hpp"
#include "core/experiment.hpp"
#include "core/reference_cache.hpp"
#include "datasets/test_matrix.hpp"

namespace mfla::api {

/// The paper's evaluation lineup: every registry format except the
/// float128 reference, in presentation order.
[[nodiscard]] std::vector<FormatId> evaluation_formats();

/// Everything one sweep produced.
struct SweepResult {
  std::vector<MatrixResult> results;  ///< dataset order, one entry per matrix
  SweepStats stats;                   ///< engine counters (solves, cache hits, stage seconds)
  bool cache_attached = false;
  RefCacheStats cache;           ///< zeroed unless cache_attached
  double elapsed_seconds = 0.0;  ///< wall-clock of run()
  /// Format runs executed by this invocation (0 when a resume replayed
  /// everything from the journal).
  std::size_t executed_runs = 0;

  [[nodiscard]] const MatrixResult* find(const std::string& matrix) const;
  [[nodiscard]] const FormatRun* find(const std::string& matrix, FormatId format) const;
};

class Sweep {
 public:
  /// Start a builder over a corpus (takes ownership; pass std::move for
  /// large datasets).
  [[nodiscard]] static Sweep over(std::vector<TestMatrix> corpus);

  /// Formats to evaluate, in run order. The string overload parses
  /// comma-separated registry keys ("f16,bf16,t16") and throws
  /// std::invalid_argument on unknown or duplicate keys.
  Sweep& formats(std::vector<FormatId> ids);
  Sweep& formats(const std::string& keys);

  // -- numerical configuration (ExperimentConfig) ---------------------------
  Sweep& nev(std::size_t n);
  Sweep& buffer(std::size_t b);
  Sweep& which(Which w);
  Sweep& restarts(int r);
  Sweep& reference_restarts(int r);
  Sweep& seed(std::uint64_t s);
  /// Reference arithmetic tier (default ReferenceTier::f128_only, today's
  /// behavior). The string overload accepts the CLI spellings "f128_only"
  /// and "dd_first" and throws std::invalid_argument on anything else.
  Sweep& reference_tier(ReferenceTier tier);
  Sweep& reference_tier(const std::string& name);
  Sweep& config(const ExperimentConfig& cfg);  ///< wholesale override

  // -- engine configuration (ScheduleOptions) -------------------------------
  Sweep& threads(std::size_t n);  ///< 0 = hardware concurrency
  /// Run on an externally owned ThreadPool instead of a per-run() pool —
  /// how the serving daemon multiplexes many tenant sweeps over one pool.
  /// Overrides threads(); results stay bit-identical either way.
  Sweep& pool(ThreadPool* p);
  /// Cooperative cancellation flag (not owned). Once it reads true, queued
  /// work is skipped (SweepStats::canceled_runs) while in-flight runs
  /// finish and are journaled — the drain path shared by the daemon's
  /// SIGTERM handling and the CLI's interrupt handling.
  Sweep& cancel(const std::atomic<bool>* flag);
  Sweep& checkpoint(std::string path);
  Sweep& resume(bool on = true);
  Sweep& cache(std::string directory);
  /// Attach an externally owned ReferenceCache (shared across concurrent
  /// sweeps; it is concurrency-safe). Overrides cache(directory).
  Sweep& cache(ReferenceCache* shared);

  // -- observers ------------------------------------------------------------
  Sweep& sink(std::shared_ptr<ResultSink> s);
  Sweep& progress(std::function<void(const ExperimentProgress&)> fn);

  /// Validate and run. Throws std::invalid_argument on builder-state
  /// errors (empty corpus/formats, duplicate formats, nev == 0, resume
  /// without checkpoint, checkpoint directory that cannot exist) before
  /// any work starts; engine errors (journal meta mismatch, I/O failures)
  /// propagate as std::runtime_error.
  [[nodiscard]] SweepResult run();

  // Introspection (used by tests and the CLI).
  [[nodiscard]] const ExperimentConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const std::vector<FormatId>& format_list() const noexcept { return formats_; }
  [[nodiscard]] const std::vector<TestMatrix>& corpus() const noexcept { return corpus_; }

 private:
  Sweep() = default;

  std::vector<TestMatrix> corpus_;
  std::vector<FormatId> formats_;
  ExperimentConfig cfg_;
  std::size_t threads_ = 0;
  ThreadPool* pool_ = nullptr;
  const std::atomic<bool>* cancel_ = nullptr;
  std::string checkpoint_;
  bool resume_ = false;
  std::string cache_dir_;
  ReferenceCache* shared_cache_ = nullptr;
  std::vector<std::shared_ptr<ResultSink>> sinks_;
  std::function<void(const ExperimentProgress&)> progress_;
};

}  // namespace mfla::api
