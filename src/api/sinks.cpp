#include "api/sinks.hpp"

#include <unistd.h>

#include <utility>

#include "api/sweep.hpp"

namespace mfla::api {

// ---------------------------------------------------------------------------
// MultiSink
// ---------------------------------------------------------------------------

MultiSink::MultiSink(std::vector<std::shared_ptr<ResultSink>> sinks)
    : sinks_(std::move(sinks)) {}

MultiSink& MultiSink::add(std::shared_ptr<ResultSink> sink) {
  sinks_.push_back(std::move(sink));
  return *this;
}

void MultiSink::on_meta(const SweepMeta& m) {
  for (const auto& s : sinks_) s->on_meta(m);
}
void MultiSink::on_run(const RunEvent& e) {
  for (const auto& s : sinks_) s->on_run(e);
}
void MultiSink::on_reference(const ReferenceEvent& e) {
  for (const auto& s : sinks_) s->on_reference(e);
}
void MultiSink::on_fault(const FaultEvent& e) {
  for (const auto& s : sinks_) s->on_fault(e);
}
void MultiSink::on_done(const SweepResult& r) {
  for (const auto& s : sinks_) s->on_done(r);
}

// ---------------------------------------------------------------------------
// CsvSink
// ---------------------------------------------------------------------------

CsvSink::CsvSink(std::string path) : path_(std::move(path)) {}

void CsvSink::on_done(const SweepResult& r) {
  if (r.stats.canceled_runs != 0) {
    skipped_ = true;
    return;
  }
  write_results_csv(path_, r.results);
}

// ---------------------------------------------------------------------------
// JournalSink
// ---------------------------------------------------------------------------

JournalSink::JournalSink(std::string path)
    : path_(std::move(path)),
      writer_(std::make_unique<JournalWriter>(path_, /*truncate=*/true)) {}

void JournalSink::on_meta(const SweepMeta& m) {
  writer_->write_meta(make_journal_meta(m.config, m.formats, m.matrix_count));
}

void JournalSink::on_run(const RunEvent& e) {
  writer_->write_run(e.matrix, e.n, e.nnz, e.run);
}

void JournalSink::on_reference(const ReferenceEvent& e) {
  writer_->write_reference_failure(e.matrix, e.n, e.nnz, e.failure);
}

// ---------------------------------------------------------------------------
// MemorySink
// ---------------------------------------------------------------------------

void MemorySink::on_meta(const SweepMeta& m) {
  std::lock_guard<std::mutex> lk(mtx_);
  order_.push_back(EventKind::meta);
  has_meta_ = true;
  meta_ = m;
}

void MemorySink::on_run(const RunEvent& e) {
  std::lock_guard<std::mutex> lk(mtx_);
  order_.push_back(EventKind::run);
  runs_.push_back(e);
}

void MemorySink::on_reference(const ReferenceEvent& e) {
  std::lock_guard<std::mutex> lk(mtx_);
  order_.push_back(EventKind::reference);
  references_.push_back(e);
}

void MemorySink::on_fault(const FaultEvent& e) {
  std::lock_guard<std::mutex> lk(mtx_);
  order_.push_back(EventKind::fault);
  faults_.push_back(e);
}

void MemorySink::on_done(const SweepResult& r) {
  std::lock_guard<std::mutex> lk(mtx_);
  order_.push_back(EventKind::done);
  done_ = true;
  results_ = r.results;
}

std::vector<MemorySink::EventKind> MemorySink::order() const {
  std::lock_guard<std::mutex> lk(mtx_);
  return order_;
}
bool MemorySink::has_meta() const {
  std::lock_guard<std::mutex> lk(mtx_);
  return has_meta_;
}
SweepMeta MemorySink::meta() const {
  std::lock_guard<std::mutex> lk(mtx_);
  return meta_;
}
std::vector<RunEvent> MemorySink::runs() const {
  std::lock_guard<std::mutex> lk(mtx_);
  return runs_;
}
std::vector<ReferenceEvent> MemorySink::references() const {
  std::lock_guard<std::mutex> lk(mtx_);
  return references_;
}
std::vector<FaultEvent> MemorySink::faults() const {
  std::lock_guard<std::mutex> lk(mtx_);
  return faults_;
}
bool MemorySink::done() const {
  std::lock_guard<std::mutex> lk(mtx_);
  return done_;
}
std::vector<MatrixResult> MemorySink::results() const {
  std::lock_guard<std::mutex> lk(mtx_);
  return results_;
}

// ---------------------------------------------------------------------------
// ProgressSink
// ---------------------------------------------------------------------------

namespace {

std::string format_eta(double seconds) {
  if (seconds < 0) seconds = 0;
  const auto total = static_cast<long long>(seconds + 0.5);
  char buf[32];
  if (total >= 3600) {
    std::snprintf(buf, sizeof buf, "%lldh%02lldm", total / 3600, (total % 3600) / 60);
  } else if (total >= 60) {
    std::snprintf(buf, sizeof buf, "%lldm%02llds", total / 60, total % 60);
  } else {
    std::snprintf(buf, sizeof buf, "%llds", total);
  }
  return buf;
}

}  // namespace

ProgressSink::ProgressSink(std::FILE* stream, Mode mode) : stream_(stream) {
  switch (mode) {
    case Mode::tty: tty_ = true; break;
    case Mode::plain: tty_ = false; break;
    case Mode::auto_detect: tty_ = ::isatty(::fileno(stream_)) == 1; break;
  }
}

void ProgressSink::on_run(const RunEvent& e) { render(e.done, e.total, e.elapsed_seconds); }

void ProgressSink::on_reference(const ReferenceEvent& e) {
  render(e.done, e.total, e.elapsed_seconds);
}

void ProgressSink::render(std::size_t done, std::size_t total, double elapsed_seconds) {
  if (total == 0) return;
  const double frac = static_cast<double>(done) / static_cast<double>(total);
  if (!tty_) {
    // Non-interactive stream: one plain line per 10% milestone (plus the
    // final one), never a carriage return.
    const std::size_t decile = (10 * done) / total;
    if (decile <= last_decile_ && done != total) return;
    last_decile_ = decile;
  }
  std::string line = "runs " + std::to_string(done) + "/" + std::to_string(total);
  char pct[16];
  std::snprintf(pct, sizeof pct, " (%3.0f%%)", 100.0 * frac);
  line += pct;
  line += "  elapsed " + format_eta(elapsed_seconds);
  if (done > 0 && done < total) {
    const double eta =
        elapsed_seconds * static_cast<double>(total - done) / static_cast<double>(done);
    line += "  eta " + format_eta(eta);
  }
  if (tty_) {
    std::fprintf(stream_, "\r%-60s", line.c_str());
    if (done == total) std::fprintf(stream_, "\n");
  } else {
    std::fprintf(stream_, "%s\n", line.c_str());
  }
  std::fflush(stream_);
}

}  // namespace mfla::api
