// The ResultSink pipeline: one composable observer interface behind every
// output path of a sweep.
//
// A sweep emits a typed event stream — `on_meta` once before work starts,
// `on_run` per format run completed by this invocation, `on_reference` per
// failed float128 reference solve, `on_fault` per solver abort the engine's
// solve guard converted into a structured failure, `on_done` once with the
// assembled SweepResult. The engine serializes on_run/on_reference/on_fault
// under one lock, so sinks observe a monotonically increasing `done` count
// and never run concurrently with themselves or each other.
//
// Provided sinks: CsvSink (raw results CSV, byte-identical to
// write_results_csv), JournalSink (JSONL event journal in the checkpoint
// format), MemorySink (records everything, for tests and in-process
// consumers), ProgressSink (stderr progress line with ETA), MultiSink
// (fan-out). Sweep::sink() already fans out, so MultiSink is for nesting
// pipelines inside code that only accepts a single sink.
#pragma once

#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "arith/format_registry.hpp"
#include "core/experiment.hpp"
#include "core/results_io.hpp"

namespace mfla::api {

struct SweepResult;  // api/sweep.hpp

/// Sweep identity, delivered once before any run event.
struct SweepMeta {
  ExperimentConfig config;
  std::vector<FormatId> formats;
  std::size_t matrix_count = 0;
  /// Size of the whole sweep (matrix_count * formats). With resume, fewer
  /// runs may execute; run events carry the per-invocation total.
  std::size_t total_runs = 0;
  std::size_t threads = 0;  ///< 0 = hardware concurrency
  std::string checkpoint_path;
  bool resume = false;
  std::string cache_dir;
};

/// One completed (matrix, format) evaluation. Journal-replayed runs are not
/// re-announced; `done`/`total` count this invocation's work only.
struct RunEvent {
  std::string matrix;
  std::size_t n = 0;
  std::size_t nnz = 0;
  FormatRun run;
  std::size_t done = 0;
  std::size_t total = 0;
  double elapsed_seconds = 0.0;
};

/// A failed reference solve; the matrix is retired and its pending format
/// runs are already counted into `done`.
struct ReferenceEvent {
  std::string matrix;
  std::size_t n = 0;
  std::size_t nnz = 0;
  std::string failure;
  std::size_t done = 0;
  std::size_t total = 0;
  double elapsed_seconds = 0.0;
};

/// The engine's solve guard caught a solver abort (exception) and recorded
/// it instead of propagating. For stage "format" the structured
/// RunOutcome::fault run still arrives through on_run right after; for
/// stage "reference" the matrix retires through on_reference.
struct FaultEvent {
  std::string matrix;
  std::size_t n = 0;
  std::size_t nnz = 0;
  std::string stage;   // "format" | "reference"
  std::string format;  // format name; empty for stage "reference"
  std::string what;    // captured exception message
};

class ResultSink {
 public:
  virtual ~ResultSink() = default;
  virtual void on_meta(const SweepMeta&) {}
  virtual void on_run(const RunEvent&) {}
  virtual void on_reference(const ReferenceEvent&) {}
  virtual void on_fault(const FaultEvent&) {}
  virtual void on_done(const SweepResult&) {}
};

/// Fan every event out to a list of child sinks, in registration order.
class MultiSink final : public ResultSink {
 public:
  MultiSink() = default;
  explicit MultiSink(std::vector<std::shared_ptr<ResultSink>> sinks);
  MultiSink& add(std::shared_ptr<ResultSink> sink);

  void on_meta(const SweepMeta& m) override;
  void on_run(const RunEvent& e) override;
  void on_reference(const ReferenceEvent& e) override;
  void on_fault(const FaultEvent& e) override;
  void on_done(const SweepResult& r) override;

 private:
  std::vector<std::shared_ptr<ResultSink>> sinks_;
};

/// Writes the raw per-run results CSV at on_done — byte-identical to
/// write_results_csv over the same results. A canceled sweep
/// (SweepStats::canceled_runs != 0) writes nothing: a partial CSV is
/// indistinguishable from a complete one, so the only durable artifact of
/// an interrupted sweep is its resumable checkpoint journal.
class CsvSink final : public ResultSink {
 public:
  explicit CsvSink(std::string path);
  void on_done(const SweepResult& r) override;
  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  /// True when on_done skipped the write because the sweep was canceled.
  [[nodiscard]] bool skipped_incomplete() const noexcept { return skipped_; }

 private:
  std::string path_;
  bool skipped_ = false;
};

/// Streams the event log as a JSONL journal in the checkpoint format
/// (meta / run / reference lines, flushed per event). Unlike
/// Sweep::checkpoint() — which journals through the engine and powers
/// resume — this sink just records; it always truncates its file.
class JournalSink final : public ResultSink {
 public:
  explicit JournalSink(std::string path);
  void on_meta(const SweepMeta& m) override;
  void on_run(const RunEvent& e) override;
  void on_reference(const ReferenceEvent& e) override;
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  std::unique_ptr<JournalWriter> writer_;
};

/// Records every event in arrival order; for tests and in-process
/// consumers. Internally locked, so it is safe even outside the engine's
/// serialization guarantee.
class MemorySink final : public ResultSink {
 public:
  enum class EventKind { meta, run, reference, fault, done };

  void on_meta(const SweepMeta& m) override;
  void on_run(const RunEvent& e) override;
  void on_reference(const ReferenceEvent& e) override;
  void on_fault(const FaultEvent& e) override;
  void on_done(const SweepResult& r) override;

  [[nodiscard]] std::vector<EventKind> order() const;
  [[nodiscard]] bool has_meta() const;
  [[nodiscard]] SweepMeta meta() const;
  [[nodiscard]] std::vector<RunEvent> runs() const;
  [[nodiscard]] std::vector<ReferenceEvent> references() const;
  [[nodiscard]] std::vector<FaultEvent> faults() const;
  [[nodiscard]] bool done() const;
  [[nodiscard]] std::vector<MatrixResult> results() const;

 private:
  mutable std::mutex mtx_;
  std::vector<EventKind> order_;
  bool has_meta_ = false;
  SweepMeta meta_;
  std::vector<RunEvent> runs_;
  std::vector<ReferenceEvent> references_;
  std::vector<FaultEvent> faults_;
  bool done_ = false;
  std::vector<MatrixResult> results_;
};

/// Renders the classic `runs done/total (pct) elapsed eta` line. On a TTY
/// it overwrites in place (carriage return) and finishes with a newline;
/// on anything else — a CI log, a pipe, a redirected file — it emits one
/// plain line per 10% milestone instead, so logs don't fill up with
/// \r-spam.
class ProgressSink final : public ResultSink {
 public:
  /// How to render. Auto (the default) asks isatty() about the stream.
  enum class Mode { auto_detect, tty, plain };

  explicit ProgressSink(std::FILE* stream = stderr, Mode mode = Mode::auto_detect);
  void on_run(const RunEvent& e) override;
  void on_reference(const ReferenceEvent& e) override;

 private:
  void render(std::size_t done, std::size_t total, double elapsed_seconds);

  std::FILE* stream_;
  bool tty_ = false;
  std::size_t last_decile_ = 0;  // plain mode: highest 10% milestone printed
};

}  // namespace mfla::api
