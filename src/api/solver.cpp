#include "api/solver.hpp"

#include <stdexcept>
#include <utility>

#include "arith/quad.hpp"
#include "core/lanczos.hpp"

namespace mfla::api {

const char* solver_kind_name(SolverKind kind) noexcept {
  switch (kind) {
    case SolverKind::krylov_schur: return "krylov_schur";
    case SolverKind::lanczos: return "lanczos";
  }
  return "unknown";
}

Solver::Solver(FormatId format, SolverKind kind, SolverOptions opts)
    : format_(format), kind_(kind), opts_(std::move(opts)) {}

Solver Solver::create(FormatId format, SolverKind kind, SolverOptions opts) {
  (void)format_info(format);  // throws std::invalid_argument on unknown ids
  if (kind != SolverKind::krylov_schur && kind != SolverKind::lanczos)
    throw std::invalid_argument("Solver::create: unknown SolverKind");
  if (opts.nev == 0) throw std::invalid_argument("Solver::create: nev must be positive");
  return Solver(format, kind, std::move(opts));
}

namespace {

template <typename T>
EigenResult erase_result(const PartialSchurResult<T>& r) {
  EigenResult out;
  out.converged = r.converged;
  out.nconverged = r.nconverged;
  out.restarts = r.restarts;
  out.matvecs = r.matvecs;
  out.failure = r.failure;
  out.eigenvalues = r.eig_re;
  out.eigenvalues_im = r.eig_im;
  out.vectors = DenseMatrix<double>(r.q.rows(), r.q.cols());
  for (std::size_t j = 0; j < r.q.cols(); ++j)
    for (std::size_t i = 0; i < r.q.rows(); ++i)
      out.vectors(i, j) = NumTraits<T>::to_double(r.q(i, j));
  out.rayleigh = DenseMatrix<double>(r.r.rows(), r.r.cols());
  for (std::size_t j = 0; j < r.r.cols(); ++j)
    for (std::size_t i = 0; i < r.r.rows(); ++i)
      out.rayleigh(i, j) = NumTraits<T>::to_double(r.r(i, j));
  return out;
}

}  // namespace

EigenResult Solver::solve(const CsrMatrix<double>& a) const {
  PartialSchurOptions ps;
  ps.nev = opts_.nev;
  ps.which = opts_.which;
  ps.tolerance = opts_.tolerance;  // 0 falls through to the format default
  ps.mindim = opts_.mindim;
  ps.maxdim = opts_.maxdim;
  ps.max_restarts = opts_.max_restarts;
  ps.seed = opts_.seed;
  ps.start_vector = opts_.start_vector.empty() ? nullptr : &opts_.start_vector;
  return dispatch_format(format_, [&](auto tag) {
    using T = typename decltype(tag)::type;
    const CsrMatrix<T> at = a.convert<T>();
    const auto r =
        kind_ == SolverKind::lanczos ? lanczos_eigs<T>(at, ps) : partialschur<T>(at, ps);
    return erase_result<T>(r);
  });
}

}  // namespace mfla::api
