// Runtime-polymorphic solver handles over the template solver cores.
//
// `Solver::create(FormatId, SolverKind, SolverOptions)` wraps the
// `dispatch_format` template machinery so callers pick the arithmetic
// format, the algorithm (Krylov-Schur Arnoldi vs thick-restart Lanczos),
// the Ritz selection and the tolerance at runtime without ever naming a
// scalar type. The matrix stays in double on the caller's side; the handle
// converts to the target format internally — exactly what
// `a.convert<T>()` + `partialschur<T>` / `lanczos_eigs<T>` would do, so
// results are bit-identical to the template path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "arith/format_registry.hpp"
#include "core/krylov_schur.hpp"
#include "dense/matrix.hpp"
#include "sparse/csr.hpp"

namespace mfla::api {

/// Which solver core runs behind the handle.
enum class SolverKind {
  krylov_schur,  ///< partialschur(): IRAM with Krylov-Schur restarts (the paper's solver)
  lanczos,       ///< lanczos_eigs(): thick-restart Lanczos (symmetric specialization)
};

[[nodiscard]] const char* solver_kind_name(SolverKind kind) noexcept;

/// Runtime solver configuration; mirrors PartialSchurOptions but owns its
/// start vector (no dangling pointers across calls).
struct SolverOptions {
  std::size_t nev = 10;
  Which which = Which::largest_magnitude;
  double tolerance = 0.0;  ///< 0: the format's default per-width tolerance
  std::size_t mindim = 0;  ///< 0: max(10, nev)
  std::size_t maxdim = 0;  ///< 0: max(20, 2*nev)
  int max_restarts = 100;
  std::uint64_t seed = 0x1234u;
  /// Unit start vector shared across formats for comparability; empty
  /// means a seeded random vector.
  std::vector<double> start_vector;
};

/// Type-erased solve outcome: everything is converted to double (the
/// arithmetic under study happened inside the solve; conversion is
/// postprocessing, same as the experiment pipeline does).
struct EigenResult {
  bool converged = false;
  std::size_t nconverged = 0;
  int restarts = 0;
  std::size_t matvecs = 0;
  std::string failure;              ///< non-empty on hard failure / no convergence
  std::vector<double> eigenvalues;  ///< real parts, diagonal order
  std::vector<double> eigenvalues_im;
  DenseMatrix<double> vectors;   ///< n x k Schur/eigen vectors
  DenseMatrix<double> rayleigh;  ///< k x k quasi-triangular Rayleigh block
};

class Solver {
 public:
  /// Build a handle for `format` running `kind`. Throws
  /// std::invalid_argument for an unknown format or kind.
  [[nodiscard]] static Solver create(FormatId format, SolverKind kind, SolverOptions opts = {});

  /// Convert `a` to the handle's format and solve. Thread-safe (const).
  [[nodiscard]] EigenResult solve(const CsrMatrix<double>& a) const;

  [[nodiscard]] FormatId format() const noexcept { return format_; }
  [[nodiscard]] SolverKind kind() const noexcept { return kind_; }
  /// Read-only: handles are immutable after create() so its validation
  /// cannot be bypassed — build a new handle to change options.
  [[nodiscard]] const SolverOptions& options() const noexcept { return opts_; }

 private:
  Solver(FormatId format, SolverKind kind, SolverOptions opts);

  FormatId format_;
  SolverKind kind_;
  SolverOptions opts_;
};

}  // namespace mfla::api
