// The mfla::api facade — the single supported entry point of the library.
//
// Include this header from applications, tools and examples:
//
//   * api::Sweep       — fluent builder over the multi-format evaluation
//                        pipeline (api/sweep.hpp)
//   * api::Solver      — runtime format/algorithm-polymorphic solver
//                        handles (api/solver.hpp)
//   * api::ResultSink  — composable output pipeline: Csv / Journal /
//                        Memory / Progress / Multi sinks (api/sinks.hpp)
//
// The underlying library surface (formats, sparse/dense containers,
// corpora, graph generators, reports) is re-exported via mfla.hpp so one
// include serves a whole driver. Deep solver internals (partialschur,
// run_experiment) remain reachable for power users but are deprecated as
// entry points; see docs/API.md for the migration table.
#pragma once

#include "api/sinks.hpp"
#include "api/solver.hpp"
#include "api/sweep.hpp"
#include "mfla.hpp"
