// Real Schur decomposition tests: Francis QR vs the Jacobi oracle,
// quasi-triangular structure, reordering (1x1 and 2x2 block swaps),
// eigenvector extraction, and low-precision orthogonality regressions.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "arith/posit.hpp"
#include "arith/takum.hpp"
#include "kernels/vector_ops.hpp"
#include "dense/eigvec.hpp"
#include "dense/hessenberg.hpp"
#include "dense/jacobi.hpp"
#include "dense/schur.hpp"
#include "dense/schur_reorder.hpp"
#include "support/rng.hpp"

namespace mfla {
namespace {

DenseMatrix<double> random_symmetric(std::size_t n, Rng& rng) {
  DenseMatrix<double> m(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j <= i; ++j) {
      m(i, j) = rng.normal();
      m(j, i) = m(i, j);
    }
  return m;
}

DenseMatrix<double> random_general(std::size_t n, Rng& rng) {
  DenseMatrix<double> m(n, n);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < n; ++i) m(i, j) = rng.normal();
  return m;
}

double residual(const DenseMatrix<double>& a, const DenseMatrix<double>& q,
                const DenseMatrix<double>& t) {
  const auto aq = kernels::matmul(a, q);
  const auto qt = kernels::matmul(q, t);
  double r = 0;
  for (std::size_t j = 0; j < a.cols(); ++j)
    for (std::size_t i = 0; i < a.rows(); ++i) r = std::max(r, std::abs(aq(i, j) - qt(i, j)));
  return r;
}

double orth_defect(const DenseMatrix<double>& q) {
  const auto qtq = kernels::matmul_tn(q, q);
  double r = 0;
  for (std::size_t j = 0; j < q.cols(); ++j)
    for (std::size_t i = 0; i < q.cols(); ++i)
      r = std::max(r, std::abs(qtq(i, j) - (i == j ? 1.0 : 0.0)));
  return r;
}

struct SchurPack {
  DenseMatrix<double> t, q;
};

SchurPack full_schur(const DenseMatrix<double>& a) {
  SchurPack p{a, DenseMatrix<double>::identity(a.rows())};
  EXPECT_TRUE(hessenberg_reduce(p.t, p.q));
  const auto st = hessenberg_to_schur(p.t, p.q);
  EXPECT_TRUE(st.ok);
  return p;
}

class SchurSymmetricSizes : public ::testing::TestWithParam<int> {};

TEST_P(SchurSymmetricSizes, MatchesJacobi) {
  const auto n = static_cast<std::size_t>(GetParam());
  Rng rng(100 + GetParam());
  const auto a = random_symmetric(n, rng);
  const auto p = full_schur(a);
  EXPECT_LT(residual(a, p.q, p.t), 1e-12 * static_cast<double>(n));
  EXPECT_LT(orth_defect(p.q), 1e-13 * static_cast<double>(n));
  // Eigenvalues match Jacobi.
  std::vector<double> re, im;
  schur_eigenvalues(p.t, re, im);
  for (const double v : im) EXPECT_NEAR(v, 0.0, 1e-10);
  auto aj = a;
  DenseMatrix<double> vj;
  ASSERT_GT(jacobi_eigen(aj, vj), 0);
  std::vector<double> ej(n);
  for (std::size_t i = 0; i < n; ++i) ej[i] = aj(i, i);
  std::sort(re.begin(), re.end());
  std::sort(ej.begin(), ej.end());
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(re[i], ej[i], 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SchurSymmetricSizes, ::testing::Values(2, 3, 4, 6, 9, 16, 24, 32));

class SchurGeneralSizes : public ::testing::TestWithParam<int> {};

TEST_P(SchurGeneralSizes, QuasiTriangularDecomposition) {
  const auto n = static_cast<std::size_t>(GetParam());
  Rng rng(200 + GetParam());
  const auto a = random_general(n, rng);
  const auto p = full_schur(a);
  EXPECT_LT(residual(a, p.q, p.t), 1e-11 * static_cast<double>(n));
  EXPECT_LT(orth_defect(p.q), 1e-12 * static_cast<double>(n));
  // Quasi-triangular: nothing below the first subdiagonal; no adjacent
  // 2x2 blocks overlapping.
  for (std::size_t j = 0; j + 2 < n; ++j)
    for (std::size_t i = j + 2; i < n; ++i) EXPECT_DOUBLE_EQ(p.t(i, j), 0.0);
  for (std::size_t i = 0; i + 2 < n; ++i) {
    if (p.t(i + 1, i) != 0.0) {
      EXPECT_DOUBLE_EQ(p.t(i + 2, i + 1), 0.0);
    }
  }
  // Complex eigenvalues come in conjugate pairs; trace preserved.
  std::vector<double> re, im;
  schur_eigenvalues(p.t, re, im);
  double tr_t = 0, tr_a = 0, im_sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    tr_t += re[i];
    tr_a += a(i, i);
    im_sum += im[i];
  }
  EXPECT_NEAR(tr_t, tr_a, 1e-9);
  EXPECT_NEAR(im_sum, 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SchurGeneralSizes, ::testing::Values(2, 3, 5, 8, 12, 20, 30));

TEST(Schur, KnownRotationEigenvalues) {
  // [[cos, -sin],[sin, cos]] scaled by r has eigenvalues r e^{±iθ}.
  DenseMatrix<double> a(2, 2);
  const double th = 0.7, r = 2.0;
  a(0, 0) = r * std::cos(th);
  a(0, 1) = -r * std::sin(th);
  a(1, 0) = r * std::sin(th);
  a(1, 1) = r * std::cos(th);
  auto p = full_schur(a);
  std::vector<double> re, im;
  schur_eigenvalues(p.t, re, im);
  EXPECT_NEAR(re[0], r * std::cos(th), 1e-12);
  EXPECT_NEAR(std::abs(im[0]), r * std::sin(th), 1e-12);
  EXPECT_NEAR(im[0] + im[1], 0.0, 1e-13);
}

TEST(Schur, DefectiveJordanBlock) {
  // [[1,1],[0,1]] (defective): must still produce a valid Schur form.
  DenseMatrix<double> a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 1;
  a(1, 1) = 1;
  auto p = full_schur(a);
  std::vector<double> re, im;
  schur_eigenvalues(p.t, re, im);
  EXPECT_NEAR(re[0], 1.0, 1e-8);
  EXPECT_NEAR(re[1], 1.0, 1e-8);
}

// ---- Reordering -----------------------------------------------------------

TEST(SchurReorder, SortsRealEigenvaluesDescending) {
  Rng rng(300);
  const auto a = random_symmetric(14, rng);
  auto p = full_schur(a);
  reorder_schur<double>(p.t, p.q, [](const SchurBlock& x, const SchurBlock& y) {
    return std::abs(x.re) > std::abs(y.re);
  });
  EXPECT_LT(residual(a, p.q, p.t), 1e-11);
  EXPECT_LT(orth_defect(p.q), 1e-12);
  std::vector<double> re, im;
  schur_eigenvalues(p.t, re, im);
  for (std::size_t i = 0; i + 1 < re.size(); ++i)
    EXPECT_GE(std::abs(re[i]), std::abs(re[i + 1]) - 1e-10);
}

TEST(SchurReorder, MovesComplexPairs) {
  Rng rng(301);
  const auto a = random_general(12, rng);
  auto p = full_schur(a);
  reorder_schur<double>(p.t, p.q, [](const SchurBlock& x, const SchurBlock& y) {
    return std::hypot(x.re, x.im) > std::hypot(y.re, y.im);
  });
  EXPECT_LT(residual(a, p.q, p.t), 1e-10);
  EXPECT_LT(orth_defect(p.q), 1e-11);
  const auto blocks = schur_blocks(p.t);
  for (std::size_t b = 0; b + 1 < blocks.size(); ++b) {
    EXPECT_GE(std::hypot(blocks[b].re, blocks[b].im),
              std::hypot(blocks[b + 1].re, blocks[b + 1].im) - 1e-9);
  }
}

TEST(SchurReorder, SmallestFirstOrdering) {
  Rng rng(302);
  const auto a = random_symmetric(10, rng);
  auto p = full_schur(a);
  reorder_schur<double>(p.t, p.q, [](const SchurBlock& x, const SchurBlock& y) {
    return std::abs(x.re) < std::abs(y.re);
  });
  std::vector<double> re, im;
  schur_eigenvalues(p.t, re, im);
  for (std::size_t i = 0; i + 1 < re.size(); ++i)
    EXPECT_LE(std::abs(re[i]), std::abs(re[i + 1]) + 1e-10);
  EXPECT_LT(residual(a, p.q, p.t), 1e-11);
}

// ---- Eigenvectors ------------------------------------------------------------

TEST(SchurEigvec, ResidualSmallForRealEigenvalues) {
  Rng rng(303);
  const auto a = random_symmetric(12, rng);
  auto p = full_schur(a);
  std::vector<double> re, im;
  schur_eigenvalues(p.t, re, im);
  for (std::size_t k = 0; k < 12; ++k) {
    const auto x = schur_eigenvector(p.t, p.q, k);
    ASSERT_EQ(x.size(), 12u);
    std::vector<double> ax(12);
    kernels::gemv(a, x.data(), ax.data());
    for (std::size_t i = 0; i < 12; ++i) EXPECT_NEAR(ax[i], re[k] * x[i], 1e-9);
  }
}

TEST(SchurEigvec, SkipsComplexPairs) {
  Rng rng(304);
  DenseMatrix<double> a(2, 2);
  a(0, 0) = 0;
  a(0, 1) = -1;
  a(1, 0) = 1;
  a(1, 1) = 0;  // eigenvalues ±i
  auto p = full_schur(a);
  EXPECT_TRUE(schur_eigenvector(p.t, p.q, 0).empty());
}

// ---- Low-precision orthogonality regression ------------------------------------
// The dlarfg-style reflector must keep Q orthogonal in tapered formats
// (the textbook beta = 2 v0^2/(sigma + v0^2) variant collapses in posit32:
// v0^2 lands at the square of a small scale where posits carry few bits).

template <typename T>
double low_precision_orth(std::size_t n, unsigned seed) {
  Rng rng(seed);
  DenseMatrix<T> h(n, n);
  // Symmetric tridiagonal-ish Hessenberg with small subdiagonals, the shape
  // that triggered the regression.
  for (std::size_t i = 0; i < n; ++i) {
    h(i, i) = NumTraits<T>::from_double(1.0 + 0.3 * rng.normal());
    if (i + 1 < n) {
      const double s = rng.log_uniform(-6.0, -0.5);
      h(i, i + 1) = NumTraits<T>::from_double(s);
      h(i + 1, i) = NumTraits<T>::from_double(s);
    }
  }
  auto q = DenseMatrix<T>::identity(n);
  const auto st = hessenberg_to_schur(h, q);
  EXPECT_TRUE(st.ok);
  double defect = 0;
  for (std::size_t a = 0; a < n; ++a)
    for (std::size_t b = 0; b <= a; ++b) {
      double d = 0;
      for (std::size_t i = 0; i < n; ++i)
        d += NumTraits<T>::to_double(q(i, a)) * NumTraits<T>::to_double(q(i, b));
      if (a == b) d -= 1.0;
      defect = std::max(defect, std::abs(d));
    }
  return defect;
}

TEST(SchurLowPrecision, Posit32KeepsQOrthogonal) {
  EXPECT_LT(low_precision_orth<Posit32>(20, 401), 1e-4);
}
TEST(SchurLowPrecision, Takum32KeepsQOrthogonal) {
  EXPECT_LT(low_precision_orth<Takum32>(20, 402), 1e-4);
}
TEST(SchurLowPrecision, Posit64KeepsQOrthogonal) {
  EXPECT_LT(low_precision_orth<Posit64>(20, 403), 1e-12);
}
TEST(SchurLowPrecision, Float32Baseline) {
  EXPECT_LT(low_precision_orth<float>(20, 404), 1e-4);
}

}  // namespace
}  // namespace mfla
