// mfla::api facade tests: SweepBuilder-vs-legacy byte identity, the
// ResultSink event pipeline (ordering and serialization under threads=N,
// JournalSink vs engine journal), registry-driven format keys, and
// invalid-builder-state errors.
//
// The legacy cross-checks intentionally drive the deprecated free-function
// surface.
#define MFLA_ALLOW_DEPRECATED
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "support/failpoint.hpp"

namespace mfla {
namespace {

std::vector<TestMatrix> api_dataset() {
  std::vector<TestMatrix> ds;
  Rng r1(9101), r2(9102), r3(9103);
  ds.push_back(make_test_matrix("api_er_a", "social", "soc",
                                graph_laplacian_pipeline(erdos_renyi(44, 0.15, r1))));
  ds.push_back(make_test_matrix("api_sbm_b", "social", "soc",
                                graph_laplacian_pipeline(stochastic_block(48, 2, 0.35, 0.06, r2))));
  ds.push_back(make_test_matrix("api_er_c", "biological", "protein",
                                graph_laplacian_pipeline(erdos_renyi(52, 0.12, r3))));
  return ds;
}

std::vector<FormatId> api_formats() {
  return {FormatId::float32, FormatId::takum16, FormatId::float64};
}

ExperimentConfig api_config() {
  ExperimentConfig cfg;
  cfg.nev = 6;
  cfg.buffer = 2;
  cfg.max_restarts = 80;
  return cfg;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string csv_of(const std::vector<MatrixResult>& results, const std::string& tag) {
  const std::string path = "test_out/api_" + tag + ".csv";
  write_results_csv(path, results);
  std::string data = slurp(path);
  std::remove(path.c_str());
  return data;
}

// ---------------------------------------------------------------------------
// Format registry keys
// ---------------------------------------------------------------------------

TEST(FormatRegistry, KeyRoundTripsForEveryFormat) {
  for (const auto& f : all_formats()) {
    EXPECT_EQ(format_key(f.id), f.key);
    EXPECT_EQ(format_from_key(f.key), f.id);
    EXPECT_EQ(format_from_name(f.name), f.id);
  }
}

TEST(FormatRegistry, UnknownKeyListsValidOnes) {
  try {
    (void)format_from_key("zzz");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("zzz"), std::string::npos);
    // The message must enumerate the selectable keys (dd and f128 are
    // reference arithmetics, deliberately not advertised).
    for (const auto& f : all_formats()) {
      if (f.reference_only) continue;
      EXPECT_NE(msg.find(f.key), std::string::npos) << "key " << f.key << " not listed";
    }
  }
}

TEST(FormatRegistry, ParseFormatKeys) {
  const auto ids = parse_format_keys("f16,bf16,t16");
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[0], FormatId::float16);
  EXPECT_EQ(ids[1], FormatId::bfloat16);
  EXPECT_EQ(ids[2], FormatId::takum16);
  EXPECT_THROW((void)parse_format_keys("f16,zzz"), std::invalid_argument);
  EXPECT_THROW((void)parse_format_keys("f16,f16"), std::invalid_argument);
  EXPECT_THROW((void)parse_format_keys(""), std::invalid_argument);
  EXPECT_THROW((void)parse_format_keys(",,"), std::invalid_argument);
  // The reference arithmetics are not formats under evaluation.
  EXPECT_THROW((void)parse_format_keys("f16,f128"), std::invalid_argument);
  EXPECT_THROW((void)parse_format_keys("f16,dd"), std::invalid_argument);
}

TEST(FormatRegistry, DispatchFormatRejectsForgedIds) {
  EXPECT_THROW(dispatch_format(static_cast<FormatId>(999),
                               [](auto) { return 0; }),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// SweepBuilder vs legacy engine: byte-identical results
// ---------------------------------------------------------------------------

TEST(SweepBuilder, ByteIdenticalToLegacyPath) {
  const auto ds = api_dataset();
  const auto formats = api_formats();
  const auto cfg = api_config();

  // Legacy: the raw engine + write_results_csv.
  ScheduleOptions sched;
  sched.threads = 2;
  const std::string legacy_csv = csv_of(run_experiment(ds, formats, cfg, sched), "legacy");
  ASSERT_FALSE(legacy_csv.empty());

  // Facade: same corpus/config/threads through the builder, raw CSV via a
  // CsvSink and via the returned results — all three must be byte-equal.
  const std::string sink_path = "test_out/api_sink.csv";
  const api::SweepResult sweep = api::Sweep::over(ds)
                                     .formats(formats)
                                     .config(cfg)
                                     .threads(2)
                                     .sink(std::make_shared<api::CsvSink>(sink_path))
                                     .run();
  EXPECT_EQ(csv_of(sweep.results, "builder"), legacy_csv);
  EXPECT_EQ(slurp(sink_path), legacy_csv);
  std::remove(sink_path.c_str());

  EXPECT_EQ(sweep.executed_runs, ds.size() * formats.size());
  EXPECT_FALSE(sweep.cache_attached);
  EXPECT_GE(sweep.stats.reference_solves, ds.size());

  // Thread-count invariance holds through the facade as well.
  const api::SweepResult serial =
      api::Sweep::over(ds).formats(formats).config(cfg).threads(1).run();
  EXPECT_EQ(csv_of(serial.results, "serial"), legacy_csv);
}

TEST(SweepBuilder, FluentNumericalSettersMatchConfigStruct) {
  const auto ds = api_dataset();
  const auto cfg = api_config();
  const auto r1 = api::Sweep::over(ds)
                      .formats({FormatId::takum16})
                      .nev(cfg.nev)
                      .buffer(cfg.buffer)
                      .which(cfg.which)
                      .restarts(cfg.max_restarts)
                      .reference_restarts(cfg.reference_max_restarts)
                      .seed(cfg.seed)
                      .threads(1)
                      .run();
  const auto r2 =
      api::Sweep::over(ds).formats({FormatId::takum16}).config(cfg).threads(1).run();
  EXPECT_EQ(csv_of(r1.results, "setters"), csv_of(r2.results, "struct"));
}

// ---------------------------------------------------------------------------
// Sink pipeline
// ---------------------------------------------------------------------------

TEST(SinkPipeline, MultiSinkOrderingAndSerializationUnderThreads) {
  const auto ds = api_dataset();
  const auto formats = api_formats();

  auto a = std::make_shared<api::MemorySink>();
  auto b = std::make_shared<api::MemorySink>();
  auto multi = std::make_shared<api::MultiSink>();
  multi->add(a).add(b);

  const api::SweepResult sweep =
      api::Sweep::over(ds).formats(formats).config(api_config()).threads(4).sink(multi).run();

  for (const auto& sink : {a, b}) {
    ASSERT_TRUE(sink->has_meta());
    ASSERT_TRUE(sink->done());
    const auto order = sink->order();
    ASSERT_EQ(order.size(), 2 + ds.size() * formats.size());
    // meta strictly first, done strictly last, runs in between.
    EXPECT_EQ(order.front(), api::MemorySink::EventKind::meta);
    EXPECT_EQ(order.back(), api::MemorySink::EventKind::done);
    for (std::size_t i = 1; i + 1 < order.size(); ++i)
      EXPECT_EQ(order[i], api::MemorySink::EventKind::run);

    const api::SweepMeta meta = sink->meta();
    EXPECT_EQ(meta.matrix_count, ds.size());
    EXPECT_EQ(meta.total_runs, ds.size() * formats.size());
    EXPECT_EQ(meta.formats, formats);
    EXPECT_EQ(meta.threads, 4u);

    // Events are serialized: the done counter must be a strictly
    // increasing 1..total sequence even with 4 workers racing.
    const auto runs = sink->runs();
    ASSERT_EQ(runs.size(), ds.size() * formats.size());
    std::set<std::pair<std::string, FormatId>> seen;
    for (std::size_t i = 0; i < runs.size(); ++i) {
      EXPECT_EQ(runs[i].done, i + 1);
      EXPECT_EQ(runs[i].total, ds.size() * formats.size());
      seen.insert({runs[i].matrix, runs[i].run.format});
    }
    EXPECT_EQ(seen.size(), runs.size()) << "duplicate (matrix, format) events";
    EXPECT_TRUE(sink->references().empty());
    EXPECT_EQ(csv_of(sink->results(), "memory"), csv_of(sweep.results, "swept"));
  }

  // Both fan-out children observed the identical sequence.
  const auto ra = a->runs();
  const auto rb = b->runs();
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].matrix, rb[i].matrix);
    EXPECT_EQ(ra[i].run.format, rb[i].run.format);
    EXPECT_EQ(ra[i].done, rb[i].done);
  }
}

TEST(SinkPipeline, JournalSinkMatchesEngineJournal) {
  const auto ds = api_dataset();
  const auto formats = api_formats();
  const auto cfg = api_config();
  const std::string engine_path = "test_out/api_engine_journal.jsonl";
  const std::string sink_path = "test_out/api_sink_journal.jsonl";
  std::remove(engine_path.c_str());
  std::remove(sink_path.c_str());

  // threads=1: engine journal writes and sink events happen in the same
  // order, so the two files must be byte-identical.
  (void)api::Sweep::over(ds)
      .formats(formats)
      .config(cfg)
      .threads(1)
      .checkpoint(engine_path)
      .sink(std::make_shared<api::JournalSink>(sink_path))
      .run();
  EXPECT_EQ(slurp(engine_path), slurp(sink_path));

  // Parsed contents agree with what the engine recorded.
  const JournalContents jc = read_journal(sink_path);
  EXPECT_TRUE(jc.has_meta);
  EXPECT_EQ(jc.meta, make_journal_meta(cfg, formats, ds.size()));
  EXPECT_EQ(jc.runs.size(), ds.size() * formats.size());
  EXPECT_EQ(jc.skipped_lines, 0u);
  std::remove(engine_path.c_str());
  std::remove(sink_path.c_str());
}

TEST(SinkPipeline, ReferenceFailureEventsReachSinks) {
  auto ds = api_dataset();
  ExperimentConfig cfg = api_config();
  cfg.reference_max_restarts = 0;  // impossible budget: every reference fails

  auto mem = std::make_shared<api::MemorySink>();
  const api::SweepResult sweep =
      api::Sweep::over(ds).formats(api_formats()).config(cfg).threads(2).sink(mem).run();

  EXPECT_TRUE(mem->runs().empty());
  const auto refs = mem->references();
  ASSERT_EQ(refs.size(), ds.size());
  std::set<std::string> names;
  for (const auto& e : refs) {
    EXPECT_FALSE(e.failure.empty());
    names.insert(e.matrix);
  }
  EXPECT_EQ(names.size(), ds.size());
  // Retired runs are folded into the final done count.
  EXPECT_EQ(refs.back().done, ds.size() * api_formats().size());
  EXPECT_EQ(sweep.executed_runs, 0u);
}

TEST(SinkPipeline, SolveFaultEventsReachSinksAndRecordFaultRuns) {
  // A solver abort (failpoint-injected here) must not kill the sweep: the
  // run is recorded with outcome "fault", sinks get an on_fault event, and
  // the sweep completes with the faults counted in its stats.
  auto ds = api_dataset();
  const auto formats = api_formats();
  failpoint::arm_from_spec("engine.format_run=error(eio)");

  auto mem = std::make_shared<api::MemorySink>();
  const api::SweepResult sweep =
      api::Sweep::over(ds).formats(formats).config(api_config()).threads(2).sink(mem).run();
  failpoint::disarm_all();

  const std::size_t total = ds.size() * formats.size();
  EXPECT_EQ(sweep.stats.solve_faults, total);
  EXPECT_EQ(sweep.stats.reference_faults, 0u);
  const auto faults = mem->faults();
  ASSERT_EQ(faults.size(), total);
  for (const auto& f : faults) {
    EXPECT_EQ(f.stage, "format");
    EXPECT_FALSE(f.format.empty());
    EXPECT_NE(f.what.find("injected"), std::string::npos);
  }
  // Every recorded run carries the fault outcome and a failure message.
  for (const auto& mr : sweep.results) {
    ASSERT_EQ(mr.runs.size(), formats.size());
    for (const auto& run : mr.runs) {
      EXPECT_EQ(run.outcome, RunOutcome::fault);
      EXPECT_NE(run.failure.find("solve aborted"), std::string::npos);
    }
  }
  EXPECT_TRUE(mem->done());
}

TEST(SinkPipeline, ReferenceFaultDegradesToReferenceFailure) {
  auto ds = api_dataset();
  failpoint::arm_from_spec("engine.reference=error(eio)");

  auto mem = std::make_shared<api::MemorySink>();
  const api::SweepResult sweep =
      api::Sweep::over(ds).formats(api_formats()).config(api_config()).threads(2).sink(mem).run();
  failpoint::disarm_all();

  EXPECT_EQ(sweep.stats.reference_faults, ds.size());
  const auto faults = mem->faults();
  ASSERT_EQ(faults.size(), ds.size());
  for (const auto& f : faults) EXPECT_EQ(f.stage, "reference");
  // An aborted reference retires the matrix like a failed reference solve:
  // no format runs execute, and the failure is announced to sinks.
  EXPECT_TRUE(mem->runs().empty());
  EXPECT_EQ(mem->references().size(), ds.size());
  for (const auto& mr : sweep.results) {
    EXPECT_FALSE(mr.reference_ok);
    EXPECT_NE(mr.reference_failure.find("reference solve aborted"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Checkpoint / resume through the builder
// ---------------------------------------------------------------------------

TEST(SweepBuilder, ResumeReplaysCompletedJournalWithoutWork) {
  const auto ds = api_dataset();
  const auto formats = api_formats();
  const auto cfg = api_config();
  const std::string ck = "test_out/api_resume.jsonl";
  std::remove(ck.c_str());

  const api::SweepResult full =
      api::Sweep::over(ds).formats(formats).config(cfg).threads(2).checkpoint(ck).run();
  EXPECT_EQ(full.executed_runs, ds.size() * formats.size());

  auto mem = std::make_shared<api::MemorySink>();
  const api::SweepResult resumed = api::Sweep::over(ds)
                                       .formats(formats)
                                       .config(cfg)
                                       .threads(2)
                                       .checkpoint(ck)
                                       .resume()
                                       .sink(mem)
                                       .run();
  EXPECT_EQ(resumed.executed_runs, 0u);  // everything replayed from the journal
  EXPECT_TRUE(mem->runs().empty());      // replayed runs are not re-announced
  EXPECT_TRUE(mem->done());              // but the pipeline still completes
  EXPECT_EQ(csv_of(resumed.results, "resumed"), csv_of(full.results, "full"));
  std::remove(ck.c_str());
}

// ---------------------------------------------------------------------------
// Invalid builder state
// ---------------------------------------------------------------------------

TEST(SweepBuilder, RejectsInvalidState) {
  const auto ds = api_dataset();

  // Empty corpus.
  EXPECT_THROW((void)api::Sweep::over({}).formats({FormatId::float64}).run(),
               std::invalid_argument);
  // Empty formats.
  EXPECT_THROW((void)api::Sweep::over(ds).run(), std::invalid_argument);
  // Duplicate formats.
  EXPECT_THROW(
      (void)api::Sweep::over(ds).formats({FormatId::float64, FormatId::float64}).run(),
      std::invalid_argument);
  // Unknown / duplicate format keys (thrown at formats(), before run()).
  EXPECT_THROW((void)api::Sweep::over(ds).formats("f64,nope"), std::invalid_argument);
  EXPECT_THROW((void)api::Sweep::over(ds).formats("f64,f64"), std::invalid_argument);
  // nev == 0.
  EXPECT_THROW((void)api::Sweep::over(ds).formats({FormatId::float64}).nev(0).run(),
               std::invalid_argument);
  // resume without checkpoint.
  EXPECT_THROW((void)api::Sweep::over(ds).formats({FormatId::float64}).resume().run(),
               std::invalid_argument);

  // Checkpoint directory that cannot exist: parent path routed through a
  // regular file.
  ensure_directory("test_out");
  const std::string blocker = "test_out/api_blocker";
  { std::ofstream out(blocker, std::ios::trunc); }
  EXPECT_THROW((void)api::Sweep::over(ds)
                   .formats({FormatId::float64})
                   .checkpoint(blocker + "/journal.jsonl")
                   .run(),
               std::invalid_argument);
  std::remove(blocker.c_str());
}

TEST(SweepResult, FindHelpers) {
  const auto ds = api_dataset();
  const api::SweepResult sweep = api::Sweep::over(ds)
                                     .formats({FormatId::takum16, FormatId::float64})
                                     .config(api_config())
                                     .threads(1)
                                     .run();
  ASSERT_NE(sweep.find("api_er_a"), nullptr);
  EXPECT_EQ(sweep.find("api_er_a")->name, "api_er_a");
  const FormatRun* run = sweep.find("api_er_a", FormatId::takum16);
  ASSERT_NE(run, nullptr);
  EXPECT_EQ(run->format, FormatId::takum16);
  EXPECT_EQ(sweep.find("nonexistent"), nullptr);
  EXPECT_EQ(sweep.find("api_er_a", FormatId::posit8), nullptr);
}

}  // namespace
}  // namespace mfla
