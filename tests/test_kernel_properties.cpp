// Property/fuzz harness over the kernel layer: every dispatching kernels::
// entry point must be bit-identical to its kernels::ref:: definition under
// every acceleration configuration — LUT off, LUT on with SIMD forced off,
// and LUT on with SIMD on — for EVERY format in the registry, on operand
// streams that deliberately include the nasty values (NaN / NaR, +/-inf,
// -0.0, double denormals, values past the format's range in both
// directions) interleaved with seeded pseudo-random data.
//
// The acceleration tiers may only change how table entries are fetched,
// never what is computed; this suite is the pairwise enforcement of that
// contract one level above the exhaustive per-table tests
// (test_kernel_accel.cpp, test_kernel_simd.cpp). Results are compared by
// object representation (memcmp), so NaN payloads and -0.0 count.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "arith/format_registry.hpp"
#include "dense/matrix.hpp"
#include "kernels/accel.hpp"
#include "kernels/simd.hpp"
#include "kernels/spmm.hpp"
#include "kernels/spmv.hpp"
#include "kernels/vector_ops.hpp"
#include "support/rng.hpp"

namespace mfla {
namespace {

/// The dispatch configurations under test (ref:: is the implicit extra leg
/// of every comparison): exact engines, scalar LUT, and the LUT with the
/// ISA ladder pinned at each vector rung. Pinning a rung the host cannot
/// execute degrades to the best available one — that degradation is itself
/// part of the contract under test.
struct Config {
  bool lut;
  kernels::SimdLevel level;
  const char* name;
};
constexpr Config kConfigs[] = {
    {false, kernels::SimdLevel::scalar, "exact"},
    {true, kernels::SimdLevel::scalar, "lut"},
    {true, kernels::SimdLevel::avx2, "lut+avx2"},
    {true, kernels::SimdLevel::avx512, "lut+avx512"},
};

/// Scoped override of both runtime switches.
class ConfigGuard {
 public:
  explicit ConfigGuard(const Config& c)
      : lut_prev_(kernels::set_lut_enabled(c.lut)),
        level_prev_(kernels::set_simd_level(c.level)) {}
  ~ConfigGuard() {
    kernels::set_simd_level(level_prev_);
    kernels::set_lut_enabled(lut_prev_);
  }
  ConfigGuard(const ConfigGuard&) = delete;
  ConfigGuard& operator=(const ConfigGuard&) = delete;

 private:
  bool lut_prev_;
  kernels::SimdLevel level_prev_;
};

template <typename T>
[[nodiscard]] bool same_repr(const T& a, const T& b) {
  return std::memcmp(&a, &b, sizeof(T)) == 0;
}

/// Operand stream: the special values cycle through the head positions and
/// then keep reappearing every 7th slot inside pseudo-random filler, so
/// short vectors are all-special and long ones mix specials into every
/// SIMD block.
template <typename T>
std::vector<T> fuzz_vec(std::size_t n, std::uint64_t seed) {
  constexpr double inf = std::numeric_limits<double>::infinity();
  constexpr double nan = std::numeric_limits<double>::quiet_NaN();
  const double specials[] = {0.0,    -0.0,   1.0,   -1.0,  inf,     -inf,  nan,  5e-324,
                             1e-300, -1e-40, 1e300, -1e38, 65504.0, 0.125, -0.1, 3.5};
  constexpr std::size_t ns = sizeof(specials) / sizeof(specials[0]);
  Rng rng(seed);
  std::vector<T> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double d = (i < ns || i % 7 == 0) ? specials[(i + seed) % ns] : rng.normal() * 4.0;
    v.push_back(NumTraits<T>::from_double(d));
  }
  return v;
}

template <typename T>
void expect_vec_repr(const std::vector<T>& got, const std::vector<T>& want,
                     const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i)
    ASSERT_TRUE(same_repr(got[i], want[i]))
        << NumTraits<T>::name() << " " << what << " differs from ref at " << i << " ("
        << NumTraits<T>::to_double(got[i]) << " vs " << NumTraits<T>::to_double(want[i]) << ")";
}

/// A small fixed CSR structure with irregular rows (lengths 0..4) used for
/// the spmv/spmm legs; values come from the fuzz stream.
struct FuzzCsr {
  std::vector<std::uint32_t> row_ptr, col_idx;
  std::size_t rows, cols;
  explicit FuzzCsr(std::size_t rows_, std::size_t cols_, std::uint64_t seed)
      : rows(rows_), cols(cols_) {
    Rng rng(seed);
    row_ptr.push_back(0);
    for (std::size_t r = 0; r < rows; ++r) {
      const std::size_t len = (r * 3 + static_cast<std::size_t>(seed)) % 5;
      for (std::size_t t = 0; t < len; ++t)
        col_idx.push_back(static_cast<std::uint32_t>(rng.uniform_index(cols)));
      row_ptr.push_back(static_cast<std::uint32_t>(col_idx.size()));
    }
  }
};

template <typename T>
void check_format(int bits) {
  // Wide formats run fully emulated exact engines on every leg; keep their
  // volume down so the suite stays fast.
  const std::size_t nmax = bits <= 16 ? 130 : 33;
  const std::size_t lengths[] = {0, 1, 9, 33, nmax};
  const T alpha = NumTraits<T>::from_double(-0.75);

  for (const std::size_t n : lengths) {
    const auto x = fuzz_vec<T>(n, 1 + n);
    const auto y = fuzz_vec<T>(n, 2 + n);

    // Reference results (exact engines, by definition).
    const T dot_ref = kernels::ref::dot(n, x.data(), y.data());
    const T nrm_ref = kernels::ref::nrm2(n, x.data());
    std::vector<T> axpy_ref = y, scal_ref = x;
    kernels::ref::axpy(n, alpha, x.data(), axpy_ref.data());
    kernels::ref::scal(n, alpha, scal_ref.data());

    for (const Config& cfg : kConfigs) {
      ConfigGuard guard(cfg);
      ASSERT_TRUE(same_repr(kernels::dot(n, x.data(), y.data()), dot_ref))
          << NumTraits<T>::name() << " dot n=" << n << " cfg=" << cfg.name;
      ASSERT_TRUE(same_repr(kernels::nrm2(n, x.data()), nrm_ref))
          << NumTraits<T>::name() << " nrm2 n=" << n << " cfg=" << cfg.name;
      std::vector<T> ax = y, sc = x;
      kernels::axpy(n, alpha, x.data(), ax.data());
      kernels::scal(n, alpha, sc.data());
      expect_vec_repr(ax, axpy_ref, std::string("axpy cfg=") + cfg.name);
      expect_vec_repr(sc, scal_ref, std::string("scal cfg=") + cfg.name);
    }
  }

  // Blocked primitives: k column vectors against the singles definition.
  // The 8-bit formats take k past 32 so the widest blocked paths (the
  // AVX-512 32-lane dot chains) run with a partial tail.
  {
    const std::size_t n = bits <= 16 ? 70 : 20, k = bits <= 16 ? 35 : 9, ldx = n + 2;
    const auto xs = fuzz_vec<T>(k * ldx, 31);
    const auto y = fuzz_vec<T>(n, 32);
    const auto alphas = fuzz_vec<T>(k, 33);
    std::vector<T> dots_ref(k), axb_ref = y;
    kernels::ref::dot_block(n, k, xs.data(), ldx, y.data(), dots_ref.data());
    kernels::ref::axpy_block(n, k, alphas.data(), xs.data(), ldx, axb_ref.data());
    for (const Config& cfg : kConfigs) {
      ConfigGuard guard(cfg);
      std::vector<T> dots(k), axb = y;
      kernels::dot_block(n, k, xs.data(), ldx, y.data(), dots.data());
      kernels::axpy_block(n, k, alphas.data(), xs.data(), ldx, axb.data());
      expect_vec_repr(dots, dots_ref, std::string("dot_block cfg=") + cfg.name);
      expect_vec_repr(axb, axb_ref, std::string("axpy_block cfg=") + cfg.name);
    }
  }

  // Dense gemv / gemv_t / matmul on a small matrix with specials.
  {
    const std::size_t m = 13, n2 = 11;
    DenseMatrix<T> a(m, n2);
    const auto av = fuzz_vec<T>(m * n2, 41);
    for (std::size_t j = 0; j < n2; ++j)
      for (std::size_t i = 0; i < m; ++i) a(i, j) = av[j * m + i];
    const auto xr = fuzz_vec<T>(n2, 42);
    const auto xl = fuzz_vec<T>(m, 43);
    DenseMatrix<T> b(n2, 5);
    const auto bv = fuzz_vec<T>(n2 * 5, 44);
    for (std::size_t j = 0; j < 5; ++j)
      for (std::size_t i = 0; i < n2; ++i) b(i, j) = bv[j * n2 + i];

    std::vector<T> gemv_ref(m), gemvt_ref(n2);
    {
      ConfigGuard guard(kConfigs[0]);  // exact dispatch == reference leg
      kernels::gemv(a, xr.data(), gemv_ref.data());
      kernels::gemv_t(a, xl.data(), gemvt_ref.data());
    }
    const DenseMatrix<T> mm_ref = [&] {
      ConfigGuard guard(kConfigs[0]);
      return kernels::matmul(a, b);
    }();
    for (const Config& cfg : kConfigs) {
      ConfigGuard guard(cfg);
      std::vector<T> gv(m), gvt(n2);
      kernels::gemv(a, xr.data(), gv.data());
      kernels::gemv_t(a, xl.data(), gvt.data());
      expect_vec_repr(gv, gemv_ref, std::string("gemv cfg=") + cfg.name);
      expect_vec_repr(gvt, gemvt_ref, std::string("gemv_t cfg=") + cfg.name);
      const DenseMatrix<T> mm = kernels::matmul(a, b);
      for (std::size_t j = 0; j < mm.cols(); ++j)
        for (std::size_t i = 0; i < mm.rows(); ++i)
          ASSERT_TRUE(same_repr(mm(i, j), mm_ref(i, j)))
              << NumTraits<T>::name() << " matmul cfg=" << cfg.name << " (" << i << ", " << j
              << ")";
    }
  }

  // Sparse: spmv and spmm over an irregular structure with special values.
  {
    const FuzzCsr s(29, 17, 5);
    const auto vals = fuzz_vec<T>(s.col_idx.size(), 51);
    // 8-bit formats take k past 16 so the AVX-512 16-column spmm chunk
    // runs with a scalar tail behind it.
    const std::size_t k = bits <= 16 ? 19 : 5, ldx = s.cols + 1, ldy = s.rows + 2;
    const auto x = fuzz_vec<T>(k * ldx, 52);
    std::vector<T> spmv_ref(s.rows), spmm_ref(k * ldy, T(0));
    kernels::ref::spmv(s.rows, s.row_ptr.data(), s.col_idx.data(), vals.data(), x.data(),
                       spmv_ref.data());
    kernels::ref::spmm(s.rows, s.row_ptr.data(), s.col_idx.data(), vals.data(), k, x.data(),
                       ldx, spmm_ref.data(), ldy);
    // The spmm contract: ref::spmm is k ref::spmv calls.
    for (std::size_t c = 0; c < k; ++c) {
      std::vector<T> one(s.rows);
      kernels::ref::spmv(s.rows, s.row_ptr.data(), s.col_idx.data(), vals.data(),
                         x.data() + c * ldx, one.data());
      for (std::size_t r = 0; r < s.rows; ++r)
        ASSERT_TRUE(same_repr(spmm_ref[c * ldy + r], one[r]))
            << NumTraits<T>::name() << " ref::spmm contract c=" << c << " r=" << r;
    }
    for (const Config& cfg : kConfigs) {
      ConfigGuard guard(cfg);
      std::vector<T> yv(s.rows), ym(k * ldy, T(0));
      kernels::spmv(s.rows, s.row_ptr.data(), s.col_idx.data(), vals.data(), x.data(),
                    yv.data());
      kernels::spmm(s.rows, s.row_ptr.data(), s.col_idx.data(), vals.data(), k, x.data(), ldx,
                    ym.data(), ldy);
      expect_vec_repr(yv, spmv_ref, std::string("spmv cfg=") + cfg.name);
      for (std::size_t c = 0; c < k; ++c)
        for (std::size_t r = 0; r < s.rows; ++r)
          ASSERT_TRUE(same_repr(ym[c * ldy + r], spmm_ref[c * ldy + r]))
              << NumTraits<T>::name() << " spmm cfg=" << cfg.name << " c=" << c << " r=" << r;
    }
  }
}

TEST(KernelProperties, AllRegistryFormats) {
  for (const FormatInfo& info : all_formats()) {
    SCOPED_TRACE(info.name);
    dispatch_format(info.id, [&](auto tag) {
      using T = typename decltype(tag)::type;
      check_format<T>(info.bits);
    });
  }
}

}  // namespace
}  // namespace mfla
