// Double-double arithmetic and tiered-reference tests: error-free
// transformation properties under fuzzing (against a float128 oracle),
// special-value handling (-0.0, denormals, inf/NaN), string/double
// round-trips, codec round-trips, and the engine-level guarantees of the
// dd_first reference tier — byte-identical CSVs against f128_only when no
// promotion occurs, and a constructed ill-conditioned matrix whose
// certification bound is provably unsatisfiable in dd, forcing promotion.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "arith/dd.hpp"
#include "arith/quad.hpp"
#include "arith/traits.hpp"
#include "core/experiment.hpp"
#include "core/reference_cache.hpp"
#include "core/results_io.hpp"
#include "graph/generators.hpp"
#include "graph/laplacian.hpp"
#include "support/rng.hpp"

namespace mfla {
namespace {

// ---------------------------------------------------------------------------
// Error-free transformations (float128 oracle)
// ---------------------------------------------------------------------------

/// Deterministic fuzz stream of finite doubles with bounded exponent,
/// including negatives, exact powers of two and denormal-scale values.
class DoubleFuzz {
 public:
  explicit DoubleFuzz(std::uint64_t seed) : rng_(seed) {}

  /// A double whose exponent lies within [-window, window].
  double bounded(int window) {
    const double mant = rng_.uniform() * 2.0 - 1.0;  // [-1, 1)
    const int exp = static_cast<int>(rng_.uniform() * (2 * window + 1)) - window;
    return std::ldexp(mant, exp);
  }

 private:
  Rng rng_;
};

TEST(DdErrorFree, TwoSumIsExactInQuad) {
  // s + err == a + b exactly over the reals; with the exponent spread
  // capped at 55 bits the right-hand side needs at most 53 + 55 = 108
  // significand bits, so the float128 oracle (113 bits) evaluates both
  // sides exactly.
  DoubleFuzz fuzz(0xdd5eedu);
  for (int it = 0; it < 20000; ++it) {
    const double a = fuzz.bounded(27);
    const double b = fuzz.bounded(27);
    double err;
    const double s = dd_detail::two_sum(a, b, err);
    EXPECT_EQ(Quad(s) + Quad(err), Quad(a) + Quad(b)) << "a=" << a << " b=" << b;
    // Symmetry: TwoSum does not require |a| >= |b|.
    double err2;
    const double s2 = dd_detail::two_sum(b, a, err2);
    EXPECT_EQ(Quad(s2) + Quad(err2), Quad(a) + Quad(b));
  }
}

TEST(DdErrorFree, QuickTwoSumIsExactWhenOrdered) {
  DoubleFuzz fuzz(0xdd5eed + 1u);
  for (int it = 0; it < 20000; ++it) {
    double a = fuzz.bounded(27);
    double b = fuzz.bounded(27);
    if (std::fabs(a) < std::fabs(b)) std::swap(a, b);
    double err;
    const double s = dd_detail::quick_two_sum(a, b, err);
    EXPECT_EQ(Quad(s) + Quad(err), Quad(a) + Quad(b)) << "a=" << a << " b=" << b;
  }
}

TEST(DdErrorFree, TwoProdIsExactInQuad) {
  // The product of two doubles has at most 106 significand bits, exactly
  // representable in float128 for any in-range exponents.
  DoubleFuzz fuzz(0xdd5eed + 2u);
  for (int it = 0; it < 20000; ++it) {
    const double a = fuzz.bounded(100);
    const double b = fuzz.bounded(100);
    double err;
    const double p = dd_detail::two_prod(a, b, err);
    EXPECT_EQ(Quad(p) + Quad(err), Quad(a) * Quad(b)) << "a=" << a << " b=" << b;
  }
}

TEST(DdErrorFree, FmaProductMatchesDekkerSplitFormulation) {
  // Where the Veltkamp split cannot overflow, Dekker's original 17-flop
  // product and the fma realization produce the identical error term.
  DoubleFuzz fuzz(0xdd5eed + 3u);
  for (int it = 0; it < 20000; ++it) {
    const double a = fuzz.bounded(500);
    const double b = fuzz.bounded(400);
    double fma_err;
    const double p = dd_detail::two_prod(a, b, fma_err);
    double ahi, alo, bhi, blo;
    dd_detail::veltkamp_split(a, ahi, alo);
    dd_detail::veltkamp_split(b, bhi, blo);
    const double dekker_err = ((ahi * bhi - p) + ahi * blo + alo * bhi) + alo * blo;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(fma_err), std::bit_cast<std::uint64_t>(dekker_err))
        << "a=" << a << " b=" << b;
  }
}

TEST(DdErrorFree, TwoSumHandlesDenormalsAndSignedZero) {
  const double denorm = 5e-324;
  double err;
  double s = dd_detail::two_sum(denorm, denorm, err);
  EXPECT_EQ(s, 1e-323);
  EXPECT_EQ(err, 0.0);

  s = dd_detail::two_sum(-0.0, -0.0, err);
  EXPECT_TRUE(std::signbit(s)) << "-0 + -0 must stay -0";
  EXPECT_EQ(err, 0.0);

  s = dd_detail::two_sum(1.0, 5e-324, err);
  EXPECT_EQ(s, 1.0);
  EXPECT_EQ(err, 5e-324) << "the dropped denormal must reappear in the error term";
}

// ---------------------------------------------------------------------------
// DoubleDouble arithmetic
// ---------------------------------------------------------------------------

constexpr double kDdEps = 0x1p-104;

/// |a - b| as a Quad, for accuracy bounds tighter than double can express.
Quad qerr(DoubleDouble a, Quad b) { return abs((Quad(a.hi) + Quad(a.lo)) - b); }

TEST(DoubleDoubleArith, OperationsAreDdAccurate) {
  DoubleFuzz fuzz(0xacc07a7e);
  for (int it = 0; it < 5000; ++it) {
    const DoubleDouble a(fuzz.bounded(20), 0.0);
    const DoubleDouble b(fuzz.bounded(20), 0.0);
    const Quad qa = Quad(a.hi), qb = Quad(b.hi);
    EXPECT_LT(qerr(a + b, qa + qb), Quad(4 * kDdEps) * (abs(qa) + abs(qb)));
    EXPECT_LT(qerr(a - b, qa - qb), Quad(4 * kDdEps) * (abs(qa) + abs(qb)));
    EXPECT_LT(qerr(a * b, qa * qb), Quad(8 * kDdEps) * abs(qa * qb));
    if (b.hi != 0.0) {
      EXPECT_LT(qerr(a / b, qa / qb), Quad(16 * kDdEps) * abs(qa / qb));
    }
  }
}

TEST(DoubleDoubleArith, KeepsBitsDoubleWouldDrop) {
  // 1 + 2^-80 is not representable in double but is in dd.
  const DoubleDouble one(1.0);
  const DoubleDouble tiny(0x1p-80);
  const DoubleDouble sum = one + tiny;
  EXPECT_EQ(sum.hi, 1.0);
  EXPECT_EQ(sum.lo, 0x1p-80);
  EXPECT_EQ((sum - one).hi, 0x1p-80);

  // (1/3) * 3 returns to 1 within a few dd ulps, far beyond double.
  const DoubleDouble third = DoubleDouble(1.0) / DoubleDouble(3.0);
  const DoubleDouble back = third * DoubleDouble(3.0);
  EXPECT_LT(std::fabs((back - DoubleDouble(1.0)).to_double()), 4 * kDdEps);
}

TEST(DoubleDoubleArith, SqrtIsDdAccurate) {
  DoubleFuzz fuzz(0x5c2a00u);
  for (int it = 0; it < 5000; ++it) {
    const double x = std::fabs(fuzz.bounded(40));
    if (x == 0.0) continue;
    const DoubleDouble r = sqrt(DoubleDouble(x));
    const DoubleDouble back = r * r - DoubleDouble(x);
    EXPECT_LT(std::fabs(back.to_double()), 8 * kDdEps * x) << "x=" << x;
  }
  EXPECT_EQ(sqrt(DoubleDouble(0.0)).hi, 0.0);
  EXPECT_TRUE(std::signbit(sqrt(DoubleDouble(-0.0)).hi)) << "sqrt(-0) must be -0";
  EXPECT_TRUE(std::isnan(sqrt(DoubleDouble(-1.0)).hi));
  EXPECT_TRUE(std::isinf(sqrt(DoubleDouble(std::numeric_limits<double>::infinity())).hi));
}

TEST(DoubleDoubleArith, NonFiniteValuesPropagateThroughHi) {
  const double inf = std::numeric_limits<double>::infinity();
  const DoubleDouble big(1e308);
  const DoubleDouble overflow = big + big;
  EXPECT_TRUE(std::isinf(overflow.hi));
  EXPECT_EQ(overflow.lo, 0.0) << "non-finite hi must force lo = 0";
  EXPECT_FALSE(is_number(overflow));

  // inf - inf poisons to NaN, not to a finite pair with NaN residue.
  const DoubleDouble nan_pair = DoubleDouble(inf) - DoubleDouble(inf);
  EXPECT_TRUE(std::isnan(nan_pair.hi));
  EXPECT_EQ(nan_pair.lo, 0.0);
  EXPECT_FALSE(is_number(nan_pair));

  EXPECT_TRUE(std::isinf((DoubleDouble(1.0) / DoubleDouble(0.0)).hi));
  EXPECT_TRUE(std::isnan((DoubleDouble(0.0) / DoubleDouble(0.0)).hi));
  EXPECT_TRUE(is_number(DoubleDouble(1.0) / DoubleDouble(3.0)));
}

TEST(DoubleDoubleArith, ComparisonsAreIeeeOnNaNAndLexicographicOtherwise) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const DoubleDouble qnan(nan);
  EXPECT_FALSE(qnan == qnan);
  EXPECT_FALSE(qnan != qnan) << "NaN != NaN is false too (matches the softfloat wrappers)";
  EXPECT_FALSE(qnan < DoubleDouble(1.0));
  EXPECT_FALSE(DoubleDouble(1.0) < qnan);

  // The lo word breaks hi ties.
  EXPECT_LT(DoubleDouble(1.0, -kDdEps), DoubleDouble(1.0));
  EXPECT_GT(DoubleDouble(1.0, kDdEps), DoubleDouble(1.0));
  EXPECT_LE(DoubleDouble(2.0), DoubleDouble(2.0));
  EXPECT_GE(DoubleDouble(2.0), DoubleDouble(2.0));
  EXPECT_LT(abs(DoubleDouble(-3.0)) - DoubleDouble(3.0), DoubleDouble(kDdEps));
}

// ---------------------------------------------------------------------------
// Round-trips: double, string, codec
// ---------------------------------------------------------------------------

const double kRoundTripProbes[] = {0.0,
                                   -0.0,
                                   1.0,
                                   -1.0,
                                   5e-324,
                                   -5e-324,
                                   0x1.fffffffffffffp-1022,
                                   1.7976931348623157e308,
                                   3.141592653589793,
                                   std::numeric_limits<double>::infinity(),
                                   -std::numeric_limits<double>::infinity()};

TEST(DoubleDoubleRoundTrip, DoubleConversionIsExact) {
  for (const double x : kRoundTripProbes) {
    const DoubleDouble d = DoubleDouble::from_double(x);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(d.to_double()), std::bit_cast<std::uint64_t>(x));
  }
  EXPECT_TRUE(std::isnan(
      DoubleDouble::from_double(std::numeric_limits<double>::quiet_NaN()).to_double()));
}

TEST(DoubleDoubleRoundTrip, StringRoundTripIsBitExact) {
  DoubleFuzz fuzz(0x57a7e5u);
  std::vector<DoubleDouble> probes;
  for (const double x : kRoundTripProbes) probes.emplace_back(x);
  probes.push_back(DoubleDouble(1.0, 0x1p-80));
  probes.push_back(DoubleDouble(-1.0, -5e-324));
  for (int it = 0; it < 2000; ++it) {
    double err;
    const double s = dd_detail::two_sum(fuzz.bounded(30), fuzz.bounded(30), err);
    probes.push_back(DoubleDouble(s, err));
  }
  for (const DoubleDouble& d : probes) {
    const DoubleDouble back = dd_from_string(dd_to_string(d));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back.hi), std::bit_cast<std::uint64_t>(d.hi))
        << dd_to_string(d);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back.lo), std::bit_cast<std::uint64_t>(d.lo))
        << dd_to_string(d);
  }
  // NaN round-trips as NaN (payload bits are not promised).
  const DoubleDouble qnan(std::numeric_limits<double>::quiet_NaN());
  EXPECT_TRUE(std::isnan(dd_from_string(dd_to_string(qnan)).hi));
}

TEST(DoubleDoubleRoundTrip, ScalarCodecRoundTripIsBitExact) {
  DoubleFuzz fuzz(0xc0dec0u);
  for (int it = 0; it < 2000; ++it) {
    double err;
    const double s = dd_detail::two_sum(fuzz.bounded(30), fuzz.bounded(30), err);
    const DoubleDouble d(s, err);
    const auto bits = ScalarCodec<DoubleDouble>::to_bits(d);
    const DoubleDouble back = ScalarCodec<DoubleDouble>::from_bits(bits);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back.hi), std::bit_cast<std::uint64_t>(d.hi));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back.lo), std::bit_cast<std::uint64_t>(d.lo));
  }
  EXPECT_EQ(NumTraits<DoubleDouble>::name(), "dd");
  EXPECT_EQ(NumTraits<DoubleDouble>::bits, 128);
  EXPECT_EQ(NumTraits<DoubleDouble>::epsilon(), kDdEps);
}

// ---------------------------------------------------------------------------
// Registry: dd is reference-only
// ---------------------------------------------------------------------------

TEST(DdRegistry, DdIsRegisteredButNotSelectable) {
  const FormatInfo& info = format_info(FormatId::dd);
  EXPECT_EQ(info.key, "dd");
  EXPECT_EQ(info.bits, 128);
  EXPECT_TRUE(info.reference_only);
  EXPECT_THROW((void)parse_format_keys("dd"), std::invalid_argument);
  // dispatch still reaches the dd scalar type (the tier driver needs it).
  const int bits = dispatch_format(FormatId::dd, [](auto tag) {
    using T = typename decltype(tag)::type;
    return NumTraits<T>::bits;
  });
  EXPECT_EQ(bits, 128);
}

// ---------------------------------------------------------------------------
// Tiered reference: engine-level guarantees
// ---------------------------------------------------------------------------

struct TempDir {
  std::string path;
  explicit TempDir(const std::string& name) : path("test_out/" + name) {
    std::filesystem::remove_all(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

std::vector<TestMatrix> tier_dataset() {
  std::vector<TestMatrix> ds;
  Rng r1(9101), r2(9102);
  ds.push_back(make_test_matrix("dd_er_a", "social", "soc",
                                graph_laplacian_pipeline(erdos_renyi(40, 0.16, r1))));
  ds.push_back(make_test_matrix("dd_er_b", "biological", "protein",
                                graph_laplacian_pipeline(erdos_renyi(46, 0.13, r2))));
  return ds;
}

ExperimentConfig tier_config(ReferenceTier tier) {
  ExperimentConfig cfg;
  cfg.nev = 5;
  cfg.buffer = 2;
  cfg.max_restarts = 80;
  cfg.reference_max_restarts = 150;
  cfg.reference_tier = tier;
  return cfg;
}

std::string csv_of(const std::vector<MatrixResult>& results, const std::string& tag) {
  const std::string path = "test_out/ddtier_" + tag + ".csv";
  write_results_csv(path, results);
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  std::remove(path.c_str());
  return ss.str();
}

TEST(ReferenceTierEngine, DdFirstMatchesF128OnlyByteForByteWhenNothingPromotes) {
  const auto ds = tier_dataset();
  const std::vector<FormatId> formats = {FormatId::float32, FormatId::takum16};

  SweepStats f128_stats, dd_stats;
  ScheduleOptions f128_sched;
  f128_sched.threads = 2;
  f128_sched.stats = &f128_stats;
  const std::string f128_csv =
      csv_of(run_experiment(ds, formats, tier_config(ReferenceTier::f128_only), f128_sched),
             "f128");
  EXPECT_EQ(f128_stats.reference_dd_solves, 0u) << "f128_only must never touch dd";
  EXPECT_EQ(f128_stats.reference_promotions, 0u);

  ScheduleOptions dd_sched;
  dd_sched.threads = 2;
  dd_sched.stats = &dd_stats;
  const std::string dd_csv = csv_of(
      run_experiment(ds, formats, tier_config(ReferenceTier::dd_first), dd_sched), "dd");

  // Well-conditioned Laplacians certify in dd: no promotion, and the CSV —
  // every eigenvalue/eigenvector error of every format run — is
  // byte-identical to the float128 oracle's.
  EXPECT_EQ(dd_stats.reference_dd_solves, ds.size());
  EXPECT_EQ(dd_stats.reference_dd_certified, ds.size());
  EXPECT_EQ(dd_stats.reference_promotions, 0u);
  EXPECT_GT(dd_stats.reference_dd_seconds, 0.0);
  EXPECT_EQ(dd_stats.reference_f128_seconds, 0.0);
  EXPECT_EQ(dd_csv, f128_csv);
}

/// A matrix whose adequacy bound is provably unsatisfiable in dd: the kept
/// eigenvalue lambda_k = 1e-10 makes the measurement threshold
/// kReferenceTolerance * |lambda_k| = 1e-30 smaller than the dd evaluation
/// margin gamma = 16 n eps_dd ||A||_F ~ 3.4e-29 by a factor ~34, so dd
/// cannot even measure residuals at the required scale — regardless of how
/// well the solve converged — and the tier must promote to float128 (whose
/// own evaluation floor ~ n eps_q ||A||_F ~ 5e-33 clears 1e-30 comfortably).
TestMatrix promotion_matrix() {
  const std::size_t n = 25;
  CooMatrix coo(n, n);
  const double leading[] = {1.0, 0.9, 0.8, 0.7};
  for (std::size_t i = 0; i < 4; ++i) coo.add(i, i, leading[i]);
  coo.add(4, 4, 1e-10);  // the provably unmeasurable kept eigenvalue
  for (std::size_t i = 5; i < n; ++i)
    coo.add(i, i, 1e-12 * static_cast<double>(n - i));  // well below lambda_4
  return make_test_matrix("dd_promote", "synthetic", "diag", coo);
}

TEST(ReferenceTierEngine, IllConditionedMatrixForcesPromotionAndMatchesF128) {
  const TestMatrix tm = promotion_matrix();
  ExperimentConfig cfg = tier_config(ReferenceTier::dd_first);
  cfg.nev = 3;
  cfg.buffer = 2;  // kept set reaches the 1e-9 eigenvalue

  // The bound is unsatisfiable on paper; check the driver agrees.
  Rng rng(tm.name, cfg.seed);
  const std::vector<double> start = rng.unit_vector(tm.n());
  const TieredReference tiered = compute_reference_tiered(tm, cfg, start);
  EXPECT_TRUE(tiered.tier.dd_attempted);
  EXPECT_FALSE(tiered.tier.dd_certified);
  EXPECT_TRUE(tiered.tier.promoted);
  EXPECT_FALSE(tiered.tier.dd_failure.empty());

  // The promoted result is the float128 oracle's, bit for bit.
  ExperimentConfig f128_cfg = cfg;
  f128_cfg.reference_tier = ReferenceTier::f128_only;
  const TieredReference oracle = compute_reference_tiered(tm, f128_cfg, start);
  EXPECT_FALSE(oracle.tier.dd_attempted);
  EXPECT_TRUE(oracle.solution.ok) << oracle.solution.failure;
  ASSERT_EQ(tiered.solution.ok, oracle.solution.ok);
  EXPECT_EQ(tiered.solution.failure, oracle.solution.failure);
  ASSERT_EQ(tiered.solution.values.size(), oracle.solution.values.size());
  for (std::size_t i = 0; i < oracle.solution.values.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(tiered.solution.values[i]),
              std::bit_cast<std::uint64_t>(oracle.solution.values[i]));
  }
  ASSERT_EQ(tiered.solution.vectors.rows(), oracle.solution.vectors.rows());
  ASSERT_EQ(tiered.solution.vectors.cols(), oracle.solution.vectors.cols());
  for (std::size_t j = 0; j < oracle.solution.vectors.cols(); ++j)
    for (std::size_t i = 0; i < oracle.solution.vectors.rows(); ++i) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(tiered.solution.vectors(i, j)),
                std::bit_cast<std::uint64_t>(oracle.solution.vectors(i, j)));
    }

  // Engine telemetry counts the promotion.
  SweepStats stats;
  ScheduleOptions sched;
  sched.threads = 1;
  sched.stats = &stats;
  const std::vector<TestMatrix> ds = {tm};
  const std::vector<FormatId> formats = {FormatId::float64};
  const auto dd_results = run_experiment(ds, formats, cfg, sched);
  EXPECT_EQ(stats.reference_dd_solves, 1u);
  EXPECT_EQ(stats.reference_promotions, 1u);
  EXPECT_EQ(stats.reference_dd_certified, 0u);
  const auto f128_results = run_experiment(ds, formats, f128_cfg, sched);
  EXPECT_EQ(csv_of(dd_results, "promo_dd"), csv_of(f128_results, "promo_f128"));
}

TEST(ReferenceTierCache, TiersUseDistinctKeysAndBothRoundTrip) {
  const auto ds = tier_dataset();
  const ExperimentConfig f128_cfg = tier_config(ReferenceTier::f128_only);
  const ExperimentConfig dd_cfg = tier_config(ReferenceTier::dd_first);
  Rng rng(ds[0].name, f128_cfg.seed);
  const std::vector<double> start = rng.unit_vector(ds[0].n());

  // Tier participates in the key — but only for non-default tiers, so
  // caches written before the tier existed keep hitting under f128_only.
  EXPECT_NE(reference_cache_key(ds[0].matrix, f128_cfg, start),
            reference_cache_key(ds[0].matrix, dd_cfg, start));
  EXPECT_EQ(reference_cache_key(ds[0].matrix, f128_cfg, start),
            reference_cache_key(ds[0].matrix, f128_cfg, start));

  // Cold dd_first sweep populates the cache; the warm rerun executes zero
  // solves of either tier and reproduces the CSV byte for byte.
  TempDir dir("ddtier_cache");
  ReferenceCache cache(dir.path);
  const std::vector<FormatId> formats = {FormatId::float32};
  SweepStats cold_stats, warm_stats;
  ScheduleOptions cold;
  cold.threads = 2;
  cold.ref_cache = &cache;
  cold.stats = &cold_stats;
  const std::string cold_csv = csv_of(run_experiment(ds, formats, dd_cfg, cold), "cache_cold");
  EXPECT_EQ(cold_stats.reference_dd_solves, ds.size());

  ScheduleOptions warm = cold;
  warm.stats = &warm_stats;
  const std::string warm_csv = csv_of(run_experiment(ds, formats, dd_cfg, warm), "cache_warm");
  EXPECT_EQ(warm_stats.reference_solves, 0u);
  EXPECT_EQ(warm_stats.reference_dd_solves, 0u);
  EXPECT_EQ(warm_stats.reference_cache_hits, ds.size());
  EXPECT_EQ(cold_csv, warm_csv);
}

TEST(ReferenceTierJournal, MetaRecordsTierAndOldJournalsReadAsF128Only) {
  const ExperimentConfig dd_cfg = tier_config(ReferenceTier::dd_first);
  const std::vector<FormatId> formats = {FormatId::float32};
  const JournalMeta meta = make_journal_meta(dd_cfg, formats, 1);
  EXPECT_EQ(meta.reference_tier, static_cast<int>(ReferenceTier::dd_first));

  const std::string path = "test_out/ddtier_meta.jsonl";
  std::filesystem::create_directories("test_out");
  {
    JournalWriter w(path, /*truncate=*/true);
    w.write_meta(meta);
  }
  const JournalContents jc = read_journal(path);
  ASSERT_TRUE(jc.has_meta);
  EXPECT_EQ(jc.meta.reference_tier, static_cast<int>(ReferenceTier::dd_first));
  EXPECT_TRUE(jc.meta == meta);

  // Strip the ref_tier field to simulate a journal written before the
  // tier existed: it must read back as f128_only (the old behavior).
  const std::string old_path = "test_out/ddtier_meta_old.jsonl";
  {
    std::ifstream in(path);
    std::ofstream out(old_path, std::ios::trunc);
    std::string line;
    while (std::getline(in, line)) {
      const auto pos = line.find(",\"ref_tier\":1");
      ASSERT_NE(pos, std::string::npos);
      out << line.substr(0, pos) + line.substr(pos + 13) << '\n';
    }
  }
  const JournalContents old_jc = read_journal(old_path);
  ASSERT_TRUE(old_jc.has_meta);
  EXPECT_EQ(old_jc.meta.reference_tier, static_cast<int>(ReferenceTier::f128_only));
  std::remove(path.c_str());
  std::remove(old_path.c_str());
}

TEST(ReferenceTierNames, ParseAndPrintRoundTrip) {
  EXPECT_STREQ(reference_tier_name(ReferenceTier::f128_only), "f128_only");
  EXPECT_STREQ(reference_tier_name(ReferenceTier::dd_first), "dd_first");
  EXPECT_EQ(reference_tier_from_name("f128_only"), ReferenceTier::f128_only);
  EXPECT_EQ(reference_tier_from_name("dd_first"), ReferenceTier::dd_first);
  EXPECT_THROW((void)reference_tier_from_name("quad"), std::invalid_argument);
  EXPECT_THROW((void)reference_tier_from_name(""), std::invalid_argument);
}

}  // namespace
}  // namespace mfla
