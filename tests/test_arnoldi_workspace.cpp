// Allocation-free hot-loop tests: a global operator-new hook counts heap
// allocations and asserts the steady-state Arnoldi inner loop performs
// none, and golden digests pin partialschur's results bit-for-bit to the
// pre-workspace-refactor implementation across all <=16-bit formats.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <new>
#include <string>
#include <vector>

#include "core/krylov_schur.hpp"
#include "graph/generators.hpp"
#include "graph/laplacian.hpp"
#include "sparse/csr.hpp"
#include "support/hash.hpp"
#include "support/rng.hpp"

// ---------------------------------------------------------------------------
// Global operator-new hook. Replacing these in the test binary intercepts
// every heap allocation of the process (including the library's), which is
// exactly what we want: the steady-state Arnoldi step must do none.
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};

void* counted_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace mfla {
namespace {

CsrMatrix<double> workspace_matrix() {
  Rng gr(0x60a1);
  return CsrMatrix<double>::from_coo(graph_laplacian_pipeline(erdos_renyi(48, 0.18, gr)));
}

// libm-free deterministic start vector: splitmix words -> [-1, 1), then
// exact normalization (sqrt and division are correctly rounded, so the
// resulting bits are identical on every IEEE-conforming platform).
std::vector<double> golden_start(std::size_t n) {
  SplitMix64 sm(0x5eedf00dull);
  std::vector<double> v(n);
  double nrm2 = 0.0;
  for (auto& x : v) {
    x = static_cast<double>(sm.next() >> 11) * 0x1.0p-52 - 1.0;
    nrm2 += x * x;
  }
  const double inv = 1.0 / mfla::sqrt(nrm2);
  for (auto& x : v) x *= inv;
  return v;
}

// ---------------------------------------------------------------------------
// Zero steady-state allocations per arnoldi_step
// ---------------------------------------------------------------------------

template <typename T>
void expect_allocation_free_steps() {
  const CsrMatrix<double> ad = workspace_matrix();
  const CsrMatrix<T> a = ad.convert<T>();
  const std::size_t n = a.rows();
  const std::size_t maxdim = 16;

  DenseMatrix<T> v(n, maxdim + 1);
  DenseMatrix<T> s(maxdim + 1, maxdim);
  ArnoldiWorkspace<T> ws;
  ws.reserve(n, maxdim);
  Rng rng(0x5157);

  const std::vector<double> v0 = golden_start(n);
  auto load_start = [&] {
    for (std::size_t i = 0; i < n; ++i) v(i, 0) = NumTraits<T>::from_double(v0[i]);
    const T nrm = kernels::nrm2(n, v.col(0));
    kernels::scal(n, T(1) / nrm, v.col(0));
  };

  // Warm-up expansion: faults in the lazily built LUT tables and any other
  // one-time setup, and serves as the steady state the assertion targets.
  load_start();
  s.fill(T(0));
  for (std::size_t j = 0; j < maxdim; ++j)
    ASSERT_NE(arnoldi_step(a, v, s, j, rng, ws), ExpandStatus::failed);

  // Steady state: a full second expansion must not allocate at all.
  load_start();
  s.fill(T(0));
  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (std::size_t j = 0; j < maxdim; ++j)
    ASSERT_NE(arnoldi_step(a, v, s, j, rng, ws), ExpandStatus::failed);
  const std::uint64_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u) << "arnoldi_step allocated on its steady-state path";
}

TEST(ArnoldiWorkspace, StepsAreAllocationFreeDouble) {
  expect_allocation_free_steps<double>();
}

TEST(ArnoldiWorkspace, StepsAreAllocationFreeFloat16) {
  expect_allocation_free_steps<Float16>();
}

TEST(ArnoldiWorkspace, StepsAreAllocationFreeE4M3) {
  expect_allocation_free_steps<OFP8E4M3>();
}

TEST(ArnoldiWorkspace, StepsAreAllocationFreeTakum16) {
  expect_allocation_free_steps<Takum16>();
}

// The operator-new hook itself must be live, or the zero-count assertions
// above would pass vacuously.
TEST(ArnoldiWorkspace, AllocationHookIsLive) {
  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  auto* p = new std::vector<int>(128);
  delete p;
  EXPECT_GT(g_alloc_count.load(std::memory_order_relaxed), before);
}

// ---------------------------------------------------------------------------
// Bit-identity against the pre-refactor solver
// ---------------------------------------------------------------------------

/// Digest of everything partialschur produces, in double bit patterns.
template <typename T>
Hash128 partialschur_digest(const CsrMatrix<double>& ad, const std::vector<double>& start) {
  const CsrMatrix<T> a = ad.convert<T>();
  PartialSchurOptions opts;
  opts.nev = 6;
  opts.which = Which::largest_magnitude;
  opts.tolerance = NumTraits<T>::default_tolerance();
  opts.max_restarts = 60;
  opts.start_vector = &start;
  opts.seed = 0xbeef;
  const auto r = partialschur<T>(a, opts);
  Hasher h;
  h.u64(r.converged ? 1 : 0).u64(r.nconverged).u64(static_cast<std::uint64_t>(r.restarts));
  h.u64(r.matvecs);
  h.span(r.eig_re.data(), r.eig_re.size());
  h.span(r.eig_im.data(), r.eig_im.size());
  for (std::size_t j = 0; j < r.q.cols(); ++j)
    for (std::size_t i = 0; i < r.q.rows(); ++i) h.f64(NumTraits<T>::to_double(r.q(i, j)));
  for (std::size_t j = 0; j < r.r.cols(); ++j)
    for (std::size_t i = 0; i < r.r.rows(); ++i) h.f64(NumTraits<T>::to_double(r.r(i, j)));
  return h.finish();
}

TEST(PartialSchurBitIdentity, MatchesPreRefactorGoldensForNarrowFormats) {
  // Golden digests captured from the pre-workspace-refactor solver (PR 3
  // state) on this exact matrix (erdos_renyi(48, 0.18) laplacian, n=48,
  // nnz=440) and start vector. The solve path is libm-free end to end
  // (emulated-format arithmetic; double appears only in exactly rounded
  // ops), so these bits are platform-independent for IEEE-conforming
  // doubles. Any divergence means the workspace refactor (or a later
  // change) altered the arithmetic, not just the allocations.
  const std::map<std::string, Hash128> golden = {
      {"e4m3", {0xa178776472d802d2ull, 0xf99c4f9ed025570bull}},
      {"e5m2", {0x1c4b0558d0a270a7ull, 0x16a6a59116bad84dull}},
      {"p8", {0xe0533f1a6d8f96d7ull, 0xab54545ea95cb493ull}},
      {"t8", {0xeb5aa60d0fe59a9cull, 0xea094799c8846e27ull}},
      {"f16", {0x81bf7d81a26f25edull, 0xe8d0e39f0fa88e4bull}},
      {"bf16", {0xd79508f1a1255361ull, 0x749e458b99697d45ull}},
      {"p16", {0x34bdb8094c1fb666ull, 0xa8a54a99e3dd41b3ull}},
      {"t16", {0x78ea1da36a9e7c3dull, 0x034aeee182ddf984ull}},
  };
  const CsrMatrix<double> a = workspace_matrix();
  ASSERT_EQ(a.rows(), 48u);
  ASSERT_EQ(a.nnz(), 440u);
  const std::vector<double> start = golden_start(a.rows());

  const auto check = [&](const char* key, const Hash128& digest) {
    const auto it = golden.find(key);
    ASSERT_NE(it, golden.end());
    EXPECT_EQ(digest, it->second) << "partialschur<" << key << "> diverged from the "
                                  << "pre-refactor bits";
  };
  check("e4m3", partialschur_digest<OFP8E4M3>(a, start));
  check("e5m2", partialschur_digest<OFP8E5M2>(a, start));
  check("p8", partialschur_digest<Posit8>(a, start));
  check("t8", partialschur_digest<Takum8>(a, start));
  check("f16", partialschur_digest<Float16>(a, start));
  check("bf16", partialschur_digest<BFloat16>(a, start));
  check("p16", partialschur_digest<Posit16>(a, start));
  check("t16", partialschur_digest<Takum16>(a, start));
}

// The LUT fast paths (including the precomputed-offset SpMV the 8-bit
// formats now take inside CsrMatrix::matvec) must not change a single bit:
// the same digests must come out with every fast path disabled.
TEST(PartialSchurBitIdentity, LutOnAndOffAgree) {
  const CsrMatrix<double> a = workspace_matrix();
  const std::vector<double> start = golden_start(a.rows());

  const Hash128 on_e4m3 = partialschur_digest<OFP8E4M3>(a, start);
  const Hash128 on_p16 = partialschur_digest<Posit16>(a, start);
  const bool was = kernels::set_lut_enabled(false);
  const Hash128 off_e4m3 = partialschur_digest<OFP8E4M3>(a, start);
  const Hash128 off_p16 = partialschur_digest<Posit16>(a, start);
  kernels::set_lut_enabled(was);
  EXPECT_EQ(on_e4m3, off_e4m3);
  EXPECT_EQ(on_p16, off_p16);
}

// ---------------------------------------------------------------------------
// Planned SpMV: bit-identity and plan lifecycle
// ---------------------------------------------------------------------------

template <typename T>
void expect_planned_spmv_identity() {
  const CsrMatrix<double> ad = workspace_matrix();
  const CsrMatrix<T> a = ad.convert<T>();  // plan built by convert()
  const std::size_t n = a.rows();
  std::vector<T> x(n), y_planned(n), y_generic(n), y_ref(n);
  SplitMix64 sm(0xabc);
  for (std::size_t i = 0; i < n; ++i)
    x[i] = NumTraits<T>::from_double(static_cast<double>(sm.next() >> 11) * 0x1.0p-52 - 1.0);

  a.matvec(x.data(), y_planned.data());  // planned path (LUT build default on)
  kernels::spmv(a.rows(), a.row_ptr().data(), a.col_idx().data(), a.values().data(), x.data(),
                y_generic.data());
  kernels::ref::spmv(a.rows(), a.row_ptr().data(), a.col_idx().data(), a.values().data(),
                     x.data(), y_ref.data());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(NumTraits<T>::to_double(y_planned[i]), NumTraits<T>::to_double(y_generic[i]));
    EXPECT_EQ(NumTraits<T>::to_double(y_planned[i]), NumTraits<T>::to_double(y_ref[i]));
  }
}

TEST(PlannedSpmv, BitIdenticalToGenericAndReferenceE4M3) {
  expect_planned_spmv_identity<OFP8E4M3>();
}

TEST(PlannedSpmv, BitIdenticalToGenericAndReferencePosit8) {
  expect_planned_spmv_identity<Posit8>();
}

TEST(PlannedSpmv, MutatingValuesDropsThePlanButStaysCorrect) {
  const CsrMatrix<double> ad = workspace_matrix();
  CsrMatrix<OFP8E4M3> a = ad.convert<OFP8E4M3>();
  const std::size_t n = a.rows();

  // Mutate one value through the explicit mutator: the plan is dropped,
  // matvec falls back to the generic kernel and must reflect the new value.
  a.mutable_values()[0] = OFP8E4M3::from_double(0.5);
  std::vector<OFP8E4M3> x(n, OFP8E4M3::from_double(1.0)), y_after(n), y_generic(n);
  a.matvec(x.data(), y_after.data());
  kernels::spmv(a.rows(), a.row_ptr().data(), a.col_idx().data(), a.values().data(), x.data(),
                y_generic.data());
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_EQ(y_after[i].to_double(), y_generic[i].to_double());

  // rebuild_spmv_plan() restores the fast path with the current bits.
  a.rebuild_spmv_plan();
  std::vector<OFP8E4M3> y_rebuilt(n);
  a.matvec(x.data(), y_rebuilt.data());
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_EQ(y_rebuilt[i].to_double(), y_generic[i].to_double());
}

}  // namespace
}  // namespace mfla
