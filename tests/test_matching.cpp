// Eigenpair matching tests (the paper's §2.2 pipeline): cosine similarity,
// permutation recovery, sign correction, error metrics.
#include <gtest/gtest.h>

#include <cmath>

#include "core/errors.hpp"
#include "core/matching.hpp"
#include "support/rng.hpp"

namespace mfla {
namespace {

DenseMatrix<double> random_orthonormal_cols(std::size_t n, std::size_t k, Rng& rng) {
  DenseMatrix<double> m(n, k);
  for (std::size_t j = 0; j < k; ++j) {
    auto v = rng.unit_vector(n);
    // Gram-Schmidt against previous columns.
    for (std::size_t p = 0; p < j; ++p) {
      double d = 0;
      for (std::size_t i = 0; i < n; ++i) d += m(i, p) * v[i];
      for (std::size_t i = 0; i < n; ++i) v[i] -= d * m(i, p);
    }
    double nr = 0;
    for (const double x : v) nr += x * x;
    nr = std::sqrt(nr);
    for (std::size_t i = 0; i < n; ++i) m(i, j) = v[i] / nr;
  }
  return m;
}

TEST(CosineSimilarity, OrthonormalBasisGivesIdentity) {
  Rng rng(81);
  const auto q = random_orthonormal_cols(40, 6, rng);
  const auto c = cosine_similarity(q, q);
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 6; ++j)
      EXPECT_NEAR(c(i, j), i == j ? 1.0 : 0.0, 1e-12);
}

TEST(CosineSimilarity, SignInvariant) {
  Rng rng(82);
  const auto q = random_orthonormal_cols(30, 3, rng);
  DenseMatrix<double> flipped = q;
  for (std::size_t i = 0; i < 30; ++i) flipped(i, 1) = -flipped(i, 1);
  const auto c = cosine_similarity(q, flipped);
  EXPECT_NEAR(c(1, 1), 1.0, 1e-12);  // |cosine| ignores the sign
}

TEST(CosineSimilarity, ScaleInvariant) {
  Rng rng(83);
  const auto q = random_orthonormal_cols(30, 3, rng);
  DenseMatrix<double> scaled = q;
  for (std::size_t i = 0; i < 30; ++i) scaled(i, 2) *= 123.0;
  const auto c = cosine_similarity(q, scaled);
  EXPECT_NEAR(c(2, 2), 1.0, 1e-12);
}

TEST(Matching, RecoversPermutationAndSigns) {
  Rng rng(84);
  const std::size_t n = 50, k = 6;
  const auto ref = random_orthonormal_cols(n, k, rng);
  // Shuffle columns with a known permutation and flip some signs.
  const int perm[6] = {4, 2, 0, 5, 1, 3};  // cmp column j = ref column ...
  const double signs[6] = {1, -1, 1, -1, -1, 1};
  DenseMatrix<double> cmp(n, k);
  for (std::size_t rcol = 0; rcol < k; ++rcol) {
    // place ref column rcol at cmp position perm[rcol]
    for (std::size_t i = 0; i < n; ++i)
      cmp(i, static_cast<std::size_t>(perm[rcol])) = signs[rcol] * ref(i, rcol);
  }
  const auto match = match_eigenvectors(ref, cmp);
  for (std::size_t rcol = 0; rcol < k; ++rcol) {
    EXPECT_EQ(match.permutation[rcol], perm[rcol]);
  }
  const auto aligned = apply_match(cmp, match);
  for (std::size_t j = 0; j < k; ++j)
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(aligned(i, j), ref(i, j), 1e-12);
  EXPECT_NEAR(match.mean_similarity, 1.0, 1e-12);
}

TEST(Matching, HandlesNoisyVectors) {
  Rng rng(85);
  const std::size_t n = 60, k = 5;
  const auto ref = random_orthonormal_cols(n, k, rng);
  DenseMatrix<double> cmp(n, k);
  // Reversed order plus noise.
  for (std::size_t j = 0; j < k; ++j)
    for (std::size_t i = 0; i < n; ++i)
      cmp(i, k - 1 - j) = ref(i, j) + 0.01 * rng.normal();
  const auto match = match_eigenvectors(ref, cmp);
  for (std::size_t j = 0; j < k; ++j) EXPECT_EQ(match.permutation[j], static_cast<int>(k - 1 - j));
  EXPECT_GT(match.mean_similarity, 0.99);
}

TEST(Matching, EigenvaluePermutation) {
  MatchResult m;
  m.permutation = {2, 0, 1};
  m.sign = {1, 1, 1};
  const std::vector<double> values{10.0, 20.0, 30.0};
  const auto p = apply_match(values, m);
  EXPECT_DOUBLE_EQ(p[0], 30.0);
  EXPECT_DOUBLE_EQ(p[1], 10.0);
  EXPECT_DOUBLE_EQ(p[2], 20.0);
}

TEST(Matching, BufferColumnsGetMatchedButNotScored) {
  // nev = 2 scored, buffer = 1: a swap within the buffered tail must not
  // hurt the scored error (this is the paper's buffer rationale).
  Rng rng(86);
  const std::size_t n = 40;
  const auto ref = random_orthonormal_cols(n, 3, rng);
  DenseMatrix<double> cmp(n, 3);
  for (std::size_t i = 0; i < n; ++i) {
    cmp(i, 0) = ref(i, 0);
    cmp(i, 1) = ref(i, 2);  // buffer-area content swapped
    cmp(i, 2) = ref(i, 1);
  }
  const auto match = match_eigenvectors(ref, cmp);
  const auto aligned = apply_match(cmp, match);
  const auto err = eigenvector_errors(ref, aligned, 2);  // score only nev = 2
  EXPECT_NEAR(err.relative, 0.0, 1e-12);
}

// ---- Error metrics -------------------------------------------------------------

TEST(Errors, EigenvalueL2) {
  const std::vector<double> ref{3.0, 4.0};
  const std::vector<double> cmp{3.0, 4.0};
  const auto e = eigenvalue_errors(ref, cmp, 2);
  EXPECT_DOUBLE_EQ(e.absolute, 0.0);
  EXPECT_DOUBLE_EQ(e.relative, 0.0);
  const std::vector<double> off{3.0, 4.5};
  const auto e2 = eigenvalue_errors(ref, off, 2);
  EXPECT_DOUBLE_EQ(e2.absolute, 0.5);
  EXPECT_DOUBLE_EQ(e2.relative, 0.5 / 5.0);
}

TEST(Errors, OnlyFirstNevScored) {
  const std::vector<double> ref{1.0, 1.0, 100.0};
  const std::vector<double> cmp{1.0, 1.0, -100.0};
  const auto e = eigenvalue_errors(ref, cmp, 2);
  EXPECT_DOUBLE_EQ(e.relative, 0.0);
}

TEST(Errors, EigenvectorFrobenius) {
  DenseMatrix<double> ref(2, 2), cmp(2, 2);
  ref(0, 0) = 1;
  ref(1, 1) = 1;
  cmp(0, 0) = 1;
  cmp(1, 1) = 0;  // second column zeroed
  const auto e = eigenvector_errors(ref, cmp, 2);
  EXPECT_DOUBLE_EQ(e.absolute, 1.0);
  EXPECT_DOUBLE_EQ(e.relative, 1.0 / std::sqrt(2.0));
}

TEST(Errors, InfiniteWhenEmpty) {
  const auto e = eigenvalue_errors({}, {}, 2);
  EXPECT_DOUBLE_EQ(e.absolute, 0.0);  // no entries -> zero diff, zero ref
}

}  // namespace
}  // namespace mfla
