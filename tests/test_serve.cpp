// Serving-layer tests (docs/SERVING.md): protocol round-trips (valid,
// malformed, oversized), scheduler admission control, and an in-process
// daemon driven through real Unix-domain sockets — concurrent tenants
// with interleaved-but-internally-ordered streams, client-reconstructed
// CSVs byte-compared against the direct api::Sweep path, a client dying
// mid-stream plus journal-resumed retry, explicit over-capacity
// rejections, and a graceful drain that leaves no state behind.
//
// Every daemon test shares one state root so the server-side reference
// cache warms once; results are bit-identical either way, which is the
// point of the byte-compare assertions.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/api.hpp"
#include "serve/client.hpp"
#include "serve/net.hpp"
#include "serve/protocol.hpp"
#include "serve/scheduler.hpp"
#include "serve/server.hpp"
#include "support/failpoint.hpp"

namespace mfla {
namespace {

// ---------------------------------------------------------------------------
// Protocol
// ---------------------------------------------------------------------------

serve::SweepRequest small_request(const std::string& tenant) {
  serve::SweepRequest req;
  req.tenant = tenant;
  req.corpus = "general";
  req.count = 2;
  req.formats = "f16,p16,t16";
  req.nev = 4;
  req.buffer = 2;
  req.restarts = 40;
  return req;
}

TEST(ServeProtocol, RequestSerializationRoundTrips) {
  serve::SweepRequest req = small_request("ci");
  req.seed = 12345;
  req.which = "smallest_magnitude";
  req.ref_tier = "dd_first";
  req.resume = false;

  serve::Request parsed;
  std::string err;
  ASSERT_TRUE(serve::parse_request(serve::serialize_request(req), parsed, err)) << err;
  ASSERT_EQ(parsed.kind, serve::Request::Kind::sweep);
  EXPECT_EQ(parsed.sweep.tenant, "ci");
  EXPECT_EQ(parsed.sweep.corpus, "general");
  EXPECT_EQ(parsed.sweep.count, 2u);
  EXPECT_EQ(parsed.sweep.formats, "f16,p16,t16");
  EXPECT_EQ(parsed.sweep.nev, 4u);
  EXPECT_EQ(parsed.sweep.buffer, 2u);
  EXPECT_EQ(parsed.sweep.restarts, 40);
  EXPECT_EQ(parsed.sweep.seed, 12345u);
  EXPECT_EQ(parsed.sweep.which, "smallest_magnitude");
  EXPECT_EQ(parsed.sweep.ref_tier, "dd_first");
  EXPECT_FALSE(parsed.sweep.resume);

  ASSERT_TRUE(serve::parse_request(serve::serialize_stats_request(), parsed, err)) << err;
  EXPECT_EQ(parsed.kind, serve::Request::Kind::stats);
}

TEST(ServeProtocol, MalformedRequestsAreRejectedWithAMessage) {
  serve::Request parsed;
  std::string err;
  EXPECT_FALSE(serve::parse_request("not json at all", parsed, err));
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(serve::parse_request("{\"no_type\":1}", parsed, err));
  EXPECT_FALSE(serve::parse_request("{\"type\":\"launch_missiles\"}", parsed, err));
  // Bad numbers in known fields are malformed, not silently defaulted.
  EXPECT_FALSE(serve::parse_request("{\"type\":\"sweep\",\"count\":\"elephant\"}", parsed, err));
  // An empty tenant would poison the admission bookkeeping.
  EXPECT_FALSE(serve::parse_request("{\"type\":\"sweep\",\"tenant\":\"\"}", parsed, err));
  // Unknown KEYS are forward-compatible and ignored.
  EXPECT_TRUE(
      serve::parse_request("{\"type\":\"sweep\",\"future_knob\":\"on\"}", parsed, err))
      << err;
}

TEST(ServeProtocol, SweepIdHashesEveryResultAffectingField) {
  const serve::SweepRequest base = small_request("a");
  EXPECT_EQ(serve::sweep_id(base), serve::sweep_id(base));
  EXPECT_EQ(serve::sweep_id(base).size(), 32u);

  serve::SweepRequest other = base;
  other.tenant = "b";
  EXPECT_NE(serve::sweep_id(base), serve::sweep_id(other));
  other = base;
  other.seed ^= 1;
  EXPECT_NE(serve::sweep_id(base), serve::sweep_id(other));
  other = base;
  other.formats = "f16,p16";
  EXPECT_NE(serve::sweep_id(base), serve::sweep_id(other));
  // resume is a retry knob, not an identity field: the retried request must
  // land in the same journal namespace.
  other = base;
  other.resume = !base.resume;
  EXPECT_EQ(serve::sweep_id(base), serve::sweep_id(other));
}

TEST(ServeProtocol, RunEventsRoundTripDoublesExactly) {
  FormatRun run;
  run.format = FormatId::takum16;
  run.outcome = RunOutcome::ok;
  run.eigenvalue_error = {1.0 / 3.0, 6.02214076e23};
  run.eigenvector_error = {std::numeric_limits<double>::infinity(), 1e-308};
  run.mean_similarity = 0.12345678901234567;
  run.nconverged = 6;
  run.restarts = 17;
  run.matvecs = 421;
  run.duration_seconds = 0.25;
  run.failure = "needs \"quoting\"\n\tand control bytes";

  serve::Event ev;
  ASSERT_TRUE(serve::parse_event(serve::run_line("mat_a", 50, 400, run, true), ev));
  EXPECT_EQ(ev.type, "run");
  EXPECT_EQ(ev.fields.at("matrix"), "mat_a");
  EXPECT_EQ(ev.fields.at("replayed"), "1");
  const FormatRun back = serve::run_from_event(ev);
  EXPECT_EQ(back.format, run.format);
  EXPECT_EQ(back.outcome, run.outcome);
  EXPECT_EQ(back.eigenvalue_error.absolute, run.eigenvalue_error.absolute);
  EXPECT_EQ(back.eigenvalue_error.relative, run.eigenvalue_error.relative);
  EXPECT_EQ(back.eigenvector_error.absolute, run.eigenvector_error.absolute);
  EXPECT_EQ(back.eigenvector_error.relative, run.eigenvector_error.relative);
  EXPECT_EQ(back.mean_similarity, run.mean_similarity);
  EXPECT_EQ(back.nconverged, run.nconverged);
  EXPECT_EQ(back.restarts, run.restarts);
  EXPECT_EQ(back.matvecs, run.matvecs);
  EXPECT_EQ(back.duration_seconds, run.duration_seconds);
  EXPECT_EQ(back.failure, run.failure);
}

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

TEST(ServeScheduler, RejectsBeyondCapacityAndEnforcesTenantShare) {
  serve::Scheduler sched({/*max_active=*/1, /*max_queued=*/0, /*max_per_tenant=*/1});
  serve::Scheduler::Slot a;
  ASSERT_EQ(sched.acquire("alice", a), serve::Admission::admitted);
  // alice is at her share; bob hits the global bound (no queue).
  serve::Scheduler::Slot dummy;
  EXPECT_EQ(sched.acquire("alice", dummy), serve::Admission::tenant_quota);
  EXPECT_EQ(sched.acquire("bob", dummy), serve::Admission::overloaded);
  a.release();
  EXPECT_EQ(sched.acquire("bob", dummy), serve::Admission::admitted);
  const serve::SchedulerStats s = sched.stats();
  EXPECT_EQ(s.admitted, 2u);
  EXPECT_EQ(s.rejected_tenant, 1u);
  EXPECT_EQ(s.rejected_overloaded, 1u);
}

TEST(ServeScheduler, QueuedTicketsRunInFifoOrderAndShutdownRejectsThem) {
  serve::Scheduler sched({/*max_active=*/1, /*max_queued=*/4, /*max_per_tenant=*/4});
  serve::Scheduler::Slot first;
  ASSERT_EQ(sched.acquire("t", first), serve::Admission::admitted);

  std::vector<int> order;
  std::mutex order_mtx;
  std::atomic<int> queued{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < 3; ++i) {
    waiters.emplace_back([&, i] {
      queued.fetch_add(1);
      serve::Scheduler::Slot slot;
      const serve::Admission adm = sched.acquire("t", slot);
      std::lock_guard<std::mutex> lk(order_mtx);
      order.push_back(adm == serve::Admission::admitted ? i : -1);
    });
    // Stagger starts so queue order is deterministic.
    while (queued.load() <= i) std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }
  // Release the head twice: tickets 0 and 1 should be admitted in order.
  first.release();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  // Ticket 0 got the slot and still holds it inside its thread's Slot...
  // which released it at scope end, so ticket 1 follows. Shut down before 2
  // can be sure of a slot — but 0 and 1 may both have finished; allow that
  // and only require FIFO among the admitted prefix.
  sched.begin_shutdown();
  for (auto& w : waiters) w.join();
  ASSERT_EQ(order.size(), 3u);
  std::vector<int> admitted;
  for (const int v : order)
    if (v >= 0) admitted.push_back(v);
  for (std::size_t i = 1; i < admitted.size(); ++i) EXPECT_LT(admitted[i - 1], admitted[i]);
  serve::Scheduler::Slot dummy;
  EXPECT_EQ(sched.acquire("t", dummy), serve::Admission::shutting_down);
}

// ---------------------------------------------------------------------------
// Daemon end-to-end (in-process server, real sockets)
// ---------------------------------------------------------------------------

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Shared state root: the server-side reference cache warms on the first
/// daemon sweep and every later test serves references from it. Cleared
/// once per binary run.
const std::string& state_root() {
  static const std::string root = [] {
    std::filesystem::remove_all("test_out/serve_state");
    std::filesystem::create_directories("test_out/serve_state");
    return std::string("test_out/serve_state");
  }();
  return root;
}

/// In-process daemon running its accept loop on a background thread.
struct DaemonFixture {
  explicit DaemonFixture(const std::string& tag, serve::SchedulerLimits limits = {}) {
    serve::ServerOptions opts;
    opts.socket_path = "test_out/" + tag + ".sock";
    opts.state_dir = state_root();
    opts.threads = 4;
    opts.limits = limits;
    opts.io_timeout_ms = 60000;
    opts.accept_poll_ms = 20;
    server = std::make_unique<serve::Server>(opts);
    loop = std::thread([this] { server->serve(); });
  }
  ~DaemonFixture() { stop(); }

  void stop() {
    if (!loop.joinable()) return;
    server->request_drain();
    loop.join();
  }

  [[nodiscard]] serve::ClientOptions client() const {
    serve::ClientOptions copts;
    copts.socket_path = server->options().socket_path;
    return copts;
  }

  std::unique_ptr<serve::Server> server;
  std::thread loop;
};

/// The expected artifacts for small_request(), computed once via the
/// direct api::Sweep path — the daemon must reproduce this byte stream.
struct Expected {
  std::vector<std::string> matrix_order;
  std::string csv;
};
const Expected& expected_small_sweep() {
  static const Expected e = [] {
    GeneralCorpusOptions copts;
    copts.count = 2;
    std::vector<TestMatrix> dataset = build_general_corpus(copts);
    Expected out;
    for (const auto& tm : dataset) out.matrix_order.push_back(tm.name);
    const api::SweepResult r = api::Sweep::over(std::move(dataset))
                                   .formats("f16,p16,t16")
                                   .nev(4)
                                   .buffer(2)
                                   .restarts(40)
                                   .run();
    const std::string path = "test_out/serve_expected_raw.csv";
    write_results_csv(path, r.results);
    out.csv = slurp(path);
    std::filesystem::remove(path);
    return out;
  }();
  return e;
}

/// Retry an identical request like a real client would: the previous
/// attempt's connection may have died client-side while the server is
/// still finishing (and journaling) the canceled sweep, during which an
/// identical spec is rejected as "duplicate" to protect its journal.
serve::ClientResult retry_sweep(const serve::ClientOptions& opts,
                                const serve::SweepRequest& req) {
  serve::ClientResult r;
  for (int attempt = 0; attempt < 200; ++attempt) {
    r = serve::run_sweep(opts, req);
    if (r.status != serve::ClientResult::Status::rejected || r.reject_reason != "duplicate")
      return r;
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  return r;
}

std::string client_csv(const serve::ClientResult& r, const std::string& tag) {
  const std::string path = "test_out/serve_" + tag + "_raw.csv";
  write_results_csv(path, r.results);
  std::string data = slurp(path);
  std::filesystem::remove(path);
  return data;
}

TEST(ServeDaemon, SingleSweepReconstructsByteIdenticalCsv) {
  DaemonFixture daemon("serve_single");
  const serve::ClientResult r = serve::run_sweep(daemon.client(), small_request("solo"));
  ASSERT_EQ(r.status, serve::ClientResult::Status::ok) << r.error;
  EXPECT_FALSE(r.sweep_id.empty());
  ASSERT_EQ(r.results.size(), 2u);
  // Dataset order survives the wire (matrix announcements are ordered).
  for (std::size_t i = 0; i < r.results.size(); ++i)
    EXPECT_EQ(r.results[i].name, expected_small_sweep().matrix_order[i]);
  EXPECT_EQ(client_csv(r, "single"), expected_small_sweep().csv);

  // The stats endpoint counts what just happened.
  serve::Event ev;
  ASSERT_TRUE(serve::parse_event(serve::fetch_stats(daemon.client()), ev));
  EXPECT_EQ(ev.type, "stats");
  EXPECT_EQ(ev.fields.at("sweeps_ok"), "1");
  daemon.stop();
}

TEST(ServeDaemon, MalformedAndOversizedRequestsDoNotKillTheDaemon) {
  DaemonFixture daemon("serve_malformed");
  const std::string socket = daemon.server->options().socket_path;

  {  // Garbage line -> one rejected line, connection survives to read it.
    serve::Fd fd = serve::connect_unix(socket);
    std::string err;
    ASSERT_TRUE(serve::send_line(fd.get(), "this is not a request", err)) << err;
    serve::LineReader reader(fd.get(), serve::kMaxEventBytes);
    std::string line;
    ASSERT_EQ(reader.read_line(line, err), serve::LineReader::Status::ok) << err;
    serve::Event ev;
    ASSERT_TRUE(serve::parse_event(line, ev));
    EXPECT_EQ(ev.type, "rejected");
    EXPECT_EQ(ev.fields.at("reason"), "bad_request");
  }
  {  // A request over the size bound is rejected without unbounded buffering.
    serve::Fd fd = serve::connect_unix(socket);
    std::string err;
    std::string huge = "{\"type\":\"sweep\",\"tenant\":\"";
    huge.append(serve::kMaxRequestBytes + 1024, 'x');
    huge += "\"}";
    ASSERT_TRUE(serve::send_line(fd.get(), huge, err)) << err;
    serve::LineReader reader(fd.get(), serve::kMaxEventBytes);
    std::string line;
    ASSERT_EQ(reader.read_line(line, err), serve::LineReader::Status::ok) << err;
    serve::Event ev;
    ASSERT_TRUE(serve::parse_event(line, ev));
    EXPECT_EQ(ev.type, "rejected");
  }
  {  // Unknown corpus / bad formats are rejected before admission.
    serve::SweepRequest bad = small_request("m");
    bad.corpus = "imaginary";
    const serve::ClientResult r = serve::run_sweep(daemon.client(), bad);
    ASSERT_EQ(r.status, serve::ClientResult::Status::rejected);
    EXPECT_EQ(r.reject_reason, "bad_request");
  }

  // After all that abuse, the daemon still serves a real sweep.
  const serve::ClientResult r = serve::run_sweep(daemon.client(), small_request("m"));
  ASSERT_EQ(r.status, serve::ClientResult::Status::ok) << r.error;
  EXPECT_EQ(client_csv(r, "after_abuse"), expected_small_sweep().csv);
  daemon.stop();
}

TEST(ServeDaemon, FourConcurrentTenantsGetInternallyOrderedByteIdenticalStreams) {
  serve::SchedulerLimits limits;
  limits.max_active = 4;
  limits.max_queued = 4;
  limits.max_per_tenant = 2;
  DaemonFixture daemon("serve_concurrent", limits);

  constexpr int kClients = 4;
  std::vector<serve::ClientResult> results(kClients);
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      results[i] =
          serve::run_sweep(daemon.client(), small_request("tenant" + std::to_string(i)));
    });
  }
  for (auto& c : clients) c.join();

  for (int i = 0; i < kClients; ++i) {
    ASSERT_EQ(results[i].status, serve::ClientResult::Status::ok)
        << "client " << i << ": " << results[i].error;
    // run_sweep enforces per-stream internal ordering (matrix announced
    // before its runs, every slot filled before done); on top of that,
    // every tenant's bytes must match the batch CLI path exactly.
    EXPECT_EQ(client_csv(results[i], "tenant" + std::to_string(i)),
              expected_small_sweep().csv)
        << "client " << i;
  }
  daemon.stop();
}

TEST(ServeDaemon, DeadClientCancelsSweepAndRetryResumesItsJournal) {
  DaemonFixture daemon("serve_deadclient");

  serve::ClientOptions abort_opts = daemon.client();
  abort_opts.abort_after_events = 3;  // die right after accepted+meta+matrix
  const serve::ClientResult dead = serve::run_sweep(abort_opts, small_request("mayfly"));
  EXPECT_EQ(dead.status, serve::ClientResult::Status::aborted);

  // The daemon notices the dead stream (write failure -> cancel), keeps the
  // journal, and a retried identical request resumes it — completing with
  // some mix of replayed and freshly executed runs, byte-identical output.
  const serve::ClientResult retry = retry_sweep(daemon.client(), small_request("mayfly"));
  ASSERT_EQ(retry.status, serve::ClientResult::Status::ok) << retry.error;
  EXPECT_EQ(client_csv(retry, "retry"), expected_small_sweep().csv);
  daemon.stop();
}

TEST(ServeDaemon, OverCapacityRequestsAreRejectedExplicitly) {
  serve::SchedulerLimits limits;
  limits.max_active = 1;
  limits.max_queued = 0;
  limits.max_per_tenant = 1;
  DaemonFixture daemon("serve_capacity", limits);

  // Hold the first sweep's slot deterministically: its first format run
  // sleeps at the engine failpoint while the connection thread waits.
  failpoint::Config delay;
  delay.action = failpoint::Action::delay;
  delay.delay_ms = 1500;
  delay.fire_count = 1;
  failpoint::ScopedFailpoint hold("engine.format_run", delay);

  std::atomic<bool> holder_done{false};
  serve::ClientResult holder;
  std::thread holder_thread([&] {
    holder = serve::run_sweep(daemon.client(), small_request("greedy"));
    holder_done.store(true);
  });
  // Give the holder time to be admitted and reach the delay.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  ASSERT_FALSE(holder_done.load());

  // A *different* spec from the same tenant (identical specs are caught
  // earlier, by the duplicate-sweep guard).
  serve::SweepRequest second = small_request("greedy");
  second.seed ^= 1;
  const serve::ClientResult same_tenant = serve::run_sweep(daemon.client(), second);
  ASSERT_EQ(same_tenant.status, serve::ClientResult::Status::rejected);
  EXPECT_EQ(same_tenant.reject_reason, "tenant_quota");

  serve::SweepRequest other = small_request("modest");
  const serve::ClientResult other_tenant = serve::run_sweep(daemon.client(), other);
  ASSERT_EQ(other_tenant.status, serve::ClientResult::Status::rejected);
  EXPECT_EQ(other_tenant.reject_reason, "overloaded");

  holder_thread.join();
  ASSERT_EQ(holder.status, serve::ClientResult::Status::ok) << holder.error;
  EXPECT_EQ(client_csv(holder, "holder"), expected_small_sweep().csv);
  daemon.stop();

  const serve::ServerStats s = daemon.server->stats_snapshot();
  EXPECT_GE(s.admission.rejected_tenant, 1u);
  EXPECT_GE(s.admission.rejected_overloaded, 1u);
}

TEST(ServeDaemon, MidStreamWriteFailureCancelsThatSweepOnly) {
  DaemonFixture daemon("serve_writefail");

  {
    // Hits 1-5: client request, accepted, meta, two matrix lines. Hit 6 —
    // the first streamed result — fails once; the daemon cancels that
    // sweep and stays up.
    failpoint::Config cfg;
    cfg.action = failpoint::Action::error;
    cfg.error_code = EPIPE;
    cfg.from_hit = 6;
    cfg.fire_count = 1;
    failpoint::ScopedFailpoint drop("serve.write", cfg);
    const serve::ClientResult r = serve::run_sweep(daemon.client(), small_request("victim"));
    EXPECT_NE(r.status, serve::ClientResult::Status::ok);
  }

  // The injected drop is gone; the same request resumes its journal and
  // completes byte-identically, and an unrelated tenant is unaffected.
  const serve::ClientResult retry = retry_sweep(daemon.client(), small_request("victim"));
  ASSERT_EQ(retry.status, serve::ClientResult::Status::ok) << retry.error;
  EXPECT_EQ(client_csv(retry, "writefail_retry"), expected_small_sweep().csv);
  daemon.stop();
}

TEST(ServeDaemon, DrainFinishesInFlightSweepsAndLeavesNoState) {
  DaemonFixture daemon("serve_drain");

  // Slow the in-flight sweep slightly so the drain demonstrably overlaps it.
  failpoint::Config delay;
  delay.action = failpoint::Action::delay;
  delay.delay_ms = 300;
  delay.fire_count = 1;
  failpoint::ScopedFailpoint hold("engine.format_run", delay);

  serve::ClientResult in_flight;
  std::thread client_thread([&] {
    in_flight = serve::run_sweep(daemon.client(), small_request("drainee"));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  daemon.stop();  // drain: listener closes first, the sweep finishes
  client_thread.join();

  ASSERT_EQ(in_flight.status, serve::ClientResult::Status::ok) << in_flight.error;
  EXPECT_EQ(client_csv(in_flight, "drained"), expected_small_sweep().csv);

  // New connections fail fast — the socket file is gone.
  EXPECT_THROW((void)serve::connect_unix(daemon.server->options().socket_path), IoError);

  // Completed sweeps removed their journal namespaces, and no temp files
  // linger anywhere under the state root.
  std::size_t leftovers = 0;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(daemon.server->options().state_dir)) {
    const std::string name = entry.path().filename().string();
    if (name.find(".tmp") != std::string::npos) ++leftovers;
  }
  EXPECT_EQ(leftovers, 0u);
  const std::filesystem::path sweeps =
      std::filesystem::path(daemon.server->options().state_dir) / "sweeps";
  EXPECT_TRUE(std::filesystem::is_empty(sweeps));
}

}  // namespace
}  // namespace mfla
