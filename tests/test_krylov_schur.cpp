// partialschur (IRAM with Krylov-Schur restarts) integration tests:
// correctness against dense oracles, ordering modes, invariant subspaces,
// eigenvalue multiplicities, restart behavior, low-precision operation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "arith/posit.hpp"
#include "arith/takum.hpp"
#include "core/krylov_schur.hpp"
#include "dense/jacobi.hpp"
#include "graph/generators.hpp"
#include "graph/laplacian.hpp"
#include "sparse/csr.hpp"
#include "support/rng.hpp"

namespace mfla {
namespace {

CsrMatrix<double> diagonal_matrix(const std::vector<double>& d) {
  CooMatrix coo(d.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i)
    coo.add(static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(i), d[i]);
  return CsrMatrix<double>::from_coo(coo);
}

CsrMatrix<double> random_sparse_symmetric(std::size_t n, double density, Rng& rng) {
  CooMatrix coo(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    coo.add(static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(i), rng.normal());
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.uniform() < density) {
        const double v = rng.normal();
        coo.add(static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(j), v);
        coo.add(static_cast<std::uint32_t>(j), static_cast<std::uint32_t>(i), v);
      }
    }
  }
  return CsrMatrix<double>::from_coo(coo);
}

std::vector<double> dense_spectrum(const CsrMatrix<double>& a) {
  const std::size_t n = a.rows();
  DenseMatrix<double> d(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) d(i, j) = a.at(i, j);
  DenseMatrix<double> v;
  EXPECT_GT(jacobi_eigen(d, v, 60), 0);
  std::vector<double> e(n);
  for (std::size_t i = 0; i < n; ++i) e[i] = d(i, i);
  return e;
}

TEST(PartialSchur, DiagonalMatrixExact) {
  std::vector<double> d(50);
  for (std::size_t i = 0; i < 50; ++i) d[i] = static_cast<double>(i) - 20.0;
  const auto a = diagonal_matrix(d);
  PartialSchurOptions opts;
  opts.nev = 5;
  opts.tolerance = 1e-12;
  const auto r = partialschur<double>(a, opts);
  ASSERT_TRUE(r.converged) << r.failure;
  // Largest magnitude: 29, -20, 28, -19, 27 -> magnitudes 29, 28, 27, 20, 19.
  std::vector<double> mags;
  for (std::size_t i = 0; i < 5; ++i) mags.push_back(std::abs(r.eig_re[i]));
  std::vector<double> sorted = mags;
  std::sort(sorted.rbegin(), sorted.rend());
  EXPECT_EQ(mags, sorted);
  EXPECT_NEAR(mags[0], 29.0, 1e-10);
  EXPECT_NEAR(mags[1], 28.0, 1e-10);
}

class PartialSchurRandom : public ::testing::TestWithParam<int> {};

TEST_P(PartialSchurRandom, MatchesDenseOracle) {
  const auto n = static_cast<std::size_t>(GetParam());
  Rng rng(900 + GetParam());
  const auto a = random_sparse_symmetric(n, 0.1, rng);
  PartialSchurOptions opts;
  opts.nev = 6;
  opts.tolerance = 1e-10;
  opts.max_restarts = 200;
  const auto r = partialschur<double>(a, opts);
  ASSERT_TRUE(r.converged) << r.failure;
  auto oracle = dense_spectrum(a);
  std::sort(oracle.begin(), oracle.end(),
            [](double x, double y) { return std::abs(x) > std::abs(y); });
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(r.eig_re[i], oracle[i], 1e-7 * std::abs(oracle[i]) + 1e-8) << i;
    EXPECT_NEAR(r.eig_im[i], 0.0, 1e-10);
  }
  // Residual check: ||A q - lambda q|| small for the leading pair.
  std::vector<double> q0(n), aq(n);
  for (std::size_t i = 0; i < n; ++i) q0[i] = r.q(i, 0);
  a.matvec(q0.data(), aq.data());
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(aq[i], r.eig_re[0] * q0[i], 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PartialSchurRandom, ::testing::Values(30, 60, 120, 250));

TEST(PartialSchur, OrderingModes) {
  std::vector<double> d{-9, -5, -1, 0.5, 2, 7, 12};
  const auto a = diagonal_matrix(d);
  PartialSchurOptions opts;
  opts.nev = 2;
  opts.mindim = 4;
  opts.maxdim = 7;
  opts.tolerance = 1e-12;

  opts.which = Which::largest_magnitude;
  auto r = partialschur<double>(a, opts);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.eig_re[0], 12.0, 1e-9);
  EXPECT_NEAR(r.eig_re[1], -9.0, 1e-9);

  opts.which = Which::largest_real;
  r = partialschur<double>(a, opts);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.eig_re[0], 12.0, 1e-9);
  EXPECT_NEAR(r.eig_re[1], 7.0, 1e-9);

  opts.which = Which::smallest_real;
  r = partialschur<double>(a, opts);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.eig_re[0], -9.0, 1e-9);
  EXPECT_NEAR(r.eig_re[1], -5.0, 1e-9);

  opts.which = Which::smallest_magnitude;
  r = partialschur<double>(a, opts);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(std::abs(r.eig_re[0]), 0.5, 1e-9);
}

TEST(PartialSchur, SchurVectorsOrthonormalAndInvariant) {
  Rng rng(901);
  const auto a = random_sparse_symmetric(80, 0.1, rng);
  PartialSchurOptions opts;
  opts.nev = 8;
  opts.tolerance = 1e-11;
  const auto r = partialschur<double>(a, opts);
  ASSERT_TRUE(r.converged);
  const std::size_t k = r.q.cols();
  for (std::size_t p = 0; p < k; ++p)
    for (std::size_t q2 = 0; q2 <= p; ++q2) {
      double d = 0;
      for (std::size_t i = 0; i < 80; ++i) d += r.q(i, p) * r.q(i, q2);
      EXPECT_NEAR(d, p == q2 ? 1.0 : 0.0, 1e-9);
    }
  // A Q = Q R within tolerance.
  for (std::size_t j = 0; j < k; ++j) {
    std::vector<double> qj(80), aq(80), qr(80, 0.0);
    for (std::size_t i = 0; i < 80; ++i) qj[i] = r.q(i, j);
    a.matvec(qj.data(), aq.data());
    for (std::size_t l = 0; l < k; ++l)
      for (std::size_t i = 0; i < 80; ++i) qr[i] += r.q(i, l) * r.r(l, j);
    for (std::size_t i = 0; i < 80; ++i) EXPECT_NEAR(aq[i], qr[i], 1e-7);
  }
  // Symmetric input: R essentially diagonal (paper §2.2).
  for (std::size_t j = 0; j < k; ++j)
    for (std::size_t i = j + 1; i < k; ++i) EXPECT_NEAR(r.r(i, j), 0.0, 1e-8);
}

TEST(PartialSchur, MultiplicitiesViaInvariantSubspaceRestart) {
  // Eigenvalue 2 with multiplicity 5 plus a low-dimensional tail: once the
  // Krylov space exhausts the 11 distinct eigenvalues (beta -> 0), the
  // random-restart deflation must inject new directions and find every
  // copy. (With a high-dimensional tail a Krylov method sees only one copy
  // per invariant-subspace exhaustion — standard ARPACK behavior.)
  std::vector<double> d(40, 0.0);
  for (std::size_t i = 0; i < 5; ++i) d[i] = 2.0;
  for (std::size_t i = 5; i < 40; ++i) d[i] = 0.2 + 0.05 * static_cast<double>(i % 10);
  const auto a = diagonal_matrix(d);
  PartialSchurOptions opts;
  opts.nev = 6;
  opts.tolerance = 1e-10;
  opts.max_restarts = 300;
  const auto r = partialschur<double>(a, opts);
  ASSERT_TRUE(r.converged) << r.failure;
  int twos = 0;
  for (std::size_t i = 0; i < 6; ++i) twos += (std::abs(r.eig_re[i] - 2.0) < 1e-8);
  EXPECT_EQ(twos, 5);
  EXPECT_NEAR(r.eig_re[5], 0.65, 1e-8);  // largest tail value
}

TEST(PartialSchur, GraphLaplacianSpectrumBounds) {
  Rng rng(902);
  const CooMatrix lap = graph_laplacian_pipeline(erdos_renyi(150, 0.05, rng));
  const auto a = CsrMatrix<double>::from_coo(lap);
  PartialSchurOptions opts;
  opts.nev = 10;
  opts.tolerance = 1e-10;
  const auto r = partialschur<double>(a, opts);
  ASSERT_TRUE(r.converged);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_GE(r.eig_re[i], -1e-9);
    EXPECT_LE(r.eig_re[i], 2.0 + 1e-9);
  }
}

TEST(PartialSchur, SmallMatrixFullSpace) {
  // n barely above nev: maxdim = n, invariant subspace exhausted.
  std::vector<double> d{5, 4, 3, 2, 1, 0.5, 0.25, -0.7, 1.5, -2.5, 3.5, 0.1, 0.9, -1.1, 2.2, 4.4};
  const auto a = diagonal_matrix(d);
  PartialSchurOptions opts;
  opts.nev = 12;
  opts.tolerance = 1e-10;
  const auto r = partialschur<double>(a, opts);
  ASSERT_TRUE(r.converged) << r.failure;
  EXPECT_NEAR(std::abs(r.eig_re[0]), 5.0, 1e-8);
}

TEST(PartialSchur, NonSymmetricRealEigenvalues) {
  // Upper triangular (non-symmetric) with distinct real eigenvalues.
  CooMatrix coo(30, 30);
  Rng rng(903);
  for (std::size_t i = 0; i < 30; ++i) {
    coo.add(static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(i),
            static_cast<double>(i + 1));
    for (std::size_t j = i + 1; j < std::min<std::size_t>(i + 4, 30); ++j)
      coo.add(static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(j), 0.3 * rng.normal());
  }
  const auto a = CsrMatrix<double>::from_coo(coo);
  PartialSchurOptions opts;
  opts.nev = 4;
  opts.tolerance = 1e-10;
  opts.max_restarts = 300;
  const auto r = partialschur<double>(a, opts);
  ASSERT_TRUE(r.converged) << r.failure;
  EXPECT_NEAR(r.eig_re[0], 30.0, 1e-6);
  EXPECT_NEAR(r.eig_re[1], 29.0, 1e-6);
}

TEST(PartialSchur, FailureReportedNotThrown) {
  // Impossible tolerance with a tiny restart budget must fail gracefully.
  Rng rng(904);
  const auto a = random_sparse_symmetric(100, 0.05, rng);
  PartialSchurOptions opts;
  opts.nev = 10;
  opts.tolerance = 1e-15;
  opts.max_restarts = 1;
  const auto r = partialschur<double>(a, opts);
  EXPECT_FALSE(r.converged);
  EXPECT_FALSE(r.failure.empty());
  EXPECT_LE(r.nconverged, 10u);
}

TEST(PartialSchur, SharedStartVectorReproducible) {
  Rng rng(905);
  const auto a = random_sparse_symmetric(60, 0.1, rng);
  Rng sv_rng(906);
  const auto sv = sv_rng.unit_vector(60);
  PartialSchurOptions opts;
  opts.nev = 4;
  opts.tolerance = 1e-10;
  opts.start_vector = &sv;
  const auto r1 = partialschur<double>(a, opts);
  const auto r2 = partialschur<double>(a, opts);
  ASSERT_TRUE(r1.converged && r2.converged);
  EXPECT_EQ(r1.matvecs, r2.matvecs);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(r1.eig_re[i], r2.eig_re[i]);
}

// ---- Low-precision operation ------------------------------------------------------

template <typename T>
void low_precision_run(double expected_tol) {
  Rng rng(907);
  const CooMatrix lap = graph_laplacian_pipeline(stochastic_block(90, 3, 0.3, 0.02, rng));
  const auto ad = CsrMatrix<double>::from_coo(lap);
  const auto at = ad.convert<T>();
  PartialSchurOptions opts;
  opts.nev = 6;
  opts.tolerance = NumTraits<T>::default_tolerance();
  opts.max_restarts = 120;
  const auto rt = partialschur<T>(at, opts);
  ASSERT_TRUE(rt.converged) << rt.failure;
  const auto rd = partialschur<double>(ad, opts);
  ASSERT_TRUE(rd.converged);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(rt.eig_re[i], rd.eig_re[i], expected_tol) << NumTraits<T>::name();
  }
}

TEST(PartialSchurLowPrecision, Float16) { low_precision_run<Float16>(0.05); }
TEST(PartialSchurLowPrecision, Posit16) { low_precision_run<Posit16>(0.05); }
TEST(PartialSchurLowPrecision, Takum16) { low_precision_run<Takum16>(0.05); }
TEST(PartialSchurLowPrecision, Posit32) { low_precision_run<Posit32>(1e-4); }
TEST(PartialSchurLowPrecision, Takum32) { low_precision_run<Takum32>(1e-4); }

TEST(PartialSchurLowPrecision, BFloat16ConvergesButCoarse) {
  // bfloat16 (8 fraction bits) converges by its own residual test yet lands
  // visibly off in the clustered Laplacian bulk — exactly the elevated
  // errors the paper reports for bfloat16. Bound the damage rather than
  // demand accuracy: eigenvalues stay in [0, 2] and the top one is within
  // an eps-scale band of the true top.
  Rng rng(907);
  const CooMatrix lap = graph_laplacian_pipeline(stochastic_block(90, 3, 0.3, 0.02, rng));
  const auto ad = CsrMatrix<double>::from_coo(lap);
  const auto at = ad.convert<BFloat16>();
  PartialSchurOptions opts;
  opts.nev = 6;
  opts.tolerance = NumTraits<BFloat16>::default_tolerance();
  opts.max_restarts = 120;
  const auto rt = partialschur<BFloat16>(at, opts);
  ASSERT_TRUE(rt.converged) << rt.failure;
  const auto rd = partialschur<double>(ad, opts);
  ASSERT_TRUE(rd.converged);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_GE(rt.eig_re[i], -0.1);
    EXPECT_LE(rt.eig_re[i], 2.1);
  }
  EXPECT_NEAR(rt.eig_re[0], rd.eig_re[0], 0.5);
  // And it is distinctly worse than float16 on the same problem (paper §3).
  const auto af16 = ad.convert<Float16>();
  const auto rf16 = partialschur<Float16>(af16, opts);
  ASSERT_TRUE(rf16.converged);
  EXPECT_LT(std::abs(rf16.eig_re[0] - rd.eig_re[0]),
            std::abs(rt.eig_re[0] - rd.eig_re[0]) + 0.05);
}

}  // namespace
}  // namespace mfla
