// Thick-restart Lanczos tests: agreement with partialschur and the dense
// oracle, orthogonality, locking, low-precision operation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "arith/posit.hpp"
#include "arith/takum.hpp"
#include "core/lanczos.hpp"
#include "dense/jacobi.hpp"
#include "graph/generators.hpp"
#include "graph/laplacian.hpp"
#include "sparse/csr.hpp"
#include "support/rng.hpp"

namespace mfla {
namespace {

CsrMatrix<double> random_sparse_symmetric(std::size_t n, double density, Rng& rng) {
  CooMatrix coo(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    coo.add(static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(i), rng.normal());
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.uniform() < density) {
        const double v = rng.normal();
        coo.add(static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(j), v);
        coo.add(static_cast<std::uint32_t>(j), static_cast<std::uint32_t>(i), v);
      }
    }
  }
  return CsrMatrix<double>::from_coo(coo);
}

class LanczosSizes : public ::testing::TestWithParam<int> {};

TEST_P(LanczosSizes, AgreesWithArnoldi) {
  const auto n = static_cast<std::size_t>(GetParam());
  Rng rng(1100 + GetParam());
  const auto a = random_sparse_symmetric(n, 0.1, rng);
  PartialSchurOptions opts;
  opts.nev = 6;
  opts.tolerance = 1e-10;
  opts.max_restarts = 250;
  const auto rl = lanczos_eigs<double>(a, opts);
  ASSERT_TRUE(rl.converged) << rl.failure;
  const auto ra = partialschur<double>(a, opts);
  ASSERT_TRUE(ra.converged) << ra.failure;
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(rl.eig_re[i], ra.eig_re[i], 1e-7 * std::abs(ra.eig_re[i]) + 1e-8);
    EXPECT_DOUBLE_EQ(rl.eig_im[i], 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LanczosSizes, ::testing::Values(40, 80, 160));

TEST(Lanczos, RitzVectorsOrthonormalAndAccurate) {
  Rng rng(1101);
  const auto a = random_sparse_symmetric(100, 0.08, rng);
  PartialSchurOptions opts;
  opts.nev = 8;
  opts.tolerance = 1e-11;
  opts.max_restarts = 300;
  const auto r = lanczos_eigs<double>(a, opts);
  ASSERT_TRUE(r.converged) << r.failure;
  const std::size_t k = r.q.cols();
  for (std::size_t p = 0; p < k; ++p)
    for (std::size_t q = 0; q <= p; ++q) {
      double d = 0;
      for (std::size_t i = 0; i < 100; ++i) d += r.q(i, p) * r.q(i, q);
      EXPECT_NEAR(d, p == q ? 1.0 : 0.0, 1e-8);
    }
  // Eigenpair residuals: ||A q - lambda q||.
  for (std::size_t j = 0; j < k; ++j) {
    std::vector<double> qj(100), aq(100);
    for (std::size_t i = 0; i < 100; ++i) qj[i] = r.q(i, j);
    a.matvec(qj.data(), aq.data());
    for (std::size_t i = 0; i < 100; ++i) {
      EXPECT_NEAR(aq[i], r.eig_re[j] * qj[i], 1e-7) << j;
    }
  }
}

TEST(Lanczos, OrderingModes) {
  CooMatrix coo(9, 9);
  const double d[9] = {-8, -4, -2, -0.5, 0.25, 1, 3, 5, 9};
  for (std::uint32_t i = 0; i < 9; ++i) coo.add(i, i, d[i]);
  const auto a = CsrMatrix<double>::from_coo(coo);
  PartialSchurOptions opts;
  opts.nev = 2;
  opts.mindim = 4;
  opts.maxdim = 8;
  opts.tolerance = 1e-12;
  opts.max_restarts = 200;

  opts.which = Which::largest_magnitude;
  auto r = lanczos_eigs<double>(a, opts);
  ASSERT_TRUE(r.converged) << r.failure;
  EXPECT_NEAR(r.eig_re[0], 9.0, 1e-9);
  EXPECT_NEAR(r.eig_re[1], -8.0, 1e-9);

  opts.which = Which::smallest_real;
  r = lanczos_eigs<double>(a, opts);
  ASSERT_TRUE(r.converged) << r.failure;
  EXPECT_NEAR(r.eig_re[0], -8.0, 1e-9);
  EXPECT_NEAR(r.eig_re[1], -4.0, 1e-9);
}

TEST(Lanczos, LaplacianSpectrumBounds) {
  Rng rng(1102);
  const CooMatrix lap = graph_laplacian_pipeline(erdos_renyi(130, 0.06, rng));
  const auto a = CsrMatrix<double>::from_coo(lap);
  PartialSchurOptions opts;
  opts.nev = 10;
  opts.tolerance = 1e-10;
  opts.max_restarts = 200;
  const auto r = lanczos_eigs<double>(a, opts);
  ASSERT_TRUE(r.converged) << r.failure;
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_GE(r.eig_re[i], -1e-9);
    EXPECT_LE(r.eig_re[i], 2.0 + 1e-9);
  }
}

TEST(Lanczos, FailureReportedGracefully) {
  Rng rng(1103);
  const auto a = random_sparse_symmetric(80, 0.05, rng);
  PartialSchurOptions opts;
  opts.nev = 8;
  opts.tolerance = 1e-15;
  opts.max_restarts = 1;
  const auto r = lanczos_eigs<double>(a, opts);
  EXPECT_FALSE(r.converged);
  EXPECT_FALSE(r.failure.empty());
}

template <typename T>
void lanczos_low_precision(double tol_eig) {
  Rng rng(1104);
  const CooMatrix lap = graph_laplacian_pipeline(stochastic_block(90, 3, 0.3, 0.02, rng));
  const auto ad = CsrMatrix<double>::from_coo(lap);
  const auto at = ad.convert<T>();
  PartialSchurOptions opts;
  opts.nev = 5;
  opts.tolerance = NumTraits<T>::default_tolerance();
  opts.max_restarts = 150;
  const auto rt = lanczos_eigs<T>(at, opts);
  ASSERT_TRUE(rt.converged) << NumTraits<T>::name() << ": " << rt.failure;
  const auto rd = lanczos_eigs<double>(ad, opts);
  ASSERT_TRUE(rd.converged);
  EXPECT_NEAR(rt.eig_re[0], rd.eig_re[0], tol_eig) << NumTraits<T>::name();
}

TEST(LanczosLowPrecision, Float16) { lanczos_low_precision<Float16>(0.05); }
TEST(LanczosLowPrecision, Posit16) { lanczos_low_precision<Posit16>(0.05); }
TEST(LanczosLowPrecision, Takum16) { lanczos_low_precision<Takum16>(0.05); }
TEST(LanczosLowPrecision, Takum32) { lanczos_low_precision<Takum32>(1e-4); }

TEST(Lanczos, SharedStartVectorMatchesArnoldiTrajectory) {
  // Same options + same start vector: Lanczos and Arnoldi converge to the
  // same invariant subspace (eigenvalues equal to solver tolerance).
  Rng rng(1105);
  const auto a = random_sparse_symmetric(70, 0.1, rng);
  Rng sr(1106);
  const auto sv = sr.unit_vector(70);
  PartialSchurOptions opts;
  opts.nev = 4;
  opts.tolerance = 1e-11;
  opts.max_restarts = 250;
  opts.start_vector = &sv;
  const auto rl = lanczos_eigs<double>(a, opts);
  const auto ra = partialschur<double>(a, opts);
  ASSERT_TRUE(rl.converged && ra.converged);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(rl.eig_re[i], ra.eig_re[i], 1e-8);
}

}  // namespace
}  // namespace mfla
