// Cross-format property tests: every emulated format must satisfy the same
// algebraic and conversion invariants (typed test suite over the full
// format lineup of the paper).
#include <gtest/gtest.h>

#include <cmath>

#include "arith/format_registry.hpp"
#include "arith/traits.hpp"
#include "support/rng.hpp"

namespace mfla {
namespace {

template <typename T>
class ArithProperty : public ::testing::Test {};

using AllFormats = ::testing::Types<OFP8E4M3, OFP8E5M2, Posit8, Takum8, Float16, BFloat16,
                                    Posit16, Takum16, Posit32, Takum32, Posit64, Takum64>;
TYPED_TEST_SUITE(ArithProperty, AllFormats);

template <typename T>
bool usable(T x) {
  return is_number(x);
}

TYPED_TEST(ArithProperty, ZeroIdentity) {
  using T = TypeParam;
  Rng rng(NumTraits<T>::bits * 1001u);
  for (int i = 0; i < 2000; ++i) {
    const T x = NumTraits<T>::from_double(rng.normal() * rng.log_uniform(-1.5, 1.5));
    if (!usable(x)) continue;
    EXPECT_EQ(NumTraits<T>::to_double(x + T(0)), NumTraits<T>::to_double(x));
    EXPECT_EQ(NumTraits<T>::to_double(T(0) + x), NumTraits<T>::to_double(x));
  }
}

TYPED_TEST(ArithProperty, OneIsMultiplicativeIdentity) {
  using T = TypeParam;
  Rng rng(NumTraits<T>::bits * 1003u);
  for (int i = 0; i < 2000; ++i) {
    const T x = NumTraits<T>::from_double(rng.normal() * rng.log_uniform(-1.5, 1.5));
    if (!usable(x)) continue;
    EXPECT_EQ(NumTraits<T>::to_double(x * T(1)), NumTraits<T>::to_double(x));
    EXPECT_EQ(NumTraits<T>::to_double(x / T(1)), NumTraits<T>::to_double(x));
  }
}

TYPED_TEST(ArithProperty, Commutativity) {
  using T = TypeParam;
  Rng rng(NumTraits<T>::bits * 1005u);
  for (int i = 0; i < 5000; ++i) {
    const T a = NumTraits<T>::from_double(rng.normal() * rng.log_uniform(-2.0, 2.0));
    const T b = NumTraits<T>::from_double(rng.normal() * rng.log_uniform(-2.0, 2.0));
    if (!usable(a) || !usable(b)) continue;
    const double ab = NumTraits<T>::to_double(a + b);
    const double ba = NumTraits<T>::to_double(b + a);
    EXPECT_TRUE(ab == ba || (std::isnan(ab) && std::isnan(ba)));
    const double m1 = NumTraits<T>::to_double(a * b);
    const double m2 = NumTraits<T>::to_double(b * a);
    EXPECT_TRUE(m1 == m2 || (std::isnan(m1) && std::isnan(m2)));
  }
}

TYPED_TEST(ArithProperty, NegationSymmetry) {
  // Rounding is sign-symmetric in every format here: -(a op b) == (-a) op (-b).
  using T = TypeParam;
  Rng rng(NumTraits<T>::bits * 1007u);
  for (int i = 0; i < 5000; ++i) {
    const T a = NumTraits<T>::from_double(rng.normal() * rng.log_uniform(-2.0, 2.0));
    const T b = NumTraits<T>::from_double(rng.normal() * rng.log_uniform(-2.0, 2.0));
    if (!usable(a) || !usable(b)) continue;
    const double lhs = NumTraits<T>::to_double(-(a + b));
    const double rhs = NumTraits<T>::to_double((-a) + (-b));
    EXPECT_TRUE(lhs == rhs || (std::isnan(lhs) && std::isnan(rhs)));
    const double lm = NumTraits<T>::to_double(-(a * b));
    const double rm = NumTraits<T>::to_double((-a) * b);
    EXPECT_TRUE(lm == rm || (std::isnan(lm) && std::isnan(rm)));
  }
}

TYPED_TEST(ArithProperty, SubtractionIsAddOfNegation) {
  using T = TypeParam;
  Rng rng(NumTraits<T>::bits * 1009u);
  for (int i = 0; i < 5000; ++i) {
    const T a = NumTraits<T>::from_double(rng.normal());
    const T b = NumTraits<T>::from_double(rng.normal());
    if (!usable(a) || !usable(b)) continue;
    const double lhs = NumTraits<T>::to_double(a - b);
    const double rhs = NumTraits<T>::to_double(a + (-b));
    EXPECT_TRUE(lhs == rhs || (std::isnan(lhs) && std::isnan(rhs)));
  }
}

TYPED_TEST(ArithProperty, ExactCancellation) {
  using T = TypeParam;
  Rng rng(NumTraits<T>::bits * 1011u);
  for (int i = 0; i < 2000; ++i) {
    const T x = NumTraits<T>::from_double(rng.normal() * rng.log_uniform(-1.0, 1.0));
    if (!usable(x)) continue;
    const double d = NumTraits<T>::to_double(x - x);
    EXPECT_EQ(d, 0.0);
  }
}

TYPED_TEST(ArithProperty, MonotoneConversion) {
  using T = TypeParam;
  Rng rng(NumTraits<T>::bits * 1013u);
  for (int i = 0; i < 5000; ++i) {
    const double a = rng.normal() * rng.log_uniform(-2.0, 2.0);
    const double b = rng.normal() * rng.log_uniform(-2.0, 2.0);
    const T ta = NumTraits<T>::from_double(a);
    const T tb = NumTraits<T>::from_double(b);
    if (!usable(ta) || !usable(tb)) continue;
    if (a < b) {
      EXPECT_LE(NumTraits<T>::to_double(ta), NumTraits<T>::to_double(tb))
          << "a=" << a << " b=" << b;
    }
  }
}

TYPED_TEST(ArithProperty, ConversionRelativeError) {
  // For values near one, the round trip must be accurate to epsilon().
  using T = TypeParam;
  Rng rng(NumTraits<T>::bits * 1015u);
  const double eps = NumTraits<T>::epsilon();
  for (int i = 0; i < 5000; ++i) {
    const double x = (rng.uniform() < 0.5 ? -1 : 1) * rng.uniform(1.0, 2.0);
    const double back = NumTraits<T>::to_double(NumTraits<T>::from_double(x));
    EXPECT_NEAR(back, x, eps * std::abs(x) * 0.5000001) << "x=" << x;
  }
}

TYPED_TEST(ArithProperty, SqrtSquareConsistency) {
  using T = TypeParam;
  Rng rng(NumTraits<T>::bits * 1017u);
  const double eps = NumTraits<T>::epsilon();
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.uniform(0.25, 4.0);
    const T t = NumTraits<T>::from_double(x);
    if (!usable(t)) continue;
    const T s = sqrt(t);
    const double s2 = NumTraits<T>::to_double(s * s);
    // sqrt then square loses at most a few ulps.
    EXPECT_NEAR(s2, NumTraits<T>::to_double(t), 4 * eps * x) << "x=" << x;
  }
}

TYPED_TEST(ArithProperty, AbsAndComparisons) {
  using T = TypeParam;
  Rng rng(NumTraits<T>::bits * 1019u);
  for (int i = 0; i < 5000; ++i) {
    const T x = NumTraits<T>::from_double(rng.normal() * 3);
    if (!usable(x)) continue;
    const double xd = NumTraits<T>::to_double(x);
    EXPECT_EQ(NumTraits<T>::to_double(abs(x)), std::abs(xd));
    EXPECT_EQ(x < T(0), xd < 0.0);
  }
}

TYPED_TEST(ArithProperty, ToleranceMatchesPaper) {
  using T = TypeParam;
  const double tol = NumTraits<T>::default_tolerance();
  switch (NumTraits<T>::bits) {
    case 8: EXPECT_DOUBLE_EQ(tol, 1e-2); break;
    case 16: EXPECT_DOUBLE_EQ(tol, 1e-4); break;
    case 32: EXPECT_DOUBLE_EQ(tol, 1e-8); break;
    case 64: EXPECT_DOUBLE_EQ(tol, 1e-12); break;
    default: FAIL() << "unexpected width";
  }
}

// ---- Registry coverage -------------------------------------------------------

TEST(FormatRegistry, SixteenFormats) {
  EXPECT_EQ(all_formats().size(), 16u);
  EXPECT_EQ(formats_for_width(8).size(), 4u);
  EXPECT_EQ(formats_for_width(16).size(), 4u);
  EXPECT_EQ(formats_for_width(32).size(), 3u);
  EXPECT_EQ(formats_for_width(64).size(), 3u);
  // Both 128-bit entries are reference-only: dd (the fast tier) and
  // float128 (the oracle); neither is a format under evaluation.
  EXPECT_EQ(formats_for_width(128).size(), 2u);
  for (const auto& f : formats_for_width(128)) EXPECT_TRUE(f.reference_only);
}

TEST(FormatRegistry, DispatchRoundTrip) {
  for (const auto& f : all_formats()) {
    const std::string name = dispatch_format(f.id, [](auto tag) {
      using T = typename decltype(tag)::type;
      return NumTraits<T>::name();
    });
    EXPECT_EQ(name, f.name);
    const int bits = dispatch_format(f.id, [](auto tag) {
      using T = typename decltype(tag)::type;
      return NumTraits<T>::bits;
    });
    EXPECT_EQ(bits, f.bits);
  }
}

TEST(FormatRegistry, InfoLookup) {
  EXPECT_EQ(format_info(FormatId::takum16).name, "takum16");
  EXPECT_EQ(format_info(FormatId::float128).bits, 128);
}

// ---- Quad reference ----------------------------------------------------------

TEST(QuadArithmetic, Precision) {
  const Quad third = Quad(1.0) / Quad(3.0);
  const Quad back = third * Quad(3.0);
  EXPECT_NEAR(static_cast<double>(back), 1.0, 1e-30);
  EXPECT_NEAR(static_cast<double>(sqrt(Quad(2.0)) * sqrt(Quad(2.0))), 2.0, 1e-30);
  EXPECT_TRUE(is_number(Quad(1.0)));
  EXPECT_FALSE(is_number(Quad(1.0) / Quad(0.0)));
}

}  // namespace
}  // namespace mfla
