// End-to-end experiment pipeline tests: reference solve, per-format runs,
// outcome classification (∞ω / ∞σ), distributions and reports. These tests
// pin the legacy free-function driver surface (run_matrix), which stays
// supported behind the api facade.
#define MFLA_ALLOW_DEPRECATED
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/distribution.hpp"
#include "core/experiment.hpp"
#include "core/report.hpp"
#include "datasets/general_corpus.hpp"
#include "graph/generators.hpp"
#include "graph/laplacian.hpp"
#include "support/rng.hpp"

namespace mfla {
namespace {

TestMatrix laplacian_test_matrix(const char* name, const CooMatrix& adj) {
  return make_test_matrix(name, "social", "soc", graph_laplacian_pipeline(adj));
}

ExperimentConfig fast_config() {
  ExperimentConfig cfg;
  cfg.max_restarts = 80;
  cfg.reference_max_restarts = 150;
  return cfg;
}

TEST(Experiment, ReferenceSolveConverges) {
  Rng rng(1001);
  const auto tm = laplacian_test_matrix("ref_test", stochastic_block(80, 2, 0.3, 0.03, rng));
  const ExperimentConfig cfg = fast_config();
  Rng sr(tm.name, cfg.seed);
  const auto start = sr.unit_vector(tm.n());
  const auto ref = compute_reference(tm, cfg, start);
  ASSERT_TRUE(ref.ok) << ref.failure;
  EXPECT_EQ(ref.values.size(), cfg.nev + cfg.buffer);
  EXPECT_EQ(ref.vectors.cols(), cfg.nev + cfg.buffer);
  // Laplacian spectrum within [0, 2], descending magnitudes.
  for (std::size_t i = 0; i < ref.values.size(); ++i) {
    EXPECT_GE(ref.values[i], -1e-12);
    EXPECT_LE(ref.values[i], 2.0 + 1e-12);
    if (i > 0) {
      EXPECT_GE(std::abs(ref.values[i - 1]), std::abs(ref.values[i]) - 1e-9);
    }
  }
}

TEST(Experiment, Float64NearExact) {
  Rng rng(1002);
  const auto tm = laplacian_test_matrix("f64_test", erdos_renyi(100, 0.08, rng));
  const auto res = run_matrix(tm, {FormatId::float64}, fast_config());
  ASSERT_TRUE(res.reference_ok) << res.reference_failure;
  ASSERT_EQ(res.runs.size(), 1u);
  EXPECT_EQ(res.runs[0].outcome, RunOutcome::ok);
  EXPECT_LT(res.runs[0].eigenvalue_error.relative, 1e-9);
  EXPECT_LT(res.runs[0].eigenvector_error.relative, 1e-6);
  EXPECT_GT(res.runs[0].mean_similarity, 0.999999);
}

TEST(Experiment, RangeExceededClassification) {
  // A matrix with entries far outside E4M3 range must classify ∞σ without
  // even running, and float64 must still pass.
  CooMatrix coo(20, 20);
  for (std::uint32_t i = 0; i < 20; ++i) coo.add(i, i, 1.0 + i);
  coo.add(0, 1, 1e7);
  coo.add(1, 0, 1e7);
  TestMatrix tm = make_test_matrix("sigma_test", "general", "widerange",
                                   coo);
  const auto res =
      run_matrix(tm, {FormatId::ofp8_e4m3, FormatId::float16, FormatId::takum8, FormatId::float64},
                 fast_config());
  ASSERT_TRUE(res.reference_ok);
  EXPECT_EQ(res.runs[0].outcome, RunOutcome::range_exceeded);  // E4M3: 1e7 >> 448
  EXPECT_EQ(res.runs[1].outcome, RunOutcome::range_exceeded);  // float16: 1e7 >> 65504
  EXPECT_NE(res.runs[2].outcome, RunOutcome::range_exceeded);  // takum8 saturates
  EXPECT_EQ(res.runs[3].outcome, RunOutcome::ok);
}

TEST(Experiment, NoConvergenceClassification) {
  ExperimentConfig cfg = fast_config();
  cfg.max_restarts = 0;  // impossible budget
  Rng rng(1003);
  const auto tm = laplacian_test_matrix("omega_test", erdos_renyi(120, 0.06, rng));
  const auto res = run_matrix(tm, {FormatId::float32}, cfg);
  ASSERT_TRUE(res.reference_ok);
  EXPECT_EQ(res.runs[0].outcome, RunOutcome::no_convergence);
}

TEST(Experiment, MultiFormatOrdering) {
  // The paper's central qualitative claim at 16/32 bits on graphs:
  // takum/posit/float16 all land far below bfloat16; takum32 >= float32.
  Rng rng(1004);
  const auto tm =
      laplacian_test_matrix("order_test_1004", stochastic_block(110, 3, 0.3, 0.02, rng));
  ExperimentConfig cfg = fast_config();
  cfg.max_restarts = 100;
  const auto res = run_matrix(tm,
                              {FormatId::float16, FormatId::bfloat16, FormatId::takum16,
                               FormatId::float32, FormatId::takum32},
                              cfg);
  ASSERT_TRUE(res.reference_ok);
  const auto& f16 = res.runs[0];
  const auto& bf16 = res.runs[1];
  const auto& t16 = res.runs[2];
  const auto& f32 = res.runs[3];
  const auto& t32 = res.runs[4];
  ASSERT_EQ(f16.outcome, RunOutcome::ok);
  ASSERT_EQ(t16.outcome, RunOutcome::ok);
  ASSERT_EQ(f32.outcome, RunOutcome::ok);
  ASSERT_EQ(t32.outcome, RunOutcome::ok);
  if (bf16.outcome == RunOutcome::ok) {
    EXPECT_LT(f16.eigenvalue_error.relative, bf16.eigenvalue_error.relative);
    EXPECT_LT(t16.eigenvalue_error.relative, bf16.eigenvalue_error.relative);
  }
  EXPECT_LT(t32.eigenvalue_error.relative, 10 * f32.eigenvalue_error.relative);
  EXPECT_LT(f32.eigenvalue_error.relative, 1e-4);
}

TEST(Experiment, RunExperimentOverDataset) {
  GeneralCorpusOptions gopts;
  gopts.count = 6;
  gopts.min_n = 24;
  gopts.max_n = 60;
  const auto dataset = build_general_corpus(gopts);
  ASSERT_GE(dataset.size(), 5u);
  const auto results =
      run_experiment(dataset, {FormatId::float64, FormatId::takum64}, fast_config());
  EXPECT_EQ(results.size(), dataset.size());
  std::size_t ok_refs = 0;
  for (const auto& r : results) {
    if (!r.reference_ok) continue;
    ++ok_refs;
    ASSERT_EQ(r.runs.size(), 2u);
    for (const auto& run : r.runs) {
      if (run.outcome == RunOutcome::ok) {
        EXPECT_LT(run.eigenvalue_error.relative, 1e-6);
      }
    }
  }
  EXPECT_GE(ok_refs, 4u);
}

// ---- Distributions ------------------------------------------------------------

std::vector<MatrixResult> synthetic_results() {
  std::vector<MatrixResult> rs;
  for (int i = 0; i < 10; ++i) {
    MatrixResult mr;
    mr.reference_ok = true;
    FormatRun run;
    run.format = FormatId::float32;
    if (i < 6) {
      run.outcome = RunOutcome::ok;
      run.eigenvalue_error.relative = std::pow(10.0, -6.0 + i);  // 1e-6 .. 1e-1
      run.eigenvector_error.relative = std::pow(10.0, -3.0 + i);
    } else if (i < 9) {
      run.outcome = RunOutcome::no_convergence;
    } else {
      run.outcome = RunOutcome::range_exceeded;
    }
    mr.runs.push_back(run);
    rs.push_back(mr);
  }
  return rs;
}

TEST(Distribution, CountsAndPercentiles) {
  const auto rs = synthetic_results();
  const auto d = build_distribution(rs, FormatId::float32, false);
  EXPECT_EQ(d.n_total, 10u);
  EXPECT_EQ(d.n_omega, 3u);
  EXPECT_EQ(d.n_sigma, 1u);
  EXPECT_EQ(d.n_finite(), 6u);
  EXPECT_NEAR(d.percentile(0), -6.0, 1e-12);
  EXPECT_NEAR(d.percentile(50), -1.5, 1.0);  // index 5 -> -1
  EXPECT_TRUE(std::isnan(d.percentile(90)));  // failure tail
  EXPECT_NEAR(d.failure_fraction(), 0.4, 1e-12);
}

TEST(Distribution, SortedSeries) {
  const auto rs = synthetic_results();
  const auto d = build_distribution(rs, FormatId::float32, true);
  for (std::size_t i = 1; i < d.sorted_log10.size(); ++i)
    EXPECT_LE(d.sorted_log10[i - 1], d.sorted_log10[i]);
}

TEST(Distribution, ZeroErrorClampsToFloor) {
  std::vector<MatrixResult> rs(1);
  rs[0].reference_ok = true;
  FormatRun run;
  run.format = FormatId::float64;
  run.outcome = RunOutcome::ok;
  run.eigenvalue_error.relative = 0.0;
  run.eigenvector_error.relative = 0.0;
  rs[0].runs.push_back(run);
  const auto d = build_distribution(rs, FormatId::float64, false);
  ASSERT_EQ(d.n_finite(), 1u);
  EXPECT_DOUBLE_EQ(d.sorted_log10[0], kLogFloor);
}

TEST(Report, CsvWrittenWithFailureFooter) {
  const auto rs = synthetic_results();
  const std::vector<Distribution> series{build_distribution(rs, FormatId::float32, false)};
  const std::string path = "test_out/dist_test.csv";
  write_distribution_csv(path, series);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string first, all, line;
  std::getline(in, first);
  EXPECT_EQ(first, "percentile,float32");
  while (std::getline(in, line)) all += line + "\n";
  EXPECT_NE(all.find("omega=3"), std::string::npos);
  EXPECT_NE(all.find("sigma=1"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Report, AsciiPanelRenders) {
  const auto rs = synthetic_results();
  const std::vector<Distribution> series{build_distribution(rs, FormatId::float32, false)};
  const std::string art = ascii_panel(series, "test panel");
  EXPECT_NE(art.find("test panel"), std::string::npos);
  EXPECT_NE(art.find("float32"), std::string::npos);
  EXPECT_NE(art.find("omega"), std::string::npos);
}

TEST(Report, SummaryTableRenders) {
  const auto rs = synthetic_results();
  const std::vector<Distribution> series{build_distribution(rs, FormatId::float32, false)};
  const std::string table = summary_table(series, "summary");
  EXPECT_NE(table.find("float32"), std::string::npos);
  EXPECT_NE(table.find("median"), std::string::npos);
}

}  // namespace
}  // namespace mfla
