// Hungarian algorithm tests: known instances, brute-force cross-check,
// rectangular problems.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "core/hungarian.hpp"
#include "support/rng.hpp"

namespace mfla {
namespace {

double brute_force_min(const DenseMatrix<double>& cost) {
  const std::size_t n = cost.rows(), m = cost.cols();
  std::vector<int> cols(m);
  std::iota(cols.begin(), cols.end(), 0);
  double best = 1e300;
  do {
    double c = 0;
    for (std::size_t i = 0; i < n; ++i) c += cost(i, static_cast<std::size_t>(cols[i]));
    best = std::min(best, c);
  } while (std::next_permutation(cols.begin(), cols.end()));
  return best;
}

TEST(Hungarian, KnownThreeByThree) {
  DenseMatrix<double> c(3, 3);
  const double vals[3][3] = {{4, 1, 3}, {2, 0, 5}, {3, 2, 2}};
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) c(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) = vals[i][j];
  const auto a = hungarian_assignment(c);
  EXPECT_DOUBLE_EQ(assignment_cost(c, a), 5.0);  // 1 + 2 + 2
  EXPECT_EQ(a[0], 1);
  EXPECT_EQ(a[1], 0);
  EXPECT_EQ(a[2], 2);
}

TEST(Hungarian, IdentityOnDiagonalCosts) {
  DenseMatrix<double> c(4, 4);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j) c(i, j) = (i == j) ? 0.0 : 10.0;
  const auto a = hungarian_assignment(c);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(a[i], static_cast<int>(i));
}

TEST(Hungarian, PermutationMatrixRecovered) {
  // Cost = 1 - P for permutation P: assignment must recover P.
  const int perm[5] = {3, 0, 4, 1, 2};
  DenseMatrix<double> c(5, 5);
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 5; ++j)
      c(i, j) = (static_cast<int>(j) == perm[i]) ? -1.0 : 0.0;
  const auto a = hungarian_assignment(c);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(a[i], perm[i]);
}

class HungarianRandom : public ::testing::TestWithParam<int> {};

TEST_P(HungarianRandom, MatchesBruteForce) {
  const int n = GetParam();
  Rng rng(700 + static_cast<unsigned>(n));
  for (int trial = 0; trial < 30; ++trial) {
    DenseMatrix<double> c(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < static_cast<std::size_t>(n); ++i)
      for (std::size_t j = 0; j < static_cast<std::size_t>(n); ++j) c(i, j) = rng.uniform(-5, 5);
    const auto a = hungarian_assignment(c);
    // Valid permutation.
    std::vector<bool> used(static_cast<std::size_t>(n), false);
    for (const int j : a) {
      ASSERT_GE(j, 0);
      ASSERT_LT(j, n);
      EXPECT_FALSE(used[static_cast<std::size_t>(j)]);
      used[static_cast<std::size_t>(j)] = true;
    }
    EXPECT_NEAR(assignment_cost(c, a), brute_force_min(c), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, HungarianRandom, ::testing::Values(2, 3, 4, 5, 6, 7));

TEST(Hungarian, RectangularWide) {
  // 2 rows, 4 columns: picks the two cheapest disjoint columns.
  DenseMatrix<double> c(2, 4);
  const double vals[2][4] = {{9, 1, 9, 9}, {9, 0.5, 9, 0.75}};
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 4; ++j) c(i, j) = vals[i][j];
  const auto a = hungarian_assignment(c);
  EXPECT_EQ(a[0], 1);
  EXPECT_EQ(a[1], 3);
}

TEST(Hungarian, RowsExceedColumnsThrows) {
  DenseMatrix<double> c(3, 2);
  EXPECT_THROW(hungarian_assignment(c), std::invalid_argument);
}

TEST(Hungarian, DegenerateTies) {
  DenseMatrix<double> c(3, 3);
  // All equal: any permutation is optimal; must still be a permutation.
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) c(i, j) = 1.0;
  const auto a = hungarian_assignment(c);
  std::vector<bool> used(3, false);
  for (const int j : a) used[static_cast<std::size_t>(j)] = true;
  EXPECT_TRUE(used[0] && used[1] && used[2]);
  EXPECT_DOUBLE_EQ(assignment_cost(c, a), 3.0);
}

}  // namespace
}  // namespace mfla
