// api::Solver handle tests: the runtime handles must be pure facades over
// the template solver cores — digests of Solver results are pinned to the
// SAME golden constants that pin partialschur<T> (test_arnoldi_workspace),
// and the lanczos handles must reproduce lanczos_eigs<T> bit-for-bit, for
// all eight <=16-bit formats.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "api/api.hpp"

namespace mfla {
namespace {

// Same matrix and start vector as tests/test_arnoldi_workspace.cpp, so the
// golden digests below are shared verbatim.
CsrMatrix<double> solver_matrix() {
  Rng gr(0x60a1);
  return CsrMatrix<double>::from_coo(graph_laplacian_pipeline(erdos_renyi(48, 0.18, gr)));
}

std::vector<double> golden_start(std::size_t n) {
  SplitMix64 sm(0x5eedf00dull);
  std::vector<double> v(n);
  double nrm2 = 0.0;
  for (auto& x : v) {
    x = static_cast<double>(sm.next() >> 11) * 0x1.0p-52 - 1.0;
    nrm2 += x * x;
  }
  const double inv = 1.0 / mfla::sqrt(nrm2);
  for (auto& x : v) x *= inv;
  return v;
}

api::SolverOptions golden_options(const std::vector<double>& start) {
  api::SolverOptions opts;
  opts.nev = 6;
  opts.which = Which::largest_magnitude;
  opts.tolerance = 0.0;  // per-format default, same values the goldens used
  opts.max_restarts = 60;
  opts.seed = 0xbeef;
  opts.start_vector = start;
  return opts;
}

/// Digest of a type-erased EigenResult, field-for-field the same hash the
/// template-path digest in test_arnoldi_workspace.cpp computes.
Hash128 digest(const api::EigenResult& r) {
  Hasher h;
  h.u64(r.converged ? 1 : 0).u64(r.nconverged).u64(static_cast<std::uint64_t>(r.restarts));
  h.u64(r.matvecs);
  h.span(r.eigenvalues.data(), r.eigenvalues.size());
  h.span(r.eigenvalues_im.data(), r.eigenvalues_im.size());
  for (std::size_t j = 0; j < r.vectors.cols(); ++j)
    for (std::size_t i = 0; i < r.vectors.rows(); ++i) h.f64(r.vectors(i, j));
  for (std::size_t j = 0; j < r.rayleigh.cols(); ++j)
    for (std::size_t i = 0; i < r.rayleigh.rows(); ++i) h.f64(r.rayleigh(i, j));
  return h.finish();
}

/// Reference digest straight from the template core, erased the same way
/// the Solver handle erases its result.
template <typename T, typename SolveFn>
Hash128 template_digest(const CsrMatrix<double>& ad, const std::vector<double>& start,
                        SolveFn&& solve) {
  const CsrMatrix<T> a = ad.convert<T>();
  PartialSchurOptions opts;
  opts.nev = 6;
  opts.which = Which::largest_magnitude;
  opts.tolerance = NumTraits<T>::default_tolerance();
  opts.max_restarts = 60;
  opts.start_vector = &start;
  opts.seed = 0xbeef;
  const auto r = solve(a, opts);
  Hasher h;
  h.u64(r.converged ? 1 : 0).u64(r.nconverged).u64(static_cast<std::uint64_t>(r.restarts));
  h.u64(r.matvecs);
  h.span(r.eig_re.data(), r.eig_re.size());
  h.span(r.eig_im.data(), r.eig_im.size());
  for (std::size_t j = 0; j < r.q.cols(); ++j)
    for (std::size_t i = 0; i < r.q.rows(); ++i) h.f64(NumTraits<T>::to_double(r.q(i, j)));
  for (std::size_t j = 0; j < r.r.cols(); ++j)
    for (std::size_t i = 0; i < r.r.rows(); ++i) h.f64(NumTraits<T>::to_double(r.r(i, j)));
  return h.finish();
}

TEST(ApiSolver, KrylovSchurDigestsMatchTemplateGoldens) {
  // The golden digests of test_arnoldi_workspace.cpp (captured from the
  // pre-workspace-refactor solver): the runtime handle must land on the
  // exact same bits for every <=16-bit format.
  const std::map<std::string, Hash128> golden = {
      {"e4m3", {0xa178776472d802d2ull, 0xf99c4f9ed025570bull}},
      {"e5m2", {0x1c4b0558d0a270a7ull, 0x16a6a59116bad84dull}},
      {"p8", {0xe0533f1a6d8f96d7ull, 0xab54545ea95cb493ull}},
      {"t8", {0xeb5aa60d0fe59a9cull, 0xea094799c8846e27ull}},
      {"f16", {0x81bf7d81a26f25edull, 0xe8d0e39f0fa88e4bull}},
      {"bf16", {0xd79508f1a1255361ull, 0x749e458b99697d45ull}},
      {"p16", {0x34bdb8094c1fb666ull, 0xa8a54a99e3dd41b3ull}},
      {"t16", {0x78ea1da36a9e7c3dull, 0x034aeee182ddf984ull}},
  };
  const CsrMatrix<double> a = solver_matrix();
  ASSERT_EQ(a.rows(), 48u);
  ASSERT_EQ(a.nnz(), 440u);
  const std::vector<double> start = golden_start(a.rows());
  const api::SolverOptions opts = golden_options(start);

  for (const auto& [key, want] : golden) {
    const api::Solver solver =
        api::Solver::create(format_from_key(key), api::SolverKind::krylov_schur, opts);
    EXPECT_EQ(digest(solver.solve(a)), want)
        << "api::Solver<" << key << "> diverged from the partialschur golden bits";
  }
}

TEST(ApiSolver, LanczosDigestsMatchTemplateCore) {
  const CsrMatrix<double> a = solver_matrix();
  const std::vector<double> start = golden_start(a.rows());
  const api::SolverOptions opts = golden_options(start);

  const auto check = [&](const char* key, auto tag) {
    using T = typename decltype(tag)::type;
    const Hash128 want = template_digest<T>(a, start, [](const CsrMatrix<T>& at,
                                                         const PartialSchurOptions& o) {
      return lanczos_eigs<T>(at, o);
    });
    const api::Solver solver =
        api::Solver::create(format_from_key(key), api::SolverKind::lanczos, opts);
    EXPECT_EQ(digest(solver.solve(a)), want)
        << "api::Solver lanczos<" << key << "> diverged from lanczos_eigs";
  };
  check("e4m3", TypeTag<OFP8E4M3>{});
  check("e5m2", TypeTag<OFP8E5M2>{});
  check("p8", TypeTag<Posit8>{});
  check("t8", TypeTag<Takum8>{});
  check("f16", TypeTag<Float16>{});
  check("bf16", TypeTag<BFloat16>{});
  check("p16", TypeTag<Posit16>{});
  check("t16", TypeTag<Takum16>{});
}

TEST(ApiSolver, CreateValidatesArguments) {
  EXPECT_THROW((void)api::Solver::create(static_cast<FormatId>(999),
                                         api::SolverKind::krylov_schur),
               std::invalid_argument);
  EXPECT_THROW((void)api::Solver::create(FormatId::float64, static_cast<api::SolverKind>(7)),
               std::invalid_argument);
  api::SolverOptions opts;
  opts.nev = 0;
  EXPECT_THROW((void)api::Solver::create(FormatId::float64, api::SolverKind::krylov_schur, opts),
               std::invalid_argument);
}

TEST(ApiSolver, RuntimeSelectionOpensNewScenarios) {
  // The smallest-magnitude scenario as a one-liner: both solver kinds on a
  // small SPD stencil, smallest eigenvalues of the 1-D Laplacian.
  CooMatrix coo(32, 32);
  for (std::uint32_t i = 0; i < 32; ++i) {
    coo.add(i, i, 2.0);
    if (i + 1 < 32) {
      coo.add(i, i + 1, -1.0);
      coo.add(i + 1, i, -1.0);
    }
  }
  const auto a = CsrMatrix<double>::from_coo(coo);

  api::SolverOptions opts;
  opts.nev = 4;
  opts.which = Which::smallest_magnitude;
  opts.max_restarts = 300;
  for (const api::SolverKind kind : {api::SolverKind::krylov_schur, api::SolverKind::lanczos}) {
    const auto r = api::Solver::create(FormatId::float64, kind, opts).solve(a);
    ASSERT_TRUE(r.converged) << solver_kind_name(kind) << ": " << r.failure;
    ASSERT_GE(r.eigenvalues.size(), 4u);
    // lambda_k = 2 - 2 cos(k pi / 33), smallest first.
    for (std::size_t k = 1; k <= 4; ++k) {
      const double expect = 2.0 - 2.0 * std::cos(static_cast<double>(k) * M_PI / 33.0);
      EXPECT_NEAR(r.eigenvalues[k - 1], expect, 1e-8)
          << solver_kind_name(kind) << " eigenvalue " << k;
    }
  }
  EXPECT_STREQ(solver_kind_name(api::SolverKind::krylov_schur), "krylov_schur");
  EXPECT_STREQ(solver_kind_name(api::SolverKind::lanczos), "lanczos");
}

TEST(ApiSolver, AccessorsExposeConfiguration) {
  api::SolverOptions opts;
  opts.nev = 7;
  const api::Solver s = api::Solver::create(FormatId::takum16, api::SolverKind::lanczos, opts);
  EXPECT_EQ(s.format(), FormatId::takum16);
  EXPECT_EQ(s.kind(), api::SolverKind::lanczos);
  EXPECT_EQ(s.options().nev, 7u);
}

}  // namespace
}  // namespace mfla
