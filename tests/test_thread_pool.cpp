// Thread pool tests: task ordering, nested submission, work stealing,
// exception propagation (futures and wait_idle), concurrent submit, drain
// on destruction.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "support/thread_pool.hpp"

namespace mfla {
namespace {

TEST(ThreadPool, ReportsThreadCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
  ThreadPool defaulted;
  EXPECT_GE(defaulted.thread_count(), 1u);
}

TEST(ThreadPool, SingleThreadPreservesSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::mutex mtx;
  for (int i = 0; i < 100; ++i) {
    pool.submit([&order, &mtx, i] {
      std::lock_guard<std::mutex> lk(mtx);
      order.push_back(i);
    });
  }
  pool.wait_idle();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPool, ConcurrentSubmitRunsEveryTaskOnce) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::thread> submitters;
  submitters.reserve(8);
  for (int t = 0; t < 8; ++t) {
    submitters.emplace_back([&pool, &counter] {
      for (int i = 0; i < 250; ++i) {
        pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  for (auto& t : submitters) t.join();
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 2000);
}

TEST(ThreadPool, NestedSubmissionCompletesBeforeWaitIdle) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&pool, &counter] {
    for (int i = 0; i < 10; ++i) {
      pool.submit([&pool, &counter] {
        counter.fetch_add(1, std::memory_order_relaxed);
        pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
      });
    }
  });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPool, IdleWorkersStealNestedWork) {
  // All four inner tasks are submitted from one worker, so they land on its
  // own deque; they rendezvous on a barrier that only clears once all four
  // run concurrently — which requires the other three workers to steal.
  // If stealing were broken this would hang (and trip the test timeout).
  ThreadPool pool(4);
  std::mutex mtx;
  std::condition_variable cv;
  int arrived = 0;
  pool.submit([&] {
    for (int i = 0; i < 4; ++i) {
      pool.submit([&] {
        std::unique_lock<std::mutex> lk(mtx);
        ++arrived;
        cv.notify_all();
        cv.wait(lk, [&] { return arrived == 4; });
      });
    }
  });
  pool.wait_idle();
  EXPECT_EQ(arrived, 4);
}

TEST(ThreadPool, AsyncReturnsValues) {
  ThreadPool pool(2);
  std::vector<std::future<int>> futs;
  futs.reserve(50);
  for (int i = 0; i < 50; ++i) {
    futs.push_back(pool.async([i] { return i * i; }));
  }
  for (int i = 0; i < 50; ++i) EXPECT_EQ(futs[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPool, AsyncPropagatesException) {
  ThreadPool pool(2);
  auto fut = pool.async([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
  // A packaged-task exception must not leak into wait_idle().
  pool.wait_idle();
}

TEST(ThreadPool, WaitIdleRethrowsSubmitException) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([] { throw std::logic_error("fire-and-forget failure"); });
  for (int i = 0; i < 20; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  EXPECT_THROW(pool.wait_idle(), std::logic_error);
  EXPECT_EQ(counter.load(), 20);  // the failure does not cancel other tasks
  // The error slot is cleared: the pool stays usable.
  pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 21);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
    }
    // No wait_idle: the destructor must finish the queue before joining.
  }
  EXPECT_EQ(counter.load(), 200);
}

}  // namespace
}  // namespace mfla
