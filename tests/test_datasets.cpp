// Corpus tests: determinism, composition, paper filters.
#include <gtest/gtest.h>

#include <set>

#include "datasets/general_corpus.hpp"
#include "datasets/graph_corpus.hpp"

namespace mfla {
namespace {

TEST(GeneralCorpus, DeterministicAndSorted) {
  GeneralCorpusOptions opts;
  opts.count = 21;
  const auto a = build_general_corpus(opts);
  const auto b = build_general_corpus(opts);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_GE(a.size(), 18u);  // a few may be dropped by the nnz filter
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].nnz(), b[i].nnz());
    if (i > 0) {
      EXPECT_LT(a[i - 1].name, a[i].name);
    }
  }
}

TEST(GeneralCorpus, RespectsPaperFilters) {
  GeneralCorpusOptions opts;
  opts.count = 35;
  const auto corpus = build_general_corpus(opts);
  std::set<std::string> families;
  for (const auto& t : corpus) {
    EXPECT_LE(t.nnz(), opts.max_nnz);       // paper: <= 20,000 non-zeros
    EXPECT_GE(t.n(), opts.min_n);
    EXPECT_LE(t.n(), opts.max_n);
    EXPECT_EQ(t.klass, "general");
    families.insert(t.category);
    // Symmetry of the stored matrix.
    const auto& m = t.matrix;
    for (std::size_t i = 0; i < std::min<std::size_t>(m.rows(), 20); ++i)
      for (std::size_t j = 0; j < std::min<std::size_t>(m.cols(), 20); ++j)
        EXPECT_DOUBLE_EQ(m.at(i, j), m.at(j, i));
  }
  EXPECT_GE(families.size(), 6u);  // all seven families represented-ish
}

TEST(GeneralCorpus, WideRangeFamilyHasExtremeEntries) {
  GeneralCorpusOptions opts;
  opts.count = 35;
  const auto corpus = build_general_corpus(opts);
  bool found_extreme = false;
  for (const auto& t : corpus) {
    if (t.category != "widerange") continue;
    double lo = 1e300, hi = 0;
    for (const double v : t.matrix.values()) {
      const double a = std::abs(v);
      if (a > 0) {
        lo = std::min(lo, a);
        hi = std::max(hi, a);
      }
    }
    if (hi / lo > 1e6) found_extreme = true;
  }
  EXPECT_TRUE(found_extreme);  // drives the paper's ∞σ tail at 8/16 bits
}

TEST(GraphCorpus, ClassCountsRespected) {
  GraphCorpusOptions opts;
  opts.counts = {8, 6, 7, 9};
  opts.max_n = 120;
  const auto all = build_graph_corpus(opts);
  std::size_t bio = 0, infra = 0, soc = 0, misc = 0;
  for (const auto& t : all) {
    if (t.klass == "biological") ++bio;
    if (t.klass == "infrastructure") ++infra;
    if (t.klass == "social") ++soc;
    if (t.klass == "miscellaneous") ++misc;
  }
  EXPECT_LE(bio, 8u);
  EXPECT_GE(bio, 7u);  // at most one dropped by the min-size filter
  EXPECT_EQ(infra, 6u);
  EXPECT_EQ(soc, 7u);
  EXPECT_GE(misc, 8u);
}

TEST(GraphCorpus, SingleClassFilter) {
  GraphCorpusOptions opts;
  opts.counts = {4, 4, 4, 4};
  opts.max_n = 100;
  const auto soc = build_graph_corpus(opts, "social");
  EXPECT_FALSE(soc.empty());
  for (const auto& t : soc) EXPECT_EQ(t.klass, "social");
}

TEST(GraphCorpus, MatricesAreLaplacians) {
  GraphCorpusOptions opts;
  opts.counts = {3, 3, 3, 3};
  opts.max_n = 80;
  for (const auto& t : build_graph_corpus(opts)) {
    // Unit diagonal (non-isolated vertices), off-diagonals in [-1, 0].
    std::size_t diag_ones = 0;
    for (std::size_t i = 0; i < t.n(); ++i) {
      const double d = t.matrix.at(i, i);
      EXPECT_TRUE(d == 0.0 || d == 1.0);
      diag_ones += (d == 1.0);
    }
    EXPECT_GT(diag_ones, t.n() / 2);
    for (std::size_t i = 0; i < std::min<std::size_t>(t.n(), 12); ++i) {
      for (std::size_t j = 0; j < std::min<std::size_t>(t.n(), 12); ++j) {
        if (i == j) continue;
        const double v = t.matrix.at(i, j);
        EXPECT_LE(v, 1e-12) << t.name;
        EXPECT_GE(v, -1.0 - 1e-12) << t.name;
      }
    }
  }
}

TEST(GraphCorpus, Deterministic) {
  GraphCorpusOptions opts;
  opts.counts = {5, 3, 3, 5};
  opts.max_n = 100;
  const auto a = build_graph_corpus(opts);
  const auto b = build_graph_corpus(opts);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].nnz(), b[i].nnz());
  }
}

TEST(GraphCorpus, CompositionTableConsistent) {
  GraphCorpusOptions opts;
  opts.counts = {6, 6, 6, 9};
  opts.max_n = 100;
  const auto corpus = build_graph_corpus(opts);
  const auto comp = graph_corpus_composition(opts);
  std::size_t total = 0;
  std::set<std::string> classes;
  for (const auto& c : comp) {
    total += c.count;
    classes.insert(c.klass);
    EXPECT_GT(c.count, 0u);
  }
  EXPECT_EQ(total, corpus.size());
  EXPECT_EQ(classes.size(), 4u);
}

TEST(GraphCorpus, MiscellaneousIncludesRangeDrivers) {
  GraphCorpusOptions opts;
  opts.counts = {0, 0, 0, 18};
  const auto misc = build_graph_corpus(opts, "miscellaneous");
  // Twin-star graphs: Laplacian entries ~ 1/(leaves+1) < 2^-9 trigger the
  // OFP8 E4M3 range check. Weighted graphs push further (float16).
  bool has_tiny_entry = false;
  for (const auto& t : misc) {
    for (const double v : t.matrix.values()) {
      if (v != 0.0 && std::abs(v) < 0x1p-10) has_tiny_entry = true;
    }
  }
  EXPECT_TRUE(has_tiny_entry);
}

}  // namespace
}  // namespace mfla
