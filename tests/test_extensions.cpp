// Tests for the extension modules: tridiagonal QL, R-MAT generator,
// matrix statistics, raw-results persistence.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/distribution.hpp"
#include "core/results_io.hpp"
#include "datasets/stats.hpp"
#include "dense/jacobi.hpp"
#include "dense/tridiagonal.hpp"
#include "graph/generators.hpp"
#include "graph/laplacian.hpp"
#include "support/rng.hpp"

namespace mfla {
namespace {

// ---- Tridiagonal QL ---------------------------------------------------------

TEST(TridiagonalQl, KnownToeplitzSpectrum) {
  // Tridiag(-1, 2, -1) of size n has eigenvalues 2 - 2 cos(k pi/(n+1)).
  const std::size_t n = 12;
  std::vector<double> d(n, 2.0), e(n - 1, -1.0);
  auto z = DenseMatrix<double>::identity(n);
  ASSERT_TRUE(tridiagonal_ql(d, e, z));
  std::sort(d.begin(), d.end());
  for (std::size_t k = 1; k <= n; ++k) {
    const double expect = 2.0 - 2.0 * std::cos(static_cast<double>(k) * M_PI /
                                               static_cast<double>(n + 1));
    EXPECT_NEAR(d[k - 1], expect, 1e-12);
  }
}

TEST(TridiagonalQl, EigenvectorsDiagonalize) {
  Rng rng(1200);
  const std::size_t n = 20;
  std::vector<double> d(n), e(n - 1);
  for (auto& v : d) v = rng.normal();
  for (auto& v : e) v = rng.normal();
  const std::vector<double> d0 = d, e0 = e;
  auto z = DenseMatrix<double>::identity(n);
  ASSERT_TRUE(tridiagonal_ql(d, e, z));
  // T z_j = lambda_j z_j for the original T.
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      double ti = d0[i] * z(i, j);
      if (i > 0) ti += e0[i - 1] * z(i - 1, j);
      if (i + 1 < n) ti += e0[i] * z(i + 1, j);
      EXPECT_NEAR(ti, d[j] * z(i, j), 1e-10);
    }
  }
  // z orthogonal.
  for (std::size_t a = 0; a < n; ++a)
    for (std::size_t b = 0; b <= a; ++b) {
      double dot = 0;
      for (std::size_t i = 0; i < n; ++i) dot += z(i, a) * z(i, b);
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-12);
    }
}

TEST(TridiagonalQl, MatchesJacobiOnRandom) {
  Rng rng(1201);
  for (int trial = 0; trial < 5; ++trial) {
    const std::size_t n = 5 + 3 * static_cast<std::size_t>(trial);
    std::vector<double> d(n), e(n - 1);
    for (auto& v : d) v = rng.normal();
    for (auto& v : e) v = rng.normal();
    DenseMatrix<double> full(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      full(i, i) = d[i];
      if (i + 1 < n) {
        full(i, i + 1) = e[i];
        full(i + 1, i) = e[i];
      }
    }
    auto z = DenseMatrix<double>::identity(n);
    ASSERT_TRUE(tridiagonal_ql(d, e, z));
    DenseMatrix<double> vj;
    ASSERT_GT(jacobi_eigen(full, vj), 0);
    std::vector<double> ej(n);
    for (std::size_t i = 0; i < n; ++i) ej[i] = full(i, i);
    std::sort(d.begin(), d.end());
    std::sort(ej.begin(), ej.end());
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(d[i], ej[i], 1e-10);
  }
}

TEST(TridiagonalQl, TrivialSizes) {
  std::vector<double> d{3.5};
  std::vector<double> e;
  auto z = DenseMatrix<double>::identity(1);
  EXPECT_TRUE(tridiagonal_ql(d, e, z));
  EXPECT_DOUBLE_EQ(d[0], 3.5);
  std::vector<double> d0;
  std::vector<double> e0;
  DenseMatrix<double> z0(0, 0);
  EXPECT_TRUE(tridiagonal_ql(d0, e0, z0));
}

// ---- R-MAT -------------------------------------------------------------------

TEST(Rmat, ShapeAndSymmetry) {
  Rng rng(1202);
  const CooMatrix g = rmat(7, 6, 0.57, 0.19, 0.19, rng);
  EXPECT_EQ(g.rows(), 128u);
  EXPECT_TRUE(g.is_symmetric());
}

TEST(Rmat, SkewedDegreesVersusUniform) {
  Rng rng(1203);
  const CooMatrix skewed = rmat(8, 8, 0.7, 0.1, 0.1, rng);
  const CooMatrix uniform = rmat(8, 8, 0.25, 0.25, 0.25, rng);
  auto max_degree = [](const CooMatrix& g) {
    double best = 0;
    for (const double d : vertex_degrees(g)) best = std::max(best, d);
    return best;
  };
  EXPECT_GT(max_degree(skewed), max_degree(uniform));
}

// ---- Matrix statistics ----------------------------------------------------------

TEST(MatrixStats, EntryStats) {
  CooMatrix coo(3, 3);
  coo.add(0, 0, 4.0);
  coo.add(1, 1, -0.5);
  coo.add(0, 1, 2.0);
  coo.add(1, 0, 2.0);
  const auto a = CsrMatrix<double>::from_coo(coo);
  const auto s = matrix_entry_stats(a);
  EXPECT_EQ(s.n, 3u);
  EXPECT_EQ(s.nnz, 4u);
  EXPECT_DOUBLE_EQ(s.max_abs, 4.0);
  EXPECT_DOUBLE_EQ(s.min_abs, 0.5);
  EXPECT_DOUBLE_EQ(s.dynamic_range, 8.0);
  EXPECT_DOUBLE_EQ(s.inf_norm, 6.0);
  EXPECT_NEAR(s.frobenius, std::sqrt(16 + 0.25 + 4 + 4), 1e-12);
}

TEST(MatrixStats, SpectralConditionOfKnownMatrix) {
  // diag(1..8): condition = 8.
  CooMatrix coo(8, 8);
  for (std::uint32_t i = 0; i < 8; ++i) coo.add(i, i, static_cast<double>(i + 1));
  const auto a = CsrMatrix<double>::from_coo(coo);
  const auto s = matrix_spectral_stats(a, 200);
  ASSERT_TRUE(std::isfinite(s.lambda_max));
  ASSERT_TRUE(std::isfinite(s.lambda_min_mag));
  EXPECT_NEAR(s.lambda_max, 8.0, 1e-6);
  EXPECT_NEAR(s.lambda_min_mag, 1.0, 1e-6);
  EXPECT_NEAR(s.condition_estimate, 8.0, 1e-5);
}

// ---- Results persistence ---------------------------------------------------------

std::vector<MatrixResult> sample_results() {
  std::vector<MatrixResult> rs(2);
  rs[0].name = "m1";
  rs[0].klass = "social";
  rs[0].category = "soc";
  rs[0].n = 100;
  rs[0].nnz = 500;
  rs[0].reference_ok = true;
  FormatRun a;
  a.format = FormatId::float32;
  a.outcome = RunOutcome::ok;
  a.eigenvalue_error = {1e-7, 2e-8};
  a.eigenvector_error = {1e-4, 5e-5};
  a.mean_similarity = 0.999;
  a.nconverged = 12;
  a.restarts = 7;
  a.matvecs = 123;
  rs[0].runs.push_back(a);
  FormatRun b;
  b.format = FormatId::takum16;
  b.outcome = RunOutcome::no_convergence;
  b.restarts = 60;
  rs[0].runs.push_back(b);
  rs[1].name = "m2";
  rs[1].klass = "general";
  rs[1].category = "band";
  rs[1].n = 40;
  rs[1].nnz = 200;
  rs[1].reference_ok = false;
  return rs;
}

TEST(ResultsIo, WriteReadRoundTrip) {
  const auto rs = sample_results();
  const std::string path = "test_out/results_roundtrip.csv";
  write_results_csv(path, rs);
  const auto back = read_results_csv(path);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].name, "m1");
  EXPECT_EQ(back[0].klass, "social");
  EXPECT_EQ(back[0].n, 100u);
  EXPECT_TRUE(back[0].reference_ok);
  ASSERT_EQ(back[0].runs.size(), 2u);
  EXPECT_EQ(back[0].runs[0].format, FormatId::float32);
  EXPECT_EQ(back[0].runs[0].outcome, RunOutcome::ok);
  EXPECT_DOUBLE_EQ(back[0].runs[0].eigenvalue_error.relative, 2e-8);
  EXPECT_DOUBLE_EQ(back[0].runs[0].mean_similarity, 0.999);
  EXPECT_EQ(back[0].runs[0].matvecs, 123u);
  EXPECT_EQ(back[0].runs[1].outcome, RunOutcome::no_convergence);
  EXPECT_FALSE(back[1].reference_ok);
  std::remove(path.c_str());
}

TEST(ResultsIo, OutcomeNames) {
  EXPECT_STREQ(outcome_name(RunOutcome::ok), "ok");
  EXPECT_STREQ(outcome_name(RunOutcome::no_convergence), "omega");
  EXPECT_STREQ(outcome_name(RunOutcome::range_exceeded), "sigma");
  EXPECT_EQ(outcome_from_name("sigma"), RunOutcome::range_exceeded);
  EXPECT_THROW((void)outcome_from_name("bogus"), std::invalid_argument);
}

TEST(ResultsIo, DistributionsSurviveRoundTrip) {
  const auto rs = sample_results();
  const std::string path = "test_out/results_dist.csv";
  write_results_csv(path, rs);
  const auto back = read_results_csv(path);
  const auto d_orig = build_distribution(rs, FormatId::float32, false);
  const auto d_back = build_distribution(back, FormatId::float32, false);
  EXPECT_EQ(d_orig.n_total, d_back.n_total);
  EXPECT_EQ(d_orig.sorted_log10, d_back.sorted_log10);
  std::remove(path.c_str());
}

TEST(ResultsIo, MissingFileThrows) {
  EXPECT_THROW(read_results_csv("definitely/not/here.csv"), std::runtime_error);
}

}  // namespace
}  // namespace mfla
