// Unit tests for the support layer: 128-bit helpers, double decomposition,
// deterministic RNG.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "support/floatbits.hpp"
#include "support/int128.hpp"
#include "support/rng.hpp"

namespace mfla {
namespace {

TEST(Int128, ClzBasics) {
  EXPECT_EQ(clz_u128(u128{1}), 127);
  EXPECT_EQ(clz_u128(u128{1} << 127), 0);
  EXPECT_EQ(clz_u128(u128{1} << 64), 63);
  EXPECT_EQ(clz_u64(1ull), 63);
  EXPECT_EQ(clz_u64(1ull << 63), 0);
}

TEST(Int128, ShiftRightSticky) {
  bool sticky = false;
  EXPECT_EQ(shift_right_sticky(u128{0b1011}, 2, sticky), u128{0b10});
  EXPECT_TRUE(sticky);
  sticky = false;
  EXPECT_EQ(shift_right_sticky(u128{0b1000}, 2, sticky), u128{0b10});
  EXPECT_FALSE(sticky);
  sticky = false;
  EXPECT_EQ(shift_right_sticky(u128{5}, 200, sticky), u128{0});
  EXPECT_TRUE(sticky);
  sticky = false;
  EXPECT_EQ(shift_right_sticky(u128{0}, 200, sticky), u128{0});
  EXPECT_FALSE(sticky);
  sticky = false;
  EXPECT_EQ(shift_right_sticky(u128{42}, 0, sticky), u128{42});
  EXPECT_FALSE(sticky);
}

TEST(Int128, IsqrtExhaustiveSmall) {
  for (std::uint64_t n = 0; n < 10000; ++n) {
    const std::uint64_t s = isqrt_u128(n);
    EXPECT_LE(static_cast<u128>(s) * s, static_cast<u128>(n));
    EXPECT_GT(static_cast<u128>(s + 1) * (s + 1), static_cast<u128>(n));
  }
}

TEST(Int128, IsqrtLargeValues) {
  Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    const u128 n = (static_cast<u128>(rng.next_u64()) << 64) | rng.next_u64();
    const std::uint64_t s = isqrt_u128(n);
    EXPECT_LE(static_cast<u128>(s) * s, n);
    if (s != ~0ull) {
      EXPECT_GT(static_cast<u128>(s + 1) * (s + 1), n);
    }
  }
}

TEST(Int128, IsqrtPerfectSquares) {
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t r = rng.next_u64();
    EXPECT_EQ(isqrt_u128(static_cast<u128>(r) * r), r);
  }
}

TEST(FloatBits, DecomposeNormal) {
  const DoubleParts p = decompose_double(1.0);
  EXPECT_FALSE(p.neg);
  EXPECT_FALSE(p.zero);
  EXPECT_EQ(p.sig, 1ull << 52);
  EXPECT_EQ(p.e, -52);
}

TEST(FloatBits, DecomposeSubnormal) {
  const double tiny = std::numeric_limits<double>::denorm_min();
  const DoubleParts p = decompose_double(tiny);
  EXPECT_EQ(p.sig, 1ull << 52);       // normalized
  EXPECT_EQ(p.e, -1074 - 52);         // value = 2^-1074
  EXPECT_DOUBLE_EQ(compose_double(p.neg, p.sig, p.e), tiny);
}

TEST(FloatBits, DecomposeSpecials) {
  EXPECT_TRUE(decompose_double(0.0).zero);
  EXPECT_TRUE(decompose_double(-0.0).zero);
  EXPECT_TRUE(decompose_double(-0.0).neg);
  EXPECT_TRUE(decompose_double(std::nan("")).nan);
  EXPECT_TRUE(decompose_double(std::numeric_limits<double>::infinity()).inf);
}

TEST(FloatBits, RoundTripRandomDoubles) {
  Rng rng(9);
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.normal() * rng.log_uniform(-200.0, 200.0);
    const DoubleParts p = decompose_double(x);
    EXPECT_DOUBLE_EQ(compose_double(p.neg, p.sig, p.e), x);
  }
}

TEST(Rng, Deterministic) {
  Rng a("matrix_42", 7);
  Rng b("matrix_42", 7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a("matrix_42", 7);
  Rng b("matrix_43", 7);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(2);
  double sum = 0, sum2 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(Rng, UnitVectorNormalized) {
  Rng rng(3);
  const auto v = rng.unit_vector(1000);
  double norm2 = 0;
  for (const double x : v) norm2 += x * x;
  EXPECT_NEAR(norm2, 1.0, 1e-12);
}

TEST(Rng, LogUniformRange) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.log_uniform(-3.0, 3.0);
    EXPECT_GE(v, 1e-3);
    EXPECT_LE(v, 1e3);
  }
}

TEST(Rng, Fnv1aStable) {
  EXPECT_EQ(fnv1a("abc"), fnv1a("abc"));
  EXPECT_NE(fnv1a("abc"), fnv1a("abd"));
  EXPECT_NE(fnv1a(""), fnv1a("a"));
}

}  // namespace
}  // namespace mfla
