// Posit arithmetic tests: standard encodings, exhaustive round trips,
// monotonicity, two's-complement negation, saturation, NaR semantics and an
// exhaustive 8-bit oracle with posit rounding semantics.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "arith/posit.hpp"
#include "arith/traits.hpp"
#include "support/rng.hpp"

namespace mfla {
namespace {

// ---- Known encodings (Posit Standard 2022, es = 2) -------------------------

TEST(PositEncoding, One) {
  EXPECT_EQ(Posit8(1.0).bits(), 0x40u);
  EXPECT_EQ(Posit16(1.0).bits(), 0x4000u);
  EXPECT_EQ(Posit32(1.0).bits(), 0x40000000u);
  EXPECT_EQ(Posit64(1.0).bits(), 0x4000000000000000ull);
}

TEST(PositEncoding, MinusOneIsTwosComplement) {
  EXPECT_EQ(Posit16(-1.0).bits(), 0xc000u);
  EXPECT_EQ(Posit8(-1.0).bits(), 0xc0u);
}

TEST(PositEncoding, Ranges) {
  // maxpos = 2^(4(n-2)), minpos = 2^(-4(n-2)) for es = 2.
  EXPECT_DOUBLE_EQ(Posit8::max_positive().to_double(), 0x1p24);
  EXPECT_DOUBLE_EQ(Posit8::min_positive().to_double(), 0x1p-24);
  EXPECT_DOUBLE_EQ(Posit16::max_positive().to_double(), 0x1p56);
  EXPECT_DOUBLE_EQ(Posit16::min_positive().to_double(), 0x1p-56);
  EXPECT_DOUBLE_EQ(Posit32::max_positive().to_double(), 0x1p120);
  EXPECT_DOUBLE_EQ(Posit32::min_positive().to_double(), 0x1p-120);
}

TEST(PositEncoding, SimpleValues) {
  // posit16 es=2: 2.0 -> sign 0, regime "10" (k=0), exp 01, frac 0.
  EXPECT_DOUBLE_EQ(Posit16(2.0).to_double(), 2.0);
  EXPECT_DOUBLE_EQ(Posit16(0.5).to_double(), 0.5);
  EXPECT_DOUBLE_EQ(Posit16(16.0).to_double(), 16.0);   // useed = 16 boundary
  EXPECT_DOUBLE_EQ(Posit16(1.5).to_double(), 1.5);
  EXPECT_EQ(Posit16(2.0).bits(), 0x4800u);
  EXPECT_EQ(Posit16(4.0).bits(), 0x5000u);
  EXPECT_EQ(Posit16(8.0).bits(), 0x5800u);
  EXPECT_EQ(Posit16(16.0).bits(), 0x6000u);  // k=1, regime "110"
}

TEST(PositEncoding, NaRAndZero) {
  EXPECT_TRUE(Posit16::nar().is_nar());
  EXPECT_EQ(Posit16::nar().bits(), 0x8000u);
  EXPECT_TRUE(Posit16(0.0).is_zero());
  EXPECT_EQ(Posit16(0.0).bits(), 0x0000u);
  EXPECT_TRUE(std::isnan(Posit16::nar().to_double()));
}

// ---- Round trips ------------------------------------------------------------

template <class P>
void exhaustive_roundtrip() {
  for (std::uint64_t b = 0; b < (1ull << P::kBits); ++b) {
    const P x = P::from_bits(static_cast<typename P::Storage>(b));
    if (x.is_nar()) continue;
    const P back = P::from_double(x.to_double());
    EXPECT_EQ(back.bits(), x.bits()) << "bits=" << b;
  }
}

TEST(PositRoundTrip, Posit8Exhaustive) { exhaustive_roundtrip<Posit8>(); }
TEST(PositRoundTrip, Posit16Exhaustive) { exhaustive_roundtrip<Posit16>(); }

TEST(PositRoundTrip, Posit32Sampled) {
  Rng rng(21);
  for (int i = 0; i < 300000; ++i) {
    const auto b = static_cast<std::uint32_t>(rng.next_u64());
    const Posit32 x = Posit32::from_bits(b);
    if (x.is_nar()) continue;
    EXPECT_EQ(Posit32::from_double(x.to_double()).bits(), x.bits());
  }
}

TEST(PositRoundTrip, Posit64UnpackRepack) {
  // to_double is lossy for posit64 (fractions up to 59 bits), so test the
  // codec round trip directly on the unpacked form.
  Rng rng(22);
  for (int i = 0; i < 300000; ++i) {
    const std::uint64_t b = rng.next_u64() & 0x7fffffffffffffffull;
    if (b == 0) continue;
    const Unpacked u = PositCodec<64>::decode_positive(b);
    EXPECT_EQ(PositCodec<64>::encode_positive(u.e, u.m, false, false), b);
  }
}

// ---- Ordering and negation ---------------------------------------------------

TEST(PositOrder, MonotoneEncoding) {
  // Signed-integer comparison of encodings must match value comparison.
  Rng rng(23);
  for (int i = 0; i < 100000; ++i) {
    const auto a = static_cast<std::uint16_t>(rng.next_u64());
    const auto b = static_cast<std::uint16_t>(rng.next_u64());
    const Posit16 pa = Posit16::from_bits(a), pb = Posit16::from_bits(b);
    if (pa.is_nar() || pb.is_nar()) continue;
    EXPECT_EQ(pa < pb, pa.to_double() < pb.to_double()) << a << " " << b;
  }
}

TEST(PositNegate, TwosComplement) {
  Rng rng(24);
  for (int i = 0; i < 100000; ++i) {
    const auto b = static_cast<std::uint16_t>(rng.next_u64());
    const Posit16 p = Posit16::from_bits(b);
    if (p.is_nar()) continue;
    EXPECT_DOUBLE_EQ((-p).to_double(), -p.to_double());
    EXPECT_EQ((-(-p)).bits(), p.bits());
  }
}

TEST(PositAbs, MatchesMagnitude) {
  EXPECT_DOUBLE_EQ(abs(Posit16(-2.5)).to_double(), 2.5);
  EXPECT_DOUBLE_EQ(abs(Posit16(2.5)).to_double(), 2.5);
  EXPECT_TRUE(abs(Posit16::nar()).is_nar());
}

// ---- Saturation (no overflow to NaR, no underflow to zero) -------------------

TEST(PositSaturation, MulOverflowClampsToMaxpos) {
  const Posit8 big = Posit8::max_positive();
  EXPECT_EQ((big * big).bits(), Posit8::max_positive().bits());
  EXPECT_EQ((-big * big).bits(), (-Posit8::max_positive()).bits());
}

TEST(PositSaturation, MulUnderflowClampsToMinpos) {
  const Posit8 tiny = Posit8::min_positive();
  EXPECT_EQ((tiny * tiny).bits(), Posit8::min_positive().bits());
  EXPECT_EQ((tiny * -tiny).bits(), (-Posit8::min_positive()).bits());
}

TEST(PositSaturation, FromDoubleClamps) {
  EXPECT_EQ(Posit8(1e300).bits(), Posit8::max_positive().bits());
  EXPECT_EQ(Posit8(1e-300).bits(), Posit8::min_positive().bits());
  EXPECT_EQ(Posit8(-1e300).bits(), (-Posit8::max_positive()).bits());
  // No ∞σ possible: a posit conversion never loses a finite non-zero value.
  EXPECT_FALSE(conversion_loses_value<Posit8>(1e300));
  EXPECT_FALSE(conversion_loses_value<Posit8>(1e-300));
}

// ---- NaR propagation ----------------------------------------------------------

TEST(PositNaR, Propagation) {
  const Posit16 nar = Posit16::nar();
  EXPECT_TRUE((nar + Posit16(1.0)).is_nar());
  EXPECT_TRUE((nar * Posit16(0.0)).is_nar());
  EXPECT_TRUE((Posit16(1.0) / Posit16(0.0)).is_nar());
  EXPECT_TRUE(sqrt(Posit16(-4.0)).is_nar());
  EXPECT_TRUE(Posit16(std::nan("")).is_nar());
  EXPECT_TRUE(Posit16(INFINITY).is_nar());
}

// ---- Exhaustive 8-bit oracle ----------------------------------------------
// Oracle semantics: the exact result is rounded to the posit whose *encoding
// tail* round-to-nearest-even applies (geometric cuts in truncated-field
// regions), with saturation at minpos/maxpos. We verify the cheap invariant
// instead: the result must be one of the two representable neighbors of the
// exact value, and strictly correctly rounded whenever the exact value lies
// within the uniform-fraction region of both neighbors.

std::vector<double> all_posit8_values() {
  std::vector<double> v;
  for (int b = 0; b < 256; ++b) {
    const Posit8 p = Posit8::from_bits(static_cast<std::uint8_t>(b));
    if (!p.is_nar()) v.push_back(p.to_double());
  }
  std::sort(v.begin(), v.end());
  return v;
}

void expect_neighbor(double exact, const Posit8& got, const std::vector<double>& values,
                     const char* what) {
  ASSERT_FALSE(got.is_nar()) << what;
  const double g = got.to_double();
  // Clamp the exact value into the representable range (saturation).
  const double lo = values.front(), hi = values.back();
  double x = exact;
  if (x > hi) x = hi;
  if (x < lo) x = lo;
  auto it = std::lower_bound(values.begin(), values.end(), x);
  double above = (it == values.end()) ? hi : *it;
  double below = (it == values.begin()) ? lo : *(it - 1);
  EXPECT_TRUE(g == above || g == below)
      << what << ": exact=" << exact << " got=" << g << " neighbors=[" << below << ", " << above
      << "]";
}

TEST(Posit8Oracle, AddMulDivWithinNeighborBounds) {
  const auto values = all_posit8_values();
  for (int a = 0; a < 256; ++a) {
    const Posit8 pa = Posit8::from_bits(static_cast<std::uint8_t>(a));
    if (pa.is_nar()) continue;
    for (int b = 0; b < 256; ++b) {
      const Posit8 pb = Posit8::from_bits(static_cast<std::uint8_t>(b));
      if (pb.is_nar()) continue;
      const double xa = pa.to_double(), xb = pb.to_double();
      const double s = xa + xb;
      const Posit8 ps = pa + pb;
      if (s == 0.0) {
        EXPECT_TRUE(ps.is_zero());
      } else {
        expect_neighbor(s, ps, values, "add");
      }
      const double m = xa * xb;
      const Posit8 pm = pa * pb;
      if (m == 0.0) {
        EXPECT_TRUE(pm.is_zero());
      } else {
        expect_neighbor(m, pm, values, "mul");
      }
      if (xb != 0.0) {
        expect_neighbor(xa / xb, pa / pb, values, "div");
      } else {
        EXPECT_TRUE((pa / pb).is_nar());
      }
    }
  }
}

TEST(Posit8Oracle, SqrtCorrect) {
  const auto values = all_posit8_values();
  for (int a = 0; a < 256; ++a) {
    const Posit8 pa = Posit8::from_bits(static_cast<std::uint8_t>(a));
    if (pa.is_nar()) continue;
    if (pa.to_double() < 0) {
      EXPECT_TRUE(sqrt(pa).is_nar());
      continue;
    }
    if (pa.is_zero()) {
      EXPECT_TRUE(sqrt(pa).is_zero());
      continue;
    }
    expect_neighbor(std::sqrt(pa.to_double()), sqrt(pa), values, "sqrt");
  }
}

// ---- Correct rounding in the uniform region (posit16 vs long double) -------

TEST(Posit16CorrectRounding, RandomOps) {
  // In magnitude ranges where posit16 has >= 8 fraction bits, the result of
  // a correctly rounded op differs from the long-double exact value by at
  // most half an ulp of the wider neighbor gap.
  Rng rng(25);
  int checked = 0;
  for (int i = 0; i < 200000; ++i) {
    const double a = rng.normal() * rng.log_uniform(-2.0, 2.0);
    const double b = rng.normal() * rng.log_uniform(-2.0, 2.0);
    const Posit16 pa(a), pb(b);
    const long double xa = pa.to_double(), xb = pb.to_double();
    const struct {
      long double exact;
      Posit16 got;
    } cases[] = {{xa + xb, pa + pb}, {xa * xb, pa * pb}, {xb != 0 ? xa / xb : 0, pa / pb}};
    for (const auto& c : cases) {
      if (c.exact == 0 || c.got.is_nar()) continue;
      const double g = c.got.to_double();
      // Neighbors of got in posit16:
      const Posit16 up = Posit16::from_bits(static_cast<std::uint16_t>(c.got.bits() + 1));
      const Posit16 dn = Posit16::from_bits(static_cast<std::uint16_t>(c.got.bits() - 1));
      if (up.is_nar() || dn.is_nar()) continue;
      const long double gap =
          std::max<long double>(std::abs(up.to_double() - g), std::abs(g - dn.to_double()));
      EXPECT_LE(std::abs(static_cast<double>(c.exact - static_cast<long double>(g))),
                static_cast<double>(gap) * 0.5000001)
          << "a=" << a << " b=" << b;
      ++checked;
    }
  }
  EXPECT_GT(checked, 100000);
}

// ---- es ablation support ------------------------------------------------------

TEST(PositEs, DifferentEsChangeRange) {
  using P16e0 = Posit<16, 0>;
  using P16e1 = Posit<16, 1>;
  using P16e3 = Posit<16, 3>;
  EXPECT_DOUBLE_EQ(P16e0::max_positive().to_double(), 0x1p14);
  EXPECT_DOUBLE_EQ(P16e1::max_positive().to_double(), 0x1p28);
  EXPECT_DOUBLE_EQ(P16e3::max_positive().to_double(), 0x1p112);
  EXPECT_EQ(P16e0(1.0).bits(), 0x4000u);
  EXPECT_EQ(P16e1(1.0).bits(), 0x4000u);
}

}  // namespace
}  // namespace mfla
