// Bit-identity of the kernel layer's LUT fast paths (kernels/accel.hpp)
// against the exact engines:
//   * exhaustive add/mul over all 256x256 operand pairs for every 8-bit
//     format,
//   * exhaustive decode (double and, for tapered formats, Unpacked) over
//     all 65536 encodings for every 16-bit format,
//   * sampled operand pairs through the 16-bit fast-path ops,
//   * whole kernels (dot/axpy/scal/gemv/spmv) with LUTs on vs off,
//   * an end-to-end experiment run whose result CSV must be byte-identical
//     with LUTs on and off.
// In an MFLA_ENABLE_LUT=0 build the fast paths are compiled out and the
// on/off comparisons degenerate to exact-vs-exact, which keeps this suite
// meaningful in both CI configurations.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/results_io.hpp"
#include "graph/generators.hpp"
#include "graph/laplacian.hpp"
#include "kernels/accel.hpp"
#include "kernels/spmv.hpp"
#include "kernels/vector_ops.hpp"
#include "sparse/csr.hpp"
#include "support/rng.hpp"

namespace mfla {
namespace {

/// RAII override of the runtime LUT switch.
class LutGuard {
 public:
  explicit LutGuard(bool on) : previous_(kernels::set_lut_enabled(on)) {}
  ~LutGuard() { kernels::set_lut_enabled(previous_); }
  LutGuard(const LutGuard&) = delete;
  LutGuard& operator=(const LutGuard&) = delete;

 private:
  bool previous_;
};

/// NaN-safe double comparison: equal bit patterns.
[[nodiscard]] bool same_double_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

template <typename T>
std::vector<T> random_vec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<T> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) v.push_back(NumTraits<T>::from_double(rng.normal()));
  return v;
}

// -- Exhaustive 8-bit operation tables --------------------------------------

template <typename T>
void check_lut8_exhaustive() {
#if MFLA_ENABLE_LUT
  using Codec = ScalarCodec<T>;
  const auto& lut = kernels::accel::Lut8<T>::instance();
  for (unsigned a = 0; a < 256; ++a) {
    const T ta = Codec::from_bits(static_cast<typename Codec::Storage>(a));
    ASSERT_TRUE(same_double_bits(lut.decode(static_cast<typename Codec::Storage>(a)),
                                 NumTraits<T>::to_double(ta)))
        << NumTraits<T>::name() << " decode mismatch at " << a;
    for (unsigned b = 0; b < 256; ++b) {
      const T tb = Codec::from_bits(static_cast<typename Codec::Storage>(b));
      ASSERT_EQ(Codec::to_bits(lut.add(ta, tb)), Codec::to_bits(ta + tb))
          << NumTraits<T>::name() << " add mismatch at (" << a << ", " << b << ")";
      ASSERT_EQ(Codec::to_bits(lut.mul(ta, tb)), Codec::to_bits(ta * tb))
          << NumTraits<T>::name() << " mul mismatch at (" << a << ", " << b << ")";
    }
  }
#else
  GTEST_SKIP() << "built with MFLA_ENABLE_LUT=0";
#endif
}

TEST(KernelAccel, Lut8ExhaustiveOFP8E4M3) { check_lut8_exhaustive<OFP8E4M3>(); }
TEST(KernelAccel, Lut8ExhaustiveOFP8E5M2) { check_lut8_exhaustive<OFP8E5M2>(); }
TEST(KernelAccel, Lut8ExhaustivePosit8) { check_lut8_exhaustive<Posit8>(); }
TEST(KernelAccel, Lut8ExhaustiveTakum8) { check_lut8_exhaustive<Takum8>(); }

// -- Exhaustive 16-bit decode tables ----------------------------------------

template <typename T>
void check_dec16_exhaustive() {
#if MFLA_ENABLE_LUT
  using Codec = ScalarCodec<T>;
  const auto& lut = kernels::accel::Dec16<T>::instance();
  for (std::uint32_t b = 0; b < 65536; ++b) {
    const auto bits = static_cast<typename Codec::Storage>(b);
    ASSERT_TRUE(same_double_bits(lut.decode(bits), Codec::bits_to_double(bits)))
        << NumTraits<T>::name() << " decode mismatch at " << b;
    if constexpr (Codec::tapered) {
      const Unpacked want = Codec::bits_to_unpacked(bits);
      const Unpacked& got = lut.unpacked(bits);
      ASSERT_EQ(got.neg, want.neg) << NumTraits<T>::name() << " at " << b;
      ASSERT_EQ(got.e, want.e) << NumTraits<T>::name() << " at " << b;
      ASSERT_EQ(got.m, want.m) << NumTraits<T>::name() << " at " << b;
    }
  }
#else
  GTEST_SKIP() << "built with MFLA_ENABLE_LUT=0";
#endif
}

TEST(KernelAccel, Dec16ExhaustiveFloat16) { check_dec16_exhaustive<Float16>(); }
TEST(KernelAccel, Dec16ExhaustiveBFloat16) { check_dec16_exhaustive<BFloat16>(); }
TEST(KernelAccel, Dec16ExhaustivePosit16) { check_dec16_exhaustive<Posit16>(); }
TEST(KernelAccel, Dec16ExhaustiveTakum16) { check_dec16_exhaustive<Takum16>(); }

// -- Sampled 16-bit fast-path operations ------------------------------------

template <typename T>
void check_ops16_sampled() {
#if MFLA_ENABLE_LUT
  using Codec = ScalarCodec<T>;
  using Storage = typename Codec::Storage;
  const auto fast_ops = [] {
    if constexpr (Codec::tapered) {
      return kernels::accel::Dec16TaperedOps<T>{kernels::accel::Dec16<T>::instance()};
    } else {
      return kernels::accel::Dec16IeeeOps<T>{kernels::accel::Dec16<T>::instance()};
    }
  }();
  const kernels::accel::NativeOps<T> exact_ops;

  const auto check_pair = [&](Storage pa, Storage pb) {
    const T a = Codec::from_bits(pa);
    const T b = Codec::from_bits(pb);
    ASSERT_EQ(Codec::to_bits(fast_ops.add(a, b)), Codec::to_bits(exact_ops.add(a, b)))
        << NumTraits<T>::name() << " add mismatch at (" << pa << ", " << pb << ")";
    ASSERT_EQ(Codec::to_bits(fast_ops.mul(a, b)), Codec::to_bits(exact_ops.mul(a, b)))
        << NumTraits<T>::name() << " mul mismatch at (" << pa << ", " << pb << ")";
  };

  // Edge encodings: zero, sign bit alone (NaR / -0), all-ones, extremes of
  // both half-ranges — paired with each other.
  const Storage edges[] = {0x0000, 0x8000, 0xffff, 0x0001, 0x7fff, 0x8001, 0x7c00, 0xfc00};
  for (const Storage a : edges)
    for (const Storage b : edges) check_pair(a, b);

  // 200k pseudo-random operand pairs.
  Rng rng("ops16_sampled", static_cast<std::uint64_t>(Codec::tapered));
  for (int i = 0; i < 200000; ++i) {
    const auto pa = static_cast<Storage>(rng.next_u64() & 0xffff);
    const auto pb = static_cast<Storage>(rng.next_u64() & 0xffff);
    check_pair(pa, pb);
  }
#else
  GTEST_SKIP() << "built with MFLA_ENABLE_LUT=0";
#endif
}

TEST(KernelAccel, Ops16SampledFloat16) { check_ops16_sampled<Float16>(); }
TEST(KernelAccel, Ops16SampledBFloat16) { check_ops16_sampled<BFloat16>(); }
TEST(KernelAccel, Ops16SampledPosit16) { check_ops16_sampled<Posit16>(); }
TEST(KernelAccel, Ops16SampledTakum16) { check_ops16_sampled<Takum16>(); }

// -- Whole kernels, LUT on vs off -------------------------------------------

template <typename T>
CsrMatrix<T> small_matrix(std::size_t n) {
  Rng rng("kernel_accel_matrix", n);
  const CooMatrix lap = graph_laplacian_pipeline(
      erdos_renyi(static_cast<std::uint32_t>(n), 8.0 / static_cast<double>(n), rng));
  return CsrMatrix<double>::from_coo(lap).convert<T>();
}

template <typename T>
void check_kernels_on_off() {
  const std::size_t n = 257;
  const auto x = random_vec<T>(n, 11);
  const auto y = random_vec<T>(n, 12);
  const T alpha = NumTraits<T>::from_double(0.37);
  const auto a = small_matrix<T>(64);
  const auto xs = random_vec<T>(a.cols(), 13);

  T dot_on, dot_off, nrm_on, nrm_off;
  std::vector<T> axpy_on = y, axpy_off = y, scal_on = x, scal_off = x;
  std::vector<T> spmv_on(a.rows()), spmv_off(a.rows());
  {
    LutGuard lut(true);
    dot_on = kernels::dot(n, x.data(), y.data());
    nrm_on = kernels::nrm2(n, x.data());
    kernels::axpy(n, alpha, x.data(), axpy_on.data());
    kernels::scal(n, alpha, scal_on.data());
    a.matvec(xs.data(), spmv_on.data());
  }
  {
    LutGuard lut(false);
    dot_off = kernels::dot(n, x.data(), y.data());
    nrm_off = kernels::nrm2(n, x.data());
    kernels::axpy(n, alpha, x.data(), axpy_off.data());
    kernels::scal(n, alpha, scal_off.data());
    a.matvec(xs.data(), spmv_off.data());
  }
  using Codec = ScalarCodec<T>;
  EXPECT_EQ(Codec::to_bits(dot_on), Codec::to_bits(dot_off));
  EXPECT_EQ(Codec::to_bits(nrm_on), Codec::to_bits(nrm_off));
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(Codec::to_bits(axpy_on[i]), Codec::to_bits(axpy_off[i])) << "axpy at " << i;
    ASSERT_EQ(Codec::to_bits(scal_on[i]), Codec::to_bits(scal_off[i])) << "scal at " << i;
  }
  for (std::size_t i = 0; i < a.rows(); ++i) {
    ASSERT_EQ(Codec::to_bits(spmv_on[i]), Codec::to_bits(spmv_off[i])) << "spmv at " << i;
  }
  // The ref:: path must agree with the LUT-off dispatch by definition.
  EXPECT_EQ(Codec::to_bits(kernels::ref::dot(n, x.data(), y.data())), Codec::to_bits(dot_off));
}

TEST(KernelAccel, KernelsOnOffOFP8E4M3) { check_kernels_on_off<OFP8E4M3>(); }
TEST(KernelAccel, KernelsOnOffOFP8E5M2) { check_kernels_on_off<OFP8E5M2>(); }
TEST(KernelAccel, KernelsOnOffPosit8) { check_kernels_on_off<Posit8>(); }
TEST(KernelAccel, KernelsOnOffTakum8) { check_kernels_on_off<Takum8>(); }
TEST(KernelAccel, KernelsOnOffFloat16) { check_kernels_on_off<Float16>(); }
TEST(KernelAccel, KernelsOnOffBFloat16) { check_kernels_on_off<BFloat16>(); }
TEST(KernelAccel, KernelsOnOffPosit16) { check_kernels_on_off<Posit16>(); }
TEST(KernelAccel, KernelsOnOffTakum16) { check_kernels_on_off<Takum16>(); }

// -- End to end: experiment CSVs byte-identical, LUT on vs off --------------

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(KernelAccel, ExperimentCsvByteIdenticalLutOnOff) {
  std::vector<TestMatrix> ds;
  Rng r1(9001), r2(9002);
  ds.push_back(make_test_matrix("accel_er", "social", "soc",
                                graph_laplacian_pipeline(erdos_renyi(40, 0.16, r1))));
  ds.push_back(make_test_matrix("accel_sbm", "social", "soc",
                                graph_laplacian_pipeline(stochastic_block(44, 2, 0.35, 0.07, r2))));
  const std::vector<FormatId> formats = {
      FormatId::ofp8_e4m3, FormatId::ofp8_e5m2, FormatId::posit8,  FormatId::takum8,
      FormatId::float16,   FormatId::bfloat16,  FormatId::posit16, FormatId::takum16,
      FormatId::float64,
  };
  ExperimentConfig cfg;
  cfg.nev = 4;
  cfg.buffer = 2;
  cfg.max_restarts = 40;
  cfg.reference_max_restarts = 150;

  const auto run_to_csv = [&](bool lut_on, const std::string& tag) {
    LutGuard lut(lut_on);
    const auto results = run_experiment(ds, formats, cfg, ScheduleOptions{});
    const std::string path = "test_out/kernel_accel_" + tag + ".csv";
    write_results_csv(path, results);
    std::string data = slurp(path);
    std::remove(path.c_str());
    return data;
  };

  const std::string csv_on = run_to_csv(true, "on");
  const std::string csv_off = run_to_csv(false, "off");
  EXPECT_FALSE(csv_on.empty());
  EXPECT_EQ(csv_on, csv_off);
}

}  // namespace
}  // namespace mfla
