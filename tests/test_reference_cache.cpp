// Reference-solution cache tests: content hashing, binary round-trip
// exactness (eigenvalue/vector bits), key sensitivity, corrupted-entry
// fallback, and the engine-level cold-vs-warm byte-identity guarantee.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <bit>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.hpp"
#include "core/reference_cache.hpp"
#include "core/results_io.hpp"
#include "graph/generators.hpp"
#include "graph/laplacian.hpp"
#include "support/failpoint.hpp"
#include "support/hash.hpp"
#include "support/rng.hpp"

namespace mfla {
namespace {

// ---------------------------------------------------------------------------
// Hashing
// ---------------------------------------------------------------------------

TEST(Hash128, DeterministicAndSensitive) {
  const auto digest = [](std::uint64_t a, std::uint64_t b) {
    Hasher h;
    h.u64(a).u64(b);
    return h.finish();
  };
  EXPECT_EQ(digest(1, 2), digest(1, 2));
  EXPECT_NE(digest(1, 2), digest(2, 1));
  EXPECT_NE(digest(1, 2), digest(1, 3));
  EXPECT_NE(digest(0, 0), digest(0, 1));
  // Single-bit flips anywhere in a word change the digest.
  const Hash128 base = digest(0x123456789abcdef0ull, 42);
  for (int bit = 0; bit < 64; ++bit) {
    EXPECT_NE(base, digest(0x123456789abcdef0ull ^ (1ull << bit), 42));
  }
}

TEST(Hash128, ByteRangesAreFramed) {
  const auto str2 = [](std::string_view a, std::string_view b) {
    Hasher h;
    h.str(a).str(b);
    return h.finish();
  };
  EXPECT_NE(str2("ab", "c"), str2("a", "bc"));
  EXPECT_NE(str2("", "abc"), str2("abc", ""));
  // -0.0 and +0.0 hash differently (bit-level, not value-level).
  Hasher hp, hn;
  hp.f64(0.0);
  hn.f64(-0.0);
  EXPECT_NE(hp.finish(), hn.finish());
}

TEST(Hash128, HexIsStableAndFilenameSafe) {
  Hasher h;
  h.str("hex probe");
  const std::string hex = h.finish().hex();
  EXPECT_EQ(hex.size(), 32u);
  EXPECT_EQ(hex.find_first_not_of("0123456789abcdef"), std::string::npos);
  Hasher h2;
  h2.str("hex probe");
  EXPECT_EQ(hex, h2.finish().hex());
}

// ---------------------------------------------------------------------------
// Cache fixtures
// ---------------------------------------------------------------------------

struct TempDir {
  std::string path;
  explicit TempDir(const std::string& name) : path("test_out/" + name) {
    std::filesystem::remove_all(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

std::vector<TestMatrix> cache_dataset() {
  std::vector<TestMatrix> ds;
  Rng r1(7001), r2(7002);
  ds.push_back(make_test_matrix("rc_er_a", "social", "soc",
                                graph_laplacian_pipeline(erdos_renyi(40, 0.16, r1))));
  ds.push_back(make_test_matrix("rc_er_b", "biological", "protein",
                                graph_laplacian_pipeline(erdos_renyi(46, 0.13, r2))));
  return ds;
}

ExperimentConfig cache_config() {
  ExperimentConfig cfg;
  cfg.nev = 5;
  cfg.buffer = 2;
  cfg.max_restarts = 80;
  cfg.reference_max_restarts = 150;
  return cfg;
}

ReferenceSolution sample_solution() {
  ReferenceSolution ref;
  ref.ok = true;
  // Deliberately nasty doubles: denormal, -0.0, huge, tiny, irrational.
  ref.values = {1.0, -0.0, 5e-324, 1.7976931348623157e308, 0x1.fffffffffffffp-1022,
                3.141592653589793};
  ref.vectors = DenseMatrix<double>(4, 3);
  double x = -1.0;
  for (std::size_t j = 0; j < 3; ++j)
    for (std::size_t i = 0; i < 4; ++i) {
      ref.vectors(i, j) = x;
      x = x * -1.75 + 0.125;
    }
  return ref;
}

Hash128 sample_key(std::uint64_t salt = 0) {
  Hasher h;
  h.str("test key").u64(salt);
  return h.finish();
}

// ---------------------------------------------------------------------------
// Binary round-trip
// ---------------------------------------------------------------------------

TEST(ReferenceCache, RoundTripIsBitExact) {
  TempDir dir("refcache_roundtrip");
  ReferenceCache cache(dir.path);
  const ReferenceSolution ref = sample_solution();
  const Hash128 key = sample_key();
  cache.store(key, ref);

  ReferenceSolution back;
  ASSERT_TRUE(cache.load(key, back));
  EXPECT_TRUE(back.ok);
  EXPECT_EQ(back.failure, ref.failure);
  ASSERT_EQ(back.values.size(), ref.values.size());
  for (std::size_t i = 0; i < ref.values.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back.values[i]),
              std::bit_cast<std::uint64_t>(ref.values[i]))
        << "value " << i << " lost bits";
  }
  ASSERT_EQ(back.vectors.rows(), ref.vectors.rows());
  ASSERT_EQ(back.vectors.cols(), ref.vectors.cols());
  for (std::size_t j = 0; j < ref.vectors.cols(); ++j)
    for (std::size_t i = 0; i < ref.vectors.rows(); ++i) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(back.vectors(i, j)),
                std::bit_cast<std::uint64_t>(ref.vectors(i, j)));
    }

  const RefCacheStats s = cache.stats();
  EXPECT_EQ(s.lookups, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.stores, 1u);
  EXPECT_EQ(s.rejects, 0u);
}

TEST(ReferenceCache, FailureEntriesRoundTrip) {
  TempDir dir("refcache_failure");
  ReferenceCache cache(dir.path);
  ReferenceSolution fail;
  fail.ok = false;
  fail.failure = "reference did not converge";
  const Hash128 key = sample_key(1);
  cache.store(key, fail);
  ReferenceSolution back;
  ASSERT_TRUE(cache.load(key, back));
  EXPECT_FALSE(back.ok);
  EXPECT_EQ(back.failure, fail.failure);
  EXPECT_TRUE(back.values.empty());
}

TEST(ReferenceCache, MissOnAbsentKey) {
  TempDir dir("refcache_miss");
  ReferenceCache cache(dir.path);
  ReferenceSolution out;
  EXPECT_FALSE(cache.load(sample_key(2), out));
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().rejects, 0u);
}

// ---------------------------------------------------------------------------
// Key sensitivity
// ---------------------------------------------------------------------------

TEST(ReferenceCacheKey, SensitiveToEveryInput) {
  auto ds = cache_dataset();
  const ExperimentConfig cfg = cache_config();
  Rng rng(ds[0].name, cfg.seed);
  const std::vector<double> start = rng.unit_vector(ds[0].n());

  const Hash128 base = reference_cache_key(ds[0].matrix, cfg, start);
  EXPECT_EQ(base, reference_cache_key(ds[0].matrix, cfg, start)) << "key not deterministic";

  // Flip the lowest mantissa bit of one matrix value.
  {
    TestMatrix tm = ds[0];
    auto& vals = tm.matrix.mutable_values();
    ASSERT_FALSE(vals.empty());
    vals[vals.size() / 2] =
        std::bit_cast<double>(std::bit_cast<std::uint64_t>(vals[vals.size() / 2]) ^ 1ull);
    EXPECT_NE(base, reference_cache_key(tm.matrix, cfg, start));
  }
  // A different matrix (same config) misses.
  EXPECT_NE(base, reference_cache_key(ds[1].matrix, cfg, start));
  // Each config field participates.
  {
    ExperimentConfig c = cfg;
    c.nev += 1;
    EXPECT_NE(base, reference_cache_key(ds[0].matrix, c, start));
  }
  {
    ExperimentConfig c = cfg;
    c.buffer += 1;
    EXPECT_NE(base, reference_cache_key(ds[0].matrix, c, start));
  }
  {
    ExperimentConfig c = cfg;
    c.which = Which::smallest_magnitude;
    EXPECT_NE(base, reference_cache_key(ds[0].matrix, c, start));
  }
  {
    ExperimentConfig c = cfg;
    c.reference_max_restarts += 1;
    EXPECT_NE(base, reference_cache_key(ds[0].matrix, c, start));
  }
  {
    ExperimentConfig c = cfg;
    c.seed ^= 1;
    EXPECT_NE(base, reference_cache_key(ds[0].matrix, c, start));
  }
  // One start-vector bit.
  {
    std::vector<double> s2 = start;
    s2[3] = std::bit_cast<double>(std::bit_cast<std::uint64_t>(s2[3]) ^ 1ull);
    EXPECT_NE(base, reference_cache_key(ds[0].matrix, cfg, s2));
  }
}

// ---------------------------------------------------------------------------
// Corruption fallback
// ---------------------------------------------------------------------------

class CorruptionTest : public ::testing::Test {
 protected:
  void store_entry() {
    // Per-test-case directory: ctest runs gtest cases as parallel
    // processes, so siblings must not share (and remove_all) one dir.
    dir_ = std::make_unique<TempDir>(
        std::string("refcache_corrupt_") +
        ::testing::UnitTest::GetInstance()->current_test_info()->name());
    cache_ = std::make_unique<ReferenceCache>(dir_->path);
    cache_->store(key_, sample_solution());
    path_ = cache_->entry_path(key_);
  }

  std::string read_file() {
    std::ifstream in(path_, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }

  void write_file(const std::string& blob) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  }

  /// A rejected entry must fall back to recomputation: load() == false and
  /// the reject counter advances (a miss would not).
  void expect_reject() {
    const std::uint64_t before = cache_->stats().rejects;
    ReferenceSolution out;
    EXPECT_FALSE(cache_->load(key_, out));
    EXPECT_EQ(cache_->stats().rejects, before + 1);
  }

  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<ReferenceCache> cache_;
  Hash128 key_ = sample_key(3);
  std::string path_;
};

TEST_F(CorruptionTest, TruncatedEntryRejected) {
  store_entry();
  const std::string blob = read_file();
  write_file(blob.substr(0, blob.size() / 2));
  expect_reject();
}

TEST_F(CorruptionTest, EmptyEntryRejected) {
  store_entry();
  write_file("");
  expect_reject();
}

TEST_F(CorruptionTest, FlippedPayloadByteRejected) {
  store_entry();
  std::string blob = read_file();
  blob[blob.size() / 2] = static_cast<char>(blob[blob.size() / 2] ^ 0x40);
  write_file(blob);
  expect_reject();
}

TEST_F(CorruptionTest, VersionMismatchRejected) {
  store_entry();
  std::string blob = read_file();
  blob[8] = static_cast<char>(blob[8] ^ 0xff);  // version field follows the magic
  write_file(blob);
  expect_reject();
}

TEST_F(CorruptionTest, ForeignMagicRejected) {
  store_entry();
  std::string blob = read_file();
  blob[0] = 'X';
  write_file(blob);
  expect_reject();
}

TEST_F(CorruptionTest, WrongKeyEchoRejected) {
  store_entry();
  std::string blob = read_file();
  blob[12] = static_cast<char>(blob[12] ^ 1);  // key echo follows the version
  write_file(blob);
  expect_reject();
}

TEST_F(CorruptionTest, RecomputeAndStoreHealsEntry) {
  store_entry();
  write_file("garbage");
  expect_reject();
  cache_->store(key_, sample_solution());  // what the engine does after a reject
  ReferenceSolution out;
  EXPECT_TRUE(cache_->load(key_, out));
  EXPECT_TRUE(out.ok);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string csv_of(const std::vector<MatrixResult>& results, const std::string& tag) {
  const std::string path = "test_out/refcache_" + tag + ".csv";
  write_results_csv(path, results);
  std::string data = slurp(path);
  std::remove(path.c_str());
  return data;
}

// ---------------------------------------------------------------------------
// Durability: failpoint-driven store failures, quarantine, degraded mode
// ---------------------------------------------------------------------------

class CacheDurabilityTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::disarm_all(); }
  void TearDown() override { failpoint::disarm_all(); }

  /// Temp-file leftovers would mean a failed attempt leaked its unpublished
  /// write; every abandoned attempt must clean up after itself.
  static std::size_t tmp_files_in(const std::string& dir) {
    std::size_t n = 0;
    for (const auto& e : std::filesystem::directory_iterator(dir))
      if (e.path().filename().string().rfind(".tmp-", 0) == 0) ++n;
    return n;
  }
};

TEST_F(CacheDurabilityTest, StoreRetriesTransientWriteErrorThenSucceeds) {
  TempDir dir("refcache_retry");
  ReferenceCache cache(dir.path);
  // ENOSPC on the first two write attempts; the third succeeds.
  failpoint::arm_from_spec("refcache.store.write=error(enospc)@1+2");
  cache.store(sample_key(10), sample_solution());
  const RefCacheStats s = cache.stats();
  EXPECT_EQ(s.stores, 1u);
  EXPECT_EQ(s.store_retries, 2u);
  EXPECT_EQ(s.store_failures, 0u);
  EXPECT_FALSE(s.degraded);
  EXPECT_EQ(tmp_files_in(dir.path), 0u);
  ReferenceSolution back;
  EXPECT_TRUE(cache.load(sample_key(10), back));
}

TEST_F(CacheDurabilityTest, StoreRetriesRenameErrorThenSucceeds) {
  TempDir dir("refcache_rename");
  ReferenceCache cache(dir.path);
  failpoint::arm_from_spec("refcache.store.rename=error(eio)@1+1");
  cache.store(sample_key(11), sample_solution());
  const RefCacheStats s = cache.stats();
  EXPECT_EQ(s.stores, 1u);
  EXPECT_EQ(s.store_retries, 1u);
  EXPECT_EQ(s.store_failures, 0u);
  EXPECT_EQ(tmp_files_in(dir.path), 0u);
  ReferenceSolution back;
  EXPECT_TRUE(cache.load(sample_key(11), back));
}

TEST_F(CacheDurabilityTest, ExhaustedRetriesCountAFailureButDoNotDegradeYet) {
  TempDir dir("refcache_enospc");
  ReferenceCache cache(dir.path);
  failpoint::arm_from_spec("refcache.store.write=error(enospc)");  // every attempt
  cache.store(sample_key(12), sample_solution());
  const RefCacheStats s = cache.stats();
  EXPECT_EQ(s.stores, 0u);
  EXPECT_EQ(s.store_retries, 2u);  // attempts 2 and 3
  EXPECT_EQ(s.store_failures, 1u);
  EXPECT_FALSE(s.degraded) << "one abandoned store must not disable the cache";
  EXPECT_EQ(tmp_files_in(dir.path), 0u);
  ReferenceSolution back;
  EXPECT_FALSE(cache.load(sample_key(12), back));
  failpoint::disarm_all();
  // The cache is still live: the next store (disk freed) works.
  cache.store(sample_key(12), sample_solution());
  EXPECT_TRUE(cache.load(sample_key(12), back));
}

TEST_F(CacheDurabilityTest, ConsecutiveStoreFailuresDegradeToRecomputeOnly) {
  TempDir dir("refcache_degrade");
  ReferenceCache cache(dir.path);
  failpoint::arm_from_spec("refcache.store.write=error(enospc)");
  for (std::uint64_t i = 0; i < 3; ++i) cache.store(sample_key(20 + i), sample_solution());
  EXPECT_TRUE(cache.degraded());
  EXPECT_EQ(cache.stats().store_failures, 3u);
  failpoint::disarm_all();
  // Degraded is sticky: even with I/O healthy again, stores are no-ops
  // (a full disk costs a handful of failed writes, not one per matrix).
  cache.store(sample_key(23), sample_solution());
  EXPECT_EQ(cache.stats().stores, 0u);
  ReferenceSolution back;
  EXPECT_FALSE(cache.load(sample_key(23), back));
}

TEST_F(CacheDurabilityTest, UnreadableEntryIsQuarantined) {
  TempDir dir("refcache_shortread");
  ReferenceCache cache(dir.path);
  cache.store(sample_key(30), sample_solution());
  const std::string path = cache.entry_path(sample_key(30));
  failpoint::arm_from_spec("refcache.load.read=error(eio)@1+1");
  ReferenceSolution back;
  EXPECT_FALSE(cache.load(sample_key(30), back));
  const RefCacheStats s = cache.stats();
  EXPECT_EQ(s.rejects, 1u);
  EXPECT_EQ(s.quarantined, 1u);
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_TRUE(std::filesystem::exists(path + ".bad")) << "corrupt bytes kept for post-mortem";
  // The quarantined entry never warns again: the next load is a plain miss.
  EXPECT_FALSE(cache.load(sample_key(30), back));
  EXPECT_EQ(cache.stats().rejects, 1u);
}

TEST_F(CacheDurabilityTest, CorruptEntryQuarantinedThenHealedByRestore) {
  TempDir dir("refcache_quarantine");
  ReferenceCache cache(dir.path);
  cache.store(sample_key(31), sample_solution());
  const std::string path = cache.entry_path(sample_key(31));
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "garbage";
  }
  ReferenceSolution back;
  EXPECT_FALSE(cache.load(sample_key(31), back));
  EXPECT_EQ(cache.stats().quarantined, 1u);
  EXPECT_TRUE(std::filesystem::exists(path + ".bad"));
  cache.store(sample_key(31), sample_solution());  // recompute-and-store heals
  EXPECT_TRUE(cache.load(sample_key(31), back));
  EXPECT_TRUE(std::filesystem::exists(path + ".bad")) << "quarantine survives the heal";
}

TEST_F(CacheDurabilityTest, ConcurrentStoresOfOneKeyAllPublishCleanly) {
  TempDir dir("refcache_concurrent");
  ReferenceCache cache(dir.path);
  const ReferenceSolution ref = sample_solution();
  // Sprinkle transient failures across the racing producers; unique temp
  // names mean they cannot clobber each other's in-flight writes.
  failpoint::arm_from_spec("refcache.store.write=error(enospc)@2+3");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&] { cache.store(sample_key(40), ref); });
  for (auto& th : threads) th.join();
  failpoint::disarm_all();
  EXPECT_EQ(tmp_files_in(dir.path), 0u);
  ReferenceSolution back;
  ASSERT_TRUE(cache.load(sample_key(40), back));
  ASSERT_EQ(back.values.size(), ref.values.size());
  for (std::size_t i = 0; i < ref.values.size(); ++i)
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back.values[i]),
              std::bit_cast<std::uint64_t>(ref.values[i]));
}

TEST_F(CacheDurabilityTest, TwoWriterProcessesShareOneDirectoryCleanly) {
  // The serving scenario: several daemons (processes) share one cache
  // directory. Each writer gets its own ReferenceCache instance, so the
  // only serialization between them is the advisory flock on the rename
  // seams. Both processes hammer the same key set; afterwards every entry
  // must load bit-exact and no temp file may be left behind.
  TempDir dir("refcache_twoproc");
  const ReferenceSolution ref = sample_solution();
  constexpr std::uint64_t kKeys = 16;

  const auto writer = [&](std::uint64_t salt_offset) {
    ReferenceCache cache(dir.path);
    bool ok = true;
    for (std::uint64_t k = 0; k < kKeys; ++k) {
      cache.store(sample_key(100 + (k + salt_offset) % kKeys), ref);
      ReferenceSolution back;
      // A load may race the other process's in-flight publish of this key
      // only before anyone stored it — by the time our own store returned,
      // the entry exists (renames never unpublish), so this must hit.
      ok = ok && cache.load(sample_key(100 + (k + salt_offset) % kKeys), back);
    }
    return ok;
  };

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: plain _exit so gtest machinery/buffers are not double-run.
    const bool ok = writer(kKeys / 2);
    ::_exit(ok ? 0 : 1);
  }
  const bool parent_ok = writer(0);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0) << "child writer failed";
  EXPECT_TRUE(parent_ok);

  EXPECT_EQ(tmp_files_in(dir.path), 0u);
  ReferenceCache reader(dir.path);
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    ReferenceSolution back;
    ASSERT_TRUE(reader.load(sample_key(100 + k), back)) << "key " << k;
    ASSERT_EQ(back.values.size(), ref.values.size());
    for (std::size_t i = 0; i < ref.values.size(); ++i)
      EXPECT_EQ(std::bit_cast<std::uint64_t>(back.values[i]),
                std::bit_cast<std::uint64_t>(ref.values[i]));
  }
}

TEST_F(CacheDurabilityTest, ConcurrentRejectersQuarantineExactlyOnce) {
  // Two cache instances on one directory (the two-daemon shape, flock
  // between distinct fds) race to reject the same corrupt entry from four
  // threads. However the interleaving falls, the quarantine rename must
  // happen exactly once: one .bad file, a combined quarantined count of 1,
  // and no error for the losers (they see a plain miss).
  TempDir dir("refcache_quarantine_race");
  ReferenceCache a(dir.path), b(dir.path);
  a.store(sample_key(60), sample_solution());
  const std::string path = a.entry_path(sample_key(60));
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "garbage";
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&, t] {
      ReferenceSolution back;
      EXPECT_FALSE((t % 2 == 0 ? a : b).load(sample_key(60), back));
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(a.stats().quarantined + b.stats().quarantined, 1u)
      << "the .bad rename raced into a double quarantine";
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_TRUE(std::filesystem::exists(path + ".bad"));
}

TEST_F(CacheDurabilityTest, UncreatableDirectoryDegradesInsteadOfThrowing) {
  failpoint::arm_from_spec("refcache.open=error(eacces)");
  ReferenceCache cache("test_out/refcache_nodir_" +
                       std::to_string(::getpid()));  // never created
  failpoint::disarm_all();
  EXPECT_TRUE(cache.degraded());
  EXPECT_TRUE(cache.stats().degraded);
  cache.store(sample_key(50), sample_solution());
  ReferenceSolution back;
  EXPECT_FALSE(cache.load(sample_key(50), back));
  EXPECT_EQ(cache.stats().stores, 0u);
}

TEST_F(CacheDurabilityTest, SweepWithUnwritableCacheCompletesWithCorrectResults) {
  // The acceptance bar: ENOSPC / unwritable cache dir must never kill a
  // sweep — it completes, produces byte-identical results, and reports the
  // degradation in stats.
  const auto ds = cache_dataset();
  const std::vector<FormatId> formats = {FormatId::float32, FormatId::takum16};
  const ExperimentConfig cfg = cache_config();

  ScheduleOptions plain;
  plain.threads = 2;
  const std::string plain_csv = csv_of(run_experiment(ds, formats, cfg, plain), "deg_plain");

  failpoint::arm_from_spec("refcache.open=error(eacces)");
  ReferenceCache cache("test_out/refcache_deg_" + std::to_string(::getpid()));
  failpoint::disarm_all();
  ASSERT_TRUE(cache.degraded());
  SweepStats stats;
  ScheduleOptions sched;
  sched.threads = 2;
  sched.ref_cache = &cache;
  sched.stats = &stats;
  const std::string degraded_csv =
      csv_of(run_experiment(ds, formats, cfg, sched), "deg_swept");
  EXPECT_EQ(plain_csv, degraded_csv);
  EXPECT_EQ(stats.reference_solves, ds.size()) << "degraded cache recomputes every reference";
  EXPECT_EQ(cache.stats().stores, 0u);
  EXPECT_TRUE(cache.stats().degraded);
}

// ---------------------------------------------------------------------------
// Engine integration: cold vs warm
// ---------------------------------------------------------------------------

TEST(ReferenceCacheEngine, WarmSweepSkipsAllReferenceSolvesAndMatchesColdByteForByte) {
  TempDir dir("refcache_engine");
  const auto ds = cache_dataset();
  const std::vector<FormatId> formats = {FormatId::float32, FormatId::takum16};
  const ExperimentConfig cfg = cache_config();

  ReferenceCache cache(dir.path);
  SweepStats cold_stats, warm_stats;
  ScheduleOptions cold;
  cold.threads = 2;
  cold.ref_cache = &cache;
  cold.stats = &cold_stats;
  const std::string cold_csv = csv_of(run_experiment(ds, formats, cfg, cold), "cold");
  EXPECT_EQ(cold_stats.reference_solves, ds.size());
  EXPECT_EQ(cold_stats.reference_cache_hits, 0u);
  EXPECT_EQ(cache.stats().stores, ds.size());

  ScheduleOptions warm = cold;
  warm.stats = &warm_stats;
  const std::string warm_csv = csv_of(run_experiment(ds, formats, cfg, warm), "warm");
  // The acceptance bar: a warm sweep executes zero float128 solves...
  EXPECT_EQ(warm_stats.reference_solves, 0u);
  EXPECT_EQ(warm_stats.reference_cache_hits, ds.size());
  // ...and its CSV is byte-identical to the cold run's.
  EXPECT_EQ(cold_csv, warm_csv);

  // Uncached control: the cache changed nothing numerically.
  ScheduleOptions plain;
  plain.threads = 2;
  EXPECT_EQ(cold_csv, csv_of(run_experiment(ds, formats, cfg, plain), "plain"));
}

TEST(ReferenceCacheEngine, JournaledCompleteMatrixNeverTouchesTheCache) {
  TempDir dir("refcache_resume");
  const auto ds = cache_dataset();
  const std::vector<FormatId> formats = {FormatId::float32};
  const ExperimentConfig cfg = cache_config();
  const std::string ck = "test_out/refcache_resume.jsonl";
  std::remove(ck.c_str());

  ScheduleOptions first;
  first.threads = 2;
  first.checkpoint_path = ck;
  const auto results = run_experiment(ds, formats, cfg, first);
  for (const auto& r : results) ASSERT_TRUE(r.reference_ok);

  // Resume with every run journaled: matrices retire before their
  // prerequisite task is scheduled, so the attached cache sees no traffic
  // (satellite: "a journaled-complete matrix must not even open the cache
  // file").
  ReferenceCache cache(dir.path);
  ScheduleOptions resume = first;
  resume.resume = true;
  resume.ref_cache = &cache;
  const auto resumed = run_experiment(ds, formats, cfg, resume);
  EXPECT_EQ(csv_of(results, "j_first"), csv_of(resumed, "j_resumed"));
  EXPECT_EQ(cache.stats().lookups, 0u);
  EXPECT_EQ(cache.stats().stores, 0u);
  std::remove(ck.c_str());
}

TEST(ReferenceCacheEngine, ResumePlusCacheComputesOnlyMissingWork) {
  TempDir dir("refcache_partial");
  const auto ds = cache_dataset();
  const std::vector<FormatId> formats = {FormatId::float32, FormatId::takum16};
  const ExperimentConfig cfg = cache_config();
  const std::string ck = "test_out/refcache_partial.jsonl";
  std::remove(ck.c_str());

  // Cold checkpointed+cached run, then truncate the journal to meta + one
  // run line (simulated crash): the resume needs references again, which
  // now all come from the cache.
  ReferenceCache cache(dir.path);
  ScheduleOptions cold;
  cold.threads = 2;
  cold.checkpoint_path = ck;
  cold.ref_cache = &cache;
  const std::string full_csv = csv_of(run_experiment(ds, formats, cfg, cold), "p_full");

  std::string meta_and_one;
  {
    std::ifstream in(ck);
    std::string line;
    for (int kept = 0; kept < 2 && std::getline(in, line); ++kept)
      meta_and_one += line + "\n";
  }
  {
    std::ofstream out(ck, std::ios::trunc);
    out << meta_and_one;
  }

  SweepStats stats;
  ScheduleOptions resume = cold;
  resume.resume = true;
  resume.stats = &stats;
  const std::string resumed_csv = csv_of(run_experiment(ds, formats, cfg, resume), "p_resumed");
  EXPECT_EQ(full_csv, resumed_csv);
  EXPECT_EQ(stats.reference_solves, 0u) << "warm resume must not re-solve references";
  EXPECT_GT(stats.reference_cache_hits, 0u);
  std::remove(ck.c_str());
}

// ---------------------------------------------------------------------------
// Journal duration telemetry (satellite: timing field)
// ---------------------------------------------------------------------------

TEST(JournalDuration, RunDurationsAreJournaledAndReplayed) {
  const auto ds = cache_dataset();
  const std::vector<FormatId> formats = {FormatId::float32};
  const ExperimentConfig cfg = cache_config();
  const std::string ck = "test_out/duration_journal.jsonl";
  std::remove(ck.c_str());

  ScheduleOptions sched;
  sched.threads = 2;
  sched.checkpoint_path = ck;
  const auto results = run_experiment(ds, formats, cfg, sched);
  for (const auto& mr : results)
    for (const auto& run : mr.runs) EXPECT_GT(run.duration_seconds, 0.0);

  const JournalContents jc = read_journal(ck);
  ASSERT_EQ(jc.runs.size(), ds.size() * formats.size());
  for (const auto& mr : results) {
    for (const auto& run : mr.runs) {
      const auto it = jc.runs.find({mr.name, run.format});
      ASSERT_NE(it, jc.runs.end());
      // %.17g round-trip: the journaled duration is bit-exact.
      EXPECT_EQ(it->second.run.duration_seconds, run.duration_seconds);
    }
  }

  // A journal written before the duration field existed still replays
  // (duration defaults to 0) — strip the field to simulate one.
  const std::string old_ck = "test_out/duration_old.jsonl";
  {
    std::ifstream in(ck);
    std::ofstream out(old_ck, std::ios::trunc);
    std::string line;
    while (std::getline(in, line)) {
      const auto pos = line.find(",\"duration\":");
      if (pos != std::string::npos) {
        const auto end = line.find(",\"failure\"", pos);
        ASSERT_NE(end, std::string::npos);
        line = line.substr(0, pos) + line.substr(end);
      }
      out << line << '\n';
    }
  }
  const JournalContents old_jc = read_journal(old_ck);
  EXPECT_EQ(old_jc.skipped_lines, 0u);
  ASSERT_EQ(old_jc.runs.size(), jc.runs.size());
  for (const auto& [key, jr] : old_jc.runs) EXPECT_EQ(jr.run.duration_seconds, 0.0);
  std::remove(ck.c_str());
  std::remove(old_ck.c_str());
}

}  // namespace
}  // namespace mfla
